package nbody

// The repository benchmark harness: one benchmark per table and figure of
// the paper, plus the ablations DESIGN.md calls out. Each benchmark runs
// the corresponding experiment generator (internal/experiments) and reports
// its headline quantities as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every artifact. cmd/tables prints the same experiments as
// full paper-style tables.

import (
	"testing"

	"nbody/internal/dpfmm"
	"nbody/internal/experiments"
)

func BenchmarkTable1EfficiencyAndCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Table1Config{N: 8192, Nodes: 8, Depth: 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*r.Rows[0].Report.Efficiency(), "effK12_%")
			b.ReportMetric(100*r.Rows[1].Report.Efficiency(), "effK72_%")
			b.ReportMetric(r.Rows[0].Report.CyclesPerParticle(), "cycles/particle_K12")
			b.ReportMetric(r.Rows[1].Report.CyclesPerParticle(), "cycles/particle_K72")
		}
	}
}

func BenchmarkTable2ErrorDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2()
		if i == 0 {
			first := r.Rows[0]
			last := r.Rows[len(r.Rows)-1]
			b.ReportMetric(first.WorstErr/last.WorstErr, "errRatio_D2_to_D15")
			for _, row := range r.Rows {
				if row.D == 5 {
					b.ReportMetric(row.WorstErr, "worstErr_D5")
				}
			}
		}
	}
}

func BenchmarkTable3LeafEfficiencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(4, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*r.Rows[0].InclCopyAndMask, "K12_inclCopyMask_%")
			b.ReportMetric(100*r.Rows[1].InclCopyAndMask, "K72_inclCopyMask_%")
		}
	}
}

func BenchmarkTable4GhostStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(8, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.ReportMetric(float64(row.NonLocalBoxes), "boxes_"+row.Strategy.String())
			}
		}
	}
}

func BenchmarkFigure7MultigridEmbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(16, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best := 0.0
			for _, p := range r.Points {
				if p.Speedup > best {
					best = p.Speedup
				}
			}
			b.ReportMetric(best, "bestSpeedup_x")
		}
	}
}

func BenchmarkFigure8ParentChildPrecompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := r.Points[len(r.Points)-1]
			b.ReportMetric(p.Replicate/p.ComputeAll, "replicateOverComputeAll")
		}
	}
}

func BenchmarkFigure9T2Precompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9([]int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := r.Points[0]
			b.ReportMetric(p.ComputeAll/p.Replicate, "speedup_x")
		}
	}
}

func BenchmarkScalingN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ClaimScalingN(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first := r.Points[0].Report.CyclesPerParticle()
			last := r.Points[len(r.Points)-1].Report.CyclesPerParticle()
			b.ReportMetric(last/first, "cyclesPerParticleRatio_64xN")
		}
	}
}

func BenchmarkScalingP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ClaimScalingP(8192, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first := r.Points[0].Report.ModelSeconds()
			last := r.Points[len(r.Points)-1].Report.ModelSeconds()
			b.ReportMetric(first/last, "speedup_16xP")
		}
	}
}

func BenchmarkOptimalDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ClaimOptimalDepth(8192)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Points[0].Near)/float64(r.Points[0].Flops), "nearFraction_depth3")
		}
	}
}

func BenchmarkAblationSupernodes(b *testing.B) {
	sys := NewUniformSystem(4096, 21)
	for _, sup := range []bool{false, true} {
		name := "plain"
		if sup {
			name = "supernodes"
		}
		b.Run(name, func(b *testing.B) {
			a, err := NewAnderson(sys.BoundingBox(), Options{Degree: 7, Depth: 3, Supernodes: sup})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Potentials(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Stats().T2Count)/float64(b.N), "T2count")
		})
	}
}

func BenchmarkAblationAggregation(b *testing.B) {
	sys := NewUniformSystem(8192, 22)
	for _, disable := range []bool{true, false} {
		name := "gemv"
		if !disable {
			name = "aggregated"
		}
		b.Run(name, func(b *testing.B) {
			a, err := NewAnderson(sys.BoundingBox(), Options{Accuracy: Fast, Depth: 3, DisableAggregation: disable})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Potentials(sys); err != nil {
					b.Fatal(err)
				}
			}
			st := a.Stats()
			hier := st.TraversalTime()
			if hier > 0 {
				b.ReportMetric(float64(st.TraversalFlops())/hier.Seconds()/1e6, "traversal_Mflops")
			}
		})
	}
}

func BenchmarkAblationSeparation(b *testing.B) {
	sys := NewUniformSystem(4096, 23)
	for _, cfg := range []struct {
		name  string
		sep   int
		ratio float64
	}{
		{"d1", 1, 0.95},
		{"d2", 2, 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			a, err := NewAnderson(sys.BoundingBox(), Options{
				Accuracy: Fast, Depth: 3, Separation: cfg.sep, RadiusRatio: cfg.ratio,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Potentials(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolvers(b *testing.B) {
	sys := NewUniformSystem(16384, 24)
	box := sys.BoundingBox()
	solvers := []Solver{
		mustAnderson(b, box, Options{Accuracy: Fast}),
		NewBarnesHut(box, 0.6),
		NewDirect(),
	}
	for _, s := range solvers {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Potentials(sys); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sys.Len())*float64(b.N)/b.Elapsed().Seconds(), "particles/s")
		})
	}
}

func mustAnderson(b *testing.B, box Box, opts Options) *Anderson {
	b.Helper()
	a, err := NewAnderson(box, opts)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func BenchmarkDataParallelSolve(b *testing.B) {
	sys := NewUniformSystem(8192, 25)
	for _, strat := range []dpfmm.GhostStrategy{dpfmm.DirectAliased, dpfmm.LinearizedAliased} {
		b.Run(strat.String(), func(b *testing.B) {
			d, err := NewDataParallel(8, sys.BoundingBox(), Options{Accuracy: Fast, Depth: 3}, strat)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Potentials(sys); err != nil {
					b.Fatal(err)
				}
			}
			r := d.Report("bench", sys.Len())
			b.ReportMetric(100*r.Efficiency(), "modelEff_%")
			b.ReportMetric(100*r.CommFraction(), "modelComm_%")
		})
	}
}

func BenchmarkAnderson2D(b *testing.B) {
	const n = 8192
	sys := NewUniformSystem(n, 26)
	pos := make([]Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = Vec2{X: sys.Positions[i].X, Y: sys.Positions[i].Y}
		q[i] = sys.Charges[i]
	}
	a, err := NewAnderson2D(Box2D{Center: Vec2{X: 0.5, Y: 0.5}, Side: 1.001}, Options2D{Depth: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Potentials(pos, q); err != nil {
			b.Fatal(err)
		}
	}
}
