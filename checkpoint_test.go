package nbody_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbody"
	"nbody/internal/metrics"
)

// ckSimulation builds a deterministic simulation for checkpoint tests: a
// fixed box large enough that a few leapfrog steps never leave the domain,
// and a fresh Anderson solver per call so an original and a resumed run use
// equivalently configured but independent backends.
func ckSimulation(t *testing.T, n int, seed int64) (*nbody.Simulation, *nbody.Anderson) {
	t.Helper()
	sys := nbody.NewUniformSystem(n, seed)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 100}
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, a, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	return sim, a
}

// ckSolver builds the Anderson backend alone, configured identically to
// ckSimulation's, for resuming.
func ckSolver(t *testing.T) *nbody.Anderson {
	t.Helper()
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 100}
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCheckpointResumeBitwise is the round-trip acceptance test: a run that
// checkpoints mid-flight and resumes on a fresh, identically configured
// solver must continue the uninterrupted trajectory bit for bit — positions,
// velocities, time, and step count all exactly equal.
func TestCheckpointResumeBitwise(t *testing.T) {
	sim, _ := ckSimulation(t, 1024, 31)
	if err := sim.Step(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// The original keeps going...
	if err := sim.Step(2); err != nil {
		t.Fatal(err)
	}

	// ...while a resumed copy replays the same two steps from the snapshot.
	resumed, err := nbody.ResumeSimulation(bytes.NewReader(buf.Bytes()), ckSolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Steps(), 3; got != want {
		t.Fatalf("resumed at step %d, want %d", got, want)
	}
	if err := resumed.Step(2); err != nil {
		t.Fatal(err)
	}

	if got, want := resumed.Steps(), sim.Steps(); got != want {
		t.Errorf("steps %d, want %d", got, want)
	}
	if got, want := resumed.Time(), sim.Time(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("time %v, want bitwise %v", got, want)
	}
	for i := range sim.System.Positions {
		if resumed.System.Positions[i] != sim.System.Positions[i] {
			t.Fatalf("position %d diverged: %v vs %v", i, resumed.System.Positions[i], sim.System.Positions[i])
		}
		if resumed.Velocities[i] != sim.Velocities[i] {
			t.Fatalf("velocity %d diverged: %v vs %v", i, resumed.Velocities[i], sim.Velocities[i])
		}
	}
}

// TestCheckpointRoundTripState checks the snapshot preserves every stored
// field exactly, without stepping at all.
func TestCheckpointRoundTripState(t *testing.T) {
	sim, _ := ckSimulation(t, 256, 32)
	if err := sim.Step(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := nbody.ResumeSimulation(&buf, ckSolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.DT != sim.DT {
		t.Errorf("DT %g, want %g", resumed.DT, sim.DT)
	}
	if resumed.Steps() != sim.Steps() || resumed.Time() != sim.Time() {
		t.Errorf("(step, time) = (%d, %g), want (%d, %g)", resumed.Steps(), resumed.Time(), sim.Steps(), sim.Time())
	}
	for i := range sim.System.Charges {
		if resumed.System.Charges[i] != sim.System.Charges[i] {
			t.Fatalf("charge %d = %g, want %g", i, resumed.System.Charges[i], sim.System.Charges[i])
		}
	}
}

// ckBytes produces a valid snapshot as raw bytes.
func ckBytes(t *testing.T) []byte {
	t.Helper()
	sim, _ := ckSimulation(t, 64, 33)
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reCRC rewrites the trailing CRC32C so a deliberate payload mutation tests
// the field validation behind the checksum, not the checksum itself.
func reCRC(b []byte) []byte {
	payload := b[20 : len(b)-4]
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	return b
}

// TestResumeCorruptTable is the corruption table: every damaged snapshot
// must be rejected with ErrCorruptCheckpoint — never a panic, never a
// silently wrong simulation.
func TestResumeCorruptTable(t *testing.T) {
	valid := ckBytes(t)
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte{}, valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", valid[:10]},
		{"header only", valid[:20]},
		{"truncated payload", valid[:len(valid)/2]},
		{"missing checksum", valid[:len(valid)-2]},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"future version", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			return b
		})},
		{"implausible length", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 13) // under the fixed header, not a particle multiple
			return b
		})},
		{"forged huge length", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 32+56*(1<<40))
			return b
		})},
		{"payload bit flip", mut(func(b []byte) []byte { b[40] ^= 0x10; return b })},
		{"checksum bit flip", mut(func(b []byte) []byte { b[len(b)-1] ^= 1; return b })},
		{"inconsistent particle count", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[20:], 63)
			return reCRC(b)
		})},
		{"negative step count", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[28:], 1<<63)
			return reCRC(b)
		})},
		{"NaN time", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[36:], math.Float64bits(math.NaN()))
			return reCRC(b)
		})},
		{"zero timestep", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[44:], 0)
			return reCRC(b)
		})},
		{"negative timestep", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[44:], math.Float64bits(-1e-4))
			return reCRC(b)
		})},
	}
	solver := ckSolver(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := nbody.ResumeSimulation(bytes.NewReader(tc.data), solver)
			if !errors.Is(err, nbody.ErrCorruptCheckpoint) {
				t.Fatalf("got (%v, %v), want ErrCorruptCheckpoint", sim, err)
			}
			if sim != nil {
				t.Fatal("corrupt snapshot returned a non-nil simulation")
			}
		})
	}

	// The untouched original must still resume — the mutations above worked
	// on copies.
	if _, err := nbody.ResumeSimulation(bytes.NewReader(valid), solver); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestPeriodicCheckpoints arms EnableCheckpoints and proves Step writes the
// snapshot at every interval multiple, that the file resumes to the latest
// multiple, and that no temporary files are left behind by the atomic
// writer.
func TestPeriodicCheckpoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sim.ckpt")
	sim, _ := ckSimulation(t, 256, 34)
	if err := sim.EnableCheckpoints(path, 2); err != nil {
		t.Fatal(err)
	}
	metrics.ResetRecovery()
	if err := sim.Step(5); err != nil {
		t.Fatal(err)
	}
	if rec := metrics.ReadRecovery(); rec.Checkpoints != 2 {
		t.Errorf("checkpoints written = %d, want 2 (steps 2 and 4)", rec.Checkpoints)
	}
	resumed, err := nbody.ResumeSimulationFile(path, ckSolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Steps(), 4; got != want {
		t.Errorf("resumed at step %d, want %d (the last interval multiple)", got, want)
	}
	if rec := metrics.ReadRecovery(); rec.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", rec.Resumes)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("atomic writer left temporary file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d entries, want just the snapshot", len(entries))
	}

	// Arming validation.
	if err := sim.EnableCheckpoints("", 2); err == nil {
		t.Error("EnableCheckpoints accepted an empty path")
	}
	if err := sim.EnableCheckpoints(path, 0); err == nil {
		t.Error("EnableCheckpoints accepted a zero interval")
	}
}

// TestResumeMissingFile checks the file-level entry point reports a missing
// snapshot as a plain I/O error, not as corruption.
func TestResumeMissingFile(t *testing.T) {
	_, err := nbody.ResumeSimulationFile(filepath.Join(t.TempDir(), "nope.ckpt"), ckSolver(t))
	if err == nil {
		t.Fatal("missing file resumed")
	}
	if errors.Is(err, nbody.ErrCorruptCheckpoint) {
		t.Fatalf("missing file reported as corruption: %v", err)
	}
}
