package nbody_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"nbody"
)

// FuzzValidatePotentials feeds adversarial particles through System.Validate
// and Anderson.Potentials and checks the two agree: whatever Validate
// rejects, Potentials rejects with the same sentinel, and whatever Validate
// accepts, Potentials solves to finite values without panicking. The seed
// corpus below covers every rejection class and runs as a plain `go test`
// regression.
func FuzzValidatePotentials(f *testing.F) {
	f.Add(0.5, 0.5, 0.5, 1.0)               // valid interior particle
	f.Add(math.NaN(), 0.5, 0.5, 1.0)        // NaN coordinate
	f.Add(math.Inf(1), 0.5, 0.5, 1.0)       // Inf coordinate
	f.Add(0.5, math.Inf(-1), 0.5, 1.0)      // -Inf coordinate
	f.Add(2.5, 0.5, 0.5, 1.0)               // finite, outside the domain
	f.Add(1.0, 0.5, 0.5, 1.0)               // exactly on the half-open face
	f.Add(0.5, 0.5, 0.5, math.NaN())        // NaN charge
	f.Add(0.5, 0.5, 0.5, math.Inf(1))       // Inf charge
	f.Add(0.25, 0.25, 0.25, 0.0)            // zero charge is valid
	f.Add(1e-300, 1e-300, 1e-300, -1e300)   // extreme but finite
	f.Add(0.9999999999999999, 0.0, 0.0, 1.) // boundary round-off

	base := nbody.NewUniformSystem(64, 11)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1.0000001}
	solver, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, x, y, z, q float64) {
		sys := &nbody.System{
			Positions: append(append([]nbody.Vec3{}, base.Positions...), nbody.Vec3{X: x, Y: y, Z: z}),
			Charges:   append(append([]float64{}, base.Charges...), q),
		}
		verr := sys.Validate(box)
		phi, perr := solver.Potentials(sys)
		if verr != nil {
			if perr == nil {
				t.Fatalf("Validate rejected (%v) but Potentials accepted", verr)
			}
			if !errors.Is(perr, nbody.ErrInvalidSystem) && !errors.Is(perr, nbody.ErrOutOfDomain) {
				t.Fatalf("Potentials rejected with untyped error: %v", perr)
			}
			return
		}
		if perr != nil {
			t.Fatalf("Validate accepted but Potentials failed: %v", perr)
		}
		if math.Abs(q) >= 1e100 {
			// Overflow regime: a legal but astronomically charged particle
			// can push partial sums past MaxFloat64, where finiteness of the
			// output is no longer a solver invariant.
			return
		}
		for i, v := range phi {
			if math.IsNaN(v) {
				t.Fatalf("phi[%d] is NaN for valid input (%g, %g, %g; q=%g)", i, x, y, z, q)
			}
		}
	})
}

// FuzzResumeSimulation feeds adversarial snapshot bytes through
// ResumeSimulation and pins the corruption contract: the reader either
// reconstructs a structurally valid simulation or rejects the input with
// ErrCorruptCheckpoint — it never panics, never returns an untyped error,
// and never hands back a simulation with inconsistent state. The seed corpus
// covers a pristine snapshot plus every mutation class the corruption table
// in checkpoint_test.go enumerates, so `go test` replays them as
// regressions.
func FuzzResumeSimulation(f *testing.F) {
	// A small but real snapshot as the fuzzer's starting material.
	sys := nbody.NewUniformSystem(8, 13)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 100}
	solver, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		f.Fatal(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, solver, 1e-4)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	mut := func(fn func(b []byte) []byte) []byte {
		return fn(append([]byte{}, valid...))
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:7])                                                                             // torn mid-magic
	f.Add(valid[:20])                                                                            // header only
	f.Add(valid[:len(valid)/2])                                                                  // torn payload
	f.Add(valid[:len(valid)-1])                                                                  // torn checksum
	f.Add(append([]byte{}, valid...))                                                            // duplicate of the pristine seed
	f.Add(mut(func(b []byte) []byte { b[0] ^= 0xFF; return b }))                                 // bad magic
	f.Add(mut(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 2); return b }))      // future version
	f.Add(mut(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[12:], 1<<50); return b })) // forged length
	f.Add(mut(func(b []byte) []byte { b[30] ^= 0x04; return b }))                                // payload bit flip
	f.Add(mut(func(b []byte) []byte { b[len(b)-2] ^= 0x80; return b }))                          // checksum bit flip
	f.Add(bytes.Repeat([]byte{0xA5}, 200))                                                       // noise

	resumeSolver, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sim, err := nbody.ResumeSimulation(bytes.NewReader(data), resumeSolver)
		if err != nil {
			// Structural damage is ErrCorruptCheckpoint. A snapshot the
			// fuzzer manages to re-checksum can still carry particles the
			// resume solver's initial solve rejects — that is the system
			// validation taxonomy, equally typed.
			if !errors.Is(err, nbody.ErrCorruptCheckpoint) &&
				!errors.Is(err, nbody.ErrInvalidSystem) &&
				!errors.Is(err, nbody.ErrOutOfDomain) {
				t.Fatalf("rejection with untyped error: %v", err)
			}
			if sim != nil {
				t.Fatal("error return with non-nil simulation")
			}
			return
		}
		// Accepted: the simulation must be internally consistent.
		n := sim.System.Len()
		if len(sim.Velocities) != n || len(sim.System.Charges) != n {
			t.Fatalf("inconsistent lengths: %d positions, %d velocities, %d charges",
				n, len(sim.Velocities), len(sim.System.Charges))
		}
		if sim.DT <= 0 {
			t.Fatalf("accepted non-positive timestep %g", sim.DT)
		}
		if sim.Steps() < 0 {
			t.Fatalf("accepted negative step count %d", sim.Steps())
		}
	})
}
