package nbody_test

import (
	"errors"
	"math"
	"testing"

	"nbody"
)

// FuzzValidatePotentials feeds adversarial particles through System.Validate
// and Anderson.Potentials and checks the two agree: whatever Validate
// rejects, Potentials rejects with the same sentinel, and whatever Validate
// accepts, Potentials solves to finite values without panicking. The seed
// corpus below covers every rejection class and runs as a plain `go test`
// regression.
func FuzzValidatePotentials(f *testing.F) {
	f.Add(0.5, 0.5, 0.5, 1.0)               // valid interior particle
	f.Add(math.NaN(), 0.5, 0.5, 1.0)        // NaN coordinate
	f.Add(math.Inf(1), 0.5, 0.5, 1.0)       // Inf coordinate
	f.Add(0.5, math.Inf(-1), 0.5, 1.0)      // -Inf coordinate
	f.Add(2.5, 0.5, 0.5, 1.0)               // finite, outside the domain
	f.Add(1.0, 0.5, 0.5, 1.0)               // exactly on the half-open face
	f.Add(0.5, 0.5, 0.5, math.NaN())        // NaN charge
	f.Add(0.5, 0.5, 0.5, math.Inf(1))       // Inf charge
	f.Add(0.25, 0.25, 0.25, 0.0)            // zero charge is valid
	f.Add(1e-300, 1e-300, 1e-300, -1e300)   // extreme but finite
	f.Add(0.9999999999999999, 0.0, 0.0, 1.) // boundary round-off

	base := nbody.NewUniformSystem(64, 11)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1.0000001}
	solver, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, x, y, z, q float64) {
		sys := &nbody.System{
			Positions: append(append([]nbody.Vec3{}, base.Positions...), nbody.Vec3{X: x, Y: y, Z: z}),
			Charges:   append(append([]float64{}, base.Charges...), q),
		}
		verr := sys.Validate(box)
		phi, perr := solver.Potentials(sys)
		if verr != nil {
			if perr == nil {
				t.Fatalf("Validate rejected (%v) but Potentials accepted", verr)
			}
			if !errors.Is(perr, nbody.ErrInvalidSystem) && !errors.Is(perr, nbody.ErrOutOfDomain) {
				t.Fatalf("Potentials rejected with untyped error: %v", perr)
			}
			return
		}
		if perr != nil {
			t.Fatalf("Validate accepted but Potentials failed: %v", perr)
		}
		if math.Abs(q) >= 1e100 {
			// Overflow regime: a legal but astronomically charged particle
			// can push partial sums past MaxFloat64, where finiteness of the
			// output is no longer a solver invariant.
			return
		}
		for i, v := range phi {
			if math.IsNaN(v) {
				t.Fatalf("phi[%d] is NaN for valid input (%g, %g, %g; q=%g)", i, x, y, z, q)
			}
		}
	})
}
