package nbody

import (
	"math"
	"testing"
)

func TestSimulationValidation(t *testing.T) {
	sys := NewUniformSystem(10, 31)
	if _, err := NewSimulation(sys, nil, DirectAccelerator{}, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := NewSimulation(sys, make([]Vec3, 3), DirectAccelerator{}, 1e-3); err == nil {
		t.Error("mismatched velocities accepted")
	}
}

func TestTwoBodyCircularOrbit(t *testing.T) {
	// Two equal masses in a circular orbit about their barycenter: after
	// integration, the separation must stay constant and energy conserved.
	m := 0.5
	r := 0.1 // separation
	sys := &System{
		Positions: []Vec3{{X: 0.5 - r/2, Y: 0.5, Z: 0.5}, {X: 0.5 + r/2, Y: 0.5, Z: 0.5}},
		Charges:   []float64{m, m},
	}
	// Circular speed about the barycenter: v^2 = G m_other * (r/2) / r^2.
	v := math.Sqrt(m / (2 * r))
	vel := []Vec3{{Y: -v}, {Y: v}}
	sim, err := NewSimulation(sys, vel, DirectAccelerator{}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, e0 := sim.Energy()
	if err := sim.Step(200); err != nil {
		t.Fatal(err)
	}
	_, _, e1 := sim.Energy()
	if math.Abs(e1-e0) > 1e-6*math.Abs(e0) {
		t.Errorf("energy drift %g -> %g", e0, e1)
	}
	sep := sys.Positions[0].Dist(sys.Positions[1])
	if math.Abs(sep-r) > 0.01*r {
		t.Errorf("separation %g, want %g", sep, r)
	}
	if sim.Steps() != 200 || math.Abs(sim.Time()-200e-4) > 1e-12 {
		t.Errorf("bookkeeping: steps=%d time=%g", sim.Steps(), sim.Time())
	}
}

func TestSimulationWithAndersonMatchesDirect(t *testing.T) {
	mkSys := func() *System { return NewPlummerSystem(400, 33) }

	box := mkSys().BoundingBox()
	box.Side *= 1.2
	a, err := NewAnderson(box, Options{Accuracy: Balanced, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}

	run := func(acc Accelerator, sys *System) *System {
		sim, err := NewSimulation(sys, nil, acc, 5e-5)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Step(3); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sa := run(a, mkSys())
	sd := run(DirectAccelerator{}, mkSys())
	var worst float64
	for i := range sa.Positions {
		d := sa.Positions[i].Dist(sd.Positions[i])
		if d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("trajectories diverged by %g after 3 steps", worst)
	}
	if sim := sa; sim == nil {
		t.Fatal("unreachable")
	}
}

func TestSimulationEnergyAccessors(t *testing.T) {
	sys := NewUniformSystem(50, 34)
	sim, err := NewSimulation(sys, nil, DirectAccelerator{}, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	k, u, e := sim.Energy()
	if k != 0 {
		t.Errorf("cold start kinetic = %g", k)
	}
	if e != u {
		t.Errorf("total %g != potential %g at cold start", e, u)
	}
	if len(sim.Accel()) != sys.Len() {
		t.Error("Accel length mismatch")
	}
}
