package nbody

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"nbody/internal/metrics"
	"nbody/internal/resilience"
)

// Sentinel errors classifying rejected inputs. Entry points wrap them with
// the offending particle index, so callers can both program against the
// class (errors.Is) and log the specifics.
var (
	// ErrInvalidSystem marks systems that are malformed independent of any
	// solver: mismatched slice lengths, or NaN/Inf positions or charges.
	ErrInvalidSystem = errors.New("nbody: invalid system")
	// ErrOutOfDomain marks systems with finite particles lying outside the
	// solver's fixed domain box (the hierarchy cannot place them).
	ErrOutOfDomain = errors.New("nbody: particle outside solver domain")
	// ErrInvalidOptions marks solver options rejected at construction:
	// negative or otherwise nonsensical Degree, M, Depth, Separation, or
	// RadiusRatio values, caught by NewAnderson / NewDataParallel /
	// NewAnderson2D before any plan building starts.
	ErrInvalidOptions = errors.New("nbody: invalid solver options")
	// ErrCorruptCheckpoint marks a simulation snapshot ResumeSimulation
	// cannot trust: bad magic, unsupported version, truncated payload,
	// inconsistent lengths, or a CRC32C mismatch. Corruption is always
	// reported through this sentinel — never a panic, never a silently
	// wrong simulation.
	ErrCorruptCheckpoint = errors.New("nbody: corrupt checkpoint")
)

// InternalError is a panic from inside a solve, recovered at the public API
// boundary and returned as an error instead of crashing the process. Phase
// names the pipeline phase that was active when the panic fired (one of the
// internal/metrics phase names such as "sort", "t2", "near-field", or
// "unknown" when no phase span was open); Value is the recovered panic value
// and Stack the goroutine stack captured at recovery.
//
// Safe-to-retry contract: before an InternalError is returned, every worker
// participating in the solve has stopped touching the solver's buffers and
// the caller's output slices (the scheduler drains all in-flight work before
// re-raising a panic on the submitter). The solver's internal state may hold
// partial results, but a subsequent solve on the same solver overwrites all
// of it and produces correct results — retrying is always safe.
type InternalError struct {
	Phase string // active pipeline phase, or "unknown"
	Value any    // the recovered panic value
	Stack []byte // stack captured at the recovery point
}

// Error implements the error interface.
func (e *InternalError) Error() string {
	return fmt.Sprintf("nbody: internal panic during %s phase: %v", e.Phase, e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As reach through (e.g. a fault-injected sentinel).
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// classifyError is the default error taxonomy of the Resilient supervisor,
// mapping each error class of this package onto the supervisor's retry
// semantics:
//
//   - *InternalError is Retryable: its documented safe-to-retry contract
//     guarantees the solver is reusable after the failure.
//   - context.Canceled / context.DeadlineExceeded are Terminal: the caller
//     asked to stop (the supervisor itself reclassifies a per-attempt
//     deadline as Retryable when the caller's context is still live).
//   - ErrInvalidSystem / ErrOutOfDomain / ErrInvalidOptions /
//     ErrCorruptCheckpoint are Permanent: no retry or fallback solver can
//     repair a malformed input.
//   - errRungUnsupported is Skip: the rung cannot perform the operation at
//     all, so the ladder advances without burning attempts.
//   - Anything unrecognized is Permanent: an error outside the documented
//     taxonomy carries no safe-to-retry contract.
func classifyError(err error) resilience.Class {
	var ie *InternalError
	switch {
	case errors.As(err, &ie):
		return resilience.Retryable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return resilience.Terminal
	case errors.Is(err, errRungUnsupported):
		return resilience.Skip
	default:
		return resilience.Permanent
	}
}

// recoverInternal converts a panic escaping a solve into an *InternalError
// assigned to *errp, attributing it to the phase recorded as active in rec
// (nil rec, or no open span, yields "unknown"). It must be installed with
// defer at the public entry point.
func recoverInternal(rec *metrics.Rec, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	phase := "unknown"
	if rec != nil {
		if p, ok := rec.ActivePhase(); ok {
			phase = p.String()
		}
		rec.ClearActive()
	}
	*errp = &InternalError{Phase: phase, Value: r, Stack: debug.Stack()}
}

// finite reports whether v is neither NaN nor Inf. The self-comparison plus
// range test compiles to two branches and no calls, keeping Validate
// allocation-free and cheap on the happy path.
func finite(v float64) bool {
	return v == v && v <= math.MaxFloat64 && v >= -math.MaxFloat64
}

// Validate checks the system against a solver domain: positions and charges
// must have equal length, every coordinate and charge must be finite, and
// every particle must lie inside box (half-open, like the hierarchy's leaf
// assignment). It returns nil for a valid system (including the empty one),
// an error wrapping ErrInvalidSystem for malformed data, or one wrapping
// ErrOutOfDomain for finite particles the box does not contain. The first
// offending particle index is reported. The happy path performs no
// allocations.
func (s *System) Validate(box Box) error {
	if len(s.Positions) != len(s.Charges) {
		return fmt.Errorf("%w: %d positions but %d charges",
			ErrInvalidSystem, len(s.Positions), len(s.Charges))
	}
	for i, p := range s.Positions {
		if !finite(p.X) || !finite(p.Y) || !finite(p.Z) {
			return fmt.Errorf("%w: particle %d has non-finite position %v",
				ErrInvalidSystem, i, p)
		}
		if !box.Contains(p) {
			return fmt.Errorf("%w: particle %d at %v outside %v",
				ErrOutOfDomain, i, p, box)
		}
	}
	for i, q := range s.Charges {
		if !finite(q) {
			return fmt.Errorf("%w: particle %d has non-finite charge %g",
				ErrInvalidSystem, i, q)
		}
	}
	return nil
}

// validate2D is the Vec2 counterpart used by the 2-D entry points.
func validate2D(pos []Vec2, q []float64, box Box2D) error {
	if len(pos) != len(q) {
		return fmt.Errorf("%w: %d positions but %d charges",
			ErrInvalidSystem, len(pos), len(q))
	}
	for i, p := range pos {
		if !finite(p.X) || !finite(p.Y) {
			return fmt.Errorf("%w: particle %d has non-finite position %v",
				ErrInvalidSystem, i, p)
		}
		if !box.Contains(p) {
			return fmt.Errorf("%w: particle %d at %v outside box",
				ErrOutOfDomain, i, p)
		}
	}
	for i, v := range q {
		if !finite(v) {
			return fmt.Errorf("%w: particle %d has non-finite charge %g",
				ErrInvalidSystem, i, v)
		}
	}
	return nil
}
