#!/bin/sh
# Regenerates the hot-path performance record: end-to-end solver benchmarks
# with allocation counts, the GEMM kernel sweep at the solver's translation
# shapes (per compute backend), and the per-phase breakdown of the depth-4
# K=12 solve (cmd/phases -json). Run from the repository root:
#
#   scripts/bench.sh [output.json]
#   NBODY_BACKEND=scalar scripts/bench.sh BENCH_scalar.json   # pin a backend
#
# Results depend on the host; the committed BENCH_PR*.json files record the
# reference runs documented in EXPERIMENTS.md. The record carries the
# compute backend (internal/simd) the solve benchmarks ran on.
#
# After writing the record, the script gates on the most recent previous
# BENCH_PR*.json *of the same backend*: the headline solve (SolveK12Depth4)
# must be within 10% of the previous ns/op and must not allocate more per
# op, or the script exits nonzero (failing CI). When no same-backend
# baseline exists (first record after a backend change), the gate only
# warns: comparing scalar wall time against avx2 wall time would gate on
# the hardware, not the code.
set -eu

out="${1:-BENCH_PR9.json}"
solve_txt="$(mktemp)"
gemm_txt="$(mktemp)"
phases_json="$(mktemp)"
trap 'rm -f "$solve_txt" "$gemm_txt" "$phases_json"' EXIT

go test ./internal/core/ -run '^$' -bench 'BenchmarkSolve(K12Depth4|SupernodesK32Depth4)$' \
    -benchmem -benchtime 5x | tee "$solve_txt"
go test ./internal/blas/ -run '^$' -bench 'BenchmarkDgemm|BenchmarkGemmPanels' \
    -benchmem -benchtime 2s | tee "$gemm_txt"
go run ./cmd/phases -n 32768 -depth 4 -degree 5 -json > "$phases_json"

# The phases snapshot records which backend actually ran (metrics.Snapshot);
# lift it to the top of the record so the gate does not parse the nested
# object. Records written before the dispatch layer have no backend key and
# are treated as scalar — that is what they measured.
backend="$(sed -n 's/^ *"backend": "\([a-z0-9]*\)".*/\1/p' "$phases_json" | head -n 1)"
backend="${backend:-scalar}"

awk -v out="$out" -v phases_file="$phases_json" -v backend="$backend" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    obj = sprintf("    {\"name\": \"%s\", \"iterations\": %s", $1, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^0-9A-Za-z_]/, "_", unit)
        obj = obj sprintf(", \"%s\": %s", unit, $i)
    }
    obj = obj "}"
    benches = benches (benches == "" ? "" : ",\n") obj
}
END {
    phases = ""
    while ((getline line < phases_file) > 0)
        phases = phases (phases == "" ? "" : "\n  ") line
    close(phases_file)
    printf "{\n  \"cpu\": \"%s\",\n  \"backend\": \"%s\",\n  \"benchmarks\": [\n%s\n  ],\n  \"phases\": %s\n}\n", \
        cpu, backend, benches, phases > out
}
' "$solve_txt" "$gemm_txt"

echo "wrote $out (backend=$backend)"

# Regression gate. Baseline selection: the most recent previous record
# (version-sorted, excluding the record just written) measured on the SAME
# backend. The newest previous record of any backend is kept for the
# warn-only report when the backend changed.
record_backend() {
    b="$(sed -n 's/^ *"backend": "\([a-z0-9]*\)".*/\1/p' "$1" | head -n 1)"
    echo "${b:-scalar}"
}

prev_same=""
prev_any=""
for f in $(ls BENCH_PR*.json 2>/dev/null | sort -V); do
    [ "$f" = "$out" ] && continue
    # Skip records that do not carry the headline solve benchmark (e.g. the
    # PR8 loadtest artifact records tenant latency buckets, not ns/op).
    grep -q '"name": "BenchmarkSolveK12Depth4"' "$f" || continue
    prev_any="$f"
    [ "$(record_backend "$f")" = "$backend" ] && prev_same="$f"
done

if [ -z "$prev_same" ] && [ -z "$prev_any" ]; then
    echo "bench gate: no previous BENCH_PR*.json, skipping"
    exit 0
fi

gate_mode="fail"
prev="$prev_same"
if [ -z "$prev_same" ]; then
    gate_mode="warn"
    prev="$prev_any"
    echo "bench gate: no previous $backend record; comparing against" \
        "$prev ($(record_backend "$prev")) as warn-only"
fi

awk -v prev="$prev" -v cur="$out" -v mode="$gate_mode" '
function field(line, key,   re) {
    re = "\"" key "\": [0-9]+"
    if (match(line, re))
        return substr(line, RSTART + length(key) + 4, RLENGTH - length(key) - 4)
    return ""
}
function scan(file, res,   line) {
    while ((getline line < file) > 0) {
        if (line ~ /"name": "BenchmarkSolveK12Depth4"/) {
            res["ns"] = field(line, "ns_op")
            res["allocs"] = field(line, "allocs_op")
        }
    }
    close(file)
}
BEGIN {
    scan(prev, p); scan(cur, c)
    if (p["ns"] == "" || c["ns"] == "") {
        printf "bench gate: SolveK12Depth4 missing from %s or %s\n", prev, cur
        exit 1
    }
    ratio = c["ns"] / p["ns"]
    printf "bench gate vs %s: SolveK12Depth4 %d -> %d ns/op (%+.1f%%), %d -> %d allocs/op\n", \
        prev, p["ns"], c["ns"], 100 * (ratio - 1), p["allocs"], c["allocs"]
    fail = 0
    if (ratio > 1.10) { print "bench gate: ns/op regressed more than 10%"; fail = 1 }
    if (c["allocs"] + 0 > p["allocs"] + 0) { print "bench gate: allocs/op regressed"; fail = 1 }
    if (!fail) { print "bench gate: OK"; exit 0 }
    if (mode == "warn") { print "bench gate: WARN (cross-backend comparison, not failing)"; exit 0 }
    print "bench gate: FAIL"
    exit 1
}'
