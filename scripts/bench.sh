#!/bin/sh
# Regenerates the hot-path performance record (BENCH_PR1.json): end-to-end
# solver benchmarks with allocation counts, plus the GEMM kernel sweep at
# the solver's translation shapes. Run from the repository root:
#
#   scripts/bench.sh [output.json]
#
# Results depend on the host; the committed BENCH_PR1.json records the
# reference run documented in EXPERIMENTS.md.
set -eu

out="${1:-BENCH_PR1.json}"
solve_txt="$(mktemp)"
gemm_txt="$(mktemp)"
trap 'rm -f "$solve_txt" "$gemm_txt"' EXIT

go test ./internal/core/ -run '^$' -bench 'BenchmarkSolve(K12Depth4|SupernodesK32Depth4)$' \
    -benchmem -benchtime 5x | tee "$solve_txt"
go test ./internal/blas/ -run '^$' -bench 'BenchmarkDgemm|BenchmarkGemmPanels' \
    -benchmem -benchtime 2s | tee "$gemm_txt"

awk -v out="$out" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    obj = sprintf("    {\"name\": \"%s\", \"iterations\": %s", $1, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^0-9A-Za-z_]/, "_", unit)
        obj = obj sprintf(", \"%s\": %s", unit, $i)
    }
    obj = obj "}"
    benches = benches (benches == "" ? "" : ",\n") obj
}
END {
    printf "{\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", cpu, benches > out
}
' "$solve_txt" "$gemm_txt"

echo "wrote $out"
