#!/bin/sh
# Regenerates the hot-path performance record: end-to-end solver benchmarks
# with allocation counts, the GEMM kernel sweep at the solver's translation
# shapes, and the per-phase breakdown of the depth-4 K=12 solve (cmd/phases
# -json). Run from the repository root:
#
#   scripts/bench.sh [output.json]
#
# Results depend on the host; the committed BENCH_PR*.json files record the
# reference runs documented in EXPERIMENTS.md.
set -eu

out="${1:-BENCH_PR2.json}"
solve_txt="$(mktemp)"
gemm_txt="$(mktemp)"
phases_json="$(mktemp)"
trap 'rm -f "$solve_txt" "$gemm_txt" "$phases_json"' EXIT

go test ./internal/core/ -run '^$' -bench 'BenchmarkSolve(K12Depth4|SupernodesK32Depth4)$' \
    -benchmem -benchtime 5x | tee "$solve_txt"
go test ./internal/blas/ -run '^$' -bench 'BenchmarkDgemm|BenchmarkGemmPanels' \
    -benchmem -benchtime 2s | tee "$gemm_txt"
go run ./cmd/phases -n 32768 -depth 4 -degree 5 -json > "$phases_json"

awk -v out="$out" -v phases_file="$phases_json" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    obj = sprintf("    {\"name\": \"%s\", \"iterations\": %s", $1, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^0-9A-Za-z_]/, "_", unit)
        obj = obj sprintf(", \"%s\": %s", unit, $i)
    }
    obj = obj "}"
    benches = benches (benches == "" ? "" : ",\n") obj
}
END {
    phases = ""
    while ((getline line < phases_file) > 0)
        phases = phases (phases == "" ? "" : "\n  ") line
    close(phases_file)
    printf "{\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n%s\n  ],\n  \"phases\": %s\n}\n", \
        cpu, benches, phases > out
}
' "$solve_txt" "$gemm_txt"

echo "wrote $out"
