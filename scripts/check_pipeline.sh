#!/bin/sh
# Static check keeping the phase-runner refactor honest: solvers declare
# their phases through internal/pipeline, which owns the metrics spans and
# fault-injection sites. Outside the runner itself (and the instrumented
# layers internal/metrics / internal/faults), no non-test source may open a
# span or fire a fault site directly. The serving layer is the one
# exception: its sites (serve/enqueue|dequeue|worker) are transport-level
# chaos points on the dispatcher, not solver phases — there is no span to
# pair them with, so they fire directly. Run from the repository root:
#
#   scripts/check_pipeline.sh
set -eu

bad=$(grep -rn --include='*.go' \
        -e 'metrics\.Span' -e '\.Begin(' -e 'faults\.Fire' \
        cmd internal ./*.go \
    | grep -v '_test\.go:' \
    | grep -v '^internal/pipeline/' \
    | grep -v '^internal/metrics/' \
    | grep -v '^internal/faults/' \
    | grep -v '^internal/serve/' \
    || true)

if [ -n "$bad" ]; then
    echo "check_pipeline: direct span/fault-site use outside internal/pipeline:" >&2
    echo "$bad" >&2
    echo "declare the work as a pipeline.Phase (or pipeline.Step) instead" >&2
    exit 1
fi
echo "check_pipeline: OK"
