#!/bin/sh
# Fleet acceptance test: nbodygw in front of three nbodyd replicas, under
# real process churn. Two gates, both hard:
#
#   1. Rolling restart (SIGTERM each replica in turn) under closed-loop
#      solve load through the gateway: the loadtest's own zero-5xx gate
#      must hold — a drain-aware restart is invisible to clients.
#   2. SIGKILL chaos under an in-flight /v1/simulate stream: replicas are
#      killed round-robin for the stream's whole life, and the stream must
#      still deliver every frame in order with a final frame whose particle
#      state is bitwise-identical (cmp) to an uninterrupted run against a
#      single quiet replica. The gateway's streams_lost counter must be 0.
#
#   scripts/fleettest.sh                        # default sizes
#   NBODY_BACKEND=scalar scripts/fleettest.sh   # pin a backend
#   STEPS=3000 DURATION=12s scripts/fleettest.sh
#
# The stream is pinned (-depth, fast accuracy, fixed seed) so the
# trajectory is a pure function of the request — what makes gate 2's cmp
# meaningful across a failover.
set -eu

DURATION="${DURATION:-8s}"
N="${N:-64}"
STEPS="${STEPS:-1500}"
DT="${DT:-1e-5}"
DEPTH="${DEPTH:-3}"
SEED="${SEED:-7}"
PORT="${PORT:-18040}"      # gateway; replicas take PORT+1..PORT+3
DRAIN_GRACE="${DRAIN_GRACE:-20s}"
# The stream carries an explicit generous deadline: the replicas' cost-model
# admission sheds long integrations against the 60s default once the solve
# load has warmed the estimator, and a fleet client asking for a multi-
# minute stream should say so.
DEADLINE_MS="${DEADLINE_MS:-600000}"
# Gate 1's through-the-gateway loadtest is recorded like scripts/loadtest.sh
# records the single-server numbers, and gated against the committed
# baseline (light tenant p95, 1.5x + 100ms; skipped across backends).
RESULTS="${RESULTS:-BENCH_PR10.json}"
BASELINE="${BASELINE:-BENCH_PR10.json}"

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
R1_PID=""; R2_PID=""; R3_PID=""; GW_PID=""; LT_PID=""; ST_PID=""

cleanup() {
    for pid in "$R1_PID" "$R2_PID" "$R3_PID" "$GW_PID" "$LT_PID" "$ST_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "fleettest: building (backend=${NBODY_BACKEND:-auto})"
go build -o "$TMP/nbodyd" ./cmd/nbodyd
go build -o "$TMP/nbodygw" ./cmd/nbodygw
go build -o "$TMP/nbodyreq" ./cmd/nbodyreq

replica_url() { echo "http://127.0.0.1:$((PORT + $1))"; }
GW_URL="http://127.0.0.1:$PORT"

start_replica() {
    i=$1
    "$TMP/nbodyd" -addr "127.0.0.1:$((PORT + i))" -quiet -drain-grace "$DRAIN_GRACE" \
        >>"$TMP/replica$i.log" 2>&1 &
    eval "R${i}_PID=$!"
}

replica_pid() { eval "echo \$R${1}_PID"; }

wait_health() {
    url=$1
    n=0
    until curl -fsS "$url/v1/healthz" >/dev/null 2>&1; do
        n=$((n + 1))
        if [ "$n" -ge 100 ]; then
            echo "fleettest: no healthz at $url" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_replica 1
start_replica 2
start_replica 3
for i in 1 2 3; do wait_health "$(replica_url $i)"; done

"$TMP/nbodygw" -replicas "$(replica_url 1),$(replica_url 2),$(replica_url 3)" \
    -addr "127.0.0.1:$PORT" -probe-every 100ms -quiet >"$TMP/gateway.log" 2>&1 &
GW_PID=$!
wait_health "$GW_URL"

echo "fleettest: fleet up (gateway $GW_URL, 3 replicas)"

# Reference: the same pinned stream against one quiet replica, no churn.
"$TMP/nbodyreq" -kind simulate -n "$N" -seed "$SEED" -steps "$STEPS" -dt "$DT" \
    -depth "$DEPTH" -stream-every 1 -deadline-ms "$DEADLINE_MS" -url "$(replica_url 1)" \
    >"$TMP/final_ref.json" 2>"$TMP/ref.log"
echo "fleettest: reference stream recorded ($(wc -c <"$TMP/final_ref.json") bytes)"

# --- Gate 1: rolling restart under solve load -------------------------------
GATE_ARGS=""
if [ -f "$BASELINE" ]; then
    cp "$BASELINE" "$TMP/baseline.prev"
    GATE_ARGS="-baseline $TMP/baseline.prev"
fi
"$TMP/nbodyd" -loadtest -target "$GW_URL" -duration "$DURATION" \
    -tenants "light:2:512,steady:2:1024" -light light \
    -json "$RESULTS" $GATE_ARGS >"$TMP/loadtest.log" 2>&1 &
LT_PID=$!
sleep 1
for i in 1 2 3; do
    pid=$(replica_pid $i)
    echo "fleettest: rolling restart: SIGTERM replica $i (pid $pid)"
    kill -TERM "$pid"
    wait "$pid" || { echo "fleettest: replica $i exited nonzero on drain" >&2; exit 1; }
    start_replica $i
    wait_health "$(replica_url $i)"
done
if ! wait "$LT_PID"; then
    echo "fleettest: FAIL: solve traffic saw errors during rolling restart" >&2
    tail -40 "$TMP/loadtest.log" >&2
    exit 1
fi
LT_PID=""
grep -E '^\|' "$TMP/loadtest.log" || true
echo "fleettest: gate 1 ok: rolling restart invisible to solve traffic"

# --- Gate 2: SIGKILL chaos under an in-flight stream ------------------------
"$TMP/nbodyreq" -kind simulate -n "$N" -seed "$SEED" -steps "$STEPS" -dt "$DT" \
    -depth "$DEPTH" -stream-every 1 -deadline-ms "$DEADLINE_MS" -url "$GW_URL" \
    >"$TMP/final_gw.json" 2>"$TMP/stream.log" &
ST_PID=$!
sleep 0.6
i=1
kills=0
while kill -0 "$ST_PID" 2>/dev/null; do
    pid=$(replica_pid $i)
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    kills=$((kills + 1))
    sleep 0.5
    start_replica $i
    wait_health "$(replica_url $i)"
    i=$((i % 3 + 1))
done
if ! wait "$ST_PID"; then
    echo "fleettest: FAIL: stream did not survive $kills SIGKILLs" >&2
    cat "$TMP/stream.log" >&2
    tail -20 "$TMP/gateway.log" >&2
    exit 1
fi
ST_PID=""
cat "$TMP/stream.log"

if ! cmp "$TMP/final_ref.json" "$TMP/final_gw.json"; then
    echo "fleettest: FAIL: final frame after $kills SIGKILLs differs from the uninterrupted run" >&2
    exit 1
fi

lost=$(curl -fsS "$GW_URL/v1/metrics" | jq '.gateway.streams_lost')
resumes=$(curl -fsS "$GW_URL/v1/metrics" | jq '.gateway.stream_resumes')
if [ "$lost" != "0" ]; then
    echo "fleettest: FAIL: gateway reports $lost lost streams" >&2
    exit 1
fi
echo "fleettest: gate 2 ok: $kills SIGKILLs, $resumes resumes, final frame bitwise-identical"
echo "fleettest: PASS"
