#!/bin/sh
# Closed-loop load test of the nbodyd solver service: for each admission
# policy, starts an in-process server on a loopback port, drives the
# synthetic tenant mix against it over real HTTP, and prints the markdown
# comparison table (p50/p95/p99 latency, goodput, plan-cache hit rate).
# Exits nonzero if any request drew a 5xx or a transport error.
#
#   scripts/loadtest.sh                         # default mix, 5s per policy
#   DURATION=10s scripts/loadtest.sh            # longer runs
#   NBODY_BACKEND=scalar scripts/loadtest.sh    # pin a backend
#   TENANTS="hog:8:4096,light:1:512" QUEUE=4 scripts/loadtest.sh
#
# The contended default mix pairs a hungry multi-shape tenant against light
# ones so the fifo-vs-fair difference (per-tenant tail latency under one
# tenant's burst) is visible in the per-tenant breakdown on stderr.
set -e

DURATION="${DURATION:-5s}"
TENANTS="${TENANTS:-hog:8:2048:4096,light:2:512,steady:2:1024}"
QUEUE="${QUEUE:-16}"
INFLIGHT="${INFLIGHT:-2}"
POLICIES="${POLICIES:-fifo,fair}"

cd "$(dirname "$0")/.."
exec go run ./cmd/nbodyd -loadtest \
    -duration "$DURATION" \
    -tenants "$TENANTS" \
    -queue-depth "$QUEUE" \
    -inflight "$INFLIGHT" \
    -policies "$POLICIES" \
    "$@"
