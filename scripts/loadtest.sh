#!/bin/sh
# Load test of the nbodyd solver service: for each (policy, overload-mode)
# pair, starts an in-process server on a loopback port, drives the
# synthetic tenant mix against it over real HTTP, and prints the markdown
# comparison table (shed/degraded/late counts, p50/p95/p99 latency,
# goodput, plan-cache hit rate). Exits nonzero if any well-behaved tenant
# drew a 5xx or a transport error, or — when a recorded baseline exists
# for the active backend — if the light tenant's p95 regressed against it
# by more than 1.5x + 100ms.
#
#   scripts/loadtest.sh                         # default mix, 5s per run
#   DURATION=10s scripts/loadtest.sh            # longer runs
#   NBODY_BACKEND=scalar scripts/loadtest.sh    # pin a backend
#   ARRIVAL=open REQ_DEADLINE=2s scripts/loadtest.sh   # true overload
#   TENANTS="hog:8:4096,light:1:512" QUEUE=4 scripts/loadtest.sh
#
# The contended default mix pairs a hungry multi-shape tenant against light
# ones so the fifo-vs-fair difference (per-tenant tail latency under one
# tenant's burst) is visible in the per-tenant breakdown on stderr. The
# results are recorded to $RESULTS (default BENCH_PR8.json) and gated
# against $BASELINE (default: the committed BENCH_PR8.json) when present.
set -e

DURATION="${DURATION:-5s}"
TENANTS="${TENANTS:-hog:8:2048:4096,light:2:512,steady:2:1024}"
QUEUE="${QUEUE:-16}"
INFLIGHT="${INFLIGHT:-2}"
POLICIES="${POLICIES:-fifo,fair}"
OVERLOAD="${OVERLOAD:-on}"
ARRIVAL="${ARRIVAL:-closed}"
REQ_DEADLINE="${REQ_DEADLINE:-0s}"
LIGHT="${LIGHT:-light}"
RESULTS="${RESULTS:-BENCH_PR8.json}"
BASELINE="${BASELINE:-BENCH_PR8.json}"

cd "$(dirname "$0")/.."

# Snapshot the committed baseline before the run overwrites $RESULTS, so
# the p95 gate always compares against the pre-run numbers even when
# $BASELINE and $RESULTS are the same path.
GATE_ARGS=""
if [ -f "$BASELINE" ]; then
    cp "$BASELINE" "$BASELINE.prev"
    GATE_ARGS="-baseline $BASELINE.prev"
fi

status=0
go run ./cmd/nbodyd -loadtest \
    -duration "$DURATION" \
    -tenants "$TENANTS" \
    -queue-depth "$QUEUE" \
    -inflight "$INFLIGHT" \
    -policies "$POLICIES" \
    -overload "$OVERLOAD" \
    -arrival "$ARRIVAL" \
    -req-deadline "$REQ_DEADLINE" \
    -light "$LIGHT" \
    -json "$RESULTS" \
    $GATE_ARGS \
    "$@" || status=$?
rm -f "$BASELINE.prev"
exit $status
