package main

import (
	"fmt"
	"log"

	"nbody"
)

// Example runs the plasma workload in miniature: a charge-neutral system
// solved at the fast preset, checked against the direct sum with the same
// error metric main uses. Small N keeps the test quick; the deterministic
// seed keeps the digit count stable.
func Example() {
	const n = 2000
	sys := nbody.NewNeutralSystem(n, 11)

	exact, err := nbody.NewDirect().Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		log.Fatal(err)
	}
	phi, err := solver.Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}

	// Charge neutrality makes the mean field small, so the relative error
	// reads looser here than on the charged systems of the paper's tables
	// (measured ~5e-3 at this N against ~4e-4 on the uniform system).
	fmt.Printf("total charge: %.0f\n", sys.TotalCharge())
	fmt.Printf("fast preset error below 1e-2: %v\n", relError(phi, exact) < 1e-2)
	// Output:
	// total charge: 0
	// fast preset error below 1e-2: true
}
