// Plasma: a charge-neutral cube of +1/-1 charges (plasma-physics workload).
// Sweeps the accuracy presets of Anderson's method against the direct sum,
// showing the paper's accuracy/time trade-off (Table 2 in miniature), then
// compares with Barnes-Hut.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"nbody"
)

func relError(got, want []float64) float64 {
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	return math.Sqrt(rms/float64(len(got))) / (mean / float64(len(got)))
}

func main() {
	const n = 8000
	sys := nbody.NewNeutralSystem(n, 11)
	box := sys.BoundingBox()

	fmt.Printf("charge-neutral cube, N=%d, total charge %.0f\n\n", n, sys.TotalCharge())

	start := time.Now()
	exact, _ := nbody.NewDirect().Potentials(sys)
	fmt.Printf("%-22s %10v %14s\n", "direct O(N^2)", time.Since(start).Round(time.Millisecond), "(reference)")

	for _, cfg := range []struct {
		name string
		acc  nbody.Accuracy
	}{
		{"anderson fast (D=5)", nbody.Fast},
		{"anderson balanced", nbody.Balanced},
		{"anderson accurate", nbody.Accurate},
	} {
		solver, err := nbody.NewAnderson(box, nbody.Options{Accuracy: cfg.acc})
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		phi, err := solver.Potentials(sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10v   err=%.2e (%.1f digits)\n",
			cfg.name, time.Since(start).Round(time.Millisecond),
			relError(phi, exact), -math.Log10(relError(phi, exact)))
	}

	bhSolver := nbody.NewBarnesHut(box, 0.5)
	start = time.Now()
	phi, err := bhSolver.Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10v   err=%.2e (%.1f digits)\n",
		"barnes-hut theta=0.5", time.Since(start).Round(time.Millisecond),
		relError(phi, exact), -math.Log10(relError(phi, exact)))
}
