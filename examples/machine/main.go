// Machine: run the same problem on simulated CM-5E machines of growing
// size and watch the paper's headline metrics — modeled time falling
// linearly with nodes, efficiency, communication fraction — plus a
// comparison of the four interactive-field communication strategies.
package main

import (
	"fmt"
	"log"
	"time"

	"nbody"
	"nbody/internal/dpfmm"
)

func main() {
	const n = 16384
	sys := nbody.NewUniformSystem(n, 5)
	box := sys.BoundingBox()
	opts := nbody.Options{Accuracy: nbody.Fast, Depth: 4}

	fmt.Printf("N=%d, depth 4, K=12; scaling the simulated machine\n\n", n)
	fmt.Printf("%6s %14s %10s %10s %18s\n", "nodes", "model seconds", "eff", "comm", "host wall")
	for _, nodes := range []int{4, 16, 64} {
		dpSolver, err := nbody.NewDataParallel(nodes, box, opts, dpfmm.LinearizedAliased)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := dpSolver.Potentials(sys); err != nil {
			log.Fatal(err)
		}
		r := dpSolver.Report("scale", n)
		fmt.Printf("%6d %14.4f %9.1f%% %9.1f%% %18v\n",
			nodes, r.ModelSeconds(), 100*r.Efficiency(), 100*r.CommFraction(),
			time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("\ninteractive-field strategies (16 nodes):\n")
	fmt.Printf("%-24s %14s %10s\n", "strategy", "model seconds", "comm")
	for _, strat := range []dpfmm.GhostStrategy{
		dpfmm.DirectUnaliased, dpfmm.LinearizedUnaliased,
		dpfmm.DirectAliased, dpfmm.LinearizedAliased,
	} {
		dpSolver, err := nbody.NewDataParallel(16, box, opts, strat)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dpSolver.Potentials(sys); err != nil {
			log.Fatal(err)
		}
		r := dpSolver.Report("strategy", n)
		fmt.Printf("%-24s %14.4f %9.1f%%\n", strat, r.ModelSeconds(), 100*r.CommFraction())
	}
}
