// Quickstart: compute the potential of 20,000 uniformly distributed charges
// with Anderson's O(N) method and verify a sample against the direct sum.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"nbody"
)

func main() {
	sys := nbody.NewUniformSystem(20000, 42)

	solver, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	phi, err := solver.Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Anderson O(N): %d potentials in %v (hierarchy depth %d)\n",
		len(phi), time.Since(start).Round(time.Millisecond), solver.Depth())

	// Spot-check ten particles against the exact sum.
	var worst float64
	for i := 0; i < 10; i++ {
		j := i * len(phi) / 10
		var exact float64
		for k, p := range sys.Positions {
			if k != j {
				exact += sys.Charges[k] / p.Dist(sys.Positions[j])
			}
		}
		rel := math.Abs(phi[j]-exact) / exact
		if rel > worst {
			worst = rel
		}
	}
	fmt.Printf("worst spot-check relative error: %.2e\n", worst)

	// Total electrostatic energy U = (1/2) sum q_i phi_i.
	var u float64
	for i := range phi {
		u += sys.Charges[i] * phi[i]
	}
	fmt.Printf("potential energy: %.6g\n", u/2)
}
