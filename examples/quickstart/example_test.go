package main

import (
	"fmt"
	"log"

	"nbody"
)

// ExampleNewAnderson is the quickstart in runnable-test form: build the
// solver, compute all potentials, spot-check one particle against the
// exact sum. The deterministic seed makes the accuracy check (and thus the
// Output) stable.
func ExampleNewAnderson() {
	sys := nbody.NewUniformSystem(2000, 42)

	solver, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		log.Fatal(err)
	}
	phi, err := solver.Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}

	// Exact potential at particle 0 by direct summation.
	var exact float64
	for k, p := range sys.Positions {
		if k != 0 {
			exact += sys.Charges[k] / p.Dist(sys.Positions[0])
		}
	}
	fmt.Printf("potentials: %d\n", len(phi))
	fmt.Printf("particle 0 within 1%% of exact: %v\n", (phi[0]-exact)/exact < 0.01)
	// Output:
	// potentials: 2000
	// particle 0 within 1% of exact: true
}

// ExampleAnderson_Stats shows the per-phase instrumentation: after a
// solve, Stats() reports where the time went, phase by phase.
func ExampleAnderson_Stats() {
	sys := nbody.NewUniformSystem(2000, 42)
	solver, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast, Depth: 3})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := solver.Potentials(sys); err != nil {
		log.Fatal(err)
	}

	st := solver.Stats()
	fmt.Printf("phases timed: %v\n", st.TotalTime() > 0)
	fmt.Printf("traversal flops > 0: %v\n", st.TraversalFlops() > 0)
	fmt.Printf("near-field pairs > 0: %v\n", st.NearPairs > 0)
	// st.Table() prints the paper-style breakdown:
	//   phase        time   Mflops/s  %solve
	//   sort         ...
	//   ...

	// Output:
	// phases timed: true
	// traversal flops > 0: true
	// near-field pairs > 0: true
}
