// Planar: the two-dimensional variant of Anderson's method — the paper
// stresses that the 2-D and 3-D codes are nearly identical. Cross-section
// of charged line sources (2-D Coulomb, phi = -sum q ln r): accuracy/time
// sweep over the number of circle integration points, with and without the
// 2-D supernode decomposition (75 -> 27 interactive translations).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"nbody"
	"nbody/internal/core2"
)

func main() {
	const n = 10000
	rng := rand.New(rand.NewSource(3))
	pos := make([]nbody.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = nbody.Vec2{X: rng.Float64(), Y: rng.Float64()}
		if i%2 == 0 {
			q[i] = 1
		} else {
			q[i] = -1
		}
	}
	box := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.0000001}

	start := time.Now()
	exact := nbody.DirectPotentials2D(pos, q)
	fmt.Printf("%-28s %10v   (reference)\n", "direct O(N^2)", time.Since(start).Round(time.Millisecond))

	rmsRef := 0.0
	for _, v := range exact {
		rmsRef += v * v
	}
	rmsRef = math.Sqrt(rmsRef / float64(n))

	for _, k := range []int{8, 16, 32} {
		solver, err := nbody.NewAnderson2D(box, nbody.Options2D{K: k, Depth: 5})
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		phi, err := solver.Potentials(pos, q)
		if err != nil {
			log.Fatal(err)
		}
		var rms float64
		for i := range phi {
			rms += (phi[i] - exact[i]) * (phi[i] - exact[i])
		}
		rms = math.Sqrt(rms / float64(n))
		fmt.Printf("%-28s %10v   err=%.2e\n",
			fmt.Sprintf("anderson 2-D K=%d", k),
			time.Since(start).Round(time.Millisecond), rms/rmsRef)
	}

	// Supernodes: same accuracy band, ~2.8x fewer interactive translations.
	for _, sup := range []bool{false, true} {
		s, err := core2.NewSolver(box, core2.Config{K: 16, Depth: 5, Supernodes: sup})
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		phi, err := s.Potentials(pos, q)
		if err != nil {
			log.Fatal(err)
		}
		var rms float64
		for i := range phi {
			rms += (phi[i] - exact[i]) * (phi[i] - exact[i])
		}
		rms = math.Sqrt(rms / float64(n))
		fmt.Printf("%-28s %10v   err=%.2e\n",
			fmt.Sprintf("anderson 2-D supernodes=%v", sup),
			time.Since(start).Round(time.Millisecond), rms/rmsRef)
	}
}
