// Galaxy: integrate a self-gravitating Plummer sphere for a few leapfrog
// steps, computing accelerations with Anderson's O(N) method each step and
// monitoring energy conservation — the celestial-mechanics workload the
// paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"time"

	"nbody"
)

func main() {
	// A cold Plummer sphere in free fall: with zero initial velocities the
	// early collapse is slow, so a small timestep holds total energy to a
	// few parts in 1e5 over the run.
	const (
		n     = 10000
		steps = 5
		dt    = 2e-5
	)
	sys := nbody.NewPlummerSystem(n, 7)
	vel := make([]nbody.Vec3, n) // cold start (free-fall test)

	// The domain must cover the particles for the whole run; pad the
	// initial bounding box (the non-adaptive method uses a fixed box).
	box := sys.BoundingBox()
	box.Side *= 1.2

	solver, err := nbody.NewAnderson(box, nbody.Options{Accuracy: nbody.Fast, Depth: 4})
	if err != nil {
		log.Fatal(err)
	}

	energy := func(phi []float64) (kin, pot float64) {
		for i := range vel {
			kin += 0.5 * sys.Charges[i] * vel[i].Norm2()
			pot -= 0.5 * sys.Charges[i] * phi[i] // gravity: U = -(1/2) sum m_i phi_i
		}
		return kin, pot
	}

	start := time.Now()
	phi, acc, err := solver.Accelerations(sys)
	if err != nil {
		log.Fatal(err)
	}
	k0, p0 := energy(phi)
	fmt.Printf("step  0: K=%.6f U=%.6f E=%.6f\n", k0, p0, k0+p0)

	for s := 1; s <= steps; s++ {
		// Leapfrog (kick-drift-kick).
		for i := range vel {
			vel[i] = vel[i].Add(acc[i].Scale(dt / 2))
			sys.Positions[i] = sys.Positions[i].Add(vel[i].Scale(dt))
		}
		phi, acc, err = solver.Accelerations(sys)
		if err != nil {
			log.Fatal(err)
		}
		for i := range vel {
			vel[i] = vel[i].Add(acc[i].Scale(dt / 2))
		}
		k, p := energy(phi)
		fmt.Printf("step %2d: K=%.6f U=%.6f E=%.6f (drift %+.2e)\n", s, k, p, k+p, (k+p)-(k0+p0))
	}
	fmt.Printf("%d steps of %d bodies in %v\n", steps, n, time.Since(start).Round(time.Millisecond))
}
