package nbody

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"nbody/internal/metrics"
	"nbody/internal/resilience"
)

// RetryPolicy configures a Resilient solver's supervisor. The zero value
// selects the defaults documented on each field; there are no required
// fields.
type RetryPolicy struct {
	// MaxAttempts is the attempt budget per rung (default 3); a rung's
	// first attempt is not a retry.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry (default 5ms); each
	// further retry multiplies it by BackoffMultiplier (default 2) up to
	// MaxBackoff (default 1s), with ±Jitter relative spread (default 0.2).
	BaseBackoff       time.Duration
	MaxBackoff        time.Duration
	BackoffMultiplier float64
	Jitter            float64
	// AttemptTimeout bounds each attempt; 0 derives a per-attempt budget
	// from the caller's context deadline when one exists (remaining time
	// divided evenly among the rung's remaining attempts).
	AttemptTimeout time.Duration
	// BreakerThreshold consecutive failures open a rung's circuit breaker
	// for BreakerCooldown (default 1s); 0 disables breakers. An open
	// breaker skips the rung outright until the cooldown expires.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// policy converts the public knobs to the supervisor's Policy, installing
// this package's error taxonomy as the classifier.
func (p RetryPolicy) policy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:      p.MaxAttempts,
		BaseBackoff:      p.BaseBackoff,
		MaxBackoff:       p.MaxBackoff,
		Multiplier:       p.BackoffMultiplier,
		Jitter:           p.Jitter,
		AttemptTimeout:   p.AttemptTimeout,
		BreakerThreshold: p.BreakerThreshold,
		BreakerCooldown:  p.BreakerCooldown,
		Classify:         classifyError,
	}
}

// errRungUnsupported marks a ladder rung that cannot perform the requested
// operation at all (a potentials-only solver asked for accelerations); the
// supervisor skips such rungs without burning retry attempts.
var errRungUnsupported = errors.New("nbody: rung does not support this operation")

// resilientOp selects which entry point an attempt executes; the in-flight
// arguments live on the Resilient so the prebuilt attempt closure carries
// no per-call state (the zero-allocation happy path).
type resilientOp int

const (
	opPotentials resilientOp = iota
	opPotentialsInto
	opAccelerations
	opAccelerationsInto
)

// Capability interfaces of the concrete solvers, asserted per rung so each
// attempt uses the richest entry point the rung offers (context-aware and
// allocation-free variants first).
type (
	potentialsCtxSolver interface {
		PotentialsCtx(context.Context, *System) ([]float64, error)
	}
	potentialsIntoSolver interface {
		PotentialsInto([]float64, *System) error
	}
	potentialsIntoCtxSolver interface {
		PotentialsIntoCtx(context.Context, []float64, *System) error
	}
	accelerationsCtxSolver interface {
		AccelerationsCtx(context.Context, *System) ([]float64, []Vec3, error)
	}
	accelerationsIntoCtxSolver interface {
		AccelerationsIntoCtx(context.Context, []float64, []Vec3, *System) error
	}
)

// Resilient wraps a degradation ladder of solvers behind the retry
// supervisor, turning the *InternalError safe-to-retry contract into
// self-healing solves: a failed attempt is retried with backoff, a rung
// that keeps failing (or whose circuit breaker is open) is abandoned for
// the next rung, and only a ladder-wide failure reaches the caller.
//
// Rung 0 is the preferred backend; later rungs are fallbacks in order,
// e.g. DataParallel → Anderson → BarnesHut → Direct. Rungs may have
// different capabilities: every rung can serve Potentials, but a rung
// without acceleration support (BarnesHut) is skipped by the acceleration
// entry points. Validation errors (ErrInvalidSystem, ErrOutOfDomain) abort
// the whole ladder — no fallback can repair a malformed input.
//
// Like the solvers it wraps, a Resilient runs one solve at a time. The
// happy path — first rung, first attempt succeeds — adds no retries, no
// metrics traffic, and (on the Into entry points over an Into-capable
// rung) no allocations.
type Resilient struct {
	rungs []Solver
	sup   *resilience.Supervisor
	name  string

	lastRung atomic.Int32

	// In-flight operation state; see resilientOp.
	op     resilientOp
	sys    *System
	phi    []float64
	acc    []Vec3
	outPhi []float64
	outAcc []Vec3

	attemptFn func(ctx context.Context, rung int) error
}

// NewResilient builds a Resilient over the given ladder (rung 0 first).
// At least one rung is required and every rung must be non-nil; violations
// are reported with ErrInvalidOptions.
func NewResilient(p RetryPolicy, rungs ...Solver) (*Resilient, error) {
	if len(rungs) == 0 {
		return nil, fmt.Errorf("%w: resilient ladder needs at least one rung", ErrInvalidOptions)
	}
	names := make([]string, len(rungs))
	for i, s := range rungs {
		if s == nil {
			return nil, fmt.Errorf("%w: resilient rung %d is nil", ErrInvalidOptions, i)
		}
		names[i] = s.Name()
	}
	sup, err := resilience.New(p.policy(), len(rungs))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	r := &Resilient{
		rungs: append([]Solver{}, rungs...),
		sup:   sup,
		name:  "resilient(" + strings.Join(names, "->") + ")",
	}
	r.attemptFn = r.attempt
	return r, nil
}

// Name identifies the solver and its ladder in comparison tables.
func (r *Resilient) Name() string { return r.name }

// LastRung returns the ladder index that served the most recent successful
// solve (0 = the preferred backend); it is the observable trace of a
// degradation.
func (r *Resilient) LastRung() int { return int(r.lastRung.Load()) }

// Counters returns this Resilient's own recovery-event counts (retries,
// breaker trips, ladder degradations), monotonic across its lifetime. A
// caller that owns the Resilient exclusively for the duration of one solve
// can diff two snapshots for exact per-solve attribution — the scoped
// counterpart of the process-wide metrics.ReadRecovery.
func (r *Resilient) Counters() (retries, breakerTrips, degradations int64) {
	c := r.sup.Counters()
	return c.Retries, c.BreakerTrips, c.Degradations
}

// RungNames lists the ladder's solver names in order.
func (r *Resilient) RungNames() []string {
	names := make([]string, len(r.rungs))
	for i, s := range r.rungs {
		names[i] = s.Name()
	}
	return names
}

// recFor exposes rung's phase recorder for panic attribution when the rung
// has one (nil otherwise).
func (r *Resilient) recFor(rung int) *metrics.Rec {
	if pr, ok := r.rungs[rung].(phaseRecorder); ok {
		return pr.activeRec()
	}
	return nil
}

// attempt executes the in-flight operation on one rung, preferring the
// rung's context-aware and allocation-free entry points. A panic escaping
// a rung without its own containment (BarnesHut, Direct) is recovered here
// into an *InternalError, so every rung failure enters the classifier as a
// typed error.
func (r *Resilient) attempt(ctx context.Context, rung int) (err error) {
	defer recoverInternal(r.recFor(rung), &err)
	s := r.rungs[rung]
	switch r.op {
	case opPotentials:
		if sv, ok := s.(potentialsCtxSolver); ok {
			r.outPhi, err = sv.PotentialsCtx(ctx, r.sys)
			return err
		}
		if err = ctx.Err(); err != nil {
			return err
		}
		r.outPhi, err = s.Potentials(r.sys)
		return err

	case opPotentialsInto:
		if sv, ok := s.(potentialsIntoCtxSolver); ok {
			return sv.PotentialsIntoCtx(ctx, r.phi, r.sys)
		}
		if sv, ok := s.(potentialsIntoSolver); ok {
			if err = ctx.Err(); err != nil {
				return err
			}
			return sv.PotentialsInto(r.phi, r.sys)
		}
		// Allocating fallback: a degraded rung trades the zero-alloc
		// contract for availability.
		var tmp []float64
		if sv, ok := s.(potentialsCtxSolver); ok {
			tmp, err = sv.PotentialsCtx(ctx, r.sys)
		} else {
			if err = ctx.Err(); err != nil {
				return err
			}
			tmp, err = s.Potentials(r.sys)
		}
		if err == nil {
			copy(r.phi, tmp)
		}
		return err

	case opAccelerations:
		if sv, ok := s.(accelerationsCtxSolver); ok {
			r.outPhi, r.outAcc, err = sv.AccelerationsCtx(ctx, r.sys)
			return err
		}
		if sv, ok := s.(Accelerator); ok {
			if err = ctx.Err(); err != nil {
				return err
			}
			r.outPhi, r.outAcc, err = sv.Accelerations(r.sys)
			return err
		}
		return fmt.Errorf("%w: %s cannot compute accelerations", errRungUnsupported, s.Name())

	case opAccelerationsInto:
		if sv, ok := s.(accelerationsIntoCtxSolver); ok {
			return sv.AccelerationsIntoCtx(ctx, r.phi, r.acc, r.sys)
		}
		if sv, ok := s.(AcceleratorInto); ok {
			if err = ctx.Err(); err != nil {
				return err
			}
			return sv.AccelerationsInto(r.phi, r.acc, r.sys)
		}
		if sv, ok := s.(Accelerator); ok {
			if err = ctx.Err(); err != nil {
				return err
			}
			var tphi []float64
			var tacc []Vec3
			tphi, tacc, err = sv.Accelerations(r.sys)
			if err == nil {
				copy(r.phi, tphi)
				copy(r.acc, tacc)
			}
			return err
		}
		return fmt.Errorf("%w: %s cannot compute accelerations", errRungUnsupported, s.Name())
	}
	return fmt.Errorf("nbody: unknown resilient op %d", r.op)
}

// do drives the supervisor for the prepared operation and clears the
// in-flight references afterwards so the Resilient never retains caller
// slices between solves.
func (r *Resilient) do(ctx context.Context) error {
	rung, err := r.sup.Do(ctx, r.attemptFn)
	if err == nil {
		r.lastRung.Store(int32(rung))
	}
	r.sys, r.phi, r.acc = nil, nil, nil
	return err
}

// Potentials computes the potential at every particle, healing transient
// failures through the ladder.
func (r *Resilient) Potentials(s *System) ([]float64, error) {
	return r.PotentialsCtx(context.Background(), s)
}

// PotentialsCtx is Potentials with cancellation: the context bounds every
// attempt and every backoff sleep of the supervisor.
func (r *Resilient) PotentialsCtx(ctx context.Context, s *System) ([]float64, error) {
	r.op, r.sys = opPotentials, s
	err := r.do(ctx)
	out := r.outPhi
	r.outPhi, r.outAcc = nil, nil
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PotentialsInto computes the potentials into the caller-owned slice phi
// (length s.Len()). On a rung supporting in-place solves (Anderson) the
// happy path allocates nothing; degraded rungs may allocate.
func (r *Resilient) PotentialsInto(phi []float64, s *System) error {
	return r.PotentialsIntoCtx(context.Background(), phi, s)
}

// PotentialsIntoCtx is PotentialsInto with cancellation.
func (r *Resilient) PotentialsIntoCtx(ctx context.Context, phi []float64, s *System) error {
	if len(phi) != s.Len() {
		return fmt.Errorf("%w: %d-length output slice for %d particles", ErrInvalidSystem, len(phi), s.Len())
	}
	r.op, r.sys, r.phi = opPotentialsInto, s, phi
	return r.do(ctx)
}

// Accelerations computes potentials and fields, skipping ladder rungs that
// cannot produce accelerations (e.g. BarnesHut).
func (r *Resilient) Accelerations(s *System) ([]float64, []Vec3, error) {
	return r.AccelerationsCtx(context.Background(), s)
}

// AccelerationsCtx is Accelerations with cancellation.
func (r *Resilient) AccelerationsCtx(ctx context.Context, s *System) ([]float64, []Vec3, error) {
	r.op, r.sys = opAccelerations, s
	err := r.do(ctx)
	phi, acc := r.outPhi, r.outAcc
	r.outPhi, r.outAcc = nil, nil
	if err != nil {
		return nil, nil, err
	}
	return phi, acc, nil
}

// AccelerationsInto computes potentials and fields into caller-owned
// slices (each length s.Len()); this is the time-stepping path, so a
// Simulation running on a Resilient inherits the whole self-healing layer.
func (r *Resilient) AccelerationsInto(phi []float64, acc []Vec3, s *System) error {
	return r.AccelerationsIntoCtx(context.Background(), phi, acc, s)
}

// AccelerationsIntoCtx is AccelerationsInto with cancellation.
func (r *Resilient) AccelerationsIntoCtx(ctx context.Context, phi []float64, acc []Vec3, s *System) error {
	if len(phi) != s.Len() || len(acc) != s.Len() {
		return fmt.Errorf("%w: output slices (%d, %d) for %d particles", ErrInvalidSystem, len(phi), len(acc), s.Len())
	}
	r.op, r.sys, r.phi, r.acc = opAccelerationsInto, s, phi, acc
	return r.do(ctx)
}

var (
	_ Solver          = (*Resilient)(nil)
	_ Accelerator     = (*Resilient)(nil)
	_ AcceleratorInto = (*Resilient)(nil)
)
