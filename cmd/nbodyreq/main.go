// Command nbodyreq generates deterministic solver-service request bodies
// and, with -url, drives them against a live server — the fleet test's
// client. The same seed always yields the same particle system, so two
// runs against different servers (a gateway with replicas dying under it
// versus one quiet single process) are comparable bitwise.
//
// Generate a request body:
//
//	nbodyreq -kind simulate -n 64 -seed 7 -steps 600 -dt 1e-5 > req.json
//
// Drive it and verify the stream (monotone steps, no interrupted frames or
// token leaks, a final frame at exactly -steps), printing the canonical
// final frame to stdout:
//
//	nbodyreq -kind simulate -n 64 -seed 7 -steps 600 -dt 1e-5 \
//	         -stream-every 1 -depth 3 -url http://127.0.0.1:8040 > final.json
//
// Pinning -depth (and -accuracy) makes the trajectory independent of the
// server's autotuner, which is what lets the fleet test demand bitwise
// equality between the two final frames.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"nbody"
	"nbody/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nbodyreq: ")
	var (
		kind   = flag.String("kind", "solve", "request kind: solve | simulate")
		n      = flag.Int("n", 256, "particle count")
		seed   = flag.Int64("seed", 7, "particle-system seed (same seed, same system)")
		tenant = flag.String("tenant", "fleet", "tenant name")

		accuracy   = flag.String("accuracy", "fast", "accuracy preset: fast | balanced | accurate")
		depth      = flag.Int("depth", 0, "hierarchy depth (0 = server auto; pin it for bitwise comparisons)")
		supernodes = flag.Bool("supernodes", false, "enable the supernode reduction")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-request deadline in ms (0 = server default)")

		steps     = flag.Int("steps", 600, "simulate: leapfrog steps")
		dt        = flag.Float64("dt", 1e-5, "simulate: timestep")
		every     = flag.Int("stream-every", 1, "simulate: emit a frame every k steps (0 = final only)")
		ckptEvery = flag.Int("checkpoint-every", 0, "simulate: attach a resume token every k emitted frames (0 = none)")

		url = flag.String("url", "", "POST the request to this base URL instead of printing it; simulate responses are verified as streams and reduced to the canonical final frame")
	)
	flag.Parse()

	body, err := buildBody(*kind, *n, *seed, *tenant, *accuracy, *depth, *supernodes, *deadlineMS, *steps, *dt, *every, *ckptEvery)
	if err != nil {
		log.Fatal(err)
	}
	if *url == "" {
		os.Stdout.Write(append(body, '\n'))
		return
	}
	base := strings.TrimRight(*url, "/")
	switch *kind {
	case "solve":
		err = driveSolve(base, body)
	case "simulate":
		err = driveSimulate(base, body, *steps, *every, *ckptEvery)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func buildBody(kind string, n int, seed int64, tenant, accuracy string, depth int, supernodes bool, deadlineMS int64, steps int, dt float64, every, ckptEvery int) ([]byte, error) {
	sys := nbody.NewUniformSystem(n, seed)
	sr := serve.SolveRequest{
		Tenant:     tenant,
		Positions:  make([][3]float64, n),
		Charges:    sys.Charges,
		Accuracy:   accuracy,
		Depth:      depth,
		Supernodes: supernodes,
		DeadlineMS: deadlineMS,
	}
	for i, p := range sys.Positions {
		sr.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	switch kind {
	case "solve":
		return json.Marshal(sr)
	case "simulate":
		return json.Marshal(serve.SimulateRequest{
			SolveRequest:    sr,
			Steps:           steps,
			DT:              dt,
			StreamEvery:     every,
			CheckpointEvery: ckptEvery,
		})
	default:
		return nil, fmt.Errorf("unknown -kind %q (solve | simulate)", kind)
	}
}

// driveSolve posts one solve and prints the response body; any non-200 is
// fatal with the server's error body.
func driveSolve(base string, body []byte) error {
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("solve: %s: %s", resp.Status, bytes.TrimSpace(out))
	}
	os.Stdout.Write(out)
	return nil
}

// driveSimulate posts one simulate request, verifies the NDJSON stream's
// invariants as a client would experience them, and prints the final frame
// in canonical form (re-marshaled, resume token cleared) so two runs can be
// compared with cmp(1).
func driveSimulate(base string, body []byte, steps, every, ckptEvery int) error {
	resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("simulate: %s: %s", resp.Status, bytes.TrimSpace(out))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	var (
		frames   int
		lastStep = -1
		final    *serve.Frame
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var f serve.Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("simulate: torn frame after step %d: %v", lastStep, err)
		}
		frames++
		if f.Interrupted {
			return fmt.Errorf("simulate: interrupted frame leaked at step %d", f.Step)
		}
		if f.ResumeToken != "" && ckptEvery == 0 {
			return fmt.Errorf("simulate: unrequested resume token leaked at step %d", f.Step)
		}
		if f.Step <= lastStep {
			return fmt.Errorf("simulate: step went backwards: %d after %d", f.Step, lastStep)
		}
		lastStep = f.Step
		if f.Final {
			final = &f
			break
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("simulate: stream read after step %d: %v", lastStep, err)
	}
	switch {
	case final == nil:
		return fmt.Errorf("simulate: stream ended without a final frame (last step %d, %d frames)", lastStep, frames)
	case final.Step != steps:
		return fmt.Errorf("simulate: final frame at step %d, want %d", final.Step, steps)
	case len(final.Positions) == 0:
		return fmt.Errorf("simulate: final frame carries no particle state")
	case every == 1 && frames != steps:
		return fmt.Errorf("simulate: %d frames for %d steps at stream_every=1", frames, steps)
	}
	fmt.Fprintf(os.Stderr, "nbodyreq: simulate ok: %d frames, final step %d\n", frames, final.Step)

	final.ResumeToken = ""
	out, err := json.Marshal(final)
	if err != nil {
		return err
	}
	os.Stdout.Write(append(out, '\n'))
	return nil
}
