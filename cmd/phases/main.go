// Command phases runs one solve and prints the per-phase breakdown the
// paper reports in its phase tables: wall time, sustained Mflops/s, and
// share of the total solve per phase, plus translation and near-field pair
// counts. It exercises the instrumentation layer end to end (phase spans,
// analytic flop counters, BLAS call counters, scheduler worker stats).
//
//	phases                         # shared-memory solver, N=32768, depth 4, K=12
//	phases -solver dp -nodes 8     # data-parallel solver on the simulated machine
//	phases -solver 2d -depth 4     # the 2-D solver
//	phases -degree 13              # the high-accuracy configuration
//	phases -json                   # machine-readable output (scripts/bench.sh)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"nbody"
	"nbody/internal/blas"
	"nbody/internal/cli"
	"nbody/internal/dpfmm"
	"nbody/internal/metrics"
	"nbody/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phases: ")
	var (
		solver  = flag.String("solver", "core", "solver: core | dp | 2d")
		n       = flag.Int("n", 32768, "particles")
		depth   = flag.Int("depth", 4, "hierarchy depth")
		degree  = flag.Int("degree", 5, "integration order D (5 -> K=12, 13 -> K=98)")
		nodes   = flag.Int("nodes", 8, "simulated machine nodes (dp solver)")
		seed    = flag.Int64("seed", 1, "particle seed")
		solves  = flag.Int("solves", 1, "number of solves to accumulate")
		asJSON  = flag.Bool("json", false, "emit JSON instead of the table")
		workers = flag.Bool("workers", true, "capture per-worker scheduler utilization")
		backend = flag.String("backend", "auto", cli.BackendHelp)

		autotune  = flag.Bool("autotune", false, cli.AutotuneHelp)
		planStore = flag.String("plan-store", "", cli.PlanStoreHelp)
	)
	flag.Parse()

	// The backend switch happens before any solver exists, so every kernel
	// the solve dispatches — and the backend tag the snapshot records — is
	// the selected one.
	if err := cli.SetBackend(*backend); err != nil {
		log.Fatal(err)
	}

	// Plan resolution happens before the counters are armed, so autotune
	// bench solves do not pollute the reported breakdown. An explicit -depth
	// pins the depth; otherwise the planner chooses it (tuned entry, measured
	// search under -autotune, or the analytic cost model).
	if *autotune || *planStore != "" {
		if *solver != "core" {
			log.Fatal("-autotune/-plan-store apply to -solver core")
		}
		depthSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "depth" {
				depthSet = true
			}
		})
		d := *depth
		if !depthSet {
			d = 0
		}
		sys := nbody.NewUniformSystem(*n, *seed)
		spec := cli.Spec{Kind: "core", Opts: nbody.Options{Degree: *degree, Depth: d}}
		pf := cli.PlanFlags{Autotune: *autotune, Store: *planStore}
		planner, err := pf.Planner(0)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = pf.Apply(planner, spec, sys, accuracyOfDegree(*degree), sys.BoundingBox())
		if err != nil {
			log.Fatal(err)
		}
		if err := pf.Save(planner); err != nil {
			log.Fatal(err)
		}
		*depth = spec.Opts.Depth
	}

	if *workers {
		sched.EnableStats(true)
		sched.ResetStats()
	}
	blas.EnableCounters(true)
	blas.ResetCounters()

	st, err := run(*solver, *n, *depth, *degree, *nodes, *seed, *solves)
	if err != nil {
		log.Fatal(err)
	}
	if *workers {
		st.CaptureWorkers()
	}
	// Recovery, overload, and planner counters ride along in both outputs;
	// on a run that exercised none of them the sections are zero and the
	// table and JSON omit them.
	st.CaptureRecovery()
	st.CaptureOverload()
	st.CapturePlanner()

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("solver=%s solves=%d\n", *solver, *solves)
	fmt.Print(st.Table())
	c := blas.ReadCounters()
	fmt.Printf("  blas: %d gemm calls (%d flops), %d gemv calls (%d flops)\n",
		c.GemmCalls, c.GemmFlops, c.GemvCalls, c.GemvFlops)
	fmt.Printf("  heap: %d allocs, %d B across %d solve(s)\n", st.HeapAllocs, st.HeapBytes, *solves)
	if len(st.Workers) > 0 {
		var jobs int64
		for _, w := range st.Workers {
			jobs += w.Jobs
		}
		fmt.Printf("  sched: %d participants, %d timed jobs\n", len(st.Workers), jobs)
	}
}

// accuracyOfDegree maps the -degree flag onto the plan subsystem's accuracy
// preset names (degree 5/9/13 are the paper's configurations; anything else
// keys as the nearest-below preset).
func accuracyOfDegree(degree int) string {
	switch {
	case degree >= 13:
		return "accurate"
	case degree >= 9:
		return "balanced"
	default:
		return "fast"
	}
}

func run(solver string, n, depth, degree int, nodes int, seed int64, solves int) (*metrics.Snapshot, error) {
	// The 2-D solver has its own particle and options types; everything else
	// goes through the shared flag → solver selection in internal/cli.
	if solver == "2d" {
		pos, q := cli.System2D(n, seed)
		a, err := nbody.NewAnderson2D(cli.Box2DUnit(), nbody.Options2D{Depth: depth})
		if err != nil {
			return nil, err
		}
		var d metrics.AllocDelta
		d.Start()
		for i := 0; i < solves; i++ {
			if _, err := a.Potentials(pos, q); err != nil {
				return nil, err
			}
		}
		st := a.Stats()
		d.CaptureInto(st)
		return st, nil
	}

	if solver != "core" && solver != "dp" {
		return nil, fmt.Errorf("unknown solver %q (core | dp | 2d)", solver)
	}
	sys := nbody.NewUniformSystem(n, seed)
	spec := cli.Spec{
		Kind:     solver,
		Opts:     nbody.Options{Degree: degree, Depth: depth},
		Nodes:    nodes,
		Strategy: dpfmm.LinearizedAliased,
	}
	s, err := spec.New(sys.BoundingBox())
	if err != nil {
		return nil, err
	}
	var probe metrics.AllocDelta
	probe.Start()
	for i := 0; i < solves; i++ {
		if _, err := s.Potentials(sys); err != nil {
			return nil, err
		}
	}
	var st *metrics.Snapshot
	switch sv := s.(type) {
	case *nbody.Anderson:
		st = sv.Stats()
	case *nbody.DataParallel:
		st = sv.Machine.Stats()
	}
	probe.CaptureInto(st)
	return st, nil
}
