// Command phases runs one solve and prints the per-phase breakdown the
// paper reports in its phase tables: wall time, sustained Mflops/s, and
// share of the total solve per phase, plus translation and near-field pair
// counts. It exercises the instrumentation layer end to end (phase spans,
// analytic flop counters, BLAS call counters, scheduler worker stats).
//
//	phases                         # shared-memory solver, N=32768, depth 4, K=12
//	phases -solver dp -nodes 8     # data-parallel solver on the simulated machine
//	phases -solver 2d -depth 4     # the 2-D solver
//	phases -degree 13              # the high-accuracy configuration
//	phases -json                   # machine-readable output (scripts/bench.sh)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"nbody"
	"nbody/internal/blas"
	"nbody/internal/dpfmm"
	"nbody/internal/metrics"
	"nbody/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phases: ")
	var (
		solver  = flag.String("solver", "core", "solver: core | dp | 2d")
		n       = flag.Int("n", 32768, "particles")
		depth   = flag.Int("depth", 4, "hierarchy depth")
		degree  = flag.Int("degree", 5, "integration order D (5 -> K=12, 13 -> K=98)")
		nodes   = flag.Int("nodes", 8, "simulated machine nodes (dp solver)")
		seed    = flag.Int64("seed", 1, "particle seed")
		solves  = flag.Int("solves", 1, "number of solves to accumulate")
		asJSON  = flag.Bool("json", false, "emit JSON instead of the table")
		workers = flag.Bool("workers", true, "capture per-worker scheduler utilization")
	)
	flag.Parse()

	if *workers {
		sched.EnableStats(true)
		sched.ResetStats()
	}
	blas.EnableCounters(true)
	blas.ResetCounters()

	st, err := run(*solver, *n, *depth, *degree, *nodes, *seed, *solves)
	if err != nil {
		log.Fatal(err)
	}
	if *workers {
		st.CaptureWorkers()
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("solver=%s solves=%d\n", *solver, *solves)
	fmt.Print(st.Table())
	c := blas.ReadCounters()
	fmt.Printf("  blas: %d gemm calls (%d flops), %d gemv calls (%d flops)\n",
		c.GemmCalls, c.GemmFlops, c.GemvCalls, c.GemvFlops)
	fmt.Printf("  heap: %d allocs, %d B across %d solve(s)\n", st.HeapAllocs, st.HeapBytes, *solves)
	if len(st.Workers) > 0 {
		var jobs int64
		for _, w := range st.Workers {
			jobs += w.Jobs
		}
		fmt.Printf("  sched: %d participants, %d timed jobs\n", len(st.Workers), jobs)
	}
}

func run(solver string, n, depth, degree int, nodes int, seed int64, solves int) (*metrics.Snapshot, error) {
	sys := nbody.NewUniformSystem(n, seed)
	box := sys.BoundingBox()
	switch solver {
	case "core":
		a, err := nbody.NewAnderson(box, nbody.Options{Degree: degree, Depth: depth})
		if err != nil {
			return nil, err
		}
		var d metrics.AllocDelta
		d.Start()
		for i := 0; i < solves; i++ {
			if _, err := a.Potentials(sys); err != nil {
				return nil, err
			}
		}
		st := a.Stats()
		d.CaptureInto(st)
		return st, nil
	case "dp":
		d, err := nbody.NewDataParallel(nodes, box, nbody.Options{Degree: degree, Depth: depth}, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		var probe metrics.AllocDelta
		probe.Start()
		for i := 0; i < solves; i++ {
			if _, err := d.Potentials(sys); err != nil {
				return nil, err
			}
		}
		st := d.Machine.Stats()
		probe.CaptureInto(st)
		return st, nil
	case "2d":
		rng := rand.New(rand.NewSource(seed))
		pos := make([]nbody.Vec2, n)
		q := make([]float64, n)
		for i := range pos {
			pos[i] = nbody.Vec2{X: rng.Float64(), Y: rng.Float64()}
			q[i] = rng.Float64() - 0.5
		}
		a, err := nbody.NewAnderson2D(
			nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.001},
			nbody.Options2D{Depth: depth})
		if err != nil {
			return nil, err
		}
		var d metrics.AllocDelta
		d.Start()
		for i := 0; i < solves; i++ {
			if _, err := a.Potentials(pos, q); err != nil {
				return nil, err
			}
		}
		st := a.Stats()
		d.CaptureInto(st)
		return st, nil
	default:
		return nil, fmt.Errorf("unknown solver %q (core | dp | 2d)", solver)
	}
}
