// Command tables regenerates the data tables and figures of Hu & Johnsson
// SC'96 on the simulated data-parallel machine, printing measured values
// alongside the paper's reported ones. Run with no flags to regenerate
// everything at laptop scale, or select individual artifacts:
//
//	tables -table 4            # one table (1-4)
//	tables -figure 7           # one figure (7-9)
//	tables -claim accuracy     # accuracy | scaling-n | scaling-p | depth |
//	                           # supernodes | aggregation
//	tables -nodes 64 -n 131072 # scale the machine / problem up
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nbody/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		table  = flag.Int("table", 0, "regenerate one table (1-4)")
		figure = flag.Int("figure", 0, "regenerate one figure (7-9)")
		claim  = flag.String("claim", "", "check one claim: accuracy|scaling-n|scaling-p|depth|supernodes|aggregation|memory|reshape|load-balance")
		nodes  = flag.Int("nodes", 0, "simulated machine nodes (0 = per-experiment default)")
		n      = flag.Int("n", 0, "particles (0 = per-experiment default)")
		depth  = flag.Int("depth", 0, "hierarchy depth (0 = per-experiment default)")
	)
	flag.Parse()

	all := *table == 0 && *figure == 0 && *claim == ""
	run := func(name string, fn func() (fmt.Stringer, error)) {
		r, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(r.String())
	}

	if all || *table == 1 {
		run("table 1", func() (fmt.Stringer, error) {
			return experiments.Table1(experiments.Table1Config{N: *n, Nodes: *nodes, Depth: *depth})
		})
	}
	if all || *table == 2 {
		run("table 2", func() (fmt.Stringer, error) { return experiments.Table2(), nil })
	}
	if all || *table == 3 {
		run("table 3", func() (fmt.Stringer, error) { return experiments.Table3(*nodes, *depth) })
	}
	if all || *table == 4 {
		run("table 4", func() (fmt.Stringer, error) { return experiments.Table4(*nodes, *depth) })
	}
	if all || *figure == 7 {
		run("figure 7", func() (fmt.Stringer, error) { return experiments.Figure7(*nodes, *depth) })
	}
	if all || *figure == 8 {
		run("figure 8", func() (fmt.Stringer, error) { return experiments.Figure8(*nodes) })
	}
	if all || *figure == 9 {
		run("figure 9", func() (fmt.Stringer, error) {
			if *nodes != 0 {
				return experiments.Figure9([]int{*nodes})
			}
			return experiments.Figure9(nil)
		})
	}
	runClaim := func(name string) {
		switch name {
		case "accuracy":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimAccuracy(*n) })
		case "scaling-n":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimScalingN(*nodes) })
		case "scaling-p":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimScalingP(*n, *depth) })
		case "depth":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimOptimalDepth(*n) })
		case "supernodes":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimSupernodes(*n) })
		case "aggregation":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimAggregation(*n) })
		case "memory":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimMemory() })
		case "reshape":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimReshape(*n) })
		case "load-balance":
			run(name, func() (fmt.Stringer, error) { return experiments.ClaimLoadBalance(*n) })
		default:
			fmt.Fprintf(os.Stderr, "unknown claim %q\n", name)
			os.Exit(2)
		}
	}
	if all {
		for _, c := range []string{"accuracy", "scaling-n", "scaling-p", "depth", "supernodes", "aggregation", "memory", "reshape", "load-balance"} {
			runClaim(c)
		}
	} else if *claim != "" {
		runClaim(*claim)
	}
}
