// Command nbodyd is the N-body solver service: a multi-tenant HTTP server
// around the repo's solver stack, with per-tenant admission control, a
// solver-plan cache, and the self-healing degradation ladder per request.
//
//	nbodyd -addr :8042 -policy fair -fallback bh,direct
//
// With -loadtest it instead runs the closed-loop load harness against
// in-process servers — one per admission policy — and prints the markdown
// comparison table the experiments record, exiting nonzero if any request
// drew a 5xx:
//
//	nbodyd -loadtest -duration 5s -tenants "alice:4:2048,bob:4:2048,carol:2:8192"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nbody/internal/cli"
	"nbody/internal/serve"
	"nbody/internal/serve/loadgen"
	"nbody/internal/simd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8042", "listen address")
		workers   = flag.Int("workers", 0, "solver workers (0 = GOMAXPROCS/2)")
		queue     = flag.Int("queue-depth", 16, "per-tenant queue depth (admission bound)")
		inflight  = flag.Int("inflight", 2, "per-tenant in-flight cap under the fair policy (-1 = uncapped)")
		policy    = flag.String("policy", "fair", "admission policy: fair | fifo")
		planCache = flag.Int("plan-cache", 8, "idle warm plans retained (-1 disables reuse)")
		maxN      = flag.Int("max-n", 131072, "particle-count cap per request")
		maxDepth  = flag.Int("max-depth", 6, "hierarchy-depth cap per request")
		deadline  = flag.Duration("deadline", 60*time.Second, "default per-request deadline")
		fallback  = flag.String("fallback", "", "degradation ladder below Anderson, comma-separated (e.g. bh,direct)")
		backend   = flag.String("backend", "", "compute backend: scalar | avx2 (default: auto-detect)")
		quiet     = flag.Bool("quiet", false, "drop per-request logs")

		loadtest = flag.Bool("loadtest", false, "run the closed-loop load harness instead of serving")
		duration = flag.Duration("duration", 5*time.Second, "loadtest: duration per policy")
		tenants  = flag.String("tenants", "alice:4:2048,bob:4:2048,carol:2:8192",
			"loadtest: tenant spec name:concurrency:n[:n...], comma-separated")
		policies = flag.String("policies", "fifo,fair", "loadtest: admission policies to compare")
		think    = flag.Duration("think", 0, "loadtest: per-tenant think time between requests")
	)
	flag.Parse()

	if *backend != "" {
		if err := cli.SetBackend(*backend); err != nil {
			log.Fatalf("nbodyd: %v", err)
		}
	}

	cfg := serve.Config{
		Workers:           *workers,
		Policy:            serve.Policy(*policy),
		QueueDepth:        *queue,
		InflightPerTenant: *inflight,
		PlanCacheCap:      *planCache,
		MaxN:              *maxN,
		MaxDepth:          *maxDepth,
		DefaultDeadline:   *deadline,
		Ladder:            *fallback,
		Quiet:             *quiet,
	}

	if *loadtest {
		if err := runLoadtest(cfg, *policies, *tenants, *duration, *think); err != nil {
			log.Fatalf("nbodyd: %v", err)
		}
		return
	}
	if err := serveForever(cfg, *addr); err != nil {
		log.Fatalf("nbodyd: %v", err)
	}
}

// serveForever runs the server until SIGINT/SIGTERM, then drains.
func serveForever(cfg serve.Config, addr string) error {
	if _, err := serve.ParsePolicy(string(cfg.Policy)); err != nil {
		return err
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("nbodyd: serving on %s (backend=%s policy=%s)", addr, simd.Active(), cfg.Policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case s := <-sig:
		log.Printf("nbodyd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
		return nil
	}
}

// runLoadtest starts one in-process server per policy on a loopback
// listener, drives the same tenant mix against each over real HTTP, and
// prints the comparison table. Any 5xx fails the run.
func runLoadtest(cfg serve.Config, policies, tenantSpec string, duration, think time.Duration) error {
	ts, err := parseTenants(tenantSpec, think)
	if err != nil {
		return err
	}
	var results []*loadgen.Result
	for _, pol := range strings.Split(policies, ",") {
		pol = strings.TrimSpace(pol)
		p, err := serve.ParsePolicy(pol)
		if err != nil {
			return err
		}
		c := cfg
		c.Policy = p
		c.Quiet = true
		res, err := runOnePolicy(c, ts, duration)
		if err != nil {
			return err
		}
		res.Policy = pol
		results = append(results, res)
		fmt.Fprint(os.Stderr, res.Summary())
	}

	fmt.Printf("\nbackend=%s workers=%d queue-depth=%d inflight-cap=%d duration=%s\n\n",
		simd.Active(), cfg.Workers, cfg.QueueDepth, cfg.InflightPerTenant, duration)
	fmt.Println(loadgen.TableHeader())
	bad := int64(0)
	for _, r := range results {
		fmt.Println(r.TableRow())
		bad += r.Total.Err5xx + r.Total.OtherErr
	}
	if bad > 0 {
		return fmt.Errorf("loadtest: %d requests failed with 5xx/transport errors", bad)
	}
	return nil
}

// runOnePolicy runs one harness pass against a fresh server.
func runOnePolicy(cfg serve.Config, tenants []loadgen.Tenant, duration time.Duration) (*loadgen.Result, error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	return loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Duration: duration,
		Tenants:  tenants,
	})
}

// parseTenants parses "name:concurrency:n[:n...]" specs: each trailing
// integer is one problem size in the tenant's shape rotation.
func parseTenants(spec string, think time.Duration) ([]loadgen.Tenant, error) {
	var out []loadgen.Tenant
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("tenant spec %q: want name:concurrency:n[:n...]", part)
		}
		conc, err := strconv.Atoi(fields[1])
		if err != nil || conc < 1 {
			return nil, fmt.Errorf("tenant spec %q: bad concurrency %q", part, fields[1])
		}
		t := loadgen.Tenant{Name: fields[0], Concurrency: conc, Think: think}
		for _, f := range fields[2:] {
			n, err := strconv.Atoi(f)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("tenant spec %q: bad N %q", part, f)
			}
			t.Shapes = append(t.Shapes, loadgen.Shape{N: n})
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenant spec %q: no tenants", spec)
	}
	return out, nil
}
