// Command nbodyd is the N-body solver service: a multi-tenant HTTP server
// around the repo's solver stack, with per-tenant admission control,
// cost-model deadline shedding, adaptive brownout, a solver-plan cache, and
// the self-healing degradation ladder per request.
//
//	nbodyd -addr :8042 -policy fair -fallback bh,direct
//
// With -loadtest it instead runs the load harness against in-process
// servers — one per (policy, overload-mode) pair — and prints the markdown
// comparison table the experiments record, exiting nonzero if any request
// drew a 5xx or the light tenant's p95 regressed against a recorded
// baseline:
//
//	nbodyd -loadtest -duration 5s -tenants "alice:4:2048,bob:4:2048,carol:2:8192"
//	nbodyd -loadtest -arrival open -req-deadline 2s -overload off,on \
//	       -tenants "light:10:2048,flood:200:8192" -json BENCH_PR8.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nbody/internal/cli"
	"nbody/internal/metrics"
	"nbody/internal/serve"
	"nbody/internal/serve/loadgen"
	"nbody/internal/simd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8042", "listen address")
		workers   = flag.Int("workers", 0, "solver workers (0 = GOMAXPROCS/2)")
		queue     = flag.Int("queue-depth", 16, "per-tenant queue depth (admission bound)")
		inflight  = flag.Int("inflight", 2, "per-tenant in-flight cap under the fair policy (-1 = uncapped)")
		policy    = flag.String("policy", "fair", "admission policy: fair | fifo")
		planCache = flag.Int("plan-cache", 8, "idle warm plans retained (-1 disables reuse)")
		maxN      = flag.Int("max-n", 131072, "particle-count cap per request")
		maxDepth  = flag.Int("max-depth", 6, "hierarchy-depth cap per request")
		deadline  = flag.Duration("deadline", 60*time.Second, "default per-request deadline")
		fallback  = flag.String("fallback", "", "degradation ladder below Anderson, comma-separated (e.g. bh,direct)")
		backend   = flag.String("backend", "", "compute backend: scalar | avx2 (default: auto-detect)")
		quiet     = flag.Bool("quiet", false, "drop per-request logs")

		noAdmission = flag.Bool("no-admission", false, "disable cost-model admission (serve mode)")
		noBrownout  = flag.Bool("no-brownout", false, "disable adaptive brownout (serve mode)")
		brownTarget = flag.Duration("brownout-target", 0, "brownout queue-delay setpoint (0 = default 100ms)")
		planStore   = flag.String("plan-store", "", cli.PlanStoreHelp)
		noAutotune  = flag.Bool("no-autotune", false, "resolve auto-depth requests from the analytic cost model only (no tuned plans, no online refinement)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "on SIGTERM, how long to wait for queued and in-flight work (streams emit an interrupted checkpoint frame and end) before forcing shutdown")

		loadtest = flag.Bool("loadtest", false, "run the load harness instead of serving")
		duration = flag.Duration("duration", 5*time.Second, "loadtest: duration per run")
		tenants  = flag.String("tenants", "alice:4:2048,bob:4:2048,carol:2:8192",
			"loadtest: tenant spec name:concurrency:n[@accuracy][:n...], comma-separated (concurrency is arrivals/sec under -arrival open)")
		target   = flag.String("target", "", "loadtest: drive this external base URL (a gateway or a replica) instead of in-process servers; the policy/overload matrix does not apply")
		policies = flag.String("policies", "fifo,fair", "loadtest: admission policies to compare")
		think    = flag.Duration("think", 0, "loadtest: per-tenant think time between requests")
		arrival  = flag.String("arrival", "closed", "loadtest: arrival model, closed | open")
		overload = flag.String("overload", "on", "loadtest: overload-control modes to compare, comma of off|on")
		reqDL    = flag.Duration("req-deadline", 0, "loadtest: per-request deadline attached to every tenant (0 = server default)")
		chaos    = flag.Bool("chaos", false, "loadtest: add slow-loris and mid-stream-disconnect chaos tenants")
		jsonOut  = flag.String("json", "", "loadtest: write the per-run results JSON to this path")
		baseline = flag.String("baseline", "", "loadtest: gate the light tenant's p95 against this recorded results JSON")
		light    = flag.String("light", "", "loadtest: name of the light tenant the baseline gate watches (default: first tenant)")
	)
	flag.Parse()

	if *backend != "" {
		if err := cli.SetBackend(*backend); err != nil {
			log.Fatalf("nbodyd: %v", err)
		}
	}

	cfg := serve.Config{
		Workers:           *workers,
		Policy:            serve.Policy(*policy),
		QueueDepth:        *queue,
		InflightPerTenant: *inflight,
		PlanCacheCap:      *planCache,
		MaxN:              *maxN,
		MaxDepth:          *maxDepth,
		DefaultDeadline:   *deadline,
		Ladder:            *fallback,
		Quiet:             *quiet,
		DisableAdmission:  *noAdmission,
		DisableBrownout:   *noBrownout,
		BrownoutTarget:    *brownTarget,
		PlanStore:         *planStore,
		DisableAutotune:   *noAutotune,
	}

	if *loadtest {
		opts := loadtestOpts{
			policies: *policies,
			tenants:  *tenants,
			duration: *duration,
			think:    *think,
			arrival:  *arrival,
			overload: *overload,
			reqDL:    *reqDL,
			chaos:    *chaos,
			jsonOut:  *jsonOut,
			baseline: *baseline,
			light:    *light,
			target:   *target,
		}
		if err := runLoadtest(cfg, opts); err != nil {
			log.Fatalf("nbodyd: %v", err)
		}
		return
	}
	if err := serveForever(cfg, *addr, *drainGrace); err != nil {
		log.Fatalf("nbodyd: %v", err)
	}
}

// serveForever runs the server until SIGINT/SIGTERM, then drains before
// shutting down: first the serve layer refuses new work (so /v1/healthz
// advertises "draining" and a gateway stops routing here while the listener
// is still up — closing the listener first would make the drain invisible),
// then queued and in-flight requests finish (active simulate streams emit
// an interrupted checkpoint frame and end cleanly), and only then does the
// HTTP server close. A rolling restart under a gateway is therefore
// zero-failed-requests: nothing is severed mid-flight.
func serveForever(cfg serve.Config, addr string, drainGrace time.Duration) error {
	if _, err := serve.ParsePolicy(string(cfg.Policy)); err != nil {
		return err
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("nbodyd: serving on %s (backend=%s policy=%s)", addr, simd.Active(), cfg.Policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case s := <-sig:
		log.Printf("nbodyd: %v, draining (grace %s)", s, drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		if err := srv.Drain(ctx); err != nil {
			log.Printf("nbodyd: drain incomplete: %v", err)
		}
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
		log.Printf("nbodyd: drained, exiting")
		return nil
	}
}

type loadtestOpts struct {
	policies string
	tenants  string
	duration time.Duration
	think    time.Duration
	arrival  string
	overload string
	reqDL    time.Duration
	chaos    bool
	jsonOut  string
	baseline string
	light    string
	target   string
}

// Chaos tenant names the 5xx gate skips: their whole job is to misbehave.
const (
	chaosSlowTenant = "chaos-slow"
	chaosDropTenant = "chaos-drop"
)

// runLoadtest starts one in-process server per (policy, overload-mode)
// pair on a loopback listener, drives the same tenant mix against each
// over real HTTP, and prints the comparison table. Any 5xx among the
// well-behaved tenants fails the run, as does a light-tenant p95
// regression against a recorded baseline.
func runLoadtest(cfg serve.Config, opts loadtestOpts) error {
	if opts.arrival != "closed" && opts.arrival != "open" {
		return fmt.Errorf("loadtest: -arrival must be closed or open, got %q", opts.arrival)
	}
	ts, err := parseTenants(opts.tenants, opts.think)
	if err != nil {
		return err
	}
	if opts.light == "" {
		opts.light = ts[0].Name
	}
	for i := range ts {
		if opts.reqDL > 0 {
			ts[i].DeadlineMS = opts.reqDL.Milliseconds()
		}
		if opts.arrival == "open" {
			// The spec's concurrency field becomes the arrival rate: a
			// fixed-rate clock that does not slow down when the server does.
			ts[i].RateRPS = float64(ts[i].Concurrency)
			ts[i].Concurrency = 0
		}
	}
	if opts.chaos {
		ts = append(ts,
			loadgen.Tenant{Name: chaosSlowTenant, Concurrency: 2, Chaos: loadgen.ChaosSlowLoris,
				Shapes: []loadgen.Shape{{N: 1024}}, Think: 20 * time.Millisecond},
			loadgen.Tenant{Name: chaosDropTenant, Concurrency: 2, Chaos: loadgen.ChaosDisconnect,
				Shapes: []loadgen.Shape{{N: 1024}}, Think: 20 * time.Millisecond},
		)
	}

	var results []*loadgen.Result
	if opts.target != "" {
		// An external target (a gateway, or one replica of a fleet): the
		// policy/overload matrix is the server's business, not ours — one
		// run, labeled "target".
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:  strings.TrimRight(opts.target, "/"),
			Duration: opts.duration,
			Tenants:  ts,
		})
		if err != nil {
			return err
		}
		res.Policy = "target"
		results = append(results, res)
		fmt.Fprint(os.Stderr, res.Summary())
		return reportLoadtest(cfg, results, opts)
	}
	for _, mode := range strings.Split(opts.overload, ",") {
		mode = strings.TrimSpace(mode)
		if mode != "on" && mode != "off" {
			return fmt.Errorf("loadtest: -overload modes are off|on, got %q", mode)
		}
		for _, pol := range strings.Split(opts.policies, ",") {
			pol = strings.TrimSpace(pol)
			p, err := serve.ParsePolicy(pol)
			if err != nil {
				return err
			}
			c := cfg
			c.Policy = p
			c.Quiet = true
			if mode == "off" {
				c.DisableAdmission = true
				c.DisableBrownout = true
			}
			res, err := runOnePolicy(c, ts, opts.duration)
			if err != nil {
				return err
			}
			res.Policy = pol + "/" + "overload-" + mode
			results = append(results, res)
			fmt.Fprint(os.Stderr, res.Summary())
		}
	}
	return reportLoadtest(cfg, results, opts)
}

// reportLoadtest prints the comparison table, records/gates the bench JSON,
// and enforces the zero-5xx gate on well-behaved tenants.
func reportLoadtest(cfg serve.Config, results []*loadgen.Result, opts loadtestOpts) error {
	// Report the resolved fleet size, not the config zero value that means
	// "use the default".
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0) / 2
	}
	if workers < 2 {
		workers = 2
	}
	fmt.Printf("\nbackend=%s workers=%d queue-depth=%d inflight-cap=%d duration=%s arrival=%s deadline=%s\n\n",
		simd.Active(), workers, cfg.QueueDepth, cfg.InflightPerTenant, opts.duration, opts.arrival, opts.reqDL)
	fmt.Println(loadgen.TableHeader())
	bad := int64(0)
	for _, r := range results {
		fmt.Println(r.TableRow())
		for name, tb := range r.Tenants {
			if name == chaosSlowTenant || name == chaosDropTenant {
				continue
			}
			bad += tb.Err5xx + tb.OtherErr
		}
	}

	doc := buildBenchDoc(results, opts)
	if opts.jsonOut != "" {
		if err := writeBenchDoc(opts.jsonOut, doc); err != nil {
			return err
		}
	}
	if opts.baseline != "" {
		if err := gateAgainstBaseline(doc, opts.baseline); err != nil {
			return err
		}
	}
	if bad > 0 {
		return fmt.Errorf("loadtest: %d requests failed with 5xx/transport errors", bad)
	}
	return nil
}

// runOnePolicy runs one harness pass against a fresh server. The
// process-wide overload counters are reset first so each run's server-side
// accounting is its own.
func runOnePolicy(cfg serve.Config, tenants []loadgen.Tenant, duration time.Duration) (*loadgen.Result, error) {
	metrics.ResetOverload()
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	return loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Duration: duration,
		Tenants:  tenants,
	})
}

// benchDoc is the recorded loadtest artifact (BENCH_PR8.json): enough per
// run and per tenant for the regression gate and the experiment tables.
type benchDoc struct {
	Backend  string     `json:"backend"`
	Arrival  string     `json:"arrival"`
	Deadline string     `json:"req_deadline,omitempty"`
	Light    string     `json:"light_tenant"`
	Runs     []benchRun `json:"runs"`
}

type benchRun struct {
	Label      string                 `json:"label"`
	GoodputRPS float64                `json:"goodput_rps"`
	Sent       int64                  `json:"sent"`
	OK         int64                  `json:"ok"`
	Shed       int64                  `json:"shed"`
	Rejected   int64                  `json:"rejected"`
	Deadline   int64                  `json:"deadline_504"`
	Err5xx     int64                  `json:"err_5xx"`
	Degraded   int64                  `json:"degraded"`
	LateOK     int64                  `json:"late_ok"`
	P95MS      float64                `json:"p95_ms"`
	Tenants    map[string]benchBucket `json:"tenants"`
}

type benchBucket struct {
	Sent     int64   `json:"sent"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Rejected int64   `json:"rejected"`
	Deadline int64   `json:"deadline_504"`
	Degraded int64   `json:"degraded"`
	LateOK   int64   `json:"late_ok"`
	Dropped  int64   `json:"dropped"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

func buildBenchDoc(results []*loadgen.Result, opts loadtestOpts) *benchDoc {
	doc := &benchDoc{Backend: simd.Active(), Arrival: opts.arrival, Light: opts.light}
	if opts.reqDL > 0 {
		doc.Deadline = opts.reqDL.String()
	}
	for _, r := range results {
		_, p95, _, _, _ := r.Total.Percentiles()
		run := benchRun{
			Label:      r.Policy,
			GoodputRPS: r.GoodputRPS(),
			Sent:       r.Total.Sent,
			OK:         r.Total.OK,
			Shed:       r.Total.Shed,
			Rejected:   r.Total.Rejected,
			Deadline:   r.Total.Deadline,
			Err5xx:     r.Total.Err5xx,
			Degraded:   r.Total.Degraded,
			LateOK:     r.Total.LateOK,
			P95MS:      float64(p95) / 1e6,
			Tenants:    make(map[string]benchBucket, len(r.Tenants)),
		}
		for name, tb := range r.Tenants {
			p50, p95, p99, _, _ := tb.Percentiles()
			run.Tenants[name] = benchBucket{
				Sent: tb.Sent, OK: tb.OK, Shed: tb.Shed, Rejected: tb.Rejected,
				Deadline: tb.Deadline, Degraded: tb.Degraded, LateOK: tb.LateOK, Dropped: tb.Dropped,
				P50MS: float64(p50) / 1e6, P95MS: float64(p95) / 1e6, P99MS: float64(p99) / 1e6,
			}
		}
		doc.Runs = append(doc.Runs, run)
	}
	return doc
}

func writeBenchDoc(path string, doc *benchDoc) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// gateAgainstBaseline fails the run when the light tenant's p95 in any run
// label regressed against the recorded baseline by more than 1.5x plus a
// 100ms absolute floor (loopback load runs are noisy; the gate is for
// order-of-magnitude regressions, not jitter). Baselines from a different
// backend are skipped with a warning: the numbers are not comparable.
func gateAgainstBaseline(doc *benchDoc, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: no baseline at %s (%v), gate skipped\n", path, err)
		return nil
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("loadtest: baseline %s: %w", path, err)
	}
	if base.Backend != doc.Backend {
		fmt.Fprintf(os.Stderr, "loadtest: baseline backend %q != current %q, gate skipped\n", base.Backend, doc.Backend)
		return nil
	}
	baseRuns := make(map[string]benchRun, len(base.Runs))
	for _, r := range base.Runs {
		baseRuns[r.Label] = r
	}
	for _, cur := range doc.Runs {
		br, ok := baseRuns[cur.Label]
		if !ok {
			continue
		}
		bt, ok1 := br.Tenants[base.Light]
		ct, ok2 := cur.Tenants[doc.Light]
		if !ok1 || !ok2 || bt.P95MS <= 0 || ct.OK == 0 {
			continue
		}
		if limit := bt.P95MS*1.5 + 100; ct.P95MS > limit {
			return fmt.Errorf("loadtest: light tenant %q p95 regressed in %s: %.1fms > limit %.1fms (baseline %.1fms)",
				doc.Light, cur.Label, ct.P95MS, limit, bt.P95MS)
		}
	}
	return nil
}

// parseTenants parses "name:concurrency:shape[:shape...]" specs. A shape
// is "n" or "n@accuracy" (fast | balanced | accurate), so a flooding tenant
// can request expensive high-accuracy work — the traffic the brownout
// ladder has something to degrade.
func parseTenants(spec string, think time.Duration) ([]loadgen.Tenant, error) {
	var out []loadgen.Tenant
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("tenant spec %q: want name:concurrency:n[@accuracy][:n...]", part)
		}
		conc, err := strconv.Atoi(fields[1])
		if err != nil || conc < 1 {
			return nil, fmt.Errorf("tenant spec %q: bad concurrency %q", part, fields[1])
		}
		t := loadgen.Tenant{Name: fields[0], Concurrency: conc, Think: think}
		for _, f := range fields[2:] {
			nStr, acc, _ := strings.Cut(f, "@")
			switch acc {
			case "", "fast", "balanced", "accurate":
			default:
				return nil, fmt.Errorf("tenant spec %q: bad accuracy %q (fast|balanced|accurate)", part, acc)
			}
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("tenant spec %q: bad N %q", part, f)
			}
			t.Shapes = append(t.Shapes, loadgen.Shape{N: n, Accuracy: acc})
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenant spec %q: no tenants", spec)
	}
	return out, nil
}
