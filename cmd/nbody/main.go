// Command nbody solves one N-body potential problem and reports the timing
// breakdown, accuracy and (for the data-parallel solver) the paper's
// efficiency metrics.
//
//	nbody -n 100000 -solver anderson -accuracy fast
//	nbody -n 32768 -solver dp -nodes 16 -depth 4
//	nbody -n 20000 -solver bh -theta 0.5 -check
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"nbody"
	"nbody/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nbody: ")
	var (
		n        = flag.Int("n", 32768, "number of particles")
		seed     = flag.Int64("seed", 1, "random seed")
		dist     = flag.String("dist", "uniform", cli.DistHelp)
		solver   = flag.String("solver", "anderson", "solver: anderson|bh|direct|dp")
		accuracy = flag.String("accuracy", "fast", cli.AccuracyHelp)
		depth    = flag.Int("depth", 0, "hierarchy depth (0 = auto)")
		theta    = flag.Float64("theta", 0.6, "Barnes-Hut opening angle")
		nodes    = flag.Int("nodes", 16, "simulated nodes for -solver dp")
		strategy = flag.String("strategy", "linearized-aliased", cli.StrategyHelp)
		super    = flag.Bool("supernodes", false, "enable supernodes (anderson)")
		check    = flag.Bool("check", false, "compare against the O(N^2) direct sum")
	)
	flag.Parse()

	sys, err := cli.System(*dist, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := cli.Accuracy(*accuracy)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := cli.Strategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	spec := cli.Spec{
		Kind:     *solver,
		Opts:     nbody.Options{Accuracy: acc, Depth: *depth, Supernodes: *super},
		Theta:    *theta,
		Nodes:    *nodes,
		Strategy: strat,
	}
	s, err := spec.New(sys.BoundingBox())
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	phi, err := s.Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	fmt.Printf("solver=%s N=%d dist=%s wall=%v\n", s.Name(), sys.Len(), *dist, wall.Round(time.Millisecond))

	switch sv := s.(type) {
	case *nbody.Anderson:
		fmt.Printf("depth=%d\n%s", sv.Depth(), sv.Stats())
	case *nbody.DataParallel:
		r := sv.Report("dp", sys.Len())
		fmt.Printf("model: eff=%.1f%% cycles/particle=%.0f comm=%.1f%% model-seconds=%.3f\n",
			100*r.Efficiency(), r.CyclesPerParticle(), 100*r.CommFraction(), r.ModelSeconds())
	case *nbody.BarnesHut:
		fmt.Printf("cell interactions=%d particle interactions=%d\n",
			sv.LastStats.CellInteractions, sv.LastStats.ParticleInteractions)
	}

	if *check {
		want, _ := nbody.NewDirect().Potentials(sys)
		var rms, mean float64
		for i := range phi {
			d := phi[i] - want[i]
			rms += d * d
			mean += math.Abs(want[i])
		}
		rms = math.Sqrt(rms / float64(len(phi)))
		mean /= float64(len(phi))
		fmt.Printf("error relative to mean |phi|: %.3e (%.1f digits)\n", rms/mean, -math.Log10(rms/mean))
	}
}
