// Command nbody solves one N-body potential problem and reports the timing
// breakdown, accuracy and (for the data-parallel solver) the paper's
// efficiency metrics. With -steps it time-integrates the system instead,
// and the recovery flags arm the self-healing layer: retries with fallback
// solvers, periodic checkpoints, and resuming a killed run.
//
//	nbody -n 100000 -solver anderson -accuracy fast
//	nbody -n 32768 -solver dp -nodes 16 -depth 4
//	nbody -n 20000 -solver bh -theta 0.5 -check
//	nbody -n 32768 -retries 5 -fallback anderson,direct
//	nbody -n 4096 -steps 100 -checkpoint run.ckpt -checkpoint-every 10
//	nbody -n 4096 -steps 100 -resume run.ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"nbody"
	"nbody/internal/cli"
	"nbody/internal/metrics"
	"nbody/internal/simd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nbody: ")
	var (
		n        = flag.Int("n", 32768, "number of particles")
		seed     = flag.Int64("seed", 1, "random seed")
		dist     = flag.String("dist", "uniform", cli.DistHelp)
		solver   = flag.String("solver", "anderson", "solver: anderson|bh|direct|dp")
		accuracy = flag.String("accuracy", "fast", cli.AccuracyHelp)
		depth    = flag.Int("depth", 0, "hierarchy depth (0 = auto)")
		theta    = flag.Float64("theta", 0.6, "Barnes-Hut opening angle")
		nodes    = flag.Int("nodes", 16, "simulated nodes for -solver dp")
		strategy = flag.String("strategy", "linearized-aliased", cli.StrategyHelp)
		super    = flag.Bool("supernodes", false, "enable supernodes (anderson)")
		check    = flag.Bool("check", false, "compare against the O(N^2) direct sum")

		steps = flag.Int("steps", 0, "leapfrog steps to integrate (0 = single potential solve)")
		dt    = flag.Float64("dt", 1e-4, "timestep for -steps")

		retries  = flag.Int("retries", 0, "retry attempts per solver before degrading (0 = no supervisor)")
		fallback = flag.String("fallback", "", cli.LadderHelp)
		ckPath   = flag.String("checkpoint", "", "snapshot path for periodic checkpoints")
		ckEvery  = flag.Int("checkpoint-every", 0, "steps between checkpoints (needs -checkpoint)")
		resume   = flag.String("resume", "", "resume the simulation from this snapshot")
		backend  = flag.String("backend", "auto", cli.BackendHelp)

		autotune  = flag.Bool("autotune", false, cli.AutotuneHelp)
		planStore = flag.String("plan-store", "", cli.PlanStoreHelp)
	)
	flag.Parse()

	// Switch the compute backend before any solver is built, so every
	// kernel of this run dispatches to the selected one.
	if err := cli.SetBackend(*backend); err != nil {
		log.Fatal(err)
	}

	rec := cli.RecoveryFlags{
		Retries:         *retries,
		Fallback:        *fallback,
		Checkpoint:      *ckPath,
		CheckpointEvery: *ckEvery,
		Resume:          *resume,
	}
	if err := rec.Validate(); err != nil {
		log.Fatal(err)
	}
	if (rec.Checkpoint != "" || rec.Resume != "") && *steps == 0 {
		log.Fatal("-checkpoint/-resume only apply to simulations: set -steps")
	}

	sys, err := cli.System(*dist, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := cli.Accuracy(*accuracy)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := cli.Strategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	spec := cli.Spec{
		Kind:     *solver,
		Opts:     nbody.Options{Accuracy: acc, Depth: *depth, Supernodes: *super},
		Theta:    *theta,
		Nodes:    *nodes,
		Strategy: strat,
	}

	// The simulation needs a domain box that survives particle motion; a
	// single potential solve only needs the initial bounding box.
	box := sys.BoundingBox()
	if *steps > 0 {
		box.Side *= 4
	}

	if *autotune || *planStore != "" {
		if spec.Kind != "anderson" && spec.Kind != "core" {
			log.Fatal("-autotune/-plan-store apply to -solver anderson")
		}
		pf := cli.PlanFlags{Autotune: *autotune, Store: *planStore}
		planner, err := pf.Planner(0)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = pf.Apply(planner, spec, sys, *accuracy, box)
		if err != nil {
			log.Fatal(err)
		}
		if err := pf.Save(planner); err != nil {
			log.Fatal(err)
		}
	}

	s, err := cli.Supervised(spec, rec, box)
	if err != nil {
		log.Fatal(err)
	}

	if *steps > 0 {
		simulate(s, sys, rec, *steps, *dt)
		return
	}

	start := time.Now()
	phi, err := s.Potentials(sys)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	fmt.Printf("solver=%s N=%d dist=%s backend=%s wall=%v\n",
		s.Name(), sys.Len(), *dist, simd.Active(), wall.Round(time.Millisecond))

	switch sv := s.(type) {
	case *nbody.Anderson:
		fmt.Printf("depth=%d\n%s", sv.Depth(), sv.Stats())
	case *nbody.DataParallel:
		r := sv.Report("dp", sys.Len())
		fmt.Printf("model: eff=%.1f%% cycles/particle=%.0f comm=%.1f%% model-seconds=%.3f\n",
			100*r.Efficiency(), r.CyclesPerParticle(), 100*r.CommFraction(), r.ModelSeconds())
	case *nbody.BarnesHut:
		fmt.Printf("cell interactions=%d particle interactions=%d\n",
			sv.LastStats.CellInteractions, sv.LastStats.ParticleInteractions)
	case *nbody.Resilient:
		fmt.Printf("ladder=%v served-by=rung %d\n", sv.RungNames(), sv.LastRung())
	}
	reportRecovery()

	if *check {
		want, _ := nbody.NewDirect().Potentials(sys)
		var rms, mean float64
		for i := range phi {
			d := phi[i] - want[i]
			rms += d * d
			mean += math.Abs(want[i])
		}
		rms = math.Sqrt(rms / float64(len(phi)))
		mean /= float64(len(phi))
		fmt.Printf("error relative to mean |phi|: %.3e (%.1f digits)\n", rms/mean, -math.Log10(rms/mean))
	}
}

// simulate runs the time-integration mode: fresh or resumed, optionally
// writing periodic checkpoints, reporting energy drift at the end.
func simulate(s nbody.Solver, sys *nbody.System, rec cli.RecoveryFlags, steps int, dt float64) {
	accel, err := cli.Accel(s)
	if err != nil {
		log.Fatal(err)
	}
	var sim *nbody.Simulation
	if rec.Resume != "" {
		sim, err = nbody.ResumeSimulationFile(rec.Resume, accel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed %s at step %d (t=%g)\n", rec.Resume, sim.Steps(), sim.Time())
	} else {
		sim, err = nbody.NewSimulation(sys, nil, accel, dt)
		if err != nil {
			log.Fatal(err)
		}
	}
	if rec.Checkpoint != "" {
		if err := sim.EnableCheckpoints(rec.Checkpoint, rec.CheckpointEvery); err != nil {
			log.Fatal(err)
		}
	}
	_, _, e0 := sim.Energy()
	start := time.Now()
	if err := sim.Step(steps); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	k, u, e := sim.Energy()
	fmt.Printf("solver=%s N=%d steps=%d t=%g wall=%v\n",
		s.Name(), sim.System.Len(), sim.Steps(), sim.Time(), wall.Round(time.Millisecond))
	fmt.Printf("energy: kinetic=%.6g potential=%.6g total=%.6g drift=%.3e\n",
		k, u, e, math.Abs(e-e0)/math.Max(math.Abs(e0), 1e-300))
	reportRecovery()
}

// reportRecovery prints the self-healing counters when any recovery event
// fired; a healthy run prints nothing.
func reportRecovery() {
	r := metrics.ReadRecovery()
	if r.Zero() {
		return
	}
	fmt.Printf("recovery: %d retries, %d breaker trips, %d degradations, %d checkpoints, %d resumes\n",
		r.Retries, r.BreakerTrips, r.Degradations, r.Checkpoints, r.Resumes)
}
