// Command nbodygw is the replicated-serving gateway: a reverse proxy in
// front of N nbodyd replicas with health-checked failover, retry-budgeted
// idempotent solve retries, optional hedged requests, and crash-survivable
// /v1/simulate streams (the gateway checkpoints streams in flight and
// resumes them on a healthy replica when one dies).
//
//	nbodygw -addr :8040 -replicas http://127.0.0.1:8041,http://127.0.0.1:8042,http://127.0.0.1:8043
//
// SIGINT/SIGTERM shut the gateway down gracefully: the listener closes,
// in-flight requests and streams finish (bounded by -shutdown-grace), and
// the health-probe loop stops.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nbody/internal/gw"
)

func main() {
	var (
		addr     = flag.String("addr", ":8040", "listen address")
		replicas = flag.String("replicas", "", "comma-separated nbodyd base URLs (required)")

		probeEvery = flag.Duration("probe-every", 250*time.Millisecond, "health-probe cadence per replica")
		downAfter  = flag.Int("down-after", 2, "consecutive probe failures before a replica is marked down")
		brkThresh  = flag.Int("breaker-threshold", 3, "consecutive request failures that open a replica's circuit breaker")
		brkCool    = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before a trial request")

		retryRate  = flag.Float64("retry-rate", 20, "failover/hedge retry budget refill rate (tokens/second)")
		retryBurst = flag.Float64("retry-burst", 20, "failover/hedge retry budget burst size")

		hedge       = flag.Bool("hedge", false, "hedge small solve requests for tail latency")
		hedgeMaxN   = flag.Int("hedge-max-n", 4096, "largest particle count eligible for hedging")
		hedgeFactor = flag.Float64("hedge-factor", 3, "hedge delay as a multiple of the size bucket's latency EWMA")
		hedgeMin    = flag.Duration("hedge-min", 20*time.Millisecond, "hedge delay floor")

		retryWindow = flag.Duration("stream-retry-window", 30*time.Second, "how long a simulate stream may go without progress before it is declared lost")
		maxBody     = flag.Int64("max-body", 64<<20, "request-body size cap in bytes")
		grace       = flag.Duration("shutdown-grace", 60*time.Second, "graceful-shutdown bound for in-flight requests and streams")
		quiet       = flag.Bool("quiet", false, "drop failover/resume logs")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("nbodygw: -replicas is required (comma-separated nbodyd base URLs)")
	}

	g, err := gw.New(gw.Config{
		Replicas:          urls,
		ProbeEvery:        *probeEvery,
		DownAfter:         *downAfter,
		BreakerThreshold:  *brkThresh,
		BreakerCooldown:   *brkCool,
		RetryRate:         *retryRate,
		RetryBurst:        *retryBurst,
		Hedge:             *hedge,
		HedgeMaxN:         *hedgeMaxN,
		HedgeFactor:       *hedgeFactor,
		HedgeMin:          *hedgeMin,
		StreamRetryWindow: *retryWindow,
		MaxBodyBytes:      *maxBody,
		Quiet:             *quiet,
	})
	if err != nil {
		log.Fatalf("nbodygw: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: g}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("nbodygw: serving on %s in front of %d replicas", *addr, len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		g.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("nbodygw: %v", err)
		}
	case s := <-sig:
		log.Printf("nbodygw: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		_ = hs.Shutdown(ctx)
		g.Close()
	}
}
