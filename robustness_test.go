package nbody_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"nbody"
	"nbody/internal/core"
	"nbody/internal/core2"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/faults"
	"nbody/internal/metrics"
	"nbody/internal/resilience"
	"nbody/internal/testutil"
)

// boundFast is the worst-case relative error of the D=5 configuration
// against the direct reference (matching internal/testutil's differential
// suite); the post-fault re-solve checks use it to prove the solver is not
// just alive but still correct.
const boundFast = 5e-2

// faultPhase maps every fault site to the metrics phase name the resulting
// InternalError must report.
var faultPhase = map[string]string{
	core.FaultSiteSort:          "sort",
	core.FaultSiteLeafOuter:     "leaf-outer",
	core.FaultSiteLeafOuterBody: "leaf-outer",
	core.FaultSiteT1:            "upward-T1",
	core.FaultSiteT2:            "convert-T2",
	core.FaultSiteT3:            "downward-T3",
	core.FaultSiteEval:          "eval-local",
	core.FaultSiteNear:          "near-field",
	core.FaultSiteNearBody:      "near-field",

	core2.FaultSiteSort:      "sort",
	core2.FaultSiteLeafOuter: "leaf-outer",
	core2.FaultSiteT1:        "upward-T1",
	core2.FaultSiteT2:        "convert-T2",
	core2.FaultSiteT3:        "downward-T3",
	core2.FaultSiteEval:      "eval-local",
	core2.FaultSiteNear:      "near-field",

	dpfmm.FaultSiteSort:      "sort",
	dpfmm.FaultSiteLeafOuter: "leaf-outer",
	dpfmm.FaultSiteT1:        "upward-T1",
	dpfmm.FaultSiteT3:        "downward-T3",
	dpfmm.FaultSiteGhost:     "ghost",
	dpfmm.FaultSiteT2:        "convert-T2",
	dpfmm.FaultSiteEval:      "eval-local",
	dpfmm.FaultSiteNear:      "near-field",
}

// expectInternal asserts err is an *InternalError attributed to the phase
// the site belongs to.
func expectInternal(t *testing.T, site string, err error) {
	t.Helper()
	var ie *nbody.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("site %s: got %v (%T), want *InternalError", site, err, err)
	}
	if want := faultPhase[site]; ie.Phase != want {
		t.Errorf("site %s: attributed to phase %q, want %q", site, ie.Phase, want)
	}
	if len(ie.Stack) == 0 {
		t.Errorf("site %s: InternalError carries no stack", site)
	}
}

// TestFaultInjectionAnderson injects a panic at every fault site of the
// shared-memory pipeline, including the two in-worker body sites, and
// proves each surfaces as an *InternalError naming the phase — then that
// the very same solver completes a clean solve within differential bounds.
func TestFaultInjectionAnderson(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(2048, 1)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)

	sites := append([]string{}, core.FaultSites...)
	sites = append(sites, core.FaultSiteLeafOuterBody, core.FaultSiteNearBody)
	for _, site := range sites {
		faults.InjectPanic(site, "injected: "+site)
		_, err := a.Potentials(sys)
		expectInternal(t, site, err)
		faults.Reset()

		phi, err := a.Potentials(sys)
		if err != nil {
			t.Fatalf("site %s: clean re-solve failed: %v", site, err)
		}
		testutil.CheckClose(t, site+" re-solve", phi, want, boundFast)
	}
}

// TestFaultInjectionDataParallel is the same matrix on the simulated
// machine, covering the ghost phase the shared-memory solver does not have.
func TestFaultInjectionDataParallel(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(512, 2)
	box := sys.BoundingBox()
	d, err := nbody.NewDataParallel(8, box, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)

	for _, site := range dpfmm.FaultSites {
		faults.InjectPanic(site, "injected: "+site)
		_, err := d.Potentials(sys)
		expectInternal(t, site, err)
		faults.Reset()

		phi, err := d.Potentials(sys)
		if err != nil {
			t.Fatalf("site %s: clean re-solve failed: %v", site, err)
		}
		testutil.CheckClose(t, site+" re-solve", phi, want, boundFast)
	}
}

func random2D(n int, seed int64) ([]nbody.Vec2, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]nbody.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = nbody.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64()
	}
	return pos, q
}

// TestFaultInjectionAnderson2D runs the matrix on the 2-D pipeline.
func TestFaultInjectionAnderson2D(t *testing.T) {
	defer faults.Reset()
	pos, q := random2D(1024, 3)
	box := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.0000001}
	a, err := nbody.NewAnderson2D(box, nbody.Options2D{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := nbody.DirectPotentials2D(pos, q)

	for _, site := range core2.FaultSites {
		faults.InjectPanic(site, "injected: "+site)
		_, err := a.Potentials(pos, q)
		expectInternal(t, site, err)
		faults.Reset()

		phi, err := a.Potentials(pos, q)
		if err != nil {
			t.Fatalf("site %s: clean re-solve failed: %v", site, err)
		}
		testutil.CheckClose(t, site+" re-solve", phi, want, 1e-3)
	}
}

// TestFaultInjectionSimulationStep proves a panic during a leapfrog step
// surfaces as an *InternalError wrapped in the step error, leaves the
// simulation usable, and that the following step succeeds.
func TestFaultInjectionSimulationStep(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(1024, 4)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 100}
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, a, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	faults.InjectPanic(core.FaultSiteNear, "injected: step")
	err = sim.Step(1)
	var ie *nbody.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("Step: got %v, want wrapped *InternalError", err)
	}
	faults.Reset()
	if err := sim.Step(1); err != nil {
		t.Fatalf("step after contained panic: %v", err)
	}
}

// TestNaNInjectionThenCleanResolve poisons a mid-pipeline buffer with NaN
// (silent corruption, not a panic), observes the poisoned output, and then
// proves a clean re-solve into the same caller buffer is fully repaired —
// the buffer-hygiene half of the safe-to-retry contract.
func TestNaNInjectionThenCleanResolve(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(2048, 5)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)
	phi := make([]float64, sys.Len())

	faults.InjectNaN(core.FaultSiteLeafOuter)
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatalf("poisoned solve errored: %v", err)
	}
	poisoned := false
	for _, v := range phi {
		if math.IsNaN(v) {
			poisoned = true
			break
		}
	}
	if !poisoned {
		t.Fatal("NaN injection did not reach the output")
	}
	faults.Reset()
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatalf("clean re-solve: %v", err)
	}
	testutil.CheckClose(t, "post-NaN re-solve", phi, want, boundFast)
}

// TestCancellationAbortsSolve is the acceptance criterion for cancellation:
// on the paper's K=12 depth-4 configuration, a context canceled a few
// milliseconds in aborts the solve in a small fraction of the full solve
// time, returning ctx.Err(), and the solver remains usable.
func TestCancellationAbortsSolve(t *testing.T) {
	n := 32768
	if testing.Short() {
		n = 8192
	}
	sys := nbody.NewUniformSystem(n, 6)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Degree: 5, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, n)

	start := time.Now()
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// Pre-canceled context: nothing but validation and the sort prologue
	// may run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.PotentialsIntoCtx(ctx, phi, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: got %v, want context.Canceled", err)
	}

	// Deadline mid-solve: must abort within one chunk of work, far below
	// the full solve time.
	ctx, cancel = context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start = time.Now()
	err = a.PotentialsIntoCtx(ctx, phi, sys)
	aborted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: got %v, want context.DeadlineExceeded", err)
	}
	if full > 50*time.Millisecond && aborted > full/2 {
		t.Errorf("canceled solve took %v, full solve %v: cancellation is not prompt", aborted, full)
	}
	t.Logf("full solve %v, canceled solve %v", full, aborted)

	// The solver must still produce correct answers after an abort.
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatalf("solve after cancel: %v", err)
	}
}

// TestValidate is the input-validation table: each malformed system must be
// rejected with the right sentinel before any solving starts.
func TestValidate(t *testing.T) {
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	ok := nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	cases := []struct {
		name string
		sys  nbody.System
		want error
	}{
		{"empty", nbody.System{}, nil},
		{"valid", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{1}}, nil},
		{"length mismatch", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{1, 2}}, nbody.ErrInvalidSystem},
		{"NaN position", nbody.System{Positions: []nbody.Vec3{{X: math.NaN(), Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrInvalidSystem},
		{"Inf position", nbody.System{Positions: []nbody.Vec3{{X: math.Inf(1), Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrInvalidSystem},
		{"NaN charge", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{math.NaN()}}, nbody.ErrInvalidSystem},
		{"Inf charge", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{math.Inf(-1)}}, nbody.ErrInvalidSystem},
		{"out of domain", nbody.System{Positions: []nbody.Vec3{{X: 1.5, Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrOutOfDomain},
		{"on upper face", nbody.System{Positions: []nbody.Vec3{{X: 1.0, Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrOutOfDomain},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sys.Validate(box)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestEntryPointsReject proves the validation actually guards the public
// entry points, not just the Validate method.
func TestEntryPointsReject(t *testing.T) {
	sys := nbody.NewUniformSystem(64, 7)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := &nbody.System{
		Positions: append([]nbody.Vec3{}, sys.Positions...),
		Charges:   append([]float64{}, sys.Charges...),
	}
	bad.Positions[17] = nbody.Vec3{X: math.NaN()}
	if _, err := a.Potentials(bad); !errors.Is(err, nbody.ErrInvalidSystem) {
		t.Errorf("Potentials(NaN) = %v, want ErrInvalidSystem", err)
	}
	bad.Positions[17] = nbody.Vec3{X: 1e6, Y: 0.5, Z: 0.5}
	if _, _, err := a.Accelerations(bad); !errors.Is(err, nbody.ErrOutOfDomain) {
		t.Errorf("Accelerations(far) = %v, want ErrOutOfDomain", err)
	}

	d, err := nbody.NewDataParallel(8, box, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Potentials(bad); !errors.Is(err, nbody.ErrOutOfDomain) {
		t.Errorf("DataParallel.Potentials(far) = %v, want ErrOutOfDomain", err)
	}
}

// TestCoincidentParticles duplicates a block of positions exactly and
// checks that both the direct reference and Anderson return finite
// potentials and fields that agree — the coincident pair contributes
// nothing (self-exclusion semantics) instead of Inf or a panic.
func TestCoincidentParticles(t *testing.T) {
	sys := nbody.NewUniformSystem(512, 8)
	for i := 0; i < 64; i++ {
		sys.Positions[256+i] = sys.Positions[i]
	}
	box := sys.BoundingBox()

	want, err := nbody.Direct{}.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("direct phi[%d] = %v with duplicated positions", i, v)
		}
	}
	acc := nbody.Direct{}.Accelerations(sys)
	for i, a := range acc {
		if math.IsNaN(a.X+a.Y+a.Z) || math.IsInf(a.X+a.Y+a.Z, 0) {
			t.Fatalf("direct acc[%d] = %v with duplicated positions", i, a)
		}
	}

	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := a.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckClose(t, "anderson duplicates vs direct", phi, want, boundFast)

	accBuf := make([]nbody.Vec3, sys.Len())
	if err := a.AccelerationsInto(phi, accBuf, sys); err != nil {
		t.Fatal(err)
	}
	for i, v := range accBuf {
		if math.IsNaN(v.X+v.Y+v.Z) || math.IsInf(v.X+v.Y+v.Z, 0) {
			t.Fatalf("anderson acc[%d] = %v with duplicated positions", i, v)
		}
	}

	// 2-D direct reference under the same degeneracy.
	pos2, q2 := random2D(128, 9)
	for i := 0; i < 16; i++ {
		pos2[64+i] = pos2[i]
	}
	for i, v := range nbody.DirectPotentials2D(pos2, q2) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("direct2d phi[%d] = %v with duplicated positions", i, v)
		}
	}
}

// TestConstructorErrors is the table-driven error-path sweep over every
// constructor: each invalid configuration must return an error (and a nil
// solver), never panic.
func TestConstructorErrors(t *testing.T) {
	box3 := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	box2 := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1}
	cases := []struct {
		name string
		make func() (any, error)
	}{
		{"core.NewSolver no degree", func() (any, error) {
			return core.NewSolver(box3, core.Config{Depth: 3})
		}},
		{"core.NewSolver depth 1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 1})
		}},
		{"core.NewSolver separation -1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, Separation: -1})
		}},
		{"core.NewSolver radius ratio 0.5", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, RadiusRatio: 0.5})
		}},
		{"core.NewSolver M -1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, M: -1})
		}},
		{"core.NewSolver supernodes separation 1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, Separation: 1, Supernodes: true})
		}},
		{"NewAnderson depth 1", func() (any, error) {
			return nbody.NewAnderson(box3, nbody.Options{Depth: 1})
		}},
		{"NewAnderson bad radius ratio", func() (any, error) {
			return nbody.NewAnderson(box3, nbody.Options{Depth: 3, RadiusRatio: 0.1})
		}},
		{"NewAnderson2D K 2", func() (any, error) {
			return nbody.NewAnderson2D(box2, nbody.Options2D{K: 2, Depth: 3})
		}},
		{"NewAnderson2D depth 1", func() (any, error) {
			return nbody.NewAnderson2D(box2, nbody.Options2D{Depth: 1})
		}},
		{"NewAnderson2D M 9 K 16", func() (any, error) {
			return nbody.NewAnderson2D(box2, nbody.Options2D{K: 16, M: 9, Depth: 3})
		}},
		{"dp.NewMachine nodes 3", func() (any, error) {
			return dp.NewMachine(3, 4, dp.CostModel{})
		}},
		{"dp.NewMachine nodes 0", func() (any, error) {
			return dp.NewMachine(0, 4, dp.CostModel{})
		}},
		{"dp.NewMachine vus 3", func() (any, error) {
			return dp.NewMachine(8, 3, dp.CostModel{})
		}},
		{"NewDataParallel depth 0", func() (any, error) {
			return nbody.NewDataParallel(8, box3, nbody.Options{}, dpfmm.DirectUnaliased)
		}},
		{"NewDataParallel nodes 5", func() (any, error) {
			return nbody.NewDataParallel(5, box3, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
		}},
		{"NewDataParallel supernodes", func() (any, error) {
			return nbody.NewDataParallel(8, box3, nbody.Options{Depth: 3, Supernodes: true}, dpfmm.DirectUnaliased)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := tc.make()
			if err == nil {
				t.Fatalf("constructor accepted invalid config (got %T)", v)
			}
		})
	}
}

// --- self-healing layer: retry supervisor, degradation ladder, breaker ---

// failingSolver is a stub ladder rung: it fails its first failN calls (every
// call when failN < 0) with a retryable *InternalError, then succeeds with
// zeros. It counts calls so tests can prove a rung was (or was not) probed.
type failingSolver struct {
	calls int
	failN int
}

func (f *failingSolver) Name() string { return "failing-stub" }

func (f *failingSolver) Potentials(s *nbody.System) ([]float64, error) {
	f.calls++
	if f.failN < 0 || f.calls <= f.failN {
		return nil, &nbody.InternalError{Phase: "stub", Value: "injected stub failure"}
	}
	return make([]float64, s.Len()), nil
}

// supervisorPolicy keeps retry tests fast: real backoff shape, tiny scale.
func supervisorPolicy() nbody.RetryPolicy {
	return nbody.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
	}
}

// TestResilientFaultMatrixAnderson drives every shared-memory fault site —
// including the two in-worker body sites — through the Resilient supervisor:
// the injected panic must be healed by a retry, the solve must complete, and
// the result must sit within the differential bound. Each site must record
// at least one retry and finish on rung 0 (no degradation: the ladder has
// one rung).
func TestResilientFaultMatrixAnderson(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(2048, 21)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nbody.NewResilient(supervisorPolicy(), a)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)
	phi := make([]float64, sys.Len())

	sites := append([]string{}, core.FaultSites...)
	sites = append(sites, core.FaultSiteLeafOuterBody, core.FaultSiteNearBody)
	for _, site := range sites {
		metrics.ResetRecovery()
		faults.InjectPanic(site, "injected: "+site)
		if err := r.PotentialsInto(phi, sys); err != nil {
			t.Fatalf("site %s: supervised solve failed: %v", site, err)
		}
		faults.Reset()
		testutil.CheckClose(t, "supervised "+site, phi, want, boundFast)
		rec := metrics.ReadRecovery()
		if rec.Retries < 1 {
			t.Errorf("site %s: %d retries recorded, want >= 1", site, rec.Retries)
		}
		if rec.Degradations != 0 {
			t.Errorf("site %s: %d degradations on a one-rung ladder", site, rec.Degradations)
		}
		if got := r.LastRung(); got != 0 {
			t.Errorf("site %s: finished on rung %d, want 0", site, got)
		}
	}
}

// TestResilientFaultMatrixDataParallel is the same healing matrix on the
// simulated-machine pipeline, covering the ghost phase, with two injected
// failures per site so the supervisor needs two of its three attempts.
func TestResilientFaultMatrixDataParallel(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(512, 22)
	box := sys.BoundingBox()
	d, err := nbody.NewDataParallel(8, box, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
	if err != nil {
		t.Fatal(err)
	}
	r, err := nbody.NewResilient(supervisorPolicy(), d)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)

	for _, site := range dpfmm.FaultSites {
		metrics.ResetRecovery()
		faults.InjectPanicN(site, "injected: "+site, 2)
		phi, err := r.Potentials(sys)
		if err != nil {
			t.Fatalf("site %s: supervised solve failed: %v", site, err)
		}
		faults.Reset()
		testutil.CheckClose(t, "supervised "+site, phi, want, boundFast)
		if rec := metrics.ReadRecovery(); rec.Retries < 2 {
			t.Errorf("site %s: %d retries recorded, want >= 2", site, rec.Retries)
		}
	}
}

// TestSupervisorFaultMatrixAnderson2D closes the matrix over the third
// pipeline. The 2-D solver's signature does not fit the Solver interface,
// so it is driven through the resilience supervisor directly — which is
// also the documented extension point for custom backends.
func TestSupervisorFaultMatrixAnderson2D(t *testing.T) {
	defer faults.Reset()
	pos, q := random2D(1024, 23)
	box := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.0000001}
	a, err := nbody.NewAnderson2D(box, nbody.Options2D{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	classify := func(err error) resilience.Class {
		var ie *nbody.InternalError
		if errors.As(err, &ie) {
			return resilience.Retryable
		}
		return resilience.Permanent
	}
	sup, err := resilience.New(resilience.Policy{
		MaxAttempts: 3,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Classify:    classify,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := nbody.DirectPotentials2D(pos, q)

	for _, site := range core2.FaultSites {
		faults.InjectPanic(site, "injected: "+site)
		var phi []float64
		rung, err := sup.Do(context.Background(), func(ctx context.Context, _ int) error {
			var aerr error
			phi, aerr = a.Potentials(pos, q)
			return aerr
		})
		if err != nil {
			t.Fatalf("site %s: supervised solve failed: %v", site, err)
		}
		if rung != 0 {
			t.Fatalf("site %s: rung %d on a one-rung ladder", site, rung)
		}
		faults.Reset()
		testutil.CheckClose(t, "supervised "+site, phi, want, 1e-3)
	}
}

// TestResilientDegradation exhausts a permanently failing preferred rung and
// proves the ladder steps down to the healthy fallback: the solve succeeds,
// LastRung names the fallback, and the degradation is counted.
func TestResilientDegradation(t *testing.T) {
	sys := nbody.NewUniformSystem(1024, 24)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := &failingSolver{failN: -1}
	r, err := nbody.NewResilient(supervisorPolicy(), bad, a)
	if err != nil {
		t.Fatal(err)
	}
	metrics.ResetRecovery()
	phi, err := r.Potentials(sys)
	if err != nil {
		t.Fatalf("ladder with healthy fallback failed: %v", err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)
	testutil.CheckClose(t, "degraded solve", phi, want, boundFast)
	if got := r.LastRung(); got != 1 {
		t.Errorf("LastRung = %d, want 1 (the fallback)", got)
	}
	if bad.calls != 3 {
		t.Errorf("failing rung probed %d times, want MaxAttempts = 3", bad.calls)
	}
	rec := metrics.ReadRecovery()
	if rec.Degradations != 1 {
		t.Errorf("degradations = %d, want 1", rec.Degradations)
	}
	if rec.Retries != 2 {
		t.Errorf("retries = %d, want 2 (attempts 2 and 3 on the failing rung)", rec.Retries)
	}
}

// TestResilientBreakerSkipsOpenRung trips the preferred rung's circuit
// breaker and proves the next solve does not probe the rung at all while the
// breaker cools down.
func TestResilientBreakerSkipsOpenRung(t *testing.T) {
	sys := nbody.NewUniformSystem(512, 25)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := &failingSolver{failN: -1}
	p := supervisorPolicy()
	p.MaxAttempts = 2
	p.BreakerThreshold = 2
	p.BreakerCooldown = time.Minute
	r, err := nbody.NewResilient(p, bad, a)
	if err != nil {
		t.Fatal(err)
	}
	metrics.ResetRecovery()
	if _, err := r.Potentials(sys); err != nil {
		t.Fatalf("first solve: %v", err)
	}
	if bad.calls != 2 {
		t.Fatalf("failing rung probed %d times before the trip, want 2", bad.calls)
	}
	if rec := metrics.ReadRecovery(); rec.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", rec.BreakerTrips)
	}

	// Second solve: the open breaker must reject rung 0 without an attempt.
	if _, err := r.Potentials(sys); err != nil {
		t.Fatalf("second solve: %v", err)
	}
	if bad.calls != 2 {
		t.Errorf("open-breaker rung probed again (%d calls, want still 2)", bad.calls)
	}
	if got := r.LastRung(); got != 1 {
		t.Errorf("LastRung = %d, want 1", got)
	}
}

// TestResilientHappyPathNoNewAllocs pins the zero-overhead claim: a solve
// through the supervisor allocates exactly as much as the bare solver's
// allocation-free path (nothing), records no recovery events, and stays on
// rung 0.
func TestResilientHappyPathNoNewAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are noise under the race detector")
	}
	sys := nbody.NewUniformSystem(2048, 26)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nbody.NewResilient(supervisorPolicy(), a)
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, sys.Len())
	if err := r.PotentialsInto(phi, sys); err != nil { // warm the solver buffers
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if err := a.PotentialsInto(phi, sys); err != nil {
			t.Fatal(err)
		}
	})
	metrics.ResetRecovery()
	supervised := testing.AllocsPerRun(10, func() {
		if err := r.PotentialsInto(phi, sys); err != nil {
			t.Fatal(err)
		}
	})
	if supervised > base {
		t.Errorf("supervised solve allocates %.0f/op, bare solver %.0f/op: the happy path must add nothing", supervised, base)
	}
	if rec := metrics.ReadRecovery(); !rec.Zero() {
		t.Errorf("happy path recorded recovery events: %+v", rec)
	}
	if got := r.LastRung(); got != 0 {
		t.Errorf("LastRung = %d, want 0", got)
	}
}

// TestResilientCancelDuringBackoffPrompt is the promptness acceptance test
// at the public API: with a ten-second backoff pending, cancelling the
// caller's context must return within milliseconds, not after the sleep.
func TestResilientCancelDuringBackoffPrompt(t *testing.T) {
	sys := nbody.NewUniformSystem(64, 27)
	bad := &failingSolver{failN: -1}
	r, err := nbody.NewResilient(nbody.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Second,
		MaxBackoff:  10 * time.Second,
	}, bad)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = r.PotentialsCtx(ctx, sys)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancellation during backoff took %v, want prompt return", elapsed)
	}
	t.Logf("cancelled a 10s backoff in %v", elapsed)
}

// TestResilientPermanentAbortsWholeLadder feeds a malformed system through a
// two-rung ladder: validation errors must abort immediately — no retries, no
// probe of the fallback rung, the sentinel preserved for errors.Is.
func TestResilientPermanentAbortsWholeLadder(t *testing.T) {
	sys := nbody.NewUniformSystem(64, 28)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	fallback := &failingSolver{failN: 0}
	r, err := nbody.NewResilient(supervisorPolicy(), a, fallback)
	if err != nil {
		t.Fatal(err)
	}
	bad := &nbody.System{
		Positions: append([]nbody.Vec3{}, sys.Positions...),
		Charges:   append([]float64{}, sys.Charges...),
	}
	bad.Positions[5] = nbody.Vec3{X: math.NaN()}
	metrics.ResetRecovery()
	if _, err := r.Potentials(bad); !errors.Is(err, nbody.ErrInvalidSystem) {
		t.Fatalf("got %v, want ErrInvalidSystem", err)
	}
	if fallback.calls != 0 {
		t.Errorf("fallback probed %d times on a permanent error, want 0", fallback.calls)
	}
	if rec := metrics.ReadRecovery(); rec.Retries != 0 {
		t.Errorf("retries = %d on a permanent error, want 0", rec.Retries)
	}
}

// TestResilientSkipsIncapableRung asks a ladder whose preferred rung cannot
// compute accelerations (Barnes-Hut is potentials-only) for accelerations:
// the rung must be skipped without burning retry attempts, and the capable
// fallback must serve the request.
func TestResilientSkipsIncapableRung(t *testing.T) {
	sys := nbody.NewUniformSystem(512, 29)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nbody.NewResilient(supervisorPolicy(), nbody.NewBarnesHut(box, 0.4), a)
	if err != nil {
		t.Fatal(err)
	}
	metrics.ResetRecovery()
	phi, acc, err := r.Accelerations(sys)
	if err != nil {
		t.Fatalf("Accelerations through a potentials-only rung: %v", err)
	}
	if len(phi) != sys.Len() || len(acc) != sys.Len() {
		t.Fatalf("result lengths (%d, %d), want (%d, %d)", len(phi), len(acc), sys.Len(), sys.Len())
	}
	if got := r.LastRung(); got != 1 {
		t.Errorf("LastRung = %d, want 1", got)
	}
	if rec := metrics.ReadRecovery(); rec.Retries != 0 {
		t.Errorf("retries = %d for a capability skip, want 0", rec.Retries)
	}
	// Potentials must still prefer the Barnes-Hut rung.
	if _, err := r.Potentials(sys); err != nil {
		t.Fatal(err)
	}
	if got := r.LastRung(); got != 0 {
		t.Errorf("Potentials LastRung = %d, want 0", got)
	}
}
