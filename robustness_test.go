package nbody_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"nbody"
	"nbody/internal/core"
	"nbody/internal/core2"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/faults"
	"nbody/internal/testutil"
)

// boundFast is the worst-case relative error of the D=5 configuration
// against the direct reference (matching internal/testutil's differential
// suite); the post-fault re-solve checks use it to prove the solver is not
// just alive but still correct.
const boundFast = 5e-2

// faultPhase maps every fault site to the metrics phase name the resulting
// InternalError must report.
var faultPhase = map[string]string{
	core.FaultSiteSort:          "sort",
	core.FaultSiteLeafOuter:     "leaf-outer",
	core.FaultSiteLeafOuterBody: "leaf-outer",
	core.FaultSiteT1:            "upward-T1",
	core.FaultSiteT2:            "convert-T2",
	core.FaultSiteT3:            "downward-T3",
	core.FaultSiteEval:          "eval-local",
	core.FaultSiteNear:          "near-field",
	core.FaultSiteNearBody:      "near-field",

	core2.FaultSiteSort:      "sort",
	core2.FaultSiteLeafOuter: "leaf-outer",
	core2.FaultSiteT1:        "upward-T1",
	core2.FaultSiteT2:        "convert-T2",
	core2.FaultSiteT3:        "downward-T3",
	core2.FaultSiteEval:      "eval-local",
	core2.FaultSiteNear:      "near-field",

	dpfmm.FaultSiteSort:      "sort",
	dpfmm.FaultSiteLeafOuter: "leaf-outer",
	dpfmm.FaultSiteT1:        "upward-T1",
	dpfmm.FaultSiteT3:        "downward-T3",
	dpfmm.FaultSiteGhost:     "ghost",
	dpfmm.FaultSiteT2:        "convert-T2",
	dpfmm.FaultSiteEval:      "eval-local",
	dpfmm.FaultSiteNear:      "near-field",
}

// expectInternal asserts err is an *InternalError attributed to the phase
// the site belongs to.
func expectInternal(t *testing.T, site string, err error) {
	t.Helper()
	var ie *nbody.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("site %s: got %v (%T), want *InternalError", site, err, err)
	}
	if want := faultPhase[site]; ie.Phase != want {
		t.Errorf("site %s: attributed to phase %q, want %q", site, ie.Phase, want)
	}
	if len(ie.Stack) == 0 {
		t.Errorf("site %s: InternalError carries no stack", site)
	}
}

// TestFaultInjectionAnderson injects a panic at every fault site of the
// shared-memory pipeline, including the two in-worker body sites, and
// proves each surfaces as an *InternalError naming the phase — then that
// the very same solver completes a clean solve within differential bounds.
func TestFaultInjectionAnderson(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(2048, 1)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)

	sites := append([]string{}, core.FaultSites...)
	sites = append(sites, core.FaultSiteLeafOuterBody, core.FaultSiteNearBody)
	for _, site := range sites {
		faults.InjectPanic(site, "injected: "+site)
		_, err := a.Potentials(sys)
		expectInternal(t, site, err)
		faults.Reset()

		phi, err := a.Potentials(sys)
		if err != nil {
			t.Fatalf("site %s: clean re-solve failed: %v", site, err)
		}
		testutil.CheckClose(t, site+" re-solve", phi, want, boundFast)
	}
}

// TestFaultInjectionDataParallel is the same matrix on the simulated
// machine, covering the ghost phase the shared-memory solver does not have.
func TestFaultInjectionDataParallel(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(512, 2)
	box := sys.BoundingBox()
	d, err := nbody.NewDataParallel(8, box, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)

	for _, site := range dpfmm.FaultSites {
		faults.InjectPanic(site, "injected: "+site)
		_, err := d.Potentials(sys)
		expectInternal(t, site, err)
		faults.Reset()

		phi, err := d.Potentials(sys)
		if err != nil {
			t.Fatalf("site %s: clean re-solve failed: %v", site, err)
		}
		testutil.CheckClose(t, site+" re-solve", phi, want, boundFast)
	}
}

func random2D(n int, seed int64) ([]nbody.Vec2, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]nbody.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = nbody.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64()
	}
	return pos, q
}

// TestFaultInjectionAnderson2D runs the matrix on the 2-D pipeline.
func TestFaultInjectionAnderson2D(t *testing.T) {
	defer faults.Reset()
	pos, q := random2D(1024, 3)
	box := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.0000001}
	a, err := nbody.NewAnderson2D(box, nbody.Options2D{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := nbody.DirectPotentials2D(pos, q)

	for _, site := range core2.FaultSites {
		faults.InjectPanic(site, "injected: "+site)
		_, err := a.Potentials(pos, q)
		expectInternal(t, site, err)
		faults.Reset()

		phi, err := a.Potentials(pos, q)
		if err != nil {
			t.Fatalf("site %s: clean re-solve failed: %v", site, err)
		}
		testutil.CheckClose(t, site+" re-solve", phi, want, 1e-3)
	}
}

// TestFaultInjectionSimulationStep proves a panic during a leapfrog step
// surfaces as an *InternalError wrapped in the step error, leaves the
// simulation usable, and that the following step succeeds.
func TestFaultInjectionSimulationStep(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(1024, 4)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 100}
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, a, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	faults.InjectPanic(core.FaultSiteNear, "injected: step")
	err = sim.Step(1)
	var ie *nbody.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("Step: got %v, want wrapped *InternalError", err)
	}
	faults.Reset()
	if err := sim.Step(1); err != nil {
		t.Fatalf("step after contained panic: %v", err)
	}
}

// TestNaNInjectionThenCleanResolve poisons a mid-pipeline buffer with NaN
// (silent corruption, not a panic), observes the poisoned output, and then
// proves a clean re-solve into the same caller buffer is fully repaired —
// the buffer-hygiene half of the safe-to-retry contract.
func TestNaNInjectionThenCleanResolve(t *testing.T) {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(2048, 5)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(sys.Positions, sys.Charges)
	phi := make([]float64, sys.Len())

	faults.InjectNaN(core.FaultSiteLeafOuter)
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatalf("poisoned solve errored: %v", err)
	}
	poisoned := false
	for _, v := range phi {
		if math.IsNaN(v) {
			poisoned = true
			break
		}
	}
	if !poisoned {
		t.Fatal("NaN injection did not reach the output")
	}
	faults.Reset()
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatalf("clean re-solve: %v", err)
	}
	testutil.CheckClose(t, "post-NaN re-solve", phi, want, boundFast)
}

// TestCancellationAbortsSolve is the acceptance criterion for cancellation:
// on the paper's K=12 depth-4 configuration, a context canceled a few
// milliseconds in aborts the solve in a small fraction of the full solve
// time, returning ctx.Err(), and the solver remains usable.
func TestCancellationAbortsSolve(t *testing.T) {
	n := 32768
	if testing.Short() {
		n = 8192
	}
	sys := nbody.NewUniformSystem(n, 6)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Degree: 5, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, n)

	start := time.Now()
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	// Pre-canceled context: nothing but validation and the sort prologue
	// may run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.PotentialsIntoCtx(ctx, phi, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: got %v, want context.Canceled", err)
	}

	// Deadline mid-solve: must abort within one chunk of work, far below
	// the full solve time.
	ctx, cancel = context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start = time.Now()
	err = a.PotentialsIntoCtx(ctx, phi, sys)
	aborted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: got %v, want context.DeadlineExceeded", err)
	}
	if full > 50*time.Millisecond && aborted > full/2 {
		t.Errorf("canceled solve took %v, full solve %v: cancellation is not prompt", aborted, full)
	}
	t.Logf("full solve %v, canceled solve %v", full, aborted)

	// The solver must still produce correct answers after an abort.
	if err := a.PotentialsInto(phi, sys); err != nil {
		t.Fatalf("solve after cancel: %v", err)
	}
}

// TestValidate is the input-validation table: each malformed system must be
// rejected with the right sentinel before any solving starts.
func TestValidate(t *testing.T) {
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	ok := nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	cases := []struct {
		name string
		sys  nbody.System
		want error
	}{
		{"empty", nbody.System{}, nil},
		{"valid", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{1}}, nil},
		{"length mismatch", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{1, 2}}, nbody.ErrInvalidSystem},
		{"NaN position", nbody.System{Positions: []nbody.Vec3{{X: math.NaN(), Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrInvalidSystem},
		{"Inf position", nbody.System{Positions: []nbody.Vec3{{X: math.Inf(1), Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrInvalidSystem},
		{"NaN charge", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{math.NaN()}}, nbody.ErrInvalidSystem},
		{"Inf charge", nbody.System{Positions: []nbody.Vec3{ok}, Charges: []float64{math.Inf(-1)}}, nbody.ErrInvalidSystem},
		{"out of domain", nbody.System{Positions: []nbody.Vec3{{X: 1.5, Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrOutOfDomain},
		{"on upper face", nbody.System{Positions: []nbody.Vec3{{X: 1.0, Y: 0.5, Z: 0.5}}, Charges: []float64{1}}, nbody.ErrOutOfDomain},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sys.Validate(box)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestEntryPointsReject proves the validation actually guards the public
// entry points, not just the Validate method.
func TestEntryPointsReject(t *testing.T) {
	sys := nbody.NewUniformSystem(64, 7)
	box := sys.BoundingBox()
	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := &nbody.System{
		Positions: append([]nbody.Vec3{}, sys.Positions...),
		Charges:   append([]float64{}, sys.Charges...),
	}
	bad.Positions[17] = nbody.Vec3{X: math.NaN()}
	if _, err := a.Potentials(bad); !errors.Is(err, nbody.ErrInvalidSystem) {
		t.Errorf("Potentials(NaN) = %v, want ErrInvalidSystem", err)
	}
	bad.Positions[17] = nbody.Vec3{X: 1e6, Y: 0.5, Z: 0.5}
	if _, _, err := a.Accelerations(bad); !errors.Is(err, nbody.ErrOutOfDomain) {
		t.Errorf("Accelerations(far) = %v, want ErrOutOfDomain", err)
	}

	d, err := nbody.NewDataParallel(8, box, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Potentials(bad); !errors.Is(err, nbody.ErrOutOfDomain) {
		t.Errorf("DataParallel.Potentials(far) = %v, want ErrOutOfDomain", err)
	}
}

// TestCoincidentParticles duplicates a block of positions exactly and
// checks that both the direct reference and Anderson return finite
// potentials and fields that agree — the coincident pair contributes
// nothing (self-exclusion semantics) instead of Inf or a panic.
func TestCoincidentParticles(t *testing.T) {
	sys := nbody.NewUniformSystem(512, 8)
	for i := 0; i < 64; i++ {
		sys.Positions[256+i] = sys.Positions[i]
	}
	box := sys.BoundingBox()

	want, err := nbody.Direct{}.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("direct phi[%d] = %v with duplicated positions", i, v)
		}
	}
	acc := nbody.Direct{}.Accelerations(sys)
	for i, a := range acc {
		if math.IsNaN(a.X+a.Y+a.Z) || math.IsInf(a.X+a.Y+a.Z, 0) {
			t.Fatalf("direct acc[%d] = %v with duplicated positions", i, a)
		}
	}

	a, err := nbody.NewAnderson(box, nbody.Options{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := a.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckClose(t, "anderson duplicates vs direct", phi, want, boundFast)

	accBuf := make([]nbody.Vec3, sys.Len())
	if err := a.AccelerationsInto(phi, accBuf, sys); err != nil {
		t.Fatal(err)
	}
	for i, v := range accBuf {
		if math.IsNaN(v.X+v.Y+v.Z) || math.IsInf(v.X+v.Y+v.Z, 0) {
			t.Fatalf("anderson acc[%d] = %v with duplicated positions", i, v)
		}
	}

	// 2-D direct reference under the same degeneracy.
	pos2, q2 := random2D(128, 9)
	for i := 0; i < 16; i++ {
		pos2[64+i] = pos2[i]
	}
	for i, v := range nbody.DirectPotentials2D(pos2, q2) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("direct2d phi[%d] = %v with duplicated positions", i, v)
		}
	}
}

// TestConstructorErrors is the table-driven error-path sweep over every
// constructor: each invalid configuration must return an error (and a nil
// solver), never panic.
func TestConstructorErrors(t *testing.T) {
	box3 := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	box2 := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1}
	cases := []struct {
		name string
		make func() (any, error)
	}{
		{"core.NewSolver no degree", func() (any, error) {
			return core.NewSolver(box3, core.Config{Depth: 3})
		}},
		{"core.NewSolver depth 1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 1})
		}},
		{"core.NewSolver separation -1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, Separation: -1})
		}},
		{"core.NewSolver radius ratio 0.5", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, RadiusRatio: 0.5})
		}},
		{"core.NewSolver M -1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, M: -1})
		}},
		{"core.NewSolver supernodes separation 1", func() (any, error) {
			return core.NewSolver(box3, core.Config{Degree: 5, Depth: 3, Separation: 1, Supernodes: true})
		}},
		{"NewAnderson depth 1", func() (any, error) {
			return nbody.NewAnderson(box3, nbody.Options{Depth: 1})
		}},
		{"NewAnderson bad radius ratio", func() (any, error) {
			return nbody.NewAnderson(box3, nbody.Options{Depth: 3, RadiusRatio: 0.1})
		}},
		{"NewAnderson2D K 2", func() (any, error) {
			return nbody.NewAnderson2D(box2, nbody.Options2D{K: 2, Depth: 3})
		}},
		{"NewAnderson2D depth 1", func() (any, error) {
			return nbody.NewAnderson2D(box2, nbody.Options2D{Depth: 1})
		}},
		{"NewAnderson2D M 9 K 16", func() (any, error) {
			return nbody.NewAnderson2D(box2, nbody.Options2D{K: 16, M: 9, Depth: 3})
		}},
		{"dp.NewMachine nodes 3", func() (any, error) {
			return dp.NewMachine(3, 4, dp.CostModel{})
		}},
		{"dp.NewMachine nodes 0", func() (any, error) {
			return dp.NewMachine(0, 4, dp.CostModel{})
		}},
		{"dp.NewMachine vus 3", func() (any, error) {
			return dp.NewMachine(8, 3, dp.CostModel{})
		}},
		{"NewDataParallel depth 0", func() (any, error) {
			return nbody.NewDataParallel(8, box3, nbody.Options{}, dpfmm.DirectUnaliased)
		}},
		{"NewDataParallel nodes 5", func() (any, error) {
			return nbody.NewDataParallel(5, box3, nbody.Options{Depth: 3}, dpfmm.DirectUnaliased)
		}},
		{"NewDataParallel supernodes", func() (any, error) {
			return nbody.NewDataParallel(8, box3, nbody.Options{Depth: 3, Supernodes: true}, dpfmm.DirectUnaliased)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := tc.make()
			if err == nil {
				t.Fatalf("constructor accepted invalid config (got %T)", v)
			}
		})
	}
}
