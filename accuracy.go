package nbody

import (
	"math"
	"math/rand"

	"nbody/internal/core"
	"nbody/internal/geom"
)

// AccuracyEstimate predicts the accuracy of an Anderson configuration.
type AccuracyEstimate struct {
	K int // integration points the configuration resolves to
	M int // Legendre truncation
	// WorstPairError is the measured worst relative error of a single
	// well-separated box-to-point interaction (the per-interaction bound
	// of the paper's Table 2).
	WorstPairError float64
	// ExpectedDigits is the per-interaction digit count -log10(err);
	// whole-system errors relative to the mean field are typically one to
	// two digits better through statistical averaging over boxes.
	ExpectedDigits float64
}

// EstimateAccuracy probes a configuration's error without running a solve:
// it builds an outer approximation of a random unit-box charge cluster and
// measures its worst relative error over random two-separation evaluation
// geometries, the same experiment as the paper's Table 2.
func EstimateAccuracy(opts Options) (AccuracyEstimate, error) {
	cfg, err := opts.coreConfig(3).Normalized()
	if err != nil {
		return AccuracyEstimate{}, err
	}
	rng := rand.New(rand.NewSource(1))
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 30; i++ {
		pos = append(pos, geom.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5})
		q = append(q, rng.Float64())
	}
	truePot := func(x geom.Vec3) float64 {
		var v float64
		for j := range pos {
			v += q[j] / x.Dist(pos[j])
		}
		return v
	}
	rule := cfg.Rule
	a := cfg.RadiusRatio
	g := make([]float64, rule.K())
	for i, s := range rule.Points {
		g[i] = truePot(s.Scale(a))
	}
	worst := 0.0
	for trial := 0; trial < 200; trial++ {
		dir := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
		x := dir.Scale(float64(cfg.Separation+1) - a + (a+0.9)*rng.Float64())
		got := core.EvalOuter(rule, cfg.M, geom.Vec3{}, a, g, x)
		if rel := math.Abs(got-truePot(x)) / math.Abs(truePot(x)); rel > worst {
			worst = rel
		}
	}
	return AccuracyEstimate{
		K:              rule.K(),
		M:              cfg.M,
		WorstPairError: worst,
		ExpectedDigits: -math.Log10(worst),
	}, nil
}
