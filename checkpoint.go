package nbody

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"nbody/internal/metrics"
)

// Snapshot format, version 1. A checkpoint is a self-describing binary
// record (all integers and float bit patterns little-endian):
//
//	offset  size       field
//	0       8          magic "NBODYCKP"
//	8       4          version (uint32, currently 1)
//	12      8          payload length in bytes (uint64)
//	20      len        payload (below)
//	20+len  4          CRC32C (Castagnoli) of the payload
//
// payload, for n particles (length = 32 + 56n):
//
//	0       8          n (uint64)
//	8       8          completed steps (uint64)
//	16      8          simulation time (float64 bits)
//	24      8          timestep DT (float64 bits)
//	32      24n        positions (x, y, z float64 bits per particle)
//	32+24n  24n        velocities (x, y, z float64 bits per particle)
//	32+48n  8n         charges (float64 bits per particle)
//
// Version rules: the magic never changes; readers reject any version they
// do not know with ErrCorruptCheckpoint rather than guessing. A future
// layout change bumps the version and keeps decoding of all prior
// versions. The payload length is written redundantly with n so torn or
// forged records fail structural validation before any field is trusted,
// and the trailing CRC32C catches bit rot that structure cannot.
var checkpointMagic = [8]byte{'N', 'B', 'O', 'D', 'Y', 'C', 'K', 'P'}

const (
	checkpointVersion  = 1
	ckPayloadFixed     = 32    // n, step, time, dt
	ckBytesPerParticle = 7 * 8 // 3 position + 3 velocity + 1 charge floats
	ckHeaderLen        = 8 + 4 + 8
)

var ckCRCTable = crc32.MakeTable(crc32.Castagnoli)

// corruptf wraps ErrCorruptCheckpoint with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, fmt.Sprintf(format, args...))
}

// Checkpoint writes a versioned, checksummed snapshot of the simulation's
// full restartable state — positions, velocities, charges, time, step
// count, and timestep — to w. The accelerations are deliberately not
// stored: they are a deterministic function of the positions, and
// ResumeSimulation recomputes them bitwise-identically, so checkpoint →
// resume → Step reproduces the uninterrupted trajectory exactly (given an
// equivalently configured solver).
func (s *Simulation) Checkpoint(w io.Writer) error {
	n := s.System.Len()
	le := binary.LittleEndian
	payload := make([]byte, ckPayloadFixed+n*ckBytesPerParticle)
	le.PutUint64(payload[0:], uint64(n))
	le.PutUint64(payload[8:], uint64(s.step))
	le.PutUint64(payload[16:], math.Float64bits(s.time))
	le.PutUint64(payload[24:], math.Float64bits(s.DT))
	off := ckPayloadFixed
	for _, p := range s.System.Positions {
		le.PutUint64(payload[off:], math.Float64bits(p.X))
		le.PutUint64(payload[off+8:], math.Float64bits(p.Y))
		le.PutUint64(payload[off+16:], math.Float64bits(p.Z))
		off += 24
	}
	for _, v := range s.Velocities {
		le.PutUint64(payload[off:], math.Float64bits(v.X))
		le.PutUint64(payload[off+8:], math.Float64bits(v.Y))
		le.PutUint64(payload[off+16:], math.Float64bits(v.Z))
		off += 24
	}
	for _, q := range s.System.Charges {
		le.PutUint64(payload[off:], math.Float64bits(q))
		off += 8
	}

	var hdr [ckHeaderLen]byte
	copy(hdr[:8], checkpointMagic[:])
	le.PutUint32(hdr[8:], checkpointVersion)
	le.PutUint64(hdr[12:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nbody: write checkpoint: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("nbody: write checkpoint: %w", err)
	}
	var crc [4]byte
	le.PutUint32(crc[:], crc32.Checksum(payload, ckCRCTable))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("nbody: write checkpoint: %w", err)
	}
	metrics.AddCheckpoints(1)
	return nil
}

// CheckpointFile writes the snapshot to path atomically: into a temporary
// file in the same directory, fsynced, then renamed over path. A crash at
// any point leaves either the previous snapshot or the new one — never a
// readable-but-torn file.
func (s *Simulation) CheckpointFile(path string) error {
	return writeFileAtomic(path, s.Checkpoint)
}

// writeFileAtomic streams fill into a temp file next to path, fsyncs the
// file, renames it over path, and fsyncs the directory so the rename
// itself is durable.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("nbody: checkpoint %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err := fill(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("nbody: checkpoint %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("nbody: checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("nbody: checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("nbody: checkpoint %s: %w", path, err)
	}
	tmp = "" // committed: disable the cleanup
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// CheckpointState is the decoded restartable content of one checkpoint
// record: everything Checkpoint wrote, with structure and checksum already
// validated. It separates parsing from resumption so callers that only
// need to inspect a snapshot — the serve layer validating a resume token,
// the gateway reading the step a stream died at — can do so without
// building a solver.
type CheckpointState struct {
	Step       int
	Time       float64
	DT         float64
	Positions  []Vec3
	Velocities []Vec3
	Charges    []float64
}

// Len returns the particle count.
func (st *CheckpointState) Len() int { return len(st.Positions) }

// DecodeCheckpoint parses and validates one snapshot record from r. Any
// structural damage — bad magic, unknown version, truncation, inconsistent
// lengths, checksum mismatch, non-finite time or non-positive timestep —
// is reported with ErrCorruptCheckpoint; corrupt input never panics and
// never yields a silently wrong state.
func DecodeCheckpoint(r io.Reader) (*CheckpointState, error) {
	le := binary.LittleEndian
	var hdr [ckHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corruptf("truncated header (%v)", err)
	}
	if [8]byte(hdr[:8]) != checkpointMagic {
		return nil, corruptf("bad magic %q", hdr[:8])
	}
	if v := le.Uint32(hdr[8:]); v != checkpointVersion {
		return nil, corruptf("unsupported version %d (want %d)", v, checkpointVersion)
	}
	plen := le.Uint64(hdr[12:])
	if plen < ckPayloadFixed || (plen-ckPayloadFixed)%ckBytesPerParticle != 0 {
		return nil, corruptf("implausible payload length %d", plen)
	}
	payload, err := readFullLimited(r, plen)
	if err != nil {
		return nil, corruptf("truncated payload (%v)", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, corruptf("truncated checksum (%v)", err)
	}
	if got, want := crc32.Checksum(payload, ckCRCTable), le.Uint32(crcBuf[:]); got != want {
		return nil, corruptf("checksum mismatch (computed %08x, stored %08x)", got, want)
	}

	nParticles := (plen - ckPayloadFixed) / ckBytesPerParticle
	if n := le.Uint64(payload[0:]); n != nParticles {
		return nil, corruptf("particle count %d inconsistent with payload length %d", n, plen)
	}
	step := le.Uint64(payload[8:])
	if step > math.MaxInt64 {
		return nil, corruptf("implausible step count %d", step)
	}
	simTime := math.Float64frombits(le.Uint64(payload[16:]))
	dt := math.Float64frombits(le.Uint64(payload[24:]))
	if !finite(simTime) {
		return nil, corruptf("non-finite simulation time")
	}
	if !finite(dt) || dt <= 0 {
		return nil, corruptf("non-positive timestep %g", dt)
	}

	n := int(nParticles)
	pos := make([]Vec3, n)
	vel := make([]Vec3, n)
	q := make([]float64, n)
	off := ckPayloadFixed
	for i := range pos {
		pos[i] = Vec3{
			X: math.Float64frombits(le.Uint64(payload[off:])),
			Y: math.Float64frombits(le.Uint64(payload[off+8:])),
			Z: math.Float64frombits(le.Uint64(payload[off+16:])),
		}
		off += 24
	}
	for i := range vel {
		vel[i] = Vec3{
			X: math.Float64frombits(le.Uint64(payload[off:])),
			Y: math.Float64frombits(le.Uint64(payload[off+8:])),
			Z: math.Float64frombits(le.Uint64(payload[off+16:])),
		}
		off += 24
	}
	for i := range q {
		q[i] = math.Float64frombits(le.Uint64(payload[off:]))
		off += 8
	}

	return &CheckpointState{
		Step:       int(step),
		Time:       simTime,
		DT:         dt,
		Positions:  pos,
		Velocities: vel,
		Charges:    q,
	}, nil
}

// ResumeSimulationState rebuilds a Simulation from a decoded checkpoint,
// running it on solver (which must be configured compatibly with the
// original — same domain box and accuracy — for the resumed trajectory to
// continue bitwise). The accelerations are recomputed deterministically
// from the positions, so resume → Step reproduces the uninterrupted
// trajectory exactly. The state's slices are adopted, not copied.
func ResumeSimulationState(st *CheckpointState, solver Accelerator) (*Simulation, error) {
	n := st.Len()
	sim := &Simulation{
		System:     &System{Positions: st.Positions, Charges: st.Charges},
		Velocities: st.Velocities,
		Solver:     solver,
		DT:         st.DT,
		time:       st.Time,
		step:       st.Step,
	}
	sim.into, _ = solver.(AcceleratorInto)
	sim.phi = make([]float64, n)
	sim.acc = make([]Vec3, n)
	if err := sim.solve(); err != nil {
		return nil, fmt.Errorf("nbody: resume: initial solve: %w", err)
	}
	metrics.AddResumes(1)
	return sim, nil
}

// ResumeSimulation rebuilds a Simulation from a snapshot written by
// Checkpoint: DecodeCheckpoint composed with ResumeSimulationState.
func ResumeSimulation(r io.Reader, solver Accelerator) (*Simulation, error) {
	st, err := DecodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	return ResumeSimulationState(st, solver)
}

// ResumeSimulationFile is ResumeSimulation over a snapshot file written by
// CheckpointFile.
func ResumeSimulationFile(path string, solver Accelerator) (*Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nbody: resume %s: %w", path, err)
	}
	defer f.Close()
	sim, err := ResumeSimulation(bufio.NewReader(f), solver)
	if err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	return sim, nil
}

// readFullLimited reads exactly want bytes, growing the buffer only as
// data actually arrives, so a forged length field in a corrupt snapshot
// cannot force a huge up-front allocation.
func readFullLimited(r io.Reader, want uint64) ([]byte, error) {
	const chunk = 1 << 20
	first := want
	if first > chunk {
		first = chunk
	}
	buf := make([]byte, 0, first)
	for uint64(len(buf)) < want {
		next := want - uint64(len(buf))
		if next > chunk {
			next = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, next)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
