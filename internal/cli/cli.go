// Package cli centralizes the flag plumbing shared by the repo's commands
// (cmd/nbody, cmd/phases, cmd/tables): mapping flag strings to particle
// systems, accuracy presets, ghost strategies, and — through Spec — the
// solver-selection switch itself. The commands keep their own flag sets and
// reporting; the construction logic lives here once so the three main.go
// files stop diverging.
package cli

import (
	"fmt"
	"math/rand"
	"strings"

	"nbody"
	"nbody/internal/dpfmm"
	"nbody/internal/simd"
)

// Canonical usage strings for the shared flags, so help output stays
// consistent across commands.
const (
	DistHelp     = "distribution: uniform|plummer|neutral"
	AccuracyHelp = "anderson preset: fast|balanced|accurate"
	StrategyHelp = "dp ghost strategy: direct-unaliased|linearized-unaliased|direct-aliased|linearized-aliased"
	BackendHelp  = "compute backend: auto|scalar|avx2 (auto picks the fastest the CPU supports)"
)

// backendNames is the flag-to-backend table for SetBackend. "auto" is the
// process default: resolve to the best backend the host supports.
var backendNames = map[string]string{
	"auto":      simd.Auto,
	simd.Scalar: simd.Scalar,
	simd.AVX2:   simd.AVX2,
}

// SetBackend applies the -backend flag: it validates the name against the
// table above and switches internal/simd (and with it every dispatched
// kernel) before any solver is built. Selecting a backend the host cannot
// run is an error, not a silent fallback — scripted benchmarks must never
// record numbers for a backend they did not actually use.
func SetBackend(name string) error {
	resolved, ok := backendNames[name]
	if !ok {
		return fmt.Errorf("unknown backend %q (%s)", name, BackendHelp)
	}
	if err := simd.SetBackend(resolved); err != nil {
		return fmt.Errorf("-backend %s: %w", name, err)
	}
	return nil
}

// System builds the particle distribution named by dist.
func System(dist string, n int, seed int64) (*nbody.System, error) {
	switch dist {
	case "uniform":
		return nbody.NewUniformSystem(n, seed), nil
	case "plummer":
		return nbody.NewPlummerSystem(n, seed), nil
	case "neutral":
		return nbody.NewNeutralSystem(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q (%s)", dist, DistHelp)
	}
}

// System2D builds the uniform 2-D test system the 2-D solver paths use: unit
// square, charges in [-0.5, 0.5).
func System2D(n int, seed int64) ([]nbody.Vec2, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]nbody.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = nbody.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64() - 0.5
	}
	return pos, q
}

// Box2DUnit is the root box commands use with System2D: the unit square with
// a hair of slack so boundary particles stay inside.
func Box2DUnit() nbody.Box2D {
	return nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.001}
}

// Accuracy maps a preset name to the public accuracy knob.
func Accuracy(name string) (nbody.Accuracy, error) {
	switch name {
	case "fast":
		return nbody.Fast, nil
	case "balanced":
		return nbody.Balanced, nil
	case "accurate":
		return nbody.Accurate, nil
	default:
		return 0, fmt.Errorf("unknown accuracy %q (%s)", name, AccuracyHelp)
	}
}

// Strategy maps a ghost-strategy name to the dpfmm constant.
func Strategy(name string) (dpfmm.GhostStrategy, error) {
	switch name {
	case "direct-unaliased":
		return dpfmm.DirectUnaliased, nil
	case "linearized-unaliased":
		return dpfmm.LinearizedUnaliased, nil
	case "direct-aliased":
		return dpfmm.DirectAliased, nil
	case "linearized-aliased":
		return dpfmm.LinearizedAliased, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (%s)", name, StrategyHelp)
	}
}

// Spec is one flag-driven solver selection: the kind string plus everything
// any kind might need. Unused fields are ignored by the other kinds.
type Spec struct {
	Kind     string        // anderson (alias core) | bh | direct | dp
	Opts     nbody.Options // anderson and dp
	Theta    float64       // bh
	Nodes    int           // dp
	Strategy dpfmm.GhostStrategy
}

// New builds the selected solver against the given root box. The dp kind
// defaults a zero Opts.Depth to 4 (the data-parallel solver has no automatic
// depth heuristic).
func (sp Spec) New(box nbody.Box) (nbody.Solver, error) {
	switch sp.Kind {
	case "anderson", "core":
		return nbody.NewAnderson(box, sp.Opts)
	case "bh":
		return nbody.NewBarnesHut(box, sp.Theta), nil
	case "direct":
		return nbody.NewDirect(), nil
	case "dp":
		opts := sp.Opts
		if opts.Depth == 0 {
			opts.Depth = 4
		}
		return nbody.NewDataParallel(sp.Nodes, box, opts, sp.Strategy)
	default:
		return nil, fmt.Errorf("unknown solver %q (anderson | bh | direct | dp)", sp.Kind)
	}
}

// LadderHelp documents the -fallback flag shared by the commands.
const LadderHelp = "comma-separated fallback solvers for the degradation ladder, e.g. anderson,direct"

// Ladder builds the degradation ladder for the self-healing wrapper: rung 0
// is the spec's own solver, followed by one rung per comma-separated kind in
// fallbacks (each built from a copy of the spec with only Kind replaced, so
// depth/accuracy/ghost-strategy choices carry over). An empty fallbacks
// string yields the one-rung ladder.
func (sp Spec) Ladder(fallbacks string, box nbody.Box) ([]nbody.Solver, error) {
	first, err := sp.New(box)
	if err != nil {
		return nil, err
	}
	rungs := []nbody.Solver{first}
	if fallbacks == "" {
		return rungs, nil
	}
	for _, kind := range strings.Split(fallbacks, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			return nil, fmt.Errorf("empty solver kind in fallback list %q", fallbacks)
		}
		fsp := sp
		fsp.Kind = kind
		s, err := fsp.New(box)
		if err != nil {
			return nil, fmt.Errorf("fallback %q: %w", kind, err)
		}
		rungs = append(rungs, s)
	}
	return rungs, nil
}

// Accel adapts a flag-selected solver to the Accelerator interface the
// simulation loop needs, wrapping the direct solver's error-free signature
// and rejecting potentials-only backends (Barnes-Hut) with a clear message.
func Accel(s nbody.Solver) (nbody.Accelerator, error) {
	if a, ok := s.(nbody.Accelerator); ok {
		return a, nil
	}
	if d, ok := s.(*nbody.Direct); ok {
		return nbody.DirectAccelerator{Direct: *d}, nil
	}
	return nil, fmt.Errorf("solver %s cannot drive a simulation (no acceleration support)", s.Name())
}

// RecoveryFlags is the command-line surface of the self-healing layer:
// retry budget, fallback ladder, and checkpoint/resume paths. Validate
// rejects inconsistent combinations before any solver is built.
type RecoveryFlags struct {
	Retries         int    // per-rung attempt budget (0 = library default)
	Fallback        string // comma-separated fallback kinds (see LadderHelp)
	Checkpoint      string // snapshot path for periodic checkpoints
	CheckpointEvery int    // steps between snapshots (0 = disabled)
	Resume          string // snapshot path to resume from
}

// Validate checks the recovery flag combination: a negative retry budget is
// meaningless, a checkpoint interval needs a path (and vice versa), and
// resuming while also writing checkpoints to the same file is allowed — but
// resuming from a file that is also the checkpoint target of a different
// interval setting is not a conflict the flags can detect, so only the
// structural rules are enforced here.
func (r RecoveryFlags) Validate() error {
	if r.Retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", r.Retries)
	}
	if r.CheckpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", r.CheckpointEvery)
	}
	if r.CheckpointEvery > 0 && r.Checkpoint == "" {
		return fmt.Errorf("-checkpoint-every %d needs -checkpoint <path>", r.CheckpointEvery)
	}
	if r.Checkpoint != "" && r.CheckpointEvery == 0 {
		return fmt.Errorf("-checkpoint %q needs -checkpoint-every <steps>", r.Checkpoint)
	}
	return nil
}

// Supervised wraps the ladder selected by spec+flags in the Resilient
// supervisor when any recovery behavior was requested; with no -retries and
// no -fallback it returns the bare rung-0 solver, so the default command
// path stays exactly what it was.
func Supervised(sp Spec, r RecoveryFlags, box nbody.Box) (nbody.Solver, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.Retries == 0 && r.Fallback == "" {
		return sp.New(box)
	}
	rungs, err := sp.Ladder(r.Fallback, box)
	if err != nil {
		return nil, err
	}
	return nbody.NewResilient(nbody.RetryPolicy{MaxAttempts: r.Retries}, rungs...)
}
