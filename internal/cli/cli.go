// Package cli centralizes the flag plumbing shared by the repo's commands
// (cmd/nbody, cmd/phases, cmd/tables): mapping flag strings to particle
// systems, accuracy presets, ghost strategies, and — through Spec — the
// solver-selection switch itself. The commands keep their own flag sets and
// reporting; the construction logic lives here once so the three main.go
// files stop diverging.
package cli

import (
	"fmt"
	"math/rand"

	"nbody"
	"nbody/internal/dpfmm"
)

// Canonical usage strings for the shared flags, so help output stays
// consistent across commands.
const (
	DistHelp     = "distribution: uniform|plummer|neutral"
	AccuracyHelp = "anderson preset: fast|balanced|accurate"
	StrategyHelp = "dp ghost strategy: direct-unaliased|linearized-unaliased|direct-aliased|linearized-aliased"
)

// System builds the particle distribution named by dist.
func System(dist string, n int, seed int64) (*nbody.System, error) {
	switch dist {
	case "uniform":
		return nbody.NewUniformSystem(n, seed), nil
	case "plummer":
		return nbody.NewPlummerSystem(n, seed), nil
	case "neutral":
		return nbody.NewNeutralSystem(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown distribution %q (%s)", dist, DistHelp)
	}
}

// System2D builds the uniform 2-D test system the 2-D solver paths use: unit
// square, charges in [-0.5, 0.5).
func System2D(n int, seed int64) ([]nbody.Vec2, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]nbody.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = nbody.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64() - 0.5
	}
	return pos, q
}

// Box2DUnit is the root box commands use with System2D: the unit square with
// a hair of slack so boundary particles stay inside.
func Box2DUnit() nbody.Box2D {
	return nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.001}
}

// Accuracy maps a preset name to the public accuracy knob.
func Accuracy(name string) (nbody.Accuracy, error) {
	switch name {
	case "fast":
		return nbody.Fast, nil
	case "balanced":
		return nbody.Balanced, nil
	case "accurate":
		return nbody.Accurate, nil
	default:
		return 0, fmt.Errorf("unknown accuracy %q (%s)", name, AccuracyHelp)
	}
}

// Strategy maps a ghost-strategy name to the dpfmm constant.
func Strategy(name string) (dpfmm.GhostStrategy, error) {
	switch name {
	case "direct-unaliased":
		return dpfmm.DirectUnaliased, nil
	case "linearized-unaliased":
		return dpfmm.LinearizedUnaliased, nil
	case "direct-aliased":
		return dpfmm.DirectAliased, nil
	case "linearized-aliased":
		return dpfmm.LinearizedAliased, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (%s)", name, StrategyHelp)
	}
}

// Spec is one flag-driven solver selection: the kind string plus everything
// any kind might need. Unused fields are ignored by the other kinds.
type Spec struct {
	Kind     string        // anderson (alias core) | bh | direct | dp
	Opts     nbody.Options // anderson and dp
	Theta    float64       // bh
	Nodes    int           // dp
	Strategy dpfmm.GhostStrategy
}

// New builds the selected solver against the given root box. The dp kind
// defaults a zero Opts.Depth to 4 (the data-parallel solver has no automatic
// depth heuristic).
func (sp Spec) New(box nbody.Box) (nbody.Solver, error) {
	switch sp.Kind {
	case "anderson", "core":
		return nbody.NewAnderson(box, sp.Opts)
	case "bh":
		return nbody.NewBarnesHut(box, sp.Theta), nil
	case "direct":
		return nbody.NewDirect(), nil
	case "dp":
		opts := sp.Opts
		if opts.Depth == 0 {
			opts.Depth = 4
		}
		return nbody.NewDataParallel(sp.Nodes, box, opts, sp.Strategy)
	default:
		return nil, fmt.Errorf("unknown solver %q (anderson | bh | direct | dp)", sp.Kind)
	}
}
