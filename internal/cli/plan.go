package cli

import (
	"fmt"
	"time"

	"nbody"
	"nbody/internal/plan"
)

// PlanFlags is the command-line surface of the plan subsystem, shared by
// cmd/nbody, cmd/phases, and (through serve.Config) cmd/nbodyd: whether to
// resolve the solve configuration by measured autotuning, and where the
// persistent tuned-plan store lives.
type PlanFlags struct {
	// Autotune enables the measured depth search for auto-depth runs: every
	// candidate depth is benchmarked once and the fastest wins. Shapes
	// already tuned (in memory or in the store) skip the search entirely.
	Autotune bool
	// Store is the tuned-plan store path ("" = memory only): loaded before
	// resolution so warm starts skip search, saved after so the next run
	// warm-starts from this one's evidence.
	Store string
}

// AutotuneHelp / PlanStoreHelp document the shared flags.
const (
	AutotuneHelp  = "resolve auto depth by measured search (tuned shapes skip the search)"
	PlanStoreHelp = "persistent tuned-plan store path (loaded before solving, saved after)"
)

// Planner builds the planner these flags describe: depth candidates capped
// at maxDepth (0 = the planner default), warmed from the store when one is
// configured. A missing store file is a cold start; a corrupt one is an
// error.
func (f PlanFlags) Planner(maxDepth int) (*plan.Planner, error) {
	p := plan.NewPlanner(maxDepth)
	if f.Store != "" {
		if _, err := p.Load(f.Store); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Save persists the planner's tuned table to the configured store (a no-op
// without one).
func (f PlanFlags) Save(p *plan.Planner) error {
	if f.Store == "" {
		return nil
	}
	return p.Save(f.Store)
}

// ShapeOf fingerprints a system into the planner's canonical shape key.
func ShapeOf(sys *nbody.System, accuracy string) plan.ShapeKey {
	return plan.ShapeKey{N: sys.Len(), Dist: plan.Fingerprint(sys.Positions), Accuracy: accuracy}
}

// Apply resolves the depth of an anderson run through the planner and
// writes it back into a copy of the spec. With Autotune set, an untuned
// auto-depth shape is resolved by measured search — one timed solve per
// candidate depth, built via the spec — while a tuned shape (memory or
// store) answers without search; without Autotune the resolution never
// solves anything (tuned entry or analytic cost model). A one-line
// grep-able summary (plus the per-depth trial table when a search ran)
// goes to stdout — the CI smoke test asserts on the provenance=,
// searches=, and store_loaded= fields.
func (f PlanFlags) Apply(p *plan.Planner, sp Spec, sys *nbody.System, accuracy string, box nbody.Box) (Spec, error) {
	shape := ShapeOf(sys, accuracy)
	req := plan.Request{Depth: sp.Opts.Depth, Supernodes: sp.Opts.Supernodes}

	var pl plan.Plan
	var prov plan.Provenance
	if f.Autotune {
		bench := func(cand plan.Plan) (time.Duration, error) {
			bsp := sp
			bsp.Opts.Depth = cand.Depth
			s, err := bsp.New(box)
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if _, err := s.Potentials(sys); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		var trials []plan.Trial
		var err error
		pl, trials, prov, err = p.Tune(shape, req, bench)
		if err != nil {
			return sp, err
		}
		for _, tr := range trials {
			fmt.Printf("autotune: trial depth=%d measured=%v model=%v\n",
				tr.Depth, tr.Measured.Round(time.Microsecond), time.Duration(tr.ModelNS).Round(time.Microsecond))
		}
	} else {
		pl, prov = p.Resolve(shape, req)
	}

	c := p.Counters()
	fmt.Printf("autotune: shape={%s} depth=%d provenance=%s searches=%d search_time=%v store_loaded=%d\n",
		shape, pl.Depth, prov, c.Searches, time.Duration(c.SearchNS).Round(time.Microsecond), c.StoreLoads)
	out := sp
	out.Opts.Depth = pl.Depth
	return out, nil
}
