package cli

import (
	"slices"
	"testing"

	"nbody"
	"nbody/internal/dpfmm"
	"nbody/internal/simd"
)

func TestSetBackend(t *testing.T) {
	prev := simd.Active()
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatal(err)
		}
	}()

	cases := []struct {
		name    string
		want    string // expected simd.Active() after the call; "" = auto-resolved
		wantErr bool
	}{
		{"auto", "", false},
		{"scalar", simd.Scalar, false},
		{"neon", "", true},
		{"AVX2", "", true}, // names are case-sensitive, like every other flag
		{"", "", true},
	}
	for _, tc := range cases {
		err := SetBackend(tc.name)
		if tc.wantErr {
			if err == nil {
				t.Errorf("SetBackend(%q) accepted an invalid backend", tc.name)
			}
			continue
		}
		if err != nil {
			t.Fatalf("SetBackend(%q): %v", tc.name, err)
		}
		if tc.want != "" && simd.Active() != tc.want {
			t.Errorf("SetBackend(%q): active backend %q, want %q", tc.name, simd.Active(), tc.want)
		}
		if !slices.Contains(simd.Supported(), simd.Active()) {
			t.Errorf("SetBackend(%q) activated unsupported backend %q", tc.name, simd.Active())
		}
	}

	// Selecting avx2 explicitly must succeed exactly when the host supports
	// it and fail loudly otherwise — never silently fall back.
	err := SetBackend(simd.AVX2)
	if supported := slices.Contains(simd.Supported(), simd.AVX2); supported != (err == nil) {
		t.Errorf("SetBackend(avx2): err=%v with host support=%v", err, supported)
	}
}

func TestSystemDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "plummer", "neutral"} {
		sys, err := System(dist, 100, 1)
		if err != nil {
			t.Fatalf("System(%q): %v", dist, err)
		}
		if sys.Len() != 100 {
			t.Errorf("System(%q): %d particles, want 100", dist, sys.Len())
		}
	}
	if _, err := System("gaussian", 100, 1); err == nil {
		t.Error("System accepted an unknown distribution")
	}
}

func TestAccuracyAndStrategy(t *testing.T) {
	if a, err := Accuracy("balanced"); err != nil || a != nbody.Balanced {
		t.Errorf("Accuracy(balanced) = %v, %v", a, err)
	}
	if _, err := Accuracy("ludicrous"); err == nil {
		t.Error("Accuracy accepted an unknown preset")
	}
	if s, err := Strategy("direct-aliased"); err != nil || s != dpfmm.DirectAliased {
		t.Errorf("Strategy(direct-aliased) = %v, %v", s, err)
	}
	if _, err := Strategy("telepathic"); err == nil {
		t.Error("Strategy accepted an unknown strategy")
	}
}

func TestSpecBuildsEveryKind(t *testing.T) {
	sys := nbody.NewUniformSystem(256, 1)
	box := sys.BoundingBox()
	for _, kind := range []string{"anderson", "core", "bh", "direct", "dp"} {
		spec := Spec{Kind: kind, Opts: nbody.Options{Depth: 2}, Theta: 0.6,
			Nodes: 8, Strategy: dpfmm.LinearizedAliased}
		s, err := spec.New(box)
		if err != nil {
			t.Fatalf("Spec{%q}.New: %v", kind, err)
		}
		if _, err := s.Potentials(sys); err != nil {
			t.Errorf("Spec{%q} solver failed to solve: %v", kind, err)
		}
	}
	if _, err := (Spec{Kind: "magic"}).New(box); err == nil {
		t.Error("Spec accepted an unknown kind")
	}
}

func TestLadder(t *testing.T) {
	sys := nbody.NewUniformSystem(128, 2)
	box := sys.BoundingBox()
	spec := Spec{Kind: "dp", Opts: nbody.Options{Depth: 3}, Theta: 0.6,
		Nodes: 8, Strategy: dpfmm.LinearizedAliased}

	cases := []struct {
		name      string
		fallbacks string
		wantNames []string
		wantErr   bool
	}{
		{"no fallbacks", "", []string{"anderson-dp"}, false},
		{"one fallback", "anderson", []string{"anderson-dp", "anderson"}, false},
		{"full ladder", "anderson, bh ,direct", []string{"anderson-dp", "anderson", "barnes-hut", "direct"}, false},
		{"unknown kind", "anderson,telekinesis", nil, true},
		{"empty element", "anderson,,direct", nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rungs, err := spec.Ladder(tc.fallbacks, box)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Ladder(%q) accepted an invalid list", tc.fallbacks)
				}
				return
			}
			if err != nil {
				t.Fatalf("Ladder(%q): %v", tc.fallbacks, err)
			}
			if len(rungs) != len(tc.wantNames) {
				t.Fatalf("Ladder(%q): %d rungs, want %d", tc.fallbacks, len(rungs), len(tc.wantNames))
			}
			for i, want := range tc.wantNames {
				if got := rungs[i].Name(); got != want {
					t.Errorf("rung %d = %q, want %q", i, got, want)
				}
			}
		})
	}
}

func TestAccel(t *testing.T) {
	sys := nbody.NewUniformSystem(64, 3)
	box := sys.BoundingBox()
	for _, kind := range []string{"anderson", "direct", "dp"} {
		s, err := Spec{Kind: kind, Opts: nbody.Options{Depth: 2}, Nodes: 8,
			Strategy: dpfmm.LinearizedAliased}.New(box)
		if err != nil {
			t.Fatalf("Spec{%q}: %v", kind, err)
		}
		a, err := Accel(s)
		if err != nil {
			t.Fatalf("Accel(%q): %v", kind, err)
		}
		if _, _, err := a.Accelerations(sys); err != nil {
			t.Errorf("Accel(%q) solver failed: %v", kind, err)
		}
	}
	if _, err := Accel(nbody.NewBarnesHut(box, 0.6)); err == nil {
		t.Error("Accel accepted the potentials-only Barnes-Hut solver")
	}
}

func TestRecoveryFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		flags   RecoveryFlags
		wantErr bool
	}{
		{"zero value", RecoveryFlags{}, false},
		{"retries only", RecoveryFlags{Retries: 5}, false},
		{"fallback only", RecoveryFlags{Fallback: "direct"}, false},
		{"checkpointing", RecoveryFlags{Checkpoint: "x.ckpt", CheckpointEvery: 10}, false},
		{"resume only", RecoveryFlags{Resume: "x.ckpt"}, false},
		{"everything", RecoveryFlags{Retries: 3, Fallback: "anderson,direct",
			Checkpoint: "x.ckpt", CheckpointEvery: 5, Resume: "y.ckpt"}, false},
		{"negative retries", RecoveryFlags{Retries: -1}, true},
		{"negative interval", RecoveryFlags{CheckpointEvery: -2}, true},
		{"interval without path", RecoveryFlags{CheckpointEvery: 4}, true},
		{"path without interval", RecoveryFlags{Checkpoint: "x.ckpt"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.flags.Validate()
			if tc.wantErr && err == nil {
				t.Fatalf("Validate(%+v) accepted an invalid combination", tc.flags)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("Validate(%+v): %v", tc.flags, err)
			}
		})
	}
}

func TestSupervised(t *testing.T) {
	sys := nbody.NewUniformSystem(128, 4)
	box := sys.BoundingBox()
	spec := Spec{Kind: "anderson", Opts: nbody.Options{Depth: 2}}

	// No recovery flags: the bare solver, not a wrapper.
	s, err := Supervised(spec, RecoveryFlags{}, box)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*nbody.Anderson); !ok {
		t.Errorf("Supervised with no flags returned %T, want the bare *nbody.Anderson", s)
	}

	// Any recovery request wraps the ladder.
	s, err = Supervised(spec, RecoveryFlags{Retries: 2, Fallback: "direct"}, box)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s.(*nbody.Resilient)
	if !ok {
		t.Fatalf("Supervised returned %T, want *nbody.Resilient", s)
	}
	if got := r.RungNames(); len(got) != 2 || got[0] != "anderson" || got[1] != "direct" {
		t.Errorf("ladder %v, want [anderson direct]", got)
	}
	if _, err := s.Potentials(sys); err != nil {
		t.Errorf("supervised solve failed: %v", err)
	}

	// Invalid flag combinations surface before any solver is built.
	if _, err := Supervised(spec, RecoveryFlags{Retries: -1}, box); err == nil {
		t.Error("Supervised accepted negative retries")
	}
}
