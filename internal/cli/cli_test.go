package cli

import (
	"testing"

	"nbody"
	"nbody/internal/dpfmm"
)

func TestSystemDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "plummer", "neutral"} {
		sys, err := System(dist, 100, 1)
		if err != nil {
			t.Fatalf("System(%q): %v", dist, err)
		}
		if sys.Len() != 100 {
			t.Errorf("System(%q): %d particles, want 100", dist, sys.Len())
		}
	}
	if _, err := System("gaussian", 100, 1); err == nil {
		t.Error("System accepted an unknown distribution")
	}
}

func TestAccuracyAndStrategy(t *testing.T) {
	if a, err := Accuracy("balanced"); err != nil || a != nbody.Balanced {
		t.Errorf("Accuracy(balanced) = %v, %v", a, err)
	}
	if _, err := Accuracy("ludicrous"); err == nil {
		t.Error("Accuracy accepted an unknown preset")
	}
	if s, err := Strategy("direct-aliased"); err != nil || s != dpfmm.DirectAliased {
		t.Errorf("Strategy(direct-aliased) = %v, %v", s, err)
	}
	if _, err := Strategy("telepathic"); err == nil {
		t.Error("Strategy accepted an unknown strategy")
	}
}

func TestSpecBuildsEveryKind(t *testing.T) {
	sys := nbody.NewUniformSystem(256, 1)
	box := sys.BoundingBox()
	for _, kind := range []string{"anderson", "core", "bh", "direct", "dp"} {
		spec := Spec{Kind: kind, Opts: nbody.Options{Depth: 2}, Theta: 0.6,
			Nodes: 8, Strategy: dpfmm.LinearizedAliased}
		s, err := spec.New(box)
		if err != nil {
			t.Fatalf("Spec{%q}.New: %v", kind, err)
		}
		if _, err := s.Potentials(sys); err != nil {
			t.Errorf("Spec{%q} solver failed to solve: %v", kind, err)
		}
	}
	if _, err := (Spec{Kind: "magic"}).New(box); err == nil {
		t.Error("Spec accepted an unknown kind")
	}
}
