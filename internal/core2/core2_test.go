package core2

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/geom"
)

func unitBox2() geom.Box2 {
	return geom.Box2{Center: geom.Vec2{X: 0.5, Y: 0.5}, Side: 1}
}

func uniform2(rng *rand.Rand, n int) ([]geom.Vec2, []float64) {
	pos := make([]geom.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64()
	}
	return pos, q
}

// relErr2 uses mean |phi| normalization; in 2-D phi can pass through zero,
// so the mean-based metric is the right one (as in the paper).
func relErr2(got, want []float64) float64 {
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	return math.Sqrt(rms/float64(len(got))) / (mean/float64(len(got)) + 1e-300)
}

func TestConfigValidation2(t *testing.T) {
	bad := []Config{
		{},
		{K: 2, Depth: 3},
		{K: 8, Depth: 1},
		{K: 8, Depth: 3, M: 4},             // 2M >= K
		{K: 8, Depth: 3, RadiusRatio: 0.5}, // below sqrt(2)/2
		{K: 8, Depth: 3, RadiusRatio: 1.6}, // too large for separation 2
		{K: 8, Depth: 3, Separation: -2},
	}
	for i, cfg := range bad {
		if _, err := cfg.normalize(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good, err := Config{K: 12, Depth: 3}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if good.M != 5 || good.RadiusRatio != DefaultRadiusRatio2 || good.Separation != 2 {
		t.Errorf("defaults: %+v", good)
	}
}

func TestAccuracyImprovesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pos, q := uniform2(rng, 1500)
	want := DirectPotentials2(pos, q)
	var errs []float64
	for _, k := range []int{8, 16, 32} {
		s, err := NewSolver(unitBox2(), Config{K: k, Depth: 3})
		if err != nil {
			t.Fatal(err)
		}
		phi, err := s.Potentials(pos, q)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, relErr2(phi, want))
	}
	t.Logf("2-D errors vs K: %v", errs)
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1] {
			t.Errorf("error not decreasing with K: %v", errs)
		}
	}
	if errs[len(errs)-1] > 1e-6 {
		t.Errorf("K=32 error %.2e too large", errs[len(errs)-1])
	}
	if errs[0] > 1e-3 {
		t.Errorf("K=8 error %.2e too large", errs[0])
	}
}

func TestDepthIndependence2(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	pos, q := uniform2(rng, 2000)
	var phis [][]float64
	for _, depth := range []int{3, 4, 5} {
		s, err := NewSolver(unitBox2(), Config{K: 16, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		phi, err := s.Potentials(pos, q)
		if err != nil {
			t.Fatal(err)
		}
		phis = append(phis, phi)
	}
	if e := relErr2(phis[0], phis[1]); e > 1e-5 {
		t.Errorf("depth 3 vs 4: %.2e", e)
	}
	if e := relErr2(phis[1], phis[2]); e > 1e-5 {
		t.Errorf("depth 4 vs 5: %.2e", e)
	}
}

func TestSignedChargesAndNeutralSystems(t *testing.T) {
	// Charge-neutral systems exercise the monopole bookkeeping: the total
	// Q log terms cancel globally but not per box.
	rng := rand.New(rand.NewSource(93))
	pos := make([]geom.Vec2, 1000)
	q := make([]float64, 1000)
	for i := range pos {
		pos[i] = geom.Vec2{X: rng.Float64(), Y: rng.Float64()}
		if i%2 == 0 {
			q[i] = 1
		} else {
			q[i] = -1
		}
	}
	s, err := NewSolver(unitBox2(), Config{K: 16, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	want := DirectPotentials2(pos, q)
	// Normalize by RMS of want (mean |phi| is fine too, but phi is signed).
	var rms, wrms float64
	for i := range phi {
		rms += (phi[i] - want[i]) * (phi[i] - want[i])
		wrms += want[i] * want[i]
	}
	if math.Sqrt(rms/wrms) > 5e-4 {
		t.Errorf("neutral system error %.2e", math.Sqrt(rms/wrms))
	}
}

func TestTwoParticleExactness2(t *testing.T) {
	// Two far-separated particles: the method must reproduce -q ln r to
	// near machine precision at high K.
	pos := []geom.Vec2{{X: 0.03, Y: 0.07}, {X: 0.93, Y: 0.91}}
	q := []float64{2, 3}
	s, err := NewSolver(unitBox2(), Config{K: 32, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	r := pos[0].Dist(pos[1])
	want0 := -q[1] * math.Log(r)
	want1 := -q[0] * math.Log(r)
	if math.Abs(phi[0]-want0) > 1e-9 || math.Abs(phi[1]-want1) > 1e-9 {
		t.Errorf("phi = %v, want %g, %g", phi, want0, want1)
	}
}

func TestRejectsBadInput2(t *testing.T) {
	s, err := NewSolver(unitBox2(), Config{K: 8, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials(make([]geom.Vec2, 2), make([]float64, 1)); err == nil {
		t.Error("mismatched input accepted")
	}
	if _, err := s.Potentials([]geom.Vec2{{X: 5, Y: 0}}, []float64{1}); err == nil {
		t.Error("out-of-domain accepted")
	}
}

func TestSeparationOne2(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	pos, q := uniform2(rng, 800)
	want := DirectPotentials2(pos, q)
	s1, err := NewSolver(unitBox2(), Config{K: 16, Depth: 3, Separation: 1, RadiusRatio: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	phi1, err := s1.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(unitBox2(), Config{K: 16, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi2, err := s2.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := relErr2(phi1, want), relErr2(phi2, want)
	if e1 > 1e-2 {
		t.Errorf("one-separation error %.2e", e1)
	}
	if e2 >= e1 {
		t.Errorf("two-separation (%.2e) should beat one-separation (%.2e)", e2, e1)
	}
}

func TestClustered2(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	pos := make([]geom.Vec2, 500)
	q := make([]float64, 500)
	for i := range pos {
		pos[i] = geom.Vec2{X: 0.1 + 0.3*rng.Float64(), Y: 0.6 + 0.3*rng.Float64()}
		q[i] = rng.Float64()
	}
	s, err := NewSolver(unitBox2(), Config{K: 16, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr2(phi, DirectPotentials2(pos, q)); e > 1e-5 {
		t.Errorf("clustered error %.2e", e)
	}
}

func TestSupernodes2MatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	pos, q := uniform2(rng, 2000)
	want := DirectPotentials2(pos, q)

	plain, err := NewSolver(unitBox2(), Config{K: 16, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSolver(unitBox2(), Config{K: 16, Depth: 4, Supernodes: true})
	if err != nil {
		t.Fatal(err)
	}
	phiP, err := plain.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	phiS, err := sup.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	// Supernodes trade a little accuracy; both must stay in the method's
	// accuracy band and agree with each other.
	if e := relErr2(phiP, want); e > 1e-4 {
		t.Errorf("plain error %.2e", e)
	}
	if e := relErr2(phiS, want); e > 1e-3 {
		t.Errorf("supernode error %.2e", e)
	}
	if e := relErr2(phiS, phiP); e > 1e-3 {
		t.Errorf("supernode vs plain %.2e", e)
	}
}

func TestSupernodes2RequiresSeparationTwo(t *testing.T) {
	if _, err := (Config{K: 8, Depth: 3, Separation: 1, RadiusRatio: 0.75, Supernodes: true}).normalize(); err == nil {
		t.Error("supernodes with separation 1 accepted")
	}
}
