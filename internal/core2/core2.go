// Package core2 implements the two-dimensional variant of Anderson's
// method. The paper notes that "the computations in two and three
// dimensions are very similar. Therefore, a code for three dimensions is
// easily obtained from a code for two dimensions, or vice versa"; this
// package demonstrates that property: the same five-step structure over a
// quadtree, with circle integration rules in place of sphere rules.
//
// The 2-D Laplace potential is phi(x) = -sum_j q_j ln|x - y_j|. Unlike 3-D,
// the far field of a cluster does not decay: it grows like -Q ln r with the
// total charge Q. An outer representation therefore carries the pair
// (Q, h), where h_i are the values of the decaying residual
// u = phi + Q ln r at the K points of a circle of radius a. u is harmonic
// outside the circle with zero boundary mean, and is reconstructed by the
// discretized exterior Poisson kernel
//
//	u(x) ~ sum_i w_i h_i [1 + 2 sum_{n=1..M} (a/r)^n cos(n dtheta)].
//
// Inner representations are plain circle values reconstructed by the
// interior kernel with (r/a)^n. All translations remain K x K matrices,
// augmented by a K-vector carrying the -Q ln r + Q ln a log terms.
package core2

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"nbody/internal/blas"
	"nbody/internal/direct"
	"nbody/internal/geom"
	"nbody/internal/kernels"
	"nbody/internal/metrics"
	"nbody/internal/pipeline"
	"nbody/internal/sphere"
	"nbody/internal/tree"
)

// Fault-injection site names (see internal/faults): one per named phase of
// the 2-D pipeline, fired by the phase runner (internal/pipeline) when the
// phase completes without error.
const (
	FaultSiteSort      = "core2/sort"
	FaultSiteLeafOuter = "core2/leaf-outer"
	FaultSiteT1        = "core2/T1"
	FaultSiteT3        = "core2/T3"
	FaultSiteT2        = "core2/T2"
	FaultSiteEval      = "core2/eval"
	FaultSiteNear      = "core2/near"
)

// FaultSites lists the sites in pipeline order for matrix tests.
var FaultSites = []string{
	FaultSiteSort, FaultSiteLeafOuter, FaultSiteT1, FaultSiteT3,
	FaultSiteT2, FaultSiteEval, FaultSiteNear,
}

// Config selects the parameters of the 2-D method.
type Config struct {
	// K is the number of circle integration points. Required, >= 4.
	K int
	// M is the Fourier truncation; zero selects the alias-free maximum
	// (K-1)/2.
	M int
	// RadiusRatio is the circle radius in units of the box side; zero
	// selects 0.9. Must exceed sqrt(2)/2 (the circumscribed ratio).
	RadiusRatio float64
	// Depth is the quadtree depth. Required, >= 2.
	Depth int
	// Separation is the near-field separation; zero selects 2.
	Separation int
	// Supernodes enables the 2-D supernode decomposition (75 -> 27
	// effective interactive-field translations for d = 2).
	Supernodes bool
}

// DefaultRadiusRatio2 is the calibrated circle-radius default.
const DefaultRadiusRatio2 = 0.9

func (c Config) normalize() (Config, error) {
	if c.K < 4 {
		return c, fmt.Errorf("core2: K = %d < 4", c.K)
	}
	if c.M == 0 {
		c.M = (c.K - 1) / 2
	}
	if c.M < 1 || 2*c.M >= c.K {
		return c, fmt.Errorf("core2: M = %d out of range for K = %d", c.M, c.K)
	}
	if c.RadiusRatio == 0 {
		c.RadiusRatio = DefaultRadiusRatio2
	}
	if c.RadiusRatio <= math.Sqrt2/2 {
		return c, fmt.Errorf("core2: RadiusRatio %g <= sqrt(2)/2", c.RadiusRatio)
	}
	if c.Separation == 0 {
		c.Separation = 2
	}
	if c.Separation < 1 {
		return c, fmt.Errorf("core2: Separation %d < 1", c.Separation)
	}
	if float64(c.Separation+1)-c.RadiusRatio <= c.RadiusRatio {
		return c, fmt.Errorf("core2: RadiusRatio %g too large for separation %d", c.RadiusRatio, c.Separation)
	}
	if c.Depth < 2 {
		return c, fmt.Errorf("core2: Depth %d < 2", c.Depth)
	}
	if c.Supernodes && c.Separation != 2 {
		return c, fmt.Errorf("core2: supernodes implemented for separation 2 only")
	}
	return c, nil
}

// outerKernel2 is the exterior Poisson kernel 1 + 2 sum (a/r)^n cos(n dt).
func outerKernel2(m int, a, r, dt float64) float64 {
	rho := a / r
	s := 1.0
	pow := 1.0
	for n := 1; n <= m; n++ {
		pow *= rho
		s += 2 * pow * math.Cos(float64(n)*dt)
	}
	return s
}

// innerKernel2 is the interior Poisson kernel 1 + 2 sum (r/a)^n cos(n dt).
func innerKernel2(m int, a, r, dt float64) float64 {
	rho := r / a
	s := 1.0
	pow := 1.0
	for n := 1; n <= m; n++ {
		pow *= rho
		s += 2 * pow * math.Cos(float64(n)*dt)
	}
	return s
}

// translation is a K x K matrix plus the log-term vector: applying source
// (Q, h) appends A*h + Q*v to the destination values.
type translation struct {
	a blas.Matrix
	v []float64
}

func (t translation) apply(q float64, h, dst []float64) {
	blas.Dgemv(t.a, h, dst)
	blas.Daxpy(q, t.v, dst)
}

// Solver runs the 2-D method on a fixed quadtree.
type Solver struct {
	cfg  Config
	hier tree.Hierarchy2
	rule *sphere.CircleRule

	t1     [4]translation // child outer -> parent outer residual values
	t3     [4]blas.Matrix // parent inner -> child inner (no log terms)
	t2     []translation  // same-size outer -> inner, indexed by offset
	t2Side int
	// t2Super[qd] maps supernode parent offsets to parent-granularity
	// conversions (source radius 2a, in child-side units).
	t2Super [4]map[geom.Coord2]translation

	interactive [4][]geom.Coord2
	supers      [4]tree.Supernodes2
	nearOff     []geom.Coord2

	rec  metrics.Rec
	snap metrics.Snapshot
}

// Stats returns the per-phase instrumentation accumulated over all solves
// so far. The snapshot is owned by the Solver and refreshed on each call.
func (s *Solver) Stats() *metrics.Snapshot {
	s.rec.ReadInto(&s.snap)
	return &s.snap
}

// Rec exposes the live recorder.
func (s *Solver) Rec() *metrics.Rec { return &s.rec }

// translationFlops is the flop count of one translation application:
// a K x K Dgemv plus the K-length log-term Daxpy.
func translationFlops(k int) int64 { return blas.DgemvFlops(k, k) + 2*int64(k) }

// NewSolver builds the solver and precomputes all translation matrices.
func NewSolver(root geom.Box2, cfg Config) (*Solver, error) {
	ncfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	h, err := tree.NewHierarchy2(root, ncfg.Depth)
	if err != nil {
		return nil, err
	}
	s := &Solver{cfg: ncfg, hier: h, rule: sphere.Circle(ncfg.K)}
	pipeline.Setup(&s.rec, s.buildMatrices)
	for qd := 0; qd < 4; qd++ {
		s.interactive[qd] = tree.InteractiveOffsets2(ncfg.Separation, qd)
		if ncfg.Supernodes {
			s.supers[qd] = tree.SupernodeDecomposition2(ncfg.Separation, qd)
		}
	}
	s.nearOff = tree.NearOffsets2(ncfg.Separation)
	return s, nil
}

// quadrantOffset returns the child-center offset from the parent center in
// child-side units.
func quadrantOffset(qd int) geom.Vec2 {
	v := geom.Vec2{X: -0.5, Y: -0.5}
	if qd&1 != 0 {
		v.X = 0.5
	}
	if qd&2 != 0 {
		v.Y = 0.5
	}
	return v
}

func (s *Solver) buildMatrices() {
	cfg := s.cfg
	k := cfg.K
	rule := s.rule
	aC := cfg.RadiusRatio     // child radius, child-side units
	aP := 2 * cfg.RadiusRatio // parent radius

	// T1: parent residual values from child (Q, h):
	//   h_p[i] = u_c(p_i) - Q ln r_i + Q ln aP
	// where p_i is the parent circle point relative to the child center.
	for qd := 0; qd < 4; qd++ {
		cc := quadrantOffset(qd)
		t := translation{a: blas.NewMatrix(k, k), v: make([]float64, k)}
		t3 := blas.NewMatrix(k, k)
		for i, si := range rule.Points {
			xp := si.Scale(aP).Sub(cc)
			rp := xp.Norm()
			tp := xp.Angle()
			t.v[i] = -math.Log(rp) + math.Log(aP)
			// T3 destination: child inner point relative to parent center.
			xc := cc.Add(si.Scale(aC))
			rc := xc.Norm()
			tc := xc.Angle()
			for j := range rule.Points {
				t.a.Set(i, j, rule.W[j]*outerKernel2(cfg.M, aC, rp, tp-rule.Angles[j]))
				t3.Set(i, j, rule.W[j]*innerKernel2(cfg.M, aP, rc, tc-rule.Angles[j]))
			}
		}
		s.t1[qd] = t
		s.t3[qd] = t3
	}

	// T2 for all offsets in the indexing square.
	b := 2*cfg.Separation + 1
	side := 2*b + 1
	s.t2Side = side
	s.t2 = make([]translation, side*side)
	for dy := -b; dy <= b; dy++ {
		for dx := -b; dx <= b; dx++ {
			o := geom.Coord2{X: dx, Y: dy}
			if o.ChebDist(geom.Coord2{}) <= cfg.Separation {
				continue
			}
			// Source = target + o: target center at -o from source.
			rel := geom.Vec2{X: -float64(dx), Y: -float64(dy)}
			t := translation{a: blas.NewMatrix(k, k), v: make([]float64, k)}
			for i, si := range rule.Points {
				x := rel.Add(si.Scale(aC))
				r := x.Norm()
				th := x.Angle()
				t.v[i] = -math.Log(r)
				for j := range rule.Points {
					t.a.Set(i, j, rule.W[j]*outerKernel2(cfg.M, aC, r, th-rule.Angles[j]))
				}
			}
			s.t2[s.t2Index(o)] = t
		}
	}

	// Supernode matrices: parent-level sources (side 2, radius 2a) in
	// child-side units.
	if cfg.Supernodes {
		aS := 2 * cfg.RadiusRatio
		for qd := 0; qd < 4; qd++ {
			sn := tree.SupernodeDecomposition2(cfg.Separation, qd)
			mm := make(map[geom.Coord2]translation, len(sn.ParentOffsets))
			delta := quadrantOffset(qd)
			for _, tt := range sn.ParentOffsets {
				// Target child center relative to source parent center.
				rel := delta.Sub(geom.Vec2{X: float64(2 * tt.X), Y: float64(2 * tt.Y)})
				t := translation{a: blas.NewMatrix(k, k), v: make([]float64, k)}
				for i, si := range rule.Points {
					x := rel.Add(si.Scale(aC))
					r := x.Norm()
					th := x.Angle()
					t.v[i] = -math.Log(r)
					for j := range rule.Points {
						t.a.Set(i, j, rule.W[j]*outerKernel2(cfg.M, aS, r, th-rule.Angles[j]))
					}
				}
				mm[tt] = t
			}
			s.t2Super[qd] = mm
		}
	}
}

func (s *Solver) t2Index(o geom.Coord2) int {
	b := (s.t2Side - 1) / 2
	return (o.Y+b)*s.t2Side + (o.X + b)
}

// Potentials computes phi_i = -sum_{j != i} q_j ln|x_i - x_j|.
func (s *Solver) Potentials(pos []geom.Vec2, q []float64) ([]float64, error) {
	return s.solve(nil, pos, q)
}

// PotentialsCtx is Potentials with cooperative cancellation: ctx is checked
// between phases and in every parallel sweep's chunk-claim loop, so a
// canceled context returns ctx.Err() within about one chunk's work.
func (s *Solver) PotentialsCtx(ctx context.Context, pos []geom.Vec2, q []float64) ([]float64, error) {
	return s.solve(ctx, pos, q)
}

func (s *Solver) solve(ctx context.Context, pos []geom.Vec2, q []float64) ([]float64, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("core2: %d positions but %d charges", len(pos), len(q))
	}
	root := s.hier.Root
	hs := root.Side / 2
	for _, p := range pos {
		// Negated form so NaN coordinates (for which every comparison is
		// false) are rejected along with out-of-domain points.
		ok := math.Abs(p.X-root.Center.X) <= hs && math.Abs(p.Y-root.Center.Y) <= hs
		if !ok {
			return nil, fmt.Errorf("core2: particle %v outside domain", p)
		}
	}
	depth := s.cfg.Depth
	k := s.cfg.K
	n := s.hier.GridSize(depth)
	s.rec.SetShape(len(pos), depth, k)

	// Per-solve state the phases close over: the counting-sort permutation,
	// the per-level far/monopole/local storage, and the output. Allocation
	// is untimed, as before the phase-runner refactor.
	nb := n * n
	start := make([]int, nb+1)
	boxOf := make([]int, len(pos))
	perm := make([]int, len(pos))
	boxParticles := func(b int) []int { return perm[start[b]:start[b+1]] }

	// Far-field storage: residual values and monopoles per level.
	far := make([][]float64, depth+1)
	mono := make([][]float64, depth+1)
	loc := make([][]float64, depth+1)
	for l := 2; l <= depth; l++ {
		gl := s.hier.GridSize(l)
		far[l] = make([]float64, gl*gl*k)
		mono[l] = make([]float64, gl*gl)
		loc[l] = make([]float64, gl*gl*k)
	}
	phi := make([]float64, len(pos))
	a := s.cfg.RadiusRatio * s.hier.BoxSide(depth)

	phases := []pipeline.Phase{
		// Partition (counting sort to leaf boxes).
		{Name: metrics.PhaseSort, Site: FaultSiteSort, Run: func(context.Context) error {
			for i, p := range pos {
				b := s.hier.LeafOf(p).Index(n)
				boxOf[i] = b
				start[b+1]++
			}
			for b := 0; b < nb; b++ {
				start[b+1] += start[b]
			}
			fill := make([]int, nb)
			for i := range pos {
				b := boxOf[i]
				perm[start[b]+fill[b]] = i
				fill[b]++
			}
			return nil
		}},
		// Step 1: leaf outer representations.
		{Name: metrics.PhaseLeafOuter, Site: FaultSiteLeafOuter,
			Slice: func() []float64 { return far[depth] },
			Run: func(ctx context.Context) error {
				err := blas.ParallelCtx(ctx, nb, func(b int) {
					idx := boxParticles(b)
					if len(idx) == 0 {
						return
					}
					c := geom.Coord2FromIndex(b, n)
					center := s.hier.Box(depth, c).Center
					var totQ float64
					for _, j := range idx {
						totQ += q[j]
					}
					mono[depth][b] = totQ
					g := far[depth][b*k : (b+1)*k]
					for i, si := range s.rule.Points {
						p := center.Add(si.Scale(a))
						var v float64
						for _, j := range idx {
							v -= q[j] * math.Log(p.Dist(pos[j]))
						}
						g[i] = v + totQ*math.Log(a)
					}
				})
				s.rec.AddFlops(metrics.PhaseLeafOuter, int64(len(pos))*int64(k)*direct.FlopsPerPair)
				return err
			}},
		// Step 2: upward pass. Matrices are in child-side units, so they are
		// level-independent, but the log terms reference the child-level
		// radius: rescaling a by 2 per level changes h by Q ln 2 ... the
		// matrices already absorb this because h values are built against the
		// level's own radius and the kernels are scale-free in a/r. The Q ln a
		// bookkeeping is handled by the translation vectors (built in units of
		// the child side, adding Q ln(aP/a_child-units) consistently).
		{Name: metrics.PhaseT1, Site: FaultSiteT1,
			Slice: func() []float64 { return far[2] },
			Run: func(ctx context.Context) error {
				for l := depth - 1; l >= 2; l-- {
					np := s.hier.GridSize(l)
					nc := s.hier.GridSize(l + 1)
					if err := blas.ParallelCtx(ctx, np*np, func(pb int) {
						pc := geom.Coord2FromIndex(pb, np)
						dst := far[l][pb*k : (pb+1)*k]
						for qd := 0; qd < 4; qd++ {
							cb := pc.Child(qd).Index(nc)
							s.t1[qd].apply(mono[l+1][cb], far[l+1][cb*k:(cb+1)*k], dst)
							mono[l][pb] += mono[l+1][cb]
						}
					}); err != nil {
						return err
					}
					s.rec.AddFlops(metrics.PhaseT1, 4*int64(np*np)*translationFlops(k))
				}
				return nil
			}},
	}

	// Step 3: downward pass, one T3/T2 phase pair per level.
	for l := 2; l <= depth; l++ {
		gl := s.hier.GridSize(l)
		gp := s.hier.GridSize(l - 1)
		if l > 2 {
			phases = append(phases, pipeline.Phase{
				Name: metrics.PhaseT3, Site: FaultSiteT3,
				Slice: func() []float64 { return loc[l] },
				Run: func(ctx context.Context) error {
					err := blas.ParallelCtx(ctx, gl*gl, func(cb int) {
						cc := geom.Coord2FromIndex(cb, gl)
						pb := cc.Parent().Index(gp)
						blas.Dgemv(s.t3[cc.Quadrant()], loc[l-1][pb*k:(pb+1)*k], loc[l][cb*k:(cb+1)*k])
					})
					s.rec.AddFlops(metrics.PhaseT3, int64(gl*gl)*blas.DgemvFlops(k, k))
					return err
				}})
		}
		// The T2 log vectors are built in box-side units; the absolute
		// distance is (units * side), so each source contributes an extra
		// -Q ln(side) to every inner value at this level.
		lnSide := math.Log(s.hier.BoxSide(l))
		useSuper := s.cfg.Supernodes && l > 2
		phases = append(phases, pipeline.Phase{
			Name: metrics.PhaseT2, Site: FaultSiteT2,
			Slice: func() []float64 { return loc[l] },
			Run: func(ctx context.Context) error {
				var t2Count atomic.Int64
				err := blas.ParallelCtx(ctx, gl*gl, func(cb int) {
					cc := geom.Coord2FromIndex(cb, gl)
					qd := cc.Quadrant()
					dst := loc[l][cb*k : (cb+1)*k]
					var msum float64
					var applied int64
					if useSuper {
						pc := cc.Parent()
						for _, tt := range s.supers[qd].ParentOffsets {
							sp := pc.Add(tt)
							if !sp.In(gp) {
								continue
							}
							pb := sp.Index(gp)
							s.t2Super[qd][tt].apply(mono[l-1][pb], far[l-1][pb*k:(pb+1)*k], dst)
							msum += mono[l-1][pb]
							applied++
						}
						for _, o := range s.supers[qd].ChildOffsets {
							sc := cc.Add(o)
							if !sc.In(gl) {
								continue
							}
							sb := sc.Index(gl)
							s.t2[s.t2Index(o)].apply(mono[l][sb], far[l][sb*k:(sb+1)*k], dst)
							msum += mono[l][sb]
							applied++
						}
					} else {
						for _, o := range s.interactive[qd] {
							sc := cc.Add(o)
							if !sc.In(gl) {
								continue
							}
							sb := sc.Index(gl)
							s.t2[s.t2Index(o)].apply(mono[l][sb], far[l][sb*k:(sb+1)*k], dst)
							msum += mono[l][sb]
							applied++
						}
					}
					if msum != 0 {
						for i := range dst {
							dst[i] -= msum * lnSide
						}
					}
					t2Count.Add(applied)
				})
				nT2 := t2Count.Load()
				s.rec.AddT2(nT2)
				s.rec.AddFlops(metrics.PhaseT2, nT2*translationFlops(k))
				return err
			}})
	}

	phases = append(phases,
		// Step 4: evaluate local fields at the particles.
		pipeline.Phase{Name: metrics.PhaseEvalLocal, Site: FaultSiteEval,
			Slice: func() []float64 { return phi },
			Run: func(ctx context.Context) error {
				err := blas.ParallelCtx(ctx, nb, func(b int) {
					idx := boxParticles(b)
					if len(idx) == 0 {
						return
					}
					c := geom.Coord2FromIndex(b, n)
					center := s.hier.Box(depth, c).Center
					g := loc[depth][b*k : (b+1)*k]
					for _, j := range idx {
						d := pos[j].Sub(center)
						r := d.Norm()
						var v float64
						if r == 0 {
							for i := range s.rule.Points {
								v += s.rule.W[i] * g[i]
							}
						} else {
							th := d.Angle()
							for i := range s.rule.Points {
								v += s.rule.W[i] * g[i] * innerKernel2(s.cfg.M, a, r, th-s.rule.Angles[i])
							}
						}
						phi[j] = v
					}
				})
				// Each (particle, circle point) evaluation runs M Fourier
				// terms of the interior kernel at ~4 flops per term plus the
				// weighted accumulate.
				s.rec.AddFlops(metrics.PhaseEvalLocal, int64(len(pos))*int64(k)*int64(4*s.cfg.M+3))
				return err
			}},
		// Step 5: near field, one-sided plus intra-box.
		pipeline.Phase{Name: metrics.PhaseNear, Site: FaultSiteNear,
			Slice: func() []float64 { return phi },
			Run: func(ctx context.Context) error {
				var nearPairs atomic.Int64
				err := blas.ParallelCtx(ctx, nb, func(b int) {
					idx := boxParticles(b)
					if len(idx) == 0 {
						return
					}
					c := geom.Coord2FromIndex(b, n)
					var local int64
					for _, o := range s.nearOff {
						sc := c.Add(o)
						if !sc.In(n) {
							continue
						}
						src := boxParticles(sc.Index(n))
						kernels.LogAccumulate(pos, q, phi, idx, src)
						local += int64(len(idx)) * int64(len(src))
					}
					kernels.LogWithin(pos, q, phi, idx)
					local += int64(len(idx)) * int64(len(idx)-1)
					nearPairs.Add(local)
				})
				np := nearPairs.Load()
				s.rec.AddNearPairs(np)
				s.rec.AddFlops(metrics.PhaseNear, np*direct.FlopsPerPair)
				return err
			}},
	)

	if err := pipeline.Run(ctx, &s.rec, "core2", phases); err != nil {
		return nil, err
	}
	return phi, nil
}

// DirectPotentials2 is the 2-D direct reference: phi_i = -sum q_j ln r_ij.
func DirectPotentials2(pos []geom.Vec2, q []float64) []float64 {
	phi := make([]float64, len(pos))
	blas.Parallel(len(pos), func(i int) {
		var v float64
		for j := range pos {
			if i == j {
				continue
			}
			// Skip coincident pairs, matching the solver's self-exclusion
			// convention for duplicated positions.
			if r := pos[i].Dist(pos[j]); r > 0 {
				v -= q[j] * math.Log(r)
			}
		}
		phi[i] = v
	})
	return phi
}
