package testutil

import (
	"math/rand"
	"testing"

	"nbody/internal/bh"
	"nbody/internal/core"
	"nbody/internal/core2"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
)

// The differential suite: every solver in the repository on the same
// particle systems, checked pairwise against the O(N^2) direct sum (the
// exact reference) and against each other. The bounds are worst-case
// relative errors against the mean field, with headroom over the measured
// values (documented inline) so genuine regressions trip them while seed
// jitter does not.
//
// Measured on the seed systems (N=2000/1500, uniform and clustered):
//   anderson D=5  (K=12):  worst ~1.3e-2, rms ~3.6e-3  (paper: ~4 digits rms)
//   anderson D=13 (K=98):  worst ~2.2e-4, rms ~6.4e-5  (paper: ~7 digits rms;
//     the worst case sits on particles adjacent to a sphere boundary)
//   barnes-hut theta=0.6 quadrupole: worst ~1.0e-1, rms ~2.4e-2
//   dpfmm vs core (same arithmetic, different order): worst ~4e-15
//   core2 K=16 depth 3 vs 2-D direct sum: worst ~1.7e-4
const (
	boundFastWorst  = 5e-2 // D=5 sphere approximation, worst case
	boundAccWorst   = 1e-3 // degree-13 product rule, worst case
	boundBHWorst    = 3e-1 // theta=0.6 opens wide cells; worst case is loose
	boundDPvsCore   = 1e-9 // identical method, different summation order
	boundCore2Worst = 1e-3 // 2-D K=16 trapezoid rule at depth 3
)

func anderson(t *testing.T, degree, depth int, pos []geom.Vec3, q []float64) []float64 {
	t.Helper()
	s, err := core.NewSolver(UnitBox(), core.Config{Degree: degree, Depth: depth})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	return phi
}

func TestDifferentialUniform(t *testing.T) {
	pos, q := RandomSystem(2000, 101)
	want := direct.PotentialsParallel(pos, q)

	CheckClose(t, "anderson-D5 vs direct", anderson(t, 5, 3, pos, q), want, boundFastWorst)
	CheckClose(t, "anderson-D13 vs direct", anderson(t, 13, 3, pos, q), want, boundAccWorst)

	tr, err := bh.Build(UnitBox(), pos, q, bh.Config{Theta: 0.6, Quadrupole: true})
	if err != nil {
		t.Fatal(err)
	}
	phiBH, _ := tr.Potentials(bh.Config{Theta: 0.6, Quadrupole: true})
	CheckClose(t, "barnes-hut vs direct", phiBH, want, boundBHWorst)
}

func TestDifferentialClustered(t *testing.T) {
	pos, q := ClusteredSystem(1500, 102)
	want := direct.PotentialsParallel(pos, q)
	CheckClose(t, "anderson-D5 vs direct (clustered)", anderson(t, 5, 3, pos, q), want, boundFastWorst)
	CheckClose(t, "anderson-D13 vs direct (clustered)", anderson(t, 13, 3, pos, q), want, boundAccWorst)
}

// TestDifferentialDataParallel checks the simulated-machine implementation
// against the shared-memory reference box for box: same method, same
// translation matrices, so the two must agree to summation-order noise —
// for every ghost strategy and both storage layouts.
func TestDifferentialDataParallel(t *testing.T) {
	pos, q := RandomSystem(1500, 103)
	cfg := core.Config{Degree: 5, Depth: 3}
	ref := anderson(t, 5, 3, pos, q)

	m, err := dp.NewMachine(8, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []dpfmm.GhostStrategy{
		dpfmm.DirectUnaliased, dpfmm.LinearizedUnaliased,
		dpfmm.DirectAliased, dpfmm.LinearizedAliased,
	} {
		for _, mg := range []bool{false, true} {
			s, err := dpfmm.NewSolver(m, UnitBox(), cfg, strat)
			if err != nil {
				t.Fatal(err)
			}
			s.MultigridStorage = mg
			phi, err := s.Potentials(pos, q)
			if err != nil {
				t.Fatal(err)
			}
			name := "dpfmm-" + strat.String()
			if mg {
				name += "-multigrid"
			}
			CheckClose(t, name+" vs anderson", phi, ref, boundDPvsCore)
		}
	}
}

// TestDifferential2D checks the 2-D solver against the 2-D direct sum.
func TestDifferential2D(t *testing.T) {
	const n = 1500
	rng := rand.New(rand.NewSource(104))
	pos := make([]geom.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64() - 0.5
	}
	s, err := core2.NewSolver(geom.Box2{Center: geom.Vec2{X: 0.5, Y: 0.5}, Side: 1.001},
		core2.Config{K: 16, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	CheckClose(t, "anderson2d vs direct2d", phi, core2.DirectPotentials2(pos, q), boundCore2Worst)
}
