//go:build !race

package testutil

// RaceEnabled reports whether the race detector is compiled in; allocation
// assertions skip themselves under it (instrumentation allocates).
const RaceEnabled = false
