// Package testutil provides the shared fixtures of the differential test
// suite: deterministic random particle systems and the error metrics the
// paper reports accuracy in (error relative to the mean field, Section 4),
// so every solver pair is compared on identical inputs with identical
// yardsticks.
package testutil

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/geom"
)

// UnitBox is the domain every differential fixture lives in.
func UnitBox() geom.Box3 {
	return geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
}

// RandomSystem returns n uniformly distributed particles in the unit box
// with charges in [-0.5, 0.5). The same seed always yields the same
// system, so failures reproduce.
func RandomSystem(n int, seed int64) ([]geom.Vec3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64() - 0.5
	}
	return pos, q
}

// ClusteredSystem returns n particles in a few Gaussian blobs — the
// non-uniform distribution that stresses box-population imbalance (empty
// boxes, crowded boxes) in the partitioning and near-field paths.
func ClusteredSystem(n int, seed int64) ([]geom.Vec3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Vec3{
		{X: 0.25, Y: 0.25, Z: 0.3}, {X: 0.7, Y: 0.6, Z: 0.75}, {X: 0.5, Y: 0.85, Z: 0.2},
	}
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	clamp := func(v float64) float64 { return math.Min(0.999, math.Max(0.001, v)) }
	for i := range pos {
		c := centers[rng.Intn(len(centers))]
		pos[i] = geom.Vec3{
			X: clamp(c.X + 0.08*rng.NormFloat64()),
			Y: clamp(c.Y + 0.08*rng.NormFloat64()),
			Z: clamp(c.Z + 0.08*rng.NormFloat64()),
		}
		q[i] = rng.Float64() - 0.5
	}
	return pos, q
}

// ErrStats is the error of one potential vector against a reference, in
// the paper's normalization: differences are measured against the mean
// magnitude of the reference field, not element-wise (individual phi can
// pass through zero).
type ErrStats struct {
	RMS   float64 // sqrt(mean squared error) / mean |want|
	Worst float64 // max |got-want| / mean |want|
}

// RelError computes the error of got against want.
func RelError(got, want []float64) ErrStats {
	if len(got) != len(want) || len(got) == 0 {
		return ErrStats{RMS: math.Inf(1), Worst: math.Inf(1)}
	}
	var sq, worst, mean float64
	for i := range got {
		d := math.Abs(got[i] - want[i])
		sq += d * d
		if d > worst {
			worst = d
		}
		mean += math.Abs(want[i])
	}
	mean /= float64(len(got))
	if mean == 0 {
		return ErrStats{RMS: math.Inf(1), Worst: math.Inf(1)}
	}
	return ErrStats{RMS: math.Sqrt(sq/float64(len(got))) / mean, Worst: worst / mean}
}

// CheckClose fails the test if got deviates from want by more than the
// given worst-case relative bound, logging the measured error either way
// so bound drift is visible in -v runs.
func CheckClose(t *testing.T, name string, got, want []float64, worstBound float64) {
	t.Helper()
	e := RelError(got, want)
	t.Logf("%s: rms=%.3e worst=%.3e (bound %.1e)", name, e.RMS, e.Worst, worstBound)
	if !(e.Worst <= worstBound) {
		t.Errorf("%s: worst relative error %.3e exceeds bound %.1e (rms %.3e)",
			name, e.Worst, worstBound, e.RMS)
	}
}
