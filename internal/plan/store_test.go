package plan

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// storeFixture builds a planner with a small tuned table covering every
// field the wire format carries: both flag bits, a non-default dims, all
// three distribution buckets, and two accuracy tiers.
func storeFixture(t *testing.T) *Planner {
	t.Helper()
	p := NewPlanner(6)
	observe := func(shape ShapeKey, depth int, sup, sim bool, d time.Duration) {
		key := Key{Shape: shape, Sim: sim, Plan: Plan{Depth: depth, K: AccuracyK(shape.Accuracy), Supernodes: sup}}
		p.Observe(key, d)
		p.Observe(key, d)
	}
	observe(ShapeKey{N: 1024, Dist: DistUniform, Accuracy: "fast"}, 3, false, false, 4*time.Millisecond)
	observe(ShapeKey{N: 8192, Dist: DistClustered, Accuracy: "accurate"}, 2, true, true, 90*time.Millisecond)
	observe(ShapeKey{N: 4096, Dist: DistPeaked, Accuracy: "balanced", Dims: 2}, 4, false, false, 12*time.Millisecond)
	return p
}

func encodeStore(t *testing.T, p *Planner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refreshCRC recomputes the trailing checksum after a test mutated the
// payload, so the mutation reaches field validation instead of being caught
// by the CRC.
func refreshCRC(b []byte) {
	payload := b[storeHeaderLen : len(b)-4]
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(payload, storeCRCTable))
}

func TestStoreRoundTrip(t *testing.T) {
	p := storeFixture(t)
	raw := encodeStore(t, p)

	q := NewPlanner(6)
	n, err := q.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Decode loaded %d entries, want 3", n)
	}
	for _, c := range []struct {
		shape ShapeKey
		req   Request
		depth int
	}{
		{ShapeKey{N: 1024, Dist: DistUniform, Accuracy: "fast"}, Request{}, 3},
		{ShapeKey{N: 8192, Dist: DistClustered, Accuracy: "accurate"}, Request{Supernodes: true, Sim: true}, 2},
		{ShapeKey{N: 4096, Dist: DistPeaked, Accuracy: "balanced", Dims: 2}, Request{}, 4},
	} {
		got, ok := q.Tuned(c.shape, c.req)
		want, _ := p.Tuned(c.shape, c.req)
		if !ok || got != want || got.Depth != c.depth {
			t.Errorf("%v: loaded %+v ok=%v, want %+v depth %d", c.shape, got, ok, want, c.depth)
		}
	}

	// Deterministic encoding: equal tables produce bitwise-equal stores.
	if again := encodeStore(t, q); !bytes.Equal(raw, again) {
		t.Error("re-encoding a loaded table changed the bytes")
	}
}

func TestStoreEmptyRoundTrip(t *testing.T) {
	raw := encodeStore(t, NewPlanner(6))
	if want := storeHeaderLen + 8 + 4; len(raw) != want {
		t.Fatalf("empty store is %d bytes, want %d", len(raw), want)
	}
	if n, err := NewPlanner(6).Decode(bytes.NewReader(raw)); n != 0 || err != nil {
		t.Fatalf("empty Decode = (%d, %v)", n, err)
	}
}

// TestStoreCorruption drives every structural-validation path with a
// mutated copy of a valid store. Every case must fail with ErrCorruptStore
// and leave the planner's tuned table untouched (all-or-nothing loads).
func TestStoreCorruption(t *testing.T) {
	le := binary.LittleEndian
	valid := encodeStore(t, storeFixture(t))
	entry := func(b []byte, i int) []byte { return b[storeHeaderLen+8+i*storeEntryLen:] }

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty input", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:storeHeaderLen-3] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0x40; return b }},
		{"unsupported version", func(b []byte) []byte { le.PutUint32(b[8:], storeVersion+1); return b }},
		{"payload length below minimum", func(b []byte) []byte { le.PutUint64(b[12:], 7); return b }},
		{"payload length misaligned", func(b []byte) []byte { le.PutUint64(b[12:], 8+storeEntryLen-1); return b }},
		{"entry count over limit", func(b []byte) []byte {
			le.PutUint64(b[12:], 8+storeEntryLen*uint64(storeMaxEntries+1))
			return b
		}},
		{"truncated payload", func(b []byte) []byte { return b[:storeHeaderLen+12] }},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-2] }},
		{"payload bitflip", func(b []byte) []byte { b[storeHeaderLen+9] ^= 0x01; return b }},
		{"checksum bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }},
		{"count inconsistent with length", func(b []byte) []byte {
			le.PutUint64(b[storeHeaderLen:], 2) // 3 entries on the wire
			refreshCRC(b)
			return b
		}},
		{"zero n", func(b []byte) []byte { le.PutUint64(entry(b, 0), 0); refreshCRC(b); return b }},
		{"oversized n", func(b []byte) []byte { le.PutUint64(entry(b, 0), math.MaxInt32+1); refreshCRC(b); return b }},
		{"implausible dims", func(b []byte) []byte { le.PutUint32(entry(b, 0)[8:], 5); refreshCRC(b); return b }},
		{"zero k", func(b []byte) []byte { le.PutUint32(entry(b, 1)[12:], 0); refreshCRC(b); return b }},
		{"oversized k", func(b []byte) []byte { le.PutUint32(entry(b, 1)[12:], 1<<16+1); refreshCRC(b); return b }},
		{"depth below hierarchy minimum", func(b []byte) []byte { le.PutUint32(entry(b, 0)[16:], 1); refreshCRC(b); return b }},
		{"depth over limit", func(b []byte) []byte { le.PutUint32(entry(b, 0)[16:], 65); refreshCRC(b); return b }},
		{"unknown distribution code", func(b []byte) []byte { le.PutUint32(entry(b, 2)[20:], 9); refreshCRC(b); return b }},
		{"unknown flags", func(b []byte) []byte { le.PutUint32(entry(b, 0)[24:], 0x10); refreshCRC(b); return b }},
		{"negative seconds", func(b []byte) []byte {
			le.PutUint64(entry(b, 0)[32:], math.Float64bits(-1))
			refreshCRC(b)
			return b
		}},
		{"NaN seconds", func(b []byte) []byte {
			le.PutUint64(entry(b, 0)[32:], math.Float64bits(math.NaN()))
			refreshCRC(b)
			return b
		}},
		{"infinite seconds", func(b []byte) []byte {
			le.PutUint64(entry(b, 0)[32:], math.Float64bits(math.Inf(1)))
			refreshCRC(b)
			return b
		}},
		{"zero observations", func(b []byte) []byte { le.PutUint64(entry(b, 1)[40:], 0); refreshCRC(b); return b }},
		{"oversized observations", func(b []byte) []byte {
			le.PutUint64(entry(b, 1)[40:], math.MaxInt64+1)
			refreshCRC(b)
			return b
		}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			raw := c.mutate(append([]byte(nil), valid...))
			q := NewPlanner(6)
			n, err := q.Decode(bytes.NewReader(raw))
			if !errors.Is(err, ErrCorruptStore) {
				t.Fatalf("Decode = (%d, %v), want ErrCorruptStore", n, err)
			}
			if _, ok := q.Tuned(ShapeKey{N: 1024, Dist: DistUniform, Accuracy: "fast"}, Request{}); ok {
				t.Fatal("corrupt store partially loaded into the planner")
			}
		})
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.nbp")

	// Missing file: a cold start, not an error.
	q := NewPlanner(6)
	if n, err := q.Load(path); n != 0 || err != nil {
		t.Fatalf("Load(missing) = (%d, %v), want (0, nil)", n, err)
	}
	if c := q.Counters(); c.StoreLoads != 0 {
		t.Fatalf("missing-file load counted as a store load: %+v", c)
	}

	p := storeFixture(t)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	if c := p.Counters(); c.StoreSaves != 1 {
		t.Fatalf("StoreSaves = %d, want 1", c.StoreSaves)
	}
	// No temp droppings from the atomic write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "plans.nbp" {
		t.Fatalf("store directory holds %v, want only plans.nbp", ents)
	}

	if n, err := q.Load(path); n != 3 || err != nil {
		t.Fatalf("Load = (%d, %v), want (3, nil)", n, err)
	}
	got, ok := q.Tuned(ShapeKey{N: 1024, Dist: DistUniform, Accuracy: "fast"}, Request{})
	if !ok || got.Depth != 3 {
		t.Fatalf("loaded entry = %+v ok=%v", got, ok)
	}

	// A corrupt file on disk is a loud error naming the path.
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanner(6).Load(path); !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("Load(corrupt) = %v, want ErrCorruptStore", err)
	}
}

// FuzzStoreDecode feeds arbitrary bytes into the store reader: it must
// never panic, never partially load, and accept only inputs it could have
// written. Accepted inputs must re-encode successfully.
func FuzzStoreDecode(f *testing.F) {
	var empty, full bytes.Buffer
	if err := NewPlanner(6).Encode(&empty); err != nil {
		f.Fatal(err)
	}
	p := NewPlanner(6)
	key := Key{Shape: ShapeKey{N: 1024, Dist: DistUniform, Accuracy: "fast"}, Plan: Plan{Depth: 3, K: 12}}
	p.Observe(key, 4*time.Millisecond)
	p.Observe(key, 4*time.Millisecond)
	if err := p.Encode(&full); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add(full.Bytes())
	f.Add([]byte{})
	f.Add([]byte("NBODYPLN"))
	flipped := append([]byte(nil), full.Bytes()...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	truncated := append([]byte(nil), full.Bytes()...)
	f.Add(truncated[:len(truncated)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		q := NewPlanner(6)
		n, err := q.Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptStore) {
				t.Fatalf("Decode error %v does not wrap ErrCorruptStore", err)
			}
			return
		}
		if n < 0 {
			t.Fatalf("Decode reported %d entries", n)
		}
		var buf bytes.Buffer
		if err := q.Encode(&buf); err != nil {
			t.Fatalf("re-encoding an accepted store failed: %v", err)
		}
	})
}
