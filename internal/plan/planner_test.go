package plan

import (
	"math/rand"
	"testing"
	"time"

	"nbody/internal/core"
	"nbody/internal/geom"
)

// TestAnalyticDepthMatchesOptimalDepth pins the compatibility contract the
// serve refactor leans on: for the fast preset (K = 12) the cost-model
// argmin reproduces the classic occupancy heuristic core.OptimalDepth(n, 32)
// across the admissible request range, so replacing the heuristic with the
// planner changes no existing auto-depth resolution. At higher K the model
// is allowed (and expected) to prefer a shallower hierarchy.
func TestAnalyticDepthMatchesOptimalDepth(t *testing.T) {
	p := NewPlanner(0)
	for _, n := range []int{1, 64, 512, 2048, 8192, 32768, 131072, 1 << 20} {
		want := core.OptimalDepth(n, 32)
		if got := p.AnalyticDepth(n, 12, false, DefaultMaxDepth); got != want {
			t.Errorf("AnalyticDepth(n=%d, k=12) = %d, OptimalDepth = %d", n, got, want)
		}
	}
	// K-awareness: the 98-point accurate preset must not be deeper than the
	// 12-point fast preset anywhere (its K^2 translations grow with the box
	// count; the near field does not).
	for _, n := range []int{2048, 32768, 131072} {
		fast := p.AnalyticDepth(n, 12, false, DefaultMaxDepth)
		accurate := p.AnalyticDepth(n, 98, false, DefaultMaxDepth)
		if accurate > fast {
			t.Errorf("n=%d: accurate depth %d deeper than fast depth %d", n, accurate, fast)
		}
	}
}

// TestResolveProvenance pins the three resolution sources and their
// counters: a pinned depth is honored verbatim, an untuned shape falls back
// to the analytic model, and a tuned shape answers from the table.
func TestResolveProvenance(t *testing.T) {
	p := NewPlanner(6)
	shape := ShapeKey{N: 32768, Dist: DistUniform, Accuracy: "fast"}

	pl, prov := p.Resolve(shape, Request{Depth: 5})
	if prov != ProvenancePinned || pl.Depth != 5 {
		t.Fatalf("pinned resolve: got depth %d provenance %s", pl.Depth, prov)
	}
	pl, prov = p.Resolve(shape, Request{})
	if prov != ProvenanceAnalytic {
		t.Fatalf("cold auto resolve: provenance %s, want analytic", prov)
	}
	if want := core.OptimalDepth(32768, 32); pl.Depth != want {
		t.Fatalf("cold auto resolve: depth %d, want %d", pl.Depth, want)
	}
	if pl.K != 12 {
		t.Fatalf("fast preset resolved K=%d, want 12", pl.K)
	}

	// Plant a tuned entry via two observations of a different depth.
	key := Key{Shape: shape, Plan: Plan{Depth: 2, K: 12}}
	p.Observe(key, 5*time.Millisecond)
	p.Observe(key, 5*time.Millisecond)
	pl, prov = p.Resolve(shape, Request{})
	if prov != ProvenanceTuned || pl.Depth != 2 {
		t.Fatalf("tuned resolve: got depth %d provenance %s", pl.Depth, prov)
	}
	// NoTuned must ignore the table.
	if _, prov = p.Resolve(shape, Request{NoTuned: true}); prov != ProvenanceAnalytic {
		t.Fatalf("NoTuned resolve: provenance %s, want analytic", prov)
	}

	c := p.Counters()
	if c.PlansPinned != 1 || c.PlansAnalytic != 2 || c.PlansTuned != 1 || c.TuneHits != 1 || c.TuneMisses != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestObserveRefinement pins the online tuning loop: measured observations
// claim the tuned entry once backed by enough evidence, a measurably faster
// depth takes it over, and a marginally faster one does not (hysteresis).
func TestObserveRefinement(t *testing.T) {
	p := NewPlanner(6)
	shape := ShapeKey{N: 8192, Dist: DistUniform, Accuracy: "fast"}
	keyAt := func(depth int) Key {
		return Key{Shape: shape, Plan: Plan{Depth: depth, K: 12}}
	}

	// One observation is not evidence.
	p.Observe(keyAt(3), 10*time.Millisecond)
	if _, ok := p.Tuned(shape, Request{}); ok {
		t.Fatal("tuned after a single observation")
	}
	p.Observe(keyAt(3), 10*time.Millisecond)
	tp, ok := p.Tuned(shape, Request{})
	if !ok || tp.Depth != 3 {
		t.Fatalf("tuned = %+v ok=%v, want depth 3", tp, ok)
	}

	// A 2% faster challenger stays behind the hysteresis margin.
	p.Observe(keyAt(4), 9800*time.Microsecond)
	p.Observe(keyAt(4), 9800*time.Microsecond)
	if tp, _ = p.Tuned(shape, Request{}); tp.Depth != 3 {
		t.Fatalf("marginal challenger re-tuned the shape to depth %d", tp.Depth)
	}
	// A 2x faster challenger wins.
	p.Observe(keyAt(2), 5*time.Millisecond)
	p.Observe(keyAt(2), 5*time.Millisecond)
	if tp, _ = p.Tuned(shape, Request{}); tp.Depth != 2 {
		t.Fatalf("faster challenger did not re-tune: depth %d", tp.Depth)
	}

	// Garbage measurements are dropped.
	p.Observe(keyAt(2), -time.Second)
	p.Observe(keyAt(2), 0)
	p.Observe(Key{Shape: ShapeKey{N: -1}, Plan: Plan{Depth: 3, K: 12}}, time.Millisecond)
	p.Observe(Key{Shape: shape, Plan: Plan{Depth: 0, K: 12}}, time.Millisecond)
	if tp, _ = p.Tuned(shape, Request{}); tp.Depth != 2 {
		t.Fatalf("garbage observations changed the tuned entry: %+v", tp)
	}
}

// TestTuneSearchAndWarmStart pins the explicit search and the warm-start
// contract: a cold Tune benches every candidate depth in the window around
// the analytic argmin and records the winner; a second Tune of the same
// shape (and a Tune on a fresh planner that loaded the saved store) answers
// from the table without calling bench at all — the "warm starts skip
// search entirely" property the CI smoke step asserts via these same
// counters.
func TestTuneSearchAndWarmStart(t *testing.T) {
	p := NewPlanner(5)
	// Analytic depth for N=4096 at K=12 is 2, so the ±2 search window
	// clamped to [2, 5] is exactly 2..4.
	shape := ShapeKey{N: 4096, Dist: DistUniform, Accuracy: "fast"}
	costs := map[int]time.Duration{2: 40 * time.Millisecond, 3: 10 * time.Millisecond, 4: 25 * time.Millisecond}
	var benched []int
	bench := func(pl Plan) (time.Duration, error) {
		benched = append(benched, pl.Depth)
		return costs[pl.Depth], nil
	}

	pl, trials, prov, err := p.Tune(shape, Request{}, bench)
	if err != nil {
		t.Fatal(err)
	}
	if prov != ProvenanceTuned || pl.Depth != 3 {
		t.Fatalf("cold tune: depth %d provenance %s, want 3/tuned", pl.Depth, prov)
	}
	if len(benched) != 3 || len(trials) != 3 {
		t.Fatalf("cold tune benched %v (trials %d), want all of 2..4", benched, len(trials))
	}
	if c := p.Counters(); c.Searches != 1 || c.TuneMisses != 1 {
		t.Fatalf("cold counters = %+v", c)
	}

	benched = nil
	pl, trials, prov, err = p.Tune(shape, Request{}, bench)
	if err != nil || prov != ProvenanceTuned || pl.Depth != 3 {
		t.Fatalf("warm tune: depth %d provenance %s err %v", pl.Depth, prov, err)
	}
	if len(benched) != 0 || trials != nil {
		t.Fatalf("warm tune ran a search: benched %v", benched)
	}
	if c := p.Counters(); c.Searches != 1 || c.TuneHits != 1 {
		t.Fatalf("warm counters = %+v", c)
	}

	// Persist, load into a fresh planner, and tune again: still no search.
	path := t.TempDir() + "/plans.nbp"
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	q := NewPlanner(5)
	n, err := q.Load(path)
	if err != nil || n != 1 {
		t.Fatalf("Load = (%d, %v), want (1, nil)", n, err)
	}
	benched = nil
	pl, _, prov, err = q.Tune(shape, Request{}, bench)
	if err != nil || prov != ProvenanceTuned || pl.Depth != 3 || len(benched) != 0 {
		t.Fatalf("store-warmed tune: depth %d provenance %s benched %v err %v", pl.Depth, prov, benched, err)
	}
	if c := q.Counters(); c.Searches != 0 || c.TuneHits != 1 || c.StoreLoads != 1 {
		t.Fatalf("store-warmed counters = %+v", c)
	}

	// A pinned Tune never searches either.
	benched = nil
	pl, _, prov, err = q.Tune(shape, Request{Depth: 4}, bench)
	if err != nil || prov != ProvenancePinned || pl.Depth != 4 || len(benched) != 0 {
		t.Fatalf("pinned tune: depth %d provenance %s benched %v err %v", pl.Depth, prov, benched, err)
	}
}

// TestDepthForPrefersTuned pins the brownout fix (satellite: stale-depth
// pinning): DepthFor answers with the tuned depth when one exists, the
// analytic depth otherwise, and never bumps resolution counters.
func TestDepthForPrefersTuned(t *testing.T) {
	p := NewPlanner(6)
	shape := ShapeKey{N: 16384, Dist: DistUniform, Accuracy: "fast"}
	if got, want := p.DepthFor(shape, false, false), core.OptimalDepth(16384, 32); got != want {
		t.Fatalf("cold DepthFor = %d, want analytic %d", got, want)
	}
	key := Key{Shape: shape, Plan: Plan{Depth: 2, K: 12}}
	p.Observe(key, time.Millisecond)
	p.Observe(key, time.Millisecond)
	if got := p.DepthFor(shape, false, false); got != 2 {
		t.Fatalf("tuned DepthFor = %d, want 2", got)
	}
	if c := p.Counters(); c.PlansPinned+c.PlansAnalytic+c.PlansTuned+c.TuneHits+c.TuneMisses != 0 {
		t.Fatalf("DepthFor bumped resolution counters: %+v", c)
	}
}

// TestFingerprint pins the distribution fingerprint's buckets and its
// determinism: uniform positions read uniform, a tight Gaussian ball reads
// peaked, degenerate (coincident) positions read peaked rather than
// dividing by zero, and equal inputs always map to equal buckets.
func TestFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	uniform := make([]geom.Vec3, 8192)
	for i := range uniform {
		uniform[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	if got := Fingerprint(uniform); got != DistUniform {
		t.Errorf("uniform positions fingerprint %q", got)
	}

	ball := make([]geom.Vec3, 8192)
	for i := range ball {
		ball[i] = geom.Vec3{
			X: 0.5 + 0.02*rng.NormFloat64(),
			Y: 0.5 + 0.02*rng.NormFloat64(),
			Z: 0.5 + 0.02*rng.NormFloat64(),
		}
	}
	if got := Fingerprint(ball); got != DistPeaked {
		t.Errorf("tight Gaussian ball fingerprint %q", got)
	}

	same := make([]geom.Vec3, 128)
	for i := range same {
		same[i] = geom.Vec3{X: 0.25, Y: 0.25, Z: 0.25}
	}
	if got := Fingerprint(same); got != DistPeaked {
		t.Errorf("coincident positions fingerprint %q", got)
	}
	if Fingerprint(nil) != DistUniform {
		t.Error("empty system must fingerprint as uniform, the model default")
	}
	if a, b := Fingerprint(uniform), Fingerprint(uniform); a != b {
		t.Errorf("fingerprint not deterministic: %q then %q", a, b)
	}
}

// TestAccuracyKPresets pins the preset -> K mapping the planner and the
// serve estimator both key on.
func TestAccuracyKPresets(t *testing.T) {
	for name, want := range map[string]int{"": 12, "fast": 12, "balanced": 50, "accurate": 98} {
		if got := AccuracyK(name); got != want {
			t.Errorf("AccuracyK(%q) = %d, want %d", name, got, want)
		}
	}
}
