package plan

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"nbody/internal/metrics"
)

// Tuned-plan store format, version 1 — the same self-describing layout as
// the simulation checkpoint (all integers and float bit patterns
// little-endian):
//
//	offset  size       field
//	0       8          magic "NBODYPLN"
//	8       4          version (uint32, currently 1)
//	12      8          payload length in bytes (uint64)
//	20      len        payload (below)
//	20+len  4          CRC32C (Castagnoli) of the payload
//
// payload, for c tuned entries (length = 8 + 48c):
//
//	0       8          entry count c (uint64)
//	8       48 each    entries:
//	  +0    8          n (uint64)
//	  +8    4          dims (uint32; 0 means 3)
//	  +12   4          k (uint32)
//	  +16   4          depth (uint32)
//	  +20   4          distribution code (uint32: 0 unknown, 1 uniform,
//	                   2 clustered, 3 peaked)
//	  +24   4          flags (uint32: bit 0 supernodes, bit 1 sim)
//	  +28   4          reserved (written zero, ignored on read)
//	  +32   8          measured seconds (float64 bits)
//	  +40   8          observation count (uint64)
//
// Version rules mirror the checkpoint's: the magic never changes, readers
// reject unknown versions with ErrCorruptStore rather than guessing, and
// the payload length is written redundantly with the entry count so torn or
// forged records fail structural validation before any field is trusted.
// The trailing CRC32C catches the bit rot structure cannot.
var storeMagic = [8]byte{'N', 'B', 'O', 'D', 'Y', 'P', 'L', 'N'}

const (
	storeVersion   = 1
	storeHeaderLen = 8 + 4 + 8
	storeEntryLen  = 48
	// storeMaxEntries bounds what a reader will accept: far above any real
	// tuned table, far below anything that could hurt.
	storeMaxEntries = 1 << 20
)

var storeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptStore marks a tuned-plan store that failed structural or
// checksum validation. A corrupt store never panics, never loads partially,
// and never yields a silently wrong plan.
var ErrCorruptStore = errors.New("plan: corrupt tuned-plan store")

func storeCorruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptStore, fmt.Sprintf(format, args...))
}

// distCode maps fingerprint buckets onto their wire codes (and back).
var distCodes = map[string]uint32{"": 0, DistUniform: 1, DistClustered: 2, DistPeaked: 3}
var distNames = map[uint32]string{0: "", 1: DistUniform, 2: DistClustered, 3: DistPeaked}

// Encode writes the planner's tuned table to w in the versioned format
// above. Entries are emitted in a deterministic (sorted) order so equal
// tables produce bitwise-equal stores.
func (p *Planner) Encode(w io.Writer) error {
	p.mu.Lock()
	keys := make([]tuneKey, 0, len(p.tuned))
	for k := range p.tuned {
		keys = append(keys, k)
	}
	entries := make(map[tuneKey]TunedPlan, len(keys))
	for _, k := range keys {
		entries[k] = *p.tuned[k]
	}
	p.mu.Unlock()

	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.N != b.N:
			return a.N < b.N
		case a.Dist != b.Dist:
			return a.Dist < b.Dist
		case a.K != b.K:
			return a.K < b.K
		case a.Dims != b.Dims:
			return a.Dims < b.Dims
		case a.Supernodes != b.Supernodes:
			return !a.Supernodes
		default:
			return !a.Sim && b.Sim
		}
	})

	le := binary.LittleEndian
	payload := make([]byte, 8+storeEntryLen*len(keys))
	le.PutUint64(payload[0:], uint64(len(keys)))
	off := 8
	for _, k := range keys {
		t := entries[k]
		var flags uint32
		if k.Supernodes {
			flags |= 1
		}
		if k.Sim {
			flags |= 2
		}
		le.PutUint64(payload[off:], uint64(k.N))
		le.PutUint32(payload[off+8:], uint32(k.Dims))
		le.PutUint32(payload[off+12:], uint32(k.K))
		le.PutUint32(payload[off+16:], uint32(t.Depth))
		le.PutUint32(payload[off+20:], distCodes[k.Dist])
		le.PutUint32(payload[off+24:], flags)
		le.PutUint32(payload[off+28:], 0)
		le.PutUint64(payload[off+32:], math.Float64bits(t.Seconds))
		le.PutUint64(payload[off+40:], uint64(t.Obs))
		off += storeEntryLen
	}

	var hdr [storeHeaderLen]byte
	copy(hdr[:8], storeMagic[:])
	le.PutUint32(hdr[8:], storeVersion)
	le.PutUint64(hdr[12:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("plan: write store: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("plan: write store: %w", err)
	}
	var crc [4]byte
	le.PutUint32(crc[:], crc32.Checksum(payload, storeCRCTable))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("plan: write store: %w", err)
	}
	return nil
}

// Decode reads a tuned table written by Encode and merges it into the
// planner (loaded entries win over in-memory ones — the store is the
// warmer evidence). Any structural damage — bad magic, unknown version,
// truncation, length/count inconsistency, checksum mismatch, out-of-range
// fields — is reported with ErrCorruptStore and leaves the planner
// untouched. Returns the number of entries loaded.
func (p *Planner) Decode(r io.Reader) (int, error) {
	le := binary.LittleEndian
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, storeCorruptf("truncated header (%v)", err)
	}
	if [8]byte(hdr[:8]) != storeMagic {
		return 0, storeCorruptf("bad magic %q", hdr[:8])
	}
	if v := le.Uint32(hdr[8:]); v != storeVersion {
		return 0, storeCorruptf("unsupported version %d (want %d)", v, storeVersion)
	}
	plen := le.Uint64(hdr[12:])
	if plen < 8 || (plen-8)%storeEntryLen != 0 {
		return 0, storeCorruptf("implausible payload length %d", plen)
	}
	if (plen-8)/storeEntryLen > storeMaxEntries {
		return 0, storeCorruptf("entry count %d over limit", (plen-8)/storeEntryLen)
	}
	payload, err := readFullLimited(r, plen)
	if err != nil {
		return 0, storeCorruptf("truncated payload (%v)", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, storeCorruptf("truncated checksum (%v)", err)
	}
	if got, want := crc32.Checksum(payload, storeCRCTable), le.Uint32(crcBuf[:]); got != want {
		return 0, storeCorruptf("checksum mismatch (computed %08x, stored %08x)", got, want)
	}

	count := le.Uint64(payload[0:])
	if want := uint64(8 + storeEntryLen*count); count > storeMaxEntries || want != plen {
		return 0, storeCorruptf("entry count %d inconsistent with payload length %d", count, plen)
	}
	type loaded struct {
		key tuneKey
		t   TunedPlan
	}
	entries := make([]loaded, 0, count)
	off := 8
	for i := uint64(0); i < count; i++ {
		n := le.Uint64(payload[off:])
		dims := le.Uint32(payload[off+8:])
		k := le.Uint32(payload[off+12:])
		depth := le.Uint32(payload[off+16:])
		dist := le.Uint32(payload[off+20:])
		flags := le.Uint32(payload[off+24:])
		sec := math.Float64frombits(le.Uint64(payload[off+32:]))
		obs := le.Uint64(payload[off+40:])
		off += storeEntryLen

		distName, ok := distNames[dist]
		if !ok {
			return 0, storeCorruptf("entry %d: unknown distribution code %d", i, dist)
		}
		switch {
		case n == 0 || n > math.MaxInt32:
			return 0, storeCorruptf("entry %d: implausible n %d", i, n)
		case dims != 0 && dims != 2 && dims != 3:
			return 0, storeCorruptf("entry %d: implausible dims %d", i, dims)
		case k == 0 || k > 1<<16:
			return 0, storeCorruptf("entry %d: implausible k %d", i, k)
		case depth < 2 || depth > 64:
			return 0, storeCorruptf("entry %d: implausible depth %d", i, depth)
		case flags&^uint32(3) != 0:
			return 0, storeCorruptf("entry %d: unknown flags %#x", i, flags)
		case !(sec > 0) || math.IsInf(sec, 0):
			return 0, storeCorruptf("entry %d: non-positive measured seconds", i)
		case obs == 0 || obs > math.MaxInt64:
			return 0, storeCorruptf("entry %d: implausible observation count %d", i, obs)
		}
		entries = append(entries, loaded{
			key: tuneKey{
				N:          int(n),
				Dist:       distName,
				K:          int(k),
				Dims:       int(dims),
				Supernodes: flags&1 != 0,
				Sim:        flags&2 != 0,
			},
			t: TunedPlan{Depth: int(depth), Seconds: sec, Obs: int64(obs)},
		})
	}

	p.mu.Lock()
	for _, e := range entries {
		t := e.t
		p.tuned[e.key] = &t
	}
	p.mu.Unlock()
	return len(entries), nil
}

// Save writes the tuned table to path atomically: into a temporary file in
// the same directory, fsynced, then renamed over path — a crash leaves
// either the previous store or the new one, never a torn file.
func (p *Planner) Save(path string) error {
	if err := writeFileAtomic(path, p.Encode); err != nil {
		return err
	}
	p.mu.Lock()
	p.counters.StoreSaves++
	p.mu.Unlock()
	metrics.AddStoreSaves(1)
	return nil
}

// Load merges the tuned table at path into the planner. A missing file is
// not an error — a cold start simply has nothing to warm from — and
// returns (0, nil). Returns the number of entries loaded.
func (p *Planner) Load(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("plan: load store %s: %w", path, err)
	}
	defer f.Close()
	n, err := p.Decode(bufio.NewReader(f))
	if err != nil {
		return 0, fmt.Errorf("load store %s: %w", path, err)
	}
	p.mu.Lock()
	p.counters.StoreLoads++
	p.mu.Unlock()
	metrics.AddStoreLoads(1)
	return n, nil
}

// writeFileAtomic streams fill into a temp file next to path, fsyncs the
// file, renames it over path, and fsyncs the directory so the rename itself
// is durable (the checkpoint codec's discipline).
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("plan: save store %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err := fill(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("plan: save store %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("plan: save store %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("plan: save store %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("plan: save store %s: %w", path, err)
	}
	tmp = "" // committed: disable the cleanup
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readFullLimited reads exactly want bytes, growing the buffer only as data
// actually arrives, so a forged length field cannot force a huge up-front
// allocation.
func readFullLimited(r io.Reader, want uint64) ([]byte, error) {
	const chunk = 1 << 20
	first := want
	if first > chunk {
		first = chunk
	}
	buf := make([]byte, 0, first)
	for uint64(len(buf)) < want {
		next := want - uint64(len(buf))
		if next > chunk {
			next = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, next)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
