package plan

import (
	"fmt"
	"math"
	"sync"
	"time"

	"nbody/internal/dp"
	"nbody/internal/metrics"
)

// DefaultMaxDepth bounds the depths the planner considers when the caller
// does not impose its own cap (the serve layer passes its MaxDepth).
const DefaultMaxDepth = 8

// tuneAlpha weights each measured observation in the per-configuration
// EWMAs; tuneSwitchMargin is the hysteresis a challenger depth must clear
// before online refinement re-tunes a shape (a 2% jitter win must not flap
// the plan cache between two depths).
const (
	tuneAlpha        = 0.3
	tuneSwitchMargin = 0.95
	// tuneMinObs is the number of measured observations a configuration
	// needs before online refinement trusts its EWMA enough to promote it.
	tuneMinObs = 2
	// tuneSearchRadius bounds the explicit search to a window around the
	// analytic argmin: the cost is U-shaped in depth, so candidates far
	// from the model's minimum only burn time (a depth-8 bench of a small
	// system builds a 16M-box tree to confirm what the model already knew).
	tuneSearchRadius = 2
)

// Request is what a caller knows when asking for a Plan: the knobs it wants
// to pin and the limits it operates under. The zero value asks for a fully
// automatic resolution.
type Request struct {
	// Depth > 0 pins the hierarchy depth: the planner honors it verbatim
	// (ProvenancePinned) — a caller that asked for a depth gets that depth.
	Depth int
	// Supernodes and Sim are honored, never tuned: flipping either changes
	// the result bits, which is the caller's decision, not the planner's.
	Supernodes bool
	Sim        bool
	// Strategy and Ladder pass through into the Plan.
	Strategy string
	Ladder   string
	// MaxDepth caps the depth of automatic resolutions (0 = the planner's
	// own bound).
	MaxDepth int
	// NoTuned restricts automatic resolution to the analytic cost model,
	// ignoring tuned entries (the serve layer's -no-autotune switch).
	NoTuned bool
}

// tuneKey is the tuned-table key: a CostShape minus the depth — the depth
// is the quantity being tuned.
type tuneKey struct {
	N          int
	Dist       string
	K          int
	Dims       int
	Supernodes bool
	Sim        bool
}

func tuneKeyOf(shape ShapeKey, req Request) tuneKey {
	return tuneKey{
		N:          shape.N,
		Dist:       shape.Dist,
		K:          AccuracyK(shape.Accuracy),
		Dims:       shape.Dims,
		Supernodes: req.Supernodes,
		Sim:        req.Sim,
	}
}

// TunedPlan is one tuned-table entry: the measured-best depth for a shape
// and the evidence behind it.
type TunedPlan struct {
	Depth   int
	Seconds float64 // measured seconds per solve at Depth (EWMA)
	Obs     int64   // observations backing Seconds
}

// Trial is one candidate configuration's measured cost during an explicit
// search (Tune), reported so sweeps can tabulate the whole search.
type Trial struct {
	Depth    int
	Measured time.Duration
	// ModelNS is the analytic prediction for the candidate, for
	// model-vs-measured comparison in experiment tables.
	ModelNS int64
}

// obsEwma is one measured configuration's running cost estimate.
type obsEwma struct {
	ewma float64
	obs  int64
}

// Planner predicts the best Plan per shape. Resolution has three sources in
// priority order: a caller-pinned depth is honored verbatim; a tuned entry
// (from an explicit Tune search, online Observe refinement, or a loaded
// store) answers automatic requests for shapes with measured evidence; and
// the analytic cost model (dp.CostModel argmin over depth) answers
// everything else. All methods are safe for concurrent use.
type Planner struct {
	cost     dp.CostModel
	maxDepth int

	mu       sync.Mutex
	measured map[CostShape]*obsEwma
	tuned    map[tuneKey]*TunedPlan
	counters metrics.PlannerStats
}

// NewPlanner builds a planner considering depths 2..maxDepth for automatic
// resolutions (maxDepth < 2 selects DefaultMaxDepth).
func NewPlanner(maxDepth int) *Planner {
	if maxDepth < 2 {
		maxDepth = DefaultMaxDepth
	}
	return &Planner{
		cost:     dp.DefaultCostModel(),
		maxDepth: maxDepth,
		measured: make(map[CostShape]*obsEwma),
		tuned:    make(map[tuneKey]*TunedPlan),
	}
}

// planFor assembles the Plan value shared by every resolution path.
func planFor(shape ShapeKey, req Request, depth int) Plan {
	return Plan{
		Depth:      depth,
		K:          AccuracyK(shape.Accuracy),
		Supernodes: req.Supernodes,
		Strategy:   req.Strategy,
		Ladder:     req.Ladder,
	}
}

// depthCap resolves the effective depth bound of a request.
func (p *Planner) depthCap(req Request) int {
	if req.MaxDepth >= 2 && req.MaxDepth < p.maxDepth {
		return req.MaxDepth
	}
	return p.maxDepth
}

// AnalyticDepth returns the cost model's best depth for the shape: the
// argmin of ModelSolveCycles over 2..maxDepth. For the fast preset (K = 12)
// this coincides with the classic occupancy heuristic core.OptimalDepth(n,
// 32) across the admissible range; at higher K the model correctly prefers
// a shallower hierarchy (the interactive field's K^2 translations grow with
// the box count, the near field does not).
func (p *Planner) AnalyticDepth(n, k int, supernodes bool, maxDepth int) int {
	if maxDepth < 2 {
		maxDepth = p.maxDepth
	}
	best, bestCycles := 2, math.Inf(1)
	for d := 2; d <= maxDepth; d++ {
		if c := p.cost.ModelSolveCycles(n, d, k, supernodes); c < bestCycles {
			best, bestCycles = d, c
		}
	}
	return best
}

// modelNS is the analytic wall-clock prediction in CM-5E nanoseconds (a
// relative, not host-accurate, figure — used only to compare candidates).
func (p *Planner) modelNS(n, depth, k int, supernodes bool) int64 {
	sec := p.cost.Seconds(p.cost.ModelSolveCycles(n, depth, k, supernodes))
	if !(sec > 0) || math.IsInf(sec, 0) || sec > math.MaxInt64/1e9 {
		return 0
	}
	return int64(sec * 1e9)
}

// Resolve answers "what Plan should this shape use" and reports where the
// answer came from. It never runs a solve: a tuned entry answers from
// memory, everything else from the analytic model. Counters (instance and
// process-wide) record the outcome.
func (p *Planner) Resolve(shape ShapeKey, req Request) (Plan, Provenance) {
	cap := p.depthCap(req)
	if req.Depth > 0 {
		p.mu.Lock()
		p.counters.PlansPinned++
		p.mu.Unlock()
		metrics.AddPlansPinned(1)
		return planFor(shape, req, req.Depth), ProvenancePinned
	}
	if !req.NoTuned {
		p.mu.Lock()
		t := p.tuned[tuneKeyOf(shape, req)]
		if t != nil && t.Depth <= cap {
			p.counters.TuneHits++
			p.counters.PlansTuned++
			depth := t.Depth
			p.mu.Unlock()
			metrics.AddTuneHits(1)
			metrics.AddPlansTuned(1)
			return planFor(shape, req, depth), ProvenanceTuned
		}
		p.counters.TuneMisses++
		p.mu.Unlock()
		metrics.AddTuneMisses(1)
	}
	depth := p.AnalyticDepth(shape.N, AccuracyK(shape.Accuracy), req.Supernodes, cap)
	p.mu.Lock()
	p.counters.PlansAnalytic++
	p.mu.Unlock()
	metrics.AddPlansAnalytic(1)
	return planFor(shape, req, depth), ProvenanceAnalytic
}

// DepthFor is the counter-free resolution the brownout controller uses to
// re-pin an over-deep request: the tuned depth when one exists, the
// analytic depth otherwise. It must not bump counters — a brownout rewrite
// is not a plan resolution, and the level-2 path runs on every request
// under pressure.
func (p *Planner) DepthFor(shape ShapeKey, supernodes, sim bool) int {
	p.mu.Lock()
	t := p.tuned[tuneKeyOf(shape, Request{Supernodes: supernodes, Sim: sim})]
	p.mu.Unlock()
	if t != nil && t.Depth <= p.maxDepth {
		return t.Depth
	}
	return p.AnalyticDepth(shape.N, AccuracyK(shape.Accuracy), supernodes, p.maxDepth)
}

// Observe feeds one measured solve cost (the per-request phase-table total,
// or the wall solve time when no table was recorded) into the online
// refinement: the configuration's EWMA is updated, and once a configuration
// has tuneMinObs observations it can claim (or defend) the shape's tuned
// entry. Non-positive and non-finite measurements are dropped — a canceled
// or faulted solve measures the abort, not the work.
func (p *Planner) Observe(key Key, measured time.Duration) {
	sec := measured.Seconds()
	if !(sec > 0) || math.IsInf(sec, 0) {
		return
	}
	cs := key.CostShape()
	if cs.Depth < 2 || cs.N < 1 || cs.K < 1 {
		return
	}
	tk := tuneKey{N: cs.N, Dist: cs.Dist, K: cs.K, Dims: key.Shape.Dims, Supernodes: cs.Supernodes, Sim: cs.Sim}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.measured[cs]
	if e == nil {
		e = &obsEwma{ewma: sec}
		p.measured[cs] = e
	} else {
		e.ewma += tuneAlpha * (sec - e.ewma)
	}
	e.obs++
	if e.obs < tuneMinObs {
		return
	}
	t := p.tuned[tk]
	switch {
	case t == nil:
		p.tuned[tk] = &TunedPlan{Depth: cs.Depth, Seconds: e.ewma, Obs: e.obs}
	case t.Depth == cs.Depth:
		t.Seconds, t.Obs = e.ewma, e.obs
	case e.ewma < t.Seconds*tuneSwitchMargin:
		// A different depth is measurably faster: re-tune the shape.
		p.tuned[tk] = &TunedPlan{Depth: cs.Depth, Seconds: e.ewma, Obs: e.obs}
	}
}

// Tune resolves a shape by explicit measured search: every candidate depth
// within tuneSearchRadius of the analytic argmin (clamped to 2..cap) is
// benchmarked with the caller-supplied bench function and the fastest wins
// the shape's tuned entry. A shape that already has a tuned
// entry (e.g. loaded from a store) is answered from it without running
// bench at all — that is the warm start the persistent store exists for. A
// pinned request short-circuits to the pinned plan. The returned trials are
// the search's measurements (nil when no search ran).
func (p *Planner) Tune(shape ShapeKey, req Request, bench func(Plan) (time.Duration, error)) (Plan, []Trial, Provenance, error) {
	if req.Depth > 0 {
		pl, prov := p.Resolve(shape, req)
		return pl, nil, prov, nil
	}
	if !req.NoTuned {
		p.mu.Lock()
		t := p.tuned[tuneKeyOf(shape, req)]
		if t != nil && t.Depth <= p.depthCap(req) {
			p.counters.TuneHits++
			p.counters.PlansTuned++
			depth := t.Depth
			p.mu.Unlock()
			metrics.AddTuneHits(1)
			metrics.AddPlansTuned(1)
			return planFor(shape, req, depth), nil, ProvenanceTuned, nil
		}
		p.counters.TuneMisses++
		p.mu.Unlock()
		metrics.AddTuneMisses(1)
	}

	cap := p.depthCap(req)
	k := AccuracyK(shape.Accuracy)
	analytic := p.AnalyticDepth(shape.N, k, req.Supernodes, cap)
	lo, hi := analytic-tuneSearchRadius, analytic+tuneSearchRadius
	if lo < 2 {
		lo = 2
	}
	if hi > cap {
		hi = cap
	}
	start := time.Now()
	var trials []Trial
	best, bestT := 0, time.Duration(math.MaxInt64)
	for d := lo; d <= hi; d++ {
		t, err := bench(planFor(shape, req, d))
		if err != nil {
			return Plan{}, trials, "", fmt.Errorf("plan: tune depth %d: %w", d, err)
		}
		trials = append(trials, Trial{Depth: d, Measured: t, ModelNS: p.modelNS(shape.N, d, k, req.Supernodes)})
		if t < bestT {
			best, bestT = d, t
		}
	}
	elapsed := time.Since(start)
	p.mu.Lock()
	p.counters.Searches++
	p.counters.SearchNS += int64(elapsed)
	p.tuned[tuneKeyOf(shape, req)] = &TunedPlan{Depth: best, Seconds: bestT.Seconds(), Obs: 1}
	p.counters.PlansTuned++
	p.mu.Unlock()
	metrics.AddSearches(1)
	metrics.AddSearchNS(int64(elapsed))
	metrics.AddPlansTuned(1)
	return planFor(shape, req, best), trials, ProvenanceTuned, nil
}

// Tuned looks up the shape's tuned entry (a copy), reporting whether one
// exists.
func (p *Planner) Tuned(shape ShapeKey, req Request) (TunedPlan, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.tuned[tuneKeyOf(shape, req)]
	if t == nil {
		return TunedPlan{}, false
	}
	return *t, true
}

// Counters snapshots this planner's counters (the process-wide mirror lives
// in internal/metrics for cmd/phases-style reports).
func (p *Planner) Counters() metrics.PlannerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}
