// Package plan owns the full lifecycle of a solve configuration: the
// canonical shape of a problem (ShapeKey), the resolved configuration a
// solver is built from (Plan), the identity of one warm execution engine
// (Key), the cost-model autotuner that predicts the best Plan per shape and
// refines its predictions online from measured solves (Planner), and the
// persistent tuned-plan store that lets warm starts skip search entirely.
//
// Before this package the repo had four disconnected encodings of "what
// configuration should this solve use": the public Options, the analytic
// cycle model in internal/dp, the shape-keyed plan cache plus admission
// estimator in internal/serve, and the flag plumbing in internal/cli. All
// of them now consume these types; the paper's central claim — that the
// O(N) method's work is predictable enough to schedule from a cycle model —
// is what makes one planning layer possible.
package plan

import (
	"fmt"
	"math"

	"nbody/internal/geom"
	"nbody/internal/sphere"
)

// Distribution fingerprint buckets. The fingerprint classifies a particle
// set by how far its leaf-level occupancy statistics sit from the Poisson
// statistics of a uniform distribution — the quantity the cost model's
// occupancy terms are sensitive to.
const (
	// DistUniform marks occupancy consistent with a uniform distribution
	// (the cost model's own assumption).
	DistUniform = "uniform"
	// DistClustered marks moderate occupancy skew (e.g. a Plummer sphere):
	// the near field concentrates, the analytic model under-predicts it.
	DistClustered = "clustered"
	// DistPeaked marks extreme skew: most particles in a few cells.
	DistPeaked = "peaked"
)

// ShapeKey is the canonical identity of a problem shape: everything about
// the *input* that influences which configuration is best. Two requests
// with equal ShapeKeys want the same Plan.
type ShapeKey struct {
	// N is the particle count.
	N int
	// Dist is the distribution fingerprint (DistUniform, DistClustered,
	// DistPeaked, or "" when the positions were not available to
	// fingerprint).
	Dist string
	// Accuracy is the preset name: fast (default) | balanced | accurate.
	Accuracy string
	// Dims is the spatial dimension (0 means 3).
	Dims int
}

func (s ShapeKey) String() string {
	d := s.Dist
	if d == "" {
		d = "?"
	}
	acc := s.Accuracy
	if acc == "" {
		acc = "fast"
	}
	return fmt.Sprintf("n=%d dist=%s acc=%s", s.N, d, acc)
}

// Plan is one resolved solve configuration: everything a consumer needs to
// build a solver for a shape. It is a comparable value — the serve plan
// cache uses it (inside Key) as a map key.
type Plan struct {
	// Depth is the hierarchy depth (>= 2).
	Depth int
	// K is the per-box integration-point count the accuracy preset resolves
	// to (the paper's K: 12 for fast, 26 for balanced, 98 for accurate).
	K int
	// Supernodes enables the 875 -> 189 interactive-field reduction.
	Supernodes bool
	// Strategy is the data-parallel ghost strategy ("" for the
	// shared-memory solver).
	Strategy string
	// Storage is the translation-storage class ("" = dense, the only class
	// implemented today; the field exists so a future compressed store is a
	// different plan, not a silent behavior change).
	Storage string
	// Ladder is the comma-separated fallback chain below the Anderson rung
	// ("" = no fallbacks).
	Ladder string
}

// Key is the full identity of one warm execution engine: the shape solved,
// the domain flavor, and the exact Plan the engine was built from. Two
// requests with equal Keys are served bitwise identically by one engine.
type Key struct {
	Shape ShapeKey
	// Sim selects the enlarged integration domain.
	Sim bool
	Plan Plan
}

// String renders the key the way the request logs print it.
func (k Key) String() string {
	tag := ""
	if k.Plan.Supernodes {
		tag = "+super"
	}
	if k.Sim {
		tag += "+sim"
	}
	dist := ""
	if k.Shape.Dist != "" {
		dist = " dist=" + k.Shape.Dist
	}
	return fmt.Sprintf("n=%d depth=%d acc=%s%s%s", k.Shape.N, k.Plan.Depth, k.Shape.Accuracy, tag, dist)
}

// CostShape is the cost-relevant projection of a Key: the fields that
// change how long a solve takes on a given host. It is the key of every
// measured-cost table (the serve admission estimator's EWMAs and the
// Planner's online refinement) so the two can never diverge again.
type CostShape struct {
	N          int
	Dist       string
	Depth      int
	K          int
	Supernodes bool
	Sim        bool
}

// CostShape projects the key onto its cost-relevant fields.
func (k Key) CostShape() CostShape {
	return CostShape{
		N:          k.Shape.N,
		Dist:       k.Shape.Dist,
		Depth:      k.Plan.Depth,
		K:          k.Plan.K,
		Supernodes: k.Plan.Supernodes,
		Sim:        k.Sim,
	}
}

// Provenance records where a resolved Plan came from, for observability:
// a caller-pinned configuration, the analytic cost model, or a measured
// (tuned) entry.
type Provenance string

// The provenance values.
const (
	ProvenancePinned   Provenance = "pinned"
	ProvenanceAnalytic Provenance = "analytic"
	ProvenanceTuned    Provenance = "tuned"
)

// AccuracyK maps the accuracy presets onto their integration-point counts
// (the paper's K): the 12-point icosahedral rule for fast, the degree-9 and
// degree-13 product rules above it. "" maps to fast. Kept consistent with
// the root package's presets by the serve estimator's cross-check test.
func AccuracyK(accuracy string) int {
	deg := 5
	switch accuracy {
	case "balanced":
		deg = 9
	case "accurate":
		deg = 13
	}
	if r := sphere.ForDegree(deg); r != nil {
		return r.K()
	}
	return 12
}

// Fingerprint classifies a particle distribution by occupancy skew: the
// positions are binned into a fixed probe grid over their bounding box and
// the coefficient of variation of the cell counts is compared against the
// Poisson CV (1/sqrt(mean)) a uniform distribution would produce. The
// result is deterministic in the positions — equal systems always map to
// the same bucket, which is what lets the fingerprint participate in cache
// and store keys. O(N), no allocation beyond the probe grid.
func Fingerprint(pos []geom.Vec3) string {
	n := len(pos)
	if n == 0 {
		return DistUniform
	}
	// Probe resolution: 4^3 cells for small systems, 8^3 above 4096
	// particles, so the expected occupancy stays high enough for the
	// Poisson comparison to be meaningful.
	side := 4
	if n >= 4096 {
		side = 8
	}
	lo, hi := pos[0], pos[0]
	for _, p := range pos[1:] {
		lo.X, lo.Y, lo.Z = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z)
	}
	ext := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))
	if !(ext > 0) || math.IsInf(ext, 0) || math.IsNaN(ext) {
		// Coincident or degenerate positions: every particle in one cell.
		return DistPeaked
	}
	cells := make([]int32, side*side*side)
	inv := float64(side) / ext
	clamp := func(v float64) int {
		i := int(v)
		if i < 0 {
			return 0
		}
		if i >= side {
			return side - 1
		}
		return i
	}
	for _, p := range pos {
		x := clamp((p.X - lo.X) * inv)
		y := clamp((p.Y - lo.Y) * inv)
		z := clamp((p.Z - lo.Z) * inv)
		cells[(z*side+y)*side+x]++
	}
	mean := float64(n) / float64(len(cells))
	var ss float64
	for _, c := range cells {
		d := float64(c) - mean
		ss += d * d
	}
	cv := math.Sqrt(ss/float64(len(cells))) / mean
	poisson := 1 / math.Sqrt(mean)
	ratio := cv / poisson
	switch {
	case ratio < 2:
		return DistUniform
	case ratio < 8:
		return DistClustered
	default:
		return DistPeaked
	}
}
