package experiments

import (
	"fmt"
	"strings"
	"time"

	"nbody/internal/core"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
)

// Figure7Point is one temporary-array size of the Multigrid-embed
// comparison.
type Figure7Point struct {
	Level       int
	Boxes       int
	SendSeconds float64 // modeled, general run-time send
	FastSeconds float64 // modeled, local copy or two-step scheme
	Speedup     float64
}

// Figure7Result reproduces the Multigrid-embed performance figure.
type Figure7Result struct {
	Nodes  int
	Points []Figure7Point
}

// Figure7 embeds temporary level arrays of growing size into the two-layer
// multigrid array, comparing the general send against the local-copy /
// two-step scheme (Section 3.3.2).
func Figure7(nodes, depth int) (*Figure7Result, error) {
	if nodes == 0 {
		nodes = 64 // 256 VUs, the paper's machine
	}
	if depth == 0 {
		depth = 6
	}
	m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
	if err != nil {
		return nil, err
	}
	const k = 12
	mg := dpfmm.NewMultigrid(m, depth, k)
	res := &Figure7Result{Nodes: nodes}
	for level := 1; level < depth; level++ {
		tmp := m.NewGrid3(1<<level, k)
		m.ResetCounters()
		mg.Embed(dp.RemapSend, tmp, level, false)
		cs := m.Counters()
		send := m.Cost.Seconds(cs.CommCycles() + cs.CopyCycles())
		m.ResetCounters()
		mg.Embed(dp.RemapAliased, tmp, level, true)
		cf := m.Counters()
		fast := m.Cost.Seconds(cf.CommCycles() + cf.CopyCycles())
		res.Points = append(res.Points, Figure7Point{
			Level: level, Boxes: 1 << (3 * level),
			SendSeconds: send, FastSeconds: fast, Speedup: send / fast,
		})
	}
	return res, nil
}

// String prints the series.
func (r *Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes; embedding a level array into the two-layer hierarchy array\n", r.Nodes)
	fmt.Fprintf(&b, "%6s %10s %14s %18s %10s\n", "level", "boxes", "send (model s)", "two-step/local (s)", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %10d %14.3e %18.3e %9.1fx\n",
			p.Level, p.Boxes, p.SendSeconds, p.FastSeconds, p.Speedup)
	}
	b.WriteString("paper: improvement of up to two orders of magnitude (Figure 7)\n")
	return section("Figure 7: Multigrid-embed, send vs local-copy/two-step", b.String())
}

// Figure8Point is one K of the T1/T3 precomputation comparison.
type Figure8Point struct {
	K                         int
	ComputeAll                float64 // modeled seconds
	Replicate                 float64
	ReplicateGroup            float64
	ReplicatePortionUngrouped float64 // just the replication part
	ReplicatePortionGrouped   float64
	Wall                      time.Duration
}

// Figure8Result reproduces the T1/T3 precomputation figure.
type Figure8Result struct {
	Nodes  int
	Points []Figure8Point
}

// Figure8 compares the three precomputation strategies for the 16
// parent-child matrices across K.
func Figure8(nodes int) (*Figure8Result, error) {
	if nodes == 0 {
		nodes = 64
	}
	res := &Figure8Result{Nodes: nodes}
	for _, d := range []int{5, 7, 9, 11} {
		cfg := core.Config{Degree: d, Depth: 3}
		var pt Figure8Point
		start := time.Now()
		for _, strat := range []dpfmm.PrecomputeStrategy{
			dpfmm.ComputeEverywhere, dpfmm.ComputeAndReplicate, dpfmm.ComputeAndReplicateGrouped,
		} {
			m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
			if err != nil {
				return nil, err
			}
			r, err := dpfmm.PrecomputeParentChild(m, cfg, strat)
			if err != nil {
				return nil, err
			}
			pt.K = r.K
			secs := m.Cost.Seconds(r.TotalCycles())
			switch strat {
			case dpfmm.ComputeEverywhere:
				pt.ComputeAll = secs
			case dpfmm.ComputeAndReplicate:
				pt.Replicate = secs
				pt.ReplicatePortionUngrouped = m.Cost.Seconds(r.CommCycles)
			default:
				pt.ReplicateGroup = secs
				pt.ReplicatePortionGrouped = m.Cost.Seconds(r.CommCycles)
			}
		}
		pt.Wall = time.Since(start)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String prints the series.
func (r *Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes; 16 parent-child matrices (modeled seconds)\n", r.Nodes)
	fmt.Fprintf(&b, "%5s %14s %14s %14s %12s %12s\n",
		"K", "compute-all", "cmp+repl", "cmp+repl-grp", "repl-portion", "repl-grp")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%5d %14.3e %14.3e %14.3e %12.3e %12.3e\n",
			p.K, p.ComputeAll, p.Replicate, p.ReplicateGroup,
			p.ReplicatePortionUngrouped, p.ReplicatePortionGrouped)
	}
	b.WriteString("paper: compute+replicate costs 66%-24% of compute-all as K goes 12->72;\n")
	b.WriteString("grouping cuts the replication portion by 1.75x-1.26x (Figure 8)\n")
	return section("Figure 8: T1/T3 matrix precomputation strategies", b.String())
}

// Figure9Point is one (K, nodes) of the T2 precomputation comparison.
type Figure9Point struct {
	K                      int
	Nodes                  int
	ComputeAll             float64
	Replicate              float64
	ReplPortion            float64
	ParallelComputePortion float64
}

// Figure9Result reproduces the T2 precomputation figure (both panels).
type Figure9Result struct {
	Points []Figure9Point
}

// Figure9 compares compute-everywhere against compute-in-parallel +
// replicate for the 1331 T2 matrices, across K and machine sizes.
func Figure9(nodeSizes []int) (*Figure9Result, error) {
	if len(nodeSizes) == 0 {
		nodeSizes = []int{8, 16, 64}
	}
	res := &Figure9Result{}
	for _, nodes := range nodeSizes {
		for _, d := range []int{5, 9, 11} {
			cfg := core.Config{Degree: d, Depth: 3}
			m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
			if err != nil {
				return nil, err
			}
			all, err := dpfmm.PrecomputeInteractive(m, cfg, dpfmm.ComputeEverywhere)
			if err != nil {
				return nil, err
			}
			m2, err := dp.NewMachine(nodes, 4, dp.CostModel{})
			if err != nil {
				return nil, err
			}
			rep, err := dpfmm.PrecomputeInteractive(m2, cfg, dpfmm.ComputeAndReplicate)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Figure9Point{
				K: all.K, Nodes: nodes,
				ComputeAll:             m.Cost.Seconds(all.TotalCycles()),
				Replicate:              m2.Cost.Seconds(rep.TotalCycles()),
				ReplPortion:            m2.Cost.Seconds(rep.CommCycles),
				ParallelComputePortion: m2.Cost.Seconds(rep.ComputeCycles),
			})
		}
	}
	return res, nil
}

// String prints the series.
func (r *Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "1331 T2 matrices (modeled seconds)\n")
	fmt.Fprintf(&b, "%6s %5s %14s %14s %14s %14s\n",
		"nodes", "K", "compute-all", "cmp+replicate", "repl-portion", "parallel-cmp")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %5d %14.3e %14.3e %14.3e %14.3e\n",
			p.Nodes, p.K, p.ComputeAll, p.Replicate, p.ReplPortion, p.ParallelComputePortion)
	}
	b.WriteString("paper: compute-in-parallel + replicate up to an order of magnitude faster;\n")
	b.WriteString("parallel compute falls with machine size, replication grows 10-20% per doubling (Figure 9)\n")
	return section("Figure 9: T2 matrix precomputation strategies", b.String())
}
