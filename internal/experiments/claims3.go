package experiments

import (
	"fmt"
	"math/rand"

	"nbody/internal/core"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
)

// LoadBalanceClaim measures the compute-cycle imbalance of the non-adaptive
// method (Section 3.5: the hierarchy is balanced, so uniform distributions
// load-balance by construction — and clustered ones do not, which is why
// the adaptive variants of Table 1 exist).
type LoadBalanceClaim struct {
	Rows []LoadBalanceRow
}

// LoadBalanceRow is one distribution's imbalance.
type LoadBalanceRow struct {
	Distribution string
	MaxOverMean  float64 // critical-path compute cycles / mean over VUs
}

// ClaimLoadBalance runs the same solve over uniform and clustered particles
// and compares the per-VU compute-cycle spread.
func ClaimLoadBalance(n int) (*LoadBalanceClaim, error) {
	if n == 0 {
		n = 8192
	}
	root := geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	res := &LoadBalanceClaim{}
	for _, dist := range []string{"uniform", "clustered"} {
		rng := rand.New(rand.NewSource(19))
		pos := make([]geom.Vec3, n)
		q := make([]float64, n)
		for i := range pos {
			switch dist {
			case "uniform":
				pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
			default:
				// An eighth of the domain holds seven eighths of the mass.
				if i%8 != 0 {
					pos[i] = geom.Vec3{
						X: 0.5 * rng.Float64(),
						Y: 0.5 * rng.Float64(),
						Z: 0.5 * rng.Float64(),
					}
				} else {
					pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
				}
			}
			q[i] = 1
		}
		m, s, err := newDP(8, root, core.Config{Degree: 5, Depth: 4}, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		maxC, meanC := m.MaxComputeCycles()
		res.Rows = append(res.Rows, LoadBalanceRow{
			Distribution: dist,
			MaxOverMean:  maxC / meanC,
		})
	}
	return res, nil
}

// String prints the claim check.
func (r *LoadBalanceClaim) String() string {
	out := ""
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-10s max/mean compute cycles over VUs: %.2f\n",
			row.Distribution, row.MaxOverMean)
	}
	out += "paper (Section 3.5): the non-adaptive hierarchy load-balances uniform\n"
	out += "distributions by construction; clustering concentrates near-field work\n"
	return section("Claim: load balance of the non-adaptive method", out)
}
