package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
	"nbody/internal/metrics"
)

func unitBox() geom.Box3 {
	return geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
}

func uniformSystem(n int, seed int64) ([]geom.Vec3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64()
	}
	return pos, q
}

func meanRelError(got, want []float64) float64 {
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	return math.Sqrt(rms/float64(len(got))) / (mean / float64(len(got)))
}

// AccuracyClaim measures the error-relative-to-mean of the two headline
// configurations (abstract: "four and seven digits of accuracy").
type AccuracyClaim struct {
	N        int
	LowErr   float64 // D=5, K=12
	HighErr  float64 // degree-13 product rule (stand-in for D=14 K=72)
	LowWall  time.Duration
	HighWall time.Duration
}

// ClaimAccuracy runs both configurations against the direct sum.
func ClaimAccuracy(n int) (*AccuracyClaim, error) {
	if n == 0 {
		n = 2000
	}
	pos, q := uniformSystem(n, 3)
	want := direct.PotentialsParallel(pos, q)
	res := &AccuracyClaim{N: n}
	for _, c := range []struct {
		deg  int
		err  *float64
		wall *time.Duration
	}{
		{5, &res.LowErr, &res.LowWall},
		{13, &res.HighErr, &res.HighWall},
	} {
		s, err := core.NewSolver(unitBox(), core.Config{Degree: c.deg, Depth: 3})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		phi, err := s.Potentials(pos, q)
		if err != nil {
			return nil, err
		}
		*c.wall = time.Since(start)
		*c.err = meanRelError(phi, want)
	}
	return res, nil
}

// String prints the claim check.
func (r *AccuracyClaim) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d, error relative to mean |phi| vs direct sum\n", r.N)
	fmt.Fprintf(&b, "D=5  (K=12):  %.2e  (%.1f digits)   paper: ~4 digits\n", r.LowErr, -math.Log10(r.LowErr))
	fmt.Fprintf(&b, "D=13 (K=98):  %.2e  (%.1f digits)   paper (D=14 K=72): ~7 digits\n", r.HighErr, -math.Log10(r.HighErr))
	return section("Claim: accuracy of the two headline configurations", b.String())
}

// ScalingPoint is one (N, nodes) configuration of the scaling claims.
type ScalingPoint struct {
	N      int
	Nodes  int
	Depth  int
	Report metrics.Report
	Wall   time.Duration
}

// ScalingResult collects scaling sweeps.
type ScalingResult struct {
	Title  string
	Points []ScalingPoint
	Note   string
}

// ClaimScalingN sweeps N (with depth at the optimal setting for each N) at
// fixed machine size: modeled cycles per particle should stay roughly
// constant ("the speed of the code scales linearly with ... the number of
// particles").
func ClaimScalingN(nodes int) (*ScalingResult, error) {
	if nodes == 0 {
		nodes = 16
	}
	res := &ScalingResult{
		Title: "linear scaling in N (fixed machine)",
		Note:  "paper: time linear in N at optimal depth",
	}
	for _, cfg := range []struct{ n, depth int }{
		{4096, 3}, {32768, 4}, {262144, 5},
	} {
		pos, q := uniformSystem(cfg.n, 11)
		m, s, err := newDP(nodes, unitBox(), core.Config{Degree: 5, Depth: cfg.depth}, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalingPoint{
			N: cfg.n, Nodes: nodes, Depth: cfg.depth,
			Report: metrics.FromMachine("scaling", m, m.Counters(), cfg.n),
			Wall:   time.Since(start),
		})
	}
	return res, nil
}

// ClaimScalingP sweeps machine size at fixed N: modeled time should fall
// ~linearly with nodes.
func ClaimScalingP(n, depth int) (*ScalingResult, error) {
	if n == 0 {
		n = 32768
	}
	if depth == 0 {
		depth = 4
	}
	res := &ScalingResult{
		Title: "linear scaling in P (fixed problem)",
		Note:  "paper: speed scales linearly with the number of processors",
	}
	pos, q := uniformSystem(n, 12)
	for _, nodes := range []int{4, 16, 64} {
		m, s, err := newDP(nodes, unitBox(), core.Config{Degree: 5, Depth: depth}, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalingPoint{
			N: n, Nodes: nodes, Depth: depth,
			Report: metrics.FromMachine("scaling", m, m.Counters(), n),
			Wall:   time.Since(start),
		})
	}
	return res, nil
}

// String prints a scaling sweep.
func (r *ScalingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %6s %6s %14s %16s %10s %10s\n",
		"N", "nodes", "depth", "model seconds", "cycles/particle", "eff", "comm")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %6d %6d %14.4f %16.0f %9.1f%% %9.1f%%\n",
			p.N, p.Nodes, p.Depth, p.Report.ModelSeconds(), p.Report.CyclesPerParticle(),
			100*p.Report.Efficiency(), 100*p.Report.CommFraction())
	}
	b.WriteString(r.Note + "\n")
	return section("Claim: "+r.Title, b.String())
}

// DepthPoint is one hierarchy depth of the optimal-depth sweep.
type DepthPoint struct {
	Depth     int
	Flops     int64
	Traversal int64
	Near      int64
	Wall      time.Duration
}

// DepthResult is the optimal-depth sweep (Section 2.3).
type DepthResult struct {
	N      int
	Points []DepthPoint
}

// ClaimOptimalDepth sweeps the hierarchy depth at fixed N, showing the
// traversal / near-field balance.
func ClaimOptimalDepth(n int) (*DepthResult, error) {
	if n == 0 {
		n = 32768
	}
	pos, q := uniformSystem(n, 13)
	res := &DepthResult{N: n}
	for _, depth := range []int{3, 4, 5} {
		s, err := core.NewSolver(unitBox(), core.Config{Degree: 5, Depth: depth})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		st := s.Stats()
		res.Points = append(res.Points, DepthPoint{
			Depth:     depth,
			Flops:     st.TotalFlops(),
			Traversal: st.TraversalFlops(),
			Near:      st.Flops[core.PhaseNear],
			Wall:      time.Since(start),
		})
	}
	return res, nil
}

// String prints the sweep.
func (r *DepthResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d, K=12\n", r.N)
	fmt.Fprintf(&b, "%6s %14s %16s %14s %12s\n", "depth", "total flops", "traversal flops", "near flops", "host wall")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %14d %16d %14d %12v\n",
			p.Depth, p.Flops, p.Traversal, p.Near, p.Wall.Round(time.Millisecond))
	}
	b.WriteString("paper: optimal depth balances hierarchy traversal against near-field direct evaluation\n")
	return section("Claim: optimal hierarchy depth", b.String())
}

// AblationResult reports a design-choice ablation.
type AblationResult struct {
	Title string
	Lines []string
}

// String prints the ablation.
func (r *AblationResult) String() string {
	return section("Ablation: "+r.Title, strings.Join(r.Lines, "\n")+"\n")
}

// ClaimSupernodes measures the supernode optimization: translation count,
// flops, and accuracy cost (Section 2.3: 875 -> 189, "slightly decreased
// accuracy").
func ClaimSupernodes(n int) (*AblationResult, error) {
	if n == 0 {
		n = 8000
	}
	pos, q := uniformSystem(n, 14)
	want := direct.PotentialsParallel(pos, q)
	res := &AblationResult{Title: "supernodes (875 -> 189 interactive translations)"}
	for _, sup := range []bool{false, true} {
		s, err := core.NewSolver(unitBox(), core.Config{Degree: 7, Depth: 4, Supernodes: sup})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		phi, err := s.Potentials(pos, q)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		st := s.Stats()
		res.Lines = append(res.Lines, fmt.Sprintf(
			"supernodes=%-5v T2 translations=%-9d downward flops=%-12d err=%.2e wall=%v",
			sup, st.T2Count, st.Flops[core.PhaseT2]+st.Flops[core.PhaseT3], meanRelError(phi, want),
			wall.Round(time.Millisecond)))
	}
	res.Lines = append(res.Lines, "paper: ~4.6x fewer interactive-field translations, slightly decreased accuracy")
	return res, nil
}

// ClaimAggregation measures the BLAS-3 aggregation against per-box gemv
// (Section 3.3.3: 58 -> 87 Mflops/s/PN for K=12 parent-child translations).
func ClaimAggregation(n int) (*AblationResult, error) {
	if n == 0 {
		n = 32768
	}
	pos, q := uniformSystem(n, 15)
	res := &AblationResult{Title: "BLAS-3 aggregation of translations"}
	for _, disable := range []bool{true, false} {
		s, err := core.NewSolver(unitBox(), core.Config{Degree: 5, Depth: 4, DisableAggregation: disable})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		st := s.Stats()
		hier := st.TraversalTime()
		mflops := float64(st.TraversalFlops()) / hier.Seconds() / 1e6
		mode := "aggregated gemm"
		if disable {
			mode = "per-box gemv"
		}
		res.Lines = append(res.Lines, fmt.Sprintf(
			"%-16s traversal=%-12v sustained=%7.0f Mflops/s (host)  total wall=%v",
			mode, hier.Round(time.Millisecond), mflops, wall.Round(time.Millisecond)))
	}
	res.Lines = append(res.Lines, "paper: aggregation lifted T1/T3 from 58 to 87 Mflops/s/PN at K=12")
	return res, nil
}
