package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"nbody/internal/bh"
	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
	"nbody/internal/metrics"
)

// Table1Config sizes the Table 1 experiment. The defaults are laptop-scale;
// the paper's configuration (100M particles, 256 nodes, depth 7-8) is
// reached by scaling N, Nodes and Depth together — the per-particle metrics
// are depth- and size-normalized, which is the point of the table.
type Table1Config struct {
	N     int // particles (default 16384)
	Nodes int // simulated nodes (default 16)
	Depth int // hierarchy depth (default 4)
}

func (c Table1Config) normalize() Table1Config {
	if c.N == 0 {
		c.N = 16384
	}
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Depth == 0 {
		c.Depth = 4
	}
	return c
}

// Table1Row is one implementation's measured row.
type Table1Row struct {
	Method           string
	Report           metrics.Report
	Wall             time.Duration
	FlopsPerParticle float64
}

// Table1Result reproduces the comparison table.
type Table1Result struct {
	Cfg  Table1Config
	Rows []Table1Row
}

// Table1 runs Anderson's method at the paper's two accuracy settings on the
// simulated machine and the Barnes-Hut / direct baselines on the host, and
// assembles the efficiency / cycles-per-particle comparison.
func Table1(cfg Table1Config) (*Table1Result, error) {
	cfg = cfg.normalize()
	res := &Table1Result{Cfg: cfg}
	root := geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	rng := rand.New(rand.NewSource(1))
	pos := make([]geom.Vec3, cfg.N)
	q := make([]float64, cfg.N)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64()
	}

	// Anderson on the simulated machine, low and high order (K = 12
	// matching the paper's D = 5; K = 72 via the product rule standing in
	// for the McLaren D = 14 rule; see DESIGN.md).
	// The high-order configuration runs one level shallower, mirroring the
	// paper's optimal depths (h=8 for K=12, h=7 for K=72): the costlier
	// translations favor more near-field work per box.
	for _, c := range []struct {
		name string
		cfg  core.Config
	}{
		{"anderson D=5 K=12 (dp)", core.Config{Degree: 5, Depth: cfg.Depth}},
		{"anderson D=11 K=72 (dp)", core.Config{Degree: 11, Depth: cfg.Depth - 1}},
	} {
		m, s, err := newDP(cfg.Nodes, root, c.cfg, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		rep := metrics.FromMachine(c.name, m, m.Counters(), cfg.N)
		res.Rows = append(res.Rows, Table1Row{
			Method: c.name, Report: rep, Wall: wall,
			FlopsPerParticle: float64(rep.Flops) / float64(cfg.N),
		})
	}

	// Barnes-Hut baseline (host): flops per particle for context.
	tr, err := bh.Build(root, pos, q, bh.Config{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, st := tr.Potentials(bh.Config{Theta: 0.6, Quadrupole: true})
	res.Rows = append(res.Rows, Table1Row{
		Method:           "barnes-hut theta=0.6 (host)",
		Wall:             time.Since(start),
		FlopsPerParticle: float64(st.TotalFlops()) / float64(cfg.N),
	})

	// Direct baseline: exact flops per particle, no tree.
	start = time.Now()
	direct.PotentialsParallel(pos, q)
	res.Rows = append(res.Rows, Table1Row{
		Method:           "direct O(N^2) (host)",
		Wall:             time.Since(start),
		FlopsPerParticle: float64(cfg.N-1) * direct.FlopsPerPair,
	})
	return res, nil
}

// String prints the table with the paper's reference band.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d nodes=%d depth=%d (paper: N=100M, 256 nodes, depth 7-8)\n",
		r.Cfg.N, r.Cfg.Nodes, r.Cfg.Depth)
	fmt.Fprintf(&b, "%-30s %9s %16s %10s %14s %12s\n",
		"method", "eff", "cycles/particle", "comm", "flops/particle", "host wall")
	for _, row := range r.Rows {
		if row.Report.Nodes > 0 {
			fmt.Fprintf(&b, "%-30s %8.1f%% %16.0f %9.1f%% %14.0f %12v\n",
				row.Method, 100*row.Report.Efficiency(), row.Report.CyclesPerParticle(),
				100*row.Report.CommFraction(), row.FlopsPerParticle, row.Wall.Round(time.Millisecond))
		} else {
			fmt.Fprintf(&b, "%-30s %9s %16s %10s %14.0f %12v\n",
				row.Method, "-", "-", "-", row.FlopsPerParticle, row.Wall.Round(time.Millisecond))
		}
	}
	b.WriteString("paper (this-work rows): D=5: eff 27%, 37K cycles/particle; D=14: eff 35%, 183K cycles/particle\n")
	b.WriteString("paper (baselines): BH quadrupole 26-30% eff, 97K-266K cycles/particle on 1996 machines\n")
	return section("Table 1: efficiency and cycles per particle", b.String())
}
