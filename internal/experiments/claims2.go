package experiments

import (
	"fmt"
	"math/rand"

	"nbody/internal/core"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
)

// MemoryClaim reports the translation-matrix storage of Section 3.3.4 (the
// paper: 1.53 MB for K = 12, 53.9 MB for K = 72) and the per-particle
// hierarchy storage that makes 100M-particle runs fit a 256-node machine.
type MemoryClaim struct {
	Rows []MemoryRow
}

// MemoryRow is one configuration's storage.
type MemoryRow struct {
	K                    int
	MatrixMB             float64 // all 1331 T2 matrices
	HierarchyWordsPerBox int
}

// ClaimMemory computes the matrix-store sizes for the paper's two K values.
func ClaimMemory() (*MemoryClaim, error) {
	res := &MemoryClaim{}
	for _, d := range []int{5, 11} {
		cfg, err := core.Config{Degree: d, Depth: 3}.Normalized()
		if err != nil {
			return nil, err
		}
		ts := core.NewTranslationSet(cfg)
		res.Rows = append(res.Rows, MemoryRow{
			K:        ts.K,
			MatrixMB: float64(ts.MatrixBytes()) / 1e6,
			// Far + local potentials, two layers each in the multigrid
			// embedding: 4K words per leaf box.
			HierarchyWordsPerBox: 4 * ts.K,
		})
	}
	return res, nil
}

// String prints the claim check.
func (r *MemoryClaim) String() string {
	out := fmt.Sprintf("%5s %16s %22s\n", "K", "T2 matrices (MB)", "hierarchy words/box")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%5d %16.2f %22d\n", row.K, row.MatrixMB, row.HierarchyWordsPerBox)
	}
	out += "paper: 1.53 MB at K=12 and 53.9 MB at K=72 per VU (hence matrices are\n"
	out += "computed in parallel and replicated on use rather than all stored)\n"
	return section("Claim: memory use of the translation-matrix store", out)
}

// ReshapeClaim reports the coordinate-sort locality of Section 3.2 for
// different particle distributions.
type ReshapeClaim struct {
	Rows []ReshapeRow
}

// ReshapeRow is one distribution's reshape locality.
type ReshapeRow struct {
	Distribution string
	LocalPct     float64
}

// ClaimReshape measures the fraction of particles left on their leaf box's
// VU by the coordinate sort, for a uniform and a clustered distribution.
func ClaimReshape(n int) (*ReshapeClaim, error) {
	if n == 0 {
		n = 8192
	}
	res := &ReshapeClaim{}
	root := geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	for _, dist := range []string{"uniform", "clustered"} {
		rng := rand.New(rand.NewSource(17))
		pos := make([]geom.Vec3, n)
		q := make([]float64, n)
		for i := range pos {
			switch dist {
			case "uniform":
				pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
			default:
				pos[i] = geom.Vec3{
					X: 0.3 + 0.4*rng.Float64()*rng.Float64(),
					Y: 0.3 + 0.4*rng.Float64()*rng.Float64(),
					Z: 0.3 + 0.4*rng.Float64()*rng.Float64(),
				}
			}
			q[i] = 1
		}
		_, s, err := newDP(8, root, core.Config{Degree: 5, Depth: 4}, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		if _, err := s.Potentials(pos, q); err != nil {
			return nil, err
		}
		rs := dpfmm.LastReshapeStats()
		total := rs.MovedOffVU + rs.Local
		res.Rows = append(res.Rows, ReshapeRow{
			Distribution: dist,
			LocalPct:     100 * float64(rs.Local) / float64(total),
		})
	}
	return res, nil
}

// String prints the claim check.
func (r *ReshapeClaim) String() string {
	out := ""
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-10s %5.1f%% of particles stay on their box's VU after the coordinate sort\n",
			row.Distribution, row.LocalPct)
	}
	out += "paper: with >= 1 box per VU the reshape needs no communication for uniform\n"
	out += "distributions, and 'most particles' stay local for near-uniform ones\n"
	return section("Claim: coordinate-sort reshape locality", out)
}
