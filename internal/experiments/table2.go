package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"nbody/internal/core"
	"nbody/internal/geom"
	"nbody/internal/sphere"
)

// Table2Row is one integration order's parameters and measured accuracy.
type Table2Row struct {
	D           int // integration order
	K           int // points
	M           int // Legendre truncation
	RadiusRatio float64
	WorstErr    float64 // worst relative error at two-separation
	DecayRate   float64 // WorstErr(previous D) / WorstErr(this D)
}

// Table2Result reproduces the parameter-selection and error-decay table.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures, for each integration order, the worst relative error of
// the outer sphere approximation over random two-separation geometries —
// the quantity whose decay rate Anderson's table predicts.
func Table2() *Table2Result {
	rng := rand.New(rand.NewSource(2))
	// Random source cluster in a unit box.
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 40; i++ {
		pos = append(pos, geom.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5})
		q = append(q, rng.Float64())
	}
	truePot := func(x geom.Vec3) float64 {
		var v float64
		for j := range pos {
			v += q[j] / x.Dist(pos[j])
		}
		return v
	}
	res := &Table2Result{}
	prev := 0.0
	for _, d := range []int{2, 3, 5, 7, 9, 11, 13, 15} {
		rule := sphere.ForDegree(d)
		m := (d + 1) / 2
		a := core.DefaultRadiusRatio
		g := make([]float64, rule.K())
		for i, s := range rule.Points {
			g[i] = truePot(s.Scale(a))
		}
		worst := 0.0
		for trial := 0; trial < 200; trial++ {
			dir := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
			// Evaluation points spanning the two-separation band the
			// method actually uses (target inner sphere to box diagonal).
			x := dir.Scale(3.0 - a + (a+0.9)*rng.Float64())
			got := core.EvalOuter(rule, m, geom.Vec3{}, a, g, x)
			rel := math.Abs(got-truePot(x)) / math.Abs(truePot(x))
			if rel > worst {
				worst = rel
			}
		}
		row := Table2Row{D: d, K: rule.K(), M: m, RadiusRatio: a, WorstErr: worst}
		if prev > 0 {
			row.DecayRate = prev / worst
		}
		prev = worst
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String prints the table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %5s %4s %8s %14s %10s\n", "D", "K", "M", "a/side", "worst rel err", "decay")
	for _, row := range r.Rows {
		decay := "-"
		if row.DecayRate > 0 {
			decay = fmt.Sprintf("%.1fx", row.DecayRate)
		}
		fmt.Fprintf(&b, "%4d %5d %4d %8.2f %14.2e %10s\n",
			row.D, row.K, row.M, row.RadiusRatio, row.WorstErr, decay)
	}
	b.WriteString("paper: K=12 at D=5 (exact match), K=72 at D=14 (McLaren rule; substituted by\n")
	b.WriteString("product rules here, ~1.7x more points per degree), error decays geometrically with D\n")
	return section("Table 2: integration order parameters and error decay", b.String())
}
