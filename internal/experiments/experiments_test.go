package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run each generator at reduced scale and assert the
// qualitative shapes the paper reports — who wins, in which direction the
// series move — not absolute numbers.

func TestTable1Shapes(t *testing.T) {
	r, err := Table1(Table1Config{N: 4096, Nodes: 4, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	low, high := r.Rows[0], r.Rows[1]
	// Higher K costs more cycles/particle even at its shallower optimal
	// depth (the paper: 37K vs 183K).
	if high.Report.CyclesPerParticle() <= low.Report.CyclesPerParticle() {
		t.Error("K=72 should cost more cycles/particle")
	}
	// Efficiencies in a plausible band (paper: 27% and 35%).
	for _, row := range r.Rows[:2] {
		e := row.Report.Efficiency()
		if e < 0.05 || e > 0.95 {
			t.Errorf("%s: efficiency %.3f out of band", row.Method, e)
		}
	}
	// The direct baseline's flops/particle is exactly 9(N-1) and grows with
	// N, while Anderson's stays in the paper's 1,000-10,000x constant band;
	// at this small N they are comparable, so only check the direct count.
	if want := float64((r.Cfg.N - 1) * 9); r.Rows[3].FlopsPerParticle != want {
		t.Errorf("direct flops/particle = %g, want %g", r.Rows[3].FlopsPerParticle, want)
	}
	if !strings.Contains(r.String(), "Table 1") {
		t.Error("missing title")
	}
}

func TestTable2Shapes(t *testing.T) {
	r := Table2()
	if len(r.Rows) < 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Error decreases monotonically with order (allowing small plateaus).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].WorstErr > r.Rows[i-1].WorstErr*1.5 {
			t.Errorf("error rose from D=%d (%.2e) to D=%d (%.2e)",
				r.Rows[i-1].D, r.Rows[i-1].WorstErr, r.Rows[i].D, r.Rows[i].WorstErr)
		}
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.WorstErr > first.WorstErr/100 {
		t.Errorf("error should fall by >100x from D=%d to D=%d: %.2e -> %.2e",
			first.D, last.D, first.WorstErr, last.WorstErr)
	}
	// K=12 at D=5 (the paper-exact configuration).
	for _, row := range r.Rows {
		if row.D == 5 && row.K != 12 {
			t.Errorf("D=5 uses K=%d, want 12", row.K)
		}
	}
	if !strings.Contains(r.String(), "decay") {
		t.Error("missing decay column")
	}
}

func TestTable3Shapes(t *testing.T) {
	r, err := Table3(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	k12, k72 := r.Rows[0], r.Rows[1]
	if k12.K != 12 || k72.K != 72 {
		t.Fatalf("K values %d, %d", k12.K, k72.K)
	}
	// Larger K: higher efficiency everywhere; copies hurt small K more.
	if k72.T2Arithmetic <= k12.T2Arithmetic || k72.InclCopy <= k12.InclCopy {
		t.Error("K=72 efficiencies should exceed K=12")
	}
	dropSmall := k12.T2Arithmetic - k12.InclCopy
	dropLarge := k72.T2Arithmetic - k72.InclCopy
	if dropSmall <= dropLarge {
		t.Errorf("copy overhead should hurt K=12 more: drops %.3f vs %.3f", dropSmall, dropLarge)
	}
	for _, row := range r.Rows {
		if row.InclCopyAndMask >= row.InclCopy || row.InclCopy >= row.T2Arithmetic {
			t.Errorf("K=%d: efficiency ordering violated: %+v", row.K, row)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	r, err := Table4(8, 4) // 32 VUs, 16^3 grid, subgrid 8x8x4-ish
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]Table4Row{}
	for _, row := range r.Rows {
		byName[row.Strategy.String()] = row
	}
	du := byName["direct-unaliased"]
	lu := byName["linearized-unaliased"]
	da := byName["direct-aliased"]
	la := byName["linearized-aliased"]
	// Aliased strategies fetch far fewer non-local boxes.
	if da.NonLocalBoxes*4 > lu.NonLocalBoxes || da.NonLocalBoxes*4 > du.NonLocalBoxes {
		t.Errorf("aliased fetches not small: da=%d lu=%d du=%d",
			da.NonLocalBoxes, lu.NonLocalBoxes, du.NonLocalBoxes)
	}
	// Linearized-unaliased beats direct-unaliased (the 7.4x effect).
	if lu.ModelMillis >= du.ModelMillis {
		t.Error("linearized-unaliased should beat direct-unaliased")
	}
	// Linearized-aliased is the fastest overall (fewest shift startups).
	if la.RelativeTime > da.RelativeTime || la.RelativeTime > lu.RelativeTime {
		t.Errorf("linearized-aliased not fastest: %+v", r.Rows)
	}
	if du.RelativeTime != 1.0 {
		t.Errorf("slowest should normalize to 1.0, got %v", du.RelativeTime)
	}
}

func TestFigure7Shapes(t *testing.T) {
	r, err := Figure7(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Speedup <= 1 {
			t.Errorf("level %d: send (%.3e) not slower than two-step (%.3e)",
				p.Level, p.SendSeconds, p.FastSeconds)
		}
	}
	// The largest speedups occur somewhere in the sweep and exceed 10x.
	best := 0.0
	for _, p := range r.Points {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	if best < 10 {
		t.Errorf("best speedup %.1fx, want >10x (paper: up to two orders of magnitude)", best)
	}
}

func TestFigure8Shapes(t *testing.T) {
	r, err := Figure8(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Points {
		if p.Replicate >= p.ComputeAll {
			t.Errorf("K=%d: replicate (%.3e) not below compute-all (%.3e)",
				p.K, p.Replicate, p.ComputeAll)
		}
		if p.ReplicatePortionGrouped >= p.ReplicatePortionUngrouped {
			t.Errorf("K=%d: grouping did not reduce replication", p.K)
		}
	}
	// The advantage grows with K (paper: 66% -> 24% of compute-all).
	first := r.Points[0].Replicate / r.Points[0].ComputeAll
	last := r.Points[len(r.Points)-1].Replicate / r.Points[len(r.Points)-1].ComputeAll
	if last >= first {
		t.Errorf("relative cost should fall with K: %.2f -> %.2f", first, last)
	}
}

func TestFigure9Shapes(t *testing.T) {
	r, err := Figure9([]int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	// For each K, compute+replicate wins, and its parallel-compute portion
	// falls with machine size.
	byK := map[int][]Figure9Point{}
	for _, p := range r.Points {
		byK[p.K] = append(byK[p.K], p)
		if p.Replicate >= p.ComputeAll {
			t.Errorf("nodes=%d K=%d: replicate not faster", p.Nodes, p.K)
		}
	}
	for k, pts := range byK {
		if len(pts) == 2 && pts[1].ParallelComputePortion >= pts[0].ParallelComputePortion {
			t.Errorf("K=%d: parallel compute did not fall with machine size", k)
		}
	}
}

func TestClaimAccuracy(t *testing.T) {
	r, err := ClaimAccuracy(800)
	if err != nil {
		t.Fatal(err)
	}
	if r.LowErr > 1e-3 {
		t.Errorf("D=5 error %.2e, want ~1e-4 band", r.LowErr)
	}
	if r.HighErr > 1e-5 {
		t.Errorf("D=13 error %.2e, want ~1e-6 band", r.HighErr)
	}
	if r.HighErr >= r.LowErr {
		t.Error("high order must beat low order")
	}
	if !strings.Contains(r.String(), "digits") {
		t.Error("missing digits output")
	}
}

func TestClaimScaling(t *testing.T) {
	rn, err := ClaimScalingN(4)
	if err != nil {
		t.Fatal(err)
	}
	// Cycles/particle roughly constant across a 64x N range.
	first := rn.Points[0].Report.CyclesPerParticle()
	last := rn.Points[len(rn.Points)-1].Report.CyclesPerParticle()
	if ratio := last / first; ratio > 2.5 || ratio < 0.4 {
		t.Errorf("cycles/particle varied %0.2fx across N sweep", ratio)
	}

	rp, err := ClaimScalingP(8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Model time falls with machine size.
	for i := 1; i < len(rp.Points); i++ {
		if rp.Points[i].Report.ModelSeconds() >= rp.Points[i-1].Report.ModelSeconds() {
			t.Errorf("model time did not fall from %d to %d nodes",
				rp.Points[i-1].Nodes, rp.Points[i].Nodes)
		}
	}
	if rn.String() == "" || rp.String() == "" {
		t.Error("empty scaling output")
	}
}

func TestClaimOptimalDepth(t *testing.T) {
	r, err := ClaimOptimalDepth(8192)
	if err != nil {
		t.Fatal(err)
	}
	// Near-field flops fall with depth; traversal flops rise.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Near >= r.Points[i-1].Near {
			t.Error("near-field flops should fall with depth")
		}
		if r.Points[i].Traversal <= r.Points[i-1].Traversal {
			t.Error("traversal flops should rise with depth")
		}
	}
}

func TestClaimSupernodes(t *testing.T) {
	r, err := ClaimSupernodes(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) < 2 {
		t.Fatal("missing lines")
	}
	if !strings.Contains(r.String(), "supernodes") {
		t.Error("missing title")
	}
}

func TestClaimAggregation(t *testing.T) {
	r, err := ClaimAggregation(8192)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 3 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
}

func TestClaimMemory(t *testing.T) {
	r, err := ClaimMemory()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Paper figures: 1.53 MB at K=12, 53.9 MB at K=72.
	if r.Rows[0].K != 12 || r.Rows[0].MatrixMB < 1.4 || r.Rows[0].MatrixMB > 1.7 {
		t.Errorf("K=12 row: %+v, want ~1.53 MB", r.Rows[0])
	}
	if r.Rows[1].K != 72 || r.Rows[1].MatrixMB < 50 || r.Rows[1].MatrixMB > 58 {
		t.Errorf("K=72 row: %+v, want ~53.9 MB", r.Rows[1])
	}
	if r.String() == "" {
		t.Error("empty output")
	}
}

func TestClaimReshape(t *testing.T) {
	r, err := ClaimReshape(4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	uniform, clustered := r.Rows[0], r.Rows[1]
	if uniform.LocalPct < 80 {
		t.Errorf("uniform locality %.1f%%, want > 80%%", uniform.LocalPct)
	}
	if clustered.LocalPct > uniform.LocalPct {
		t.Errorf("clustered locality (%.1f%%) should not beat uniform (%.1f%%)",
			clustered.LocalPct, uniform.LocalPct)
	}
}

func TestClaimLoadBalance(t *testing.T) {
	r, err := ClaimLoadBalance(4096)
	if err != nil {
		t.Fatal(err)
	}
	uniform, clustered := r.Rows[0], r.Rows[1]
	if uniform.MaxOverMean > 2.0 {
		t.Errorf("uniform imbalance %.2f, want near 1", uniform.MaxOverMean)
	}
	if clustered.MaxOverMean <= uniform.MaxOverMean {
		t.Errorf("clustering (%.2f) should worsen the balance (uniform %.2f)",
			clustered.MaxOverMean, uniform.MaxOverMean)
	}
}
