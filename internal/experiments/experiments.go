// Package experiments regenerates every data table and figure of Hu &
// Johnsson SC'96 on the simulated machine, plus the quantitative claims of
// the abstract and Section 4. Each experiment returns a structured result
// with a String() printer that shows the measured values next to the
// paper's reported values, and is driven both by cmd/tables and by the
// repository benchmarks. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded outcomes.
package experiments

import (
	"fmt"
	"strings"
)

// section formats a titled block.
func section(title string, body string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	return b.String()
}

// row formats aligned columns.
func row(cols ...interface{}) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case string:
			parts[i] = fmt.Sprintf("%-22s", v)
		case int:
			parts[i] = fmt.Sprintf("%10d", v)
		case int64:
			parts[i] = fmt.Sprintf("%12d", v)
		case float64:
			parts[i] = fmt.Sprintf("%12.4g", v)
		default:
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	return strings.Join(parts, " ")
}
