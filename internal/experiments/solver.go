package experiments

import (
	"nbody/internal/core"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
)

// newDP builds the simulated machine (nodes x 4 VUs, default cost model) and
// a data-parallel solver on it in one call — the pairing every experiment
// constructs. The commands' equivalent plumbing lives in internal/cli, which
// experiments cannot import (it pulls in the public nbody package, which the
// root package's own tests would then import cyclically).
func newDP(nodes int, root geom.Box3, cfg core.Config, strategy dpfmm.GhostStrategy) (*dp.Machine, *dpfmm.Solver, error) {
	m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
	if err != nil {
		return nil, nil, err
	}
	s, err := dpfmm.NewSolver(m, root, cfg, strategy)
	if err != nil {
		return nil, nil, err
	}
	return m, s, nil
}
