package experiments

import (
	"fmt"
	"strings"

	"nbody/internal/core"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
	"nbody/internal/tree"
)

// Table3Row reports the leaf-level arithmetic efficiencies of the
// translation phases for one K, in the paper's four measures.
type Table3Row struct {
	K               int
	T1T3Arithmetic  float64 // parent-child translations, gemm-only
	T2Arithmetic    float64 // interactive-field conversions, gemm-only
	InclCopy        float64 // T2 including the aggregation copies
	InclCopyAndMask float64 // plus the masked (inapplicable) offset slots
}

// Table3Result reproduces the leaf-level efficiency table.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 measures the efficiencies from an actual leaf-level translation
// run on the simulated machine: arithmetic efficiency comes from the
// calibrated gemm model, the copy degradation from the counted aggregation
// copies, and the mask degradation from the counted applicable fraction of
// the union offset cube.
func Table3(nodes, depth int) (*Table3Result, error) {
	if nodes == 0 {
		nodes = 16
	}
	if depth == 0 {
		depth = 4
	}
	root := geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	res := &Table3Result{}
	for _, cc := range []core.Config{
		{Degree: 5, Depth: depth},  // K = 12
		{Degree: 11, Depth: depth}, // K = 72
	} {
		m, s, err := newDP(nodes, root, cc, dpfmm.LinearizedAliased)
		if err != nil {
			return nil, err
		}
		k := s.TS.K
		n := 1 << depth
		far := m.NewGrid3(n, k)
		loc := m.NewGrid3(n, k)
		far.ForEachBox(func(c geom.Coord3, v []float64) {
			for i := range v {
				v[i] = float64(c.X + i)
			}
		})
		m.ResetCounters()
		s.T2Level(far, loc)
		c := m.Counters()
		maxC, _ := m.MaxComputeCycles()

		gemmEff := m.Cost.GemmEfficiency(k)
		// Copy overhead: the aggregation gathers each source vector and
		// scatters each destination once per translation, 2K words each at
		// the copy cost — the 2/K relative overhead of Section 3.3.3.
		applied := float64(c.Flops) / float64(2*k*k)
		copyCycles := applied * 4 * float64(k) * m.Cost.CopyCyclesPerWord
		_ = maxC
		totalCompute := float64(c.Flops) / (m.Cost.FlopsPerCycle * gemmEff)
		effInclCopy := float64(c.Flops) / (totalCompute + copyCycles)
		// Masking: the aggregated data-parallel conversion spans the full
		// union offset cube (1206 offsets for d=2) for every box, but each
		// box's own octant only uses its 875 — the rest are masked slots
		// that still occupy the vector lanes. (Boundary clipping adds a
		// further depth-dependent loss that vanishes at the paper's h=8;
		// the interior factor is the structural one.)
		union := float64(len(tree.UnionInteractiveOffsets(s.Cfg.Separation)))
		perOctant := float64(len(tree.InteractiveOffsets(s.Cfg.Separation, 0)))
		maskFactor := perOctant / union
		effInclMask := effInclCopy * maskFactor
		_ = applied
		_ = n

		// T1/T3: same arithmetic model, copies amortize over whole-octant
		// aggregation (2K per vector, K^2 useful work each).
		t13 := float64(2*k*k) / (float64(2*k*k)/gemmEff + 4*float64(k)*m.Cost.CopyCyclesPerWord)

		res.Rows = append(res.Rows, Table3Row{
			K:               k,
			T1T3Arithmetic:  t13,
			T2Arithmetic:    gemmEff,
			InclCopy:        effInclCopy,
			InclCopyAndMask: effInclMask,
		})
	}
	return res, nil
}

// String prints the table.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s", "operation")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("K=%d", row.K))
	}
	b.WriteByte('\n')
	line := func(name string, get func(Table3Row) float64) {
		fmt.Fprintf(&b, "%-34s", name)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, " %7.0f%%", 100*get(row))
		}
		b.WriteByte('\n')
	}
	line("T1,T3: arithmetic (incl copy)", func(r Table3Row) float64 { return r.T1T3Arithmetic })
	line("T2: arithmetic", func(r Table3Row) float64 { return r.T2Arithmetic })
	line("T2: arithmetic incl copy", func(r Table3Row) float64 { return r.InclCopy })
	line("T2: incl copy and masking", func(r Table3Row) float64 { return r.InclCopyAndMask })
	b.WriteString("paper (K=12, K=72): T1/T3 54%/60%; T2 74%/85%; incl copy 60%/79%; incl copy+mask 44%/74%\n")
	return section("Table 3: leaf-level arithmetic efficiencies", b.String())
}
