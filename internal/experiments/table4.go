package experiments

import (
	"fmt"
	"strings"

	"nbody/internal/core"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
)

// Table4Row is one interactive-field communication strategy's data motion,
// per VU and in box units (one box = K words), matching the paper's
// presentation.
type Table4Row struct {
	Strategy      dpfmm.GhostStrategy
	NonLocalBoxes int64 // boxes fetched from other VUs, per VU
	LocalBoxMoves int64 // boxes copied locally, per VU
	CShifts       int64
	ModelMillis   float64 // modeled communication + copy time
	RelativeTime  float64 // normalized to the slowest strategy
}

// Table4Result reproduces the data-motion comparison.
type Table4Result struct {
	Nodes, Subgrid, K int
	Rows              []Table4Row
}

// Table4 measures the four interactive-field strategies on one leaf-level
// conversion. The default geometry mirrors the paper's: subgrid extents 8
// with ghost regions four deep (16^3 aliased subgrids), K = 12.
func Table4(nodes, depth int) (*Table4Result, error) {
	if nodes == 0 {
		nodes = 16 // 64 VUs: 32^3 boxes -> 8^3 subgrids
	}
	if depth == 0 {
		depth = 5
	}
	root := geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
	cfg := core.Config{Degree: 5, Depth: depth}
	res := &Table4Result{Nodes: nodes}
	for _, strat := range []dpfmm.GhostStrategy{
		DirectUnaliasedStrategy, LinearizedUnaliasedStrategy, DirectAliasedStrategy, LinearizedAliasedStrategy,
	} {
		m, s, err := newDP(nodes, root, cfg, strat)
		if err != nil {
			return nil, err
		}
		k := s.TS.K
		res.K = k
		n := 1 << depth
		far := m.NewGrid3(n, k)
		loc := m.NewGrid3(n, k)
		sx, _, _ := far.SubgridDims()
		res.Subgrid = sx
		far.ForEachBox(func(c geom.Coord3, v []float64) {
			for i := range v {
				v[i] = float64(c.X*7 + c.Y + i)
			}
		})
		m.ResetCounters()
		s.T2Level(far, loc)
		c := m.Counters()
		nvu := int64(m.NumVUs())
		res.Rows = append(res.Rows, Table4Row{
			Strategy:      strat,
			NonLocalBoxes: c.OffVUWords / int64(k) / nvu,
			LocalBoxMoves: c.LocalWords / int64(k) / nvu,
			CShifts:       c.CShifts,
			ModelMillis:   (c.CommCycles() + c.CopyCycles()) / (m.Cost.ClockMHz * 1e3),
		})
	}
	// Normalize relative time to the slowest.
	slowest := 0.0
	for _, r := range res.Rows {
		if r.ModelMillis > slowest {
			slowest = r.ModelMillis
		}
	}
	for i := range res.Rows {
		res.Rows[i].RelativeTime = res.Rows[i].ModelMillis / slowest
	}
	return res, nil
}

// Strategy aliases so callers need not import dpfmm.
const (
	DirectUnaliasedStrategy     = dpfmm.DirectUnaliased
	LinearizedUnaliasedStrategy = dpfmm.LinearizedUnaliased
	DirectAliasedStrategy       = dpfmm.DirectAliased
	LinearizedAliasedStrategy   = dpfmm.LinearizedAliased
)

// String prints the table.
func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d^3 local subgrid, K=%d (paper: 32-node CM-5E, 8^3 subgrid, ghosts in 16^3)\n",
		r.Nodes, r.Subgrid, r.K)
	fmt.Fprintf(&b, "%-24s %16s %16s %10s %14s\n",
		"method", "non-local boxes", "local box moves", "CSHIFTs", "relative time")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %16d %16d %10d %14.3f\n",
			row.Strategy, row.NonLocalBoxes, row.LocalBoxMoves, row.CShifts, row.RelativeTime)
	}
	b.WriteString("paper: direct unaliased worst; linearized unaliased ~7.4x faster than direct;\n")
	b.WriteString("aliased strategies fetch only ~3,584 non-local boxes (per VU) and are fastest\n")
	return section("Table 4: interactive-field data motion by strategy", b.String())
}
