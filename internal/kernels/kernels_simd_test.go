package kernels

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/geom"
	"nbody/internal/simd"
)

// The cross-backend suite for the dispatched near-field kernels: every
// backend must agree with the scalar loops to rounding error on random
// clouds (including source counts exercising the 0-3 scalar tail), must
// exclude coincident particles exactly, must never read past slice length
// (NaN poison planted in the spare capacity of every operand), and must be
// bitwise deterministic run to run.

func withBackend(t testing.TB, name string, f func()) {
	t.Helper()
	prev := simd.Active()
	if err := simd.SetBackend(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatal(err)
		}
	}()
	f()
}

// poisoned returns a slice of length n filled by fill, sitting at the
// front of a larger NaN-poisoned allocation: any vector load straying past
// len(s) drags NaN into an accumulator and fails the comparison tests.
func poisoned(n int, fill func(i int) float64) []float64 {
	buf := make([]float64, n+8)
	for i := range buf {
		buf[i] = math.NaN()
	}
	s := buf[:n]
	for i := range s {
		s[i] = fill(i)
	}
	return s
}

func poisonedVec3(rng *rand.Rand, n int) []geom.Vec3 {
	nan := math.NaN()
	buf := make([]geom.Vec3, n+4)
	for i := range buf {
		buf[i] = geom.Vec3{X: nan, Y: nan, Z: nan}
	}
	s := buf[:n]
	for i := range s {
		s[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	return s
}

// cloud builds one poisoned SoA particle set.
func cloud(rng *rand.Rand, n int) (xs, ys, zs, qs []float64) {
	norm := func(int) float64 { return rng.NormFloat64() }
	return poisoned(n, norm), poisoned(n, norm), poisoned(n, norm), poisoned(n, norm)
}

// sizes covers empty sets, the sub-width counts handled wholly by the
// scalar tail, exact vector multiples, and every tail remainder class.
var sizes = [][2]int{
	{0, 0}, {1, 0}, {0, 5}, {1, 1}, {3, 2}, {5, 4}, {7, 5}, {8, 8},
	{13, 9}, {16, 12}, {20, 17}, {33, 30}, {40, 64},
}

func closeEnough(t *testing.T, kernel string, cnt, scnt int, got, want []float64) {
	t.Helper()
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		if diff/(math.Abs(want[i])+1) > 1e-12 || math.IsNaN(got[i]) != math.IsNaN(want[i]) {
			t.Fatalf("%s cnt=%d scnt=%d: element %d = %g, want %g", kernel, cnt, scnt, i, got[i], want[i])
		}
	}
}

func TestNearFieldSoACrossBackend(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(21))
				for _, sz := range sizes {
					cnt, scnt := sz[0], sz[1]
					xs, ys, zs, qs := cloud(rng, cnt)
					sx, sy, sz3, sq := cloud(rng, scnt)
					fill := func(int) float64 { return rng.NormFloat64() }

					// AccumulatePotentialSoA vs its scalar loop.
					phi := poisoned(cnt, fill)
					want := append([]float64(nil), phi...)
					AccumulatePotentialSoA(xs, ys, zs, phi, sx, sy, sz3, sq)
					accumPotSoAScalar(xs, ys, zs, want, sx, sy, sz3, sq)
					closeEnough(t, "AccumulatePotentialSoA", cnt, scnt, phi, want)

					// AccumulateForceSoA.
					phi = poisoned(cnt, fill)
					gx, gy, gz, _ := cloud(rng, cnt)
					wphi := append([]float64(nil), phi...)
					wgx := append([]float64(nil), gx...)
					wgy := append([]float64(nil), gy...)
					wgz := append([]float64(nil), gz...)
					AccumulateForceSoA(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz3, sq)
					accumForceSoAScalar(xs, ys, zs, wphi, wgx, wgy, wgz, sx, sy, sz3, sq)
					closeEnough(t, "AccumulateForceSoA phi", cnt, scnt, phi, wphi)
					closeEnough(t, "AccumulateForceSoA gx", cnt, scnt, gx, wgx)
					closeEnough(t, "AccumulateForceSoA gy", cnt, scnt, gy, wgy)
					closeEnough(t, "AccumulateForceSoA gz", cnt, scnt, gz, wgz)

					// PairwisePotentialSoA, both deposit sides.
					phi = poisoned(cnt, fill)
					sphi := poisoned(scnt, fill)
					wphi = append([]float64(nil), phi...)
					wsphi := append([]float64(nil), sphi...)
					PairwisePotentialSoA(xs, ys, zs, qs, phi, sx, sy, sz3, sq, sphi)
					pairPotSoAScalar(xs, ys, zs, qs, wphi, sx, sy, sz3, sq, wsphi)
					closeEnough(t, "PairwisePotentialSoA phi", cnt, scnt, phi, wphi)
					closeEnough(t, "PairwisePotentialSoA sphi", cnt, scnt, sphi, wsphi)
				}
			})
		})
	}
}

func TestNearFieldAoSCrossBackend(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(22))
				for _, sz := range sizes {
					cnt, scnt := sz[0], sz[1]
					posA := poisonedVec3(rng, cnt)
					posB := poisonedVec3(rng, scnt)
					qB := poisoned(scnt, func(int) float64 { return rng.NormFloat64() })
					fill := func(int) float64 { return rng.NormFloat64() }

					phi := poisoned(cnt, fill)
					want := append([]float64(nil), phi...)
					Accumulate(posA, phi, posB, qB)
					accumulateScalar(posA, want, posB, qB)
					closeEnough(t, "Accumulate", cnt, scnt, phi, want)

					acc := poisonedVec3(rng, cnt)
					wacc := append([]geom.Vec3(nil), acc...)
					AccumulateForce(posA, acc, posB, qB)
					accumulateForceScalar(posA, wacc, posB, qB)
					for i := range wacc {
						for c, pair := range [3][2]float64{
							{acc[i].X, wacc[i].X}, {acc[i].Y, wacc[i].Y}, {acc[i].Z, wacc[i].Z},
						} {
							diff := math.Abs(pair[0] - pair[1])
							if diff/(math.Abs(pair[1])+1) > 1e-12 {
								t.Fatalf("AccumulateForce cnt=%d scnt=%d: particle %d axis %d = %g, want %g",
									cnt, scnt, i, c, pair[0], pair[1])
							}
						}
					}
				}
			})
		})
	}
}

// TestNearFieldCoincidentExclusion pins the r == 0 guard on every backend:
// a source exactly coincident with a target contributes exactly zero — not
// Inf, not NaN, not a rounded residue — in every lane position of the
// vector width.
func TestNearFieldCoincidentExclusion(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(23))
				for lane := 0; lane < 8; lane++ {
					const scnt = 8
					sx, sy, sz, sq := cloud(rng, scnt)
					// One target coincident with source `lane`, plus one clean target.
					xs := []float64{sx[lane], 0.25}
					ys := []float64{sy[lane], 0.5}
					zs := []float64{sz[lane], 0.75}
					qs := []float64{1.5, -2}

					var wantPhi [2]float64
					for i := 0; i < 2; i++ {
						for j := 0; j < scnt; j++ {
							dx, dy, dz := xs[i]-sx[j], ys[i]-sy[j], zs[i]-sz[j]
							if r2 := dx*dx + dy*dy + dz*dz; r2 > 0 {
								wantPhi[i] += sq[j] / math.Sqrt(r2)
							}
						}
					}

					phi := make([]float64, 2)
					AccumulatePotentialSoA(xs, ys, zs, phi, sx, sy, sz, sq)
					for i := range phi {
						if math.IsInf(phi[i], 0) || math.IsNaN(phi[i]) {
							t.Fatalf("lane %d: coincident source leaked into phi[%d] = %v", lane, i, phi[i])
						}
						if math.Abs(phi[i]-wantPhi[i]) > 1e-12*(math.Abs(wantPhi[i])+1) {
							t.Fatalf("lane %d: phi[%d] = %g, want %g", lane, i, phi[i], wantPhi[i])
						}
					}

					gx, gy, gz := make([]float64, 2), make([]float64, 2), make([]float64, 2)
					phi2 := make([]float64, 2)
					AccumulateForceSoA(xs, ys, zs, phi2, gx, gy, gz, sx, sy, sz, sq)
					sphi := make([]float64, scnt)
					phi3 := make([]float64, 2)
					PairwisePotentialSoA(xs, ys, zs, qs, phi3, sx, sy, sz, sq, sphi)
					posA := []geom.Vec3{{X: xs[0], Y: ys[0], Z: zs[0]}, {X: xs[1], Y: ys[1], Z: zs[1]}}
					posB := make([]geom.Vec3, scnt)
					for j := range posB {
						posB[j] = geom.Vec3{X: sx[j], Y: sy[j], Z: sz[j]}
					}
					phi4 := make([]float64, 2)
					Accumulate(posA, phi4, posB, sq)
					acc := make([]geom.Vec3, 2)
					AccumulateForce(posA, acc, posB, sq)
					for _, v := range [][]float64{gx, gy, gz, phi2, phi3, sphi, phi4,
						{acc[0].X, acc[0].Y, acc[0].Z, acc[1].X, acc[1].Y, acc[1].Z}} {
						for i, x := range v {
							if math.IsInf(x, 0) || math.IsNaN(x) {
								t.Fatalf("lane %d: coincident source leaked Inf/NaN at %d: %v", lane, i, x)
							}
						}
					}
				}
			})
		})
	}
}

// TestNearFieldDeterministicPerBackend runs each dispatched kernel twice
// on identical inputs per backend and requires bitwise-equal outputs: the
// within-backend half of the reproducibility contract.
func TestNearFieldDeterministicPerBackend(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(24))
				cnt, scnt := 33, 31
				xs, ys, zs, qs := cloud(rng, cnt)
				sx, sy, sz, sq := cloud(rng, scnt)
				run := func() ([]float64, []float64) {
					phi := make([]float64, cnt)
					sphi := make([]float64, scnt)
					AccumulatePotentialSoA(xs, ys, zs, phi, sx, sy, sz, sq)
					PairwisePotentialSoA(xs, ys, zs, qs, phi, sx, sy, sz, sq, sphi)
					gx, gy, gz := make([]float64, cnt), make([]float64, cnt), make([]float64, cnt)
					AccumulateForceSoA(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq)
					phi = append(phi, gx...)
					phi = append(phi, gy...)
					phi = append(phi, gz...)
					return phi, sphi
				}
				a1, s1 := run()
				a2, s2 := run()
				for i := range a1 {
					if a1[i] != a2[i] {
						t.Fatalf("nondeterministic target output at %d", i)
					}
				}
				for i := range s1 {
					if s1[i] != s2[i] {
						t.Fatalf("nondeterministic sphi at %d", i)
					}
				}
			})
		})
	}
}

func benchSoA(b *testing.B, cnt int) {
	for _, be := range simd.Supported() {
		b.Run(be, func(b *testing.B) {
			withBackend(b, be, func() {
				rng := rand.New(rand.NewSource(25))
				xs, ys, zs, _ := cloud(rng, cnt)
				sx, sy, sz, sq := cloud(rng, cnt)
				phi := make([]float64, cnt)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					AccumulatePotentialSoA(xs, ys, zs, phi, sx, sy, sz, sq)
				}
				inter := float64(cnt) * float64(cnt) * float64(b.N)
				b.ReportMetric(inter/b.Elapsed().Seconds()/1e6, "Minter/s")
			})
		})
	}
}

func BenchmarkAccumulatePotentialSoA64(b *testing.B) { benchSoA(b, 64) }

func BenchmarkAccumulateForceSoA64(b *testing.B) {
	for _, be := range simd.Supported() {
		b.Run(be, func(b *testing.B) {
			withBackend(b, be, func() {
				rng := rand.New(rand.NewSource(26))
				const cnt = 64
				xs, ys, zs, _ := cloud(rng, cnt)
				sx, sy, sz, sq := cloud(rng, cnt)
				phi := make([]float64, cnt)
				gx, gy, gz := make([]float64, cnt), make([]float64, cnt), make([]float64, cnt)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					AccumulateForceSoA(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq)
				}
				inter := float64(cnt) * float64(cnt) * float64(b.N)
				b.ReportMetric(inter/b.Elapsed().Seconds()/1e6, "Minter/s")
			})
		})
	}
}

func BenchmarkAccumulateAoS64(b *testing.B) {
	for _, be := range simd.Supported() {
		b.Run(be, func(b *testing.B) {
			withBackend(b, be, func() {
				rng := rand.New(rand.NewSource(27))
				const cnt = 64
				posA := poisonedVec3(rng, cnt)
				posB := poisonedVec3(rng, cnt)
				qB := poisoned(cnt, func(int) float64 { return rng.NormFloat64() })
				phi := make([]float64, cnt)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Accumulate(posA, phi, posB, qB)
				}
				inter := float64(cnt) * float64(cnt) * float64(b.N)
				b.ReportMetric(inter/b.Elapsed().Seconds()/1e6, "Minter/s")
			})
		})
	}
}
