package kernels

import "math"

// The SoA kernels operate on the data-parallel FMM's per-box particle
// planes: parallel xs/ys/zs coordinate slices already trimmed to the box's
// occupancy (len(xs) is the particle count). Target attributes come first,
// traveling-source attributes (sx/sy/sz/sq, and sphi for the symmetric
// walk) second.

// WithinPotentialSoA accumulates the intra-box potentials symmetrically,
// visiting each unordered pair once.
func WithinPotentialSoA(xs, ys, zs, qs, phi []float64) {
	cnt := len(xs)
	for i := 0; i < cnt; i++ {
		for j := i + 1; j < cnt; j++ {
			dx, dy, dz := xs[i]-xs[j], ys[i]-ys[j], zs[i]-zs[j]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / math.Sqrt(r2)
			phi[i] += qs[j] * inv
			phi[j] += qs[i] * inv
		}
	}
}

// AccumulatePotentialSoA adds to phi the potentials induced at the target
// box by a traveling source box, one-sided (sources untouched, so parallel
// target boxes never race). Backend-dispatched (dispatch.go).
func AccumulatePotentialSoA(xs, ys, zs, phi, sx, sy, sz, sq []float64) {
	accumPotSoAImpl(xs, ys, zs, phi, sx, sy, sz, sq)
}

func accumPotSoAScalar(xs, ys, zs, phi, sx, sy, sz, sq []float64) {
	cnt, scnt := len(xs), len(sx)
	for i := 0; i < cnt; i++ {
		var acc float64
		for j := 0; j < scnt; j++ {
			dx, dy, dz := xs[i]-sx[j], ys[i]-sy[j], zs[i]-sz[j]
			if r2 := dx*dx + dy*dy + dz*dz; r2 > 0 {
				acc += sq[j] / math.Sqrt(r2)
			}
		}
		phi[i] += acc
	}
}

// PairwisePotentialSoA is the symmetric traveling kernel (Figure 10 of the
// paper): each target particle receives the source box's contribution, and
// the reciprocal contribution is deposited into the traveling accumulator
// sphi, to be shifted home by the caller after the walk.
// Backend-dispatched (dispatch.go).
func PairwisePotentialSoA(xs, ys, zs, qs, phi, sx, sy, sz, sq, sphi []float64) {
	pairPotSoAImpl(xs, ys, zs, qs, phi, sx, sy, sz, sq, sphi)
}

func pairPotSoAScalar(xs, ys, zs, qs, phi, sx, sy, sz, sq, sphi []float64) {
	cnt, scnt := len(xs), len(sx)
	for i := 0; i < cnt; i++ {
		var acc float64
		qi := qs[i]
		for j := 0; j < scnt; j++ {
			dx, dy, dz := xs[i]-sx[j], ys[i]-sy[j], zs[i]-sz[j]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / math.Sqrt(r2)
			acc += sq[j] * inv
			sphi[j] += qi * inv // reciprocal contribution (Newton's third law)
		}
		phi[i] += acc
	}
}

// WithinForceSoA accumulates intra-box potentials and fields symmetrically,
// with the (y-x)/r^3 convention of the force kernels.
func WithinForceSoA(xs, ys, zs, qs, phi, gx, gy, gz []float64) {
	cnt := len(xs)
	for i := 0; i < cnt; i++ {
		for j := i + 1; j < cnt; j++ {
			dx, dy, dz := xs[j]-xs[i], ys[j]-ys[i], zs[j]-zs[i]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			phi[i] += qs[j] * inv
			phi[j] += qs[i] * inv
			gx[i] += qs[j] * dx * inv3
			gy[i] += qs[j] * dy * inv3
			gz[i] += qs[j] * dz * inv3
			gx[j] -= qs[i] * dx * inv3
			gy[j] -= qs[i] * dy * inv3
			gz[j] -= qs[i] * dz * inv3
		}
	}
}

// AccumulateForceSoA adds to phi and the field planes the one-sided
// contribution of a traveling source box. Backend-dispatched (dispatch.go).
func AccumulateForceSoA(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq []float64) {
	accumForceSoAImpl(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq)
}

func accumForceSoAScalar(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq []float64) {
	cnt, scnt := len(xs), len(sx)
	for i := 0; i < cnt; i++ {
		var p, fx, fy, fz float64
		for j := 0; j < scnt; j++ {
			dx, dy, dz := sx[j]-xs[i], sy[j]-ys[i], sz[j]-zs[i]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			p += sq[j] * inv
			fx += sq[j] * dx * inv3
			fy += sq[j] * dy * inv3
			fz += sq[j] * dz * inv3
		}
		phi[i] += p
		gx[i] += fx
		gy[i] += fy
		gz[i] += fz
	}
}
