// Package kernels holds the particle-particle inner kernels of the near
// field, shared by every solver in the repository: the O(N^2) reference
// (package direct), the shared-memory O(N) solver's near sweep, the
// data-parallel FMM's traveling near-field walks, and the 2-D logarithmic
// solver. Each kernel is the innermost double loop over a pair of particle
// sets with the common `r == 0` coincidence guard (self-exclusion semantics:
// coincident particles contribute nothing instead of Inf/NaN).
//
// The kernels come in three layouts matching their callers' storage:
//
//   - AoS ([]geom.Vec3 positions): used by package direct and the
//     shared-memory solver's box-pair sweeps.
//   - SoA (parallel xs/ys/zs float64 slices): used by the data-parallel
//     FMM, whose particle grids store coordinates as separate planes.
//   - 2-D logarithmic (geom.Vec2, -q ln r potential): used by core2.
//
// Bitwise reproducibility contract: the differential tests compare solver
// outputs to tight tolerances (~4e-15 between dpfmm and core), so every
// kernel here preserves the exact loop order, accumulation order, and
// operand sign conventions of the call site it was extracted from. Do not
// "simplify" dx = xs[i]-sx[j] into its negation, reorder accumulations, or
// fuse the reciprocal differently.
package kernels

import (
	"math"

	"nbody/internal/geom"
)

// Pairwise computes the mutual interaction between two disjoint particle
// sets, accumulating potentials on both sides (the box-box near-field
// kernel with Newton's third law). The two sets must not alias.
func Pairwise(posA []geom.Vec3, qA, phiA []float64, posB []geom.Vec3, qB, phiB []float64) {
	for i := range posA {
		pi := posA[i]
		qi := qA[i]
		var s float64
		for j := range posB {
			r := pi.Dist(posB[j])
			if r == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / r
			s += qB[j] * inv
			phiB[j] += qi * inv
		}
		phiA[i] += s
	}
}

// Within accumulates the interactions among the particles of one set into
// phi (the intra-box term of the near field), visiting each pair once.
func Within(pos []geom.Vec3, q, phi []float64) {
	for i := range pos {
		pi := pos[i]
		qi := q[i]
		for j := i + 1; j < len(pos); j++ {
			r := pi.Dist(pos[j])
			if r == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / r
			phi[i] += q[j] * inv
			phi[j] += qi * inv
		}
	}
}

// Accumulate adds to phiA the potentials induced at posA by the source set
// (posB, qB) without touching the sources: the one-sided box-box kernel
// used when target boxes are processed in parallel and Newton's-third-law
// write-back would race. Backend-dispatched (dispatch.go).
func Accumulate(posA []geom.Vec3, phiA []float64, posB []geom.Vec3, qB []float64) {
	accumulateImpl(posA, phiA, posB, qB)
}

func accumulateScalar(posA []geom.Vec3, phiA []float64, posB []geom.Vec3, qB []float64) {
	for i := range posA {
		pi := posA[i]
		var s float64
		for j := range posB {
			if r := pi.Dist(posB[j]); r > 0 {
				s += qB[j] / r
			}
		}
		phiA[i] += s
	}
}

// AccumulateForce adds to accA the field induced at posA by the source set,
// with the (y-x)/r^3 convention. Backend-dispatched (dispatch.go).
func AccumulateForce(posA []geom.Vec3, accA []geom.Vec3, posB []geom.Vec3, qB []float64) {
	accumulateForceImpl(posA, accA, posB, qB)
}

func accumulateForceScalar(posA, accA, posB []geom.Vec3, qB []float64) {
	for i := range posA {
		pi := posA[i]
		a := accA[i]
		for j := range posB {
			d := posB[j].Sub(pi)
			r2 := d.Norm2()
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / (r2 * math.Sqrt(r2))
			a = a.Add(d.Scale(qB[j] * inv))
		}
		accA[i] = a
	}
}

// WithinForce accumulates the intra-set accelerations (self-interactions
// excluded) into acc.
func WithinForce(pos []geom.Vec3, q []float64, acc []geom.Vec3) {
	for i := range pos {
		pi := pos[i]
		for j := i + 1; j < len(pos); j++ {
			d := pos[j].Sub(pi)
			r2 := d.Norm2()
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / (r2 * math.Sqrt(r2))
			f := d.Scale(inv)
			acc[i] = acc[i].Add(f.Scale(q[j]))
			acc[j] = acc[j].Sub(f.Scale(q[i]))
		}
	}
}

// PairwiseForce is the force counterpart of Pairwise: it adds the mutual
// fields of two disjoint particle sets to both sides, with the (y-x)/r^3
// convention. The force pair is equal and opposite, so one kernel
// evaluation (one reciprocal distance cube) serves both boxes. The sets
// must not alias.
func PairwiseForce(posA []geom.Vec3, qA []float64, accA []geom.Vec3, posB []geom.Vec3, qB []float64, accB []geom.Vec3) {
	for i := range posA {
		pi := posA[i]
		qi := qA[i]
		ai := accA[i]
		for j := range posB {
			d := posB[j].Sub(pi)
			r2 := d.Norm2()
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / (r2 * math.Sqrt(r2))
			f := d.Scale(inv)
			ai = ai.Add(f.Scale(qB[j]))
			accB[j] = accB[j].Sub(f.Scale(qi))
		}
		accA[i] = ai
	}
}
