// AVX2/FMA near-field kernels. Each routine vectorizes the source (inner)
// loop of its scalar twin four-wide, keeping the target (outer) loop
// serial, and is only ever called with a source count that is a positive
// multiple of 4 — the Go wrappers in nf_avx2_amd64.go truncate and run the
// 0-3 leftover sources through the scalar kernel, so no masked loads are
// needed and no load touches memory past the truncated count.
//
// The coincident-particle guard (`if r2 == 0 continue` / `if r2 > 0`) is a
// VCMPPD lane mask applied by VANDPD to every value headed for an
// accumulator: a dead lane's Inf or NaN (from dividing by the zero
// distance) is bitwise-ANDed to +0 before it can reach a sum, reproducing
// the scalar exclusion exactly. Kernels that guard with `r2 > 0` compare
// GT_OQ (predicate 30: false on NaN, like the scalar `>`); kernels that
// guard with `r2 == 0 continue` compare NEQ_UQ (predicate 4: true on NaN,
// like the scalar `==` falling through).
//
// Lane partial sums collapse as (l0+l2) + (l1+l3) — VEXTRACTF128 +
// VADDPD + VHADDPD, the same horizontal order as the blas Dgemv kernel —
// which together with the serial outer loop makes every routine
// deterministic: the avx2 half of the per-backend reproducibility
// contract (dispatch.go).

#include "textflag.h"

DATA nfones<>+0(SB)/8, $1.0
DATA nfones<>+8(SB)/8, $1.0
DATA nfones<>+16(SB)/8, $1.0
DATA nfones<>+24(SB)/8, $1.0
GLOBL nfones<>(SB), RODATA|NOPTR, $32

// HSUM collapses the 4 lanes of Yv into lane 0 of its low half Xv as
// (l0+l2) + (l1+l3), clobbering Xt.
#define HSUM(Yv, Xv, Xt) \
	VEXTRACTF128 $1, Yv, Xt \
	VADDPD       Xt, Xv, Xv \
	VHADDPD      Xv, Xv, Xv

// AOSX/AOSY/AOSZ transpose a 4-particle AoS block into coordinate lanes.
// The block is three YMM loads over 96 bytes:
//   Ya = [x0 y0 z0 x1]   Yb = [y1 z1 x2 y2]   Yc = [z2 x3 y3 z3]
// Each macro gathers one coordinate into Yd = [c0 c1 c2 c3] via VPERMPD
// lane selects blended together, clobbering Yt.
#define AOSX(Ya, Yb, Yc, Yd, Yt) \
	VPERMPD  $0x0C, Ya, Yd \
	VPERMPD  $0x20, Yb, Yt \
	VBLENDPD $4, Yt, Yd, Yd \
	VPERMPD  $0x40, Yc, Yt \
	VBLENDPD $8, Yt, Yd, Yd

#define AOSY(Ya, Yb, Yc, Yd, Yt) \
	VPERMPD  $0x01, Ya, Yd \
	VPERMPD  $0x30, Yb, Yt \
	VBLENDPD $6, Yt, Yd, Yd \
	VPERMPD  $0x80, Yc, Yt \
	VBLENDPD $8, Yt, Yd, Yd

#define AOSZ(Ya, Yb, Yc, Yd, Yt) \
	VPERMPD  $0x02, Ya, Yd \
	VPERMPD  $0x04, Yb, Yt \
	VBLENDPD $2, Yt, Yd, Yd \
	VPERMPD  $0xC0, Yc, Yt \
	VBLENDPD $0xC, Yt, Yd, Yd

// func accumPotSoAAVX2(xs, ys, zs, phi *float64, cnt int, sx, sy, sz, sq *float64, scnt int)
// One-sided SoA potential: phi[i] += sum_j sq[j]/r, guard r2 > 0.
TEXT ·accumPotSoAAVX2(SB), NOSPLIT, $0-80
	MOVQ xs+0(FP), SI
	MOVQ ys+8(FP), DI
	MOVQ zs+16(FP), R8
	MOVQ phi+24(FP), R9
	MOVQ cnt+32(FP), R10
	MOVQ sx+40(FP), R11
	MOVQ sy+48(FP), R12
	MOVQ sz+56(FP), R13
	MOVQ sq+64(FP), R14
	MOVQ scnt+72(FP), R15
	SHLQ $3, R15              // source bytes (multiple of 32)
	XORQ AX, AX               // i

psoai:
	CMPQ AX, R10
	JGE  psoadone
	VBROADCASTSD (SI)(AX*8), Y1
	VBROADCASTSD (DI)(AX*8), Y2
	VBROADCASTSD (R8)(AX*8), Y3
	VXORPD Y0, Y0, Y0         // acc
	XORQ   BX, BX             // source byte offset

psoaj:
	VMOVUPD     (R11)(BX*1), Y4
	VSUBPD      Y4, Y1, Y5    // dx = xi - sx
	VMOVUPD     (R12)(BX*1), Y4
	VSUBPD      Y4, Y2, Y6    // dy
	VMOVUPD     (R13)(BX*1), Y4
	VSUBPD      Y4, Y3, Y7    // dz
	VMULPD      Y5, Y5, Y8
	VFMADD231PD Y6, Y6, Y8
	VFMADD231PD Y7, Y7, Y8    // r2
	VXORPD      Y9, Y9, Y9
	VCMPPD      $30, Y9, Y8, Y9 // mask = r2 > 0 (GT_OQ)
	VSQRTPD     Y8, Y8        // r
	VMOVUPD     (R14)(BX*1), Y4
	VDIVPD      Y8, Y4, Y4    // sq / r
	VANDPD      Y9, Y4, Y4    // dead lanes -> +0
	VADDPD      Y4, Y0, Y0
	ADDQ        $32, BX
	CMPQ        BX, R15
	JLT         psoaj

	HSUM(Y0, X0, X5)
	VADDSD (R9)(AX*8), X0, X0
	VMOVSD X0, (R9)(AX*8)
	INCQ   AX
	JMP    psoai

psoadone:
	VZEROUPPER
	RET

// func accumForceSoAAVX2(xs, ys, zs, phi, gx, gy, gz *float64, cnt int, sx, sy, sz, sq *float64, scnt int)
// One-sided SoA potential+field: d = source - target, inv = 1/r,
// inv3 = inv/r2, guard r2 != 0.
TEXT ·accumForceSoAAVX2(SB), NOSPLIT, $0-104
	MOVQ xs+0(FP), SI
	MOVQ ys+8(FP), DI
	MOVQ zs+16(FP), R8
	MOVQ cnt+56(FP), R10
	MOVQ sx+64(FP), R11
	MOVQ sy+72(FP), R12
	MOVQ sz+80(FP), R13
	MOVQ sq+88(FP), R14
	MOVQ scnt+96(FP), R15
	SHLQ $3, R15
	XORQ AX, AX

fsoai:
	CMPQ AX, R10
	JGE  fsoadone
	VBROADCASTSD (SI)(AX*8), Y4
	VBROADCASTSD (DI)(AX*8), Y5
	VBROADCASTSD (R8)(AX*8), Y6
	VXORPD Y0, Y0, Y0         // p
	VXORPD Y1, Y1, Y1         // fx
	VXORPD Y2, Y2, Y2         // fy
	VXORPD Y3, Y3, Y3         // fz
	XORQ   BX, BX

fsoaj:
	VMOVUPD     (R11)(BX*1), Y7
	VSUBPD      Y4, Y7, Y7    // dx = sx - xi
	VMOVUPD     (R12)(BX*1), Y8
	VSUBPD      Y5, Y8, Y8    // dy
	VMOVUPD     (R13)(BX*1), Y9
	VSUBPD      Y6, Y9, Y9    // dz
	VMULPD      Y7, Y7, Y10
	VFMADD231PD Y8, Y8, Y10
	VFMADD231PD Y9, Y9, Y10   // r2
	VXORPD      Y11, Y11, Y11
	VCMPPD      $4, Y11, Y10, Y11 // mask = r2 != 0 (NEQ_UQ)
	VSQRTPD     Y10, Y12      // r
	VMOVUPD     nfones<>(SB), Y13
	VDIVPD      Y12, Y13, Y12 // inv = 1/r
	VDIVPD      Y10, Y12, Y13 // inv3 = inv/r2
	VMOVUPD     (R14)(BX*1), Y14 // sq
	VMULPD      Y12, Y14, Y12 // sq*inv
	VANDPD      Y11, Y12, Y12
	VADDPD      Y12, Y0, Y0   // p += sq*inv
	VMULPD      Y13, Y14, Y13 // w = sq*inv3
	VANDPD      Y11, Y13, Y13
	VFMADD231PD Y7, Y13, Y1   // fx += w*dx
	VFMADD231PD Y8, Y13, Y2
	VFMADD231PD Y9, Y13, Y3
	ADDQ        $32, BX
	CMPQ        BX, R15
	JLT         fsoaj

	HSUM(Y0, X0, X13)
	MOVQ   phi+24(FP), CX
	VADDSD (CX)(AX*8), X0, X0
	VMOVSD X0, (CX)(AX*8)
	HSUM(Y1, X1, X13)
	MOVQ   gx+32(FP), CX
	VADDSD (CX)(AX*8), X1, X1
	VMOVSD X1, (CX)(AX*8)
	HSUM(Y2, X2, X13)
	MOVQ   gy+40(FP), CX
	VADDSD (CX)(AX*8), X2, X2
	VMOVSD X2, (CX)(AX*8)
	HSUM(Y3, X3, X13)
	MOVQ   gz+48(FP), CX
	VADDSD (CX)(AX*8), X3, X3
	VMOVSD X3, (CX)(AX*8)
	INCQ   AX
	JMP    fsoai

fsoadone:
	VZEROUPPER
	RET

// func pairPotSoAAVX2(xs, ys, zs, qs, phi *float64, cnt int, sx, sy, sz, sq, sphi *float64, scnt int)
// Symmetric traveling SoA potential: phi[i] += sum sq[j]*inv and
// sphi[j] += qs[i]*inv, guard r2 != 0.
TEXT ·pairPotSoAAVX2(SB), NOSPLIT, $0-96
	MOVQ xs+0(FP), SI
	MOVQ ys+8(FP), DI
	MOVQ zs+16(FP), R8
	MOVQ cnt+40(FP), R10
	MOVQ sx+48(FP), R11
	MOVQ sy+56(FP), R12
	MOVQ sz+64(FP), R13
	MOVQ sq+72(FP), R14
	MOVQ sphi+80(FP), CX
	MOVQ scnt+88(FP), R15
	SHLQ $3, R15
	XORQ AX, AX

pairi:
	CMPQ AX, R10
	JGE  pairdone
	VBROADCASTSD (SI)(AX*8), Y4
	VBROADCASTSD (DI)(AX*8), Y5
	VBROADCASTSD (R8)(AX*8), Y6
	MOVQ         qs+24(FP), DX
	VBROADCASTSD (DX)(AX*8), Y7 // qi
	VXORPD       Y0, Y0, Y0     // acc
	XORQ         BX, BX

pairj:
	VMOVUPD     (R11)(BX*1), Y8
	VSUBPD      Y8, Y4, Y8    // dx = xi - sx
	VMOVUPD     (R12)(BX*1), Y9
	VSUBPD      Y9, Y5, Y9    // dy
	VMOVUPD     (R13)(BX*1), Y10
	VSUBPD      Y10, Y6, Y10  // dz
	VMULPD      Y8, Y8, Y11
	VFMADD231PD Y9, Y9, Y11
	VFMADD231PD Y10, Y10, Y11 // r2
	VXORPD      Y12, Y12, Y12
	VCMPPD      $4, Y12, Y11, Y12 // mask = r2 != 0 (NEQ_UQ)
	VSQRTPD     Y11, Y11      // r
	VMOVUPD     nfones<>(SB), Y13
	VDIVPD      Y11, Y13, Y11 // inv = 1/r
	VANDPD      Y12, Y11, Y11 // masked inv serves both deposits
	VMOVUPD     (R14)(BX*1), Y13
	VFMADD231PD Y11, Y13, Y0  // acc += sq*inv
	VMOVUPD     (CX)(BX*1), Y13
	VFMADD231PD Y7, Y11, Y13  // sphi += qi*inv
	VMOVUPD     Y13, (CX)(BX*1)
	ADDQ        $32, BX
	CMPQ        BX, R15
	JLT         pairj

	HSUM(Y0, X0, X13)
	MOVQ   phi+32(FP), DX
	VADDSD (DX)(AX*8), X0, X0
	VMOVSD X0, (DX)(AX*8)
	INCQ   AX
	JMP    pairi

pairdone:
	VZEROUPPER
	RET

// func accumPotAoSAVX2(pa *geom.Vec3, phi *float64, cnt int, pb *geom.Vec3, q *float64, scnt int)
// One-sided AoS potential: phi[i] += sum q[j]/r, guard r > 0. Source
// positions are 24-byte Vec3 structs, transposed 4 at a time.
TEXT ·accumPotAoSAVX2(SB), NOSPLIT, $0-48
	MOVQ   pa+0(FP), SI
	MOVQ   phi+8(FP), DI
	MOVQ   cnt+16(FP), R10
	MOVQ   pb+24(FP), R11
	MOVQ   q+32(FP), R14
	MOVQ   scnt+40(FP), R15
	IMUL3Q $24, R15, R15      // source position bytes

paosi:
	TESTQ R10, R10
	JZ    paosdone
	VBROADCASTSD (SI), Y1     // xi
	VBROADCASTSD 8(SI), Y2    // yi
	VBROADCASTSD 16(SI), Y3   // zi
	VXORPD Y0, Y0, Y0         // acc
	XORQ   BX, BX             // position byte offset
	XORQ   CX, CX             // charge byte offset

paosj:
	VMOVUPD (R11)(BX*1), Y4   // x0 y0 z0 x1
	VMOVUPD 32(R11)(BX*1), Y5 // y1 z1 x2 y2
	VMOVUPD 64(R11)(BX*1), Y6 // z2 x3 y3 z3
	AOSX(Y4, Y5, Y6, Y7, Y10)
	AOSY(Y4, Y5, Y6, Y8, Y10)
	AOSZ(Y4, Y5, Y6, Y9, Y10)
	VSUBPD      Y7, Y1, Y7    // dx = xi - bx
	VSUBPD      Y8, Y2, Y8
	VSUBPD      Y9, Y3, Y9
	VMULPD      Y7, Y7, Y10
	VFMADD231PD Y8, Y8, Y10
	VFMADD231PD Y9, Y9, Y10   // r2
	VXORPD      Y11, Y11, Y11
	VCMPPD      $30, Y11, Y10, Y11 // mask = r2 > 0 (GT_OQ)
	VSQRTPD     Y10, Y10      // r
	VMOVUPD     (R14)(CX*1), Y4
	VDIVPD      Y10, Y4, Y4   // q / r
	VANDPD      Y11, Y4, Y4
	VADDPD      Y4, Y0, Y0
	ADDQ        $96, BX
	ADDQ        $32, CX
	CMPQ        BX, R15
	JLT         paosj

	HSUM(Y0, X0, X5)
	VADDSD (DI), X0, X0
	VMOVSD X0, (DI)
	ADDQ   $24, SI
	ADDQ   $8, DI
	DECQ   R10
	JMP    paosi

paosdone:
	VZEROUPPER
	RET

// func accumForceAoSAVX2(pa, acc *geom.Vec3, cnt int, pb *geom.Vec3, q *float64, scnt int)
// One-sided AoS field: acc[i] += sum (b-a) * q[j]/(r2*r), guard r2 != 0.
TEXT ·accumForceAoSAVX2(SB), NOSPLIT, $0-48
	MOVQ   pa+0(FP), SI
	MOVQ   acc+8(FP), DI
	MOVQ   cnt+16(FP), R10
	MOVQ   pb+24(FP), R11
	MOVQ   q+32(FP), R14
	MOVQ   scnt+40(FP), R15
	IMUL3Q $24, R15, R15

faosi:
	TESTQ R10, R10
	JZ    faosdone
	VBROADCASTSD (SI), Y3     // xi
	VBROADCASTSD 8(SI), Y4    // yi
	VBROADCASTSD 16(SI), Y5   // zi
	VXORPD Y0, Y0, Y0         // fx
	VXORPD Y1, Y1, Y1         // fy
	VXORPD Y2, Y2, Y2         // fz
	XORQ   BX, BX
	XORQ   CX, CX

faosj:
	VMOVUPD (R11)(BX*1), Y6
	VMOVUPD 32(R11)(BX*1), Y7
	VMOVUPD 64(R11)(BX*1), Y8
	AOSX(Y6, Y7, Y8, Y9, Y12)
	AOSY(Y6, Y7, Y8, Y10, Y12)
	AOSZ(Y6, Y7, Y8, Y11, Y12)
	VSUBPD      Y3, Y9, Y9    // dx = bx - xi
	VSUBPD      Y4, Y10, Y10  // dy
	VSUBPD      Y5, Y11, Y11  // dz
	VMULPD      Y9, Y9, Y12
	VFMADD231PD Y10, Y10, Y12
	VFMADD231PD Y11, Y11, Y12 // r2
	VXORPD      Y13, Y13, Y13
	VCMPPD      $4, Y13, Y12, Y13 // mask = r2 != 0 (NEQ_UQ)
	VSQRTPD     Y12, Y14      // r
	VMULPD      Y14, Y12, Y14 // r2*r
	VMOVUPD     nfones<>(SB), Y6
	VDIVPD      Y14, Y6, Y6   // inv = 1/(r2*r)
	VMOVUPD     (R14)(CX*1), Y7
	VMULPD      Y6, Y7, Y7    // w = q*inv
	VANDPD      Y13, Y7, Y7
	VFMADD231PD Y9, Y7, Y0    // fx += w*dx
	VFMADD231PD Y10, Y7, Y1
	VFMADD231PD Y11, Y7, Y2
	ADDQ        $96, BX
	ADDQ        $32, CX
	CMPQ        BX, R15
	JLT         faosj

	HSUM(Y0, X0, X13)
	VADDSD (DI), X0, X0
	VMOVSD X0, (DI)
	HSUM(Y1, X1, X13)
	VADDSD 8(DI), X1, X1
	VMOVSD X1, 8(DI)
	HSUM(Y2, X2, X13)
	VADDSD 16(DI), X2, X2
	VMOVSD X2, 16(DI)
	ADDQ   $24, SI
	ADDQ   $24, DI
	DECQ   R10
	JMP    faosi

faosdone:
	VZEROUPPER
	RET
