package kernels

import "nbody/internal/geom"

// Go-side bindings of the AVX2/FMA near-field kernels (nf_avx2_amd64.s).
// Each wrapper hands the assembly a source count truncated to a multiple
// of four — the assembly's contract: no masked loads, never reads past the
// truncated count — and feeds the 0-3 leftover sources through the scalar
// kernel on sliced source operands, which appends the tail contributions
// after the vector ones in a fixed order (determinism preserved). The
// assembly is skipped entirely when either side of the truncated loop is
// empty, so no empty slice is ever dereferenced.

//go:noescape
func accumPotSoAAVX2(xs, ys, zs, phi *float64, cnt int, sx, sy, sz, sq *float64, scnt int)

//go:noescape
func accumForceSoAAVX2(xs, ys, zs, phi, gx, gy, gz *float64, cnt int, sx, sy, sz, sq *float64, scnt int)

//go:noescape
func pairPotSoAAVX2(xs, ys, zs, qs, phi *float64, cnt int, sx, sy, sz, sq, sphi *float64, scnt int)

//go:noescape
func accumPotAoSAVX2(pa *geom.Vec3, phi *float64, cnt int, pb *geom.Vec3, q *float64, scnt int)

//go:noescape
func accumForceAoSAVX2(pa, acc *geom.Vec3, cnt int, pb *geom.Vec3, q *float64, scnt int)

// haveAVX2 reports that this build carries the AVX2 kernels; whether the
// host can run them is internal/simd's call (dispatch.go consults both).
const haveAVX2 = true

func bindAVX2() {
	accumulateImpl = accumulateVec
	accumulateForceImpl = accumulateForceVec
	accumPotSoAImpl = accumPotSoAVec
	accumForceSoAImpl = accumForceSoAVec
	pairPotSoAImpl = pairPotSoAVec
}

func accumulateVec(posA []geom.Vec3, phiA []float64, posB []geom.Vec3, qB []float64) {
	cnt, scnt := len(posA), len(posB)
	s4 := scnt &^ 3
	if cnt > 0 && s4 > 0 {
		accumPotAoSAVX2(&posA[0], &phiA[0], cnt, &posB[0], &qB[0], s4)
	}
	if s4 < scnt {
		accumulateScalar(posA, phiA, posB[s4:], qB[s4:])
	}
}

func accumulateForceVec(posA, accA, posB []geom.Vec3, qB []float64) {
	cnt, scnt := len(posA), len(posB)
	s4 := scnt &^ 3
	if cnt > 0 && s4 > 0 {
		accumForceAoSAVX2(&posA[0], &accA[0], cnt, &posB[0], &qB[0], s4)
	}
	if s4 < scnt {
		accumulateForceScalar(posA, accA, posB[s4:], qB[s4:])
	}
}

func accumPotSoAVec(xs, ys, zs, phi, sx, sy, sz, sq []float64) {
	cnt, scnt := len(xs), len(sx)
	s4 := scnt &^ 3
	if cnt > 0 && s4 > 0 {
		accumPotSoAAVX2(&xs[0], &ys[0], &zs[0], &phi[0], cnt, &sx[0], &sy[0], &sz[0], &sq[0], s4)
	}
	if s4 < scnt {
		accumPotSoAScalar(xs, ys, zs, phi, sx[s4:], sy[s4:], sz[s4:], sq[s4:])
	}
}

func accumForceSoAVec(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq []float64) {
	cnt, scnt := len(xs), len(sx)
	s4 := scnt &^ 3
	if cnt > 0 && s4 > 0 {
		accumForceSoAAVX2(&xs[0], &ys[0], &zs[0], &phi[0], &gx[0], &gy[0], &gz[0], cnt,
			&sx[0], &sy[0], &sz[0], &sq[0], s4)
	}
	if s4 < scnt {
		accumForceSoAScalar(xs, ys, zs, phi, gx, gy, gz, sx[s4:], sy[s4:], sz[s4:], sq[s4:])
	}
}

func pairPotSoAVec(xs, ys, zs, qs, phi, sx, sy, sz, sq, sphi []float64) {
	cnt, scnt := len(xs), len(sx)
	s4 := scnt &^ 3
	if cnt > 0 && s4 > 0 {
		pairPotSoAAVX2(&xs[0], &ys[0], &zs[0], &qs[0], &phi[0], cnt,
			&sx[0], &sy[0], &sz[0], &sq[0], &sphi[0], s4)
	}
	if s4 < scnt {
		pairPotSoAScalar(xs, ys, zs, qs, phi, sx[s4:], sy[s4:], sz[s4:], sq[s4:], sphi[s4:])
	}
}
