package kernels

import (
	"math"

	"nbody/internal/geom"
)

// The 2-D kernels evaluate the logarithmic potential phi = -q ln r used by
// the core2 solver. Particles are addressed through index lists into the
// shared pos/q/phi arrays (the counting-sort permutation slices), matching
// core2's box layout.

// LogAccumulate adds to phi[j] (j in tgt) the -q ln r contribution of every
// source particle in src, one-sided. Coincident pairs are skipped.
func LogAccumulate(pos []geom.Vec2, q, phi []float64, tgt, src []int) {
	for _, j := range tgt {
		for _, i2 := range src {
			if r := pos[j].Dist(pos[i2]); r > 0 {
				phi[j] -= q[i2] * math.Log(r)
			}
		}
	}
}

// LogWithin accumulates the intra-box -q ln r interactions of the particles
// in idx, skipping self-pairs. Coincident particles contribute nothing
// (self-exclusion semantics) instead of ln 0 = -Inf.
func LogWithin(pos []geom.Vec2, q, phi []float64, idx []int) {
	for _, j := range idx {
		for _, i2 := range idx {
			if i2 == j {
				continue
			}
			if r := pos[j].Dist(pos[i2]); r > 0 {
				phi[j] -= q[i2] * math.Log(r)
			}
		}
	}
}
