package kernels

import (
	"nbody/internal/geom"
	"nbody/internal/simd"
)

// This file is the backend seam of the near-field layer. The five hottest
// kernels — the one-sided and traveling double loops, where the near field
// spends almost all of its time — route through the function pointers
// below, and applyBackend rebinds them when internal/simd switches
// backends. The symmetric within-box kernels stay scalar: their triangular
// iteration and two-sided write-back vectorize poorly and they touch at
// most one box occupancy (~tens of particles) per call.
//
// Reduction orders (the per-backend reproducibility contract):
//
//   - scalar: per target particle, source terms accumulate one at a time,
//     ascending j, exactly as written in kernels.go / soa.go.
//   - avx2: sources are processed in groups of four; within a group the
//     four lanes hold j, j+1, j+2, j+3, lane partial sums combine as
//     (l0+l2) + (l1+l3), the remaining 0-3 sources are added by the scalar
//     tail, and multiply-accumulates fuse (FMA). The coincident-particle
//     guard is a compare mask that forces dead lanes to +0 before they
//     reach an accumulator, so r == 0 sources contribute exactly nothing,
//     same as the scalar `continue`.
//
// Within one backend repeated calls are bitwise identical; across backends
// results differ by rounding only, bounded by kernels_simd_test.go and the
// solver-level differential suite.
var (
	accumulateImpl      func(posA []geom.Vec3, phiA []float64, posB []geom.Vec3, qB []float64) = accumulateScalar
	accumulateForceImpl func(posA, accA, posB []geom.Vec3, qB []float64)                       = accumulateForceScalar
	accumPotSoAImpl     func(xs, ys, zs, phi, sx, sy, sz, sq []float64)                        = accumPotSoAScalar
	accumForceSoAImpl   func(xs, ys, zs, phi, gx, gy, gz, sx, sy, sz, sq []float64)            = accumForceSoAScalar
	pairPotSoAImpl      func(xs, ys, zs, qs, phi, sx, sy, sz, sq, sphi []float64)              = pairPotSoAScalar
)

func init() { simd.Register(applyBackend) }

// applyBackend rebinds the kernel seams for the named backend; unknown
// names degrade to the portable scalar loops (see the blas twin for why).
func applyBackend(name string) {
	if name == simd.AVX2 && haveAVX2 {
		bindAVX2()
		return
	}
	bindScalar()
}

func bindScalar() {
	accumulateImpl = accumulateScalar
	accumulateForceImpl = accumulateForceScalar
	accumPotSoAImpl = accumPotSoAScalar
	accumForceSoAImpl = accumForceSoAScalar
	pairPotSoAImpl = pairPotSoAScalar
}
