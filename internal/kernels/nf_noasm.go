//go:build !amd64

package kernels

// Portable builds carry no vector kernels: internal/simd never reports the
// avx2 backend as supported off amd64, so bindAVX2 is unreachable and the
// scalar loops remain the only binding.
const haveAVX2 = false

func bindAVX2() {}
