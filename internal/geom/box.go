package geom

import "fmt"

// Box3 is an axis-aligned cube identified by its center and side length.
// Non-adaptive hierarchical methods only ever deal in cubes (the paper's
// rectangular/parallelepipedic extension changes constants, not structure),
// so a single side length suffices.
type Box3 struct {
	Center Vec3
	Side   float64
}

// Contains reports whether p lies in the half-open cube [lo, lo+Side) in each
// coordinate. Half-open boxes make the leaf-assignment of particles unique.
func (b Box3) Contains(p Vec3) bool {
	h := b.Side / 2
	return p.X >= b.Center.X-h && p.X < b.Center.X+h &&
		p.Y >= b.Center.Y-h && p.Y < b.Center.Y+h &&
		p.Z >= b.Center.Z-h && p.Z < b.Center.Z+h
}

// Child returns the child cube with octant index oct in [0,8). Bit 0 of oct
// selects the +X half, bit 1 the +Y half, bit 2 the +Z half.
func (b Box3) Child(oct int) Box3 {
	q := b.Side / 4
	c := b.Center
	if oct&1 != 0 {
		c.X += q
	} else {
		c.X -= q
	}
	if oct&2 != 0 {
		c.Y += q
	} else {
		c.Y -= q
	}
	if oct&4 != 0 {
		c.Z += q
	} else {
		c.Z -= q
	}
	return Box3{Center: c, Side: b.Side / 2}
}

// CircumRadius returns the radius of the sphere circumscribing the cube,
// sqrt(3)/2 * Side. Anderson's outer/inner sphere radii are expressed as a
// multiple of this radius.
func (b Box3) CircumRadius() float64 { return sqrt3over2 * b.Side }

const sqrt3over2 = 0.8660254037844386467637231707529361834714026269051903140

// String implements fmt.Stringer.
func (b Box3) String() string { return fmt.Sprintf("Box3{c=%v s=%g}", b.Center, b.Side) }

// Box2 is an axis-aligned square identified by its center and side length.
type Box2 struct {
	Center Vec2
	Side   float64
}

// Contains reports whether p lies in the half-open square.
func (b Box2) Contains(p Vec2) bool {
	h := b.Side / 2
	return p.X >= b.Center.X-h && p.X < b.Center.X+h &&
		p.Y >= b.Center.Y-h && p.Y < b.Center.Y+h
}

// Child returns the child square with quadrant index q in [0,4). Bit 0 of q
// selects the +X half, bit 1 the +Y half.
func (b Box2) Child(q int) Box2 {
	o := b.Side / 4
	c := b.Center
	if q&1 != 0 {
		c.X += o
	} else {
		c.X -= o
	}
	if q&2 != 0 {
		c.Y += o
	} else {
		c.Y -= o
	}
	return Box2{Center: c, Side: b.Side / 2}
}

// CircumRadius returns the radius of the circle circumscribing the square,
// sqrt(2)/2 * Side.
func (b Box2) CircumRadius() float64 { return sqrt2over2 * b.Side }

const sqrt2over2 = 0.7071067811865475244008443621048490392848359376884740365

// String implements fmt.Stringer.
func (b Box2) String() string { return fmt.Sprintf("Box2{c=%v s=%g}", b.Center, b.Side) }
