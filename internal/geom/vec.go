// Package geom provides the small geometric and index-arithmetic vocabulary
// shared by every other package in this repository: 2-D and 3-D vectors,
// axis-aligned boxes, power-of-two grid coordinate math, Morton (bit
// interleaved) codes, and the VU-address / local-memory-address bit splits
// used by the data-parallel layouts of Hu & Johnsson (SC'96), Figures 4-5.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or displacement in three dimensions.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length |v|^2.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Normalize returns v/|v|, or the zero vector when v is zero. The zero case
// arises on degenerate inputs (coincident particles feeding a zero
// separation); returning zero keeps those solves finite — the near-field
// kernels treat coincident pairs as self-interactions — instead of
// propagating a panic or Inf through the pipeline.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Vec2 is a point or displacement in two dimensions (used by the 2-D variant
// of Anderson's method; the paper notes the 2-D and 3-D codes are nearly
// identical).
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product v . w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length |v|.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length |v|^2.
func (v Vec2) Norm2() float64 { return v.Dot(v) }

// Dist returns |v - w|.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Angle returns atan2(Y, X).
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%g, %g)", v.X, v.Y) }
