package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec3Arithmetic(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{-4, 5, 0.5}
	if got := v.Add(w); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	z := Vec3{0, 0, 1}
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z cross x = %v, want y", got)
	}
}

func TestVec3CrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int16) bool {
		a := Vec3{float64(ax) / 128, float64(ay) / 128, float64(az) / 128}
		b := Vec3{float64(bx) / 128, float64(by) / 128, float64(bz) / 128}
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return almostEq(c.Dot(a)/scale, 0, 1e-9) && almostEq(c.Dot(b)/scale, 0, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec3NormAndNormalize(t *testing.T) {
	v := Vec3{3, 4, 12}
	if got := v.Norm(); got != 13 {
		t.Errorf("Norm = %v, want 13", got)
	}
	if got := v.Norm2(); got != 169 {
		t.Errorf("Norm2 = %v, want 169", got)
	}
	u := v.Normalize()
	if !almostEq(u.Norm(), 1, 1e-15) {
		t.Errorf("|Normalize| = %v", u.Norm())
	}
}

func TestVec3NormalizeZeroIsZero(t *testing.T) {
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(zero) = %v, want zero vector", got)
	}
}

func TestVec3Dist(t *testing.T) {
	if got := (Vec3{1, 1, 1}).Dist(Vec3{1, 1, 3}); got != 2 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVec2Arithmetic(t *testing.T) {
	v := Vec2{1, 2}
	w := Vec2{3, -4}
	if got := v.Add(w); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(-1); got != (Vec2{-1, -2}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec2{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec2{3, 4}).Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := (Vec2{0, 1}).Angle(); !almostEq(got, math.Pi/2, 1e-15) {
		t.Errorf("Angle = %v", got)
	}
	if got := (Vec2{0, 0}).Dist(Vec2{3, 4}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecStrings(t *testing.T) {
	if got := (Vec3{1, 2, 3}).String(); got != "(1, 2, 3)" {
		t.Errorf("Vec3.String = %q", got)
	}
	if got := (Vec2{1, 2}).String(); got != "(1, 2)" {
		t.Errorf("Vec2.String = %q", got)
	}
}
