package geom

import "fmt"

// Coord3 is an integer box coordinate (ix, iy, iz) on a regular grid of
// boxes, 0 <= ix < 2^level etc. for a hierarchy level.
type Coord3 struct {
	X, Y, Z int
}

// Add returns c + d.
func (c Coord3) Add(d Coord3) Coord3 { return Coord3{c.X + d.X, c.Y + d.Y, c.Z + d.Z} }

// In reports whether c lies in the grid [0,n)^3.
func (c Coord3) In(n int) bool {
	return c.X >= 0 && c.X < n && c.Y >= 0 && c.Y < n && c.Z >= 0 && c.Z < n
}

// ChebDist returns the Chebyshev (max-axis) distance between c and d. Two
// boxes at the same level are in each other's d-separation near field iff
// their Chebyshev distance is at most d.
func (c Coord3) ChebDist(d Coord3) int {
	return max3(abs(c.X-d.X), abs(c.Y-d.Y), abs(c.Z-d.Z))
}

// Parent returns the coordinate of the parent box one level up.
func (c Coord3) Parent() Coord3 { return Coord3{c.X >> 1, c.Y >> 1, c.Z >> 1} }

// Octant returns which child of its parent c is, matching Box3.Child.
func (c Coord3) Octant() int { return (c.X & 1) | (c.Y&1)<<1 | (c.Z&1)<<2 }

// Child returns the child coordinate at octant oct one level down.
func (c Coord3) Child(oct int) Coord3 {
	return Coord3{c.X<<1 | oct&1, c.Y<<1 | oct>>1&1, c.Z<<1 | oct>>2&1}
}

// Index returns the row-major flat index of c in an n x n x n grid
// (z slowest, x fastest).
func (c Coord3) Index(n int) int { return (c.Z*n+c.Y)*n + c.X }

// CoordFromIndex inverts Coord3.Index.
func CoordFromIndex(i, n int) Coord3 {
	return Coord3{X: i % n, Y: i / n % n, Z: i / (n * n)}
}

// String implements fmt.Stringer.
func (c Coord3) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Coord2 is an integer box coordinate on a 2-D grid.
type Coord2 struct {
	X, Y int
}

// Add returns c + d.
func (c Coord2) Add(d Coord2) Coord2 { return Coord2{c.X + d.X, c.Y + d.Y} }

// In reports whether c lies in the grid [0,n)^2.
func (c Coord2) In(n int) bool { return c.X >= 0 && c.X < n && c.Y >= 0 && c.Y < n }

// ChebDist returns the Chebyshev distance between c and d.
func (c Coord2) ChebDist(d Coord2) int { return max2(abs(c.X-d.X), abs(c.Y-d.Y)) }

// Parent returns the coordinate of the parent box one level up.
func (c Coord2) Parent() Coord2 { return Coord2{c.X >> 1, c.Y >> 1} }

// Quadrant returns which child of its parent c is, matching Box2.Child.
func (c Coord2) Quadrant() int { return (c.X & 1) | (c.Y&1)<<1 }

// Child returns the child coordinate at quadrant q one level down.
func (c Coord2) Child(q int) Coord2 { return Coord2{c.X<<1 | q&1, c.Y<<1 | q>>1&1} }

// Index returns the row-major flat index of c in an n x n grid.
func (c Coord2) Index(n int) int { return c.Y*n + c.X }

// Coord2FromIndex inverts Coord2.Index.
func Coord2FromIndex(i, n int) Coord2 { return Coord2{X: i % n, Y: i / n} }

// String implements fmt.Stringer.
func (c Coord2) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// BoxOf3 returns the coordinate of the leaf box containing point p in a
// hierarchy whose root box is root refined level times (grid of side
// 2^level). Points on or beyond the upper domain face are clamped into the
// boundary box so that every particle in the closed root box is assigned.
func BoxOf3(p Vec3, root Box3, level int) Coord3 {
	n := 1 << level
	h := root.Side / 2
	inv := float64(n) / root.Side
	c := Coord3{
		X: clamp(int((p.X-(root.Center.X-h))*inv), n),
		Y: clamp(int((p.Y-(root.Center.Y-h))*inv), n),
		Z: clamp(int((p.Z-(root.Center.Z-h))*inv), n),
	}
	return c
}

// BoxOf2 is the 2-D analogue of BoxOf3.
func BoxOf2(p Vec2, root Box2, level int) Coord2 {
	n := 1 << level
	h := root.Side / 2
	inv := float64(n) / root.Side
	return Coord2{
		X: clamp(int((p.X-(root.Center.X-h))*inv), n),
		Y: clamp(int((p.Y-(root.Center.Y-h))*inv), n),
	}
}

// BoxCenter3 returns the cube of box c at the given level of the hierarchy
// rooted at root.
func BoxCenter3(c Coord3, root Box3, level int) Box3 {
	n := 1 << level
	s := root.Side / float64(n)
	lo := root.Center.Sub(Vec3{root.Side / 2, root.Side / 2, root.Side / 2})
	return Box3{
		Center: lo.Add(Vec3{(float64(c.X) + 0.5) * s, (float64(c.Y) + 0.5) * s, (float64(c.Z) + 0.5) * s}),
		Side:   s,
	}
}

// BoxCenter2 is the 2-D analogue of BoxCenter3.
func BoxCenter2(c Coord2, root Box2, level int) Box2 {
	n := 1 << level
	s := root.Side / float64(n)
	lo := root.Center.Sub(Vec2{root.Side / 2, root.Side / 2})
	return Box2{
		Center: lo.Add(Vec2{(float64(c.X) + 0.5) * s, (float64(c.Y) + 0.5) * s}),
		Side:   s,
	}
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int) int { return max2(max2(a, b), c) }
