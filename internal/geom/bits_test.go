package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024, 1 << 30} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestLog2(t *testing.T) {
	for k := 0; k < 40; k++ {
		if got := Log2(1 << k); got != k {
			t.Errorf("Log2(2^%d) = %d", k, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2(3) should panic")
		}
	}()
	Log2(3)
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := CeilPow2(in); got != want {
			t.Errorf("CeilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAxisSplitRoundTrip(t *testing.T) {
	a := AxisSplit{VUBits: 3, LocalBits: 4}
	if a.Extent() != 128 {
		t.Fatalf("Extent = %d", a.Extent())
	}
	for x := 0; x < a.Extent(); x++ {
		vu, local := a.Split(x)
		if vu < 0 || vu >= 8 || local < 0 || local >= 16 {
			t.Fatalf("Split(%d) = (%d,%d) out of range", x, vu, local)
		}
		if got := a.Join(vu, local); got != x {
			t.Fatalf("Join(Split(%d)) = %d", x, got)
		}
	}
}

func TestBalancedLayout3(t *testing.T) {
	l := BalancedLayout3(32, 64) // 32^3 boxes over 64 VUs: 2 VU bits per axis
	px, py, pz := l.VUGrid()
	if px != 4 || py != 4 || pz != 4 {
		t.Errorf("VUGrid = %d,%d,%d, want 4,4,4", px, py, pz)
	}
	sx, sy, sz := l.Subgrid()
	if sx != 8 || sy != 8 || sz != 8 {
		t.Errorf("Subgrid = %d,%d,%d, want 8,8,8", sx, sy, sz)
	}
	if l.NumVUs() != 64 {
		t.Errorf("NumVUs = %d", l.NumVUs())
	}

	// Uneven split: 32 VUs = 2^5 over 3 axes -> bits (z,y,x) = (2,2,1).
	l = BalancedLayout3(32, 32)
	px, py, pz = l.VUGrid()
	if pz != 4 || py != 4 || px != 2 {
		t.Errorf("uneven VUGrid = %d,%d,%d, want 2,4,4 (x,y,z)", px, py, pz)
	}
	// X keeps the longest local extent.
	sx, sy, sz = l.Subgrid()
	if sx != 16 || sy != 8 || sz != 8 {
		t.Errorf("uneven Subgrid = %d,%d,%d", sx, sy, sz)
	}
}

func TestBalancedLayout3TooManyVUsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when VUs exceed boxes")
		}
	}()
	BalancedLayout3(2, 16)
}

func TestLayoutVUAndLocalCoverAllBoxes(t *testing.T) {
	l := BalancedLayout3(16, 8)
	n := 16
	counts := make(map[int]int)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				c := Coord3{x, y, z}
				vu := l.VUOf(c)
				if vu < 0 || vu >= l.NumVUs() {
					t.Fatalf("VUOf(%v) = %d out of range", c, vu)
				}
				counts[vu]++
			}
		}
	}
	// Block distribution: every VU owns the same number of boxes.
	want := n * n * n / l.NumVUs()
	for vu, got := range counts {
		if got != want {
			t.Fatalf("VU %d owns %d boxes, want %d", vu, got, want)
		}
	}
}

func TestSortKeyOrdersVUMajor(t *testing.T) {
	// Sorting coordinates by SortKey must group all boxes of VU 0 before all
	// boxes of VU 1, etc. — that is the property the coordinate sort of
	// Section 3.2 relies on for communication-free reshaping.
	l := BalancedLayout3(8, 8)
	n := 8
	var coords []Coord3
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				coords = append(coords, Coord3{x, y, z})
			}
		}
	}
	sort.Slice(coords, func(i, j int) bool {
		return l.SortKey(coords[i]) < l.SortKey(coords[j])
	})
	lastVU := -1
	for _, c := range coords {
		vu := l.VUOf(c)
		if vu < lastVU {
			t.Fatalf("sorted order visits VU %d after VU %d", vu, lastVU)
		}
		lastVU = vu
	}
	// Keys are unique per box.
	seen := make(map[uint64]bool)
	for _, c := range coords {
		k := l.SortKey(c)
		if seen[k] {
			t.Fatalf("duplicate sort key for %v", c)
		}
		seen[k] = true
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint16) bool {
		c := Coord3{int(x & 0x3ff), int(y & 0x3ff), int(z & 0x3ff)}
		return UnMorton3(Morton3(c)) == c
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMortonPreservesOctantNesting(t *testing.T) {
	// The high bits of a Morton code are the parent's Morton code.
	c := Coord3{5, 3, 6}
	p := c.Parent()
	if Morton3(c)>>3 != Morton3(p) {
		t.Errorf("Morton(%v)>>3 != Morton(parent %v)", c, p)
	}
}
