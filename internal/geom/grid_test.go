package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoord3ParentChildRoundTrip(t *testing.T) {
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				c := Coord3{x, y, z}
				p := c.Parent()
				oct := c.Octant()
				if got := p.Child(oct); got != c {
					t.Fatalf("Parent/Child round trip failed for %v: parent=%v oct=%d got=%v", c, p, oct, got)
				}
			}
		}
	}
}

func TestCoord3OctantMatchesBoxChild(t *testing.T) {
	// The integer octant convention must agree with the geometric Box3.Child
	// convention: refining the root box and locating child centers must give
	// the coordinate produced by Coord3.Child.
	root := Box3{Center: Vec3{0, 0, 0}, Side: 2}
	for oct := 0; oct < 8; oct++ {
		child := root.Child(oct)
		c := BoxOf3(child.Center, root, 1)
		want := Coord3{0, 0, 0}.Child(oct)
		if c != want {
			t.Errorf("oct %d: geometric coord %v, integer coord %v", oct, c, want)
		}
	}
}

func TestCoord3IndexRoundTrip(t *testing.T) {
	n := 8
	seen := make(map[int]bool)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				c := Coord3{x, y, z}
				i := c.Index(n)
				if i < 0 || i >= n*n*n {
					t.Fatalf("index out of range: %v -> %d", c, i)
				}
				if seen[i] {
					t.Fatalf("duplicate index %d", i)
				}
				seen[i] = true
				if got := CoordFromIndex(i, n); got != c {
					t.Fatalf("round trip %v -> %d -> %v", c, i, got)
				}
			}
		}
	}
}

func TestCoord3ChebDist(t *testing.T) {
	a := Coord3{1, 2, 3}
	b := Coord3{4, 2, 1}
	if got := a.ChebDist(b); got != 3 {
		t.Errorf("ChebDist = %d, want 3", got)
	}
	if got := a.ChebDist(a); got != 0 {
		t.Errorf("ChebDist self = %d", got)
	}
}

func TestCoord3In(t *testing.T) {
	if !(Coord3{0, 0, 0}).In(4) || !(Coord3{3, 3, 3}).In(4) {
		t.Error("boundary coords should be in grid")
	}
	if (Coord3{-1, 0, 0}).In(4) || (Coord3{0, 4, 0}).In(4) {
		t.Error("out-of-range coords reported in grid")
	}
}

func TestBoxOf3AssignsAllPoints(t *testing.T) {
	root := Box3{Center: Vec3{0.5, 0.5, 0.5}, Side: 1}
	rng := rand.New(rand.NewSource(3))
	level := 3
	for i := 0; i < 2000; i++ {
		p := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		c := BoxOf3(p, root, level)
		if !c.In(1 << level) {
			t.Fatalf("BoxOf3(%v) = %v out of grid", p, c)
		}
		// The box geometrically contains the point.
		b := BoxCenter3(c, root, level)
		if !b.Contains(p) {
			t.Fatalf("box %v (%v) does not contain %v", c, b, p)
		}
	}
	// Upper boundary clamps into the last box.
	c := BoxOf3(Vec3{1, 1, 1}, root, level)
	if c != (Coord3{7, 7, 7}) {
		t.Errorf("boundary point assigned to %v, want (7,7,7)", c)
	}
}

func TestBoxCenter3MatchesRecursiveRefinement(t *testing.T) {
	root := Box3{Center: Vec3{1, -2, 0.5}, Side: 4}
	// Descend three levels by octants, compare against direct computation.
	c := Coord3{0, 0, 0}
	b := root
	path := []int{5, 2, 7}
	for _, oct := range path {
		c = c.Child(oct)
		b = b.Child(oct)
	}
	got := BoxCenter3(c, root, len(path))
	if got.Center.Dist(b.Center) > 1e-12 || !almostEq(got.Side, b.Side, 1e-12) {
		t.Errorf("BoxCenter3 = %v, want %v", got, b)
	}
}

func TestCoord2ParentChildRoundTrip(t *testing.T) {
	f := func(x, y uint8) bool {
		c := Coord2{int(x), int(y)}
		return c.Parent().Child(c.Quadrant()) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoord2IndexRoundTrip(t *testing.T) {
	n := 16
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := Coord2{x, y}
			if got := Coord2FromIndex(c.Index(n), n); got != c {
				t.Fatalf("round trip failed for %v", c)
			}
		}
	}
}

func TestBoxOf2AssignsAllPoints(t *testing.T) {
	root := Box2{Center: Vec2{0, 0}, Side: 2}
	rng := rand.New(rand.NewSource(4))
	level := 4
	for i := 0; i < 2000; i++ {
		p := Vec2{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		c := BoxOf2(p, root, level)
		if !c.In(1 << level) {
			t.Fatalf("BoxOf2(%v) = %v out of grid", p, c)
		}
		b := BoxCenter2(c, root, level)
		if !b.Contains(p) {
			t.Fatalf("box %v does not contain %v", c, p)
		}
	}
}

func TestCoord2ChebDist(t *testing.T) {
	if got := (Coord2{0, 0}).ChebDist(Coord2{-2, 1}); got != 2 {
		t.Errorf("ChebDist = %d", got)
	}
}

func TestCoordStrings(t *testing.T) {
	if got := (Coord3{1, 2, 3}).String(); got != "(1,2,3)" {
		t.Errorf("Coord3.String = %q", got)
	}
	if got := (Coord2{1, 2}).String(); got != "(1,2)" {
		t.Errorf("Coord2.String = %q", got)
	}
}
