package geom

import "math/bits"

// This file implements the address-bit manipulations of the paper's data
// layouts. On the CM-5/5E a block-allocated axis of extent 2^(p+n) over 2^p
// VUs splits its address field b_{p+n-1}..b_0 into a VU address (high p bits)
// and a local memory address (low n bits); Figure 4 of the paper. The
// coordinate sort of Section 3.2 builds sort keys by concatenating the VU
// address fields of all axes (most significant) with the local memory
// address fields (least significant), Figure 5.

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns log2(n) for a positive power of two n; it panics otherwise.
// Grid extents and machine sizes in this codebase are powers of two by
// construction (non-adaptive hierarchy, CM-style machine), so a non-power
// argument is a program bug.
func Log2(n int) int {
	if !IsPow2(n) {
		panic("geom: Log2 of non power of two")
	}
	return bits.TrailingZeros(uint(n))
}

// CeilPow2 returns the smallest power of two >= n (n >= 1).
func CeilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n - 1)))
}

// AxisSplit describes the block-allocation address split of one axis: the
// extent 2^(VUBits+LocalBits), with the high VUBits selecting the VU along
// this axis and the low LocalBits selecting the position within the VU's
// subgrid.
type AxisSplit struct {
	VUBits    int
	LocalBits int
}

// Extent returns the axis extent 2^(VUBits+LocalBits).
func (a AxisSplit) Extent() int { return 1 << (a.VUBits + a.LocalBits) }

// Split decomposes an axis coordinate into (vu, local) parts.
func (a AxisSplit) Split(x int) (vu, local int) {
	return x >> a.LocalBits, x & (1<<a.LocalBits - 1)
}

// Join is the inverse of Split.
func (a AxisSplit) Join(vu, local int) int { return vu<<a.LocalBits | local }

// Layout3 is the block layout of a 3-D grid of boxes over a 3-D grid of VUs:
// one AxisSplit per axis. It implements the paper's coordinate-sort key
// construction.
type Layout3 struct {
	X, Y, Z AxisSplit
}

// VUOf returns the flat VU index owning box coordinate c, with the X axis
// using the lowest-order VU address bits (the CM convention exploited by the
// paper's shift ordering: adjacent low-order VU addresses are adjacent
// nodes).
func (l Layout3) VUOf(c Coord3) int {
	vx, _ := l.X.Split(c.X)
	vy, _ := l.Y.Split(c.Y)
	vz, _ := l.Z.Split(c.Z)
	return (vz<<l.Y.VUBits|vy)<<l.X.VUBits | vx
}

// LocalOf returns the flat local-memory index of box coordinate c within its
// VU subgrid (row-major, x fastest).
func (l Layout3) LocalOf(c Coord3) int {
	_, lx := l.X.Split(c.X)
	_, ly := l.Y.Split(c.Y)
	_, lz := l.Z.Split(c.Z)
	return (lz<<l.Y.LocalBits|ly)<<l.X.LocalBits | lx
}

// SortKey returns the coordinate-sort key of Section 3.2 / Figure 5:
// z..zy..yx..x (VU addresses) concatenated with z..zy..yx..x (local memory
// addresses). Sorting particles by this key places particles of the same box
// together AND orders boxes by owning VU first, so a sorted 1-D particle
// array block-distributed over the VUs aligns with the 4-D potential array.
func (l Layout3) SortKey(c Coord3) uint64 {
	vx, lx := l.X.Split(c.X)
	vy, ly := l.Y.Split(c.Y)
	vz, lz := l.Z.Split(c.Z)
	vu := uint64((vz<<l.Y.VUBits|vy)<<l.X.VUBits | vx)
	local := uint64((lz<<l.Y.LocalBits|ly)<<l.X.LocalBits | lx)
	return vu<<(l.X.LocalBits+l.Y.LocalBits+l.Z.LocalBits) | local
}

// Subgrid returns the per-VU subgrid extents (Sx, Sy, Sz).
func (l Layout3) Subgrid() (sx, sy, sz int) {
	return 1 << l.X.LocalBits, 1 << l.Y.LocalBits, 1 << l.Z.LocalBits
}

// VUGrid returns the VU grid extents (Px, Py, Pz).
func (l Layout3) VUGrid() (px, py, pz int) {
	return 1 << l.X.VUBits, 1 << l.Y.VUBits, 1 << l.Z.VUBits
}

// NumVUs returns the total number of VUs.
func (l Layout3) NumVUs() int { return 1 << (l.X.VUBits + l.Y.VUBits + l.Z.VUBits) }

// BalancedLayout3 distributes a cubic grid of extent n=2^k over nvu=2^p VUs
// the way the Connection Machine run-time system does by default: balance
// subgrid extents to minimize the surface-to-volume ratio. VU bits are dealt
// to the axes as evenly as possible, extra bits going to Z first, then Y
// (so X, the fastest-varying axis, keeps the longest local extent).
func BalancedLayout3(n, nvu int) Layout3 {
	k := Log2(n)
	p := Log2(nvu)
	if p > 3*k {
		panic("geom: more VUs than boxes")
	}
	base := p / 3
	rem := p % 3
	zb, yb, xb := base, base, base
	if rem >= 1 {
		zb++
	}
	if rem >= 2 {
		yb++
	}
	return Layout3{
		X: AxisSplit{VUBits: xb, LocalBits: k - xb},
		Y: AxisSplit{VUBits: yb, LocalBits: k - yb},
		Z: AxisSplit{VUBits: zb, LocalBits: k - zb},
	}
}

// Morton3 interleaves the low bits of (x,y,z) into a Morton code, x in the
// least significant position. Used for locality-preserving particle orders
// and tests.
func Morton3(c Coord3) uint64 {
	return spread3(uint64(c.X)) | spread3(uint64(c.Y))<<1 | spread3(uint64(c.Z))<<2
}

// UnMorton3 inverts Morton3.
func UnMorton3(m uint64) Coord3 {
	return Coord3{
		X: int(compact3(m)),
		Y: int(compact3(m >> 1)),
		Z: int(compact3(m >> 2)),
	}
}

func spread3(x uint64) uint64 {
	x &= 0x1fffff // 21 bits
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

func compact3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x1f0000ff0000ff
	x = (x | x>>16) & 0x1f00000000ffff
	x = (x | x>>32) & 0x1fffff
	return x
}
