package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBox3Contains(t *testing.T) {
	b := Box3{Center: Vec3{0, 0, 0}, Side: 2}
	cases := []struct {
		p  Vec3
		in bool
	}{
		{Vec3{0, 0, 0}, true},
		{Vec3{-1, -1, -1}, true}, // lower corner included
		{Vec3{1, 0, 0}, false},   // upper face excluded (half-open)
		{Vec3{0.999, 0.999, 0.999}, true},
		{Vec3{0, 0, 1.5}, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
}

func TestBox3ChildrenTileParent(t *testing.T) {
	b := Box3{Center: Vec3{1, 2, 3}, Side: 4}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		p := Vec3{
			b.Center.X + (rng.Float64()-0.5)*b.Side,
			b.Center.Y + (rng.Float64()-0.5)*b.Side,
			b.Center.Z + (rng.Float64()-0.5)*b.Side,
		}
		n := 0
		for oct := 0; oct < 8; oct++ {
			if b.Child(oct).Contains(p) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("point %v contained in %d children, want exactly 1", p, n)
		}
	}
}

func TestBox3ChildGeometry(t *testing.T) {
	b := Box3{Center: Vec3{0, 0, 0}, Side: 2}
	c := b.Child(0) // -X, -Y, -Z octant
	if c.Side != 1 {
		t.Errorf("child side = %v, want 1", c.Side)
	}
	want := Vec3{-0.5, -0.5, -0.5}
	if c.Center != want {
		t.Errorf("child(0) center = %v, want %v", c.Center, want)
	}
	c7 := b.Child(7)
	if c7.Center != (Vec3{0.5, 0.5, 0.5}) {
		t.Errorf("child(7) center = %v", c7.Center)
	}
	// Octant bit semantics: bit0 -> +X, bit1 -> +Y, bit2 -> +Z.
	c5 := b.Child(5)
	if c5.Center != (Vec3{0.5, -0.5, 0.5}) {
		t.Errorf("child(5) center = %v", c5.Center)
	}
}

func TestBox3CircumRadius(t *testing.T) {
	b := Box3{Side: 2}
	want := math.Sqrt(3)
	if !almostEq(b.CircumRadius(), want, 1e-15) {
		t.Errorf("CircumRadius = %v, want %v", b.CircumRadius(), want)
	}
}

func TestBox2ChildrenTileParent(t *testing.T) {
	b := Box2{Center: Vec2{-1, 5}, Side: 8}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		p := Vec2{
			b.Center.X + (rng.Float64()-0.5)*b.Side,
			b.Center.Y + (rng.Float64()-0.5)*b.Side,
		}
		n := 0
		for q := 0; q < 4; q++ {
			if b.Child(q).Contains(p) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("point %v contained in %d children, want exactly 1", p, n)
		}
	}
}

func TestBox2CircumRadius(t *testing.T) {
	b := Box2{Side: 2}
	want := math.Sqrt(2)
	if !almostEq(b.CircumRadius(), want, 1e-15) {
		t.Errorf("CircumRadius = %v, want %v", b.CircumRadius(), want)
	}
}

func TestBoxStrings(t *testing.T) {
	if got := (Box3{Center: Vec3{0, 0, 0}, Side: 1}).String(); got == "" {
		t.Error("empty Box3 string")
	}
	if got := (Box2{Center: Vec2{0, 0}, Side: 1}).String(); got == "" {
		t.Error("empty Box2 string")
	}
}
