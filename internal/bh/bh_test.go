package bh

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/direct"
	"nbody/internal/geom"
)

func unitBox() geom.Box3 {
	return geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
}

func randomSystem(rng *rand.Rand, n int) ([]geom.Vec3, []float64) {
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64()
	}
	return pos, q
}

func relErr(got, want []float64) float64 {
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	return math.Sqrt(rms/float64(len(got))) / (mean / float64(len(got)))
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(unitBox(), make([]geom.Vec3, 2), make([]float64, 1), Config{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Build(unitBox(), []geom.Vec3{{X: 5}}, []float64{1}, Config{}); err == nil {
		t.Error("out-of-box particle accepted")
	}
}

func TestSmallSystemsExact(t *testing.T) {
	// With theta tiny, BH degenerates to the direct sum.
	rng := rand.New(rand.NewSource(61))
	pos, q := randomSystem(rng, 100)
	tr, err := Build(unitBox(), pos, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	phi, _ := tr.Potentials(Config{Theta: 1e-9})
	want := direct.Potentials(pos, q)
	for i := range phi {
		if math.Abs(phi[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("theta->0 mismatch at %d: %g vs %g", i, phi[i], want[i])
		}
	}
}

func TestMonopoleAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pos, q := randomSystem(rng, 3000)
	tr, err := Build(unitBox(), pos, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	phi, st := tr.Potentials(Config{Theta: 0.5})
	want := direct.PotentialsParallel(pos, q)
	if e := relErr(phi, want); e > 2e-3 {
		t.Errorf("monopole theta=0.5 error %.2e", e)
	}
	if st.CellInteractions == 0 || st.ParticleInteractions == 0 {
		t.Error("no traversal statistics")
	}
}

func TestQuadrupoleBeatsMonopole(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pos, q := randomSystem(rng, 3000)
	tr, err := Build(unitBox(), pos, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(pos, q)
	mono, _ := tr.Potentials(Config{Theta: 0.7})
	quad, _ := tr.Potentials(Config{Theta: 0.7, Quadrupole: true})
	em, eq := relErr(mono, want), relErr(quad, want)
	if eq >= em {
		t.Errorf("quadrupole (%.2e) does not beat monopole (%.2e)", eq, em)
	}
}

func TestThetaTradeoff(t *testing.T) {
	// Smaller theta: more work, more accuracy.
	rng := rand.New(rand.NewSource(64))
	pos, q := randomSystem(rng, 2000)
	tr, err := Build(unitBox(), pos, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(pos, q)
	philo, stlo := tr.Potentials(Config{Theta: 0.9, Quadrupole: true})
	phihi, sthi := tr.Potentials(Config{Theta: 0.4, Quadrupole: true})
	if relErr(phihi, want) >= relErr(philo, want) {
		t.Errorf("theta=0.4 error %.2e not better than theta=0.9 %.2e",
			relErr(phihi, want), relErr(philo, want))
	}
	if sthi.TotalFlops() <= stlo.TotalFlops() {
		t.Errorf("theta=0.4 flops %d not larger than theta=0.9 %d",
			sthi.TotalFlops(), stlo.TotalFlops())
	}
}

func TestTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	pos, q := randomSystem(rng, 1000)
	tr, err := Build(unitBox(), pos, q, Config{LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() < 1000/4 {
		t.Errorf("suspiciously few nodes: %d", tr.NumNodes())
	}
	d := tr.MaxDepth()
	if d < 2 || d > 20 {
		t.Errorf("depth = %d for 1000 uniform particles", d)
	}
}

func TestPotentialAtPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	pos, q := randomSystem(rng, 500)
	tr, err := Build(unitBox(), pos, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	x := geom.Vec3{X: 3, Y: 3, Z: 3} // far outside: monopole should nail it
	got := tr.PotentialAtPoint(x, Config{Theta: 0.5, Quadrupole: true})
	want := direct.PotentialAt(x, pos, q)
	if math.Abs(got-want)/want > 1e-4 {
		t.Errorf("far point: %g vs %g", got, want)
	}
}

func TestSingleAndEmptyCells(t *testing.T) {
	// Two particles: root has two single-particle leaves; everything must
	// still work.
	pos := []geom.Vec3{{X: 0.1, Y: 0.1, Z: 0.1}, {X: 0.9, Y: 0.9, Z: 0.9}}
	q := []float64{1, 2}
	tr, err := Build(unitBox(), pos, q, Config{LeafCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	phi, _ := tr.Potentials(Config{Theta: 0.1})
	want := direct.Potentials(pos, q)
	for i := range phi {
		if math.Abs(phi[i]-want[i]) > 1e-12 {
			t.Errorf("phi[%d] = %g, want %g", i, phi[i], want[i])
		}
	}
}

func TestChargeNeutralCells(t *testing.T) {
	// Exactly cancelling charges in a cell: total q = 0, com falls back to
	// the geometric center, and the quadrupole still carries information.
	pos := []geom.Vec3{
		{X: 0.24, Y: 0.25, Z: 0.25}, {X: 0.26, Y: 0.25, Z: 0.25},
		{X: 0.75, Y: 0.75, Z: 0.75},
	}
	q := []float64{1, -1, 1}
	tr, err := Build(unitBox(), pos, q, Config{LeafCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	phi, _ := tr.Potentials(Config{Theta: 0.3, Quadrupole: true})
	want := direct.Potentials(pos, q)
	for i := range phi {
		if math.Abs(phi[i]-want[i]) > 0.05*(1+math.Abs(want[i])) {
			t.Errorf("phi[%d] = %g, want %g", i, phi[i], want[i])
		}
	}
}

func TestClusteredDistribution(t *testing.T) {
	// BH is adaptive: a tight cluster plus sparse background must work and
	// produce a deep tree.
	rng := rand.New(rand.NewSource(67))
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 500; i++ {
		pos = append(pos, geom.Vec3{
			X: 0.5 + 1e-3*rng.NormFloat64(),
			Y: 0.5 + 1e-3*rng.NormFloat64(),
			Z: 0.5 + 1e-3*rng.NormFloat64(),
		})
		q = append(q, 1)
	}
	for i := 0; i < 100; i++ {
		pos = append(pos, geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()})
		q = append(q, 1)
	}
	tr, err := Build(unitBox(), pos, q, Config{LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() < 6 {
		t.Errorf("cluster should force a deep tree, got depth %d", tr.MaxDepth())
	}
	phi, _ := tr.Potentials(Config{Theta: 0.4, Quadrupole: true})
	want := direct.PotentialsParallel(pos, q)
	if e := relErr(phi, want); e > 1e-2 {
		t.Errorf("clustered error %.2e", e)
	}
}
