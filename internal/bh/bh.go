// Package bh implements the Barnes-Hut O(N log N) hierarchical N-body
// method with monopole + quadrupole cell expansions, the baseline against
// which the paper's Table 1 compares Anderson's O(N) method (the
// Salmon/Warren and Liu/Bhatt rows). The implementation follows the
// classic formulation: an adaptive octree over the particles, and per
// particle a traversal that accepts a cell when s/d < theta (s cell side,
// d distance to the cell's center of mass) and otherwise opens it.
package bh

import (
	"fmt"
	"sync/atomic"

	"nbody/internal/blas"
	"nbody/internal/geom"
)

// node is one octree cell. Children are indices into the tree's node slice
// (-1 when absent); leaves with a single particle carry its index.
type node struct {
	center geom.Vec3 // geometric center of the cell
	side   float64
	com    geom.Vec3 // expansion center (charge centroid, clamped into the cell)
	q      float64   // total charge
	// dip is the dipole moment about com. It vanishes when com is the true
	// charge-weighted centroid, but for (near-)neutral cells com falls
	// back to the geometric center and the dipole carries the leading
	// far-field term — essential for plasma-like signed-charge systems.
	dip geom.Vec3
	// quad is the traceless quadrupole tensor about com, stored as
	// (xx, yy, zz, xy, xz, yz).
	quad     [6]float64
	children [8]int32
	particle int32 // >= 0 for single-particle leaves
	count    int32
}

// Tree is a Barnes-Hut octree built over a particle set.
type Tree struct {
	nodes []node
	pos   []geom.Vec3
	q     []float64

	// LeafCap is the number of particles below which a cell is stored as a
	// bucket rather than subdivided further.
	leafCap int
	buckets map[int32][]int32
}

// Config controls tree construction and traversal.
type Config struct {
	// Theta is the opening-angle acceptance parameter; 0 selects 0.6.
	Theta float64
	// LeafCap is the bucket size; 0 selects 8.
	LeafCap int
	// Quadrupole enables quadrupole terms (the paper's baseline rows use
	// quadrupole accuracy).
	Quadrupole bool
}

func (c Config) normalize() Config {
	if c.Theta == 0 {
		c.Theta = 0.6
	}
	if c.LeafCap == 0 {
		c.LeafCap = 8
	}
	return c
}

// Build constructs the octree for the particles inside root.
func Build(root geom.Box3, pos []geom.Vec3, q []float64, cfg Config) (*Tree, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("bh: %d positions but %d charges", len(pos), len(q))
	}
	cfg = cfg.normalize()
	t := &Tree{pos: pos, q: q, leafCap: cfg.LeafCap, buckets: make(map[int32][]int32)}
	idx := make([]int32, len(pos))
	for i := range idx {
		idx[i] = int32(i)
		if !root.Contains(pos[i]) && !onClosedBox(root, pos[i]) {
			return nil, fmt.Errorf("bh: particle %v outside root %v", pos[i], root)
		}
	}
	t.build(root, idx)
	t.computeMoments(0)
	return t, nil
}

func onClosedBox(b geom.Box3, p geom.Vec3) bool {
	h := b.Side / 2
	return p.X >= b.Center.X-h && p.X <= b.Center.X+h &&
		p.Y >= b.Center.Y-h && p.Y <= b.Center.Y+h &&
		p.Z >= b.Center.Z-h && p.Z <= b.Center.Z+h
}

// build recursively partitions idx into the subtree rooted at a fresh node
// and returns its index.
func (t *Tree) build(box geom.Box3, idx []int32) int32 {
	ni := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		center:   box.Center,
		side:     box.Side,
		particle: -1,
		count:    int32(len(idx)),
	})
	for c := range t.nodes[ni].children {
		t.nodes[ni].children[c] = -1
	}
	if len(idx) == 0 {
		return ni
	}
	if len(idx) == 1 {
		t.nodes[ni].particle = idx[0]
		return ni
	}
	if len(idx) <= t.leafCap {
		t.buckets[ni] = append([]int32(nil), idx...)
		return ni
	}
	var parts [8][]int32
	for _, i := range idx {
		oct := 0
		p := t.pos[i]
		if p.X >= box.Center.X {
			oct |= 1
		}
		if p.Y >= box.Center.Y {
			oct |= 2
		}
		if p.Z >= box.Center.Z {
			oct |= 4
		}
		parts[oct] = append(parts[oct], i)
	}
	for oct := 0; oct < 8; oct++ {
		if len(parts[oct]) == 0 {
			continue
		}
		child := t.build(box.Child(oct), parts[oct])
		t.nodes[ni].children[oct] = child
	}
	return ni
}

// computeMoments fills in total charge, center of mass and quadrupole
// moments bottom-up.
func (t *Tree) computeMoments(ni int32) {
	n := &t.nodes[ni]
	accumulate := func(indices []int32) {
		var q float64
		var com geom.Vec3
		for _, i := range indices {
			q += t.q[i]
			com = com.Add(t.pos[i].Scale(t.q[i]))
		}
		n.q = q
		n.com = n.center
		if q != 0 {
			c := com.Scale(1 / q)
			// Use the charge centroid only when it stays inside the cell;
			// near-neutral cells produce runaway centroids, for which the
			// geometric center plus the dipole term is both stable and
			// more accurate.
			if insideCell(c, n.center, n.side) {
				n.com = c
			}
		}
		for _, i := range indices {
			d := t.pos[i].Sub(n.com)
			r2 := d.Norm2()
			qi := t.q[i]
			n.dip = n.dip.Add(d.Scale(qi))
			n.quad[0] += qi * (3*d.X*d.X - r2)
			n.quad[1] += qi * (3*d.Y*d.Y - r2)
			n.quad[2] += qi * (3*d.Z*d.Z - r2)
			n.quad[3] += qi * 3 * d.X * d.Y
			n.quad[4] += qi * 3 * d.X * d.Z
			n.quad[5] += qi * 3 * d.Y * d.Z
		}
	}
	switch {
	case n.particle >= 0:
		n.q = t.q[n.particle]
		n.com = t.pos[n.particle]
	case n.count > 0 && t.buckets[ni] != nil:
		accumulate(t.buckets[ni])
	default:
		// Internal: recurse, then combine children via the parallel-axis
		// shift of the quadrupole.
		var q float64
		var com geom.Vec3
		for _, c := range n.children {
			if c < 0 {
				continue
			}
			t.computeMoments(c)
			cn := &t.nodes[c]
			q += cn.q
			com = com.Add(cn.com.Scale(cn.q))
		}
		n.q = q
		n.com = n.center
		if q != 0 {
			c := com.Scale(1 / q)
			// Use the charge centroid only when it stays inside the cell;
			// near-neutral cells produce runaway centroids, for which the
			// geometric center plus the dipole term is both stable and
			// more accurate.
			if insideCell(c, n.center, n.side) {
				n.com = c
			}
		}
		for _, c := range n.children {
			if c < 0 {
				continue
			}
			cn := &t.nodes[c]
			d := cn.com.Sub(n.com)
			r2 := d.Norm2()
			n.dip = n.dip.Add(cn.dip).Add(d.Scale(cn.q))
			n.quad[0] += cn.quad[0] + cn.q*(3*d.X*d.X-r2)
			n.quad[1] += cn.quad[1] + cn.q*(3*d.Y*d.Y-r2)
			n.quad[2] += cn.quad[2] + cn.q*(3*d.Z*d.Z-r2)
			n.quad[3] += cn.quad[3] + cn.q*3*d.X*d.Y
			n.quad[4] += cn.quad[4] + cn.q*3*d.X*d.Z
			n.quad[5] += cn.quad[5] + cn.q*3*d.Y*d.Z
		}
	}
}

// Stats reports traversal instrumentation.
type Stats struct {
	CellInteractions     int64
	ParticleInteractions int64
}

// Potentials evaluates the potential at every particle with opening angle
// theta, in parallel over particles.
func (t *Tree) Potentials(cfg Config) ([]float64, Stats) {
	cfg = cfg.normalize()
	phi := make([]float64, len(t.pos))
	var st Stats
	blas.Parallel(len(t.pos), func(i int) {
		var cells, parts int64
		phi[i] = t.potentialAt(t.pos[i], int32(i), cfg, &cells, &parts)
		atomicAdd(&st.CellInteractions, cells)
		atomicAdd(&st.ParticleInteractions, parts)
	})
	return phi, st
}

// PotentialAtPoint evaluates the field at an arbitrary point (no particle
// exclusion).
func (t *Tree) PotentialAtPoint(x geom.Vec3, cfg Config) float64 {
	cfg = cfg.normalize()
	var cells, parts int64
	return t.potentialAt(x, -1, cfg, &cells, &parts)
}

func (t *Tree) potentialAt(x geom.Vec3, exclude int32, cfg Config, cells, parts *int64) float64 {
	var phi float64
	stack := make([]int32, 1, 128)
	stack[0] = 0
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if n.count == 0 {
			continue
		}
		if n.particle >= 0 {
			if n.particle != exclude {
				phi += t.q[n.particle] / x.Dist(t.pos[n.particle])
				*parts++
			}
			continue
		}
		d := x.Sub(n.com)
		dist := d.Norm()
		if dist > 0 && n.side/dist < cfg.Theta {
			phi += n.q / dist
			if cfg.Quadrupole {
				// Dipole p.d/r^3 plus quadrupole (1/2) d^T Q d / r^5 with
				// the traceless Q stored above. The dipole vanishes except
				// for (near-)neutral cells, where it is the leading term.
				r3 := dist * dist * dist
				phi += n.dip.Dot(d) / r3
				qd := n.quad[0]*d.X*d.X + n.quad[1]*d.Y*d.Y + n.quad[2]*d.Z*d.Z +
					2*(n.quad[3]*d.X*d.Y+n.quad[4]*d.X*d.Z+n.quad[5]*d.Y*d.Z)
				phi += qd / (2 * r3 * dist * dist)
			}
			*cells++
			continue
		}
		if b, ok := t.buckets[ni]; ok {
			for _, j := range b {
				if j != exclude {
					phi += t.q[j] / x.Dist(t.pos[j])
					*parts++
				}
			}
			continue
		}
		for _, c := range n.children {
			if c >= 0 {
				stack = append(stack, c)
			}
		}
	}
	return phi
}

// NumNodes returns the octree size.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// MaxDepth returns the depth of the tree (root = 0).
func (t *Tree) MaxDepth() int {
	var walk func(ni int32) int
	walk = func(ni int32) int {
		d := 0
		for _, c := range t.nodes[ni].children {
			if c >= 0 {
				if cd := walk(c) + 1; cd > d {
					d = cd
				}
			}
		}
		return d
	}
	return walk(0)
}

// FlopsPerCell is the conventional flop count charged per accepted
// cell-particle interaction with quadrupole terms.
const FlopsPerCell = 34

// TotalFlops converts traversal statistics into the flop counts used by the
// Table 1 comparison.
func (s Stats) TotalFlops() int64 {
	return s.CellInteractions*FlopsPerCell + s.ParticleInteractions*9
}

func atomicAdd(p *int64, v int64) { atomic.AddInt64(p, v) }

func insideCell(p, center geom.Vec3, side float64) bool {
	h := side / 2
	return p.X >= center.X-h && p.X <= center.X+h &&
		p.Y >= center.Y-h && p.Y <= center.Y+h &&
		p.Z >= center.Z-h && p.Z <= center.Z+h
}
