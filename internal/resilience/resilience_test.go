package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"nbody/internal/metrics"
)

var errBoom = errors.New("boom")
var errBadInput = errors.New("bad input")

// classifyTest is the test classifier: errBadInput is permanent, context
// errors are terminal, everything else retryable.
func classifyTest(err error) Class {
	switch {
	case errors.Is(err, errBadInput):
		return Permanent
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Terminal
	default:
		return Retryable
	}
}

// fastPolicy keeps test backoffs negligible.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  10 * time.Microsecond,
		Classify:    classifyTest,
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(fastPolicy(), 0); err == nil {
		t.Error("New accepted zero rungs")
	}
	if _, err := New(Policy{}, 1); err == nil {
		t.Error("New accepted a nil classifier")
	}
}

// TestHappyPathZero proves a first-attempt success touches nothing: no
// retries, no degradations, no breaker state, and no allocations.
func TestHappyPathZero(t *testing.T) {
	metrics.ResetRecovery()
	s, err := New(fastPolicy(), 3)
	if err != nil {
		t.Fatal(err)
	}
	attempt := func(ctx context.Context, rung int) error { return nil }
	rung, err := s.Do(context.Background(), attempt)
	if err != nil || rung != 0 {
		t.Fatalf("Do = (%d, %v), want (0, nil)", rung, err)
	}
	if rc := metrics.ReadRecovery(); !rc.Zero() {
		t.Errorf("happy path recorded recovery events: %+v", rc)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Do(context.Background(), attempt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("happy-path Do allocates %.1f/op, want 0", allocs)
	}
}

// TestRetriesThenSucceeds: two transient failures inside the first rung's
// budget must be retried on the same rung and counted.
func TestRetriesThenSucceeds(t *testing.T) {
	metrics.ResetRecovery()
	s, err := New(fastPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rung, err := s.Do(context.Background(), func(ctx context.Context, rung int) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || rung != 0 {
		t.Fatalf("Do = (%d, %v), want (0, nil)", rung, err)
	}
	if calls != 3 {
		t.Errorf("attempts = %d, want 3", calls)
	}
	rc := metrics.ReadRecovery()
	if rc.Retries != 2 || rc.Degradations != 0 {
		t.Errorf("recovery = %+v, want 2 retries, 0 degradations", rc)
	}
}

// TestDegradesToNextRung: a rung that always fails transiently exhausts
// its budget and the ladder steps down.
func TestDegradesToNextRung(t *testing.T) {
	metrics.ResetRecovery()
	s, err := New(fastPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	perRung := map[int]int{}
	rung, err := s.Do(context.Background(), func(ctx context.Context, rung int) error {
		perRung[rung]++
		if rung == 0 {
			return errBoom
		}
		return nil
	})
	if err != nil || rung != 1 {
		t.Fatalf("Do = (%d, %v), want (1, nil)", rung, err)
	}
	if perRung[0] != 3 || perRung[1] != 1 {
		t.Errorf("attempts per rung = %v, want {0:3, 1:1}", perRung)
	}
	rc := metrics.ReadRecovery()
	if rc.Retries != 2 || rc.Degradations != 1 {
		t.Errorf("recovery = %+v, want 2 retries, 1 degradation", rc)
	}
}

// TestSkipAdvancesWithoutRetry: a Skip-classified error moves down the
// ladder immediately, burning neither attempts nor backoff.
func TestSkipAdvancesWithoutRetry(t *testing.T) {
	metrics.ResetRecovery()
	errNoCan := errors.New("unsupported")
	p := fastPolicy()
	p.Classify = func(err error) Class {
		if errors.Is(err, errNoCan) {
			return Skip
		}
		return classifyTest(err)
	}
	s, err := New(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	perRung := map[int]int{}
	rung, err := s.Do(context.Background(), func(ctx context.Context, rung int) error {
		perRung[rung]++
		if rung == 0 {
			return errNoCan
		}
		return nil
	})
	if err != nil || rung != 1 {
		t.Fatalf("Do = (%d, %v), want (1, nil)", rung, err)
	}
	if perRung[0] != 1 {
		t.Errorf("skipped rung attempted %d times, want 1", perRung[0])
	}
	if rc := metrics.ReadRecovery(); rc.Retries != 0 {
		t.Errorf("skip recorded %d retries, want 0", rc.Retries)
	}
}

// TestPermanentAborts: a permanent error must not consult lower rungs.
func TestPermanentAborts(t *testing.T) {
	s, err := New(fastPolicy(), 3)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, derr := s.Do(context.Background(), func(ctx context.Context, rung int) error {
		calls++
		return errBadInput
	})
	if !errors.Is(derr, errBadInput) {
		t.Fatalf("Do = %v, want errBadInput", derr)
	}
	if calls != 1 {
		t.Errorf("permanent error attempted %d times, want 1", calls)
	}
}

// TestTerminalAborts: caller cancellation stops the ladder immediately.
func TestTerminalAborts(t *testing.T) {
	s, err := New(fastPolicy(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, derr := s.Do(ctx, func(actx context.Context, rung int) error {
		calls++
		cancel()
		return ctx.Err()
	})
	if !errors.Is(derr, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", derr)
	}
	if calls != 1 {
		t.Errorf("canceled run attempted %d times, want 1", calls)
	}
}

// TestAttemptTimeoutIsRetryable: an attempt that blows only its per-attempt
// budget (caller context still live) must be retried, not treated as the
// caller's deadline.
func TestAttemptTimeoutIsRetryable(t *testing.T) {
	p := fastPolicy()
	p.AttemptTimeout = 5 * time.Millisecond
	s, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rung, derr := s.Do(context.Background(), func(actx context.Context, rung int) error {
		calls++
		if calls == 1 {
			<-actx.Done() // hang until the attempt budget expires
			return actx.Err()
		}
		return nil
	})
	if derr != nil || rung != 0 {
		t.Fatalf("Do = (%d, %v), want (0, nil)", rung, derr)
	}
	if calls != 2 {
		t.Errorf("attempts = %d, want 2 (timeout then success)", calls)
	}
}

// TestDeadlineDerivedAttemptBudget: with a caller deadline and no explicit
// AttemptTimeout, each attempt gets a share of the remaining budget, so a
// hung first attempt still leaves room to retry.
func TestDeadlineDerivedAttemptBudget(t *testing.T) {
	s, err := New(fastPolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	rung, derr := s.Do(ctx, func(actx context.Context, rung int) error {
		calls++
		if calls == 1 {
			<-actx.Done()
			return actx.Err()
		}
		return nil
	})
	if derr != nil || rung != 0 {
		t.Fatalf("Do = (%d, %v) after %v, want (0, nil)", rung, derr, time.Since(start))
	}
	if calls != 2 {
		t.Errorf("attempts = %d, want 2", calls)
	}
	// The first attempt must have been cut well before the full deadline:
	// its share was ~1/3 of 300ms.
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Errorf("run took %v, the per-attempt budget did not bound the hung attempt", el)
	}
}

// TestBreakerTripsAndCoolsDown: threshold consecutive failures open the
// breaker (ending the rung early), the open rung is skipped on the next
// Do, and after the cooldown the rung is probed again.
func TestBreakerTripsAndCoolsDown(t *testing.T) {
	metrics.ResetRecovery()
	p := fastPolicy()
	p.BreakerThreshold = 2
	p.BreakerCooldown = 30 * time.Millisecond
	s, err := New(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	perRung := map[int]int{}
	fail0 := true
	attempt := func(ctx context.Context, rung int) error {
		perRung[rung]++
		if rung == 0 && fail0 {
			return errBoom
		}
		return nil
	}
	// First Do: rung 0 fails twice -> breaker trips -> rung 1 serves.
	rung, derr := s.Do(context.Background(), attempt)
	if derr != nil || rung != 1 {
		t.Fatalf("Do #1 = (%d, %v), want (1, nil)", rung, derr)
	}
	if perRung[0] != 2 {
		t.Errorf("rung 0 attempted %d times before trip, want 2", perRung[0])
	}
	if !s.BreakerOpen(0) {
		t.Error("breaker not open after threshold failures")
	}
	// Second Do while open: rung 0 must not be attempted at all.
	perRung = map[int]int{}
	rung, derr = s.Do(context.Background(), attempt)
	if derr != nil || rung != 1 {
		t.Fatalf("Do #2 = (%d, %v), want (1, nil)", rung, derr)
	}
	if perRung[0] != 0 {
		t.Errorf("open breaker still allowed %d attempts on rung 0", perRung[0])
	}
	rc := metrics.ReadRecovery()
	if rc.BreakerTrips != 1 {
		t.Errorf("breaker trips = %d, want 1", rc.BreakerTrips)
	}
	// After the cooldown the rung heals and serves again.
	time.Sleep(p.BreakerCooldown + 10*time.Millisecond)
	fail0 = false
	perRung = map[int]int{}
	rung, derr = s.Do(context.Background(), attempt)
	if derr != nil || rung != 0 {
		t.Fatalf("Do #3 = (%d, %v), want (0, nil)", rung, derr)
	}
	if s.BreakerOpen(0) {
		t.Error("breaker still open after a success")
	}
}

// TestAllRungsExhausted returns the last rung's error.
func TestAllRungsExhausted(t *testing.T) {
	s, err := New(fastPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rung, derr := s.Do(context.Background(), func(ctx context.Context, rung int) error {
		return errBoom
	})
	if !errors.Is(derr, errBoom) || rung != 1 {
		t.Fatalf("Do = (%d, %v), want (1, errBoom)", rung, derr)
	}
}

// TestCancelDuringBackoffPrompt is the package-level half of the
// promptness acceptance: a cancel landing mid-backoff must return within
// milliseconds even when the configured backoff is seconds long.
func TestCancelDuringBackoffPrompt(t *testing.T) {
	p := fastPolicy()
	p.BaseBackoff = 10 * time.Second
	p.MaxBackoff = 10 * time.Second
	s, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, derr := s.Do(ctx, func(ctx context.Context, rung int) error { return errBoom })
	elapsed := time.Since(start)
	if !errors.Is(derr, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", derr)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancel during a 10s backoff took %v to return", elapsed)
	}
	t.Logf("canceled mid-backoff after %v", elapsed)
}

// TestBackoffShape: the exponential schedule is capped and jitter stays
// within its band.
func TestBackoffShape(t *testing.T) {
	p := Policy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Classify:    classifyTest,
	}
	s, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	nominal := []time.Duration{10, 20, 40, 40} // ms, capped at MaxBackoff
	for i, n := range nominal {
		d := s.backoff(i + 1)
		lo := time.Duration(float64(n*time.Millisecond) * 0.8)
		hi := time.Duration(float64(n*time.Millisecond) * 1.2)
		if d < lo || d > hi {
			t.Errorf("backoff(%d) = %v, want within [%v, %v]", i+1, d, lo, hi)
		}
	}
}
