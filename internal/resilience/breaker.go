package resilience

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker: Threshold failures in a
// row open it for Cooldown, during which Allow reports false; after the
// cooldown one probe is allowed through (half-open), and any Success closes
// it again. It is the breaker the Supervisor runs per ladder rung, exported
// so other layers — the gateway keeps one per replica — share the exact
// trip/cooldown semantics instead of reimplementing them.
//
// A zero or negative threshold disables the breaker entirely: Allow always
// reports true and Failure never trips. All methods are safe for concurrent
// use.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

// NewBreaker builds a breaker tripping after threshold consecutive failures
// and rejecting for cooldown afterwards. threshold <= 0 disables it;
// cooldown <= 0 selects one second.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether an attempt may proceed right now: the breaker is
// closed, or its cooldown has elapsed (the half-open probe).
func (b *Breaker) Allow() bool { return !b.Open() }

// Open reports whether the breaker currently rejects attempts.
func (b *Breaker) Open() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Now().Before(b.openUntil)
}

// Failure records one failed attempt and reports whether this failure
// tripped the breaker open (the caller counts trips; the breaker only
// counts failures).
func (b *Breaker) Failure() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive < b.threshold {
		return false
	}
	b.consecutive = 0
	b.openUntil = time.Now().Add(b.cooldown)
	return true
}

// Success closes the breaker and zeroes the failure streak.
func (b *Breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}
