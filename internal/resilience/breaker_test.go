package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		if b.Failure() {
			t.Fatalf("failure %d tripped before threshold", i+1)
		}
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures (threshold 3)", i+1)
		}
	}
	if !b.Failure() {
		t.Fatal("third failure did not trip the breaker")
	}
	if b.Allow() {
		t.Fatal("breaker closed immediately after tripping")
	}
	if !b.Open() {
		t.Fatal("Open() false after trip")
	}
}

func TestBreakerCooldownHalfOpen(t *testing.T) {
	b := NewBreaker(1, 20*time.Millisecond)
	if !b.Failure() {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}
	if b.Allow() {
		t.Fatal("breaker closed during cooldown")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never half-opened after cooldown")
		}
		time.Sleep(time.Millisecond)
	}
	// Half-open probe failing trips it again immediately (threshold 1).
	if !b.Failure() {
		t.Fatal("half-open probe failure did not re-trip")
	}
	if b.Allow() {
		t.Fatal("breaker closed right after re-trip")
	}
}

func TestBreakerSuccessResets(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	b.Failure()
	b.Success()
	if b.Failure() {
		t.Fatal("streak not reset by Success: single post-reset failure tripped")
	}
	if !b.Failure() {
		t.Fatal("second consecutive failure after reset did not trip")
	}
	b.Success()
	if b.Open() {
		t.Fatal("Success did not close an open breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, time.Hour)
	for i := 0; i < 10; i++ {
		if b.Failure() {
			t.Fatal("disabled breaker tripped")
		}
	}
	if !b.Allow() || b.Open() {
		t.Fatal("disabled breaker rejected an attempt")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.Open() || b.Failure() {
		t.Fatal("nil breaker misbehaved")
	}
	b.Success() // must not panic
}

func TestBreakerDefaultCooldown(t *testing.T) {
	b := NewBreaker(1, 0)
	if b.cooldown != time.Second {
		t.Fatalf("cooldown = %v, want 1s default", b.cooldown)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch {
				case i%3 == 0:
					b.Failure()
				case i%3 == 1:
					b.Success()
				default:
					b.Allow()
				}
			}
		}(g)
	}
	wg.Wait()
}
