// Package resilience is the retry supervisor of the self-healing layer: it
// turns the public API's safe-to-retry contract (an *InternalError leaves
// the solver reusable — see the root package's errors.go) into an actual
// recovery mechanism.
//
// A Supervisor drives one logical operation across a degradation ladder of
// rungs (rung 0 is the preferred backend, higher rungs are progressively
// cheaper fallbacks — e.g. DataParallel → Anderson → BarnesHut → Direct).
// Each rung gets up to Policy.MaxAttempts attempts with exponential backoff
// and jitter between them; when a rung exhausts its attempts, or its
// circuit breaker is open (too many consecutive failures recently), the
// supervisor steps down to the next rung. The caller's error classifier
// decides what is worth retrying: Retryable errors burn an attempt,
// Permanent errors abort the whole ladder (no rung can fix a malformed
// input), Terminal errors (caller cancellation) abort immediately, and
// Skip advances the ladder without burning attempts (the rung cannot
// perform the requested operation at all).
//
// Every retry, breaker trip, and rung change is recorded through the
// process-wide counters in internal/metrics, so cmd/phases and the
// invariant tests can observe the layer working (and observe it idle: a
// healthy run records nothing). The happy path — first rung, first attempt
// succeeds — performs no allocations and no metrics traffic.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nbody/internal/metrics"
)

// Class is an error classification: what the supervisor should do with a
// failed attempt.
type Class int

const (
	// Retryable marks transient failures covered by a safe-to-retry
	// contract: the attempt is retried on the same rung (after backoff)
	// until the rung's attempts are exhausted.
	Retryable Class = iota
	// Permanent marks input or configuration errors no rung can fix
	// (invalid system, out-of-domain particles): the supervisor returns
	// the error immediately without consulting lower rungs.
	Permanent
	// Terminal marks caller-initiated stops (context cancellation or the
	// caller's deadline): the supervisor aborts immediately. A deadline
	// that expired on a per-attempt budget while the caller's context is
	// still live is reclassified as Retryable — the attempt was too slow,
	// not the run.
	Terminal
	// Skip marks a rung that cannot perform the requested operation at
	// all (e.g. a potentials-only solver asked for accelerations): the
	// supervisor advances to the next rung without retrying or backoff.
	Skip
)

// String implements fmt.Stringer for log and test output.
func (c Class) String() string {
	switch c {
	case Retryable:
		return "retryable"
	case Permanent:
		return "permanent"
	case Terminal:
		return "terminal"
	case Skip:
		return "skip"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classifier maps an attempt error to its Class. It is never called with a
// nil error.
type Classifier func(error) Class

// Policy configures a Supervisor. The zero value of every field selects a
// sensible default (see withDefaults); Classify is the one required field.
type Policy struct {
	// MaxAttempts is the attempt budget per rung (default 3). The first
	// attempt is not a retry: a rung records MaxAttempts-1 retries at most.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry (default 5ms); each
	// further retry multiplies it by Multiplier (default 2) up to
	// MaxBackoff (default 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// Jitter spreads each backoff uniformly over ±Jitter of its nominal
	// value (default 0.2, clamped to [0, 1]) so retry storms decorrelate.
	Jitter float64
	// AttemptTimeout bounds each attempt. Zero derives a budget from the
	// caller's deadline when one exists: the remaining time divided evenly
	// among the rung's remaining attempts, so one hung attempt cannot eat
	// the retries' whole budget. With no deadline and no AttemptTimeout,
	// attempts are unbounded.
	AttemptTimeout time.Duration
	// BreakerThreshold is the number of consecutive failures (across Do
	// calls) that opens a rung's circuit breaker; 0 disables breakers.
	// While open, the rung is skipped outright. Any success closes it.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects the rung before
	// allowing a fresh probe attempt (default 1s).
	BreakerCooldown time.Duration
	// Classify decides what a failed attempt means. Required.
	Classify Classifier
	// Seed seeds the jitter generator (0 picks a fixed default); tests pin
	// it for reproducible backoff schedules.
	Seed int64
}

// withDefaults fills unset fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter == 0 {
		p.Jitter = 0.2
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Supervisor executes attempts under a Policy across a fixed-size ladder.
// One Do at a time: the supervisor serializes itself with an internal
// mutex only around jitter state (each rung's Breaker has its own), but
// the rungs it drives are single-solve solvers, so callers run one
// operation at a time just as they would on the bare solver.
type Supervisor struct {
	p Policy

	mu       sync.Mutex // guards rng
	rng      *rand.Rand
	breakers []*Breaker

	// Per-supervisor mirrors of the process-wide recovery counters, so a
	// caller that owns this supervisor exclusively (e.g. one server
	// request holding one cached plan) can attribute recovery events to
	// itself exactly, where the global counters only attribute them to
	// the process.
	retries      atomic.Int64
	breakerTrips atomic.Int64
	degradations atomic.Int64
}

// Counters is a snapshot of one supervisor's own recovery events.
type Counters struct {
	Retries      int64
	BreakerTrips int64
	Degradations int64
}

// Counters reads this supervisor's event counts (monotonic; diff two
// snapshots for a per-operation delta).
func (s *Supervisor) Counters() Counters {
	return Counters{
		Retries:      s.retries.Load(),
		BreakerTrips: s.breakerTrips.Load(),
		Degradations: s.degradations.Load(),
	}
}

// New builds a Supervisor over a ladder of rungs. Classify is required and
// rungs must be positive.
func New(p Policy, rungs int) (*Supervisor, error) {
	if rungs <= 0 {
		return nil, fmt.Errorf("resilience: need at least one rung, got %d", rungs)
	}
	if p.Classify == nil {
		return nil, errors.New("resilience: Policy.Classify is required")
	}
	p = p.withDefaults()
	s := &Supervisor{
		p:        p,
		rng:      rand.New(rand.NewSource(p.Seed)),
		breakers: make([]*Breaker, rungs),
	}
	for i := range s.breakers {
		s.breakers[i] = NewBreaker(p.BreakerThreshold, p.BreakerCooldown)
	}
	return s, nil
}

// Rungs returns the ladder length.
func (s *Supervisor) Rungs() int { return len(s.breakers) }

// BreakerOpen reports whether rung's circuit breaker currently rejects
// attempts (for tests and status displays).
func (s *Supervisor) BreakerOpen(rung int) bool {
	return s.breakers[rung].Open()
}

// Do runs attempt down the ladder until one rung succeeds: it returns the
// rung that produced the result, or the last error once every rung is
// exhausted, skipped, or the classifier aborts the run. attempt receives a
// context bounded by the per-attempt budget (when one applies) and the
// rung index; it must be safe to call again after returning an error —
// that is exactly the safe-to-retry contract the classifier's Retryable
// class asserts.
func (s *Supervisor) Do(ctx context.Context, attempt func(ctx context.Context, rung int) error) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	lastRung := 0
	for rung := 0; rung < len(s.breakers); rung++ {
		if rung > 0 {
			metrics.AddDegradations(1)
			s.degradations.Add(1)
		}
		if s.breakerRejects(rung) {
			if lastErr == nil {
				lastErr = fmt.Errorf("resilience: rung %d circuit breaker open", rung)
			}
			continue
		}
		err := s.runRung(ctx, rung, attempt)
		if err == nil {
			s.recordSuccess(rung)
			return rung, nil
		}
		lastErr, lastRung = err, rung
		switch s.classify(ctx, err) {
		case Terminal, Permanent:
			return rung, err
		}
		// Retryable (attempts exhausted or breaker tripped mid-rung) and
		// Skip both fall through to the next rung.
	}
	return lastRung, lastErr
}

// runRung burns the attempt budget of one rung: attempt, classify,
// backoff, retry. It returns nil on success, the rung's last error when
// its attempts are exhausted, a Skip/Permanent/Terminal error immediately,
// or ctx.Err() if the caller cancels during a backoff sleep.
func (s *Supervisor) runRung(ctx context.Context, rung int, attempt func(ctx context.Context, rung int) error) error {
	for a := 1; ; a++ {
		actx, cancel := s.attemptCtx(ctx, s.p.MaxAttempts-a+1)
		err := attempt(actx, rung)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		switch s.classify(ctx, err) {
		case Permanent, Terminal, Skip:
			return err
		}
		if s.recordFailure(rung) {
			// Breaker tripped mid-rung: stop burning attempts here.
			return err
		}
		if a >= s.p.MaxAttempts {
			return err
		}
		metrics.AddRetries(1)
		s.retries.Add(1)
		if serr := s.sleep(ctx, a); serr != nil {
			return serr
		}
	}
}

// classify applies the policy classifier with the per-attempt-deadline
// correction: an error that looks Terminal (deadline exceeded) while the
// caller's own context is still live came from the attempt budget, not the
// caller, and is therefore retryable.
func (s *Supervisor) classify(ctx context.Context, err error) Class {
	c := s.p.Classify(err)
	if c == Terminal && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		return Retryable
	}
	return c
}

// attemptCtx bounds one attempt: the configured AttemptTimeout when set,
// otherwise an even share of the caller's remaining deadline budget across
// the rung's remaining attempts. With neither, the caller's context is
// used as-is and no allocation happens (the happy path).
func (s *Supervisor) attemptCtx(ctx context.Context, attemptsLeft int) (context.Context, context.CancelFunc) {
	if s.p.AttemptTimeout > 0 {
		return context.WithTimeout(ctx, s.p.AttemptTimeout)
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return ctx, nil
	}
	remaining := time.Until(deadline)
	if remaining <= 0 || attemptsLeft <= 1 {
		return ctx, nil // already expired, or last attempt: let the caller's deadline rule
	}
	return context.WithTimeout(ctx, remaining/time.Duration(attemptsLeft))
}

// sleep blocks for the attempt'th backoff, returning early with ctx.Err()
// the moment the caller cancels — the promptness the cancellation
// acceptance test pins down.
func (s *Supervisor) sleep(ctx context.Context, attempt int) error {
	d := s.backoff(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff returns the jittered exponential backoff before retry attempt+1.
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := float64(s.p.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= s.p.Multiplier
		if d >= float64(s.p.MaxBackoff) {
			d = float64(s.p.MaxBackoff)
			break
		}
	}
	if d > float64(s.p.MaxBackoff) {
		d = float64(s.p.MaxBackoff)
	}
	if s.p.Jitter > 0 {
		s.mu.Lock()
		u := s.rng.Float64()
		s.mu.Unlock()
		d *= 1 + s.p.Jitter*(2*u-1)
	}
	return time.Duration(d)
}

// breakerRejects reports whether rung's breaker is open right now.
func (s *Supervisor) breakerRejects(rung int) bool {
	return s.breakers[rung].Open()
}

// recordFailure counts one consecutive failure on rung and reports whether
// it tripped the breaker (opening it for the cooldown).
func (s *Supervisor) recordFailure(rung int) bool {
	if !s.breakers[rung].Failure() {
		return false
	}
	metrics.AddBreakerTrips(1)
	s.breakerTrips.Add(1)
	return true
}

// recordSuccess closes rung's breaker. The happy path (breakers disabled)
// takes no lock.
func (s *Supervisor) recordSuccess(rung int) {
	s.breakers[rung].Success()
}
