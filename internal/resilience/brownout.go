package resilience

import (
	"fmt"
	"sync"
	"time"

	"nbody/internal/metrics"
)

// BrownoutConfig tunes a Brownout controller. The zero value of every field
// selects the documented default.
type BrownoutConfig struct {
	// Target is the pressure-signal setpoint (default 100ms): sustained
	// observations above it raise the level, sustained observations below
	// Target/4 lower it. For the serving layer the signal is per-request
	// queue delay — the quantity that grows without bound when offered load
	// exceeds capacity.
	Target time.Duration
	// MaxLevel caps the degradation level (default 2).
	MaxLevel int
	// RaiseAfter is how long the smoothed signal must stay above Target
	// before the level rises one step (default 500ms); DropAfter is the
	// corresponding dwell below Target/4 before it falls one step (default
	// 2s). The asymmetry is deliberate: brown out fast, recover cautiously.
	RaiseAfter time.Duration
	DropAfter  time.Duration
	// Alpha is the EWMA smoothing weight of each observation (default 0.2).
	Alpha float64
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Target <= 0 {
		c.Target = 100 * time.Millisecond
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = 2
	}
	if c.RaiseAfter <= 0 {
		c.RaiseAfter = 500 * time.Millisecond
	}
	if c.DropAfter <= 0 {
		c.DropAfter = 2 * time.Second
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BrownoutStats is a snapshot of a controller's state and counters.
type BrownoutStats struct {
	Level    int           `json:"level"`
	Raises   int64         `json:"raises"`
	Drops    int64         `json:"drops"`
	Pressure time.Duration `json:"pressure_ns"` // smoothed signal
}

// Brownout is a hysteresis feedback controller for load-driven degradation:
// the third leg of the resilience layer, giving the degradation ladder a
// load trigger alongside the supervisor's fault trigger. Callers feed it a
// pressure signal (queue delay) through Observe; Level reports the current
// degradation level 0..MaxLevel, which the caller maps onto whatever
// fidelity ladder it owns (the serving layer lowers solve accuracy and
// re-pins over-deep hierarchies). The controller is deliberately dumb —
// EWMA, two thresholds, dwell times — because its job is stability, not
// optimality: it must never flap fidelity on transient spikes, and it must
// always return to full fidelity once pressure subsides.
//
// Every level change is recorded through the process-wide overload counters
// in internal/metrics, the same pattern the retry supervisor uses for its
// recovery counters.
type Brownout struct {
	cfg BrownoutConfig

	mu         sync.Mutex
	level      int
	ewma       time.Duration
	overSince  time.Time // zero: signal not currently above Target
	underSince time.Time // zero: signal not currently below Target/4
	lastObs    time.Time
	raises     int64
	drops      int64
}

// NewBrownout builds a controller at level 0.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Observe feeds one pressure sample and returns the (possibly updated)
// level. Call it once per completed or dequeued request with that request's
// queue delay.
func (b *Brownout) Observe(pressure time.Duration) int {
	if pressure < 0 {
		pressure = 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	b.decayIdle(now)
	if b.ewma == 0 && b.lastObs.IsZero() {
		b.ewma = pressure
	} else {
		b.ewma += time.Duration(b.cfg.Alpha * float64(pressure-b.ewma))
	}
	b.lastObs = now
	b.step(now)
	return b.level
}

// Level returns the current degradation level (0 = full fidelity). A quiet
// server receives no observations, so Level also decays: with no sample for
// a DropAfter window the controller steps down on read rather than pinning
// the last level forever.
func (b *Brownout) Level() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decayIdle(b.cfg.Now())
	return b.level
}

// Stats snapshots the controller.
func (b *Brownout) Stats() BrownoutStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decayIdle(b.cfg.Now())
	return BrownoutStats{Level: b.level, Raises: b.raises, Drops: b.drops, Pressure: b.ewma}
}

// String renders the controller for logs.
func (b *Brownout) String() string {
	s := b.Stats()
	return fmt.Sprintf("brownout level=%d pressure=%s raises=%d drops=%d",
		s.Level, s.Pressure.Round(time.Millisecond), s.Raises, s.Drops)
}

// step applies the hysteresis thresholds. Called with the lock held.
func (b *Brownout) step(now time.Time) {
	hi, lo := b.cfg.Target, b.cfg.Target/4
	switch {
	case b.ewma > hi:
		b.underSince = time.Time{}
		if b.overSince.IsZero() {
			b.overSince = now
			return
		}
		if now.Sub(b.overSince) >= b.cfg.RaiseAfter && b.level < b.cfg.MaxLevel {
			b.level++
			b.raises++
			metrics.AddBrownoutRaises(1)
			b.overSince = now // a further raise needs a fresh dwell
		}
	case b.ewma < lo:
		b.overSince = time.Time{}
		if b.underSince.IsZero() {
			b.underSince = now
			return
		}
		if now.Sub(b.underSince) >= b.cfg.DropAfter && b.level > 0 {
			b.level--
			b.drops++
			metrics.AddBrownoutDrops(1)
			b.underSince = now
		}
	default:
		// Between the thresholds: hold the level, reset both dwells.
		b.overSince, b.underSince = time.Time{}, time.Time{}
	}
}

// decayIdle steps the level down once per elapsed DropAfter window with no
// observations at all (an idle server is, by definition, under no
// pressure). Called with the lock held.
func (b *Brownout) decayIdle(now time.Time) {
	if b.level == 0 || b.lastObs.IsZero() {
		return
	}
	for b.level > 0 && now.Sub(b.lastObs) >= b.cfg.DropAfter {
		b.level--
		b.drops++
		metrics.AddBrownoutDrops(1)
		b.lastObs = b.lastObs.Add(b.cfg.DropAfter)
		b.ewma = 0
		b.overSince, b.underSince = time.Time{}, time.Time{}
	}
}
