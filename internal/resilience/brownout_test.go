package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for driving the controller's dwell
// timers deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBrownout(clk *fakeClock) *Brownout {
	return NewBrownout(BrownoutConfig{
		Target:     100 * time.Millisecond,
		MaxLevel:   2,
		RaiseAfter: 500 * time.Millisecond,
		DropAfter:  2 * time.Second,
		Alpha:      1, // no smoothing: the sample is the signal
		Now:        clk.Now,
	})
}

// TestBrownoutRaiseRequiresDwell pins the anti-flap half of the raise path:
// a single over-target observation starts the dwell but does not raise, and
// the level only rises once the signal has stayed high for RaiseAfter.
func TestBrownoutRaiseRequiresDwell(t *testing.T) {
	clk := newFakeClock()
	b := testBrownout(clk)

	if got := b.Observe(time.Second); got != 0 {
		t.Fatalf("level %d after first over-target sample, want 0 (dwell not served)", got)
	}
	clk.Advance(499 * time.Millisecond)
	if got := b.Observe(time.Second); got != 0 {
		t.Fatalf("level %d at 499ms of dwell, want 0", got)
	}
	clk.Advance(time.Millisecond)
	if got := b.Observe(time.Second); got != 1 {
		t.Fatalf("level %d after full RaiseAfter dwell, want 1", got)
	}
	// A further raise needs a fresh dwell, not just one more sample.
	if got := b.Observe(time.Second); got != 1 {
		t.Fatalf("level %d immediately after a raise, want 1 (fresh dwell required)", got)
	}
	clk.Advance(500 * time.Millisecond)
	if got := b.Observe(time.Second); got != 2 {
		t.Fatalf("level %d after second dwell, want 2", got)
	}
	// MaxLevel caps it: more served dwells cannot push past 2. Keep the
	// advances inside the DropAfter window so idle decay stays out of play.
	for i := 0; i < 4; i++ {
		clk.Advance(500 * time.Millisecond)
		if got := b.Observe(time.Second); got != 2 {
			t.Fatalf("level %d beyond MaxLevel, want 2", got)
		}
	}
	if s := b.Stats(); s.Raises != 2 {
		t.Errorf("raises = %d, want 2", s.Raises)
	}
}

// TestBrownoutDropHysteresis pins the recovery side: the level only falls
// when the signal stays below Target/4 for DropAfter, and samples in the
// dead band between Target/4 and Target hold the level and reset the dwell.
func TestBrownoutDropHysteresis(t *testing.T) {
	clk := newFakeClock()
	b := testBrownout(clk)

	// Force level 1.
	b.Observe(time.Second)
	clk.Advance(500 * time.Millisecond)
	if got := b.Observe(time.Second); got != 1 {
		t.Fatalf("setup: level %d, want 1", got)
	}

	// Signal in the dead band (between Target/4=25ms and Target=100ms):
	// level must hold for as long as samples keep arriving, no matter how
	// long. (Gaps longer than DropAfter are the idle-decay path, tested
	// separately.)
	for i := 0; i < 20; i++ {
		clk.Advance(time.Second)
		if got := b.Observe(50 * time.Millisecond); got != 1 {
			t.Fatalf("level %d after %ds in the dead band, want 1 (hysteresis hold)", got, i+1)
		}
	}

	// Below Target/4: the drop dwell starts; it must run its full DropAfter.
	clk.Advance(time.Millisecond)
	if got := b.Observe(time.Millisecond); got != 1 {
		t.Fatalf("level %d at drop-dwell start, want 1", got)
	}
	clk.Advance(1999 * time.Millisecond)
	if got := b.Observe(time.Millisecond); got != 1 {
		t.Fatalf("level %d at 1999ms of drop dwell, want 1", got)
	}
	clk.Advance(time.Millisecond)
	if got := b.Observe(time.Millisecond); got != 0 {
		t.Fatalf("level %d after full DropAfter dwell, want 0", got)
	}
	if s := b.Stats(); s.Drops != 1 {
		t.Errorf("drops = %d, want 1", s.Drops)
	}

	// A dead-band excursion mid-dwell resets the drop timer.
	b2 := testBrownout(clk)
	b2.Observe(time.Second)
	clk.Advance(500 * time.Millisecond)
	b2.Observe(time.Second)
	clk.Advance(time.Millisecond)
	b2.Observe(time.Millisecond) // drop dwell starts
	clk.Advance(1900 * time.Millisecond)
	b2.Observe(50 * time.Millisecond) // dead band: dwell reset
	clk.Advance(200 * time.Millisecond)
	if got := b2.Observe(time.Millisecond); got != 1 {
		t.Fatalf("level %d after interrupted drop dwell, want 1 (timer must reset)", got)
	}
}

// TestBrownoutIdleDecay pins the quiet-server contract: with no
// observations at all, Level steps down one notch per elapsed DropAfter
// window instead of pinning the last level forever.
func TestBrownoutIdleDecay(t *testing.T) {
	clk := newFakeClock()
	b := testBrownout(clk)
	b.Observe(time.Second)
	clk.Advance(500 * time.Millisecond)
	b.Observe(time.Second)
	clk.Advance(500 * time.Millisecond)
	if got := b.Observe(time.Second); got != 2 {
		t.Fatalf("setup: level %d, want 2", got)
	}

	clk.Advance(2*time.Second - time.Millisecond)
	if got := b.Level(); got != 2 {
		t.Fatalf("level %d just short of one idle window, want 2", got)
	}
	clk.Advance(time.Millisecond)
	if got := b.Level(); got != 1 {
		t.Fatalf("level %d after one idle DropAfter window, want 1", got)
	}
	clk.Advance(2 * time.Second)
	if got := b.Level(); got != 0 {
		t.Fatalf("level %d after two idle windows, want 0", got)
	}
	if s := b.Stats(); s.Drops != 2 {
		t.Errorf("drops = %d, want 2", s.Drops)
	}
}

// TestBrownoutEWMASmoothing pins that a lone spike through a smoothing
// controller (realistic Alpha) cannot start a raise dwell: the smoothed
// signal stays under Target, so transient bursts never flap fidelity.
func TestBrownoutEWMASmoothing(t *testing.T) {
	clk := newFakeClock()
	b := NewBrownout(BrownoutConfig{
		Target:     100 * time.Millisecond,
		RaiseAfter: time.Millisecond,
		Alpha:      0.2,
		Now:        clk.Now,
	})
	// Establish a calm baseline, then inject one huge spike.
	for i := 0; i < 10; i++ {
		b.Observe(10 * time.Millisecond)
		clk.Advance(10 * time.Millisecond)
	}
	// EWMA after the spike: 10ms + 0.2*(400ms-10ms) = 88ms < Target.
	if got := b.Observe(400 * time.Millisecond); got != 0 {
		t.Fatalf("level %d after a single smoothed spike, want 0", got)
	}
	clk.Advance(10 * time.Millisecond)
	if got := b.Observe(10 * time.Millisecond); got != 0 {
		t.Fatalf("level %d after the spike passed, want 0", got)
	}
}

// TestBrownoutConcurrent hammers one controller from many goroutines under
// the race detector; the final level must be a legal value.
func TestBrownoutConcurrent(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Target: time.Microsecond, RaiseAfter: time.Nanosecond, MaxLevel: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Observe(time.Duration(g+i) * time.Millisecond)
				b.Level()
			}
		}(g)
	}
	wg.Wait()
	if lvl := b.Level(); lvl < 0 || lvl > 2 {
		t.Fatalf("level %d outside [0, MaxLevel]", lvl)
	}
	if s := b.Stats(); s.Raises < 1 {
		t.Errorf("sustained over-target pressure never raised the level: %+v", s)
	}
}
