package gw

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"nbody/internal/metrics"
	"nbody/internal/serve"
)

// The simulate proxy is the crash-survivable half of the gateway. It
// supervises one client-facing NDJSON stream across as many replica-facing
// streams as it takes: it injects a checkpoint cadence upstream (every
// emitted frame carries a resume token unless the client asked for its
// own cadence), remembers the newest token it has seen, and when a replica
// dies or drains mid-stream it re-launches the simulation on another
// replica from that token — with the depth and accuracy pinned from the
// original stream's X-Plan-* headers, so the continuation is bitwise the
// same trajectory. Frames are deduplicated by step number, so the client
// sees each step exactly once no matter how many replicas served it.

// maxStreamBackoff bounds the sleep between consecutive failed resume
// attempts (probes need a beat to find a restarted replica).
const maxStreamBackoff = time.Second

func (g *Gateway) handleSimulate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeGWError(w, http.StatusRequestEntityTooLarge, "too_large", "request body exceeds gateway cap")
		return
	}
	var req serve.SimulateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		// Not a body the gateway can supervise; let a replica produce the
		// authoritative 400.
		g.passthroughSimulate(r.Context(), w, body)
		return
	}

	s := &streamSession{
		g:           g,
		w:           w,
		req:         &req,
		clientEvery: req.StreamEvery,
		stripTokens: req.CheckpointEvery <= 0,
		lastToken:   req.ResumeToken,
		lastStep:    -1,
	}
	s.flusher, _ = w.(http.Flusher)

	// The upstream request: the client's, with a checkpoint cadence the
	// gateway can resume from. When the client wants only the final frame
	// (stream_every 0) the gateway still asks for intermediate frames —
	// they are what carry the checkpoints — and forwards none of them.
	up := req
	if up.StreamEvery <= 0 {
		stride := req.Steps / 16
		if stride < 1 {
			stride = 1
		}
		up.StreamEvery = stride
	}
	if up.CheckpointEvery <= 0 {
		up.CheckpointEvery = 1
	}
	s.upEvery, s.upCkpt = up.StreamEvery, up.CheckpointEvery
	s.upstreamBody, err = json.Marshal(&up)
	if err != nil {
		writeGWError(w, http.StatusBadRequest, "bad_request", "cannot re-encode request")
		return
	}
	s.run(r.Context())
}

// streamSession supervises one client stream across replica legs.
type streamSession struct {
	g       *Gateway
	w       http.ResponseWriter
	flusher http.Flusher

	req          *serve.SimulateRequest
	upstreamBody []byte
	upEvery      int
	upCkpt       int
	clientEvery  int  // 0 = client wants only the final frame
	stripTokens  bool // client asked for no checkpoint tokens

	attempt   int
	lastToken string
	lastStep  int  // last step forwarded to the client
	started   bool // status + at least one frame written to the client

	headerSrc      http.Header // first 200's headers, replayed to the client
	pinned         bool
	pinnedDepth    int
	pinnedAccuracy string
}

type legKind int

const (
	legDone legKind = iota // final frame forwarded (or client gone)
	legRetry
	legTerminal // upstream answered with a non-failover error
)

type legResult struct {
	kind     legKind
	progress bool // this leg advanced the stream (frame or token)
	status   int
	header   http.Header
	body     []byte
}

func (s *streamSession) run(ctx context.Context) {
	failStreak := 0
	lastProgress := time.Now()
	var last *legResult
	for {
		if ctx.Err() != nil {
			return
		}
		rep := s.g.pool.Pick(nil)
		if rep == nil {
			// Nothing eligible: a blind attempt fails fast on a dead
			// replica and succeeds on one the probes haven't re-admitted
			// yet.
			rep = s.g.pool.PickAny(nil)
		}
		if rep == nil {
			s.giveUp(last)
			return
		}
		res := s.runLeg(ctx, rep)
		switch res.kind {
		case legDone:
			return
		case legTerminal:
			if s.started {
				// An error after frames have flowed cannot be expressed in
				// HTTP anymore; sever the stream so the client sees the
				// truncation rather than a silent "end".
				s.abort()
				return
			}
			copyHeaders(s.w.Header(), res.header)
			s.w.WriteHeader(res.status)
			s.w.Write(res.body)
			return
		case legRetry:
			last = res
			if res.progress {
				failStreak = 0
				lastProgress = time.Now()
			} else {
				failStreak++
				if time.Since(lastProgress) > s.g.cfg.StreamRetryWindow {
					// Not one step integrated anywhere in the whole window:
					// the stream is lost, not merely unlucky.
					s.giveUp(last)
					return
				}
			}
			if !sleepCtx(ctx, backoff(failStreak)) {
				return
			}
		}
	}
}

// runLeg runs one replica-facing stream: the original request on the first
// attempt, a resume from the newest token afterwards (or the original
// again if no token has been seen — the trajectory is deterministic, and
// step dedup swallows the replay).
func (s *streamSession) runLeg(ctx context.Context, rep *Replica) *legResult {
	body := s.upstreamBody
	if s.attempt > 0 && s.lastToken != "" {
		body = s.resumeBody()
		metrics.AddStreamResumes(1)
		s.g.logf("resuming stream on %s (step <= %d)", rep.url, s.lastStep)
	}
	s.attempt++

	rep.acquire()
	defer rep.release()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return &legResult{kind: legRetry}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.g.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			rep.failed(true)
		}
		s.g.logf("stream leg on %s: transport: %v", rep.url, err)
		return &legResult{kind: legRetry}
	}
	defer resp.Body.Close()

	if failoverClass(resp.StatusCode) {
		errBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(errBody, []byte(`"draining"`)) {
			rep.setState(stateDraining)
		} else {
			rep.failed(false)
		}
		return &legResult{kind: legRetry, status: resp.StatusCode, header: resp.Header.Clone(), body: errBody}
	}
	if resp.StatusCode != http.StatusOK {
		errBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		rep.succeeded()
		return &legResult{kind: legTerminal, status: resp.StatusCode, header: resp.Header.Clone(), body: errBody}
	}

	if !s.pinned {
		if d := resp.Header.Get("X-Plan-Depth"); d != "" {
			s.pinnedDepth, _ = strconv.Atoi(d)
			s.pinnedAccuracy = resp.Header.Get("X-Plan-Accuracy")
			s.pinned = true
		}
		s.headerSrc = resp.Header.Clone()
	}

	progress := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var f serve.Frame
		if err := json.Unmarshal(line, &f); err != nil {
			// A torn frame: the replica died mid-write. Everything before
			// this line was intact, so resume from the last good token.
			rep.failed(true)
			s.g.logf("stream leg on %s: torn frame (%d bytes)", rep.url, len(line))
			return &legResult{kind: legRetry, progress: progress}
		}
		if f.ResumeToken != "" {
			s.lastToken = f.ResumeToken
			progress = true
		}
		if f.Interrupted {
			// The replica drained mid-stream: a clean hand-back, not a
			// failure. The interrupted frame is the gateway's to consume —
			// the client's stream just continues elsewhere.
			rep.setState(stateDraining)
			return &legResult{kind: legRetry, progress: true}
		}
		if f.Final || (s.clientEvery > 0 && f.Step > s.lastStep) {
			if err := s.forwardFrame(line, &f); err != nil {
				// The client went away; nothing left to supervise.
				return &legResult{kind: legDone}
			}
			s.lastStep = f.Step
			progress = true
		}
		if f.Final {
			rep.succeeded()
			return &legResult{kind: legDone}
		}
	}
	// Stream ended without a final frame: the replica (or its connection)
	// died between frames.
	if ctx.Err() == nil {
		rep.failed(true)
	}
	s.g.logf("stream leg on %s: ended without final frame (scan err %v)", rep.url, sc.Err())
	return &legResult{kind: legRetry, progress: progress}
}

// resumeBody builds the resume request: same job, continued from the
// newest token, with the plan pinned so the continuation cannot be
// re-planned (or browned out) onto a different trajectory.
func (s *streamSession) resumeBody() []byte {
	rr := serve.SimulateRequest{
		SolveRequest: serve.SolveRequest{
			Tenant:     s.req.Tenant,
			Compute:    s.req.Compute,
			Accuracy:   s.req.Accuracy,
			Depth:      s.req.Depth,
			Supernodes: s.req.Supernodes,
			DeadlineMS: s.req.DeadlineMS,
		},
		Steps:           s.req.Steps,
		DT:              0, // adopt the checkpoint's dt
		StreamEvery:     s.upEvery,
		CheckpointEvery: s.upCkpt,
		ResumeToken:     s.lastToken,
	}
	if s.pinned {
		rr.Depth = s.pinnedDepth
		rr.Accuracy = s.pinnedAccuracy
	}
	b, _ := json.Marshal(&rr)
	return b
}

// forwardFrame writes one upstream line to the client verbatim (modulo
// stripping gateway-injected checkpoint tokens the client never asked
// for), flushing so the stream is live.
func (s *streamSession) forwardFrame(line []byte, f *serve.Frame) error {
	if !s.started {
		copyHeaders(s.w.Header(), s.headerSrc)
		s.w.WriteHeader(http.StatusOK)
		s.started = true
	}
	out := line
	if s.stripTokens && f.ResumeToken != "" {
		clean := *f
		clean.ResumeToken = ""
		if b, err := json.Marshal(&clean); err == nil {
			out = b
		}
	}
	if _, err := s.w.Write(out); err != nil {
		return err
	}
	if _, err := s.w.Write([]byte{'\n'}); err != nil {
		return err
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return nil
}

// giveUp ends a stream the gateway could not keep alive.
func (s *streamSession) giveUp(last *legResult) {
	metrics.AddStreamsLost(1)
	if s.started {
		s.abortNow()
		return
	}
	if last != nil && last.status != 0 {
		copyHeaders(s.w.Header(), last.header)
		if last.status == http.StatusServiceUnavailable && s.w.Header().Get("Retry-After") == "" {
			s.w.Header().Set("Retry-After", "1")
		}
		s.w.WriteHeader(last.status)
		s.w.Write(last.body)
		return
	}
	writeGWError(s.w, http.StatusServiceUnavailable, "no_replica", "no replica available for stream")
}

func (s *streamSession) abort() {
	metrics.AddStreamsLost(1)
	s.abortNow()
}

// abortNow severs a mid-flight stream: with the status long gone, a
// connection reset is the only honest error signal left.
func (s *streamSession) abortNow() {
	panic(http.ErrAbortHandler)
}

// passthroughSimulate proxies a body the gateway could not parse to one
// replica without supervision.
func (g *Gateway) passthroughSimulate(ctx context.Context, w http.ResponseWriter, body []byte) {
	rep := g.pool.Pick(nil)
	if rep == nil {
		rep = g.pool.PickAny(nil)
	}
	if rep == nil {
		writeGWError(w, http.StatusServiceUnavailable, "no_replica", "no replica available")
		return
	}
	rep.acquire()
	defer rep.release()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		writeGWError(w, http.StatusBadGateway, "upstream_error", err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			rep.failed(true)
		}
		writeGWError(w, http.StatusBadGateway, "upstream_error", "replica unreachable")
		return
	}
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func backoff(streak int) time.Duration {
	d := time.Duration(streak) * 100 * time.Millisecond
	if d > maxStreamBackoff {
		d = maxStreamBackoff
	}
	return d
}

// sleepCtx sleeps d or until ctx is done; false means the context won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
