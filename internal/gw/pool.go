// Package gw is the replicated serving tier: a reverse-proxy gateway in
// front of N nbodyd replicas. It owns replica health (active /v1/healthz
// probing plus passive ejection on connection failures, with a per-replica
// circuit breaker from internal/resilience), solve routing (least-
// outstanding placement, retry-budgeted failover with idempotency keys,
// optional hedged requests for tail latency on small shapes), and
// crash-survivable /v1/simulate streams: the gateway injects checkpoint
// frames into upstream streams, tracks the latest resume token, and when a
// replica dies mid-stream transparently resumes the simulation on a
// healthy replica — the client sees one uninterrupted NDJSON stream whose
// final frame is bitwise-identical to a single-process run.
package gw

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"nbody/internal/metrics"
	"nbody/internal/resilience"
)

// replica states as the pool sees them.
const (
	stateHealthy int32 = iota
	stateDraining
	stateDown
)

func stateName(s int32) string {
	switch s {
	case stateDraining:
		return "draining"
	case stateDown:
		return "down"
	default:
		return "healthy"
	}
}

// Replica is one nbodyd backend: its base URL, the pool's view of its
// health, a consecutive-failure circuit breaker shared between the active
// probe and passive request outcomes, and the outstanding-request gauge
// the least-loaded picker reads.
type Replica struct {
	url     string
	breaker *resilience.Breaker

	mu         sync.Mutex
	state      int32
	probeFails int

	outstanding int64 // guarded by mu (gauge, not hot)
}

// URL returns the replica's base URL.
func (r *Replica) URL() string { return r.url }

func (r *Replica) setState(s int32) (was int32) {
	r.mu.Lock()
	was = r.state
	r.state = s
	r.mu.Unlock()
	return was
}

func (r *Replica) getState() int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// eligible reports whether new work may route here: probed healthy (not
// draining, not down) and the breaker closed.
func (r *Replica) eligible() bool {
	return r.getState() == stateHealthy && r.breaker.Allow()
}

// acquire/release maintain the outstanding gauge around one proxied
// request.
func (r *Replica) acquire() {
	r.mu.Lock()
	r.outstanding++
	r.mu.Unlock()
}

func (r *Replica) release() {
	r.mu.Lock()
	r.outstanding--
	r.mu.Unlock()
}

func (r *Replica) load() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.outstanding
}

// failed records one failed request against the replica. transportDown
// marks connection-level failures (refused, reset, EOF before status):
// the strongest evidence a process is gone, acted on immediately rather
// than waiting DownAfter probes.
func (r *Replica) failed(transportDown bool) {
	if r.breaker.Failure() {
		metrics.AddEjections(1)
	}
	if transportDown {
		if r.setState(stateDown) == stateHealthy {
			metrics.AddEjections(1)
		}
	}
}

// succeeded records one successful request: closes the breaker.
func (r *Replica) succeeded() { r.breaker.Success() }

// ReplicaStatus is one replica's row in the gateway metrics document.
type ReplicaStatus struct {
	URL         string `json:"url"`
	State       string `json:"state"`
	BreakerOpen bool   `json:"breaker_open,omitempty"`
	Outstanding int64  `json:"outstanding"`
}

// Pool owns the replica set and the active health-probe loop.
type Pool struct {
	replicas   []*Replica
	client     *http.Client
	probeEvery time.Duration
	downAfter  int

	mu sync.Mutex
	rr int

	stop chan struct{}
	done chan struct{}
}

// newPool builds the pool; Start begins probing.
func newPool(urls []string, client *http.Client, probeEvery time.Duration, downAfter, breakerThreshold int, breakerCooldown time.Duration) *Pool {
	p := &Pool{
		client:     client,
		probeEvery: probeEvery,
		downAfter:  downAfter,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, u := range urls {
		p.replicas = append(p.replicas, &Replica{
			url:     strings.TrimRight(u, "/"),
			breaker: resilience.NewBreaker(breakerThreshold, breakerCooldown),
		})
	}
	return p
}

// Start probes every replica once synchronously (so the pool opens with a
// real view of the fleet, not optimism), then keeps probing each replica
// independently on the configured cadence until Close.
func (p *Pool) Start() {
	for _, r := range p.replicas {
		p.probe(r)
	}
	var wg sync.WaitGroup
	for _, r := range p.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			tick := time.NewTicker(p.probeEvery)
			defer tick.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-tick.C:
					p.probe(r)
				}
			}
		}(r)
	}
	go func() {
		wg.Wait()
		close(p.done)
	}()
}

// Close stops the probe loop.
func (p *Pool) Close() {
	close(p.stop)
	<-p.done
}

// probe polls one replica's /v1/healthz and folds the answer into its
// state: "ok" heals (and counts a recovery if it was down), "draining"
// stops routing without counting an ejection (the replica is healthy, it
// just asked for no new work), and DownAfter consecutive failures mark it
// down. The probe timeout is floored at a second: a fast probe cadence
// must not turn scheduling delay on a busy host into a false ejection.
func (p *Pool) probe(r *Replica) {
	timeout := p.probeEvery
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/v1/healthz", http.NoBody)
	if err != nil {
		p.probeFailed(r)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.probeFailed(r)
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body) != nil {
		p.probeFailed(r)
		return
	}
	r.mu.Lock()
	r.probeFails = 0
	was := r.state
	switch body.Status {
	case "draining":
		r.state = stateDraining
	case "ok":
		r.state = stateHealthy
	default:
		r.mu.Unlock()
		p.probeFailed(r)
		return
	}
	now := r.state
	r.mu.Unlock()
	if was == stateDown && now == stateHealthy {
		metrics.AddRecoveries(1)
		// The process came back (a restart): the old breaker evidence is
		// about its previous life.
		r.breaker.Success()
	}
}

func (p *Pool) probeFailed(r *Replica) {
	r.mu.Lock()
	r.probeFails++
	trip := r.probeFails >= p.downAfter && r.state != stateDown
	if trip {
		r.state = stateDown
	}
	r.mu.Unlock()
	if trip {
		metrics.AddEjections(1)
	}
}

// Pick returns the eligible replica with the fewest outstanding requests,
// breaking ties in round-robin order, skipping any the caller excludes.
// Returns nil when no replica is eligible.
func (p *Pool) Pick(exclude map[*Replica]bool) *Replica {
	p.mu.Lock()
	start := p.rr
	p.rr = (p.rr + 1) % max(1, len(p.replicas))
	p.mu.Unlock()

	var best *Replica
	var bestLoad int64
	n := len(p.replicas)
	for i := 0; i < n; i++ {
		r := p.replicas[(start+i)%n]
		if exclude[r] || !r.eligible() {
			continue
		}
		if l := r.load(); best == nil || l < bestLoad {
			best, bestLoad = r, l
		}
	}
	return best
}

// PickAny is Pick without the health filter: the last resort when no
// replica is eligible but the request still deserves one attempt (probes
// lag reality in both directions).
func (p *Pool) PickAny(exclude map[*Replica]bool) *Replica {
	p.mu.Lock()
	start := p.rr
	p.rr = (p.rr + 1) % max(1, len(p.replicas))
	p.mu.Unlock()
	var best *Replica
	var bestLoad int64
	n := len(p.replicas)
	for i := 0; i < n; i++ {
		r := p.replicas[(start+i)%n]
		if exclude[r] {
			continue
		}
		if l := r.load(); best == nil || l < bestLoad {
			best, bestLoad = r, l
		}
	}
	return best
}

// Eligible counts currently routable replicas.
func (p *Pool) Eligible() int {
	n := 0
	for _, r := range p.replicas {
		if r.eligible() {
			n++
		}
	}
	return n
}

// Status snapshots every replica for the metrics document.
func (p *Pool) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(p.replicas))
	for _, r := range p.replicas {
		out = append(out, ReplicaStatus{
			URL:         r.url,
			State:       stateName(r.getState()),
			BreakerOpen: r.breaker.Open(),
			Outstanding: r.load(),
		})
	}
	return out
}
