package gw

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nbody"
	"nbody/internal/metrics"
	"nbody/internal/serve"
)

// testReplica is an in-process nbodyd whose process lifecycle the tests
// control: Kill severs every connection and stops listening (the closest
// an in-process fixture gets to SIGKILL), Restart brings a fresh server
// up on the same address, and Drain flips it into the cooperative
// shutdown state.
type testReplica struct {
	t    *testing.T
	addr string
	cfg  serve.Config

	mu  sync.Mutex
	srv *serve.Server
	hs  *http.Server
	ln  net.Listener
	up  bool
}

func startReplica(t *testing.T, cfg serve.Config) *testReplica {
	t.Helper()
	cfg.Quiet = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &testReplica{t: t, addr: ln.Addr().String(), cfg: cfg}
	r.start(ln)
	t.Cleanup(func() { r.Kill() })
	return r
}

func (r *testReplica) start(ln net.Listener) {
	srv, err := serve.New(r.cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	r.mu.Lock()
	r.srv, r.hs, r.ln, r.up = srv, hs, ln, true
	r.mu.Unlock()
	go hs.Serve(ln)
}

func (r *testReplica) URL() string { return "http://" + r.addr }

// Kill is the SIGKILL analog: every open connection drops mid-byte and
// the port stops answering.
func (r *testReplica) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.up {
		return
	}
	r.up = false
	r.hs.Close()
	r.srv.Close()
	r.ln.Close()
}

// Restart binds a fresh server to the same address (a supervisor
// restarting the crashed process).
func (r *testReplica) Restart() {
	r.mu.Lock()
	if r.up {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		r.t.Errorf("restart %s: %v", r.addr, err)
		return
	}
	r.start(ln)
}

func newGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	metrics.ResetGateway()
	cfg.Quiet = true
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// gwServer wraps the gateway in a real HTTP server (streams need real
// flushing and connection semantics).
func gwServer(t *testing.T, g *Gateway) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(g)
	t.Cleanup(hs.Close)
	return hs
}

func solveBody(t *testing.T, tenant string, n int, seed int64) []byte {
	t.Helper()
	sys := nbody.NewUniformSystem(n, seed)
	req := serve.SolveRequest{Tenant: tenant, Positions: make([][3]float64, n), Charges: sys.Charges}
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func simBody(t *testing.T, tenant string, n, steps int, mutate func(*serve.SimulateRequest)) []byte {
	t.Helper()
	sys := nbody.NewUniformSystem(n, 7)
	req := serve.SimulateRequest{
		SolveRequest: serve.SolveRequest{Tenant: tenant, Positions: make([][3]float64, n), Charges: sys.Charges},
		Steps:        steps,
		DT:           1e-4,
		StreamEvery:  1,
	}
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	if mutate != nil {
		mutate(&req)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSolve(t *testing.T, client *http.Client, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := client.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return resp
}

func waitState(t *testing.T, g *Gateway, url, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, st := range g.pool.Status() {
			if strings.HasSuffix(url, st.URL) || st.URL == url {
				if st.State == want {
					return
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica %s never reached state %q: %+v", url, want, g.pool.Status())
}

func TestGatewayFailoverOnDeadReplica(t *testing.T) {
	r0 := startReplica(t, serve.Config{})
	r1 := startReplica(t, serve.Config{})
	g := newGateway(t, Config{Replicas: []string{r0.URL(), r1.URL()}, ProbeEvery: 100 * time.Millisecond})
	hs := gwServer(t, g)

	// Kill r0 after the gateway saw it healthy: the first pick goes there,
	// fails at the transport, and must fail over to r1 without the client
	// seeing anything but a 200.
	r0.Kill()
	resp := postSolve(t, hs.Client(), hs.URL, solveBody(t, "ten", 128, 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d after failover, body %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-GW-Replica"); got != r1.URL() {
		t.Fatalf("served by %q, want %q", got, r1.URL())
	}
	if s := metrics.ReadGateway(); s.Failovers < 1 || s.Ejections < 1 {
		t.Fatalf("expected failover + ejection, got %+v", s)
	}
	// The transport failure marks r0 down immediately; later solves must
	// not touch it.
	for i := 0; i < 3; i++ {
		resp := postSolve(t, hs.Client(), hs.URL, solveBody(t, "ten", 128, 1))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-GW-Replica"); got != r1.URL() {
			t.Fatalf("solve %d served by %q, want %q", i, got, r1.URL())
		}
	}
}

func TestGatewayProbeDetectsDrainingAndRecovery(t *testing.T) {
	r0 := startReplica(t, serve.Config{})
	r1 := startReplica(t, serve.Config{})
	g := newGateway(t, Config{Replicas: []string{r0.URL(), r1.URL()}, ProbeEvery: 50 * time.Millisecond})
	hs := gwServer(t, g)

	// Drain r0 over its own API; the probe must flip it out of rotation.
	resp, err := http.Post(r0.URL()+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, g, r0.URL(), "draining")

	for i := 0; i < 3; i++ {
		resp := postSolve(t, hs.Client(), hs.URL, solveBody(t, "ten", 64, 2))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d during drain: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-GW-Replica"); got != r1.URL() {
			t.Fatalf("routed to draining replica %q", got)
		}
	}

	// Kill + restart r0: the probe must walk it down and back up.
	r0.Kill()
	waitState(t, g, r0.URL(), "down")
	r0.Restart()
	waitState(t, g, r0.URL(), "healthy")
	if s := metrics.ReadGateway(); s.Recoveries < 1 {
		t.Fatalf("expected a recovery, got %+v", s)
	}
}

func TestGatewayNoReplica(t *testing.T) {
	r0 := startReplica(t, serve.Config{})
	g := newGateway(t, Config{Replicas: []string{r0.URL()}, ProbeEvery: 50 * time.Millisecond})
	hs := gwServer(t, g)
	r0.Kill()
	waitState(t, g, r0.URL(), "down")

	// Gateway healthz degrades with nothing eligible.
	hresp, err := hs.Client().Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: status %d", hresp.StatusCode)
	}

	resp := postSolve(t, hs.Client(), hs.URL, solveBody(t, "ten", 64, 3))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve with dead fleet: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestGatewayRetryBudgetExhaustion(t *testing.T) {
	r0 := startReplica(t, serve.Config{})
	r1 := startReplica(t, serve.Config{})
	// A budget that admits no retries at all: the first failure must
	// surface instead of failing over.
	g := newGateway(t, Config{
		Replicas:   []string{r0.URL(), r1.URL()},
		ProbeEvery: time.Hour, // keep the stale healthy view
		RetryRate:  1e-9,
		RetryBurst: 1e-9,
	})
	hs := gwServer(t, g)
	r0.Kill()

	resp := postSolve(t, hs.Client(), hs.URL, solveBody(t, "ten", 64, 4))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (budget spent, no failover)", resp.StatusCode)
	}
	if s := metrics.ReadGateway(); s.Failovers != 0 {
		t.Fatalf("failovers %d, want 0 with an empty budget", s.Failovers)
	}
}

func TestGatewayIdempotentFailover(t *testing.T) {
	// One replica serving, one draining mid-request is hard to stage
	// deterministically; instead verify the key plumbing end to end: the
	// gateway forwards a client key, and a second identical request
	// replays server-side instead of re-solving.
	r0 := startReplica(t, serve.Config{})
	g := newGateway(t, Config{Replicas: []string{r0.URL()}, ProbeEvery: 100 * time.Millisecond})
	hs := gwServer(t, g)

	body := solveBody(t, "idem", 128, 5)
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "client-key-1")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d", resp.StatusCode)
	}

	req2, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/solve", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("Idempotency-Key", "client-key-1")
	resp2, err := hs.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Idempotent-Replay") != "1" {
		t.Fatal("second request with same key was not replayed")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("replayed body differs from original")
	}
}

func TestGatewayHedgeWins(t *testing.T) {
	fast := startReplica(t, serve.Config{})
	// The slow replica answers healthz promptly but sits on solves: the
	// hedge-delay path, not the health path, must rescue the request.
	slowBackend := startReplica(t, serve.Config{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/solve" {
			time.Sleep(400 * time.Millisecond)
		}
		u := slowBackend.URL() + r.URL.Path
		req, _ := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		copyHeaders(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(slow.Close)

	g := newGateway(t, Config{
		Replicas:    []string{slow.URL, fast.URL()},
		ProbeEvery:  100 * time.Millisecond,
		Hedge:       true,
		HedgeMin:    10 * time.Millisecond,
		HedgeFactor: 1,
	})
	hs := gwServer(t, g)

	start := time.Now()
	resp := postSolve(t, hs.Client(), hs.URL, solveBody(t, "ten", 256, 6))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-GW-Replica"); got != fast.URL() {
		t.Fatalf("served by %q, want the hedge target %q", got, fast.URL())
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not rescue the tail: took %v", elapsed)
	}
	if s := metrics.ReadGateway(); s.HedgesFired < 1 || s.HedgesWon < 1 {
		t.Fatalf("expected a fired+won hedge, got %+v", s)
	}
}

// readFrames consumes an NDJSON stream, returning every frame.
func readFrames(t *testing.T, body io.Reader) []serve.Frame {
	t.Helper()
	var frames []serve.Frame
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var f serve.Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Bytes(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	return frames
}

func TestGatewayStreamResumeBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second stream chaos")
	}
	r0 := startReplica(t, serve.Config{})
	r1 := startReplica(t, serve.Config{})
	g := newGateway(t, Config{Replicas: []string{r0.URL(), r1.URL()}, ProbeEvery: 50 * time.Millisecond})
	hs := gwServer(t, g)

	const n, steps = 64, 1200
	body := simBody(t, "stream", n, steps, func(r *serve.SimulateRequest) { r.DT = 1e-5 })
	resp, err := hs.Client().Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, b)
	}

	// Read a few frames, then SIGKILL the replica serving the stream (the
	// deterministic first pick is r0). The client keeps reading the same
	// response; the gateway must splice in a resumed stream.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	var frames []serve.Frame
	for len(frames) < 3 && sc.Scan() {
		var f serve.Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame: %v", err)
		}
		frames = append(frames, f)
	}
	r0.Kill()
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var f serve.Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame after kill: %v", err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("client stream broke: %v", err)
	}

	// Continuity: every step 1..steps exactly once, in order, final last.
	if len(frames) != steps {
		t.Fatalf("got %d frames, want %d", len(frames), steps)
	}
	for i, f := range frames {
		if f.Step != i+1 {
			t.Fatalf("frame %d has step %d (duplicate or gap)", i, f.Step)
		}
		if f.Interrupted {
			t.Fatalf("interrupted frame leaked to the client at step %d", f.Step)
		}
		if f.ResumeToken != "" {
			t.Fatalf("gateway-injected token leaked at step %d", f.Step)
		}
	}
	last := frames[len(frames)-1]
	if !last.Final || len(last.Positions) != n {
		t.Fatalf("no final frame with full state: %+v", last)
	}
	if s := metrics.ReadGateway(); s.StreamResumes < 1 {
		t.Fatalf("expected a stream resume, got %+v", s)
	}
	if s := metrics.ReadGateway(); s.StreamsLost != 0 {
		t.Fatalf("stream counted lost: %+v", s)
	}

	// Bitwise acceptance: an uninterrupted run of the same request on a
	// fresh single replica, with the plan pinned to what the gateway ran,
	// must produce an identical final frame.
	depth := resp.Header.Get("X-Plan-Depth")
	accuracy := resp.Header.Get("X-Plan-Accuracy")
	ref := startReplica(t, serve.Config{})
	refBody := simBody(t, "stream", n, steps, func(r *serve.SimulateRequest) {
		r.DT = 1e-5
		r.StreamEvery = steps // final frame only
		fmt.Sscanf(depth, "%d", &r.Depth)
		r.Accuracy = accuracy
	})
	refResp, err := http.Post(ref.URL()+"/v1/simulate", "application/json", bytes.NewReader(refBody))
	if err != nil {
		t.Fatal(err)
	}
	defer refResp.Body.Close()
	refFrames := readFrames(t, refResp.Body)
	refLast := refFrames[len(refFrames)-1]
	if !refLast.Final {
		t.Fatal("reference run produced no final frame")
	}
	if refLast.Total != last.Total {
		t.Fatalf("final energy differs: gateway %v, reference %v", last.Total, refLast.Total)
	}
	for i := range refLast.Positions {
		if refLast.Positions[i] != last.Positions[i] {
			t.Fatalf("position %d differs: gateway %v, reference %v", i, last.Positions[i], refLast.Positions[i])
		}
		if refLast.Velocity[i] != last.Velocity[i] {
			t.Fatalf("velocity %d differs: gateway %v, reference %v", i, last.Velocity[i], refLast.Velocity[i])
		}
	}
}

func TestGatewayStreamFinalOnlyClient(t *testing.T) {
	// A client that wants only the final frame still gets a
	// crash-survivable stream: the gateway's injected cadence stays
	// invisible.
	r0 := startReplica(t, serve.Config{})
	r1 := startReplica(t, serve.Config{})
	g := newGateway(t, Config{Replicas: []string{r0.URL(), r1.URL()}, ProbeEvery: 50 * time.Millisecond})
	hs := gwServer(t, g)

	// dt small enough that the uniform system stays bound for the whole
	// integration (close pairs in a random system blow up at dt=1e-4).
	body := simBody(t, "finonly", 64, 1500, func(r *serve.SimulateRequest) {
		r.StreamEvery = 0
		r.DT = 1e-5
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(300 * time.Millisecond)
		r0.Kill()
	}()
	resp, err := hs.Client().Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	frames := readFrames(t, resp.Body)
	<-done
	if len(frames) != 1 {
		t.Fatalf("final-only client got %d frames, want 1", len(frames))
	}
	if !frames[0].Final || frames[0].Step != 1500 {
		t.Fatalf("not a final frame at the last step: %+v", frames[0])
	}
}

func TestGatewayChaosKillLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos loop")
	}
	reps := []*testReplica{
		startReplica(t, serve.Config{}),
		startReplica(t, serve.Config{}),
		startReplica(t, serve.Config{}),
	}
	urls := []string{reps[0].URL(), reps[1].URL(), reps[2].URL()}
	g := newGateway(t, Config{Replicas: urls, ProbeEvery: 50 * time.Millisecond, Hedge: true})
	hs := gwServer(t, g)

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		// The kill loop: every 700ms SIGKILL one replica (round-robin),
		// restart it 400ms later. At most one replica is dead at a time.
		defer chaos.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(700 * time.Millisecond):
			}
			r := reps[i%len(reps)]
			i++
			r.Kill()
			select {
			case <-stop:
				r.Restart()
				return
			case <-time.After(400 * time.Millisecond):
			}
			r.Restart()
		}
	}()

	var work sync.WaitGroup
	var solve5xx, solveErr, solveOK int64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			body := solveBody(t, fmt.Sprintf("chaos-%d", w), 192, int64(w))
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				resp, err := hs.Client().Post(hs.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				mu.Lock()
				if err != nil {
					solveErr++
				} else {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusOK:
						solveOK++
					case resp.StatusCode >= 500:
						solve5xx++
						t.Logf("solve 5xx: status %d body %.200s", resp.StatusCode, b)
					}
				}
				mu.Unlock()
				time.Sleep(25 * time.Millisecond)
			}
		}(w)
	}

	// Two long streams riding through the kills.
	streamFinals := make([]*serve.Frame, 2)
	for si := range streamFinals {
		work.Add(1)
		go func(si int) {
			defer work.Done()
			body := simBody(t, fmt.Sprintf("stream-%d", si), 64, 6000, func(r *serve.SimulateRequest) { r.DT = 1e-6 })
			resp, err := hs.Client().Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("stream %d: %v", si, err)
				return
			}
			defer resp.Body.Close()
			frames := readFrames(t, resp.Body)
			prev := 0
			for _, f := range frames {
				if f.Step <= prev {
					t.Errorf("stream %d: step %d after %d", si, f.Step, prev)
					return
				}
				prev = f.Step
			}
			if len(frames) == 0 || !frames[len(frames)-1].Final {
				t.Errorf("stream %d: no final frame (lost)", si)
				return
			}
			streamFinals[si] = &frames[len(frames)-1]
		}(si)
	}

	work.Wait()
	close(stop)
	chaos.Wait()

	t.Logf("gateway stats: %+v, retry tokens %.1f", metrics.ReadGateway(), g.budget.available())
	if solve5xx != 0 {
		t.Errorf("%d well-behaved solves saw 5xx (ok %d, transport err %d)", solve5xx, solveOK, solveErr)
	}
	if solveErr != 0 {
		t.Errorf("%d solves failed at the transport", solveErr)
	}
	if solveOK == 0 {
		t.Error("no solve succeeded at all")
	}
	if s := metrics.ReadGateway(); s.StreamsLost != 0 {
		t.Errorf("streams lost under chaos: %+v", s)
	}
	for si, f := range streamFinals {
		if f == nil {
			continue // already reported
		}
		if f.Step != 6000 {
			t.Errorf("stream %d final at step %d, want 6000", si, f.Step)
		}
	}
}
