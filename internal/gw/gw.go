package gw

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/bits"
	"net/http"
	"sync"
	"time"

	"nbody/internal/metrics"
)

// Config configures the gateway. Zero values select the documented
// defaults; only Replicas is required.
type Config struct {
	// Replicas are the nbodyd base URLs the gateway fronts.
	Replicas []string
	// ProbeEvery is the active health-check cadence (default 250ms).
	ProbeEvery time.Duration
	// DownAfter is the consecutive probe failures before a replica is
	// marked down (default 2).
	DownAfter int
	// BreakerThreshold / BreakerCooldown configure the per-replica circuit
	// breaker fed by passive request outcomes (default 3 failures, 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryRate / RetryBurst configure the token-bucket retry budget every
	// failover and hedge draws from (default 20/s, burst 20). The budget is
	// what keeps a fleet-wide incident from turning into a retry storm.
	RetryRate  float64
	RetryBurst float64
	// Hedge enables hedged solve requests: when the primary replica has
	// not answered within hedgeDelay (latency EWMA for the request's size
	// class × HedgeFactor, floored at HedgeMin), a duplicate is sent to a
	// second replica with the same idempotency key and the first answer
	// wins. Only requests up to HedgeMaxN particles hedge — duplicated
	// work must be cheap to be worth buying latency with.
	Hedge       bool
	HedgeMaxN   int           // default 4096
	HedgeFactor float64       // default 3
	HedgeMin    time.Duration // default 20ms
	// StreamRetryWindow is how long a simulate stream may go without any
	// progress (a frame or a checkpoint token from some replica) before
	// the gateway declares it lost (default 30s). Attempts within the
	// window are unlimited — a restarting fleet is reachable again on the
	// probe cadence, and a counter would conflate fast failures with a
	// dead fleet.
	StreamRetryWindow time.Duration
	// MaxBodyBytes caps a proxied request body (default 64 MiB).
	MaxBodyBytes int64
	// Client overrides the upstream HTTP client (tests).
	Client *http.Client
	// Quiet suppresses routing logs.
	Quiet bool
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.ProbeEvery <= 0 {
		d.ProbeEvery = 250 * time.Millisecond
	}
	if d.DownAfter <= 0 {
		d.DownAfter = 2
	}
	if d.BreakerThreshold == 0 {
		d.BreakerThreshold = 3
	}
	if d.BreakerCooldown <= 0 {
		d.BreakerCooldown = 2 * time.Second
	}
	if d.RetryRate <= 0 {
		d.RetryRate = 20
	}
	if d.RetryBurst <= 0 {
		d.RetryBurst = 20
	}
	if d.HedgeMaxN <= 0 {
		d.HedgeMaxN = 4096
	}
	if d.HedgeFactor <= 0 {
		d.HedgeFactor = 3
	}
	if d.HedgeMin <= 0 {
		d.HedgeMin = 20 * time.Millisecond
	}
	if d.StreamRetryWindow <= 0 {
		d.StreamRetryWindow = 30 * time.Second
	}
	if d.MaxBodyBytes <= 0 {
		d.MaxBodyBytes = 64 << 20
	}
	if d.Client == nil {
		d.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	return d
}

// Gateway is the reverse proxy: an http.Handler exposing the same /v1
// surface as one nbodyd, backed by the pool.
type Gateway struct {
	cfg    Config
	pool   *Pool
	client *http.Client
	budget *tokenBucket
	lat    *latencyEWMA
	mux    *http.ServeMux
}

// New builds the gateway and synchronously probes every replica once, so
// the first request already routes on real health.
func New(cfg Config) (*Gateway, error) {
	c := cfg.withDefaults()
	if len(c.Replicas) == 0 {
		return nil, fmt.Errorf("gw: no replicas configured")
	}
	g := &Gateway{
		cfg:    c,
		client: c.Client,
		budget: newTokenBucket(c.RetryRate, c.RetryBurst),
		lat:    &latencyEWMA{},
	}
	g.pool = newPool(c.Replicas, g.client, c.ProbeEvery, c.DownAfter, c.BreakerThreshold, c.BreakerCooldown)
	g.pool.Start()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", g.handleSolve)
	mux.HandleFunc("POST /v1/simulate", g.handleSimulate)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	g.mux = mux
	return g, nil
}

// Close stops the health-probe loop. In-flight proxied requests are the
// caller's http.Server's to drain.
func (g *Gateway) Close() { g.pool.Close() }

// Pool exposes the replica pool (metrics, tests).
func (g *Gateway) Pool() *Pool { return g.pool }

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) logf(format string, args ...any) {
	if !g.cfg.Quiet {
		log.Printf("gw: "+format, args...)
	}
}

// gwError mirrors serve.ErrorResponse so clients see one error shape
// whether the gateway or a replica produced it.
func writeGWError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// handleHealthz reports the gateway's own routability: ok while at least
// one replica is eligible, degraded (503) otherwise.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eligible := g.pool.Eligible()
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if eligible == 0 {
		status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{"status": status, "eligible": eligible})
}

// MetricsDoc is the body of the gateway's GET /v1/metrics.
type MetricsDoc struct {
	Replicas    []ReplicaStatus      `json:"replicas"`
	Gateway     metrics.GatewayStats `json:"gateway"`
	RetryTokens float64              `json:"retry_tokens"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := MetricsDoc{
		Replicas:    g.pool.Status(),
		Gateway:     metrics.ReadGateway(),
		RetryTokens: g.budget.available(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// ---- solve proxy ----

// solveOutcome is one leg's classified result. commit means resp is an
// answer to forward (anything that is not failover-class); otherwise the
// leg failed with either a transport error (err) or a buffered
// failover-class response (status/header/errBody).
type solveOutcome struct {
	rep     *Replica
	resp    *http.Response // open; forwardResponse closes + releases
	commit  bool
	status  int
	header  http.Header
	errBody []byte
	err     error
}

// failoverClass reports whether a status is worth retrying on another
// replica: internal errors and unavailability. 4xx (the request is wrong
// everywhere), 429 (backpressure the client must heed), and 504 (the
// deadline is already spent) all forward as-is.
func failoverClass(status int) bool {
	return status == http.StatusInternalServerError ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable
}

func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeGWError(w, http.StatusRequestEntityTooLarge, "too_large", "request body exceeds gateway cap")
		return
	}
	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey == "" {
		// The gateway stamps its own key so its retries and hedges are
		// idempotent even for clients that never heard of the header.
		idemKey = newIdemKey()
	}
	n := particleCount(body)
	ctx := r.Context()

	tried := make(map[*Replica]bool, len(g.pool.replicas))
	var last *solveOutcome
	for attempt := 0; attempt <= len(g.pool.replicas); attempt++ {
		rep := g.pool.Pick(tried)
		if rep == nil {
			// Probes and breakers lag reality in both directions: with
			// nothing eligible but untried replicas left, a blind attempt
			// (still budgeted past the first) beats a reflexive 503.
			rep = g.pool.PickAny(tried)
		}
		if rep == nil {
			break
		}
		tried[rep] = true
		var out *solveOutcome
		var cleanup func()
		if attempt == 0 && g.hedgeApplies(n) {
			out, cleanup = g.raceSolve(ctx, rep, body, idemKey, n, tried)
		} else {
			out = g.sendSolve(ctx, rep, body, idemKey, n)
		}
		if out.commit {
			g.forwardResponse(w, out)
			if cleanup != nil {
				cleanup()
			}
			return
		}
		if cleanup != nil {
			cleanup()
		}
		last = out
		if ctx.Err() != nil {
			break
		}
		if !g.budget.take(1) {
			g.logf("retry budget exhausted, forwarding failure for %s", rep.url)
			break
		}
		metrics.AddFailovers(1)
		g.logf("solve failover from %s (%v)", rep.url, outcomeReason(out))
	}
	g.forwardFailure(w, last)
}

func outcomeReason(o *solveOutcome) string {
	if o.err != nil {
		return o.err.Error()
	}
	return fmt.Sprintf("status %d", o.status)
}

// forwardFailure surfaces the terminal failure: the last upstream error
// response verbatim when there is one, a gateway 503 otherwise.
func (g *Gateway) forwardFailure(w http.ResponseWriter, last *solveOutcome) {
	if last != nil && last.status != 0 {
		copyHeaders(w.Header(), last.header)
		if last.status == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(last.status)
		w.Write(last.errBody)
		return
	}
	writeGWError(w, http.StatusServiceUnavailable, "no_replica", "no replica available")
}

// sendSolve runs one leg: one POST /v1/solve against one replica, with
// passive health accounting folded into the classification.
func (g *Gateway) sendSolve(ctx context.Context, rep *Replica, body []byte, idemKey string, n int) *solveOutcome {
	rep.acquire()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		rep.release()
		return &solveOutcome{rep: rep, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", idemKey)
	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		rep.release()
		if ctx.Err() == nil {
			// A connection-level failure with a live caller context is the
			// replica's fault; treat it as evidence the process is gone.
			rep.failed(true)
		}
		return &solveOutcome{rep: rep, err: err}
	}
	if failoverClass(resp.StatusCode) {
		errBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		rep.release()
		if resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(errBody, []byte(`"draining"`)) {
			// Draining is cooperative, not a failure: stop routing there
			// without charging the breaker.
			rep.setState(stateDraining)
		} else {
			rep.failed(false)
		}
		return &solveOutcome{rep: rep, status: resp.StatusCode, header: resp.Header.Clone(), errBody: errBody}
	}
	rep.succeeded()
	if resp.StatusCode < 300 {
		g.lat.observe(n, time.Since(start))
	}
	return &solveOutcome{rep: rep, resp: resp, commit: true}
}

func (g *Gateway) hedgeApplies(n int) bool {
	return g.cfg.Hedge && n > 0 && n <= g.cfg.HedgeMaxN && g.pool.Eligible() >= 2
}

// raceSolve runs the primary leg and, if it has not answered within the
// hedge delay, a duplicate on a second replica; the first committed answer
// wins and the loser is canceled. The returned cleanup cancels both leg
// contexts and must run after the winner has been forwarded.
func (g *Gateway) raceSolve(ctx context.Context, primary *Replica, body []byte, idemKey string, n int, tried map[*Replica]bool) (*solveOutcome, func()) {
	pctx, pcancel := context.WithCancel(ctx)
	hctx, hcancel := context.WithCancel(ctx)
	cleanup := func() { pcancel(); hcancel() }

	ch := make(chan *solveOutcome, 2)
	go func() { ch <- g.sendSolve(pctx, primary, body, idemKey, n) }()

	timer := time.NewTimer(g.lat.delay(n, g.cfg.HedgeFactor, g.cfg.HedgeMin))
	defer timer.Stop()

	hedged := false
	var first *solveOutcome
	select {
	case first = <-ch:
	case <-timer.C:
		second := g.pool.Pick(map[*Replica]bool{primary: true})
		if second != nil && g.budget.take(1) {
			hedged = true
			tried[second] = true
			metrics.AddHedgesFired(1)
			go func() { ch <- g.sendSolve(hctx, second, body, idemKey, n) }()
		}
		first = <-ch
	}
	if !hedged {
		return first, cleanup
	}
	winner := first
	if !winner.commit {
		// The first leg back failed; the race is now just the other leg.
		winner = <-ch
		if winner.commit {
			g.noteHedgeResult(winner, primary)
		}
		return winner, cleanup
	}
	g.noteHedgeResult(winner, primary)
	// Cancel and drain the loser so its connection and outstanding slot are
	// returned even though nobody is waiting on it.
	loserCancel := pcancel
	if winner.rep == primary {
		loserCancel = hcancel
	}
	loserCancel()
	go func() {
		if o := <-ch; o != nil && o.resp != nil {
			o.resp.Body.Close()
			o.rep.release()
		}
	}()
	return winner, func() { pcancel(); hcancel() }
}

func (g *Gateway) noteHedgeResult(winner *solveOutcome, primary *Replica) {
	if winner.rep == primary {
		metrics.AddHedgesLost(1)
	} else {
		metrics.AddHedgesWon(1)
	}
}

// forwardResponse streams the committed upstream answer to the client.
func (g *Gateway) forwardResponse(w http.ResponseWriter, out *solveOutcome) {
	defer out.rep.release()
	defer out.resp.Body.Close()
	copyHeaders(w.Header(), out.resp.Header)
	w.Header().Set("X-GW-Replica", out.rep.url)
	w.WriteHeader(out.resp.StatusCode)
	io.Copy(w, out.resp.Body)
}

// copyHeaders copies end-to-end headers (Go's client already strips
// hop-by-hop ones; Content-Length is recomputed by the server).
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Content-Length":
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}

// particleCount cheaply extracts len(positions) from a request body for
// the hedge size gate; 0 when it cannot tell.
func particleCount(body []byte) int {
	var probe struct {
		Positions []json.RawMessage `json:"positions"`
	}
	if json.Unmarshal(body, &probe) != nil {
		return 0
	}
	return len(probe.Positions)
}

// newIdemKey returns a fresh random idempotency key.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// constant-free but weaker key source is not worth it — panic loud.
		panic(fmt.Sprintf("gw: crypto/rand: %v", err))
	}
	return "gw-" + hex.EncodeToString(b[:])
}

// ---- retry budget ----

// tokenBucket is the retry budget: rate tokens/second up to burst. Every
// failover retry and every hedge costs one token, so a dead fleet degrades
// to pass-through errors instead of a retry storm.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{tokens: burst, burst: burst, rate: rate, last: time.Now()}
}

func (b *tokenBucket) refill(now time.Time) {
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

func (b *tokenBucket) take(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(time.Now())
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

func (b *tokenBucket) available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(time.Now())
	return b.tokens
}

// ---- latency estimator ----

// latencyEWMA keeps a per-size-class (log2 of particle count) EWMA of
// successful solve latencies; the hedge delay is this estimate times
// HedgeFactor, so hedges fire only when the primary is genuinely late for
// its class, not merely slower than some global average.
type latencyEWMA struct {
	mu      sync.Mutex
	buckets [40]float64 // ns, index = bits.Len(n)
}

func (l *latencyEWMA) observe(n int, d time.Duration) {
	if n <= 0 {
		return
	}
	b := bits.Len(uint(n))
	l.mu.Lock()
	if v := l.buckets[b]; v == 0 {
		l.buckets[b] = float64(d)
	} else {
		l.buckets[b] = 0.8*v + 0.2*float64(d)
	}
	l.mu.Unlock()
}

func (l *latencyEWMA) delay(n int, factor float64, floor time.Duration) time.Duration {
	b := bits.Len(uint(max(n, 1)))
	l.mu.Lock()
	v := l.buckets[b]
	l.mu.Unlock()
	if v == 0 {
		// No evidence for this class yet: hedge late rather than eagerly.
		return 2 * floor
	}
	d := time.Duration(v * factor)
	if d < floor {
		return floor
	}
	return d
}
