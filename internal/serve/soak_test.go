package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbody"
	"nbody/internal/faults"
)

// TestSoakChurnCancelFault is the race/soak satellite: tenant churn (every
// request a fresh tenant name, so dispatcher queue state is created and
// reaped constantly), client-side cancellation mid-solve, and one injected
// solver panic that the ladder must heal — all concurrently, under -race in
// CI. Afterwards the server drains and the goroutine count returns to the
// baseline: no worker, handler, or dispatcher goroutine leaks.
func TestSoakChurnCancelFault(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}

	// Warm-up pass: the shared sched worker pool and other process-wide
	// singletons spin up goroutines on first solve that persist by design.
	// Measure the baseline after they exist.
	warm := func() {
		srv, err := New(Config{Workers: 2, Quiet: true})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		sys := nbody.NewUniformSystem(128, 1)
		resp, err := http.Post(hs.URL+"/v1/solve", "application/json", bytes.NewReader(soakBody(t, "warm", sys, 0)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		hs.Close()
		srv.Close()
	}
	warm()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	srv, err := New(Config{Workers: 4, QueueDepth: 4, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer faults.Reset()

	sys := nbody.NewUniformSystem(256, 2)
	var fives, healed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				tenant := fmt.Sprintf("churn-%d-%d", g, i) // fresh tenant every request
				mode := rng.Intn(4)
				switch mode {
				case 0: // client cancels mid-solve
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(5))*time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/solve",
						bytes.NewReader(soakBody(t, tenant, sys, 0)))
					req.Header.Set("Content-Type", "application/json")
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
				case 1: // tight server-side deadline
					resp, err := http.Post(hs.URL+"/v1/solve", "application/json",
						bytes.NewReader(soakBody(t, tenant, sys, 1+int64(rng.Intn(4)))))
					if err == nil {
						// 504 is this branch's expected outcome; anything
						// else in the 5xx range is a server failure.
						if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
							fives.Add(1)
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				default: // plain solve; one goroutine arms a fault mid-run
					if g == 0 && i == iters/2 {
						faults.InjectPanicN("core/T2", "soak fault", 1)
					}
					resp, err := http.Post(hs.URL+"/v1/solve", "application/json",
						bytes.NewReader(soakBody(t, tenant, sys, 0)))
					if err != nil {
						t.Errorf("transport error: %v", err)
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == 200, resp.StatusCode == 429, resp.StatusCode == 504:
						// Success, admission pressure, and deadline pressure
						// are all expected here (the mid-run fault is healed
						// inside whichever request consumed it).
					default:
						fives.Add(1)
						t.Errorf("status %d: %s", resp.StatusCode, body)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := fives.Load(); n > 0 {
		t.Fatalf("%d requests failed with 5xx under soak", n)
	}

	// Deterministic healing probe: with the churn quiesced, arm one panic
	// and send one plain solve — the only request that can consume it. It
	// must succeed and report its own recovery delta.
	faults.InjectPanicN("core/T2", "soak probe fault", 1)
	resp, err := http.Post(hs.URL+"/v1/solve", "application/json",
		bytes.NewReader(soakBody(t, "probe", sys, 0)))
	if err != nil {
		t.Fatal(err)
	}
	probeBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("probe request not healed: %d %s", resp.StatusCode, probeBody)
	}
	var sr SolveResponse
	if err := json.Unmarshal(probeBody, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Recovery != nil {
		healed.Add(1)
	}
	if healed.Load() == 0 {
		t.Errorf("injected fault produced no healed request (no Recovery delta seen)")
	}

	hs.Close()
	srv.Close()

	// Drain check: within a grace period the goroutine count must return
	// to the post-warm-up baseline (plus slack for runtime/netpoll noise).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func soakBody(t *testing.T, tenant string, sys *nbody.System, deadlineMS int64) []byte {
	t.Helper()
	req := SolveRequest{Tenant: tenant, Positions: make([][3]float64, sys.Len()), Charges: sys.Charges, DeadlineMS: deadlineMS}
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
