package serve

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"math"

	"nbody"
)

// Resume tokens are the crash-survivable streaming protocol's currency: a
// token is the base64 (standard alphabet) of one checkpoint record —
// exactly the bytes Simulation.Checkpoint writes, magic, version, CRC32C
// and all — so the full corruption hardening of the checkpoint decoder
// (structural validation before any field is trusted, checksum last)
// guards the HTTP surface too. A token is self-contained: it carries the
// particle state, the step count, the time, and the timestep, so any
// replica can continue the simulation from it with no other state.

// maxTokenOverhead bounds the non-particle part of a decoded token:
// header, fixed payload fields, CRC.
const maxTokenOverhead = 64

// encodeResumeToken snapshots sim into a resume token.
func encodeResumeToken(sim *nbody.Simulation) (string, error) {
	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// decodeResumeToken parses and validates a resume token against the
// server's size limits. Corruption of any kind — bad base64, a forged
// length, truncation, bit rot, trailing garbage — is a client error
// (ErrBadRequest or nbody.ErrCorruptCheckpoint, both 400), never a panic
// and never a 5xx: a gateway replaying a stale or damaged token must not
// look like a server failure.
func decodeResumeToken(tok string, lim Limits) (*nbody.CheckpointState, error) {
	// Cap the decode before allocating: a token for MaxN particles is
	// bounded, so anything longer is forged.
	if lim.MaxN > 0 {
		maxRaw := int64(lim.MaxN)*56 + maxTokenOverhead
		if int64(len(tok)) > (maxRaw+2)/3*4+4 {
			return nil, fmt.Errorf("%w: resume token longer than any %d-particle checkpoint", ErrTooLarge, lim.MaxN)
		}
	}
	raw, err := base64.StdEncoding.DecodeString(tok)
	if err != nil {
		return nil, fmt.Errorf("%w: resume token is not valid base64: %v", ErrBadRequest, err)
	}
	r := bytes.NewReader(raw)
	st, err := nbody.DecodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: resume token has %d trailing bytes", ErrBadRequest, r.Len())
	}
	if lim.MaxN > 0 && st.Len() > lim.MaxN {
		return nil, fmt.Errorf("%w: resume token holds %d particles, cap is %d", ErrTooLarge, st.Len(), lim.MaxN)
	}
	return st, nil
}

// resolveResume is the resume-path counterpart of SolveRequest.resolve: it
// decodes and validates the token, reconciles the integration parameters
// with the checkpoint (DT must match or be omitted; Steps is the original
// total and must lie beyond the checkpoint's step), validates the restored
// particle state against the simulation domain, and returns the system.
// The decoded state lands in req.resume for the stream loop.
func (r *SimulateRequest) resolveResume(lim Limits, box nbody.Box) (*nbody.System, error) {
	if len(r.Positions) != 0 || len(r.Charges) != 0 {
		return nil, fmt.Errorf("%w: resume_token and positions/charges are mutually exclusive", ErrBadRequest)
	}
	st, err := decodeResumeToken(r.ResumeToken, lim)
	if err != nil {
		return nil, err
	}
	switch {
	case r.DT == 0:
		r.DT = st.DT
	case r.DT != st.DT:
		return nil, fmt.Errorf("%w: dt %g does not match the checkpoint's %g", ErrBadRequest, r.DT, st.DT)
	}
	if r.Steps <= st.Step {
		return nil, fmt.Errorf("%w: steps %d not beyond the checkpoint's step %d", ErrBadRequest, r.Steps, st.Step)
	}
	if err := r.resolveSelectors(lim); err != nil {
		return nil, err
	}
	sys := &nbody.System{Positions: st.Positions, Charges: st.Charges}
	if err := sys.Validate(box); err != nil {
		return nil, err
	}
	// Validate covers positions and charges; the velocities only the
	// checkpoint carries need their own finiteness check.
	for i, v := range st.Velocities {
		if math.IsNaN(v.X) || math.IsInf(v.X, 0) ||
			math.IsNaN(v.Y) || math.IsInf(v.Y, 0) ||
			math.IsNaN(v.Z) || math.IsInf(v.Z, 0) {
			return nil, fmt.Errorf("%w: non-finite velocity at particle %d", ErrBadRequest, i)
		}
	}
	r.resume = st
	return sys, nil
}
