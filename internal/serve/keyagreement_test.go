package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"nbody"
	"nbody/internal/core"
	"nbody/internal/plan"
)

// TestShapeKeyAgreement is the dedupe guarantee of the plan subsystem: the
// plan cache, the admission estimator, and the planner all key on the one
// plan.Key a decoded request resolves to — for every decode path (solve and
// simulate, auto and pinned depth, every accuracy preset). Before the
// refactor the cache key and the estimator shape were separate structs
// re-deriving K from the accuracy string independently; this test pins the
// single-source-of-truth replacement.
func TestShapeKeyAgreement(t *testing.T) {
	// The estimator's key type IS the planner's cost shape — not a parallel
	// definition. A compile-time identity, stated here so a future split
	// breaks this test instead of silently re-forking the keying.
	var _ estShape = plan.CostShape{}

	srv, err := New(Config{Workers: 2, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sys := nbody.NewUniformSystem(2048, 7)
	body := func(depth int, accuracy string, steps int) []byte {
		req := map[string]any{
			"tenant":    "agree",
			"positions": positionsOf(sys),
			"charges":   sys.Charges,
			"accuracy":  accuracy,
			"depth":     depth,
		}
		if steps > 0 {
			req["steps"] = steps
			req["dt"] = 0.001
		}
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	for _, tc := range []struct {
		name     string
		depth    int
		accuracy string
		sim      bool
	}{
		{"solve auto fast", 0, "fast", false},
		{"solve auto balanced", 0, "balanced", false},
		{"solve auto accurate", 0, "accurate", false},
		{"solve pinned", 4, "fast", false},
		{"simulate auto", 0, "fast", true},
		{"simulate pinned", 3, "accurate", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var req *SolveRequest
			var n int
			if tc.sim {
				sreq, ssys, err := decodeSimulateRequest(bytes.NewReader(body(tc.depth, tc.accuracy, 4)), srv.limits())
				if err != nil {
					t.Fatal(err)
				}
				req, n = &sreq.SolveRequest, ssys.Len()
			} else {
				r, dsys, err := decodeSolveRequest(bytes.NewReader(body(tc.depth, tc.accuracy, 0)), srv.limits())
				if err != nil {
					t.Fatal(err)
				}
				req, n = r, dsys.Len()
			}

			// Decoding no longer resolves auto depth: that is the planner's
			// job, so the decoder cannot disagree with it.
			if req.Depth != tc.depth {
				t.Fatalf("decoder rewrote depth %d to %d", tc.depth, req.Depth)
			}

			key := srv.keyFor(req, n, plan.DistUniform, tc.sim)

			// One K derivation: the key's K is plan.AccuracyK of the shape's
			// accuracy — the same function the estimator's cost shape and the
			// planner's tuned table go through.
			if key.Plan.K != plan.AccuracyK(tc.accuracy) {
				t.Errorf("key K = %d, plan.AccuracyK(%q) = %d", key.Plan.K, tc.accuracy, plan.AccuracyK(tc.accuracy))
			}
			// The estimator observes and estimates under exactly the key's
			// cost shape.
			cs := key.CostShape()
			if cs.N != n || cs.Depth != key.Plan.Depth || cs.K != key.Plan.K || cs.Sim != tc.sim || cs.Dist != plan.DistUniform {
				t.Errorf("cost shape %+v does not project key %+v", cs, key)
			}
			// Depth resolution: pinned passes through verbatim; auto goes to
			// the planner, which (untuned, fast preset) must agree with the
			// classic heuristic the old decode path used.
			switch {
			case tc.depth > 0 && key.Plan.Depth != tc.depth:
				t.Errorf("pinned depth %d resolved to %d", tc.depth, key.Plan.Depth)
			case tc.depth == 0:
				want := srv.planner.DepthFor(key.Shape, req.Supernodes, tc.sim)
				if key.Plan.Depth != want {
					t.Errorf("auto depth %d, planner DepthFor %d", key.Plan.Depth, want)
				}
				if tc.accuracy == "fast" {
					if opt := core.OptimalDepth(n, 32); key.Plan.Depth != opt {
						t.Errorf("auto fast depth %d, classic OptimalDepth %d", key.Plan.Depth, opt)
					}
				}
			}
		})
	}
}

// positionsOf renders a system's positions in the wire format.
func positionsOf(sys *nbody.System) [][3]float64 {
	out := make([][3]float64, len(sys.Positions))
	for i, p := range sys.Positions {
		out[i] = [3]float64{p.X, p.Y, p.Z}
	}
	return out
}
