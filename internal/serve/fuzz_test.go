package serve

import (
	"bytes"
	"testing"
)

// FuzzServeRequest fuzzes the JSON decoder/validator pair behind
// POST /v1/solve and POST /v1/simulate: whatever bytes arrive, decoding
// must never panic, and when it accepts a request the resolved system must
// actually satisfy the invariants the solvers rely on (validated domain,
// matching lengths, bounded N and depth, known selectors) — the decoder is
// the only wall between the network and the solver stack.
func FuzzServeRequest(f *testing.F) {
	// A valid small request.
	f.Add([]byte(`{"tenant":"a","positions":[[0.1,0.2,0.3],[0.7,0.8,0.9]],"charges":[1,-1]}`))
	// Overflowing numbers decode to +Inf in some parsers; ours must reject
	// (JSON itself cannot carry NaN, so Inf via overflow is the probe).
	f.Add([]byte(`{"positions":[[1e999,0.5,0.5]],"charges":[1]}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1e999]}`))
	// Empty and zero-N systems.
	f.Add([]byte(`{"positions":[],"charges":[]}`))
	f.Add([]byte(`{}`))
	// Mismatched lengths.
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1,2,3]}`))
	// Duplicate particles (legal for the decoder; the solver tolerates
	// coincident points by convention — must not trip validation).
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5],[0.5,0.5,0.5]],"charges":[1,1]}`))
	// Out-of-domain and boundary positions.
	f.Add([]byte(`{"positions":[[1.5,0.5,0.5]],"charges":[1]}`))
	f.Add([]byte(`{"positions":[[1.0,0.0,0.999999]],"charges":[1]}`))
	// Selector abuse.
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"accuracy":"warp9"}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"depth":-1}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"depth":1}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"depth":99}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"compute":"accelerations","phases":true}`))
	// Simulate-shaped bodies (same fuzz target covers both decoders).
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":4,"dt":0.001}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":-4,"dt":1e999,"stream_every":-9}`))
	// Structural garbage.
	f.Add([]byte(`[[[[`))
	f.Add([]byte(`{"positions": 42}`))
	f.Add([]byte(``))

	lim := Limits{MaxN: 4096, MaxDepth: 6}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, sys, err := decodeSolveRequest(bytes.NewReader(data), lim)
		if err == nil {
			n := sys.Len()
			if n < 1 || n > lim.MaxN {
				t.Fatalf("accepted N=%d outside (0, %d]", n, lim.MaxN)
			}
			if len(sys.Charges) != n || len(req.Positions) != n {
				t.Fatalf("accepted mismatched lengths: n=%d charges=%d positions=%d", n, len(sys.Charges), len(req.Positions))
			}
			if req.Depth < 2 || req.Depth > lim.MaxDepth {
				t.Fatalf("accepted depth %d outside [2, %d]", req.Depth, lim.MaxDepth)
			}
			switch req.Compute {
			case "potentials", "accelerations":
			default:
				t.Fatalf("accepted compute %q", req.Compute)
			}
			switch req.Accuracy {
			case "fast", "balanced", "accurate":
			default:
				t.Fatalf("accepted accuracy %q", req.Accuracy)
			}
			// The decoder promised a validated system.
			if verr := sys.Validate(Domain()); verr != nil {
				t.Fatalf("accepted system fails Validate: %v", verr)
			}
		}

		sreq, ssys, serr := decodeSimulateRequest(bytes.NewReader(data), lim)
		if serr == nil {
			if sreq.Steps < 1 || !(sreq.DT > 0) {
				t.Fatalf("accepted steps=%d dt=%g", sreq.Steps, sreq.DT)
			}
			if sreq.StreamEvery < 1 {
				t.Fatalf("accepted stream_every=%d after defaulting", sreq.StreamEvery)
			}
			if verr := ssys.Validate(SimDomain()); verr != nil {
				t.Fatalf("accepted simulate system fails Validate: %v", verr)
			}
		}
	})
}
