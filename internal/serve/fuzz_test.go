package serve

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// FuzzServeRequest fuzzes the JSON decoder/validator pair behind
// POST /v1/solve and POST /v1/simulate: whatever bytes arrive, decoding
// must never panic, and when it accepts a request the resolved system must
// actually satisfy the invariants the solvers rely on (validated domain,
// matching lengths, bounded N and depth, known selectors) — the decoder is
// the only wall between the network and the solver stack.
func FuzzServeRequest(f *testing.F) {
	// A valid small request.
	f.Add([]byte(`{"tenant":"a","positions":[[0.1,0.2,0.3],[0.7,0.8,0.9]],"charges":[1,-1]}`))
	// Overflowing numbers decode to +Inf in some parsers; ours must reject
	// (JSON itself cannot carry NaN, so Inf via overflow is the probe).
	f.Add([]byte(`{"positions":[[1e999,0.5,0.5]],"charges":[1]}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1e999]}`))
	// Empty and zero-N systems.
	f.Add([]byte(`{"positions":[],"charges":[]}`))
	f.Add([]byte(`{}`))
	// Mismatched lengths.
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1,2,3]}`))
	// Duplicate particles (legal for the decoder; the solver tolerates
	// coincident points by convention — must not trip validation).
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5],[0.5,0.5,0.5]],"charges":[1,1]}`))
	// Out-of-domain and boundary positions.
	f.Add([]byte(`{"positions":[[1.5,0.5,0.5]],"charges":[1]}`))
	f.Add([]byte(`{"positions":[[1.0,0.0,0.999999]],"charges":[1]}`))
	// Selector abuse.
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"accuracy":"warp9"}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"depth":-1}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"depth":1}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"depth":99}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"compute":"accelerations","phases":true}`))
	// Simulate-shaped bodies (same fuzz target covers both decoders).
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":4,"dt":0.001}`))
	f.Add([]byte(`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":-4,"dt":1e999,"stream_every":-9}`))
	// Structural garbage.
	f.Add([]byte(`[[[[`))
	f.Add([]byte(`{"positions": 42}`))
	f.Add([]byte(``))

	lim := Limits{MaxN: 4096, MaxDepth: 6}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, sys, err := decodeSolveRequest(bytes.NewReader(data), lim)
		if err == nil {
			n := sys.Len()
			if n < 1 || n > lim.MaxN {
				t.Fatalf("accepted N=%d outside (0, %d]", n, lim.MaxN)
			}
			if len(sys.Charges) != n || len(req.Positions) != n {
				t.Fatalf("accepted mismatched lengths: n=%d charges=%d positions=%d", n, len(sys.Charges), len(req.Positions))
			}
			// Depth 0 (auto) survives decoding for the planner to resolve;
			// anything else must land in [2, MaxDepth].
			if req.Depth != 0 && (req.Depth < 2 || req.Depth > lim.MaxDepth) {
				t.Fatalf("accepted depth %d outside {0} ∪ [2, %d]", req.Depth, lim.MaxDepth)
			}
			switch req.Compute {
			case "potentials", "accelerations":
			default:
				t.Fatalf("accepted compute %q", req.Compute)
			}
			switch req.Accuracy {
			case "fast", "balanced", "accurate":
			default:
				t.Fatalf("accepted accuracy %q", req.Accuracy)
			}
			// The decoder promised a validated system.
			if verr := sys.Validate(Domain()); verr != nil {
				t.Fatalf("accepted system fails Validate: %v", verr)
			}
		}

		sreq, ssys, serr := decodeSimulateRequest(bytes.NewReader(data), lim)
		if serr == nil {
			if sreq.Steps < 1 || !(sreq.DT > 0) {
				t.Fatalf("accepted steps=%d dt=%g", sreq.Steps, sreq.DT)
			}
			if sreq.StreamEvery < 1 {
				t.Fatalf("accepted stream_every=%d after defaulting", sreq.StreamEvery)
			}
			if verr := ssys.Validate(SimDomain()); verr != nil {
				t.Fatalf("accepted simulate system fails Validate: %v", verr)
			}
		}
	})
}

// FuzzEstimator fuzzes the admission cost estimator with adversarial shapes
// and measurements: whatever a request or a broken clock feeds it, every
// estimate must stay in [0, estMax] (no negative or overflowed prediction
// can ever reach the shed comparison), the global calibration scale must
// stay finite and positive, and the admission arithmetic
// (wait + estimate vs deadline) must not wrap.
func FuzzEstimator(f *testing.F) {
	// Seed corpus: zero and huge N, absurd depths and deadlines, garbage
	// accuracy selectors, overflowing measurements — the shapes the issue
	// names plus the boundary cases around them.
	f.Add(0, 0, "", false, false, 1, int64(0), int64(0))
	f.Add(-1, -7, "nonsense", true, true, -3, int64(-5), int64(-1))
	f.Add(1<<30, 16, "accurate", true, false, 1, int64(1)<<62, int64(1))
	f.Add(math.MaxInt32, 99, "fast", false, true, math.MaxInt32, int64(math.MaxInt64), int64(math.MaxInt64))
	f.Add(768, 3, "balanced", false, false, 1, int64(5*time.Millisecond), int64(time.Second))
	f.Add(32768, 4, "accurate", true, false, 8, int64(200*time.Millisecond), int64(time.Millisecond))
	f.Add(1, 2, "fast", false, false, 0, int64(time.Nanosecond), int64(50*time.Millisecond))

	f.Fuzz(func(t *testing.T, n, depth int, accuracy string, supernodes, sim bool, units int, measuredNS, deadlineNS int64) {
		e := newEstimator()
		key := tkey(n, depth, accuracy, supernodes, sim)
		for i := 0; i < 3; i++ {
			e.Observe(key, units, time.Duration(measuredNS))
		}
		est, _ := e.Estimate(key, units)
		if est < 0 || est > estMax {
			t.Fatalf("Estimate(%+v, %d) = %v outside [0, %v]", key, units, est, estMax)
		}
		if _, scale, _ := e.Stats(); !(scale > 0) || math.IsInf(scale, 0) {
			t.Fatalf("calibration scale corrupted to %v", scale)
		}
		// The admission predicate's arithmetic: predicted completion must not
		// wrap negative however absurd the inputs, because a wrapped value
		// would bypass the deadline comparison entirely.
		wait := 10 * time.Minute // worst realistic backlog the clamp allows
		if predicted := wait + est; predicted < 0 {
			t.Fatalf("predicted completion wrapped: wait %v + est %v = %v", wait, est, predicted)
		}
	})
}
