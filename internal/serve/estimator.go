package serve

import (
	"math"
	"sync"
	"time"

	"nbody/internal/dp"
	"nbody/internal/plan"
)

// estimator predicts the solve cost of a request shape, the quantity the
// admission layer needs to shed doomed work before it wastes a worker.
//
// Prediction has two regimes. A shape the server has already solved is
// predicted by an EWMA over its measured per-request phase totals
// (metrics.Snapshot.Diff scoped to the request) — exact, host-specific,
// and converging within a few observations. An unseen shape is seeded from
// the calibrated cycle model in internal/dp/cost.go: the model predicts
// relative cost across shapes well (it reproduces the paper's phase
// economics), and a single host-calibration scale — itself an EWMA over
// the measured/modeled ratio of every observed request — maps CM-5E cycles
// onto this machine's wall clock. Admission only trusts a prediction once
// enough observations back it (confident), so a cold server never sheds on
// the uncalibrated seed.
type estimator struct {
	cost dp.CostModel

	mu     sync.Mutex
	shapes map[estShape]*shapeEst
	// scale maps modeled seconds onto measured host seconds, EWMA-refined
	// from every observation regardless of shape. The seed assumes a host
	// a few hundred times faster than one 4-VU CM-5E node — the right
	// order of magnitude for one modern multicore socket.
	scale    float64
	scaleObs int64
}

// estShape is the estimator's key: plan.CostShape, the cost-relevant
// projection of a plan Key with accuracy already resolved to the
// integration-point count K the cost model wants. The planner's online
// refinement tables key on the same type, so the two measured-cost views
// of the server can never diverge. Sim is included because simulation
// requests are observed per step while solve requests are observed per
// request.
type estShape = plan.CostShape

// shapeEst is one shape's measured-cost EWMA.
type shapeEst struct {
	ewma float64 // seconds per unit (solve, or simulation step)
	obs  int64
}

const (
	// estAlphaShape weights each per-shape observation; estAlphaScale
	// weights the global calibration more gently (it aggregates across
	// heterogeneous shapes).
	estAlphaShape = 0.3
	estAlphaScale = 0.1
	// estSeedScale is the initial modeled-to-measured scale (see scale).
	estSeedScale = 1.0 / 250
	// estMax clamps any prediction: no admissible request is slower than
	// this, and an overflowed model must not poison deadline arithmetic.
	estMax = 10 * time.Minute
	// estConfidentShape / estConfidentScale gate shedding: a prediction is
	// actionable once its shape has this many direct observations, or the
	// global calibration has seen this many requests.
	estConfidentShape = 2
	estConfidentScale = 8
)

func newEstimator() *estimator {
	return &estimator{
		cost:   dp.DefaultCostModel(),
		shapes: make(map[estShape]*shapeEst),
		scale:  estSeedScale,
	}
}

// modelSeconds is the dp-cost-model seed for one unit of key's work,
// scaled by the current host calibration. Total and safe on any input.
func (e *estimator) modelSeconds(sh estShape, scale float64) float64 {
	cycles := e.cost.ModelSolveCycles(sh.N, sh.Depth, sh.K, sh.Supernodes)
	return e.cost.Seconds(cycles) * scale
}

// Estimate predicts the cost of units units (1 for a solve, the step count
// for a simulation) of key's work. confident reports whether the
// prediction is backed by enough measurements to act on: admission only
// sheds when it is. The returned duration is always in [0, estMax].
func (e *estimator) Estimate(key Key, units int) (d time.Duration, confident bool) {
	if units < 1 {
		units = 1
	}
	sh := key.CostShape()
	e.mu.Lock()
	se := e.shapes[sh]
	scale, scaleObs := e.scale, e.scaleObs
	var perUnit float64
	switch {
	case se != nil && se.obs > 0:
		perUnit = se.ewma
		confident = se.obs >= estConfidentShape
	default:
		perUnit = e.modelSeconds(sh, scale)
		confident = scaleObs >= estConfidentScale
	}
	e.mu.Unlock()
	return clampEst(perUnit * float64(units)), confident
}

// Observe feeds one measured cost: the request's phase-table total (or
// wall solve time) divided into units. Non-finite and non-positive
// measurements are dropped — a cancelled or faulted solve measures the
// abort, not the work.
func (e *estimator) Observe(key Key, units int, measured time.Duration) {
	if units < 1 {
		units = 1
	}
	sec := measured.Seconds() / float64(units)
	if !(sec > 0) || math.IsInf(sec, 0) || sec > estMax.Seconds() {
		return
	}
	sh := key.CostShape()
	e.mu.Lock()
	defer e.mu.Unlock()
	se := e.shapes[sh]
	if se == nil {
		se = &shapeEst{ewma: sec}
		e.shapes[sh] = se
	} else {
		se.ewma += estAlphaShape * (sec - se.ewma)
	}
	se.obs++
	// Refine the host calibration with this observation's measured/modeled
	// ratio. The ratio is clamped so one pathological request (a fault
	// retry storm, a model hole at an extreme shape) cannot poison the
	// scale for every other shape.
	if model := e.modelSeconds(sh, 1); model > 0 && !math.IsInf(model, 0) {
		ratio := sec / model
		if ratio > e.scale*100 {
			ratio = e.scale * 100
		}
		if ratio < e.scale/100 {
			ratio = e.scale / 100
		}
		e.scale += estAlphaScale * (ratio - e.scale)
		e.scaleObs++
	}
}

// Stats reports the estimator's footprint for /v1/metrics.
func (e *estimator) Stats() (shapes int, scale float64, obs int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.shapes), e.scale, e.scaleObs
}

// clampEst converts predicted seconds to a duration in [0, estMax],
// absorbing NaN, infinities, and overflow.
func clampEst(sec float64) time.Duration {
	if !(sec > 0) { // negative or NaN
		return 0
	}
	if sec >= estMax.Seconds() {
		return estMax
	}
	return time.Duration(sec * float64(time.Second))
}
