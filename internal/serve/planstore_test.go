package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"nbody"
	"nbody/internal/plan"
)

// TestServerPlanStoreWarmStart drives the persistent-store lifecycle
// through the real server: measured solves populate the tuned table, Close
// persists it, and a second server warm-starts from the file — its very
// first auto request resolves with tuned provenance, no search, no analytic
// fallback.
func TestServerPlanStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "plans.nbp")
	sys := nbody.NewUniformSystem(512, 11)
	raw, err := json.Marshal(map[string]any{
		"tenant": "warm", "positions": positionsOf(sys), "charges": sys.Charges,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{Workers: 2, Quiet: true, PlanStore: store})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	// Two successful solves of one shape reach the planner's promotion
	// threshold (tuneMinObs), so the tuned table has the shape by Close.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(hs.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}
	shape := plan.ShapeKey{N: sys.Len(), Dist: plan.Fingerprint(sys.Positions), Accuracy: "fast"}
	if _, ok := srv.Planner().Tuned(shape, plan.Request{Ladder: srv.cfg.Ladder}); !ok {
		t.Fatalf("shape %v not tuned after 2 measured solves", shape)
	}
	hs.Close()
	srv.Close()
	if _, err := os.Stat(store); err != nil {
		t.Fatalf("Close did not persist the store: %v", err)
	}

	warm, err := New(Config{Workers: 2, Quiet: true, PlanStore: store})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	c := warm.Planner().Counters()
	if c.StoreLoads != 1 {
		t.Fatalf("warm server StoreLoads = %d, want 1", c.StoreLoads)
	}
	if _, ok := warm.Planner().Tuned(shape, plan.Request{}); !ok {
		t.Fatal("warm server does not know the tuned shape")
	}
	// The first auto resolution answers from the table: tuned provenance,
	// zero searches.
	if _, prov := warm.Planner().Resolve(shape, plan.Request{MaxDepth: warm.cfg.MaxDepth}); prov != plan.ProvenanceTuned {
		t.Fatalf("warm resolve provenance %s, want tuned", prov)
	}
	if c := warm.Planner().Counters(); c.Searches != 0 {
		t.Fatalf("warm server ran %d searches", c.Searches)
	}

	// A corrupt store is a loud startup failure.
	if err := os.WriteFile(store, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Workers: 2, Quiet: true, PlanStore: store}); err == nil {
		t.Fatal("New accepted a corrupt plan store")
	}
}
