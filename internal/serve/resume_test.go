package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"nbody"
)

// simBody marshals a simulate request for sys.
func simBody(t *testing.T, sys *nbody.System, mutate func(*SimulateRequest)) []byte {
	t.Helper()
	req := SimulateRequest{}
	req.Positions = make([][3]float64, sys.Len())
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	req.Charges = sys.Charges
	if mutate != nil {
		mutate(&req)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// readFrames drains an NDJSON response into frames.
func readFrames(t *testing.T, body io.Reader) []Frame {
	t.Helper()
	var frames []Frame
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Bytes(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// validToken builds a resume token the way the server does: a few steps of
// a real simulation, checkpointed.
func validToken(t *testing.T, n, steps int, dt float64) string {
	t.Helper()
	sys := nbody.NewUniformSystem(n, 7)
	a, err := nbody.NewAnderson(SimDomain(), nbody.Options{Accuracy: nbody.Fast, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, a, dt)
	if err != nil {
		t.Fatal(err)
	}
	if steps > 0 {
		if err := sim.Step(steps); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := encodeResumeToken(sim)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// TestResumeContinuationBitwise is the crash-survivability contract at the
// serve layer: a stream carrying checkpoint tokens, cut at a mid-stream
// token and resumed (with the plan pinned from the original's headers),
// produces a final frame bitwise-identical to the uninterrupted run.
func TestResumeContinuationBitwise(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	const n, steps, every = 96, 6, 2
	const dt = 1e-3
	sys := nbody.NewUniformSystem(n, 3)

	// Uninterrupted run: the reference final frame.
	full := simBody(t, sys, func(r *SimulateRequest) {
		r.Tenant = "resume"
		r.Steps = steps
		r.DT = dt
		r.StreamEvery = every
		r.CheckpointEvery = 1
	})
	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	planDepth := resp.Header.Get("X-Plan-Depth")
	planAcc := resp.Header.Get("X-Plan-Accuracy")
	if planDepth == "" || planAcc == "" {
		t.Fatalf("missing plan headers: depth=%q accuracy=%q", planDepth, planAcc)
	}
	frames := readFrames(t, resp.Body)
	resp.Body.Close()
	if len(frames) != steps/every {
		t.Fatalf("got %d frames, want %d", len(frames), steps/every)
	}
	ref := frames[len(frames)-1]
	if !ref.Final || ref.ResumeToken != "" {
		t.Fatalf("reference final frame: final=%v token=%q (final frames carry no token)", ref.Final, ref.ResumeToken)
	}
	mid := frames[0]
	if mid.ResumeToken == "" {
		t.Fatal("checkpoint_every=1 frame carries no resume token")
	}

	// Resume from the first frame's token on the "other replica" (same
	// server here; the plan cache entry differs because the distribution
	// fingerprint moved, so this also exercises a cold-plan resume).
	depth, err := strconv.Atoi(planDepth)
	if err != nil {
		t.Fatal(err)
	}
	resBody, _ := json.Marshal(&SimulateRequest{
		SolveRequest: SolveRequest{Tenant: "resume", Depth: depth, Accuracy: planAcc},
		Steps:        steps,
		StreamEvery:  every,
		ResumeToken:  mid.ResumeToken,
	})
	resp2, err := http.Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(resBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp2.Body)
		t.Fatalf("resume status %d: %s", resp2.StatusCode, data)
	}
	resumed := readFrames(t, resp2.Body)
	if len(resumed) != (steps-mid.Step)/every {
		t.Fatalf("resumed stream: got %d frames, want %d", len(resumed), (steps-mid.Step)/every)
	}
	if resumed[0].Step != mid.Step+every {
		t.Fatalf("resumed stream starts at step %d, want %d", resumed[0].Step, mid.Step+every)
	}
	last := resumed[len(resumed)-1]
	if !last.Final || last.Step != steps {
		t.Fatalf("resumed final frame: final=%v step=%d", last.Final, last.Step)
	}
	if len(last.Positions) != n || len(last.Velocity) != n {
		t.Fatalf("resumed final frame state: %d/%d particles", len(last.Positions), len(last.Velocity))
	}
	for i := range last.Positions {
		if last.Positions[i] != ref.Positions[i] {
			t.Fatalf("positions[%d] = %v, want %v (bitwise)", i, last.Positions[i], ref.Positions[i])
		}
		if last.Velocity[i] != ref.Velocity[i] {
			t.Fatalf("velocities[%d] = %v, want %v (bitwise)", i, last.Velocity[i], ref.Velocity[i])
		}
	}
	if last.Total != ref.Total {
		t.Fatalf("final energy %v, want %v (bitwise)", last.Total, ref.Total)
	}
}

// TestResumeTokenCorruptionTable mirrors the checkpoint and plan-store
// corruption suites at the HTTP surface: every damaged or inconsistent
// token is a 400 — structural validation, the checksum, and the
// cross-field checks all answer before any solver work — and never a 5xx
// or a panic.
func TestResumeTokenCorruptionTable(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, MaxN: 512})

	const dt = 1e-3
	good := validToken(t, 32, 2, dt)
	raw, err := base64.StdEncoding.DecodeString(good)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) string {
		b := append([]byte(nil), raw...)
		return base64.StdEncoding.EncodeToString(f(b))
	}

	cases := []struct {
		name     string
		token    string
		also     func(*SimulateRequest)
		wantCode string
	}{
		{"empty token with no positions", "", nil, "invalid_request"},
		{"not base64", "!!!not-base64!!!", nil, "invalid_request"},
		{"truncated header", mutate(func(b []byte) []byte { return b[:10] }), nil, "bad_resume_token"},
		{"truncated payload", mutate(func(b []byte) []byte { return b[:len(b)-40] }), nil, "bad_resume_token"},
		{"truncated checksum", mutate(func(b []byte) []byte { return b[:len(b)-2] }), nil, "bad_resume_token"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }), nil, "bad_resume_token"},
		{"stale version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			return b
		}), nil, "bad_resume_token"},
		{"forged length", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:], 1<<40)
			return b
		}), nil, "bad_resume_token"},
		{"payload bitflip", mutate(func(b []byte) []byte { b[60] ^= 0x01; return b }), nil, "bad_resume_token"},
		{"checksum bitflip", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }), nil, "bad_resume_token"},
		{"trailing garbage", mutate(func(b []byte) []byte { return append(b, 0xde, 0xad) }), nil, "invalid_request"},
		{"token plus positions", good, func(r *SimulateRequest) {
			r.Positions = [][3]float64{{0.5, 0.5, 0.5}}
			r.Charges = []float64{1}
		}, "invalid_request"},
		{"dt mismatch", good, func(r *SimulateRequest) { r.DT = dt * 2 }, "invalid_request"},
		{"steps behind checkpoint", good, func(r *SimulateRequest) { r.Steps = 2 }, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := &SimulateRequest{Steps: 8, ResumeToken: tc.token}
			req.Tenant = "corrupt"
			if tc.also != nil {
				tc.also(req)
			}
			body, _ := json.Marshal(req)
			resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode >= 500 {
				t.Fatalf("server error %d on corrupt token: %s", resp.StatusCode, data)
			}
			if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 4xx: %s", resp.StatusCode, data)
			}
			var er ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("error body not JSON: %s", data)
			}
			if er.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (%s)", er.Code, tc.wantCode, er.Error)
			}
		})
	}

	// The oversized-token cap rejects before decoding.
	huge := strings.Repeat("A", 512*56*4)
	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"steps":8,"resume_token":%q}`, huge))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized token: status %d, want 413", resp.StatusCode)
	}
}

// FuzzResumeToken fuzzes the token decoder with arbitrary strings plus
// seeded mutations of a valid token: it must never panic, and whatever it
// accepts must be a structurally valid state.
func FuzzResumeToken(f *testing.F) {
	sys := nbody.NewUniformSystem(16, 5)
	a, err := nbody.NewAnderson(SimDomain(), nbody.Options{Accuracy: nbody.Fast, Depth: 2})
	if err != nil {
		f.Fatal(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, a, 1e-3)
	if err != nil {
		f.Fatal(err)
	}
	if err := sim.Step(1); err != nil {
		f.Fatal(err)
	}
	tok, err := encodeResumeToken(sim)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tok)
	f.Add("")
	f.Add("AAAA")
	f.Add(tok[:len(tok)/2])
	f.Add(tok + "AAAA")
	raw, _ := base64.StdEncoding.DecodeString(tok)
	for _, off := range []int{0, 8, 12, 20, 40, len(raw) - 1} {
		b := append([]byte(nil), raw...)
		b[off] ^= 0x20
		f.Add(base64.StdEncoding.EncodeToString(b))
	}

	lim := Limits{MaxN: 1024, MaxDepth: 6}
	f.Fuzz(func(t *testing.T, token string) {
		st, err := decodeResumeToken(token, lim)
		if err != nil {
			if st != nil {
				t.Fatal("state returned alongside error")
			}
			if !errors.Is(err, ErrBadRequest) && !errors.Is(err, ErrTooLarge) && !errors.Is(err, nbody.ErrCorruptCheckpoint) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if st.Len() > lim.MaxN {
			t.Fatalf("accepted %d particles over cap %d", st.Len(), lim.MaxN)
		}
		if len(st.Velocities) != st.Len() || len(st.Charges) != st.Len() {
			t.Fatalf("inconsistent state: %d/%d/%d", st.Len(), len(st.Velocities), len(st.Charges))
		}
		if !(st.DT > 0) {
			t.Fatalf("accepted non-positive dt %g", st.DT)
		}
	})
}

// TestDrainLifecycle covers the graceful-drain surface: healthz flips to
// "draining", new work is 503+Retry-After with the draining code, and
// Drain returns once the dispatcher is quiet.
func TestDrainLifecycle(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})

	get := func() string {
		resp, err := http.Get(hs.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		return strings.TrimSpace(string(data))
	}
	if got := get(); got != `{"status":"ok"}` {
		t.Fatalf("healthz = %s", got)
	}

	resp, err := http.Post(hs.URL+"/v1/drain", "application/json", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	if got := get(); got != `{"status":"draining"}` {
		t.Fatalf("healthz after drain = %s", got)
	}
	if !srv.Draining() {
		t.Fatal("Draining() false after /v1/drain")
	}

	sys := nbody.NewUniformSystem(32, 9)
	sresp, data := postSolve(t, hs.URL, solveBody(t, "drain", sys, nil))
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: status %d: %s", sresp.StatusCode, data)
	}
	if sresp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Code != "draining" {
		t.Fatalf("error code %q, want draining (%s)", er.Code, data)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestCloseDuringStream is the in-flight-stream shutdown contract: Close
// during an active NDJSON stream lets the stream finish its current frame,
// terminates the response cleanly with an interrupted frame whose resume
// token round-trips, leaks no goroutines, and the interrupted stream
// resumed on a fresh server lands bitwise on the uninterrupted run.
func TestCloseDuringStream(t *testing.T) {
	const n, steps, every = 64, 4000, 1
	const dt = 1e-4
	sys := nbody.NewUniformSystem(n, 13)

	// Goroutine baseline after a warm-up request settles the lazy
	// machinery (sched pool, http transport).
	warm, warmHS := newTestServer(t, Config{Workers: 2})
	wresp, _ := postSolve(t, warmHS.URL, solveBody(t, "warm", sys, nil))
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up solve: %d", wresp.StatusCode)
	}
	warmHS.Close()
	warm.Close()
	time.Sleep(50 * time.Millisecond)
	base := runtime.NumGoroutine()

	srv, hs := newTestServer(t, Config{Workers: 2})
	body := simBody(t, sys, func(r *SimulateRequest) {
		r.Tenant = "closer"
		r.Steps = steps
		r.DT = dt
		r.StreamEvery = every
	})
	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	planDepth := resp.Header.Get("X-Plan-Depth")

	// Read two frames to prove the stream is live, then close the server
	// under it.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var frames []Frame
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		frames = append(frames, f)
		if len(frames) == 2 {
			break
		}
	}
	if len(frames) < 2 {
		t.Fatalf("stream died before 2 frames: %v", sc.Err())
	}

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()

	// The rest of the stream: must end cleanly (no scanner error) with an
	// interrupted frame carrying a decodable token.
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("truncated or torn frame after Close: %q: %v", sc.Bytes(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not terminate cleanly: %v", err)
	}
	last := frames[len(frames)-1]
	if !last.Interrupted {
		t.Fatalf("last frame not interrupted: %+v", last)
	}
	if last.Final {
		t.Fatal("interrupted frame marked final")
	}
	if last.ResumeToken == "" {
		t.Fatal("interrupted frame carries no resume token")
	}
	st, err := decodeResumeToken(last.ResumeToken, Limits{MaxN: 131072})
	if err != nil {
		t.Fatalf("interrupted frame token does not decode: %v", err)
	}
	if st.Step != last.Step || st.Len() != n {
		t.Fatalf("token state step=%d n=%d, frame step=%d n=%d", st.Step, st.Len(), last.Step, n)
	}

	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on the in-flight stream")
	}
	hs.Close()

	// Goroutine-leak check: allow scheduler jitter, catch a leaked worker
	// or stream goroutine.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+3 {
		t.Fatalf("goroutines after Close: %d, baseline %d", got, base)
	}

	// Continuation: resume the interrupted stream on a fresh server for a
	// few more steps and compare bitwise against an uninterrupted run of
	// the same length.
	_, hs2 := newTestServer(t, Config{Workers: 2})
	total := last.Step + 3
	depth := 0
	if planDepth != "" {
		depth, _ = strconv.Atoi(planDepth)
	}
	resBody, _ := json.Marshal(&SimulateRequest{
		SolveRequest: SolveRequest{Tenant: "closer", Depth: depth, Accuracy: "fast"},
		Steps:        total,
		StreamEvery:  total, // final frame only
		ResumeToken:  last.ResumeToken,
	})
	resp2, err := http.Post(hs2.URL+"/v1/simulate", "application/json", bytes.NewReader(resBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp2.Body)
		t.Fatalf("resume status %d: %s", resp2.StatusCode, data)
	}
	resumed := readFrames(t, resp2.Body)
	fin := resumed[len(resumed)-1]
	if !fin.Final || fin.Step != total {
		t.Fatalf("resumed final frame: final=%v step=%d want %d", fin.Final, fin.Step, total)
	}

	a, err := nbody.NewAnderson(SimDomain(), nbody.Options{Accuracy: nbody.Fast, Depth: depth})
	if err != nil {
		t.Fatal(err)
	}
	ref := nbody.NewUniformSystem(n, 13)
	sim, err := nbody.NewSimulation(ref, nil, a, dt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(total); err != nil {
		t.Fatal(err)
	}
	for i, p := range sim.System.Positions {
		if fin.Positions[i] != [3]float64{p.X, p.Y, p.Z} {
			t.Fatalf("positions[%d] = %v, want %v (bitwise)", i, fin.Positions[i], p)
		}
	}
	for i, v := range sim.Velocities {
		if fin.Velocity[i] != [3]float64{v.X, v.Y, v.Z} {
			t.Fatalf("velocities[%d] = %v, want %v (bitwise)", i, fin.Velocity[i], v)
		}
	}
}

// TestIdempotentReplay covers the never-double-counted contract: a
// repeated solve with the same Idempotency-Key returns the stored bytes
// (marked as a replay) without a second admission, and keys are
// tenant-scoped.
func TestIdempotentReplay(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	sys := nbody.NewUniformSystem(48, 21)
	body := solveBody(t, "idem", sys, nil)

	do := func(tenant, key string, b []byte) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/solve", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	r1, b1 := do("idem", "key-1", body)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first solve: %d: %s", r1.StatusCode, b1)
	}
	if r1.Header.Get("X-Idempotent-Replay") != "" {
		t.Fatal("first solve marked as replay")
	}
	admitted := srv.ReadMetrics().Admission.Admitted

	r2, b2 := do("idem", "key-1", body)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("replay solve: %d", r2.StatusCode)
	}
	if r2.Header.Get("X-Idempotent-Replay") != "1" {
		t.Fatal("second solve not marked as replay")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("replay bytes differ from the original response")
	}
	m := srv.ReadMetrics()
	if m.Admission.Admitted != admitted {
		t.Fatalf("replay was admitted: %d -> %d", admitted, m.Admission.Admitted)
	}
	if m.Idempotency.Entries != 1 || m.Idempotency.Bytes != int64(len(b1)) {
		t.Fatalf("idempotency stats = %+v, want 1 entry of %d bytes", m.Idempotency, len(b1))
	}

	// Another tenant presenting the same key must NOT get the stored
	// response: keys are tenant-scoped.
	otherBody := solveBody(t, "other", sys, nil)
	r3, _ := do("other", "key-1", otherBody)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("other-tenant solve: %d", r3.StatusCode)
	}
	if r3.Header.Get("X-Idempotent-Replay") != "" {
		t.Fatal("cross-tenant replay: tenant scoping broken")
	}
	if got := srv.ReadMetrics().Admission.Admitted; got != admitted+1 {
		t.Fatalf("other tenant's solve not admitted: %d, want %d", got, admitted+1)
	}
}
