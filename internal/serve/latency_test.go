package serve

import (
	"sync"
	"testing"
	"time"
)

// TestPercentileNearestRank pins the nearest-rank definition against
// hand-computed values, including the degenerate sizes the ring hits during
// warm-up (empty, one sample) and the extreme p values.
func TestPercentileNearestRank(t *testing.T) {
	mk := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	cases := []struct {
		n    int
		p    float64
		want time.Duration
	}{
		{0, 50, 0},
		{1, 0, time.Millisecond},
		{1, 100, time.Millisecond},
		{4, 50, 2 * time.Millisecond},   // rank = round(4*0.5) = 2
		{4, 95, 4 * time.Millisecond},   // rank = round(3.8) = 4
		{100, 50, 50 * time.Millisecond},
		{100, 95, 95 * time.Millisecond},
		{100, 99, 99 * time.Millisecond},
		{100, 100, 100 * time.Millisecond},
		{10, 0, time.Millisecond}, // rank clamps to the first sample
	}
	for _, tc := range cases {
		if got := Percentile(mk(tc.n), tc.p); got != tc.want {
			t.Errorf("Percentile(n=%d, p=%v) = %v, want %v", tc.n, tc.p, got, tc.want)
		}
	}
}

// TestLatencyRingWindow pins the ring semantics: the window holds at most
// cap samples, the oldest are evicted first, count keeps the all-time
// total, and max is all-time (not windowed).
func TestLatencyRingWindow(t *testing.T) {
	r := newLatencyRing(4)
	for i := 1; i <= 6; i++ {
		r.record(time.Duration(i) * time.Millisecond)
	}
	s := r.stats()
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Window != 4 {
		t.Errorf("window = %d, want 4", s.Window)
	}
	// Window now holds {3,4,5,6}ms: p50 = nearest-rank 2nd = 4ms.
	if s.P50MS != 4 {
		t.Errorf("p50 = %vms over window {3..6}ms, want 4", s.P50MS)
	}
	if s.MaxMS != 6 {
		t.Errorf("max = %vms, want 6", s.MaxMS)
	}

	// A degenerate cap is clamped to 1 rather than panicking.
	r1 := newLatencyRing(0)
	r1.record(7 * time.Millisecond)
	r1.record(9 * time.Millisecond)
	if s := r1.stats(); s.Window != 1 || s.P99MS != 9 {
		t.Errorf("cap-0 ring: window=%d p99=%v, want window 1 holding the last sample", s.Window, s.P99MS)
	}
}

// TestLatencyRingConcurrent hammers one ring with concurrent writers and
// readers under the race detector; afterwards the totals must be exact and
// every reported percentile must be a value that was actually recorded.
func TestLatencyRingConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 2000
	)
	r := newLatencyRing(256)
	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers exercise stats() against in-flight record()s.
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := r.stats()
					if s.P50MS > s.P95MS || s.P95MS > s.P99MS || s.P99MS > s.MaxMS {
						t.Errorf("percentiles out of order mid-run: %+v", s)
						return
					}
				}
			}
		}()
	}
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				// All samples in [1ms, 8ms]; every percentile must land in it.
				r.record(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	s := r.stats()
	if s.Count != writers*perW {
		t.Errorf("count = %d, want %d (lost or duplicated records)", s.Count, writers*perW)
	}
	if s.Window != 256 {
		t.Errorf("window = %d, want full ring 256", s.Window)
	}
	for name, v := range map[string]float64{"p50": s.P50MS, "p95": s.P95MS, "p99": s.P99MS, "max": s.MaxMS} {
		if v < 1 || v > float64(writers) {
			t.Errorf("%s = %vms outside the recorded range [1, %d]ms", name, v, writers)
		}
	}
}
