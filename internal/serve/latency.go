package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyRing records the last cap request latencies for the percentile
// report on /v1/metrics. Percentiles over a bounded recent window are what
// an operator wants from a long-running server (an all-time histogram
// never forgets a warm-up spike); the load harness computes its own exact
// client-side percentiles over the full run.
type latencyRing struct {
	mu    sync.Mutex
	buf   []time.Duration
	idx   int
	count int64
	max   time.Duration
}

func newLatencyRing(cap int) *latencyRing {
	if cap < 1 {
		cap = 1
	}
	return &latencyRing{buf: make([]time.Duration, 0, cap)}
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.idx] = d
		r.idx = (r.idx + 1) % len(r.buf)
	}
	r.count++
	if d > r.max {
		r.max = d
	}
}

// LatencyStats is the percentile report of the recent-latency window.
type LatencyStats struct {
	Count  int64   `json:"count"`
	Window int     `json:"window"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func (r *latencyRing) stats() LatencyStats {
	r.mu.Lock()
	window := make([]time.Duration, len(r.buf))
	copy(window, r.buf)
	s := LatencyStats{Count: r.count, Window: len(window), MaxMS: ms(r.max)}
	r.mu.Unlock()
	if len(window) == 0 {
		return s
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	s.P50MS = ms(Percentile(window, 50))
	s.P95MS = ms(Percentile(window, 95))
	s.P99MS = ms(Percentile(window, 99))
	return s
}

// Percentile returns the p-th percentile (nearest-rank) of sorted samples;
// 0 for an empty slice. Shared with the load harness.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
