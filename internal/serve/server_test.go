package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nbody"
	"nbody/internal/core"
	"nbody/internal/faults"
)

// newTestServer starts a Server on an httptest listener and registers the
// teardown.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Quiet = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

// solveBody marshals a request for sys.
func solveBody(t *testing.T, tenant string, sys *nbody.System, mutate func(*SolveRequest)) []byte {
	t.Helper()
	req := SolveRequest{Tenant: tenant, Positions: make([][3]float64, sys.Len()), Charges: sys.Charges}
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	if mutate != nil {
		mutate(&req)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSolve(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSolveMatchesInProcess drives concurrent tenants with mixed shapes
// through the HTTP server and checks every response bitwise against an
// in-process solver of the same shape — the differential contract: serving
// adds queueing and caching, never different numbers.
func TestSolveMatchesInProcess(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})

	shapes := []struct {
		n       int
		compute string
	}{
		{300, "potentials"},
		{512, "accelerations"},
	}
	type ref struct {
		phi []float64
		acc []nbody.Vec3
	}
	refs := make([]ref, len(shapes))
	for i, sh := range shapes {
		sys := nbody.NewUniformSystem(sh.n, int64(sh.n))
		depth := core.OptimalDepth(sh.n, 32)
		a, err := nbody.NewAnderson(Domain(), nbody.Options{Accuracy: nbody.Fast, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if sh.compute == "accelerations" {
			refs[i].phi, refs[i].acc, err = a.Accelerations(sys)
		} else {
			refs[i].phi, err = a.Potentials(sys)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for _, tenant := range []string{"alice", "bob", "carol"} {
		for si := range shapes {
			wg.Add(1)
			go func(tenant string, si int) {
				defer wg.Done()
				sh := shapes[si]
				sys := nbody.NewUniformSystem(sh.n, int64(sh.n))
				body := solveBody(t, tenant, sys, func(r *SolveRequest) { r.Compute = sh.compute })
				for rep := 0; rep < 3; rep++ {
					resp, data := postSolve(t, hs.URL, body)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("tenant %s shape %d: status %d: %s", tenant, si, resp.StatusCode, data)
						return
					}
					var sr SolveResponse
					if err := json.Unmarshal(data, &sr); err != nil {
						t.Error(err)
						return
					}
					if sr.N != sh.n || len(sr.Phi) != sh.n {
						t.Errorf("tenant %s: got N=%d len(phi)=%d, want %d", tenant, sr.N, len(sr.Phi), sh.n)
						return
					}
					for i := range sr.Phi {
						if sr.Phi[i] != refs[si].phi[i] {
							t.Errorf("tenant %s shape %d rep %d: phi[%d] = %v, want %v (bitwise)",
								tenant, si, rep, i, sr.Phi[i], refs[si].phi[i])
							return
						}
					}
					if sh.compute == "accelerations" {
						if len(sr.Acc) != sh.n {
							t.Errorf("tenant %s: no accelerations in response", tenant)
							return
						}
						for i, a := range sr.Acc {
							want := refs[si].acc[i]
							if a != [3]float64{want.X, want.Y, want.Z} {
								t.Errorf("tenant %s: acc[%d] = %v, want %v", tenant, i, a, want)
								return
							}
						}
					}
				}
			}(tenant, si)
		}
	}
	wg.Wait()
}

// TestPlanCacheHitsAcrossRequests proves the second same-shape request is
// served warm and bitwise-identically.
func TestPlanCacheHitsAcrossRequests(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	sys := nbody.NewUniformSystem(256, 7)
	body := solveBody(t, "warm", sys, nil)

	var first SolveResponse
	for rep := 0; rep < 3; rep++ {
		resp, data := postSolve(t, hs.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rep %d: status %d: %s", rep, resp.StatusCode, data)
		}
		var sr SolveResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			if sr.CacheHit {
				t.Fatalf("first request of a shape reported a cache hit")
			}
			first = sr
			continue
		}
		if !sr.CacheHit {
			t.Fatalf("rep %d not served from the plan cache", rep)
		}
		for i := range sr.Phi {
			if sr.Phi[i] != first.Phi[i] {
				t.Fatalf("rep %d: phi[%d] differs from cold solve", rep, i)
			}
		}
	}
	st := srv.PlanStats()
	if st.Hits < 2 || st.Misses != 1 {
		t.Fatalf("plan stats = %+v, want 1 miss and >= 2 hits", st)
	}
}

// TestErrorPaths drives every malformed-request class and checks the
// status code and error code the wire contract promises.
func TestErrorPaths(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, MaxN: 1024, MaxBodyBytes: 1 << 20})
	valid := nbody.NewUniformSystem(16, 1)

	cases := []struct {
		name   string
		body   []byte
		status int
		code   string
	}{
		{"malformed json", []byte(`{"positions": [[0.1,`), 400, "invalid_request"},
		{"empty system", []byte(`{"positions": [], "charges": []}`), 400, "invalid_request"},
		{"mismatched charges", solveBody(t, "", valid, func(r *SolveRequest) { r.Charges = r.Charges[:8] }), 400, "invalid_request"},
		{"unknown accuracy", solveBody(t, "", valid, func(r *SolveRequest) { r.Accuracy = "warp9" }), 400, "invalid_request"},
		{"unknown compute", solveBody(t, "", valid, func(r *SolveRequest) { r.Compute = "vibes" }), 400, "invalid_request"},
		{"depth one", solveBody(t, "", valid, func(r *SolveRequest) { r.Depth = 1 }), 400, "invalid_request"},
		{"negative depth", solveBody(t, "", valid, func(r *SolveRequest) { r.Depth = -3 }), 400, "invalid_request"},
		{"out of domain", solveBody(t, "", valid, func(r *SolveRequest) { r.Positions[3] = [3]float64{2.5, 0.5, 0.5} }), 400, "invalid_request"},
		{"non-finite position", []byte(`{"positions": [[1e999, 0.5, 0.5]], "charges": [1]}`), 400, "invalid_request"},
		{"forged huge N", hugeNBody(2048), 413, "too_large"},
		{"depth over cap", solveBody(t, "", valid, func(r *SolveRequest) { r.Depth = 9 }), 413, "too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postSolve(t, hs.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, data)
			}
			var er ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("non-JSON error body: %s", data)
			}
			if er.Code != tc.code {
				t.Fatalf("code = %q, want %q", er.Code, tc.code)
			}
		})
	}

	t.Run("body over cap", func(t *testing.T) {
		_, hs := newTestServer(t, Config{Workers: 2, MaxBodyBytes: 512})
		resp, data := postSolve(t, hs.URL, solveBody(t, "", valid, nil))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, data)
		}
	})
	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/v1/solve")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// hugeNBody fabricates a request with n particles, all valid, to trip the
// MaxN admission cap (the decoder must reject it before building anything).
func hugeNBody(n int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"positions":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `[%g,0.5,0.5]`, 0.001+0.9*float64(i)/float64(n))
	}
	b.WriteString(`],"charges":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('1')
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

// TestDeadlineExceeded injects a delay longer than the request deadline
// into the near-field phase and checks the 504 path: the deadline crosses
// the dispatcher into the solver's own cancellation checks.
func TestDeadlineExceeded(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	defer faults.Reset()

	sys := nbody.NewUniformSystem(256, 3)
	// Warm the plan first so the delayed request measures the solve, not
	// the construction.
	if resp, data := postSolve(t, hs.URL, solveBody(t, "slow", sys, nil)); resp.StatusCode != 200 {
		t.Fatalf("warmup failed: %d %s", resp.StatusCode, data)
	}

	faults.InjectDelay("core/near", 400*time.Millisecond)
	body := solveBody(t, "slow", sys, func(r *SolveRequest) { r.DeadlineMS = 50 })
	resp, data := postSolve(t, hs.URL, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Code != "deadline_exceeded" {
		t.Fatalf("error body = %s", data)
	}

	// The server healed: the same tenant's next request succeeds.
	if resp, data := postSolve(t, hs.URL, solveBody(t, "slow", sys, nil)); resp.StatusCode != 200 {
		t.Fatalf("post-deadline solve failed: %d %s", resp.StatusCode, data)
	}
}

// TestOverloadRejects floods one tenant far past its queue depth and
// checks the admission contract: excess requests bounce with 429
// immediately, admitted ones all finish with 200, and nothing 5xxes. An
// injected near-field delay pins every solve at ~150ms so the flood
// deterministically outruns the two workers and the depth-1 queue.
func TestOverloadRejects(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 1, Policy: PolicyFIFO})
	defer faults.Reset()
	sys := nbody.NewUniformSystem(2048, 5)
	body := solveBody(t, "flood", sys, nil)

	// Warm the plan so the flood measures admission, not construction.
	if resp, data := postSolve(t, hs.URL, body); resp.StatusCode != 200 {
		t.Fatalf("warmup: %d %s", resp.StatusCode, data)
	}
	faults.InjectDelayN("core/near", 150*time.Millisecond, 100)

	const flood = 24
	statuses := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postSolve(t, hs.URL, body)
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for s := range statuses {
		counts[s]++
	}
	if counts[200] == 0 {
		t.Fatalf("no request survived the flood: %v", counts)
	}
	if counts[429] == 0 {
		t.Fatalf("queue depth 1 admitted all %d concurrent requests: %v", flood, counts)
	}
	if counts[200]+counts[429] != flood {
		t.Fatalf("unexpected statuses under flood: %v", counts)
	}
	if st := srv.ReadMetrics(); st.Admission.Rejected == 0 {
		t.Fatalf("admission stats recorded no rejects: %+v", st.Admission)
	}
}

// TestSimulateStream runs a short integration over the streaming endpoint
// and compares the final particle state bitwise against the same
// integration run in process.
func TestSimulateStream(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	const n, steps, every = 128, 4, 2
	const dt = 1e-3
	sys := nbody.NewUniformSystem(n, 11)

	req := SimulateRequest{Steps: steps, DT: dt, StreamEvery: every}
	req.Tenant = "sim"
	req.Positions = make([][3]float64, n)
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	req.Charges = sys.Charges
	body, _ := json.Marshal(req)

	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type = %q, want ndjson", ct)
	}

	var frames []Frame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != steps/every {
		t.Fatalf("got %d frames, want %d", len(frames), steps/every)
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Step != steps || len(last.Positions) != n || len(last.Velocity) != n {
		t.Fatalf("final frame malformed: final=%v step=%d len=%d/%d", last.Final, last.Step, len(last.Positions), len(last.Velocity))
	}

	// In-process reference: the same shape over the enlarged simulation
	// domain, stepped identically.
	depth := core.OptimalDepth(n, 32)
	a, err := nbody.NewAnderson(SimDomain(), nbody.Options{Accuracy: nbody.Fast, Depth: depth})
	if err != nil {
		t.Fatal(err)
	}
	ref := nbody.NewUniformSystem(n, 11)
	sim, err := nbody.NewSimulation(ref, nil, a, dt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(steps); err != nil {
		t.Fatal(err)
	}
	for i, p := range sim.System.Positions {
		if last.Positions[i] != [3]float64{p.X, p.Y, p.Z} {
			t.Fatalf("positions[%d] = %v, want %v (bitwise)", i, last.Positions[i], p)
		}
	}
	for i, v := range sim.Velocities {
		if last.Velocity[i] != [3]float64{v.X, v.Y, v.Z} {
			t.Fatalf("velocities[%d] = %v, want %v (bitwise)", i, last.Velocity[i], v)
		}
	}
}

// TestSimulateRejectsBadParams covers the integration-parameter validation.
func TestSimulateRejectsBadParams(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	for _, body := range []string{
		`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":0,"dt":0.001}`,
		`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":4,"dt":0}`,
		`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":4,"dt":1e999}`,
		`{"positions":[[0.5,0.5,0.5]],"charges":[1],"steps":4,"dt":0.001,"stream_every":-1}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestPhaseTableAndMetrics checks the per-request phase table and the
// metrics document.
func TestPhaseTableAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	sys := nbody.NewUniformSystem(256, 9)
	body := solveBody(t, "phases", sys, func(r *SolveRequest) { r.Phases = true })

	resp, data := postSolve(t, hs.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.PhaseTable) == 0 {
		t.Fatalf("phases requested but table empty")
	}
	var total int64
	for _, row := range sr.PhaseTable {
		total += row.NS
	}
	if total <= 0 {
		t.Fatalf("phase table carries no time: %+v", sr.PhaseTable)
	}

	mresp, err := http.Get(hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Backend == "" || m.Workers < 2 {
		t.Fatalf("metrics missing basics: %+v", m)
	}
	if m.Statuses["200"] == 0 {
		t.Fatalf("metrics recorded no 200s: %+v", m.Statuses)
	}
	if m.PlanCache.Misses == 0 {
		t.Fatalf("metrics recorded no plan builds: %+v", m.PlanCache)
	}

	hresp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Fatalf("healthz = %d", hresp.StatusCode)
	}
}

// TestRecoveryScopedToRequest injects one panic into the T2 phase and
// checks the afflicted request reports exactly its own healing events
// while a clean follow-up request reports none.
func TestRecoveryScopedToRequest(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	defer faults.Reset()

	sys := nbody.NewUniformSystem(256, 13)
	body := solveBody(t, "heal", sys, nil)

	// Warm the plan, then arm one panic: the retry supervisor must heal it
	// within the same request.
	if resp, data := postSolve(t, hs.URL, body); resp.StatusCode != 200 {
		t.Fatalf("warmup: %d %s", resp.StatusCode, data)
	}
	faults.InjectPanicN("core/T2", "injected by TestRecoveryScopedToRequest", 1)

	resp, data := postSolve(t, hs.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("injected request not healed: %d %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Recovery == nil || sr.Recovery.Retries == 0 {
		t.Fatalf("healed request reports no recovery: %+v", sr.Recovery)
	}

	resp, data = postSolve(t, hs.URL, body)
	if resp.StatusCode != 200 {
		t.Fatalf("clean request: %d %s", resp.StatusCode, data)
	}
	var clean SolveResponse
	if err := json.Unmarshal(data, &clean); err != nil {
		t.Fatal(err)
	}
	if clean.Recovery != nil {
		t.Fatalf("clean request inherited recovery events: %+v", clean.Recovery)
	}
}
