package serve

import (
	"container/list"
	"sync"
)

// idemStore is the solve-replay registry behind the Idempotency-Key
// header: the gateway stamps one key on a request and reuses it verbatim
// on every failover retry, so a retry that lands on a replica that
// already served the original replays the stored response bytes instead
// of re-running (and re-accounting) the solve — "never double-counted"
// means the replay path skips admission, the estimator, and the planner
// entirely.
//
// Entries are tenant-scoped (the key is tenant + NUL + Idempotency-Key),
// so one tenant can never replay another tenant's response by guessing
// its key. Only successful (200) solve bodies are stored: an error is
// exactly what the gateway retries *through*, so caching it would defeat
// the failover. The store is a strict LRU bounded by both entry count and
// total body bytes.
type idemStore struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	order      *list.List // front = most recent; values are *idemEntry
	byKey      map[string]*list.Element
}

type idemEntry struct {
	key  string
	body []byte
}

// Default replay-store bounds: enough for the retry window of a busy
// gateway (a key is useful for seconds, not hours), small enough that a
// flood of unique keys cannot hold the heap hostage.
const (
	idemDefaultEntries = 512
	idemDefaultBytes   = 64 << 20
)

func newIdemStore(maxEntries int, maxBytes int64) *idemStore {
	if maxEntries <= 0 {
		maxEntries = idemDefaultEntries
	}
	if maxBytes <= 0 {
		maxBytes = idemDefaultBytes
	}
	return &idemStore{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

// idemKeyFor builds the tenant-scoped lookup key.
func idemKeyFor(tenant, key string) string {
	return tenant + "\x00" + key
}

// get returns the stored response body for tenant's key, marking it most
// recently used.
func (s *idemStore) get(tenant, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[idemKeyFor(tenant, key)]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*idemEntry).body, true
}

// put stores a successful response body under tenant's key, evicting from
// the LRU tail until both bounds hold. A body alone bigger than the byte
// bound is not stored (replay is an optimization, not a promise).
func (s *idemStore) put(tenant, key string, body []byte) {
	if int64(len(body)) > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := idemKeyFor(tenant, key)
	if el, ok := s.byKey[k]; ok {
		// A racing duplicate finished first; keep its answer (both are
		// correct solves of the same request).
		s.order.MoveToFront(el)
		return
	}
	el := s.order.PushFront(&idemEntry{key: k, body: body})
	s.byKey[k] = el
	s.bytes += int64(len(body))
	for s.order.Len() > s.maxEntries || s.bytes > s.maxBytes {
		tail := s.order.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*idemEntry)
		s.order.Remove(tail)
		delete(s.byKey, e.key)
		s.bytes -= int64(len(e.body))
	}
}

// stats snapshots the store's occupancy for /v1/metrics.
func (s *idemStore) stats() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len(), s.bytes
}
