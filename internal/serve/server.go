package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nbody"
	"nbody/internal/faults"
	"nbody/internal/metrics"
	"nbody/internal/plan"
	"nbody/internal/resilience"
	"nbody/internal/simd"
)

// Config configures a Server. The zero value of every field selects the
// documented default.
type Config struct {
	// Workers is the solver-worker fleet size (default: GOMAXPROCS/2,
	// minimum 2). Each worker runs one request's solve at a time; a solve
	// itself parallelizes over the shared internal/sched pool, so workers
	// provide request pipelining, not core count.
	Workers int
	// Policy is the admission policy: PolicyFair (default) or PolicyFIFO.
	Policy Policy
	// QueueDepth bounds each tenant's FIFO queue (default 16); a tenant at
	// depth gets 429.
	QueueDepth int
	// InflightPerTenant caps one tenant's concurrent solves under
	// PolicyFair (default 2; < 1 means no cap).
	InflightPerTenant int
	// PlanCacheCap is the number of idle warm plans retained (default 8;
	// 0 keeps the default — use -1 to disable plan reuse).
	PlanCacheCap int
	// MaxN caps the particle count per request (default 131072).
	MaxN int
	// MaxDepth caps the hierarchy depth per request (default 6).
	MaxDepth int
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// DefaultDeadline bounds requests that do not set deadline_ms
	// (default 60s; < 0 disables).
	DefaultDeadline time.Duration
	// Ladder is the comma-separated fallback chain appended below the
	// Anderson rung of every plan (cli.LadderHelp syntax, e.g.
	// "bh,direct"); "" serves every request from the bare Anderson rung
	// still wrapped in the Resilient supervisor.
	Ladder string
	// Retry is the per-request supervisor policy (zero value = library
	// defaults: 3 attempts per rung with backoff).
	Retry nbody.RetryPolicy
	// DisableAdmission turns cost-model admission off: requests queue
	// unconditionally (the pre-overload-control behavior) and deadline
	// misses surface as 504s after the work was wasted. The load harness
	// uses it as the comparison baseline.
	DisableAdmission bool
	// DisableBrownout turns the adaptive brownout controller off: requests
	// always run at their requested fidelity, whatever the queue delay.
	DisableBrownout bool
	// PlanStore is the path of the persistent tuned-plan store. When set,
	// New warms the planner from it (so previously tuned shapes resolve
	// without search from the first request) and Close persists the table
	// back. "" keeps the planner memory-only.
	PlanStore string
	// DisableAutotune restricts automatic depth resolution to the analytic
	// cost model: tuned entries are ignored and measured solves do not
	// refine the table. Pinned depths are unaffected.
	DisableAutotune bool
	// BrownoutTarget is the brownout controller's queue-delay setpoint
	// (default 100ms; see resilience.BrownoutConfig).
	BrownoutTarget time.Duration
	// BrownoutMax caps the brownout degradation level (default 2).
	BrownoutMax int
	// Logger receives one structured line per request (default: stderr).
	// Set Quiet to drop request logs entirely.
	Logger *log.Logger
	Quiet  bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
	}
	if c.Workers < 2 {
		c.Workers = 2
	}
	if c.Policy == "" {
		c.Policy = PolicyFair
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.InflightPerTenant == 0 {
		c.InflightPerTenant = 2
	}
	if c.PlanCacheCap == 0 {
		c.PlanCacheCap = 8
	}
	if c.MaxN == 0 {
		c.MaxN = 131072
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "nbodyd ", log.LstdFlags|log.Lmicroseconds)
	}
	return c
}

// Server is the multi-tenant solver service: an http.Handler owning the
// dispatcher, the plan cache, and the request accounting.
type Server struct {
	cfg   Config
	disp  *Dispatcher
	plans *PlanCache
	mux     *http.ServeMux
	start   time.Time
	lat     *latencyRing
	est     *estimator
	brown   *resilience.Brownout
	planner *plan.Planner
	idem    *idemStore

	// draining flips once (BeginDrain or Close) and never back: new work
	// is 503'd, healthz reports "draining", and in-flight simulation
	// streams stop at their next frame boundary with an interrupted frame
	// carrying a resume token.
	draining atomic.Bool

	mu       sync.Mutex
	statuses map[int]int64
}

// New builds a Server and starts its worker fleet. Close releases it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	disp, err := NewDispatcher(cfg.Policy, cfg.Workers, cfg.QueueDepth, cfg.InflightPerTenant)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		disp:     disp,
		plans:    NewPlanCache(cfg.PlanCacheCap, cfg.Retry),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		lat:      newLatencyRing(4096),
		est:      newEstimator(),
		brown:    resilience.NewBrownout(resilience.BrownoutConfig{Target: cfg.BrownoutTarget, MaxLevel: cfg.BrownoutMax}),
		planner:  plan.NewPlanner(cfg.MaxDepth),
		idem:     newIdemStore(0, 0),
		statuses: make(map[int]int64),
	}
	if cfg.PlanStore != "" {
		// A corrupt store is a loud startup failure, never a silently wrong
		// plan; the operator deletes the file or restores a backup.
		if _, err := s.planner.Load(cfg.PlanStore); err != nil {
			disp.Close()
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/drain", s.handleDrain)
	return s, nil
}

// Handler returns the HTTP handler (mount it on any http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the dispatcher (queued requests fail with 503, in-flight
// solves finish, workers exit) and persists the tuned-plan store when one
// is configured, so the next process warm-starts from this one's evidence.
//
// The draining flag goes up before the dispatcher closes: an in-flight
// simulation stream owns its worker for the whole integration, so without
// the flag Close would block until the longest stream ran to completion.
// With it, every stream stops at its next frame boundary, emits a cleanly
// terminated interrupted frame with a resume token, and releases its
// worker — no goroutine leak, no truncated frame.
func (s *Server) Close() {
	s.draining.Store(true)
	s.disp.Close()
	if s.cfg.PlanStore != "" {
		if err := s.planner.Save(s.cfg.PlanStore); err != nil {
			s.cfg.Logger.Printf("plan store save failed: %v", err)
		}
	}
}

// BeginDrain puts the server into draining mode: /v1/healthz reports
// "draining" (so gateways and orchestrators stop routing here), new solve
// and simulate requests are rejected with 503 + Retry-After, and running
// simulation streams finish their current frame and terminate cleanly
// with a resume token. Irreversible; idempotent.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) && !s.cfg.Quiet {
		s.cfg.Logger.Printf("draining: refusing new work, finishing %d in flight", s.disp.Stats().InFlight)
	}
}

// Draining reports whether BeginDrain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins draining and blocks until every queued and in-flight
// request has finished or ctx fires. Close is still required afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for !s.disp.Quiesced() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// handleDrain is POST /v1/drain: the remote half of the rolling-restart
// recipe. It flips the server into draining mode and returns immediately;
// the caller polls /v1/healthz (or the process exit) for completion.
func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	s.BeginDrain()
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"draining"}` + "\n"))
}

// Planner exposes the plan subsystem (tests and the load harness).
func (s *Server) Planner() *plan.Planner { return s.planner }

// PlanStats exposes the plan cache counters (tests and the load harness).
func (s *Server) PlanStats() CacheStats { return s.plans.Stats() }

// statusFor maps the error taxonomy onto HTTP status codes: the request
// classes to 4xx, the caller's deadline to 504, a ladder-wide solver
// failure to 500.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge, "too_large"
	case errors.Is(err, nbody.ErrCorruptCheckpoint):
		// A damaged resume token is the client's (or a stale gateway's)
		// problem, never a server failure.
		return http.StatusBadRequest, "bad_resume_token"
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, nbody.ErrInvalidSystem),
		errors.Is(err, nbody.ErrOutOfDomain),
		errors.Is(err, nbody.ErrInvalidOptions):
		return http.StatusBadRequest, "invalid_request"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrShed):
		var se *ShedError
		if errors.As(err, &se) && se.Stale {
			return http.StatusTooManyRequests, "shed_stale"
		}
		return http.StatusTooManyRequests, "shed_deadline"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrServerClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		// The client is gone; the code is for the logs.
		return 499, "client_canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeError emits the JSON error body and accounts the status. Every 429
// and 503 carries a Retry-After header: the shed path derives it from the
// predicted backlog, everything else hints one second.
func (s *Server) writeError(w http.ResponseWriter, err error) (status int) {
	status, code := statusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(retryAfterFor(err)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Code: code})
	return status
}

// retryAfterFor extracts the backlog-derived Retry-After hint of a shed
// rejection; every other retryable rejection hints one second.
func retryAfterFor(err error) time.Duration {
	var se *ShedError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		return se.RetryAfter
	}
	return time.Second
}

// requestCtx applies the deadline policy: the request's own deadline_ms
// when set, the server default otherwise, on top of the client-disconnect
// cancellation the http server already provides.
func (s *Server) requestCtx(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	switch {
	case deadlineMS > 0:
		return context.WithTimeout(ctx, time.Duration(deadlineMS)*time.Millisecond)
	case s.cfg.DefaultDeadline > 0:
		return context.WithTimeout(ctx, s.cfg.DefaultDeadline)
	}
	return ctx, func() {}
}

// logRequest is the structured request log: one line per request with
// everything an operator greps for.
func (s *Server) logRequest(endpoint, tenant string, key Key, status int, hit bool, rung int, queue, solve time.Duration, err error) {
	if s.cfg.Quiet {
		return
	}
	detail := ""
	if err != nil {
		detail = fmt.Sprintf(" err=%q", err.Error())
	}
	hitStr := "miss"
	if hit {
		hitStr = "hit"
	}
	s.cfg.Logger.Printf("%s tenant=%q %s status=%d plan=%s rung=%d queue=%s solve=%s%s",
		endpoint, tenant, key, status, hitStr, rung, queue.Round(time.Microsecond), solve.Round(time.Microsecond), detail)
}

// record accounts a finished request.
func (s *Server) record(status int, total time.Duration) {
	s.mu.Lock()
	s.statuses[status]++
	s.mu.Unlock()
	if status < 400 {
		s.lat.record(total)
	}
}

// shapeFor builds the canonical problem shape of a request.
func shapeFor(req *SolveRequest, n int, dist string) plan.ShapeKey {
	return plan.ShapeKey{N: n, Dist: dist, Accuracy: req.Accuracy}
}

// keyFor resolves the full plan key of a request through the planner: a
// pinned depth (req.Depth > 0) is honored verbatim; an auto request gets
// the tuned depth when the shape has measured evidence, the analytic
// cost-model depth otherwise. The resolution provenance lands in the
// planner counters on /v1/metrics.
func (s *Server) keyFor(req *SolveRequest, n int, dist string, sim bool) Key {
	pl, _ := s.planner.Resolve(shapeFor(req, n, dist), plan.Request{
		Depth:      req.Depth,
		Supernodes: req.Supernodes,
		Sim:        sim,
		Ladder:     s.cfg.Ladder,
		MaxDepth:   s.cfg.MaxDepth,
		NoTuned:    s.cfg.DisableAutotune,
	})
	return Key{Shape: shapeFor(req, n, dist), Sim: sim, Plan: pl}
}

// handleSolve is POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.draining.Load() {
		status := s.writeError(w, ErrDraining)
		s.record(status, time.Since(t0))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, sys, err := decodeSolveRequest(r.Body, s.limits())
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			err = fmt.Errorf("%w: body over %d bytes", ErrTooLarge, s.cfg.MaxBodyBytes)
		}
		status := s.writeError(w, err)
		s.record(status, time.Since(t0))
		s.logRequest("solve", req.tenantOrEmpty(), Key{}, status, false, 0, 0, 0, err)
		return
	}

	// Idempotent replay: a failed-over or hedged retry carrying the same
	// Idempotency-Key as a solve this replica already answered gets the
	// stored bytes back — no admission, no estimator or planner
	// observation, no double-counting of work that already happened.
	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey != "" {
		if body, ok := s.idem.get(req.Tenant, idemKey); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Idempotent-Replay", "1")
			_, _ = w.Write(body)
			s.record(http.StatusOK, time.Since(t0))
			s.logRequest("solve", req.Tenant, Key{}, http.StatusOK, true, 0, 0, 0, nil)
			return
		}
	}

	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	dist := plan.Fingerprint(sys.Positions)
	level, degraded := s.applyBrownout(req, sys.Len(), dist, false)
	key := s.keyFor(req, sys.Len(), dist, false)

	var resp *SolveResponse
	var queueWait, solveTime, measured time.Duration
	enq := time.Now()
	err = s.disp.DoBudget(ctx, req.Tenant, s.budgetFor(ctx, key, 1), func(ctx context.Context) error {
		queueWait = time.Since(enq)
		s.observePressure(queueWait)
		faults.Fire(SiteWorker)
		start := time.Now()
		var serr error
		resp, measured, serr = s.execute(ctx, req, sys, key)
		solveTime = time.Since(start)
		return serr
	})

	if err == nil {
		if measured <= 0 {
			measured = solveTime
		}
		s.est.Observe(key, 1, measured)
		if !s.cfg.DisableAutotune {
			s.planner.Observe(key, measured)
		}
		// The solve can cross the finish line after the request's clock ran
		// out: cancellation checks are chunk-granular, and on a saturated
		// machine the context timer itself fires late, so ctx.Err() can
		// still be nil past the wall deadline — compare against the
		// deadline directly. A late result is useless to the caller:
		// report the deadline failure it is, never a late 200; the
		// measurement above is exactly the calibration that stops the next
		// one being admitted.
		if dl, ok := ctx.Deadline(); ok && time.Now().After(dl) {
			err = fmt.Errorf("result ready after deadline: %w", context.DeadlineExceeded)
		}
	}

	status := http.StatusOK
	hit := false
	rung := 0
	if err != nil {
		status = s.writeError(w, err)
	} else {
		resp.QueueNS = int64(queueWait)
		resp.SolveNS = int64(solveTime)
		if degraded {
			resp.Degraded = true
			resp.BrownoutLevel = level
			metrics.AddBrowned(1)
		}
		w.Header().Set("Content-Type", "application/json")
		if idemKey == "" {
			if encErr := json.NewEncoder(w).Encode(resp); encErr != nil {
				// The client hung up mid-body; nothing to send, just account.
				status = 499
			}
		} else {
			// Keyed requests encode through a buffer so the exact bytes the
			// client saw are what a replay returns.
			var buf bytes.Buffer
			if encErr := json.NewEncoder(&buf).Encode(resp); encErr != nil {
				status = 499
			} else {
				s.idem.put(req.Tenant, idemKey, buf.Bytes())
				if _, werr := w.Write(buf.Bytes()); werr != nil {
					status = 499
				}
			}
		}
		hit, rung = resp.CacheHit, resp.Rung
	}
	s.record(status, time.Since(t0))
	s.logRequest("solve", req.Tenant, key, status, hit, rung, queueWait, solveTime, err)
}

// tenantOrEmpty survives a nil request (decode failure).
func (r *SolveRequest) tenantOrEmpty() string {
	if r == nil {
		return ""
	}
	return r.Tenant
}

// execute runs one admitted solve on a plan checked out of the cache: the
// Resilient ladder with the request context, per-request phase-table and
// recovery scoping, results copied out before the plan is released. The
// returned duration is the request's measured phase-table total
// (Snapshot.Diff scoped to this solve), the estimator's preferred
// observation; zero when the preferred rung recorded nothing.
func (s *Server) execute(ctx context.Context, req *SolveRequest, sys *nbody.System, key Key) (*SolveResponse, time.Duration, error) {
	plan, hit, err := s.plans.Acquire(key)
	if err != nil {
		return nil, 0, err
	}
	defer s.plans.Release(plan)

	var before metrics.Snapshot
	if plan.Rung0 != nil {
		before = *plan.Rung0.Stats()
	}
	r0, b0, d0 := plan.Ladder.Counters()

	switch req.Compute {
	case "accelerations":
		err = plan.Ladder.AccelerationsIntoCtx(ctx, plan.Phi, plan.Acc, sys)
	default:
		err = plan.Ladder.PotentialsIntoCtx(ctx, plan.Phi, sys)
	}
	if err != nil {
		return nil, 0, err
	}

	resp := &SolveResponse{
		Tenant:   req.Tenant,
		N:        sys.Len(),
		Phi:      append([]float64(nil), plan.Phi...),
		Backend:  simd.Active(),
		Rung:     plan.Ladder.LastRung(),
		CacheHit: hit,
	}
	if req.Compute == "accelerations" {
		resp.Acc = make([][3]float64, len(plan.Acc))
		for i, a := range plan.Acc {
			resp.Acc[i] = [3]float64{a.X, a.Y, a.Z}
		}
	}
	var measured time.Duration
	if plan.Rung0 != nil {
		after := *plan.Rung0.Stats()
		diff := after.Diff(&before)
		measured = diff.TotalTime()
		if req.Phases {
			for p := metrics.Phase(0); p < metrics.NumPhases; p++ {
				if diff.Time[p] == 0 && diff.Flops[p] == 0 && diff.Calls[p] == 0 {
					continue
				}
				resp.PhaseTable = append(resp.PhaseTable, PhaseRow{
					Phase: p.String(), NS: int64(diff.Time[p]), Flops: diff.Flops[p],
				})
			}
		}
	}
	r1, b1, d1 := plan.Ladder.Counters()
	if delta := (RecoveryDelta{Retries: r1 - r0, BreakerTrips: b1 - b0, Degradations: d1 - d0}); delta != (RecoveryDelta{}) {
		resp.Recovery = &delta
	}
	return resp, measured, nil
}

// handleSimulate is POST /v1/simulate: one admitted job that owns a worker
// for the whole integration, streaming NDJSON frames as it goes.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.draining.Load() {
		status := s.writeError(w, ErrDraining)
		s.record(status, time.Since(t0))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, sys, err := decodeSimulateRequest(r.Body, s.limits())
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			err = fmt.Errorf("%w: body over %d bytes", ErrTooLarge, s.cfg.MaxBodyBytes)
		}
		status := s.writeError(w, err)
		s.record(status, time.Since(t0))
		return
	}
	ctx, cancel := s.requestCtx(r, req.DeadlineMS)
	defer cancel()

	dist := plan.Fingerprint(sys.Positions)
	level, degraded := 0, false
	if req.resume == nil {
		// A resumed stream must continue on exactly the plan the original
		// ran (the caller pins depth and accuracy from the original's
		// headers) — brownout rewriting it would fork the trajectory.
		level, degraded = s.applyBrownout(&req.SolveRequest, sys.Len(), dist, true)
	}
	key := s.keyFor(&req.SolveRequest, sys.Len(), dist, true)
	if degraded {
		// The NDJSON stream has no response envelope; the degradation tag
		// rides the headers instead.
		w.Header().Set("X-Degraded", "1")
		w.Header().Set("X-Brownout-Level", fmt.Sprintf("%d", level))
	}

	stepsBudget := req.Steps
	if req.resume != nil {
		stepsBudget = req.Steps - req.resume.Step
	}
	var queueWait time.Duration
	enq := time.Now()
	streaming := false
	err = s.disp.DoBudget(ctx, req.Tenant, s.budgetFor(ctx, key, stepsBudget), func(ctx context.Context) error {
		queueWait = time.Since(enq)
		s.observePressure(queueWait)
		faults.Fire(SiteWorker)
		start := time.Now()
		stepsRun, serr := s.stream(ctx, w, req, sys, key, &streaming)
		if serr == nil && stepsRun > 0 {
			elapsed := time.Since(start)
			s.est.Observe(key, stepsRun, elapsed)
			if !s.cfg.DisableAutotune {
				// Per-step cost: a simulation is stepsRun solves of this shape.
				s.planner.Observe(key, elapsed/time.Duration(stepsRun))
			}
			if degraded {
				metrics.AddBrowned(1)
			}
		}
		return serr
	})
	status := http.StatusOK
	if err != nil {
		if streaming {
			// Headers are gone; the truncated stream (no final frame) is
			// the error signal the client sees.
			status, _ = statusFor(err)
		} else {
			status = s.writeError(w, err)
		}
	}
	s.record(status, time.Since(t0))
	s.logRequest("simulate", req.Tenant, key, status, false, 0, queueWait, time.Since(t0), err)
}

// stream runs the integration, emitting a Frame every StreamEvery steps
// and a final Frame with the full particle state. Cancellation lands
// between chunks (the solver's own ctx checks bound each chunk's latency).
// A resume request continues from its decoded checkpoint instead of step
// zero; CheckpointEvery attaches resume tokens to periodic frames; and a
// server drain stops the loop at the next frame boundary with a cleanly
// terminated interrupted frame carrying a token. Returns the number of
// steps actually integrated (what the estimator should observe).
func (s *Server) stream(ctx context.Context, w http.ResponseWriter, req *SimulateRequest, sys *nbody.System, key Key, streaming *bool) (int, error) {
	plan, hit, err := s.plans.Acquire(key)
	if err != nil {
		return 0, err
	}
	defer s.plans.Release(plan)

	var sim *nbody.Simulation
	start := 0
	if req.resume != nil {
		sim, err = nbody.ResumeSimulationState(req.resume, ctxAccelerator{plan.Ladder, ctx})
		if sim != nil {
			start = req.resume.Step
		}
	} else {
		sim, err = nbody.NewSimulation(sys, nil, ctxAccelerator{plan.Ladder, ctx}, req.DT)
	}
	if err != nil {
		return 0, err
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Plan-Cache", map[bool]string{true: "hit", false: "miss"}[hit])
	// The plan the stream runs on, so a gateway resuming it elsewhere can
	// pin the same depth and accuracy for bitwise continuation.
	w.Header().Set("X-Plan-Depth", fmt.Sprintf("%d", key.Plan.Depth))
	w.Header().Set("X-Plan-Accuracy", key.Shape.Accuracy)
	*streaming = true
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	frames := 0
	emit := func(final, interrupted bool) error {
		k, u, e := sim.Energy()
		f := Frame{Step: sim.Steps(), Time: sim.Time(), Kinetic: k, Potential: u, Total: e,
			Final: final, Interrupted: interrupted}
		switch {
		case interrupted:
			// An interrupted frame without a token would be a dead end.
			tok, terr := encodeResumeToken(sim)
			if terr != nil {
				return terr
			}
			f.ResumeToken = tok
		case !final && req.CheckpointEvery > 0 && frames%req.CheckpointEvery == 0:
			tok, terr := encodeResumeToken(sim)
			if terr != nil {
				return terr
			}
			f.ResumeToken = tok
		}
		if final {
			f.Positions = make([][3]float64, sys.Len())
			f.Velocity = make([][3]float64, sys.Len())
			for i, p := range sim.System.Positions {
				f.Positions[i] = [3]float64{p.X, p.Y, p.Z}
			}
			for i, v := range sim.Velocities {
				f.Velocity[i] = [3]float64{v.X, v.Y, v.Z}
			}
		}
		frames++
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("%w: %v", context.Canceled, err)
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	for done := start; done < req.Steps; {
		if err := ctx.Err(); err != nil {
			return done - start, err
		}
		if s.draining.Load() {
			// Server shutting down: hand the stream back cleanly, resumable
			// exactly where it stopped. This is a successful response — the
			// client (or gateway) carries on elsewhere.
			return done - start, emit(false, true)
		}
		chunk := req.StreamEvery
		if rem := req.Steps - done; chunk > rem {
			chunk = rem
		}
		if err := sim.Step(chunk); err != nil {
			return done - start, err
		}
		done += chunk
		if err := emit(done == req.Steps, false); err != nil {
			return done - start, err
		}
	}
	return req.Steps - start, nil
}

// ctxAccelerator threads the request context into Simulation's
// context-free Accelerator interface, so a canceled request aborts the
// in-flight solve of the current step rather than finishing it.
type ctxAccelerator struct {
	r   *nbody.Resilient
	ctx context.Context
}

func (c ctxAccelerator) Accelerations(s *nbody.System) ([]float64, []nbody.Vec3, error) {
	return c.r.AccelerationsCtx(c.ctx, s)
}

func (c ctxAccelerator) AccelerationsInto(phi []float64, acc []nbody.Vec3, s *nbody.System) error {
	return c.r.AccelerationsIntoCtx(c.ctx, phi, acc, s)
}

func (s *Server) limits() Limits {
	return Limits{MaxN: s.cfg.MaxN, MaxDepth: s.cfg.MaxDepth}
}

// Metrics is the body of GET /v1/metrics: everything the server knows
// about itself, in one JSON document.
type Metrics struct {
	UptimeMS  int64                  `json:"uptime_ms"`
	Backend   string                 `json:"backend"`
	Policy    Policy                 `json:"policy"`
	Workers   int                    `json:"workers"`
	Admission DispatchStats          `json:"admission"`
	Tenants   map[string]TenantStats `json:"tenants,omitempty"`
	PlanCache CacheStats             `json:"plan_cache"`
	Latency   LatencyStats           `json:"latency"`
	Statuses  map[string]int64       `json:"statuses"`
	Recovery  metrics.RecoveryStats  `json:"recovery"`
	Overload  OverloadMetrics        `json:"overload"`
	Planner   PlannerMetrics         `json:"planner"`
	// Draining reports whether the server has begun its shutdown drain.
	Draining bool `json:"draining,omitempty"`
	// Idempotency is the solve-replay registry occupancy.
	Idempotency IdemMetrics `json:"idempotency"`
}

// IdemMetrics is the replay-registry section of /v1/metrics.
type IdemMetrics struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// PlannerMetrics is the plan-subsystem section of /v1/metrics: whether
// autotuning is on, where the persistent store lives, and this server's
// planner counters (tune hits/misses, measured searches and their total
// time, plan provenance tallies, store traffic).
type PlannerMetrics struct {
	AutotuneEnabled bool                 `json:"autotune_enabled"`
	Store           string               `json:"store,omitempty"`
	Counters        metrics.PlannerStats `json:"counters"`
}

// ReadMetrics assembles the metrics document (also used in-process by the
// load harness).
func (s *Server) ReadMetrics() Metrics {
	s.mu.Lock()
	statuses := make(map[string]int64, len(s.statuses))
	for code, n := range s.statuses {
		statuses[fmt.Sprintf("%d", code)] = n
	}
	s.mu.Unlock()
	entries, bytes := s.idem.stats()
	idem := IdemMetrics{Entries: entries, Bytes: bytes}
	return Metrics{
		UptimeMS:  time.Since(s.start).Milliseconds(),
		Backend:   simd.Active(),
		Policy:    s.cfg.Policy,
		Workers:   s.cfg.Workers,
		Admission: s.disp.Stats(),
		Tenants:   s.disp.TenantSnapshot(),
		PlanCache: s.plans.Stats(),
		Latency:   s.lat.stats(),
		Statuses:  statuses,
		Recovery:  metrics.ReadRecovery(),
		Overload:  s.readOverload(),
		Planner: PlannerMetrics{
			AutotuneEnabled: !s.cfg.DisableAutotune,
			Store:           s.cfg.PlanStore,
			Counters:        s.planner.Counters(),
		},
		Draining:    s.draining.Load(),
		Idempotency: idem,
	}
}

// handleMetrics is GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.ReadMetrics())
}

// handleHealthz is GET /v1/healthz. A draining server still answers 200 —
// it is alive and finishing work — but the body flips to "draining" so
// gateways and orchestrators stop routing new requests to it before the
// process exits.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		_, _ = w.Write([]byte(`{"status":"draining"}` + "\n"))
		return
	}
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}
