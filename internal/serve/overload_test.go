package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"testing"
	"time"

	"nbody"
	"nbody/internal/metrics"
	"nbody/internal/resilience"
)

// TestShedAtAdmission pins the admission-time half of cost-model shedding:
// with the only worker deterministically occupied, a request whose
// estimate cannot fit its deadline is rejected as *ShedError before it
// ever queues, and both the tenant and aggregate counters record it.
func TestShedAtAdmission(t *testing.T) {
	d, err := NewDispatcher(PolicyFIFO, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go d.Do(context.Background(), "hog", func(context.Context) error {
		close(started)
		<-block
		return nil
	})
	<-started
	defer close(block)

	bud := Budget{Estimate: time.Hour, Deadline: time.Now().Add(50 * time.Millisecond)}
	err = d.DoBudget(context.Background(), "light", bud, func(context.Context) error { return nil })
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("want *ShedError, got %T", err)
	}
	if se.Stale {
		t.Error("admission-time shed marked stale")
	}
	if se.RetryAfter < time.Second {
		t.Errorf("RetryAfter %v below the 1s floor", se.RetryAfter)
	}
	if got := d.Stats().Shed; got != 1 {
		t.Errorf("aggregate Shed = %d, want 1", got)
	}
	if got := d.TenantSnapshot()["light"].Shed; got != 1 {
		t.Errorf("tenant Shed = %d, want 1", got)
	}
}

// TestShedStaleAtDequeue pins the dequeue-time half: a job that was
// admissible when enqueued but whose deadline became unmeetable while it
// aged in queue is dropped by the worker before running, with Stale set.
func TestShedStaleAtDequeue(t *testing.T) {
	d, err := NewDispatcher(PolicyFIFO, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go d.Do(context.Background(), "hog", func(context.Context) error {
		close(started)
		<-block
		return nil
	})
	<-started

	// Admissible now (estimate 20ms, deadline 60ms, empty queue as far as
	// the cost model knows — the blocking job carried no estimate), but
	// doomed by the time the worker frees up.
	bud := Budget{Estimate: 20 * time.Millisecond, Deadline: time.Now().Add(60 * time.Millisecond)}
	errc := make(chan error, 1)
	go func() {
		errc <- d.DoBudget(context.Background(), "light", bud, func(context.Context) error { return nil })
	}()
	time.Sleep(100 * time.Millisecond) // age the queued job past its deadline
	close(block)

	err = <-errc
	var se *ShedError
	if !errors.As(err, &se) || !se.Stale {
		t.Fatalf("want stale *ShedError, got %v", err)
	}
	if got := d.Stats().ShedStale; got != 1 {
		t.Errorf("aggregate ShedStale = %d, want 1", got)
	}
	// The estimate bookkeeping must return to zero once everything drained.
	if wait := d.PredictedWait(); wait != 0 {
		t.Errorf("PredictedWait = %v after drain, want 0", wait)
	}
}

// TestZeroBudgetNeverSheds pins the compatibility contract: without an
// estimate or deadline the dispatcher behaves exactly as before overload
// control — no shedding, regardless of backlog.
func TestZeroBudgetNeverSheds(t *testing.T) {
	d, err := NewDispatcher(PolicyFair, 2, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 10; i++ {
		if err := d.Do(context.Background(), "t", func(context.Context) error { return nil }); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	s := d.Stats()
	if s.Shed != 0 || s.ShedStale != 0 {
		t.Fatalf("zero-budget requests shed: %+v", s)
	}
}

// TestShedHTTPRetryAfter drives the whole path over HTTP: warm the
// estimator past its confidence threshold, then send a request whose
// deadline cannot fit the (now confident) estimate and require 429 with
// code shed_deadline and a Retry-After header. Also pins that 429s from
// the plain queue-full path carry Retry-After now.
func TestShedHTTPRetryAfter(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	sys := nbody.NewUniformSystem(768, 7)

	// Warm-up: enough successful solves of this exact shape for the
	// estimator to trust its EWMA.
	body := solveBody(t, "light", sys, nil)
	for i := 0; i < estConfidentShape+1; i++ {
		resp, data := postSolve(t, hs.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	if ov := srv.readOverload(); ov.EstimatorShapes == 0 {
		t.Fatal("estimator recorded no shapes after warm solves")
	}

	// A 1ms deadline cannot fit any real solve of this shape.
	tight := solveBody(t, "light", sys, func(r *SolveRequest) { r.DeadlineMS = 1 })
	resp, data := postSolve(t, hs.URL, tight)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429 shed, got %d: %s", resp.StatusCode, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "shed_deadline" && er.Code != "shed_stale" {
		t.Errorf("429 code = %q, want shed_*", er.Code)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := metrics.ReadOverload().Shed; got == 0 {
		t.Error("process-wide shed counter not incremented")
	}
	if srv.ReadMetrics().Admission.Shed == 0 {
		t.Error("/v1/metrics admission.shed not incremented")
	}
}

// TestDisableAdmission pins the opt-out: with DisableAdmission the same
// warm-estimator + tight-deadline sequence must never 429 on the shed
// path — the request queues and the deadline surfaces as 504, the
// pre-overload-control behavior the comparison baseline relies on.
func TestDisableAdmission(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, DisableAdmission: true})
	sys := nbody.NewUniformSystem(768, 7)
	body := solveBody(t, "light", sys, nil)
	for i := 0; i < estConfidentShape+1; i++ {
		resp, data := postSolve(t, hs.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	tight := solveBody(t, "light", sys, func(r *SolveRequest) { r.DeadlineMS = 1 })
	resp, data := postSolve(t, hs.URL, tight)
	// A warm plan cache can make even a 1ms deadline satisfiable, so either
	// a 200 (it made it) or a 504 (the context deadline fired mid-queue or
	// mid-solve) is legitimate here. What must never appear is the cost
	// model's 429 shed — that path is what DisableAdmission switches off.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("admission disabled: want 200 or 504, got %d: %s", resp.StatusCode, data)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("admission disabled but request was shed: %s", data)
	}
}

// TestApplyBrownout pins the request-rewrite ladder level by level,
// including the no-op cases (already at the floor, depth at or below the
// optimum) that must pass through untagged.
func TestApplyBrownout(t *testing.T) {
	srv, err := New(Config{Workers: 2, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		level        int
		accuracy     string
		depth        int
		wantAccuracy string
		wantDepth    int
		wantDegraded bool
	}{
		{0, "accurate", 5, "accurate", 5, false},
		{1, "accurate", 5, "balanced", 5, true},
		{1, "balanced", 5, "fast", 5, true},
		{1, "fast", 5, "fast", 5, false},
		{2, "accurate", 5, "fast", 3, true}, // over-deep: re-pinned to optimal
		{2, "fast", 3, "fast", 3, false},    // already at the floor
		{2, "fast", 2, "fast", 2, false},    // shallower than optimal: left alone
	}
	for _, tc := range cases {
		srv.brown = newBrownoutAtLevel(t, tc.level)
		req := &SolveRequest{Accuracy: tc.accuracy, Depth: tc.depth}
		level, degraded := srv.applyBrownout(req, 16384, "uniform", false) // planner depth for 16384/fast = 3
		if degraded != tc.wantDegraded || req.Accuracy != tc.wantAccuracy || req.Depth != tc.wantDepth {
			t.Errorf("level %d %s/depth%d -> %s/depth%d degraded=%v (controller level %d), want %s/depth%d degraded=%v",
				tc.level, tc.accuracy, tc.depth, req.Accuracy, req.Depth, degraded, level,
				tc.wantAccuracy, tc.wantDepth, tc.wantDegraded)
		}
	}
}

// TestBrownoutEndToEnd forces the controller to its max level and checks a
// served request comes back tagged degraded with the browned counter
// bumped — then drops the level and checks full fidelity returns.
func TestBrownoutEndToEnd(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	sys := nbody.NewUniformSystem(512, 3)

	srv.brown = newBrownoutAtLevel(t, 2)
	before := metrics.ReadOverload().Browned
	body := solveBody(t, "t", sys, func(r *SolveRequest) { r.Accuracy = "accurate" })
	resp, data := postSolve(t, hs.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded || sr.BrownoutLevel != 2 {
		t.Fatalf("degraded=%v level=%d, want degraded at level 2", sr.Degraded, sr.BrownoutLevel)
	}
	if got := metrics.ReadOverload().Browned; got <= before {
		t.Error("browned counter did not advance")
	}

	srv.brown = newBrownoutAtLevel(t, 0)
	resp, data = postSolve(t, hs.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	sr = SolveResponse{}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded {
		t.Error("request still degraded after pressure subsided")
	}
}

// TestOverloadedRetryAfterHeader pins the satellite on the pre-existing
// queue-full 429: it now carries Retry-After too.
func TestOverloadedRetryAfterHeader(t *testing.T) {
	srv, err := New(Config{Workers: 2, QueueDepth: 1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{}, 4)
	// Occupy both workers first; only then enqueue the queue-filling job,
	// otherwise it can race the workers' claims into a still-full queue and
	// bounce before the blockade is even up.
	for i := 0; i < 2; i++ {
		go srv.disp.Do(context.Background(), "t", func(context.Context) error {
			started <- struct{}{}
			<-block
			return nil
		})
	}
	<-started
	<-started
	go srv.disp.Do(context.Background(), "t", func(context.Context) error {
		<-block
		return nil
	})
	// Wait until the third job actually holds the one queue slot, so the
	// probe below cannot steal it and block on the occupied workers.
	deadline := time.Now().Add(2 * time.Second)
	for srv.disp.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("third job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	err = srv.disp.Do(context.Background(), "t", func(context.Context) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if got := retryAfterFor(err); got != time.Second {
		t.Errorf("retryAfterFor(queue-full) = %v, want the 1s default", got)
	}
}

// newBrownoutAtLevel builds a controller pinned at the given level via a
// fake clock: sustained over-target observations raise it exactly level
// times, and the clock never advances afterwards so it cannot decay.
func newBrownoutAtLevel(t *testing.T, level int) *resilience.Brownout {
	t.Helper()
	now := time.Unix(1, 0)
	b := resilience.NewBrownout(resilience.BrownoutConfig{
		Target:     10 * time.Millisecond,
		MaxLevel:   2,
		RaiseAfter: time.Millisecond,
		DropAfter:  time.Hour,
		Now:        func() time.Time { return now },
	})
	for b.Level() < level {
		b.Observe(time.Second)
		now = now.Add(2 * time.Millisecond)
		b.Observe(time.Second)
	}
	return b
}
