package serve

import (
	"context"
	"time"

	"nbody/internal/metrics"
	"nbody/internal/plan"
	"nbody/internal/resilience"
)

// This file is the server side of the overload-control design: the brownout
// request rewrite (degrade instead of reject while degradation still buys
// capacity) and the admission budget (shed what degradation cannot save).
// The two compose into the overload ladder: full fidelity -> browned-out
// fidelity -> shed with Retry-After -> queue-bound 429, and the load harness
// (internal/serve/loadgen + cmd/nbodyd -loadtest) measures that the ladder
// beats queue-until-504 on goodput and light-tenant tail latency.

// applyBrownout rewrites req to the brownout controller's current level,
// reporting the level and whether anything actually changed. Level 1 drops
// the accuracy preset one notch (accurate->balanced, balanced->fast); level
// 2 pins accuracy to fast and re-pins an over-deep hierarchy back to the
// planner's depth for the shape — the tuned (measured-best) depth when the
// shape has evidence, the analytic cost-model depth otherwise, so a
// brownout rewrite and an auto-depth resolution can never disagree about
// what "the right depth" is. Depth is only ever lowered toward that
// optimum — FMM cost is U-shaped in depth, so "shallower" is only cheaper
// when the caller pinned a depth beyond it. A request already at the floor
// passes through untagged: the client got exactly what it asked for.
func (s *Server) applyBrownout(req *SolveRequest, n int, dist string, sim bool) (level int, degraded bool) {
	if s.cfg.DisableBrownout {
		return 0, false
	}
	level = s.brown.Level()
	if level <= 0 {
		return 0, false
	}
	switch {
	case level >= 2:
		if req.Accuracy != "fast" {
			req.Accuracy = "fast"
			degraded = true
		}
		if opt := s.planner.DepthFor(plan.ShapeKey{N: n, Dist: dist, Accuracy: req.Accuracy}, req.Supernodes, sim); req.Depth > opt {
			req.Depth = opt
			degraded = true
		}
	default:
		switch req.Accuracy {
		case "accurate":
			req.Accuracy = "balanced"
			degraded = true
		case "balanced":
			req.Accuracy = "fast"
			degraded = true
		}
	}
	return level, degraded
}

// budgetFor builds the admission budget of one request: the estimator's
// prediction for units units of key's work, plus the propagated deadline.
// The zero Budget (shedding disabled for this request) is returned when
// admission is off, the request carries no deadline, or the estimator is
// not yet confident — a cold server must serve, not shed, until its
// calibration is backed by real measurements.
func (s *Server) budgetFor(ctx context.Context, key Key, units int) Budget {
	if s.cfg.DisableAdmission {
		return Budget{}
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return Budget{}
	}
	est, confident := s.est.Estimate(key, units)
	if !confident || est <= 0 {
		return Budget{}
	}
	return Budget{Estimate: est, Deadline: deadline}
}

// observePressure feeds one dequeued request's queue delay to the brownout
// controller — the pressure signal that grows without bound exactly when
// offered load exceeds capacity.
func (s *Server) observePressure(queueWait time.Duration) {
	if !s.cfg.DisableBrownout {
		s.brown.Observe(queueWait)
	}
}

// OverloadMetrics is the overload-control section of /v1/metrics: what the
// admission and brownout layers are doing right now and have done so far.
type OverloadMetrics struct {
	AdmissionEnabled bool `json:"admission_enabled"`
	BrownoutEnabled  bool `json:"brownout_enabled"`
	// Counters are the process-wide overload counters (shared with the
	// cmd/phases-style snapshot table via metrics.CaptureOverload).
	Counters metrics.OverloadStats `json:"counters"`
	// Brownout is the controller snapshot: current level, smoothed
	// pressure, lifetime raises and drops.
	Brownout resilience.BrownoutStats `json:"brownout"`
	// EstimatorShapes / EstimatorScale / EstimatorObs describe the admission
	// estimator: distinct shapes with measured EWMAs, the modeled-to-
	// measured host calibration, and how many observations back it.
	EstimatorShapes int     `json:"estimator_shapes"`
	EstimatorScale  float64 `json:"estimator_scale"`
	EstimatorObs    int64   `json:"estimator_obs"`
}

func (s *Server) readOverload() OverloadMetrics {
	shapes, scale, obs := s.est.Stats()
	return OverloadMetrics{
		AdmissionEnabled: !s.cfg.DisableAdmission,
		BrownoutEnabled:  !s.cfg.DisableBrownout,
		Counters:         metrics.ReadOverload(),
		Brownout:         s.brown.Stats(),
		EstimatorShapes:  shapes,
		EstimatorScale:   scale,
		EstimatorObs:     obs,
	}
}
