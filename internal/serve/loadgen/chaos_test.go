package loadgen

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"nbody/internal/faults"
	"nbody/internal/serve"
)

// TestChaosSoak is the chaos-harness satellite, run under -race in CI on
// both backends: slow-loris and mid-stream-disconnect clients hammer the
// server while every serving-layer fault site is armed with an unlimited
// delay, and an open-loop tenant keeps real arrivals coming. The
// well-behaved tenant must see zero 5xx and zero transport errors — the
// misbehavior is contained, not amplified — and after the run drains the
// goroutine count returns to baseline: no handler, worker, stream, or
// chaos-client goroutine leaks.
func TestChaosSoak(t *testing.T) {
	dur := 2 * time.Second
	if testing.Short() {
		dur = 500 * time.Millisecond
	}

	// Warm-up: process-wide singletons (sched pool, backend dispatch) spin
	// up persistent goroutines on first solve; measure the baseline after.
	warmSrv, err := serve.New(serve.Config{Workers: 2, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	warmHS := httptest.NewServer(warmSrv.Handler())
	if _, err := Run(context.Background(), Config{
		BaseURL:  warmHS.URL,
		Duration: 200 * time.Millisecond,
		Tenants:  []Tenant{{Name: "warm", Concurrency: 1, Shapes: []Shape{{N: 128}}}},
	}); err != nil {
		t.Fatal(err)
	}
	warmHS.Close()
	warmSrv.Close()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	srv, err := serve.New(serve.Config{Workers: 4, QueueDepth: 8, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	// Transport-level chaos on every serving-layer site, held open for the
	// whole window: enqueue, dequeue, and worker each stall on every firing.
	defer faults.Reset()
	for _, site := range serve.Sites {
		faults.InjectDelayEvery(site, 2*time.Millisecond)
	}

	res, err := Run(context.Background(), Config{
		BaseURL:  hs.URL,
		Duration: dur,
		Tenants: []Tenant{
			// The victim whose service level the soak asserts on.
			{Name: "light", Concurrency: 2, Shapes: []Shape{{N: 256}}},
			// Open-loop arrivals keep pressure on regardless of latency.
			{Name: "hog", RateRPS: 40, MaxOutstanding: 16, Shapes: []Shape{{N: 512}}},
			// The misbehaving clients.
			{Name: "chaos-slow", Concurrency: 2, Chaos: ChaosSlowLoris, Shapes: []Shape{{N: 256}}},
			{Name: "chaos-drop", Concurrency: 2, Chaos: ChaosDisconnect, Shapes: []Shape{{N: 256}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	light := res.Tenants["light"]
	if light.OK == 0 {
		t.Errorf("well-behaved tenant served zero requests under chaos: %+v", light)
	}
	if light.Err5xx != 0 || light.OtherErr != 0 {
		t.Errorf("well-behaved tenant saw %d 5xx and %d transport errors under chaos, want 0",
			light.Err5xx, light.OtherErr)
	}
	// The chaos clients must have actually run their attacks, or the soak
	// proves nothing.
	if res.Tenants["chaos-slow"].Sent == 0 || res.Tenants["chaos-drop"].Sent == 0 {
		t.Errorf("chaos clients sent nothing: slow=%+v drop=%+v",
			res.Tenants["chaos-slow"], res.Tenants["chaos-drop"])
	}

	faults.Reset()
	hs.Close()
	srv.Close()

	// Drain check: the goroutine count must return to the post-warm-up
	// baseline (plus slack for runtime/netpoll noise).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after chaos soak: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
