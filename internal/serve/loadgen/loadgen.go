// Package loadgen is the closed-loop load harness for the nbodyd server:
// synthetic tenants, each a set of workers that issue one request, wait
// for the response, think, and repeat — the classical closed-loop model,
// so offered load adapts to server latency instead of building an
// unbounded backlog. Tenants carry a shape mix (several problem sizes in
// rotation), and the harness reports exact client-side percentiles and
// goodput per tenant and overall, plus the server's own plan-cache
// counters, for the admission-policy comparison tables in EXPERIMENTS.md.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"nbody"
	"nbody/internal/serve"
)

// Shape is one problem shape a tenant requests: the plan-cache key from
// the client's point of view.
type Shape struct {
	N          int
	Depth      int    // 0 = server-side auto
	Accuracy   string // "" = fast
	Supernodes bool
}

// Tenant is one synthetic tenant: Concurrency closed-loop workers cycling
// through Shapes with Think pause between requests.
type Tenant struct {
	Name        string
	Concurrency int
	Think       time.Duration
	Shapes      []Shape
	// DeadlineMS is attached to every request when > 0.
	DeadlineMS int64
}

// Config drives one harness run against a live server.
type Config struct {
	BaseURL  string
	Duration time.Duration
	Tenants  []Tenant
	// Seed makes the generated particle systems and shape rotation
	// deterministic (default 1).
	Seed int64
	// Client overrides the HTTP client (default: pooled transport, no
	// client-side timeout — deadlines belong to the request).
	Client *http.Client
}

// Bucket accumulates one scope's (tenant or total) outcome counts and
// latencies.
type Bucket struct {
	Sent      int64
	OK        int64
	Rejected  int64 // 429
	Deadline  int64 // 504
	BadReq    int64 // other 4xx
	Err5xx    int64
	OtherErr  int64 // transport errors, unexpected statuses
	CacheHits int64 // of OK responses

	mu        sync.Mutex
	latencies []time.Duration
}

func (b *Bucket) record(d time.Duration) {
	b.mu.Lock()
	b.latencies = append(b.latencies, d)
	b.mu.Unlock()
}

// Percentiles returns p50/p95/p99/mean/max over the recorded successful
// latencies.
func (b *Bucket) Percentiles() (p50, p95, p99, mean, max time.Duration) {
	b.mu.Lock()
	ls := append([]time.Duration(nil), b.latencies...)
	b.mu.Unlock()
	if len(ls) == 0 {
		return
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	var sum time.Duration
	for _, l := range ls {
		sum += l
	}
	return serve.Percentile(ls, 50), serve.Percentile(ls, 95), serve.Percentile(ls, 99),
		sum / time.Duration(len(ls)), ls[len(ls)-1]
}

// Result is one harness run's outcome.
type Result struct {
	Policy   string // annotated by the caller for comparison tables
	Duration time.Duration
	Total    Bucket
	Tenants  map[string]*Bucket
	// Server holds the server's own /v1/metrics document read at the end
	// of the run (plan-cache hit economics, admission counters).
	Server serve.Metrics
}

// GoodputRPS is successfully served requests per second of wall time.
func (r *Result) GoodputRPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Total.OK) / r.Duration.Seconds()
}

// Run drives the configured tenants against the server until Duration
// elapses (or ctx fires), then reads the server's metrics document.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: at least one tenant required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}

	res := &Result{Duration: cfg.Duration, Tenants: make(map[string]*Bucket)}
	bodies := newBodyCache(cfg.Seed)
	for _, t := range cfg.Tenants {
		res.Tenants[t.Name] = &Bucket{}
		// Pre-build every shape's request body once: workers then reuse
		// the bytes, so the measured latency is queue+solve, not JSON
		// marshaling of the same system over and over.
		for _, sh := range t.Shapes {
			if _, err := bodies.get(t, sh); err != nil {
				return nil, err
			}
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var wg sync.WaitGroup
	for _, t := range cfg.Tenants {
		t := t
		if t.Concurrency < 1 {
			t.Concurrency = 1
		}
		for w := 0; w < t.Concurrency; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919 + int64(len(t.Name))))
				for i := 0; runCtx.Err() == nil; i++ {
					sh := t.Shapes[(worker+i)%len(t.Shapes)]
					body, _ := bodies.get(t, sh)
					oneRequest(runCtx, client, cfg.BaseURL, body, res.Tenants[t.Name], &res.Total)
					if t.Think > 0 {
						jitter := time.Duration(rng.Int63n(int64(t.Think)/2 + 1))
						select {
						case <-runCtx.Done():
						case <-time.After(t.Think + jitter):
						}
					}
				}
			}(w)
		}
	}
	wg.Wait()
	client.CloseIdleConnections()

	// The run is over; fetch the server's own accounting.
	mresp, err := http.Get(strings.TrimRight(cfg.BaseURL, "/") + "/v1/metrics")
	if err == nil {
		_ = json.NewDecoder(mresp.Body).Decode(&res.Server)
		mresp.Body.Close()
	}
	return res, nil
}

// oneRequest issues one solve and accounts it in both buckets.
func oneRequest(ctx context.Context, client *http.Client, base string, body []byte, buckets ...*Bucket) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		for _, b := range buckets {
			b.OtherErr++
		}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start)
	for _, b := range buckets {
		b.Sent++
	}
	if err != nil {
		// A request cut off by the run deadline is not a server failure.
		if ctx.Err() == nil {
			for _, b := range buckets {
				b.OtherErr++
			}
		}
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var sr serve.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			for _, b := range buckets {
				b.OtherErr++
			}
			return
		}
		for _, b := range buckets {
			b.OK++
			if sr.CacheHit {
				b.CacheHits++
			}
			b.record(elapsed)
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		for _, b := range buckets {
			b.Rejected++
		}
	case resp.StatusCode == http.StatusGatewayTimeout:
		io.Copy(io.Discard, resp.Body)
		for _, b := range buckets {
			b.Deadline++
		}
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		for _, b := range buckets {
			b.Err5xx++
		}
	case resp.StatusCode >= 400:
		io.Copy(io.Discard, resp.Body)
		for _, b := range buckets {
			b.BadReq++
		}
	default:
		io.Copy(io.Discard, resp.Body)
		for _, b := range buckets {
			b.OtherErr++
		}
	}
}

// bodyCache builds and memoizes one marshaled request body per
// (tenant, shape): the same deterministic particle system every time, so
// equal shapes across tenants still map to distinct tenants' queues but
// identical solver work, and repeated requests are bitwise-identical
// (the plan-reuse reproducibility contract the tests pin).
type bodyCache struct {
	seed int64
	mu   sync.Mutex
	m    map[string][]byte
}

func newBodyCache(seed int64) *bodyCache {
	return &bodyCache{seed: seed, m: make(map[string][]byte)}
}

func (c *bodyCache) get(t Tenant, sh Shape) ([]byte, error) {
	key := fmt.Sprintf("%s/%d/%d/%s/%v/%d", t.Name, sh.N, sh.Depth, sh.Accuracy, sh.Supernodes, t.DeadlineMS)
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.m[key]; ok {
		return b, nil
	}
	if sh.N < 1 {
		return nil, fmt.Errorf("loadgen: shape with N=%d", sh.N)
	}
	sys := nbody.NewUniformSystem(sh.N, c.seed)
	req := serve.SolveRequest{
		Tenant:     t.Name,
		Positions:  make([][3]float64, sh.N),
		Charges:    sys.Charges,
		Accuracy:   sh.Accuracy,
		Depth:      sh.Depth,
		Supernodes: sh.Supernodes,
		DeadlineMS: t.DeadlineMS,
	}
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.m[key] = b
	return b, nil
}

// TableHeader and TableRow render the markdown comparison table the
// experiments record.
func TableHeader() string {
	return "| policy | sent | ok | 429 | 504 | 5xx | p50 ms | p95 ms | p99 ms | goodput req/s | cache hit % |\n" +
		"|---|---|---|---|---|---|---|---|---|---|---|"
}

// TableRow renders one run as a markdown table row.
func (r *Result) TableRow() string {
	p50, p95, p99, _, _ := r.Total.Percentiles()
	hitPct := 0.0
	if r.Total.OK > 0 {
		hitPct = 100 * float64(r.Total.CacheHits) / float64(r.Total.OK)
	}
	return fmt.Sprintf("| %s | %d | %d | %d | %d | %d | %.1f | %.1f | %.1f | %.1f | %.1f |",
		r.Policy, r.Total.Sent, r.Total.OK, r.Total.Rejected, r.Total.Deadline, r.Total.Err5xx,
		msF(p50), msF(p95), msF(p99), r.GoodputRPS(), hitPct)
}

// Summary renders the per-tenant breakdown plus the plan-cache economics.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s duration=%s goodput=%.1f req/s\n", r.Policy, r.Duration, r.GoodputRPS())
	names := make([]string, 0, len(r.Tenants))
	for name := range r.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tb := r.Tenants[name]
		p50, p95, p99, _, _ := tb.Percentiles()
		fmt.Fprintf(&b, "  tenant %-10s sent=%-5d ok=%-5d 429=%-4d 504=%-3d 5xx=%-3d p50=%.1fms p95=%.1fms p99=%.1fms\n",
			name, tb.Sent, tb.OK, tb.Rejected, tb.Deadline, tb.Err5xx, msF(p50), msF(p95), msF(p99))
	}
	pc := r.Server.PlanCache
	if pc.Hits+pc.Misses > 0 {
		coldMS, warmUS := 0.0, 0.0
		if pc.Misses > 0 {
			coldMS = float64(pc.BuildNS) / float64(pc.Misses) / 1e6
		}
		if pc.Hits > 0 {
			warmUS = float64(pc.HitNS) / float64(pc.Hits) / 1e3
		}
		fmt.Fprintf(&b, "  plan cache: %d hits, %d misses, %d evictions; cold build %.2f ms avg, warm acquire %.1f us avg\n",
			pc.Hits, pc.Misses, pc.Evictions, coldMS, warmUS)
	}
	return b.String()
}

func msF(d time.Duration) float64 { return float64(d) / 1e6 }
