// Package loadgen is the load harness for the nbodyd server. Two arrival
// models are supported per tenant:
//
//   - closed loop (the default): Concurrency workers each issue one
//     request, wait for the response, think, and repeat — offered load
//     adapts to server latency, which measures steady-state economics but
//     can never overload the server (the classical closed-loop blind spot).
//   - open loop (RateRPS > 0): arrivals fire from a fixed-rate clock no
//     matter how slow responses are, bounded only by MaxOutstanding
//     in-flight requests — the model that actually generates overload, and
//     the one the admission/brownout comparison needs.
//
// Tenants carry a shape mix (several problem sizes in rotation) and
// optionally a chaos mode (slow-loris request bodies, mid-stream
// disconnects) for the fault-injection soak. The harness reports exact
// client-side percentiles and goodput per tenant and overall — including
// shed/degraded/late counts — plus the server's own metrics document, for
// the comparison tables in EXPERIMENTS.md.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nbody"
	"nbody/internal/serve"
)

// debugf prints per-request failure detail when LOADGEN_DEBUG is set —
// the harness normally only counts errors, which is the right default for
// chaos runs (whose tenants fail on purpose) but useless when a fleet test
// needs to know what the one unexpected error actually was.
func debugf(format string, args ...any) {
	if os.Getenv("LOADGEN_DEBUG") == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
}

// Shape is one problem shape a tenant requests: the plan-cache key from
// the client's point of view.
type Shape struct {
	N          int
	Depth      int    // 0 = server-side auto
	Accuracy   string // "" = fast
	Supernodes bool
}

// Chaos modes a tenant can run instead of well-formed traffic.
const (
	// ChaosSlowLoris dribbles each request body out a few bytes at a time,
	// holding the server's decode path open — the classic slow-client
	// attack on anything that reads before admitting.
	ChaosSlowLoris = "slowloris"
	// ChaosDisconnect starts a /v1/simulate NDJSON stream and hangs up
	// after the first frame, exercising mid-stream client-abort handling.
	ChaosDisconnect = "disconnect"
)

// Tenant is one synthetic tenant. Concurrency closed-loop workers cycle
// through Shapes with Think pause between requests; RateRPS > 0 switches
// the tenant to open-loop arrivals at that rate instead.
type Tenant struct {
	Name        string
	Concurrency int
	Think       time.Duration
	Shapes      []Shape
	// DeadlineMS is attached to every request when > 0.
	DeadlineMS int64
	// RateRPS selects open-loop arrivals at this rate (requests/second);
	// 0 keeps the closed loop.
	RateRPS float64
	// MaxOutstanding bounds open-loop in-flight requests (default 256);
	// arrivals past the bound are counted Dropped, not sent — a client
	// that gives up, which is what a real open population does.
	MaxOutstanding int
	// Chaos, when set, replaces well-formed traffic with the named chaos
	// mode (ChaosSlowLoris | ChaosDisconnect).
	Chaos string
	// Sim switches the tenant from solves to /v1/simulate NDJSON streams
	// with the given integration profile (closed loop only).
	Sim *SimProfile
}

// SimProfile is the integration a stream tenant requests.
type SimProfile struct {
	Steps           int
	DT              float64
	StreamEvery     int
	CheckpointEvery int
}

// Config drives one harness run against a live server.
type Config struct {
	BaseURL  string
	Duration time.Duration
	Tenants  []Tenant
	// Seed makes the generated particle systems and shape rotation
	// deterministic (default 1).
	Seed int64
	// Client overrides the HTTP client (default: pooled transport, no
	// client-side timeout — deadlines belong to the request).
	Client *http.Client
	// Kill, with KillEvery > 0, is the replica-kill chaos driver: the
	// harness calls it every KillEvery for the whole run (the fleet test
	// passes a func that SIGKILLs or severs a random replica). The gates
	// then assert the kills stayed invisible: zero 5xx on well-behaved
	// traffic, zero lost streams.
	Kill      func()
	KillEvery time.Duration
	// OnFinalFrame, when set, receives every stream tenant's final frame
	// (the full particle state) — the hook the chaos acceptance uses to
	// compare killed-and-resumed streams bitwise against an uninterrupted
	// reference run.
	OnFinalFrame func(tenant string, sh Shape, frame *serve.Frame)
}

// Bucket accumulates one scope's (tenant or total) outcome counts and
// latencies. Counters are updated atomically: many workers share a bucket.
type Bucket struct {
	Sent      int64
	OK        int64
	Rejected  int64 // all 429
	Shed      int64 // the cost-model subset of 429 (code shed_*)
	Deadline  int64 // 504
	BadReq    int64 // other 4xx
	Err5xx    int64
	OtherErr  int64 // transport errors, unexpected statuses
	CacheHits int64 // of OK responses
	Degraded  int64 // OK responses served browned-out
	LateOK    int64 // OK responses whose queue+solve exceeded their deadline
	Dropped   int64 // open-loop arrivals skipped at MaxOutstanding

	Streams     int64 // simulate streams completed with a final frame
	StreamsLost int64 // simulate streams that ended without one

	mu        sync.Mutex
	latencies []time.Duration
}

func (b *Bucket) record(d time.Duration) {
	b.mu.Lock()
	b.latencies = append(b.latencies, d)
	b.mu.Unlock()
}

func bump(field func(*Bucket) *int64, buckets []*Bucket) {
	for _, b := range buckets {
		atomic.AddInt64(field(b), 1)
	}
}

// Percentiles returns p50/p95/p99/mean/max over the recorded successful
// latencies.
func (b *Bucket) Percentiles() (p50, p95, p99, mean, max time.Duration) {
	b.mu.Lock()
	ls := append([]time.Duration(nil), b.latencies...)
	b.mu.Unlock()
	if len(ls) == 0 {
		return
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	var sum time.Duration
	for _, l := range ls {
		sum += l
	}
	return serve.Percentile(ls, 50), serve.Percentile(ls, 95), serve.Percentile(ls, 99),
		sum / time.Duration(len(ls)), ls[len(ls)-1]
}

// Result is one harness run's outcome.
type Result struct {
	Policy   string // annotated by the caller for comparison tables
	Duration time.Duration
	Total    Bucket
	Tenants  map[string]*Bucket
	// Server holds the server's own /v1/metrics document read at the end
	// of the run (plan-cache hit economics, admission counters).
	Server serve.Metrics
}

// GoodputRPS is successfully served requests per second of wall time.
func (r *Result) GoodputRPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Total.OK) / r.Duration.Seconds()
}

// Run drives the configured tenants against the server until Duration
// elapses (or ctx fires), then reads the server's metrics document.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: at least one tenant required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}

	res := &Result{Duration: cfg.Duration, Tenants: make(map[string]*Bucket)}
	bodies := newBodyCache(cfg.Seed)
	for _, t := range cfg.Tenants {
		res.Tenants[t.Name] = &Bucket{}
		// Pre-build every shape's request body once: workers then reuse
		// the bytes, so the measured latency is queue+solve, not JSON
		// marshaling of the same system over and over.
		for _, sh := range t.Shapes {
			if _, err := bodies.get(t, sh); err != nil {
				return nil, err
			}
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var wg sync.WaitGroup
	if cfg.Kill != nil && cfg.KillEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(cfg.KillEvery)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					cfg.Kill()
				}
			}
		}()
	}
	for _, t := range cfg.Tenants {
		t := t
		tb := res.Tenants[t.Name]
		switch {
		case t.Sim != nil:
			conc := t.Concurrency
			if conc < 1 {
				conc = 1
			}
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					simLoop(runCtx, client, cfg, t, worker, bodies, tb, &res.Total)
				}(w)
			}
		case t.Chaos != "":
			conc := t.Concurrency
			if conc < 1 {
				conc = 1
			}
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					chaosLoop(runCtx, client, cfg, t, worker, bodies, tb, &res.Total)
				}(w)
			}
		case t.RateRPS > 0:
			wg.Add(1)
			go func() {
				defer wg.Done()
				openLoop(runCtx, client, cfg, t, bodies, tb, &res.Total)
			}()
		default:
			if t.Concurrency < 1 {
				t.Concurrency = 1
			}
			for w := 0; w < t.Concurrency; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					closedLoop(runCtx, client, cfg, t, worker, bodies, tb, &res.Total)
				}(w)
			}
		}
	}
	wg.Wait()
	client.CloseIdleConnections()

	// The run is over; fetch the server's own accounting.
	mresp, err := http.Get(strings.TrimRight(cfg.BaseURL, "/") + "/v1/metrics")
	if err == nil {
		_ = json.NewDecoder(mresp.Body).Decode(&res.Server)
		mresp.Body.Close()
	}
	return res, nil
}

// closedLoop is one classical closed-loop worker: request, wait, think.
func closedLoop(runCtx context.Context, client *http.Client, cfg Config, t Tenant, worker int, bodies *bodyCache, tb, total *Bucket) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919 + int64(len(t.Name))))
	for i := 0; runCtx.Err() == nil; i++ {
		sh := t.Shapes[(worker+i)%len(t.Shapes)]
		body, _ := bodies.get(t, sh)
		oneRequest(runCtx, client, cfg.BaseURL, body, t.DeadlineMS, tb, total)
		if t.Think > 0 {
			jitter := time.Duration(rng.Int63n(int64(t.Think)/2 + 1))
			select {
			case <-runCtx.Done():
			case <-time.After(t.Think + jitter):
			}
		}
	}
}

// openLoop fires arrivals from a fixed-rate clock regardless of response
// latency: the arrival model under which offered load can actually exceed
// capacity, which is what the overload-control comparison has to measure.
// Up to MaxOutstanding requests run concurrently; arrivals past the bound
// are dropped (and counted), modeling clients that give up rather than an
// unbounded client-side queue that would just move the backlog problem.
func openLoop(runCtx context.Context, client *http.Client, cfg Config, t Tenant, bodies *bodyCache, tb, total *Bucket) {
	maxOut := t.MaxOutstanding
	if maxOut < 1 {
		maxOut = 256
	}
	interval := time.Duration(float64(time.Second) / t.RateRPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	sem := make(chan struct{}, maxOut)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var inner sync.WaitGroup
	defer inner.Wait()
	for i := 0; ; i++ {
		select {
		case <-runCtx.Done():
			return
		case <-ticker.C:
		}
		sh := t.Shapes[i%len(t.Shapes)]
		body, _ := bodies.get(t, sh)
		select {
		case sem <- struct{}{}:
			inner.Add(1)
			go func() {
				defer inner.Done()
				defer func() { <-sem }()
				oneRequest(runCtx, client, cfg.BaseURL, body, t.DeadlineMS, tb, total)
			}()
		default:
			bump(func(b *Bucket) *int64 { return &b.Dropped }, []*Bucket{tb, total})
		}
	}
}

// chaosLoop drives one misbehaving client in the tenant's chaos mode.
func chaosLoop(runCtx context.Context, client *http.Client, cfg Config, t Tenant, worker int, bodies *bodyCache, tb, total *Bucket) {
	for i := 0; runCtx.Err() == nil; i++ {
		sh := t.Shapes[(worker+i)%len(t.Shapes)]
		switch t.Chaos {
		case ChaosDisconnect:
			body, err := bodies.getSim(t, sh)
			if err != nil {
				return
			}
			disconnectRequest(runCtx, client, cfg.BaseURL, body, tb, total)
		default: // ChaosSlowLoris
			body, _ := bodies.get(t, sh)
			slowLorisRequest(runCtx, client, cfg.BaseURL, body, tb, total)
		}
		if t.Think > 0 {
			select {
			case <-runCtx.Done():
			case <-time.After(t.Think):
			}
		}
	}
}

// simLoop is the closed-loop worker for a stream tenant: one /v1/simulate
// stream at a time, read to the end. A stream that delivers its final
// frame counts as Streams (and OK); one that ends early — transport error,
// interrupted frame with nobody to resume it, truncation — counts as
// StreamsLost, the number the kill-loop chaos gate pins at zero behind the
// gateway.
func simLoop(runCtx context.Context, client *http.Client, cfg Config, t Tenant, worker int, bodies *bodyCache, tb, total *Bucket) {
	buckets := []*Bucket{tb, total}
	for i := 0; runCtx.Err() == nil; i++ {
		sh := t.Shapes[(worker+i)%len(t.Shapes)]
		body, err := bodies.getSim(t, sh)
		if err != nil {
			return
		}
		req, err := http.NewRequestWithContext(runCtx, http.MethodPost,
			strings.TrimRight(cfg.BaseURL, "/")+"/v1/simulate", bytes.NewReader(body))
		if err != nil {
			bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		bump(func(b *Bucket) *int64 { return &b.Sent }, buckets)
		resp, err := client.Do(req)
		if err != nil {
			if runCtx.Err() == nil {
				bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
				bump(func(b *Bucket) *int64 { return &b.StreamsLost }, buckets)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				bump(func(b *Bucket) *int64 { return &b.Rejected }, buckets)
			case resp.StatusCode >= 500:
				bump(func(b *Bucket) *int64 { return &b.Err5xx }, buckets)
			default:
				bump(func(b *Bucket) *int64 { return &b.BadReq }, buckets)
			}
			continue
		}
		var last *serve.Frame
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		torn := false
		for sc.Scan() {
			var f serve.Frame
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				torn = true
				break
			}
			last = &f
		}
		scanErr := sc.Err()
		resp.Body.Close()
		if torn || scanErr != nil || last == nil || !last.Final {
			if runCtx.Err() == nil {
				bump(func(b *Bucket) *int64 { return &b.StreamsLost }, buckets)
			}
			continue
		}
		bump(func(b *Bucket) *int64 { return &b.OK }, buckets)
		bump(func(b *Bucket) *int64 { return &b.Streams }, buckets)
		for _, b := range buckets {
			b.record(time.Since(start))
		}
		if cfg.OnFinalFrame != nil {
			cfg.OnFinalFrame(t.Name, sh, last)
		}
		if t.Think > 0 {
			select {
			case <-runCtx.Done():
			case <-time.After(t.Think):
			}
		}
	}
}

// oneRequest issues one solve and accounts it in both buckets.
func oneRequest(ctx context.Context, client *http.Client, base string, body []byte, deadlineMS int64, buckets ...*Bucket) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start)
	bump(func(b *Bucket) *int64 { return &b.Sent }, buckets)
	if err != nil {
		// A request cut off by the run deadline is not a server failure.
		if ctx.Err() == nil {
			debugf("solve transport error: %v", err)
			bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
		}
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var sr serve.SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			// The run deadline can fire mid-body just as it can mid-dial:
			// neither is a server failure.
			if ctx.Err() == nil {
				debugf("solve 200 body decode error: %v", err)
				bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
			}
			return
		}
		bump(func(b *Bucket) *int64 { return &b.OK }, buckets)
		if sr.CacheHit {
			bump(func(b *Bucket) *int64 { return &b.CacheHits }, buckets)
		}
		if sr.Degraded {
			bump(func(b *Bucket) *int64 { return &b.Degraded }, buckets)
		}
		if deadlineMS > 0 && sr.QueueNS+sr.SolveNS > deadlineMS*int64(time.Millisecond) {
			bump(func(b *Bucket) *int64 { return &b.LateOK }, buckets)
		}
		for _, b := range buckets {
			b.record(elapsed)
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		var er serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		io.Copy(io.Discard, resp.Body)
		bump(func(b *Bucket) *int64 { return &b.Rejected }, buckets)
		if strings.HasPrefix(er.Code, "shed") {
			bump(func(b *Bucket) *int64 { return &b.Shed }, buckets)
		}
	case resp.StatusCode == http.StatusGatewayTimeout:
		io.Copy(io.Discard, resp.Body)
		bump(func(b *Bucket) *int64 { return &b.Deadline }, buckets)
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		bump(func(b *Bucket) *int64 { return &b.Err5xx }, buckets)
	case resp.StatusCode >= 400:
		io.Copy(io.Discard, resp.Body)
		bump(func(b *Bucket) *int64 { return &b.BadReq }, buckets)
	default:
		io.Copy(io.Discard, resp.Body)
		bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
	}
}

// slowLorisRequest dribbles the request body out ~64 chunks with a pause
// between each: the server's decode path sees a connection that is alive
// but barely sending. Whatever status comes back is accounted; the point
// of the mode is what it does to everyone else's latency.
func slowLorisRequest(ctx context.Context, client *http.Client, base string, body []byte, buckets ...*Bucket) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/solve", pr)
	if err != nil {
		bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	chunk := len(body)/64 + 1
	go func() {
		for off := 0; off < len(body); off += chunk {
			end := off + chunk
			if end > len(body) {
				end = len(body)
			}
			if _, err := pw.Write(body[off:end]); err != nil {
				return
			}
			select {
			case <-ctx.Done():
				pw.CloseWithError(ctx.Err())
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		pw.Close()
	}()
	bump(func(b *Bucket) *int64 { return &b.Sent }, buckets)
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
		}
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		bump(func(b *Bucket) *int64 { return &b.OK }, buckets)
	case resp.StatusCode == http.StatusTooManyRequests:
		bump(func(b *Bucket) *int64 { return &b.Rejected }, buckets)
	case resp.StatusCode >= 500:
		bump(func(b *Bucket) *int64 { return &b.Err5xx }, buckets)
	default:
		bump(func(b *Bucket) *int64 { return &b.BadReq }, buckets)
	}
}

// disconnectRequest starts an NDJSON simulate stream and hangs up after the
// first frame line: the mid-stream client abort every streaming endpoint
// must absorb without leaking the worker or the plan checkout.
func disconnectRequest(ctx context.Context, client *http.Client, base string, body []byte, buckets ...*Bucket) {
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	bump(func(b *Bucket) *int64 { return &b.Sent }, buckets)
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			bump(func(b *Bucket) *int64 { return &b.OtherErr }, buckets)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			bump(func(b *Bucket) *int64 { return &b.Rejected }, buckets)
		case resp.StatusCode >= 500:
			bump(func(b *Bucket) *int64 { return &b.Err5xx }, buckets)
		default:
			bump(func(b *Bucket) *int64 { return &b.BadReq }, buckets)
		}
		return
	}
	// Read exactly one frame, then hang up mid-stream.
	br := bufio.NewReader(resp.Body)
	_, _ = br.ReadString('\n')
	cancel()
	bump(func(b *Bucket) *int64 { return &b.OK }, buckets)
}

// bodyCache builds and memoizes one marshaled request body per
// (tenant, shape): the same deterministic particle system every time, so
// equal shapes across tenants still map to distinct tenants' queues but
// identical solver work, and repeated requests are bitwise-identical
// (the plan-reuse reproducibility contract the tests pin).
type bodyCache struct {
	seed int64
	mu   sync.Mutex
	m    map[string][]byte
}

func newBodyCache(seed int64) *bodyCache {
	return &bodyCache{seed: seed, m: make(map[string][]byte)}
}

func (c *bodyCache) solveRequest(t Tenant, sh Shape) (serve.SolveRequest, error) {
	if sh.N < 1 {
		return serve.SolveRequest{}, fmt.Errorf("loadgen: shape with N=%d", sh.N)
	}
	sys := nbody.NewUniformSystem(sh.N, c.seed)
	req := serve.SolveRequest{
		Tenant:     t.Name,
		Positions:  make([][3]float64, sh.N),
		Charges:    sys.Charges,
		Accuracy:   sh.Accuracy,
		Depth:      sh.Depth,
		Supernodes: sh.Supernodes,
		DeadlineMS: t.DeadlineMS,
	}
	for i, p := range sys.Positions {
		req.Positions[i] = [3]float64{p.X, p.Y, p.Z}
	}
	return req, nil
}

func (c *bodyCache) get(t Tenant, sh Shape) ([]byte, error) {
	key := fmt.Sprintf("%s/%d/%d/%s/%v/%d", t.Name, sh.N, sh.Depth, sh.Accuracy, sh.Supernodes, t.DeadlineMS)
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.m[key]; ok {
		return b, nil
	}
	req, err := c.solveRequest(t, sh)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.m[key] = b
	return b, nil
}

// getSim is get for the streaming endpoint: the same shape wrapped in the
// tenant's integration profile (or a short default one, what the
// disconnect chaos mode aborts).
func (c *bodyCache) getSim(t Tenant, sh Shape) ([]byte, error) {
	prof := SimProfile{Steps: 8, DT: 1e-4, StreamEvery: 1}
	if t.Sim != nil {
		prof = *t.Sim
	}
	if prof.Steps < 1 {
		prof.Steps = 8
	}
	if !(prof.DT > 0) {
		prof.DT = 1e-4
	}
	key := fmt.Sprintf("sim/%s/%d/%d/%s/%v/%d/%d/%g/%d/%d", t.Name, sh.N, sh.Depth, sh.Accuracy, sh.Supernodes,
		t.DeadlineMS, prof.Steps, prof.DT, prof.StreamEvery, prof.CheckpointEvery)
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.m[key]; ok {
		return b, nil
	}
	solve, err := c.solveRequest(t, sh)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(serve.SimulateRequest{
		SolveRequest:    solve,
		Steps:           prof.Steps,
		DT:              prof.DT,
		StreamEvery:     prof.StreamEvery,
		CheckpointEvery: prof.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	c.m[key] = b
	return b, nil
}

// TableHeader and TableRow render the markdown comparison table the
// experiments record.
func TableHeader() string {
	return "| run | sent | ok | shed | 429 | 504 | 5xx | degraded | late | p50 ms | p95 ms | p99 ms | goodput req/s | cache hit % |\n" +
		"|---|---|---|---|---|---|---|---|---|---|---|---|---|---|"
}

// TableRow renders one run as a markdown table row.
func (r *Result) TableRow() string {
	p50, p95, p99, _, _ := r.Total.Percentiles()
	hitPct := 0.0
	if r.Total.OK > 0 {
		hitPct = 100 * float64(r.Total.CacheHits) / float64(r.Total.OK)
	}
	return fmt.Sprintf("| %s | %d | %d | %d | %d | %d | %d | %d | %d | %.1f | %.1f | %.1f | %.1f | %.1f |",
		r.Policy, r.Total.Sent, r.Total.OK, r.Total.Shed, r.Total.Rejected, r.Total.Deadline, r.Total.Err5xx,
		r.Total.Degraded, r.Total.LateOK,
		msF(p50), msF(p95), msF(p99), r.GoodputRPS(), hitPct)
}

// Summary renders the per-tenant breakdown plus the plan-cache economics.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run=%s duration=%s goodput=%.1f req/s\n", r.Policy, r.Duration, r.GoodputRPS())
	names := make([]string, 0, len(r.Tenants))
	for name := range r.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tb := r.Tenants[name]
		p50, p95, p99, _, _ := tb.Percentiles()
		fmt.Fprintf(&b, "  tenant %-10s sent=%-5d ok=%-5d shed=%-4d 429=%-4d 504=%-3d 5xx=%-3d degr=%-4d late=%-3d drop=%-4d p50=%.1fms p95=%.1fms p99=%.1fms\n",
			name, tb.Sent, tb.OK, tb.Shed, tb.Rejected, tb.Deadline, tb.Err5xx, tb.Degraded, tb.LateOK, tb.Dropped,
			msF(p50), msF(p95), msF(p99))
		if tb.Streams+tb.StreamsLost > 0 {
			fmt.Fprintf(&b, "    streams: %d complete, %d lost\n", tb.Streams, tb.StreamsLost)
		}
	}
	pc := r.Server.PlanCache
	if pc.Hits+pc.Misses > 0 {
		coldMS, warmUS := 0.0, 0.0
		if pc.Misses > 0 {
			coldMS = float64(pc.BuildNS) / float64(pc.Misses) / 1e6
		}
		if pc.Hits > 0 {
			warmUS = float64(pc.HitNS) / float64(pc.Hits) / 1e3
		}
		fmt.Fprintf(&b, "  plan cache: %d hits, %d misses, %d evictions; cold build %.2f ms avg, warm acquire %.1f us avg\n",
			pc.Hits, pc.Misses, pc.Evictions, coldMS, warmUS)
	}
	ov := r.Server.Overload
	if c := ov.Counters; c.Shed+c.ShedStale+c.Browned+c.BrownoutRaises > 0 {
		fmt.Fprintf(&b, "  overload: %d shed, %d stale drops, %d browned (level %d now, %d raises/%d drops), backlog %.1fms\n",
			c.Shed, c.ShedStale, c.Browned, ov.Brownout.Level, ov.Brownout.Raises, ov.Brownout.Drops,
			r.Server.Admission.BacklogMS)
	}
	return b.String()
}

func msF(d time.Duration) float64 { return float64(d) / 1e6 }
