package serve

import (
	"context"
	"fmt"
	"sync"
)

// Policy selects how workers pick the next admitted request.
type Policy string

const (
	// PolicyFIFO serves strict global arrival order with no per-tenant
	// concurrency cap: simple and fast for cooperative tenants, but one
	// flooding tenant monopolizes the workers (its queue bound is the only
	// brake). The baseline policy of the load-test comparison.
	PolicyFIFO Policy = "fifo"
	// PolicyFair round-robins across tenants with queued work and caps the
	// per-tenant in-flight count, so no tenant starves another: a flooding
	// tenant is throttled to its share and its excess is bounced at
	// admission instead of aging in front of everyone else's work.
	PolicyFair Policy = "fair"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyFIFO, PolicyFair:
		return Policy(s), nil
	}
	return "", fmt.Errorf("unknown admission policy %q (fifo | fair)", s)
}

// job is one admitted request waiting for a worker.
type job struct {
	tq   *tenantQ
	ctx  context.Context
	fn   func(context.Context) error
	err  error
	done chan struct{}
	seq  uint64
}

// tenantQ is one tenant's FIFO queue plus its in-flight count.
type tenantQ struct {
	name     string
	jobs     []*job
	inflight int
}

// TenantStats are one tenant's admission counters (persist after the
// tenant's queue drains).
type TenantStats struct {
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"` // withdrawn while queued
}

// DispatchStats aggregate the dispatcher's admission counters.
type DispatchStats struct {
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Queued    int   `json:"queued"`
	InFlight  int   `json:"in_flight"`
}

// Dispatcher owns the worker fleet and the per-tenant queues. Admission is
// bounded: a tenant whose queue is at depth gets ErrOverloaded immediately
// (the HTTP 429 path) rather than unbounded buffering. Do blocks the
// calling handler until the request ran or its context fired; a request
// whose context fires while still queued is withdrawn without running.
type Dispatcher struct {
	policy      Policy
	depth       int // per-tenant queue bound
	inflightCap int // per-tenant concurrent solves (fair policy)

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQ
	rr      []string // round-robin order over tenants with state
	rrIdx   int
	seq     uint64
	queued  int
	closed  bool
	wg      sync.WaitGroup

	stats       DispatchStats
	tenantStats map[string]*TenantStats
	inFlight    int
}

// NewDispatcher starts workers goroutines serving per-tenant queues of the
// given depth under the given policy. inflightCap bounds one tenant's
// concurrent solves under PolicyFair (ignored by PolicyFIFO; < 1 means no
// cap).
func NewDispatcher(policy Policy, workers, depth, inflightCap int) (*Dispatcher, error) {
	if _, err := ParsePolicy(string(policy)); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("serve: need at least one worker, got %d", workers)
	}
	if depth < 1 {
		return nil, fmt.Errorf("serve: queue depth must be >= 1, got %d", depth)
	}
	d := &Dispatcher{
		policy:      policy,
		depth:       depth,
		inflightCap: inflightCap,
		tenants:     make(map[string]*tenantQ),
		tenantStats: make(map[string]*TenantStats),
	}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d, nil
}

// Do admits fn for tenant and blocks until it ran (returning its error),
// the queue rejected it (ErrOverloaded / ErrServerClosed), or ctx fired
// while it was still queued (returning ctx.Err()). Once fn starts, Do
// waits for it: fn receives ctx, so cancellation reaches a running solve
// through the solver's own ctx checks.
func (d *Dispatcher) Do(ctx context.Context, tenant string, fn func(context.Context) error) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrServerClosed
	}
	ts := d.statsFor(tenant)
	tq := d.tenants[tenant]
	if tq == nil {
		tq = &tenantQ{name: tenant}
		d.tenants[tenant] = tq
		d.rr = append(d.rr, tenant)
	}
	if len(tq.jobs) >= d.depth {
		ts.Rejected++
		d.stats.Rejected++
		d.mu.Unlock()
		return fmt.Errorf("%w: tenant %q at depth %d", ErrOverloaded, tenant, d.depth)
	}
	d.seq++
	j := &job{tq: tq, ctx: ctx, fn: fn, done: make(chan struct{}), seq: d.seq}
	tq.jobs = append(tq.jobs, j)
	d.queued++
	ts.Admitted++
	d.stats.Admitted++
	d.cond.Signal()
	d.mu.Unlock()

	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		if d.withdraw(j) {
			return ctx.Err()
		}
		// Already running (or finished): the solve sees ctx itself.
		<-j.done
		return j.err
	}
}

// withdraw removes a still-queued job, reporting whether it succeeded (a
// job already claimed by a worker cannot be withdrawn).
func (d *Dispatcher) withdraw(j *job) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, q := range j.tq.jobs {
		if q == j {
			j.tq.jobs = append(j.tq.jobs[:i:i], j.tq.jobs[i+1:]...)
			d.queued--
			d.statsFor(j.tq.name).Canceled++
			d.stats.Canceled++
			d.maybeReap(j.tq)
			return true
		}
	}
	return false
}

// worker is one member of the fleet: claim the next runnable job under the
// policy, run it unlocked, account completion, repeat until Close.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	d.mu.Lock()
	for {
		j := d.next()
		if j == nil {
			if d.closed {
				d.mu.Unlock()
				return
			}
			d.cond.Wait()
			continue
		}
		d.inFlight++
		d.mu.Unlock()

		if err := j.ctx.Err(); err != nil {
			j.err = err
		} else {
			j.err = j.fn(j.ctx)
		}
		close(j.done)

		d.mu.Lock()
		d.inFlight--
		j.tq.inflight--
		d.statsFor(j.tq.name).Completed++
		d.stats.Completed++
		d.maybeReap(j.tq)
		// A finished solve may unblock a fair-policy tenant that was at
		// its in-flight cap.
		d.cond.Signal()
	}
}

// next picks the next runnable job under the policy, or nil. Called with
// the lock held; claims the job (removes it from its queue, increments the
// tenant's in-flight count).
func (d *Dispatcher) next() *job {
	if d.queued == 0 {
		return nil
	}
	switch d.policy {
	case PolicyFIFO:
		// Strict global arrival order: the oldest queued job anywhere.
		var best *tenantQ
		for _, name := range d.rr {
			tq := d.tenants[name]
			if len(tq.jobs) > 0 && (best == nil || tq.jobs[0].seq < best.jobs[0].seq) {
				best = tq
			}
		}
		if best == nil {
			return nil
		}
		return d.claim(best)
	default: // PolicyFair
		for i := 0; i < len(d.rr); i++ {
			tq := d.tenants[d.rr[(d.rrIdx+i)%len(d.rr)]]
			if len(tq.jobs) == 0 {
				continue
			}
			if d.inflightCap > 0 && tq.inflight >= d.inflightCap {
				continue
			}
			d.rrIdx = (d.rrIdx + i + 1) % len(d.rr)
			return d.claim(tq)
		}
		return nil
	}
}

// claim pops tq's queue head. Called with the lock held.
func (d *Dispatcher) claim(tq *tenantQ) *job {
	j := tq.jobs[0]
	tq.jobs = tq.jobs[1:]
	d.queued--
	tq.inflight++
	return j
}

// maybeReap drops a tenant's queue state once it is fully idle, so tenant
// churn does not grow the maps without bound (the counters in tenantStats
// persist). Called with the lock held.
func (d *Dispatcher) maybeReap(tq *tenantQ) {
	if len(tq.jobs) > 0 || tq.inflight > 0 {
		return
	}
	delete(d.tenants, tq.name)
	for i, name := range d.rr {
		if name == tq.name {
			d.rr = append(d.rr[:i:i], d.rr[i+1:]...)
			if d.rrIdx > i {
				d.rrIdx--
			}
			if len(d.rr) > 0 {
				d.rrIdx %= len(d.rr)
			} else {
				d.rrIdx = 0
			}
			break
		}
	}
}

// Close rejects all queued jobs with ErrServerClosed, waits for in-flight
// solves to finish, and stops every worker. After Close, Do returns
// ErrServerClosed.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	for _, tq := range d.tenants {
		for _, j := range tq.jobs {
			j.err = ErrServerClosed
			close(j.done)
		}
		tq.jobs = nil
	}
	d.queued = 0
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// statsFor returns (creating if needed) tenant's persistent counters.
// Called with the lock held.
func (d *Dispatcher) statsFor(tenant string) *TenantStats {
	ts := d.tenantStats[tenant]
	if ts == nil {
		ts = &TenantStats{}
		d.tenantStats[tenant] = ts
	}
	return ts
}

// Stats snapshots the aggregate counters.
func (d *Dispatcher) Stats() DispatchStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Queued = d.queued
	s.InFlight = d.inFlight
	return s
}

// TenantSnapshot copies the per-tenant counters.
func (d *Dispatcher) TenantSnapshot() map[string]TenantStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]TenantStats, len(d.tenantStats))
	for name, ts := range d.tenantStats {
		out[name] = *ts
	}
	return out
}
