package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nbody/internal/faults"
	"nbody/internal/metrics"
)

// Policy selects how workers pick the next admitted request.
type Policy string

const (
	// PolicyFIFO serves strict global arrival order with no per-tenant
	// concurrency cap: simple and fast for cooperative tenants, but one
	// flooding tenant monopolizes the workers (its queue bound is the only
	// brake). The baseline policy of the load-test comparison.
	PolicyFIFO Policy = "fifo"
	// PolicyFair round-robins across tenants with queued work and caps the
	// per-tenant in-flight count, so no tenant starves another: a flooding
	// tenant is throttled to its share and its excess is bounced at
	// admission instead of aging in front of everyone else's work.
	PolicyFair Policy = "fair"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyFIFO, PolicyFair:
		return Policy(s), nil
	}
	return "", fmt.Errorf("unknown admission policy %q (fifo | fair)", s)
}

// Fault-injection sites of the admission path (chaos harness): an enqueue
// stall delays the handler before its request reaches the queue, a dequeue
// stall holds a worker between claiming a job and running it — the two
// transport-level chokepoints a real overload hits.
const (
	SiteEnqueue = "serve/enqueue"
	SiteDequeue = "serve/dequeue"
	SiteWorker  = "serve/worker"
)

// Sites lists the serving layer's fault sites, in the repo convention
// (tests reference the exported list so a renamed site fails compilation).
var Sites = []string{SiteEnqueue, SiteDequeue, SiteWorker}

// Budget carries a request's admission-control inputs: the predicted solve
// cost and the propagated deadline. The zero value disables cost-model
// admission for the request (it is queued exactly as before PR 8): a zero
// Estimate means the estimator had nothing actionable, a zero Deadline
// means the caller imposed none.
type Budget struct {
	Estimate time.Duration
	Deadline time.Time
}

// job is one admitted request waiting for a worker.
type job struct {
	tq   *tenantQ
	ctx  context.Context
	fn   func(context.Context) error
	err  error
	done chan struct{}
	seq  uint64
	bud  Budget
}

// tenantQ is one tenant's FIFO queue plus its in-flight count.
type tenantQ struct {
	name     string
	jobs     []*job
	inflight int
}

// TenantStats are one tenant's admission counters (persist after the
// tenant's queue drains).
type TenantStats struct {
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Shed      int64 `json:"shed,omitempty"`       // deadline-shed at admission
	ShedStale int64 `json:"shed_stale,omitempty"` // dropped unmeetable at dequeue
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"` // withdrawn while queued
}

// DispatchStats aggregate the dispatcher's admission counters.
type DispatchStats struct {
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Shed      int64 `json:"shed"`
	ShedStale int64 `json:"shed_stale"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Queued    int   `json:"queued"`
	InFlight  int   `json:"in_flight"`
	// BacklogMS is the current predicted queue wait (the admission
	// estimate a new request would see).
	BacklogMS float64 `json:"backlog_ms"`
}

// Dispatcher owns the worker fleet and the per-tenant queues. Admission is
// bounded: a tenant whose queue is at depth gets ErrOverloaded immediately
// (the HTTP 429 path) rather than unbounded buffering. Do blocks the
// calling handler until the request ran or its context fired; a request
// whose context fires while still queued is withdrawn without running.
type Dispatcher struct {
	policy      Policy
	depth       int // per-tenant queue bound
	inflightCap int // per-tenant concurrent solves (fair policy)
	workers     int

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQ
	rr      []string // round-robin order over tenants with state
	rrIdx   int
	seq     uint64
	queued  int
	closed  bool
	wg      sync.WaitGroup

	// Predicted-cost bookkeeping for the admission wait model: the summed
	// estimates of queued and of currently running jobs, maintained on
	// enqueue/claim/withdraw/completion.
	queuedEstNS  int64
	runningEstNS int64

	stats       DispatchStats
	tenantStats map[string]*TenantStats
	inFlight    int
}

// NewDispatcher starts workers goroutines serving per-tenant queues of the
// given depth under the given policy. inflightCap bounds one tenant's
// concurrent solves under PolicyFair (ignored by PolicyFIFO; < 1 means no
// cap).
func NewDispatcher(policy Policy, workers, depth, inflightCap int) (*Dispatcher, error) {
	if _, err := ParsePolicy(string(policy)); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("serve: need at least one worker, got %d", workers)
	}
	if depth < 1 {
		return nil, fmt.Errorf("serve: queue depth must be >= 1, got %d", depth)
	}
	d := &Dispatcher{
		policy:      policy,
		depth:       depth,
		inflightCap: inflightCap,
		workers:     workers,
		tenants:     make(map[string]*tenantQ),
		tenantStats: make(map[string]*TenantStats),
	}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d, nil
}

// Do admits fn for tenant with no admission budget: the pre-PR 8 contract,
// kept for callers (and tests) that queue unconditionally.
func (d *Dispatcher) Do(ctx context.Context, tenant string, fn func(context.Context) error) error {
	return d.DoBudget(ctx, tenant, Budget{}, fn)
}

// PredictedWait is the dispatcher's queue-delay estimate for a newly
// admitted request: the summed predicted cost of all queued work plus half
// the in-flight work (on average a running solve is halfway done), divided
// across the worker fleet. It deliberately ignores per-tenant fairness
// caps — a global lower bound is what the shed decision needs, and the
// Retry-After hint only has to be the right order of magnitude.
func (d *Dispatcher) PredictedWait() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.predictedWaitLocked()
}

func (d *Dispatcher) predictedWaitLocked() time.Duration {
	return time.Duration((d.queuedEstNS + d.runningEstNS/2) / int64(d.workers))
}

// DoBudget admits fn for tenant and blocks until it ran (returning its
// error), the queue rejected it (ErrOverloaded / *ShedError /
// ErrServerClosed), or ctx fired while it was still queued (returning
// ctx.Err()). Once fn starts, DoBudget waits for it: fn receives ctx, so
// cancellation reaches a running solve through the solver's own ctx checks.
//
// When bud carries both an estimate and a deadline, cost-model admission
// applies: a request whose predicted completion (queue wait + solve
// estimate) exceeds its deadline is shed immediately with a *ShedError —
// the 429 path — instead of queueing work that can only 504. The same
// check re-runs at dequeue time, so a request whose deadline became
// unmeetable while it aged in queue is dropped before it wastes a worker.
func (d *Dispatcher) DoBudget(ctx context.Context, tenant string, bud Budget, fn func(context.Context) error) error {
	faults.Fire(SiteEnqueue)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrServerClosed
	}
	ts := d.statsFor(tenant)
	if bud.Estimate > 0 && !bud.Deadline.IsZero() {
		wait := d.predictedWaitLocked()
		if predicted := time.Now().Add(wait + bud.Estimate); predicted.After(bud.Deadline) {
			ts.Shed++
			d.stats.Shed++
			d.mu.Unlock()
			metrics.AddShed(1)
			return &ShedError{Tenant: tenant, Estimate: bud.Estimate, Wait: wait, RetryAfter: retryAfterHint(wait)}
		}
	}
	tq := d.tenants[tenant]
	if tq == nil {
		tq = &tenantQ{name: tenant}
		d.tenants[tenant] = tq
		d.rr = append(d.rr, tenant)
	}
	if len(tq.jobs) >= d.depth {
		ts.Rejected++
		d.stats.Rejected++
		d.mu.Unlock()
		return fmt.Errorf("%w: tenant %q at depth %d", ErrOverloaded, tenant, d.depth)
	}
	d.seq++
	j := &job{tq: tq, ctx: ctx, fn: fn, done: make(chan struct{}), seq: d.seq, bud: bud}
	tq.jobs = append(tq.jobs, j)
	d.queued++
	d.queuedEstNS += int64(bud.Estimate)
	ts.Admitted++
	d.stats.Admitted++
	d.cond.Signal()
	d.mu.Unlock()

	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		if d.withdraw(j) {
			return ctx.Err()
		}
		// Already running (or finished): the solve sees ctx itself.
		<-j.done
		return j.err
	}
}

// withdraw removes a still-queued job, reporting whether it succeeded (a
// job already claimed by a worker cannot be withdrawn).
func (d *Dispatcher) withdraw(j *job) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, q := range j.tq.jobs {
		if q == j {
			j.tq.jobs = append(j.tq.jobs[:i:i], j.tq.jobs[i+1:]...)
			d.queued--
			d.queuedEstNS -= int64(j.bud.Estimate)
			d.statsFor(j.tq.name).Canceled++
			d.stats.Canceled++
			d.maybeReap(j.tq)
			return true
		}
	}
	return false
}

// worker is one member of the fleet: claim the next runnable job under the
// policy, run it unlocked, account completion, repeat until Close.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	d.mu.Lock()
	for {
		j := d.next()
		if j == nil {
			if d.closed {
				d.mu.Unlock()
				return
			}
			d.cond.Wait()
			continue
		}
		// Dequeue-time re-check: a job admitted with slack may have aged
		// past the point where its deadline is meetable; running it would
		// burn this worker on work that can only 504. Drop it here, still
		// holding the lock, and claim the next job instead.
		if j.bud.Estimate > 0 && !j.bud.Deadline.IsZero() &&
			time.Now().Add(j.bud.Estimate).After(j.bud.Deadline) {
			j.err = &ShedError{Tenant: j.tq.name, Estimate: j.bud.Estimate, Stale: true,
				RetryAfter: retryAfterHint(d.predictedWaitLocked())}
			close(j.done)
			d.runningEstNS -= int64(j.bud.Estimate)
			j.tq.inflight--
			ts := d.statsFor(j.tq.name)
			ts.ShedStale++
			ts.Completed++
			d.stats.ShedStale++
			d.stats.Completed++
			metrics.AddShedStale(1)
			d.maybeReap(j.tq)
			continue
		}
		d.inFlight++
		d.mu.Unlock()

		faults.Fire(SiteDequeue)
		if err := j.ctx.Err(); err != nil {
			j.err = err
		} else {
			j.err = j.fn(j.ctx)
		}
		close(j.done)

		d.mu.Lock()
		d.inFlight--
		d.runningEstNS -= int64(j.bud.Estimate)
		j.tq.inflight--
		d.statsFor(j.tq.name).Completed++
		d.stats.Completed++
		d.maybeReap(j.tq)
		// A finished solve may unblock a fair-policy tenant that was at
		// its in-flight cap.
		d.cond.Signal()
	}
}

// next picks the next runnable job under the policy, or nil. Called with
// the lock held; claims the job (removes it from its queue, increments the
// tenant's in-flight count).
func (d *Dispatcher) next() *job {
	if d.queued == 0 {
		return nil
	}
	switch d.policy {
	case PolicyFIFO:
		// Strict global arrival order: the oldest queued job anywhere.
		var best *tenantQ
		for _, name := range d.rr {
			tq := d.tenants[name]
			if len(tq.jobs) > 0 && (best == nil || tq.jobs[0].seq < best.jobs[0].seq) {
				best = tq
			}
		}
		if best == nil {
			return nil
		}
		return d.claim(best)
	default: // PolicyFair
		for i := 0; i < len(d.rr); i++ {
			tq := d.tenants[d.rr[(d.rrIdx+i)%len(d.rr)]]
			if len(tq.jobs) == 0 {
				continue
			}
			if d.inflightCap > 0 && tq.inflight >= d.inflightCap {
				continue
			}
			d.rrIdx = (d.rrIdx + i + 1) % len(d.rr)
			return d.claim(tq)
		}
		return nil
	}
}

// claim pops tq's queue head. Called with the lock held.
func (d *Dispatcher) claim(tq *tenantQ) *job {
	j := tq.jobs[0]
	tq.jobs = tq.jobs[1:]
	d.queued--
	d.queuedEstNS -= int64(j.bud.Estimate)
	d.runningEstNS += int64(j.bud.Estimate)
	tq.inflight++
	return j
}

// maybeReap drops a tenant's queue state once it is fully idle, so tenant
// churn does not grow the maps without bound (the counters in tenantStats
// persist). Called with the lock held.
func (d *Dispatcher) maybeReap(tq *tenantQ) {
	if len(tq.jobs) > 0 || tq.inflight > 0 {
		return
	}
	delete(d.tenants, tq.name)
	for i, name := range d.rr {
		if name == tq.name {
			d.rr = append(d.rr[:i:i], d.rr[i+1:]...)
			if d.rrIdx > i {
				d.rrIdx--
			}
			if len(d.rr) > 0 {
				d.rrIdx %= len(d.rr)
			} else {
				d.rrIdx = 0
			}
			break
		}
	}
}

// Close rejects all queued jobs with ErrServerClosed, waits for in-flight
// solves to finish, and stops every worker. After Close, Do returns
// ErrServerClosed.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	for _, tq := range d.tenants {
		for _, j := range tq.jobs {
			j.err = ErrServerClosed
			close(j.done)
		}
		tq.jobs = nil
	}
	d.queued = 0
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// statsFor returns (creating if needed) tenant's persistent counters.
// Called with the lock held.
func (d *Dispatcher) statsFor(tenant string) *TenantStats {
	ts := d.tenantStats[tenant]
	if ts == nil {
		ts = &TenantStats{}
		d.tenantStats[tenant] = ts
	}
	return ts
}

// Stats snapshots the aggregate counters.
func (d *Dispatcher) Stats() DispatchStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Queued = d.queued
	s.InFlight = d.inFlight
	s.BacklogMS = float64(d.predictedWaitLocked().Microseconds()) / 1e3
	return s
}

// Quiesced reports whether the dispatcher has no queued and no running
// work — the drain loop's completion condition.
func (d *Dispatcher) Quiesced() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queued == 0 && d.inFlight == 0
}

// TenantSnapshot copies the per-tenant counters.
func (d *Dispatcher) TenantSnapshot() map[string]TenantStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]TenantStats, len(d.tenantStats))
	for name, ts := range d.tenantStats {
		out[name] = *ts
	}
	return out
}
