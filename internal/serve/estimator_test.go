package serve

import (
	"math"
	"testing"
	"time"

	"nbody"
	"nbody/internal/plan"
)

// tkey builds a plan Key the way the server's planner does: accuracy
// resolved to K, depth and flags in the Plan.
func tkey(n, depth int, acc string, super, sim bool) Key {
	return Key{
		Shape: plan.ShapeKey{N: n, Accuracy: acc},
		Sim:   sim,
		Plan:  plan.Plan{Depth: depth, K: plan.AccuracyK(acc), Supernodes: super},
	}
}

// TestEstimatorConvergence pins the EWMA contract the admission design
// leans on: after a fixed warm-up of observations at a stable cost, the
// estimator's prediction is within 20% of the measured value — both when
// the observations agree with the model seed and when they are far from it.
func TestEstimatorConvergence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		measured time.Duration
	}{
		{"near-seed", 5 * time.Millisecond},
		{"seed-way-off", 800 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEstimator()
			key := tkey(2048, 3, "fast", false, false)
			const warmup = 10
			for i := 0; i < warmup; i++ {
				e.Observe(key, 1, tc.measured)
			}
			got, confident := e.Estimate(key, 1)
			if !confident {
				t.Fatalf("estimator not confident after %d observations", warmup)
			}
			lo := time.Duration(float64(tc.measured) * 0.8)
			hi := time.Duration(float64(tc.measured) * 1.2)
			if got < lo || got > hi {
				t.Fatalf("estimate %v outside 20%% of measured %v after %d observations", got, tc.measured, warmup)
			}
		})
	}
}

// TestEstimatorConfidenceGating pins the cold-server contract: no
// prediction is actionable until the shape has estConfidentShape direct
// observations or the global calibration has estConfidentScale, so a cold
// server can never shed on the uncalibrated model seed.
func TestEstimatorConfidenceGating(t *testing.T) {
	e := newEstimator()
	key := tkey(4096, 3, "balanced", false, false)
	if _, confident := e.Estimate(key, 1); confident {
		t.Fatal("cold estimator claims confidence")
	}
	e.Observe(key, 1, 10*time.Millisecond)
	if _, confident := e.Estimate(key, 1); confident {
		t.Fatalf("confident after 1 observation, want >= %d", estConfidentShape)
	}
	e.Observe(key, 1, 10*time.Millisecond)
	if _, confident := e.Estimate(key, 1); !confident {
		t.Fatalf("not confident after %d shape observations", estConfidentShape)
	}

	// A different shape has no direct observations: it goes through the
	// model seed, which becomes actionable only at the global threshold.
	other := tkey(512, 2, "fast", false, false)
	if _, confident := e.Estimate(other, 1); confident {
		t.Fatal("unseen shape confident before the global calibration is backed")
	}
	for i := int64(0); i < estConfidentScale; i++ {
		e.Observe(key, 1, 10*time.Millisecond)
	}
	if _, confident := e.Estimate(other, 1); !confident {
		t.Fatalf("unseen shape not confident after %d global observations", estConfidentScale)
	}
}

// TestEstimatorRobustInputs throws the fuzz-seed adversarial corpus at the
// estimator synchronously: zero and huge N, absurd depths, garbage
// accuracy names, non-finite and overflowing measurements. Every Estimate
// must come back in [0, estMax] and every Observe must leave the scale
// finite and positive.
func TestEstimatorRobustInputs(t *testing.T) {
	e := newEstimator()
	keys := []Key{
		tkey(0, 0, "", false, false),
		tkey(-5, -3, "nonsense", false, false),
		tkey(math.MaxInt32, 16, "accurate", true, false),
		tkey(1<<30, 2, "fast", false, true),
		tkey(1, 99, "", false, false),
	}
	for _, key := range keys {
		for _, units := range []int{-1, 0, 1, math.MaxInt32} {
			d, _ := e.Estimate(key, units)
			if d < 0 || d > estMax {
				t.Fatalf("Estimate(%+v, %d) = %v outside [0, %v]", key, units, d, estMax)
			}
		}
		for _, m := range []time.Duration{-time.Second, 0, time.Nanosecond, estMax, 1 << 62} {
			e.Observe(key, 1, m)
		}
		_, scale, _ := e.Stats()
		if !(scale > 0) || math.IsInf(scale, 0) {
			t.Fatalf("scale %v corrupted after observing %+v", scale, key)
		}
	}
}

// TestEstimatorAccuracyK cross-checks the plan subsystem's preset->K
// mapping (the one the estimator keys on) against the root package's own
// accuracy estimator, so a re-tuned preset cannot silently skew every
// admission estimate.
func TestEstimatorAccuracyK(t *testing.T) {
	for name, acc := range map[string]nbody.Accuracy{
		"fast": nbody.Fast, "balanced": nbody.Balanced, "accurate": nbody.Accurate,
	} {
		est, err := nbody.EstimateAccuracy(nbody.Options{Accuracy: acc})
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.AccuracyK(name); got != est.K {
			t.Errorf("plan.AccuracyK(%q) = %d, root package resolves K = %d", name, got, est.K)
		}
	}
	if got := plan.AccuracyK(""); got != plan.AccuracyK("fast") {
		t.Errorf("empty accuracy maps to K=%d, fast to %d; they must agree", got, plan.AccuracyK("fast"))
	}
}
