package serve

import (
	"fmt"
	"sync"
	"time"

	"nbody"
	"nbody/internal/cli"
	"nbody/internal/plan"
)

// Key is the identity of a solver plan: every field that changes the plan
// the solver builds at construction (hierarchy, translation matrices,
// preallocated buffers). It is the plan subsystem's Key — the problem's
// ShapeKey (N, distribution fingerprint, accuracy, dims) plus the resolved
// plan.Plan (depth, K, supernodes, ladder) — so the cache, the admission
// estimator, and the planner all key on one canonical type and can never
// disagree about what a shape is. Two requests with equal keys are served
// bitwise identically by one warm plan; two requests with different keys
// never share one. N is part of the shape because the repo's solvers
// preallocate every particle-sized buffer in NewSolver — the 2-allocs
// steady state the warm path exists to hit. Sim selects the enlarged
// integration domain.
type Key = plan.Key

// Plan is one warm execution engine for a shape: the Resilient ladder over
// a depth-pinned Anderson rung, plus the output buffers sized for the
// shape so warm solves run the allocation-free Into path. A Plan is owned
// by exactly one request between Acquire and Release (solvers run one
// solve at a time); the cache enforces the exclusivity and the inUse flag
// makes a violation loud instead of silently corrupting a solve.
type Plan struct {
	Key    Key
	Ladder *nbody.Resilient
	Rung0  *nbody.Anderson // the preferred rung, for per-request phase tables
	Phi    []float64
	Acc    []nbody.Vec3

	inUse   bool
	lastUse time.Time
}

// buildPlan constructs a cold plan for key: the Anderson rung (NewSolver
// runs here — the cost the cache exists to amortize), optional fallback
// rungs, and the Resilient wrapper with the given retry policy.
func buildPlan(key Key, policy nbody.RetryPolicy) (*Plan, error) {
	acc, err := cli.Accuracy(key.Shape.Accuracy)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	box := Domain()
	if key.Sim {
		box = SimDomain()
	}
	spec := cli.Spec{
		Kind: "anderson",
		Opts: nbody.Options{Accuracy: acc, Depth: key.Plan.Depth, Supernodes: key.Plan.Supernodes},
	}
	rungs, err := spec.Ladder(key.Plan.Ladder, box)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	ladder, err := nbody.NewResilient(policy, rungs...)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Key:    key,
		Ladder: ladder,
		Phi:    make([]float64, key.Shape.N),
		Acc:    make([]nbody.Vec3, key.Shape.N),
	}
	p.Rung0, _ = rungs[0].(*nbody.Anderson)
	// Force plan building now: the Anderson rung defers NewSolver to the
	// first solve when Depth came in 0, but keys always carry an explicit
	// depth, so the constructor above already paid the full cost. Nothing
	// to do — documented here because the cache's cold/warm accounting
	// depends on construction happening inside buildPlan.
	return p, nil
}

// CacheStats are the plan cache's counters, exposed on /v1/metrics and
// used by the load harness to prove warm hits are measurably cheaper than
// cold constructions.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// BuildNS is the total time spent in cold plan construction
	// (NewSolver and friends); BuildNS/Misses is the cold cost a hit
	// avoids. HitNS is the total time spent serving warm acquisitions
	// (map lookup + checkout).
	BuildNS int64 `json:"build_ns"`
	HitNS   int64 `json:"hit_ns"`
	// Idle and Shapes describe the current cache contents.
	Idle   int `json:"idle"`
	Shapes int `json:"shapes"`
}

// PlanCache is the shape-keyed pool of warm plans. Acquire checks out an
// idle plan for the exact key (a hit) or builds one (a miss); Release
// returns it. At most cap idle plans are retained, evicted least recently
// used; a plan evicted while idle is simply dropped for the GC. Plans in
// flight never count against the cap and are never evicted.
type PlanCache struct {
	policy nbody.RetryPolicy
	cap    int

	mu    sync.Mutex
	idle  map[Key][]*Plan
	lru   []*Plan // idle plans, oldest release first
	stats CacheStats

	// build is swappable for tests (constructing real solvers is slow).
	build func(Key, nbody.RetryPolicy) (*Plan, error)
}

// NewPlanCache builds a cache retaining at most cap idle plans (cap < 1
// disables retention: every request is a cold build).
func NewPlanCache(cap int, policy nbody.RetryPolicy) *PlanCache {
	return &PlanCache{
		policy: policy,
		cap:    cap,
		idle:   make(map[Key][]*Plan),
		build:  buildPlan,
	}
}

// Acquire checks out a plan for key, reporting whether it was warm. The
// caller owns the plan exclusively until Release.
func (c *PlanCache) Acquire(key Key) (*Plan, bool, error) {
	start := time.Now()
	c.mu.Lock()
	if ps := c.idle[key]; len(ps) > 0 {
		p := ps[len(ps)-1]
		c.idle[key] = ps[:len(ps)-1]
		if len(c.idle[key]) == 0 {
			delete(c.idle, key)
		}
		c.lruRemove(p)
		if p.inUse {
			c.mu.Unlock()
			panic("serve: cached plan acquired twice")
		}
		p.inUse = true
		c.stats.Hits++
		c.stats.HitNS += int64(time.Since(start))
		c.mu.Unlock()
		return p, true, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	// Cold build outside the lock: constructions of distinct shapes (or
	// concurrent same-shape bursts deeper than the idle pool) proceed in
	// parallel rather than serializing every tenant behind one NewSolver.
	p, err := c.build(key, c.policy)
	if err != nil {
		return nil, false, err
	}
	p.inUse = true
	c.mu.Lock()
	c.stats.BuildNS += int64(time.Since(start))
	c.mu.Unlock()
	return p, false, nil
}

// Release returns a plan to the idle pool, evicting the least recently
// used idle plan when the pool is over cap.
func (c *PlanCache) Release(p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !p.inUse {
		panic("serve: plan released twice")
	}
	p.inUse = false
	if c.cap < 1 {
		return
	}
	p.lastUse = time.Now()
	c.idle[p.Key] = append(c.idle[p.Key], p)
	c.lru = append(c.lru, p)
	for len(c.lru) > c.cap {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		ps := c.idle[victim.Key]
		for i, q := range ps {
			if q == victim {
				c.idle[victim.Key] = append(ps[:i:i], ps[i+1:]...)
				break
			}
		}
		if len(c.idle[victim.Key]) == 0 {
			delete(c.idle, victim.Key)
		}
		c.stats.Evictions++
	}
}

// lruRemove drops p from the LRU order (p just left the idle pool). Called
// with the lock held.
func (c *PlanCache) lruRemove(p *Plan) {
	for i, q := range c.lru {
		if q == p {
			c.lru = append(c.lru[:i:i], c.lru[i+1:]...)
			return
		}
	}
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Idle = len(c.lru)
	s.Shapes = len(c.idle)
	return s
}
