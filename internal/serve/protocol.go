// Package serve is the multi-tenant solver service: request decoding and
// validation on top of System.Validate and the package's typed errors,
// per-tenant FIFO queues with admission control, a solver-plan cache keyed
// by problem shape so warm requests skip NewSolver entirely, the Resilient
// degradation ladder as the per-request execution engine (with the caller's
// deadline propagated through the existing ctx cancellation), and a
// JSON metrics endpoint plus structured request logs.
//
// The wire protocol is JSON over HTTP:
//
//	POST /v1/solve     one potential/acceleration solve, JSON in, JSON out
//	POST /v1/simulate  a leapfrog integration, chunked NDJSON frame stream
//	GET  /v1/metrics   admission/plan-cache/latency/recovery counters
//	GET  /v1/healthz   liveness
//
// Positions live in the canonical unit-cube domain [0,1)^3 (the domain of
// every distribution the repo generates); the fixed domain is what makes a
// solver plan reusable across requests of the same shape.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"nbody"
	"nbody/internal/cli"
)

// Typed admission/decoding errors, mapped onto HTTP status codes by the
// handlers (solver-side classes — ErrInvalidSystem, ErrOutOfDomain — come
// from the nbody package itself).
var (
	// ErrBadRequest marks a request body the decoder cannot accept:
	// malformed JSON, an empty system, mismatched slice lengths, or an
	// unknown accuracy/compute selector. HTTP 400.
	ErrBadRequest = errors.New("serve: invalid request")
	// ErrTooLarge marks a request exceeding the configured size caps
	// (body bytes, particle count, hierarchy depth). HTTP 413.
	ErrTooLarge = errors.New("serve: request exceeds size limits")
	// ErrOverloaded marks an admission rejection: the tenant's queue is at
	// its configured depth. HTTP 429; the request was not enqueued.
	ErrOverloaded = errors.New("serve: tenant queue full")
	// ErrServerClosed marks requests caught in a server shutdown. HTTP 503.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrShed marks a cost-model admission rejection: the request's predicted
	// completion (queue wait + solve estimate) exceeds its deadline, so
	// queueing it could only produce a 504 after wasted work. HTTP 429 with a
	// Retry-After hint; concrete errors are *ShedError.
	ErrShed = errors.New("serve: shed, deadline unmeetable")
	// ErrDraining marks requests arriving after BeginDrain: the server is
	// finishing its in-flight work before shutdown and accepts no new work.
	// HTTP 503 with Retry-After, so a gateway or client retries elsewhere.
	ErrDraining = errors.New("serve: draining, not accepting new work")
)

// ShedError is the concrete cost-model rejection: it unwraps to ErrShed and
// carries what the admission layer knew — the predicted solve cost, the
// predicted queue wait, and the backlog-derived Retry-After hint the HTTP
// layer forwards to the client. Stale distinguishes the dequeue-time drop (a
// request that was admissible but aged past its deadline in queue) from the
// admission-time shed.
type ShedError struct {
	Tenant     string
	Estimate   time.Duration
	Wait       time.Duration
	RetryAfter time.Duration
	Stale      bool
}

func (e *ShedError) Error() string {
	if e.Stale {
		return fmt.Sprintf("serve: tenant %q request shed at dequeue: estimate %v no longer fits deadline", e.Tenant, e.Estimate)
	}
	return fmt.Sprintf("serve: tenant %q request shed: predicted wait %v + estimate %v exceeds deadline", e.Tenant, e.Wait, e.Estimate)
}

// Is makes errors.Is(err, ErrShed) hold for every ShedError.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// retryAfterHint converts a predicted queue wait into a Retry-After value:
// the wait rounded up to whole seconds, floored at one second (the header
// carries integral seconds, and "retry immediately" defeats the point of
// shedding).
func retryAfterHint(wait time.Duration) time.Duration {
	if wait <= time.Second {
		return time.Second
	}
	return wait.Round(time.Second) + time.Second
}

// SolveRequest is the body of POST /v1/solve. Positions and Charges carry
// the system (lengths must match); the remaining fields select the plan
// shape and the per-request behavior.
type SolveRequest struct {
	// Tenant names the queue the request is admitted to ("" is the
	// anonymous tenant, which is a tenant like any other).
	Tenant string `json:"tenant,omitempty"`
	// Positions are particle coordinates in the unit cube [0,1)^3.
	Positions [][3]float64 `json:"positions"`
	// Charges are the particle charges (gravitational masses).
	Charges []float64 `json:"charges"`
	// Compute selects the quantity: "potentials" (default) or
	// "accelerations" (potentials plus the field).
	Compute string `json:"compute,omitempty"`
	// Accuracy is the Anderson preset: fast (default) | balanced | accurate.
	Accuracy string `json:"accuracy,omitempty"`
	// Depth fixes the hierarchy depth; 0 selects the optimal depth for N,
	// deterministically, so equal-shape requests share a plan.
	Depth int `json:"depth,omitempty"`
	// Supernodes enables the interactive-field reduction; part of the plan
	// shape.
	Supernodes bool `json:"supernodes,omitempty"`
	// DeadlineMS bounds the request end to end (queue wait + solve); 0
	// uses the server default. The deadline propagates into the solver as
	// context cancellation.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Phases requests the per-request phase table (time and flops per
	// pipeline phase of this solve alone) in the response.
	Phases bool `json:"phases,omitempty"`
}

// SimulateRequest is the body of POST /v1/simulate: the SolveRequest fields
// plus the integration parameters. The response is a chunked stream of
// NDJSON Frame lines.
type SimulateRequest struct {
	SolveRequest
	// Steps is the number of leapfrog steps (required, >= 1).
	Steps int `json:"steps"`
	// DT is the timestep (required, > 0, finite).
	DT float64 `json:"dt"`
	// StreamEvery emits a Frame every k completed steps (default: Steps,
	// i.e. only the final frame). The final frame always carries the full
	// particle state.
	StreamEvery int `json:"stream_every,omitempty"`
	// CheckpointEvery attaches a resume token (the versioned CRC32C
	// checkpoint encoding, base64) to every k-th emitted non-final frame,
	// so a reader that loses the stream can restart it from the last token
	// it saw. 0 (default) emits no checkpoint tokens; interrupted frames
	// (server drain) always carry one regardless.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// ResumeToken restarts a simulation from a checkpoint frame of an
	// earlier stream instead of from Positions/Charges (the two are
	// mutually exclusive). The resumed stream continues the step numbering
	// and — given the same plan (depth, accuracy, supernodes) and backend —
	// the exact trajectory of the original: the final frame is
	// bitwise-identical to an uninterrupted run. Steps stays the original
	// total (it must exceed the checkpoint's step); DT must match the
	// checkpoint (or be 0 to adopt it).
	ResumeToken string `json:"resume_token,omitempty"`

	// resume is the decoded ResumeToken, carried from the decoder to the
	// stream loop.
	resume *nbody.CheckpointState
}

// SolveResponse is the body of a successful /v1/solve.
type SolveResponse struct {
	Tenant  string       `json:"tenant,omitempty"`
	N       int          `json:"n"`
	Phi     []float64    `json:"phi"`
	Acc     [][3]float64 `json:"acc,omitempty"`
	Backend string       `json:"backend"`
	// Rung is the degradation-ladder rung that served the solve (0 = the
	// preferred Anderson plan).
	Rung int `json:"rung"`
	// CacheHit reports whether the solve reused a warm plan (skipping
	// NewSolver and hitting the steady-state allocation-free path).
	CacheHit bool  `json:"cache_hit"`
	QueueNS  int64 `json:"queue_ns"`
	SolveNS  int64 `json:"solve_ns"`
	// PhaseTable is the per-request phase breakdown, present when the
	// request set Phases (rung-0 phases only; a degraded request reports
	// the phases the preferred rung ran before failing over).
	PhaseTable []PhaseRow `json:"phase_table,omitempty"`
	// Recovery holds the self-healing events this request triggered
	// (retries, degradations, breaker trips); omitted on a healthy solve.
	Recovery *RecoveryDelta `json:"recovery,omitempty"`
	// Degraded reports that the brownout controller rewrote this request to
	// a cheaper shape (lower accuracy and/or re-pinned depth) than asked for;
	// BrownoutLevel is the controller level that did it. A client that needs
	// the full-fidelity answer can retry after the Retry-After pressure
	// subsides — the response is still a correct solve, just a cheaper one.
	Degraded      bool `json:"degraded,omitempty"`
	BrownoutLevel int  `json:"brownout_level,omitempty"`
}

// PhaseRow is one per-request phase-table line.
type PhaseRow struct {
	Phase string `json:"phase"`
	NS    int64  `json:"ns"`
	Flops int64  `json:"flops"`
}

// RecoveryDelta is the per-request slice of the process-wide recovery
// counters: what the self-healing layer did for this request alone.
type RecoveryDelta struct {
	Retries      int64 `json:"retries,omitempty"`
	BreakerTrips int64 `json:"breaker_trips,omitempty"`
	Degradations int64 `json:"degradations,omitempty"`
}

// Frame is one NDJSON line of a /v1/simulate stream: energies every
// StreamEvery steps, and on the final frame the full particle state.
// Interrupted marks a clean early termination (server drain): the stream
// ends after this frame without reaching Steps, and ResumeToken restarts
// it where it stopped. ResumeToken also appears on every CheckpointEvery-th
// ordinary frame when the request asked for checkpoints.
type Frame struct {
	Step        int          `json:"step"`
	Time        float64      `json:"t"`
	Kinetic     float64      `json:"kinetic"`
	Potential   float64      `json:"potential"`
	Total       float64      `json:"total"`
	Final       bool         `json:"final,omitempty"`
	Interrupted bool         `json:"interrupted,omitempty"`
	ResumeToken string       `json:"resume_token,omitempty"`
	Positions   [][3]float64 `json:"positions,omitempty"`
	Velocity    [][3]float64 `json:"velocities,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Limits bounds what the decoder accepts before any solver work happens, so
// a forged request cannot make the server build an enormous plan.
type Limits struct {
	MaxN     int // particles per request
	MaxDepth int // hierarchy depth cap
}

// Domain returns the canonical solver domain: the unit cube with a hair of
// slack so boundary particles stay strictly inside (the same slack the
// repo's own distributions rely on).
func Domain() nbody.Box {
	return nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1 + 1e-9}
}

// SimDomain returns the enlarged domain simulations solve in, so particles
// that drift out of the unit cube during integration stay inside the
// hierarchy (the same 4x margin cmd/nbody uses).
func SimDomain() nbody.Box {
	b := Domain()
	b.Side *= 4
	return b
}

// decodeSolveRequest parses and validates one solve body. On success the
// returned system has passed System.Validate against the canonical domain
// and the request's selectors have been resolved (depth chosen, accuracy
// known); every failure is typed (ErrBadRequest, ErrTooLarge, or a
// validation error wrapping nbody.ErrInvalidSystem / ErrOutOfDomain).
func decodeSolveRequest(body io.Reader, lim Limits) (*SolveRequest, *nbody.System, error) {
	var req SolveRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	sys, err := req.resolve(lim, Domain())
	if err != nil {
		return nil, nil, err
	}
	return &req, sys, nil
}

// decodeSimulateRequest is decodeSolveRequest for the streaming endpoint,
// with the integration parameters validated on top and the system checked
// against the enlarged simulation domain.
func decodeSimulateRequest(body io.Reader, lim Limits) (*SimulateRequest, *nbody.System, error) {
	var req SimulateRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	if req.Steps < 1 {
		return nil, nil, fmt.Errorf("%w: steps must be >= 1, got %d", ErrBadRequest, req.Steps)
	}
	if req.StreamEvery < 0 {
		return nil, nil, fmt.Errorf("%w: stream_every must be >= 0, got %d", ErrBadRequest, req.StreamEvery)
	}
	if req.CheckpointEvery < 0 {
		return nil, nil, fmt.Errorf("%w: checkpoint_every must be >= 0, got %d", ErrBadRequest, req.CheckpointEvery)
	}
	if req.ResumeToken != "" {
		sys, err := req.resolveResume(lim, SimDomain())
		if err != nil {
			return nil, nil, err
		}
		if req.StreamEvery == 0 {
			req.StreamEvery = req.Steps
		}
		return &req, sys, nil
	}
	if !(req.DT > 0) || req.DT > 1e6 {
		return nil, nil, fmt.Errorf("%w: dt must be in (0, 1e6], got %g", ErrBadRequest, req.DT)
	}
	if req.StreamEvery == 0 {
		req.StreamEvery = req.Steps
	}
	sys, err := req.SolveRequest.resolve(lim, SimDomain())
	if err != nil {
		return nil, nil, err
	}
	return &req, sys, nil
}

// resolve validates the shared request fields against the limits and the
// given domain, fills the defaulted selectors in place (Compute, Accuracy,
// Depth), and returns the validated system.
func (r *SolveRequest) resolve(lim Limits, box nbody.Box) (*nbody.System, error) {
	n := len(r.Positions)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty system", ErrBadRequest)
	}
	if lim.MaxN > 0 && n > lim.MaxN {
		return nil, fmt.Errorf("%w: %d particles, cap is %d", ErrTooLarge, n, lim.MaxN)
	}
	if len(r.Charges) != n {
		return nil, fmt.Errorf("%w: %d positions but %d charges", ErrBadRequest, n, len(r.Charges))
	}
	if err := r.resolveSelectors(lim); err != nil {
		return nil, err
	}
	// Depth 0 (auto) survives decoding: the server's planner resolves it —
	// deterministically in the problem shape, so equal auto-depth requests
	// still share one plan-cache entry — from the tuned table when the shape
	// has measured evidence and the analytic cost model otherwise.
	sys := &nbody.System{Positions: make([]nbody.Vec3, n), Charges: r.Charges}
	for i, p := range r.Positions {
		sys.Positions[i] = nbody.Vec3{X: p[0], Y: p[1], Z: p[2]}
	}
	if err := sys.Validate(box); err != nil {
		return nil, err
	}
	return sys, nil
}

// resolveSelectors validates and defaults the per-request selectors shared
// by the fresh and resume decode paths (Compute, Accuracy, Depth).
func (r *SolveRequest) resolveSelectors(lim Limits) error {
	switch r.Compute {
	case "":
		r.Compute = "potentials"
	case "potentials", "accelerations":
	default:
		return fmt.Errorf("%w: unknown compute %q (potentials | accelerations)", ErrBadRequest, r.Compute)
	}
	if r.Accuracy == "" {
		r.Accuracy = "fast"
	}
	if _, err := cli.Accuracy(r.Accuracy); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	switch {
	case r.Depth < 0 || r.Depth == 1:
		return fmt.Errorf("%w: depth must be 0 (auto) or >= 2, got %d", ErrBadRequest, r.Depth)
	case lim.MaxDepth > 0 && r.Depth > lim.MaxDepth:
		return fmt.Errorf("%w: depth %d, cap is %d", ErrTooLarge, r.Depth, lim.MaxDepth)
	}
	return nil
}
