package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"nbody"
)

// fakeBuild swaps the cache's constructor for an instant one, so the cache
// mechanics (keying, eviction, exclusivity) are tested without paying for
// real solver construction.
func fakeBuild(c *PlanCache) *atomic.Int64 {
	var builds atomic.Int64
	c.build = func(key Key, _ nbody.RetryPolicy) (*Plan, error) {
		builds.Add(1)
		return &Plan{Key: key}, nil
	}
	return &builds
}

func TestPlanCacheKeying(t *testing.T) {
	c := NewPlanCache(8, nbody.RetryPolicy{})
	builds := fakeBuild(c)

	kA := tkey(512, 3, "fast", false, false)
	kB := tkey(512, 4, "fast", false, false)      // depth differs
	kC := tkey(512, 3, "accurate", false, false)  // accuracy differs
	kD := tkey(512, 3, "fast", false, true)       // domain differs

	plans := map[Key]*Plan{}
	for _, k := range []Key{kA, kB, kC, kD} {
		p, hit, err := c.Acquire(k)
		if err != nil || hit {
			t.Fatalf("Acquire(%v) = hit=%v err=%v, want cold miss", k, hit, err)
		}
		plans[k] = p
	}
	if got := builds.Load(); got != 4 {
		t.Fatalf("distinct keys built %d plans, want 4", got)
	}
	for _, p := range plans {
		c.Release(p)
	}

	// Same key again: a hit returning the identical plan.
	p, hit, err := c.Acquire(kA)
	if err != nil || !hit {
		t.Fatalf("warm Acquire = hit=%v err=%v, want hit", hit, err)
	}
	if p != plans[kA] {
		t.Fatalf("warm Acquire returned a different plan for the same key")
	}
	c.Release(p)

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 4 misses, 0 evictions", st)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := NewPlanCache(2, nbody.RetryPolicy{})
	fakeBuild(c)

	keys := []Key{tkey(1, 0, "", false, false), tkey(2, 0, "", false, false), tkey(3, 0, "", false, false)}
	var plans []*Plan
	for _, k := range keys {
		p, _, err := c.Acquire(k)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	// All three in flight: nothing idle, nothing evictable.
	if st := c.Stats(); st.Idle != 0 || st.Evictions != 0 {
		t.Fatalf("in-flight plans counted as idle: %+v", st)
	}
	for _, p := range plans {
		c.Release(p)
	}
	st := c.Stats()
	if st.Idle != 2 || st.Evictions != 1 {
		t.Fatalf("stats after releasing 3 into cap 2 = %+v, want Idle=2 Evictions=1", st)
	}
	// The evicted plan is the oldest release: {N:1}. Its key must now be a
	// cold miss; the surviving two stay warm.
	if _, hit, _ := c.Acquire(keys[0]); hit {
		t.Fatalf("evicted key served warm")
	}
	if _, hit, _ := c.Acquire(keys[1]); !hit {
		t.Fatalf("retained key %v served cold", keys[1])
	}
	if _, hit, _ := c.Acquire(keys[2]); !hit {
		t.Fatalf("retained key %v served cold", keys[2])
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c := NewPlanCache(-1, nbody.RetryPolicy{})
	builds := fakeBuild(c)
	k := tkey(7, 0, "", false, false)
	for i := 0; i < 3; i++ {
		p, hit, err := c.Acquire(k)
		if err != nil || hit {
			t.Fatalf("disabled cache served warm")
		}
		c.Release(p)
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("disabled cache built %d plans for 3 requests, want 3", got)
	}
}

func TestPlanCacheDoubleReleasePanics(t *testing.T) {
	c := NewPlanCache(2, nbody.RetryPolicy{})
	fakeBuild(c)
	p, _, _ := c.Acquire(tkey(1, 0, "", false, false))
	c.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Release did not panic")
		}
	}()
	c.Release(p)
}

// TestPlanCacheExclusivity hammers one key from many goroutines and proves
// no plan is ever held by two requests at once: each holder CASes a
// per-plan flag that any concurrent holder would trip over.
func TestPlanCacheExclusivity(t *testing.T) {
	c := NewPlanCache(4, nbody.RetryPolicy{})
	fakeBuild(c)

	var mu sync.Mutex
	held := map[*Plan]bool{}
	key := tkey(64, 2, "fast", false, false)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p, _, err := c.Acquire(key)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if held[p] {
					mu.Unlock()
					t.Error("plan handed to two holders at once")
					return
				}
				held[p] = true
				mu.Unlock()

				mu.Lock()
				held[p] = false
				mu.Unlock()
				c.Release(p)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 16*200 {
		t.Fatalf("accounting lost requests: %+v", st)
	}
}

// TestPlanReuseBitwise exercises the real constructor: a warm plan must
// reproduce its own cold solve bitwise, and both must match a fresh
// solver of the same shape — the contract that makes serving cached plans
// indistinguishable from building one per request.
func TestPlanReuseBitwise(t *testing.T) {
	const n = 256
	key := tkey(n, 2, "fast", false, false)
	c := NewPlanCache(2, nbody.RetryPolicy{})

	sys := nbody.NewUniformSystem(n, 42)
	ctx := context.Background()

	p, hit, err := c.Acquire(key)
	if err != nil || hit {
		t.Fatalf("cold Acquire: hit=%v err=%v", hit, err)
	}
	if err := p.Ladder.PotentialsIntoCtx(ctx, p.Phi, sys); err != nil {
		t.Fatal(err)
	}
	cold := append([]float64(nil), p.Phi...)
	c.Release(p)

	p2, hit, err := c.Acquire(key)
	if err != nil || !hit {
		t.Fatalf("warm Acquire: hit=%v err=%v", hit, err)
	}
	if p2 != p {
		t.Fatalf("warm Acquire returned a different plan")
	}
	if err := p2.Ladder.PotentialsIntoCtx(ctx, p2.Phi, sys); err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if p2.Phi[i] != cold[i] {
			t.Fatalf("phi[%d]: warm %v != cold %v", i, p2.Phi[i], cold[i])
		}
	}
	c.Release(p2)

	// A fresh same-shape solver agrees bitwise with the cached plan.
	fresh, err := nbody.NewAnderson(Domain(), nbody.Options{Accuracy: nbody.Fast, Depth: key.Plan.Depth})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := fresh.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if phi[i] != cold[i] {
			t.Fatalf("phi[%d]: fresh %v != plan %v", i, phi[i], cold[i])
		}
	}
}

// TestPlanCacheBuildError proves a failing construction surfaces to the
// caller and leaves no residue in the cache.
func TestPlanCacheBuildError(t *testing.T) {
	c := NewPlanCache(2, nbody.RetryPolicy{})
	c.build = func(Key, nbody.RetryPolicy) (*Plan, error) {
		return nil, fmt.Errorf("%w: no such accuracy", ErrBadRequest)
	}
	if _, _, err := c.Acquire(tkey(1, 0, "", false, false)); err == nil {
		t.Fatalf("build error swallowed")
	}
	if st := c.Stats(); st.Idle != 0 || st.Shapes != 0 {
		t.Fatalf("failed build left residue: %+v", st)
	}
}
