package dp

import (
	"encoding/binary"
	"testing"

	"nbody/internal/geom"
)

// encode gives every box a value distinct from every other box's.
func encode(c geom.Coord3) float64 { return float64(c.X + 1000*c.Y + 1000000*c.Z) }

// FuzzGridIndexMath drives the grid addressing (layout split, At, CShift
// wraparound) with arbitrary machine shapes, extents, axes, and shift
// counts: every box must be addressable, hold its own value, and CShift
// must realize dst[c] = src[c+s] with circular wraparound on the shifted
// axis — the identity all four ghost strategies reduce to.
func FuzzGridIndexMath(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(0), int16(3))
	f.Add(uint8(3), uint8(3), uint8(2), int16(-5))
	f.Add(uint8(1), uint8(0), uint8(1), int16(0))
	f.Add(uint8(2), uint8(2), uint8(2), int16(1000))
	f.Fuzz(func(t *testing.T, nExp, nodesExp, axisRaw uint8, shiftRaw int16) {
		n := 1 << (1 + nExp%3)          // grid extent 2, 4, or 8
		nodes := 1 << (nodesExp % 4)    // 1..8 nodes (x4 VUs)
		m, err := NewMachine(nodes, 4, CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		g := m.NewGrid3(n, 1)
		g.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = encode(c) })
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					c := geom.Coord3{X: x, Y: y, Z: z}
					if got := g.At(c)[0]; got != encode(c) {
						t.Fatalf("At(%v) = %g, want %g (layout %+v)", c, got, encode(c), g.Layout)
					}
				}
			}
		}

		axis := Axis(axisRaw % 3)
		s := int(shiftRaw)
		d := g.CShift(axis, s)
		mod := func(v int) int { return ((v % n) + n) % n }
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					c := geom.Coord3{X: x, Y: y, Z: z}
					src := c
					switch axis {
					case AxisX:
						src.X = mod(c.X + s)
					case AxisY:
						src.Y = mod(c.Y + s)
					default:
						src.Z = mod(c.Z + s)
					}
					if got := d.At(c)[0]; got != encode(src) {
						t.Fatalf("CShift(%v,%d): dst[%v] = %g, want src[%v] = %g",
							axis, s, c, got, src, encode(src))
					}
				}
			}
		}
	})
}

// FuzzSortByKeys drives the coordinate sort with arbitrary key bytes and
// machine sizes: the returned permutation must be a bijection (particle
// count conserved), keys must come out nondecreasing through it, and the
// attribute arrays must be reordered consistently with it.
func FuzzSortByKeys(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, nodesExp uint8) {
		nk := len(raw) / 8
		if nk > 4096 {
			nk = 4096
		}
		keys := make([]uint64, nk)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
		m, err := NewMachine(1<<(nodesExp%4), 4, CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		orig := make([]float64, nk)
		for i := range orig {
			orig[i] = float64(i)
		}
		a := m.NewArray1D(append([]float64(nil), orig...))
		perm := SortByKeys(m, keys, a)
		if len(perm) != nk {
			t.Fatalf("perm length %d, want %d", len(perm), nk)
		}
		seen := make([]bool, nk)
		for i, p := range perm {
			if p < 0 || p >= nk || seen[p] {
				t.Fatalf("perm[%d] = %d is out of range or duplicated", i, p)
			}
			seen[p] = true
		}
		for i := 1; i < nk; i++ {
			if keys[perm[i-1]] > keys[perm[i]] {
				t.Fatalf("keys not sorted through perm at %d: %d > %d",
					i, keys[perm[i-1]], keys[perm[i]])
			}
		}
		for i, p := range perm {
			if a.Data[i] != orig[p] {
				t.Fatalf("attr[%d] = %g, want orig[perm[%d]] = %g", i, a.Data[i], i, orig[p])
			}
		}
	})
}

// FuzzOctantGather checks the parent-child remap index math for all remap
// kinds: gathering octant oct of a child grid must read exactly
// src[p.Child(oct)] into dst[p] for every parent box.
func FuzzOctantGather(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(0))
	f.Add(uint8(7), uint8(2), uint8(1))
	f.Add(uint8(3), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, octRaw, nExp, nodesExp uint8) {
		oct := int(octRaw % 8)
		n := 1 << (1 + nExp%2) // parent extent 2 or 4, child 4 or 8
		m, err := NewMachine(1<<(nodesExp%3), 4, CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		child := m.NewGrid3(2*n, 1)
		child.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = encode(c) })
		for _, kind := range []RemapKind{RemapSend, RemapAliased} {
			parent := m.NewGrid3(n, 1)
			OctantGather(kind, parent, child, oct)
			for z := 0; z < n; z++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						p := geom.Coord3{X: x, Y: y, Z: z}
						want := encode(p.Child(oct))
						if got := parent.At(p)[0]; got != want {
							t.Fatalf("kind=%v oct=%d: parent[%v] = %g, want child[%v] = %g",
								kind, oct, p, got, p.Child(oct), want)
						}
					}
				}
			}
		}
	})
}
