package dp

import "math"

// Broadcast charges the cost of replicating words from one VU to every VU
// of a group of size group (one-to-all over a fat-tree: log2(group) latency
// terms plus the words through the root link). group 0 means all VUs. The
// caller replicates the actual data itself (translation matrices are
// deterministic, so the simulator does not need to ship them); this
// primitive exists to account for the replication strategies of Section
// 3.3.4 / Figures 8-9.
func (m *Machine) Broadcast(words int64, group int) {
	if group <= 0 {
		group = m.NumVUs()
	}
	c := &m.counters
	atomicAdd64(&c.BcastCalls, 1)
	atomicAdd64(&c.BcastWords, words*int64(group-1))
	hops := math.Log2(float64(group))
	if hops < 1 {
		hops = 1
	}
	c.addCommCycles(m.Cost.BcastLatencyCycles + m.Cost.BcastHopCycles*hops +
		float64(words)*m.Cost.BcastCyclesPerWord*(1+m.Cost.BcastWordHopFactor*hops))
}

// AllToAllBroadcast charges the cost of every VU in a group receiving a
// distinct words-sized block from every other VU (the all-to-all broadcast
// alternative the paper cites for matrix replication). On a fat tree this
// is bandwidth-bound: (group-1) * words per VU through its link.
func (m *Machine) AllToAllBroadcast(words int64, group int) {
	if group <= 0 {
		group = m.NumVUs()
	}
	c := &m.counters
	atomicAdd64(&c.BcastCalls, 1)
	atomicAdd64(&c.BcastWords, words*int64(group-1))
	c.addCommCycles(m.Cost.BcastLatencyCycles + float64(words)*float64(group-1)*m.Cost.BcastCyclesPerWord)
}

// ReduceSum charges the cost of an all-reduce of words per VU over the
// whole machine and returns nothing; data-parallel reductions in this
// repository operate on values the caller already holds.
func (m *Machine) ReduceSum(words int64) {
	c := &m.counters
	hops := math.Log2(float64(m.NumVUs()))
	if hops < 1 {
		hops = 1
	}
	c.addCommCycles(m.Cost.BcastLatencyCycles + m.Cost.BcastHopCycles*hops +
		float64(words)*m.Cost.BcastCyclesPerWord*hops)
}
