package dp

import (
	"math/rand"
	"testing"

	"nbody/internal/geom"
)

func testMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	m, err := NewMachine(nodes, 4, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(3, 4, CostModel{}); err == nil {
		t.Error("non-power-of-two nodes accepted")
	}
	if _, err := NewMachine(4, 3, CostModel{}); err == nil {
		t.Error("non-power-of-two VUs accepted")
	}
	m, err := NewMachine(8, 0, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVUs() != 32 {
		t.Errorf("NumVUs = %d, want 32 (default 4 per node)", m.NumVUs())
	}
	if m.NodeOf(7) != 1 {
		t.Errorf("NodeOf(7) = %d, want 1", m.NodeOf(7))
	}
}

func TestGridAtRoundTrip(t *testing.T) {
	m := testMachine(t, 4)
	g := m.NewGrid3(8, 3)
	n := 8
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := g.At(geom.Coord3{X: x, Y: y, Z: z})
				v[0] = float64((z*n+y)*n + x)
				v[2] = 1
			}
		}
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := g.At(geom.Coord3{X: x, Y: y, Z: z})
				if v[0] != float64((z*n+y)*n+x) || v[2] != 1 {
					t.Fatalf("box (%d,%d,%d) corrupted: %v", x, y, z, v)
				}
			}
		}
	}
}

func TestGridFewerBoxesThanVUs(t *testing.T) {
	m := testMachine(t, 64) // 256 VUs
	g := m.NewGrid3(4, 2)   // 64 boxes
	if g.NumVUsUsed() != 64 {
		t.Errorf("VUs used = %d, want 64", g.NumVUsUsed())
	}
	g.At(geom.Coord3{X: 3, Y: 3, Z: 3})[1] = 42
	if g.At(geom.Coord3{X: 3, Y: 3, Z: 3})[1] != 42 {
		t.Error("write lost")
	}
}

func TestForEachBoxVisitsAllOnce(t *testing.T) {
	m := testMachine(t, 4)
	g := m.NewGrid3(8, 1)
	g.ForEachBox(func(c geom.Coord3, v []float64) { v[0]++ })
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if got := g.At(geom.Coord3{X: x, Y: y, Z: z})[0]; got != 1 {
					t.Fatalf("box (%d,%d,%d) visited %g times", x, y, z, got)
				}
			}
		}
	}
}

func TestCShiftSemantics(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(4, 1)
	g.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = float64(c.X + 10*c.Y + 100*c.Z) })
	// CSHIFT by +1 along X: dst[c] = src[x+1 mod n].
	d := g.CShift(AxisX, 1)
	d.ForEachBox(func(c geom.Coord3, v []float64) {
		want := float64((c.X+1)%4 + 10*c.Y + 100*c.Z)
		if v[0] != want {
			t.Fatalf("shift X+1 at %v = %g, want %g", c, v[0], want)
		}
	})
	// Negative shift along Z.
	d = g.CShift(AxisZ, -1)
	d.ForEachBox(func(c geom.Coord3, v []float64) {
		want := float64(c.X + 10*c.Y + 100*((c.Z+3)%4))
		if v[0] != want {
			t.Fatalf("shift Z-1 at %v = %g, want %g", c, v[0], want)
		}
	})
}

func TestCShiftCounters(t *testing.T) {
	m := testMachine(t, 2) // 8 VUs over 8^3 boxes: subgrid 4x4x8 (z,y split)
	g := m.NewGrid3(8, 2)
	m.ResetCounters()
	g.CShift(AxisX, 1)
	c := m.Counters()
	if c.CShifts != 1 {
		t.Errorf("CShifts = %d", c.CShifts)
	}
	// X axis is not split over VUs here (8 VUs = 2x2x2? BalancedLayout3
	// gives each axis one VU bit), subgrid 4 in x: shifting by 1 moves 1/4
	// of the boxes off-VU.
	total := int64(8 * 8 * 8 * 2)
	if c.OffVUWords != total/4 {
		t.Errorf("OffVUWords = %d, want %d", c.OffVUWords, total/4)
	}
	if c.LocalWords != total-total/4 {
		t.Errorf("LocalWords = %d, want %d", c.LocalWords, total-total/4)
	}
	// Shifting by the full extent is a no-op round trip: everything local.
	m.ResetCounters()
	g.CShift(AxisX, 8)
	c = m.Counters()
	if c.OffVUWords != 0 {
		t.Errorf("full-extent shift moved %d words off-VU", c.OffVUWords)
	}
	// Shift by subgrid extent: every box crosses.
	m.ResetCounters()
	g.CShift(AxisX, 4)
	c = m.Counters()
	if c.OffVUWords != total {
		t.Errorf("subgrid-extent shift: OffVUWords = %d, want %d", c.OffVUWords, total)
	}
}

func TestCShiftRoundTripIdentity(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(8, 2)
	rng := rand.New(rand.NewSource(71))
	g.ForEachBox(func(c geom.Coord3, v []float64) { v[0], v[1] = rng.Float64(), rng.Float64() })
	d := g.CShift(AxisY, 3).CShift(AxisY, -3)
	bad := 0
	d.ForEachBox(func(c geom.Coord3, v []float64) {
		w := g.At(c)
		if v[0] != w[0] || v[1] != w[1] {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d boxes corrupted by round-trip shifts", bad)
	}
}

func TestGridAdd(t *testing.T) {
	m := testMachine(t, 2)
	a := m.NewGrid3(4, 1)
	b := m.NewGrid3(4, 1)
	a.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = 1 })
	b.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = float64(c.X) })
	a.Add(b)
	a.ForEachBox(func(c geom.Coord3, v []float64) {
		if v[0] != float64(1+c.X) {
			t.Fatalf("Add wrong at %v: %g", c, v[0])
		}
	})
}

func TestOctantGatherScatter(t *testing.T) {
	m := testMachine(t, 2)
	child := m.NewGrid3(8, 1)
	child.ForEachBox(func(c geom.Coord3, v []float64) {
		v[0] = float64(c.X + 10*c.Y + 100*c.Z)
	})
	for oct := 0; oct < 8; oct++ {
		parent := m.NewGrid3(4, 1)
		OctantGather(RemapAliased, parent, child, oct)
		parent.ForEachBox(func(p geom.Coord3, v []float64) {
			cc := p.Child(oct)
			want := float64(cc.X + 10*cc.Y + 100*cc.Z)
			if v[0] != want {
				t.Fatalf("oct %d gather at %v = %g, want %g", oct, p, v[0], want)
			}
		})
	}
	// Scatter-add: child[child(p,oct)] += parent[p].
	parent := m.NewGrid3(4, 1)
	parent.ForEachBox(func(p geom.Coord3, v []float64) { v[0] = 1000 })
	before := child.At(geom.Coord3{X: 1, Y: 0, Z: 0})[0]
	OctantScatterAdd(RemapAliased, child, parent, 1) // oct 1: +X children
	if got := child.At(geom.Coord3{X: 1, Y: 0, Z: 0})[0]; got != before+1000 {
		t.Errorf("scatter-add: %g, want %g", got, before+1000)
	}
	if got := child.At(geom.Coord3{X: 0, Y: 0, Z: 0})[0]; got != 0 {
		t.Errorf("scatter-add touched wrong octant: %g", got)
	}
}

func TestOctantGatherLocalityCounts(t *testing.T) {
	// With >= 1 parent box per VU and matched layouts, parent-child
	// communication is VU-local: the embedding property of Section 3.1.
	m := testMachine(t, 2) // 8 VUs
	child := m.NewGrid3(16, 2)
	parent := m.NewGrid3(8, 2) // 512 parents over 8 VUs: 64 per VU
	off := OctantGather(RemapAliased, parent, child, 3)
	if off != 0 {
		t.Errorf("parent-child gather moved %d words off-VU, want 0", off)
	}
	// Near the root (fewer boxes than VUs) movement is unavoidable.
	m2 := testMachine(t, 64) // 256 VUs
	child2 := m2.NewGrid3(4, 2)
	parent2 := m2.NewGrid3(2, 2)
	off = OctantGather(RemapAliased, parent2, child2, 0)
	if off == 0 {
		t.Error("root-level gather reported zero off-VU words")
	}
}

func TestRemapSendChargesOverhead(t *testing.T) {
	m := testMachine(t, 2)
	src := m.NewGrid3(8, 4)
	dst := m.NewGrid3(8, 4)
	m.ResetCounters()
	Remap(RemapSend, dst, src, func(yield func(sc, dc geom.Coord3)) {
		for z := 0; z < 8; z++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					c := geom.Coord3{X: x, Y: y, Z: z}
					yield(c, c)
				}
			}
		}
	})
	send := m.Counters()
	m.ResetCounters()
	Remap(RemapAliased, dst, src, func(yield func(sc, dc geom.Coord3)) {
		for z := 0; z < 8; z++ {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					c := geom.Coord3{X: x, Y: y, Z: z}
					yield(c, c)
				}
			}
		}
	})
	aliased := m.Counters()
	// Identity remap: all local either way, but the send path pays the
	// general-addressing overhead — the effect Figure 7 measures.
	if send.CommCycles() <= 10*aliased.CommCycles()+aliased.CopyCycles() {
		t.Errorf("send cycles %.0f not >> aliased cycles %.0f",
			send.CommCycles(), aliased.CommCycles()+aliased.CopyCycles())
	}
}

func TestBroadcastCosts(t *testing.T) {
	m := testMachine(t, 64)
	m.ResetCounters()
	m.Broadcast(144, 0) // 12x12 matrix to all 256 VUs
	all := m.Counters().CommCycles()
	m.ResetCounters()
	m.Broadcast(144, 8) // grouped replication among 8 VUs
	grouped := m.Counters().CommCycles()
	if grouped >= all {
		t.Errorf("grouped broadcast (%.0f) not cheaper than full (%.0f)", grouped, all)
	}
	m.ResetCounters()
	m.AllToAllBroadcast(144, 0)
	if m.Counters().BcastWords == 0 {
		t.Error("all-to-all recorded no words")
	}
	m.ResetCounters()
	m.ReduceSum(10)
	if m.Counters().CommCycles() == 0 {
		t.Error("reduce recorded no cycles")
	}
}

func TestChargeComputeAndImbalance(t *testing.T) {
	m := testMachine(t, 2)
	m.ChargeCompute(0, 1000, 0.5)
	m.ChargeCompute(1, 1000, 1.0)
	if m.ComputeCycles(0) != 2000 || m.ComputeCycles(1) != 1000 {
		t.Errorf("cycles = %g, %g", m.ComputeCycles(0), m.ComputeCycles(1))
	}
	maxC, meanC := m.MaxComputeCycles()
	if maxC != 2000 {
		t.Errorf("max = %g", maxC)
	}
	if meanC != 3000/8.0 {
		t.Errorf("mean = %g", meanC)
	}
	if m.Counters().Flops != 2000 {
		t.Errorf("flops = %d", m.Counters().Flops)
	}
	m.ChargeCompute(2, 100, 0) // efficiency 0 treated as 1
	if m.ComputeCycles(2) != 100 {
		t.Errorf("eff=0 cycles = %g", m.ComputeCycles(2))
	}
}

func TestGemmEfficiencyShape(t *testing.T) {
	c := DefaultCostModel()
	e12 := c.GemmEfficiency(12)
	e72 := c.GemmEfficiency(72)
	if !(e12 > 0.6 && e12 < 0.8) {
		t.Errorf("GemmEfficiency(12) = %.3f, want ~0.74 band", e12)
	}
	if !(e72 > 0.8 && e72 < 0.9) {
		t.Errorf("GemmEfficiency(72) = %.3f, want ~0.85 band", e72)
	}
	if e72 <= e12 {
		t.Error("efficiency must increase with K")
	}
}

func TestSortByKeysSortsAndCounts(t *testing.T) {
	m := testMachine(t, 2)
	rng := rand.New(rand.NewSource(72))
	n := 1000
	keys := make([]uint64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(50))
		vals[i] = float64(keys[i])*1000 + float64(i%7)
	}
	a := m.NewArray1D(vals)
	m.ResetCounters()
	perm := SortByKeys(m, keys, a)
	for i := 1; i < n; i++ {
		if keys[perm[i-1]] > keys[perm[i]] {
			t.Fatal("not sorted")
		}
	}
	// Attribute array permuted consistently.
	for i := range a.Data {
		if int(a.Data[i]/1000) != int(keys[perm[i]]) {
			t.Fatalf("attribute not permuted at %d", i)
		}
	}
	// Stability: equal keys preserve original order.
	for i := 1; i < n; i++ {
		if keys[perm[i-1]] == keys[perm[i]] && perm[i-1] > perm[i] {
			t.Fatal("sort not stable")
		}
	}
	if m.Counters().SendCalls != 1 {
		t.Error("sort did not record a send")
	}
}

func TestSegmentedSumScan(t *testing.T) {
	m := testMachine(t, 2)
	a := m.NewArray1D([]float64{1, 2, 3, 4, 5, 6})
	starts := []bool{true, false, false, true, false, false}
	SegmentedSumScan(m, a, starts)
	want := []float64{1, 3, 6, 4, 9, 15}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("scan[%d] = %g, want %g", i, a.Data[i], want[i])
		}
	}
}

func TestArray1DLayout(t *testing.T) {
	m := testMachine(t, 2) // 8 VUs
	a := m.NewArray1D(make([]float64, 16))
	if a.Len() != 16 {
		t.Errorf("Len = %d", a.Len())
	}
	if a.VUOf(0) != 0 || a.VUOf(15) != 7 {
		t.Errorf("VUOf ends = %d, %d", a.VUOf(0), a.VUOf(15))
	}
}

func TestCountersSubAndSnapshot(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(4, 1)
	before := m.Counters()
	g.CShift(AxisX, 1)
	after := m.Counters()
	d := after.Sub(before)
	if d.CShifts != 1 {
		t.Errorf("delta CShifts = %d", d.CShifts)
	}
	if d.CommCycles() <= 0 {
		t.Error("delta comm cycles not positive")
	}
}

func TestMachineString(t *testing.T) {
	m := testMachine(t, 4)
	if m.String() != "Machine(4 nodes x 4 VUs)" {
		t.Errorf("String = %q", m.String())
	}
}
