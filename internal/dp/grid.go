package dp

import (
	"fmt"
	"math"

	"nbody/internal/blas"
	"nbody/internal/geom"
)

func bitsFromFloat(f float64) uint64 { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Grid3 is a block-distributed 3-D array of Vlen-word box vectors: the
// simulator's version of the paper's 4-D potential arrays (three parallel
// spatial axes plus one serial axis local to a VU). Each VU owns a
// contiguous subgrid slab stored row-major (z, y, x, vector element).
type Grid3 struct {
	m      *Machine
	N      int // boxes per axis (power of two)
	Vlen   int // words per box
	Layout geom.Layout3
	slabs  [][]float64
}

// NewGrid3 allocates a zeroed grid of extent n^3 with vlen words per box,
// block-distributed over the machine's VUs with the run-time system's
// default balanced layout (minimal surface-to-volume subgrids). If there
// are fewer boxes than VUs, the grid occupies a subset of the VUs (one box
// per VU on the lowest-numbered VUs), which is how levels near the root of
// the hierarchy behave.
func (m *Machine) NewGrid3(n, vlen int) *Grid3 {
	if !geom.IsPow2(n) {
		panic(fmt.Sprintf("dp: grid extent %d not a power of two", n))
	}
	nvu := m.NumVUs()
	if n*n*n < nvu {
		nvu = n * n * n
	}
	l := geom.BalancedLayout3(n, nvu)
	g := &Grid3{m: m, N: n, Vlen: vlen, Layout: l, slabs: make([][]float64, nvu)}
	sx, sy, sz := l.Subgrid()
	for vu := range g.slabs {
		g.slabs[vu] = make([]float64, sx*sy*sz*vlen)
	}
	return g
}

// NumVUsUsed returns the number of VUs holding a slab of this grid.
func (g *Grid3) NumVUsUsed() int { return len(g.slabs) }

// SubgridDims returns the per-VU subgrid extents.
func (g *Grid3) SubgridDims() (sx, sy, sz int) { return g.Layout.Subgrid() }

// At returns the vector of box c as a mutable view.
func (g *Grid3) At(c geom.Coord3) []float64 {
	vu := g.Layout.VUOf(c)
	off := g.Layout.LocalOf(c) * g.Vlen
	return g.slabs[vu][off : off+g.Vlen]
}

// Slab returns VU vu's raw subgrid storage (the array-aliasing view of
// Section 3: an alias that "separates the VU address from the local memory
// address").
func (g *Grid3) Slab(vu int) []float64 { return g.slabs[vu] }

// LocalIndex returns the slab word offset of local subgrid coordinate
// (lx, ly, lz).
func (g *Grid3) LocalIndex(lx, ly, lz int) int {
	sx, sy, _ := g.Layout.Subgrid()
	return ((lz*sy+ly)*sx + lx) * g.Vlen
}

// Zero clears the grid without charging any cost (allocation-time zeroing).
func (g *Grid3) Zero() {
	for _, s := range g.slabs {
		for i := range s {
			s[i] = 0
		}
	}
}

// Clone returns a deep copy sharing the machine and layout; the copy is
// charged as a local copy of every word.
func (g *Grid3) Clone() *Grid3 {
	ng := &Grid3{m: g.m, N: g.N, Vlen: g.Vlen, Layout: g.Layout, slabs: make([][]float64, len(g.slabs))}
	for vu := range g.slabs {
		ng.slabs[vu] = append([]float64(nil), g.slabs[vu]...)
	}
	words := int64(g.N) * int64(g.N) * int64(g.N) * int64(g.Vlen)
	g.chargeLocal(words)
	return ng
}

// ForEachVU runs fn for every VU slab in parallel (the data-parallel
// "elementwise" execution mode). fn must only touch its own slab.
func (g *Grid3) ForEachVU(fn func(vu int, slab []float64)) {
	blas.Parallel(len(g.slabs), func(vu int) { fn(vu, g.slabs[vu]) })
}

// ForEachBox runs fn for every box in parallel over VUs, passing the box
// coordinate and its vector.
func (g *Grid3) ForEachBox(fn func(c geom.Coord3, v []float64)) {
	sx, sy, sz := g.Layout.Subgrid()
	px, py, _ := g.Layout.VUGrid()
	g.ForEachVU(func(vu int, slab []float64) {
		vx := vu % px
		vy := vu / px % py
		vz := vu / (px * py)
		for lz := 0; lz < sz; lz++ {
			for ly := 0; ly < sy; ly++ {
				for lx := 0; lx < sx; lx++ {
					c := geom.Coord3{X: vx*sx + lx, Y: vy*sy + ly, Z: vz*sz + lz}
					off := ((lz*sy+ly)*sx + lx) * g.Vlen
					fn(c, slab[off:off+g.Vlen])
				}
			}
		}
	})
}

func (g *Grid3) chargeLocal(words int64) {
	c := &g.m.counters
	atomicAdd64(&c.LocalWords, words)
	c.addCopyCycles(float64(words) * g.m.Cost.CopyCyclesPerWord / float64(maxInt(len(g.slabs), 1)))
}

func (g *Grid3) chargeOffVU(words int64) {
	c := &g.m.counters
	atomicAdd64(&c.OffVUWords, words)
	c.addCommCycles(float64(words) * g.m.Cost.ShiftCyclesPerWord / float64(maxInt(len(g.slabs), 1)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
