package dp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nbody/internal/geom"
)

func TestCShiftComposition(t *testing.T) {
	// Shifting by a then b along the same axis equals shifting by a+b
	// (data identity; the counters differ, which is the whole point of the
	// linearized strategies).
	m := testMachine(t, 2)
	g := m.NewGrid3(8, 1)
	rng := rand.New(rand.NewSource(141))
	g.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = rng.Float64() })
	f := func(aRaw, bRaw int8) bool {
		a, b := int(aRaw%8), int(bRaw%8)
		two := g.CShift(AxisY, a).CShift(AxisY, b)
		one := g.CShift(AxisY, a+b)
		ok := true
		two.ForEachBox(func(c geom.Coord3, v []float64) {
			if v[0] != one.At(c)[0] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCShiftAxesCommute(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(4, 2)
	rng := rand.New(rand.NewSource(142))
	g.ForEachBox(func(c geom.Coord3, v []float64) { v[0], v[1] = rng.Float64(), rng.Float64() })
	xy := g.CShift(AxisX, 1).CShift(AxisY, -2)
	yx := g.CShift(AxisY, -2).CShift(AxisX, 1)
	xy.ForEachBox(func(c geom.Coord3, v []float64) {
		w := yx.At(c)
		if v[0] != w[0] || v[1] != w[1] {
			t.Fatalf("axis shifts do not commute at %v", c)
		}
	})
}

func TestCloneIsDeepAndCharged(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(4, 1)
	g.At(geom.Coord3{X: 1, Y: 2, Z: 3})[0] = 5
	before := m.Counters()
	cl := g.Clone()
	d := m.Counters().Sub(before)
	if d.LocalWords != 4*4*4 {
		t.Errorf("clone charged %d local words, want 64", d.LocalWords)
	}
	cl.At(geom.Coord3{X: 1, Y: 2, Z: 3})[0] = 9
	if g.At(geom.Coord3{X: 1, Y: 2, Z: 3})[0] != 5 {
		t.Error("clone aliases the original")
	}
}

func TestSlabLocalIndexConsistency(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(8, 3)
	// Writing through At must land where Slab+LocalIndex says.
	c := geom.Coord3{X: 5, Y: 6, Z: 1}
	g.At(c)[2] = 42
	vu := g.Layout.VUOf(c)
	sx, sy, _ := g.Layout.Subgrid()
	px, py, _ := g.Layout.VUGrid()
	vx := vu % px
	vy := vu / px % py
	vz := vu / (px * py)
	lx, ly, lz := c.X-vx*sx, c.Y-vy*sy, c.Z-vz*sy // note: sz==sy here
	off := g.LocalIndex(lx, ly, lz)
	if got := g.Slab(vu)[off+2]; got != 42 {
		t.Errorf("Slab/LocalIndex disagree with At: %g", got)
	}
}

func TestZeroClearsGrid(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(4, 2)
	g.ForEachBox(func(c geom.Coord3, v []float64) { v[0] = 1 })
	g.Zero()
	g.ForEachBox(func(c geom.Coord3, v []float64) {
		if v[0] != 0 || v[1] != 0 {
			t.Fatalf("Zero left data at %v", c)
		}
	})
}

func TestCostModelSeconds(t *testing.T) {
	c := DefaultCostModel()
	if got := c.Seconds(40e6); got != 1.0 {
		t.Errorf("40M cycles at 40 MHz = %g s, want 1", got)
	}
}

func TestGridShapeMismatchesPanic(t *testing.T) {
	m := testMachine(t, 2)
	g := m.NewGrid3(4, 1)
	h := m.NewGrid3(8, 1)
	for name, fn := range map[string]func(){
		"CShiftInto": func() { g.CShiftInto(h, AxisX, 1) },
		"Add":        func() { g.Add(h) },
		"NewGrid3":   func() { m.NewGrid3(3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
