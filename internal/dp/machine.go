// Package dp simulates the data-parallel machine model of the CM-5/5E for
// which Hu & Johnsson wrote their Connection Machine Fortran implementation:
// a collection of processing nodes, each with four Vector Units (VUs), with
// block-distributed multidimensional arrays, CSHIFT communication, array
// aliasing (explicit VU-subgrid addressing), segmented scans, general sends,
// and broadcast/spread collectives.
//
// Every primitive both (a) actually moves the data, in parallel over the
// host's cores, so algorithms built on the package compute real answers, and
// (b) maintains element-accurate communication counters and a calibrated
// cycle cost model, so the data-motion and efficiency experiments of the
// paper (Tables 3-4, Figures 7-9) are reproducible as machine-checkable
// quantities rather than 1996 wall clocks. See DESIGN.md for the
// substitution argument.
package dp

import (
	"fmt"

	"nbody/internal/geom"
)

// Machine is a simulated distributed-memory machine: Nodes processing nodes
// of VUsPerNode vector units each. All layouts and costs are expressed per
// VU, following the paper ("for clarity, we will use VUs instead of
// processing nodes").
type Machine struct {
	Nodes      int
	VUsPerNode int
	Cost       CostModel

	counters Counters
	perVU    []vuState
}

type vuState struct {
	computeCycles float64
	_             [7]float64 // pad to a cache line to avoid false sharing
}

// NewMachine creates a machine with a power-of-two number of nodes. The
// CM-5/5E had 4 VUs per node; vusPerNode 0 selects that default.
func NewMachine(nodes, vusPerNode int, cost CostModel) (*Machine, error) {
	if !geom.IsPow2(nodes) {
		return nil, fmt.Errorf("dp: nodes = %d is not a power of two", nodes)
	}
	if vusPerNode == 0 {
		vusPerNode = 4
	}
	if !geom.IsPow2(vusPerNode) {
		return nil, fmt.Errorf("dp: vusPerNode = %d is not a power of two", vusPerNode)
	}
	cost = cost.normalize()
	return &Machine{
		Nodes:      nodes,
		VUsPerNode: vusPerNode,
		Cost:       cost,
		perVU:      make([]vuState, nodes*vusPerNode),
	}, nil
}

// NumVUs returns the total number of vector units.
func (m *Machine) NumVUs() int { return m.Nodes * m.VUsPerNode }

// NodeOf returns the processing node owning a VU. VUs of a node are
// consecutive, matching the CM addressing where the VU index extends the
// node address with its low bits.
func (m *Machine) NodeOf(vu int) int { return vu / m.VUsPerNode }

// String implements fmt.Stringer.
func (m *Machine) String() string {
	return fmt.Sprintf("Machine(%d nodes x %d VUs)", m.Nodes, m.VUsPerNode)
}

// ChargeCompute records flops executed on one VU at a given arithmetic
// efficiency (fraction of the VU's peak flop rate actually attained, e.g.
// the gemm efficiency for the matrix shape in flight).
func (m *Machine) ChargeCompute(vu int, flops int64, efficiency float64) {
	if efficiency <= 0 {
		efficiency = 1
	}
	m.perVU[vu].computeCycles += float64(flops) / (m.Cost.FlopsPerCycle * efficiency)
	m.counters.addFlops(flops)
}

// ComputeCycles returns the modeled compute cycles accumulated by a VU.
func (m *Machine) ComputeCycles(vu int) float64 { return m.perVU[vu].computeCycles }

// MaxComputeCycles returns the critical-path compute cycles over all VUs
// (load imbalance shows up as max > mean).
func (m *Machine) MaxComputeCycles() (maxC, meanC float64) {
	for i := range m.perVU {
		c := m.perVU[i].computeCycles
		if c > maxC {
			maxC = c
		}
		meanC += c
	}
	meanC /= float64(len(m.perVU))
	return maxC, meanC
}

// AccountSend records the data motion of a caller-implemented general send
// (used by algorithm layers that route data themselves, e.g. the particle
// reshape): off words moved between VUs, local words that stayed on-VU.
func (m *Machine) AccountSend(off, local int64) {
	c := &m.counters
	atomicAdd64(&c.SendCalls, 1)
	atomicAdd64(&c.SendWords, off)
	atomicAdd64(&c.SendLocal, local)
	nvu := float64(m.NumVUs())
	c.addCommCycles(m.Cost.SendLatencyCycles + float64(off)*m.Cost.SendCyclesPerWord/nvu)
	c.addCopyCycles(float64(local) * m.Cost.CopyCyclesPerWord / nvu)
}

// AccountGhostFetch records an aliased ghost-region exchange implemented by
// the caller: calls CSHIFT-like operations, off words moved between VUs and
// local words sectioned within VUs.
func (m *Machine) AccountGhostFetch(calls, off, local int64) {
	c := &m.counters
	atomicAdd64(&c.CShifts, calls)
	atomicAdd64(&c.OffVUWords, off)
	atomicAdd64(&c.LocalWords, local)
	nvu := float64(m.NumVUs())
	c.addCommCycles(float64(calls)*m.Cost.ShiftLatencyCycles + float64(off)*m.Cost.ShiftCyclesPerWord/nvu)
	c.addCopyCycles(float64(local) * m.Cost.CopyCyclesPerWord / nvu)
}

// AccountCopy records caller-implemented local copies.
func (m *Machine) AccountCopy(words int64) {
	c := &m.counters
	atomicAdd64(&c.LocalWords, words)
	c.addCopyCycles(float64(words) * m.Cost.CopyCyclesPerWord / float64(m.NumVUs()))
}

// Counters returns a snapshot of the accumulated communication counters.
func (m *Machine) Counters() Counters { return m.counters.snapshot() }

// ResetCounters zeroes all counters and per-VU compute cycles.
func (m *Machine) ResetCounters() {
	m.counters = Counters{}
	for i := range m.perVU {
		m.perVU[i].computeCycles = 0
	}
}
