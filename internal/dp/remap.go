package dp

import "nbody/internal/geom"

// RemapKind selects the mechanism (and therefore the cost) used to move
// boxes between differently-shaped grids — the subject of Section 3.3.2 and
// Figure 7.
type RemapKind int

// The mechanisms.
const (
	// RemapSend models the CMF compiler's general run-time send: correct
	// for any pair of layouts, but its address-computation overhead is
	// linear in the array size with a large constant, even when no
	// inter-node data movement occurs.
	RemapSend RemapKind = iota
	// RemapAliased models array-aliasing + array-sectioning copies: local
	// words cost a plain copy; only words whose source and destination VUs
	// differ pay network cost (no per-word addressing overhead).
	RemapAliased
)

// Remap copies nBoxes box vectors from src to dst, with dstOf giving the
// destination coordinate of each source coordinate produced by the iterator
// iterate. It returns the number of words that crossed VU boundaries.
func Remap(kind RemapKind, dst, src *Grid3, iterate func(yield func(sc, dc geom.Coord3))) int64 {
	var off, local int64
	iterate(func(sc, dc geom.Coord3) {
		copy(dst.At(dc), src.At(sc))
		if src.Layout.VUOf(sc) == dst.Layout.VUOf(dc) && src.NumVUsUsed() == dst.NumVUsUsed() {
			local += int64(src.Vlen)
		} else {
			off += int64(src.Vlen)
		}
	})
	m := src.m
	c := &m.counters
	nvu := float64(maxInt(dst.NumVUsUsed(), 1))
	switch kind {
	case RemapSend:
		atomicAdd64(&c.SendCalls, 1)
		atomicAdd64(&c.SendWords, off)
		atomicAdd64(&c.SendLocal, local)
		// The run-time system's send-address computation is linear in the
		// (destination) ARRAY size, not in the number of elements actually
		// selected — the overhead Section 3.3.2 and Figure 7 are about.
		arrayWords := float64(dst.N) * float64(dst.N) * float64(dst.N) * float64(dst.Vlen)
		c.addCommCycles(m.Cost.SendLatencyCycles + arrayWords*m.Cost.SendOverheadPerWord/nvu +
			float64(off)*m.Cost.SendCyclesPerWord/nvu)
		c.addCopyCycles(float64(local) * m.Cost.CopyCyclesPerWord / nvu)
	default:
		atomicAdd64(&c.OffVUWords, off)
		atomicAdd64(&c.LocalWords, local)
		c.addCommCycles(float64(off) * m.Cost.SendCyclesPerWord / nvu)
		if off > 0 {
			c.addCommCycles(m.Cost.ShiftLatencyCycles)
		}
		c.addCopyCycles(float64(local) * m.Cost.CopyCyclesPerWord / nvu)
	}
	return off
}

// OctantGather fills dst (a parent-level grid of extent n) with the child
// vectors of one octant from src (extent 2n): dst[p] = src[child(p, oct)].
// The embedding of the hierarchy preserves locality, so with at least one
// parent box per VU this is a pure local copy (the property Section 3.1's
// embedding is designed for); near the root it degenerates to sends.
func OctantGather(kind RemapKind, dst, src *Grid3, oct int) int64 {
	if src.N != 2*dst.N || src.Vlen != dst.Vlen {
		panic("dp: OctantGather shape mismatch")
	}
	return Remap(kind, dst, src, func(yield func(sc, dc geom.Coord3)) {
		n := dst.N
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					p := geom.Coord3{X: x, Y: y, Z: z}
					yield(p.Child(oct), p)
				}
			}
		}
	})
}

// OctantScatterAdd accumulates src (parent-level extent n) into one octant
// of dst (extent 2n): dst[child(p, oct)] += src[p]. The movement cost
// mirrors OctantGather; the addition itself is local arithmetic.
func OctantScatterAdd(kind RemapKind, dst, src *Grid3, oct int) int64 {
	if dst.N != 2*src.N || src.Vlen != dst.Vlen {
		panic("dp: OctantScatterAdd shape mismatch")
	}
	tmp := dst.m.NewGrid3(dst.N, dst.Vlen)
	off := Remap(kind, tmp, src, func(yield func(sc, dc geom.Coord3)) {
		n := src.N
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					p := geom.Coord3{X: x, Y: y, Z: z}
					yield(p, p.Child(oct))
				}
			}
		}
	})
	// Accumulate only the scattered octant.
	n := src.N
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				c := geom.Coord3{X: x, Y: y, Z: z}.Child(oct)
				d := dst.At(c)
				s := tmp.At(c)
				for i := range d {
					d[i] += s[i]
				}
			}
		}
	}
	return off
}
