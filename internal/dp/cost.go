package dp

import (
	"math"
	"sync/atomic"
)

// CostModel converts counted events into machine cycles. The defaults are
// calibrated to the CM-5E figures reported in the paper: 40 MHz VUs with one
// (multiply-add pipelined) flop per cycle — 160 Mflops/s peak per 4-VU node;
// matrix-multiplication efficiency rising with K the way the measured
// 119 Mflops/s/PN (K = 12) and 136 Mflops/s/PN (K = 72) figures do; local
// copies at 2 cycles per word (the paper charges a K-vector copy 2K cycles);
// a fat-tree network whose per-word cost dominates large transfers and whose
// per-operation overhead dominates small ones; and a general send whose
// address-computation overhead is linear in the array size with a large
// constant (Section 3.3.2).
type CostModel struct {
	ClockMHz      float64 // VU clock; CM-5E: 40
	FlopsPerCycle float64 // per VU; CM-5E VU: 1

	CopyCyclesPerWord float64 // local memory copy/mask cost

	ShiftLatencyCycles  float64 // per CSHIFT call (software + network startup)
	ShiftCyclesPerWord  float64 // per word crossing a VU boundary
	SendOverheadPerWord float64 // general-send address computation, per word of the array
	SendCyclesPerWord   float64 // per word actually moved between VUs
	SendLatencyCycles   float64 // per send call

	// Broadcast runs on the CM-5's dedicated control network: a flat
	// startup, a small per-hop term, and a per-word cost that grows weakly
	// with the group size. Calibrated so that replicating a K x K matrix
	// is ~3x (K=12) to ~12x (K=72) faster than computing it, the paper's
	// measurement, and so that grouped replication saves the factors of
	// Figure 8.
	BcastLatencyCycles float64 // flat startup
	BcastHopCycles     float64 // per log2(group) hop
	BcastCyclesPerWord float64 // per word
	BcastWordHopFactor float64 // fractional per-word growth per hop

	// DirectEfficiency is the fraction of peak attained by the near-field
	// particle-particle kernel (distance + reciprocal square root), and
	// KernelEfficiency that of the scalar Poisson-kernel evaluations
	// (particle-box interactions). Both are well below the gemm
	// efficiencies, as on the CM-5E.
	DirectEfficiency float64
	KernelEfficiency float64
}

// DefaultCostModel returns the CM-5E-calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockMHz:            40,
		FlopsPerCycle:       1,
		CopyCyclesPerWord:   2,
		ShiftLatencyCycles:  3000,
		ShiftCyclesPerWord:  10,
		SendOverheadPerWord: 60,
		SendCyclesPerWord:   12,
		SendLatencyCycles:   20000,
		BcastLatencyCycles:  140,
		BcastHopCycles:      100,
		BcastCyclesPerWord:  10,
		BcastWordHopFactor:  0.07,
		DirectEfficiency:    0.45,
		KernelEfficiency:    0.35,
	}
}

func (c CostModel) normalize() CostModel {
	if c.ClockMHz == 0 {
		return DefaultCostModel()
	}
	return c
}

// GemmEfficiency models the fraction of VU peak attained by a K x K by
// K x n matrix multiplication. Calibrated so K = 12 lands near the paper's
// 0.74 peak fraction and K = 72 near 0.85.
func (c CostModel) GemmEfficiency(k int) float64 {
	return 0.9 * float64(k) / (float64(k) + 4)
}

// Seconds converts modeled cycles to seconds at the machine clock.
func (c CostModel) Seconds(cycles float64) float64 { return cycles / (c.ClockMHz * 1e6) }

// ModelSolveCycles predicts the machine cycles of one whole Anderson-method
// solve of the given shape from the calibrated model: near-field
// particle-particle work at DirectEfficiency, the K x K interactive-field
// translations at GemmEfficiency, the up/down tree sweeps, and the
// per-particle kernel evaluations at KernelEfficiency. The formula assumes
// the paper's uniform distribution (leaf occupancy n/8^depth, 26 near
// neighbors, 875 interactive translations per box — 189 with supernodes),
// so it is a seed, not an oracle: callers that need wall-clock accuracy on
// a real host scale it by a measured calibration factor and refine online
// (internal/serve's admission estimator does exactly that; ROADMAP item
// 5's autotuner is the next consumer).
//
// The prediction is pure float64 arithmetic with no allocation and is
// total: any shape — zero or negative n, absurd depth or k — yields a
// non-negative, non-NaN cycle count (+Inf when the shape genuinely
// overflows), so admission paths can call it on unvalidated input.
func (c CostModel) ModelSolveCycles(n, depth, k int, supernodes bool) float64 {
	c = c.normalize()
	if n <= 0 || k <= 0 {
		return 0
	}
	if depth < 2 {
		depth = 2
	}
	if depth > 16 {
		depth = 16 // 8^16 leaves already dwarfs any admissible request
	}
	fn := float64(n)
	fk := float64(k)
	leaves := math.Pow(8, float64(depth))
	occupancy := fn / leaves

	// Near field: each particle against its own leaf and the 26 neighbors,
	// symmetry halving the pair count; 9 flops per pair (internal/direct).
	nearFlops := fn * occupancy * (27.0 / 2.0) * 9
	// Interactive field: per box of every level below the root's children,
	// one K x K matrix-vector translation per interaction-list entry.
	perBox := 875.0
	if supernodes {
		perBox = 189
	}
	var t2Boxes float64
	for l := 2; l <= depth; l++ {
		t2Boxes += math.Pow(8, float64(l))
	}
	t2Flops := t2Boxes * perBox * 2 * fk * fk
	// Up/down sweeps: one K x K parent<->child translation per box per
	// direction.
	treeFlops := t2Boxes * 2 * 2 * fk * fk
	// Leaf evaluations: forming each leaf's outer expansion from its
	// particles and evaluating the inner expansion back at them, ~6 flops
	// per particle-point kernel term.
	evalFlops := 2 * fn * fk * 6

	cycles := nearFlops/c.DirectEfficiency +
		(t2Flops+treeFlops)/c.GemmEfficiency(k) +
		evalFlops/c.KernelEfficiency
	cycles /= c.FlopsPerCycle
	if math.IsNaN(cycles) || cycles < 0 {
		return 0
	}
	return cycles
}

// Counters accumulates the data-motion events of all primitives. All counts
// are in 8-byte words (one float64 potential value = one word) except where
// named otherwise.
type Counters struct {
	CShifts       int64 // number of CSHIFT operations issued
	OffVUWords    int64 // words moved between VUs by shifts
	LocalWords    int64 // words copied within a VU by shifts and sections
	SendCalls     int64
	SendWords     int64 // words routed between VUs by general sends
	SendLocal     int64 // send words that stayed on-VU
	BcastCalls    int64
	BcastWords    int64 // words broadcast (per destination)
	Flops         int64
	commCycleBits uint64 // float64 bits, updated atomically
	copyCycleBits uint64
}

func (c *Counters) addFlops(f int64) { atomic.AddInt64(&c.Flops, f) }

func (c *Counters) addCommCycles(v float64) { atomicAddFloat(&c.commCycleBits, v) }
func (c *Counters) addCopyCycles(v float64) { atomicAddFloat(&c.copyCycleBits, v) }

// CommCycles returns the modeled inter-VU communication cycles.
func (c Counters) CommCycles() float64 { return floatFromBits(c.commCycleBits) }

// CopyCycles returns the modeled local copy cycles.
func (c Counters) CopyCycles() float64 { return floatFromBits(c.copyCycleBits) }

func (c *Counters) snapshot() Counters {
	return Counters{
		CShifts:       atomic.LoadInt64(&c.CShifts),
		OffVUWords:    atomic.LoadInt64(&c.OffVUWords),
		LocalWords:    atomic.LoadInt64(&c.LocalWords),
		SendCalls:     atomic.LoadInt64(&c.SendCalls),
		SendWords:     atomic.LoadInt64(&c.SendWords),
		SendLocal:     atomic.LoadInt64(&c.SendLocal),
		BcastCalls:    atomic.LoadInt64(&c.BcastCalls),
		BcastWords:    atomic.LoadInt64(&c.BcastWords),
		Flops:         atomic.LoadInt64(&c.Flops),
		commCycleBits: atomic.LoadUint64(&c.commCycleBits),
		copyCycleBits: atomic.LoadUint64(&c.copyCycleBits),
	}
}

// Sub returns the difference of two snapshots (after - before).
func (c Counters) Sub(before Counters) Counters {
	return Counters{
		CShifts:       c.CShifts - before.CShifts,
		OffVUWords:    c.OffVUWords - before.OffVUWords,
		LocalWords:    c.LocalWords - before.LocalWords,
		SendCalls:     c.SendCalls - before.SendCalls,
		SendWords:     c.SendWords - before.SendWords,
		SendLocal:     c.SendLocal - before.SendLocal,
		BcastCalls:    c.BcastCalls - before.BcastCalls,
		BcastWords:    c.BcastWords - before.BcastWords,
		Flops:         c.Flops - before.Flops,
		commCycleBits: bitsFromFloat(c.CommCycles() - before.CommCycles()),
		copyCycleBits: bitsFromFloat(c.CopyCycles() - before.CopyCycles()),
	}
}

func atomicAddFloat(bits *uint64, v float64) {
	for {
		old := atomic.LoadUint64(bits)
		nw := bitsFromFloat(floatFromBits(old) + v)
		if atomic.CompareAndSwapUint64(bits, old, nw) {
			return
		}
	}
}
