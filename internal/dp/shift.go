package dp

import (
	"sync/atomic"

	"nbody/internal/geom"
)

func atomicAdd64(p *int64, v int64) { atomic.AddInt64(p, v) }

// Axis identifies a spatial axis of a Grid3.
type Axis int

// The three axes. X is the fastest-varying (rightmost) axis, which on the
// CM addressing uses the lowest-order VU address bits — the axis the paper
// prefers to shift along (Section 3.3.1).
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// CShift returns a new grid with dst[c] = src[c + s along axis] (circular),
// the CMF CSHIFT. The returned grid shares the source's layout. Cost: every
// word is either moved between VUs (those whose source lies in another VU's
// subgrid) or copied locally; one shift latency is charged per call,
// regardless of offset, matching the run-time system behavior the paper
// describes (multi-axis CSHIFTs are sequences of single-axis shifts).
func (g *Grid3) CShift(axis Axis, s int) *Grid3 {
	dst := g.m.NewGrid3(g.N, g.Vlen)
	g.CShiftInto(dst, axis, s)
	return dst
}

// CShiftInto is CShift writing into an existing grid of identical shape.
func (g *Grid3) CShiftInto(dst *Grid3, axis Axis, s int) {
	if dst.N != g.N || dst.Vlen != g.Vlen {
		panic("dp: CShiftInto shape mismatch")
	}
	n := g.N
	s = ((s % n) + n) % n
	sx, sy, sz := g.Layout.Subgrid()
	// Count boundary crossings per subgrid row along the shifted axis
	// (translation-invariant across VUs; see the addressing argument in the
	// package tests).
	var axisExtent int
	switch axis {
	case AxisX:
		axisExtent = sx
	case AxisY:
		axisExtent = sy
	default:
		axisExtent = sz
	}
	px := n / axisExtent // VU count along this axis
	cross := 0
	for l := 0; l < axisExtent; l++ {
		if q := (l + s) / axisExtent; q%px != 0 {
			cross++
		}
	}
	totalBoxes := int64(n) * int64(n) * int64(n)
	offBoxes := totalBoxes * int64(cross) / int64(axisExtent)
	offWords := offBoxes * int64(g.Vlen)
	localWords := (totalBoxes - offBoxes) * int64(g.Vlen)

	c := &g.m.counters
	atomicAdd64(&c.CShifts, 1)
	g.chargeOffVU(offWords)
	g.chargeLocal(localWords)
	c.addCommCycles(g.m.Cost.ShiftLatencyCycles)

	// Move the data: parallel over destination VUs.
	dst.ForEachBox(func(cd geom.Coord3, v []float64) {
		sc := cd
		switch axis {
		case AxisX:
			sc.X = (cd.X + s) % n
		case AxisY:
			sc.Y = (cd.Y + s) % n
		default:
			sc.Z = (cd.Z + s) % n
		}
		copy(v, g.At(sc))
	})
}

// Add accumulates src into g elementwise (no communication; both grids must
// share shape and layout).
func (g *Grid3) Add(src *Grid3) {
	if src.N != g.N || src.Vlen != g.Vlen {
		panic("dp: Add shape mismatch")
	}
	g.ForEachVU(func(vu int, slab []float64) {
		s := src.slabs[vu]
		for i := range slab {
			slab[i] += s[i]
		}
	})
}
