package dp

import (
	"sort"

	"nbody/internal/blas"
)

// Array1D is a 1-D array block-distributed over the VUs: elements
// [vu*chunk, (vu+1)*chunk) live on VU vu (the layout of the input particle
// attribute arrays in the paper, Section 3.1).
type Array1D struct {
	m     *Machine
	Data  []float64
	chunk int
}

// NewArray1D wraps data (taking ownership) as a block-distributed array.
func (m *Machine) NewArray1D(data []float64) *Array1D {
	n := len(data)
	chunk := (n + m.NumVUs() - 1) / m.NumVUs()
	if chunk == 0 {
		chunk = 1
	}
	return &Array1D{m: m, Data: data, chunk: chunk}
}

// VUOf returns the VU owning element i.
func (a *Array1D) VUOf(i int) int { return i / a.chunk }

// Len returns the number of elements.
func (a *Array1D) Len() int { return len(a.Data) }

// SortByKeys sorts a set of parallel attribute arrays by uint64 keys — the
// paper's coordinate sort. The returned permutation perm satisfies
// out[i] = in[perm[i]]. The cost model charges a parallel radix/sample sort:
// O(n/P) work per VU plus routing of every element that changes VU.
func SortByKeys(m *Machine, keys []uint64, attrs ...*Array1D) []int {
	n := len(keys)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return keys[perm[i]] < keys[perm[j]] })

	var moved int64
	if n > 0 {
		chunk := (n + m.NumVUs() - 1) / m.NumVUs()
		if len(attrs) > 0 {
			chunk = attrs[0].chunk
		}
		for i, p := range perm {
			if i/chunk != p/chunk {
				moved++
			}
		}
	}
	for _, a := range attrs {
		tmp := make([]float64, n)
		for i, p := range perm {
			tmp[i] = a.Data[p]
		}
		copy(a.Data, tmp)
	}
	c := &m.counters
	atomicAdd64(&c.SendCalls, 1)
	atomicAdd64(&c.SendWords, moved*int64(len(attrs)))
	atomicAdd64(&c.SendLocal, (int64(n)-moved)*int64(len(attrs)))
	nvu := float64(m.NumVUs())
	// Sort cost: comparison/bucketing passes over the local share plus
	// routing of the moved elements.
	passes := 4.0
	c.addCommCycles(m.Cost.SendLatencyCycles + float64(moved)*float64(len(attrs))*m.Cost.SendCyclesPerWord/nvu)
	c.addCopyCycles(passes * float64(n) / nvu * m.Cost.CopyCyclesPerWord * float64(len(attrs)+1))
	return perm
}

// SegmentedSumScan computes, in place, the inclusive prefix sum of data
// restarting at every index where segmentStart is true. When the segments
// are VU-local (the situation the coordinate sort establishes) the scan
// needs no communication; otherwise a log-depth carry exchange is charged.
func SegmentedSumScan(m *Machine, a *Array1D, segmentStart []bool) {
	crossesVU := false
	var run float64
	for i := range a.Data {
		if segmentStart[i] {
			run = 0
		} else if i > 0 && a.VUOf(i) != a.VUOf(i-1) {
			crossesVU = true
		}
		run += a.Data[i]
		a.Data[i] = run
	}
	c := &m.counters
	nvu := float64(m.NumVUs())
	c.addCopyCycles(2 * float64(len(a.Data)) / nvu * m.Cost.CopyCyclesPerWord)
	if crossesVU {
		c.addCommCycles(m.Cost.BcastLatencyCycles * 2)
	}
}

// ParallelRange runs fn over [0, n) split across the host cores; the
// data-parallel elementwise execution helper for 1-D arrays.
func ParallelRange(n int, fn func(i int)) { blas.Parallel(n, fn) }
