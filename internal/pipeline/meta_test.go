package pipeline_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"nbody/internal/core"
	"nbody/internal/core2"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/geom"
	"nbody/internal/pipeline"
	"nbody/internal/testutil"
)

// The meta-test: every solver's pipeline is declared through the shared
// runner, so every phase of every solver must come with the runner's full
// provisions — a metrics span, a named fault-injection site, and a
// cancellation check before the phase. Rather than trusting each solver's
// declaration, these tests observe the runner's events during real solves
// and check the provisions structurally, plus binary-wide site-name
// uniqueness over the solvers' exported site inventories.

func collect(t *testing.T, solve func() error) []pipeline.Event {
	t.Helper()
	var mu sync.Mutex
	var evs []pipeline.Event
	pipeline.SetObserver(func(ev pipeline.Event) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	})
	defer pipeline.SetObserver(nil)
	if err := solve(); err != nil {
		t.Fatalf("solve: %v", err)
	}
	return evs
}

func randomSystem2(n int) ([]geom.Vec2, []float64) {
	rng := rand.New(rand.NewSource(7))
	pos := make([]geom.Vec2, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec2{X: rng.Float64(), Y: rng.Float64()}
		q[i] = rng.Float64() - 0.5
	}
	return pos, q
}

// solverCase is one registered pipeline: a site inventory, a prefix scoping
// its names, and a solve to observe.
type solverCase struct {
	name   string
	prefix string
	sites  []string // full inventory (superset of what one solve fires)
	solve  func(t *testing.T) error
}

func solverCases(t *testing.T) []solverCase {
	t.Helper()
	pos, q := testutil.RandomSystem(400, 42)
	pos2, q2 := randomSystem2(300)

	coreSolver, err := core.NewSolver(testutil.UnitBox(), core.Config{Degree: 5, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	core2Solver, err := core2.NewSolver(
		geom.Box2{Center: geom.Vec2{X: 0.5, Y: 0.5}, Side: 1.001}, core2.Config{K: 16, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	newDP := func(mg bool) *dpfmm.Solver {
		m, err := dp.NewMachine(8, 4, dp.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := dpfmm.NewSolver(m, testutil.UnitBox(), core.Config{Degree: 5, Depth: 3}, dpfmm.DirectUnaliased)
		if err != nil {
			t.Fatal(err)
		}
		s.MultigridStorage = mg
		return s
	}

	return []solverCase{
		{"core", "core/", core.FaultSitesAll,
			func(*testing.T) error { _, err := coreSolver.Potentials(pos, q); return err }},
		{"core2", "core2/", core2.FaultSites,
			func(*testing.T) error { _, err := core2Solver.Potentials(pos2, q2); return err }},
		{"dpfmm", "dpfmm/", dpfmm.FaultSitesAll,
			func(*testing.T) error { _, err := newDP(false).Potentials(pos, q); return err }},
		{"dpfmm-multigrid", "dpfmm/", dpfmm.FaultSitesAll,
			func(*testing.T) error { _, err := newDP(true).Potentials(pos, q); return err }},
		{"dpfmm-forces", "dpfmm/", dpfmm.FaultSitesAll,
			func(*testing.T) error { _, _, err := newDP(false).Accelerations(pos, q); return err }},
	}
}

// TestEveryPhaseProvisioned runs one solve per registered pipeline and
// checks, from the runner's own event stream, that every executed phase
// carried a span and a fault site: plain phases and nested composite steps
// must name a site scoped to their pipeline, composite phases must record
// nested steps, and the pipeline's declared site inventory must actually be
// exercised (modulo in-worker body sites and configuration-gated sites,
// which are excluded per case).
func TestEveryPhaseProvisioned(t *testing.T) {
	// Sites that one observed solve cannot fire: in-worker body sites emit
	// no runner events, and embed/extract fire only under multigrid storage.
	unobservable := map[string]map[string]bool{
		"core": {core.FaultSiteLeafOuterBody: true, core.FaultSiteNearBody: true},
		"dpfmm": {
			dpfmm.FaultSiteEmbed: true, dpfmm.FaultSiteExtract: true,
		},
		"dpfmm-forces": {
			dpfmm.FaultSiteEmbed: true, dpfmm.FaultSiteExtract: true,
		},
	}
	for _, tc := range solverCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			evs := collect(t, func() error { return tc.solve(t) })
			if len(evs) == 0 {
				t.Fatal("solve produced no pipeline events")
			}
			registered := make(map[string]bool, len(tc.sites))
			for _, s := range tc.sites {
				registered[s] = true
			}
			seen := make(map[string]bool)
			for i, ev := range evs {
				if ev.Composite {
					// A composite phase must record at least one nested
					// step before the pipeline moves on.
					nested := false
					for j := i + 1; j < len(evs) && evs[j].Nested; j++ {
						nested = true
					}
					if !nested {
						t.Errorf("event %d: composite %v phase recorded no nested steps", i, ev.Phase)
					}
					continue
				}
				if ev.Site == "" {
					t.Errorf("event %d: phase %v has no fault site", i, ev.Phase)
					continue
				}
				if !strings.HasPrefix(ev.Site, tc.prefix) {
					t.Errorf("event %d: site %q not scoped to pipeline %q", i, ev.Site, tc.prefix)
				}
				if !registered[ev.Site] {
					t.Errorf("event %d: site %q not in the pipeline's exported inventory", i, ev.Site)
				}
				seen[ev.Site] = true
			}
			for _, s := range tc.sites {
				if !seen[s] && !unobservable[tc.name][s] {
					t.Errorf("registered site %q never exercised by the solve", s)
				}
			}
		})
	}
}

// TestPreCanceledRunsNoPhase checks the runner's between-phase cancellation
// contract at its boundary: a context canceled before the solve must return
// context.Canceled without executing (or observing) a single phase.
func TestPreCanceledRunsNoPhase(t *testing.T) {
	pos, q := testutil.RandomSystem(100, 43)
	pos2, q2 := randomSystem2(100)

	coreSolver, err := core.NewSolver(testutil.UnitBox(), core.Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	core2Solver, err := core2.NewSolver(
		geom.Box2{Center: geom.Vec2{X: 0.5, Y: 0.5}, Side: 1.001}, core2.Config{K: 16, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dp.NewMachine(8, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	dpSolver, err := dpfmm.NewSolver(m, testutil.UnitBox(), core.Config{Degree: 5, Depth: 2}, dpfmm.DirectUnaliased)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name  string
		solve func() error
	}{
		{"core", func() error { _, err := coreSolver.PotentialsCtx(ctx, pos, q); return err }},
		{"core2", func() error { _, err := core2Solver.PotentialsCtx(ctx, pos2, q2); return err }},
		{"dpfmm", func() error { _, err := dpSolver.PotentialsCtx(ctx, pos, q); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			var evs []pipeline.Event
			pipeline.SetObserver(func(ev pipeline.Event) {
				mu.Lock()
				evs = append(evs, ev)
				mu.Unlock()
			})
			defer pipeline.SetObserver(nil)
			err := tc.solve()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled solve returned %v, want context.Canceled", err)
			}
			if len(evs) != 0 {
				t.Errorf("pre-canceled solve still ran %d phases (first: %+v)", len(evs), evs[0])
			}
		})
	}
}

// TestSiteNamesUniqueAcrossBinary checks the binary-wide fault-site
// namespace: every pipeline exports its full site inventory, all names are
// unique, and each is scoped "<pipeline>/...". A duplicate name would make
// fault-matrix results ambiguous between solvers.
func TestSiteNamesUniqueAcrossBinary(t *testing.T) {
	inventories := []struct {
		prefix string
		sites  []string
	}{
		{"core/", core.FaultSitesAll},
		{"core2/", core2.FaultSites},
		{"dpfmm/", dpfmm.FaultSitesAll},
	}
	owner := make(map[string]string)
	for _, inv := range inventories {
		for _, s := range inv.sites {
			if !strings.HasPrefix(s, inv.prefix) {
				t.Errorf("site %q not scoped under %q", s, inv.prefix)
			}
			if prev, dup := owner[s]; dup {
				t.Errorf("site %q registered by both %q and %q", s, prev, inv.prefix)
			}
			owner[s] = inv.prefix
		}
	}
	if len(owner) < 20 {
		t.Errorf("only %d sites registered; expected the full inventory of all three pipelines", len(owner))
	}
}
