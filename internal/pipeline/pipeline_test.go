package pipeline

import (
	"context"
	"errors"
	"math"
	"testing"

	"nbody/internal/faults"
	"nbody/internal/metrics"
)

func phaseNames(evs []Event) []metrics.Phase {
	var out []metrics.Phase
	for _, ev := range evs {
		out = append(out, ev.Phase)
	}
	return out
}

// TestRunOrderAndSpans checks that phases run in declaration order, each
// under a span charged to its metrics phase.
func TestRunOrderAndSpans(t *testing.T) {
	var rec metrics.Rec
	var order []string
	ps := []Phase{
		{Name: metrics.PhaseSort, Site: "t/sort",
			Run: func(context.Context) error { order = append(order, "sort"); return nil }},
		{Name: metrics.PhaseNear, Site: "t/near",
			Run: func(context.Context) error { order = append(order, "near"); return nil }},
	}
	if err := Run(context.Background(), &rec, "t", ps); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "sort" || order[1] != "near" {
		t.Fatalf("order = %v", order)
	}
	var snap metrics.Snapshot
	rec.ReadInto(&snap)
	if snap.Calls[metrics.PhaseSort] != 1 || snap.Calls[metrics.PhaseNear] != 1 {
		t.Fatalf("span calls: sort %d near %d", snap.Calls[metrics.PhaseSort], snap.Calls[metrics.PhaseNear])
	}
}

// TestRunErrorAborts checks that a phase error stops the pipeline before
// later phases run and before the failing phase's fault site fires.
func TestRunErrorAborts(t *testing.T) {
	defer faults.Reset()
	faults.InjectNaN("t/fail")
	var rec metrics.Rec
	boom := errors.New("boom")
	buf := []float64{1}
	ran := false
	ps := []Phase{
		{Name: metrics.PhaseSort, Site: "t/fail", Slice: func() []float64 { return buf },
			Run: func(context.Context) error { return boom }},
		{Name: metrics.PhaseNear, Site: "t/after",
			Run: func(context.Context) error { ran = true; return nil }},
	}
	if err := Run(context.Background(), &rec, "t", ps); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran {
		t.Fatal("phase after error still ran")
	}
	if math.IsNaN(buf[0]) {
		t.Fatal("fault site fired despite phase error")
	}
}

// TestRunFiresSliceOnSuccess checks the NaN-injection path: a successful
// phase fires its site with the lazily resolved output slice.
func TestRunFiresSliceOnSuccess(t *testing.T) {
	defer faults.Reset()
	faults.InjectNaN("t/ok")
	var rec metrics.Rec
	var buf []float64
	ps := []Phase{{Name: metrics.PhaseSort, Site: "t/ok",
		Slice: func() []float64 { return buf },
		Run: func(context.Context) error {
			buf = []float64{1, 2} // regrown inside the phase, like prepare()
			return nil
		}}}
	if err := Run(context.Background(), &rec, "t", ps); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !math.IsNaN(buf[0]) {
		t.Fatal("NaN injection missed the regrown slice")
	}
}

// TestRunCtxCheckedBetweenPhases checks the between-phase cancellation
// contract: a context canceled during phase 1 stops phase 2 from running.
func TestRunCtxCheckedBetweenPhases(t *testing.T) {
	var rec metrics.Rec
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	ps := []Phase{
		{Name: metrics.PhaseSort, Site: "t/sort",
			Run: func(context.Context) error { cancel(); return nil }},
		{Name: metrics.PhaseNear, Site: "t/near",
			Run: func(context.Context) error { ran = true; return nil }},
	}
	if err := Run(ctx, &rec, "t", ps); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("phase ran after cancellation")
	}
}

// TestRunPreCanceled checks that a pre-canceled context stops the pipeline
// before any phase body runs.
func TestRunPreCanceled(t *testing.T) {
	var rec metrics.Rec
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	ps := []Phase{{Name: metrics.PhaseSort, Site: "t/sort",
		Run: func(context.Context) error { ran = true; return nil }}}
	if err := Run(ctx, &rec, "t", ps); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("phase body ran under pre-canceled context")
	}
}

// TestRunContainsPanic checks panic containment and phase attribution via
// the open-span marker.
func TestRunContainsPanic(t *testing.T) {
	var rec metrics.Rec
	ps := []Phase{{Name: metrics.PhaseT2, Site: "t/t2",
		Run: func(context.Context) error { panic("kaboom") }}}
	err := Run(context.Background(), &rec, "t", ps)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Pipeline != "t" || pe.Phase != metrics.PhaseT2.String() || pe.Value != "kaboom" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("missing stack")
	}
	if _, open := rec.ActivePhase(); open {
		t.Fatal("active-span marker left set after recovery")
	}
}

// TestPanicErrorUnwrap checks that errors.Is reaches through PanicError to
// an error panic value (the fault harness panics with sentinel errors).
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("injected")
	var rec metrics.Rec
	ps := []Phase{{Name: metrics.PhaseSort, Site: "t/sort",
		Run: func(context.Context) error { panic(sentinel) }}}
	err := Run(context.Background(), &rec, "t", ps)
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through PanicError failed: %v", err)
	}
}

// TestCompositePhase checks that a composite phase runs without a
// runner-owned span and that its nested Steps record their own.
func TestCompositePhase(t *testing.T) {
	var rec metrics.Rec
	ps := []Phase{{Name: metrics.PhaseT2, Composite: true,
		Sub: []SubStep{{metrics.PhaseGhost, "t/ghost"}, {metrics.PhaseT2, "t/t2"}},
		Run: func(context.Context) error {
			Step(&rec, metrics.PhaseGhost, "t/ghost", func() {})
			Step(&rec, metrics.PhaseT2, "t/t2", func() {})
			return nil
		}}}
	if err := Run(context.Background(), &rec, "t", ps); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var snap metrics.Snapshot
	rec.ReadInto(&snap)
	if snap.Calls[metrics.PhaseGhost] != 1 || snap.Calls[metrics.PhaseT2] != 1 {
		t.Fatalf("nested span calls: ghost %d t2 %d",
			snap.Calls[metrics.PhaseGhost], snap.Calls[metrics.PhaseT2])
	}
}

// TestStepPanicAttribution checks that a panic inside a nested Step is
// attributed to the step's phase, not the composite's.
func TestStepPanicAttribution(t *testing.T) {
	var rec metrics.Rec
	ps := []Phase{{Name: metrics.PhaseT2, Composite: true,
		Run: func(context.Context) error {
			Step(&rec, metrics.PhaseGhost, "t/ghost", func() { panic("shift") })
			return nil
		}}}
	err := Run(context.Background(), &rec, "t", ps)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.Phase != metrics.PhaseGhost.String() {
		t.Fatalf("phase = %q, want ghost", pe.Phase)
	}
}

// TestObserverEvents checks the observer sees runner phases and nested
// steps with their declared sites.
func TestObserverEvents(t *testing.T) {
	var evs []Event
	SetObserver(func(ev Event) { evs = append(evs, ev) })
	defer SetObserver(nil)
	var rec metrics.Rec
	ps := []Phase{
		{Name: metrics.PhaseSort, Site: "t/sort", Run: func(context.Context) error { return nil }},
		{Name: metrics.PhaseT2, Composite: true,
			Sub: []SubStep{{metrics.PhaseGhost, "t/ghost"}},
			Run: func(context.Context) error {
				Step(&rec, metrics.PhaseGhost, "t/ghost", func() {})
				return nil
			}},
	}
	if err := Run(context.Background(), &rec, "t", ps); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Event{
		{Pipeline: "t", Phase: metrics.PhaseSort, Site: "t/sort"},
		{Pipeline: "t", Phase: metrics.PhaseT2, Composite: true},
		{Phase: metrics.PhaseGhost, Site: "t/ghost", Nested: true},
	}
	if len(evs) != len(want) {
		t.Fatalf("events %v", phaseNames(evs))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
}

// TestRunZeroAlloc guards the steady-state contract: running a prebuilt
// pipeline allocates nothing (core's solve benchmark depends on this).
func TestRunZeroAlloc(t *testing.T) {
	var rec metrics.Rec
	buf := []float64{0}
	ps := []Phase{
		{Name: metrics.PhaseSort, Site: "t/sort", Run: func(context.Context) error { return nil }},
		{Name: metrics.PhaseNear, Site: "t/near", Slice: func() []float64 { return buf },
			Run: func(context.Context) error { return nil }},
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if err := Run(ctx, &rec, "t", ps); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %.1f per call, want 0", allocs)
	}
}
