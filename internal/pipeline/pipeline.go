// Package pipeline is the shared phase-runner of the solve pipelines.
//
// Every solver in this repository (core, core2, dpfmm — potentials and
// forces) executes the same kind of program: an ordered sequence of named
// phases, each of which must be timed under a metrics span, exposed as a
// named fault-injection site, and separated from its neighbours by a
// cooperative cancellation check. Before this package each pipeline
// hand-rolled that scaffolding around every phase body; the runner owns it
// in one place, and a pipeline is reduced to a declared []Phase slice.
//
// For each phase, Run provides in order:
//
//   - a between-phase cancellation check (ctx.Err before the phase starts);
//   - the metrics span (rec.Begin/End), whose open-span marker is what
//     attributes a contained panic to its phase;
//   - the named fault-injection site, fired after a successful phase body —
//     with the phase's output slice when one is declared, so NaN injection
//     can poison real data;
//   - panic containment: a panic escaping any phase body is converted into
//     a *PanicError carrying the pipeline name, the active phase, the panic
//     value, and the stack. The public API layer converts that into the
//     exported InternalError type.
//
// Composite phases (dpfmm's ghost-strategy T2 conversions, which interleave
// ghost-motion and conversion spans of their own) opt out of the runner's
// span and instead record their inner steps through Step, which provides
// the same span+site pairing for nested work.
package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"nbody/internal/faults"
	"nbody/internal/metrics"
)

// A Phase is one declared step of a solver's pipeline.
type Phase struct {
	// Name is the metrics phase the runner's span charges time to.
	Name metrics.Phase

	// Site is the fault-injection site fired after a successful Run. Every
	// phase must declare one (the meta-test enforces it); sites are named
	// "<pipeline>/<phase>" and must be unique across the binary.
	Site string

	// Slice, when non-nil, resolves the phase's output buffer at fire time
	// so NaN injection can poison it. Resolved lazily because solvers may
	// regrow buffers inside earlier phases.
	Slice func() []float64

	// Run is the phase body. It sees the solve's context for in-phase
	// cancellation; a non-nil error aborts the pipeline.
	Run func(ctx context.Context) error

	// Composite marks a phase that records its own nested spans through
	// Step instead of running under a single runner-owned span. Sub
	// declares the nested steps for the meta-test.
	Composite bool
	Sub       []SubStep
}

// A SubStep declares one nested span+site pair of a composite phase.
type SubStep struct {
	Name metrics.Phase
	Site string
}

// PanicError is a panic contained by the runner, attributed to the phase
// whose span was open when it fired. The public API converts it into the
// exported InternalError.
type PanicError struct {
	Pipeline string // pipeline name passed to Run
	Phase    string // active phase name, or "unknown"
	Value    any    // the recovered panic value
	Stack    []byte // stack captured at the recovery point
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline %s: panic during %s phase: %v", e.Pipeline, e.Phase, e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As reach through (e.g. a fault-injected sentinel).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes a declared pipeline: for each phase a cancellation check,
// then span + body + fault site as documented on Phase. It returns the
// first phase error, ctx.Err() on cancellation, or a *PanicError if a
// phase body panicked. Steady-state calls perform no allocations.
func Run(ctx context.Context, rec *metrics.Rec, name string, phases []Phase) (err error) {
	defer containPanic(rec, name, &err)
	for i := range phases {
		p := &phases[i]
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if p.Composite {
			observe(Event{Pipeline: name, Phase: p.Name, Composite: true})
			if perr := p.Run(ctx); perr != nil {
				return perr
			}
			continue
		}
		sp := rec.Begin(p.Name)
		perr := p.Run(ctx)
		if perr == nil {
			if p.Slice != nil {
				faults.FireSlice(p.Site, p.Slice())
			} else {
				faults.Fire(p.Site)
			}
		}
		sp.End()
		observe(Event{Pipeline: name, Phase: p.Name, Site: p.Site})
		if perr != nil {
			return perr
		}
	}
	return nil
}

// containPanic is Run's deferred recovery: it converts a panic escaping a
// phase body into a *PanicError, reading (and clearing) the recorder's
// open-span marker for phase attribution.
func containPanic(rec *metrics.Rec, name string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	phase := "unknown"
	if rec != nil {
		if p, ok := rec.ActivePhase(); ok {
			phase = p.String()
		}
		rec.ClearActive()
	}
	*errp = &PanicError{Pipeline: name, Phase: phase, Value: r, Stack: debug.Stack()}
}

// Step records one nested span+site pair inside a composite phase: span,
// body, fault site, in the same order the runner uses for whole phases.
// Panics propagate to the enclosing Run, which attributes them to this
// step's phase through the open-span marker.
func Step(rec *metrics.Rec, p metrics.Phase, site string, fn func()) {
	sp := rec.Begin(p)
	fn()
	faults.Fire(site)
	sp.End()
	observe(Event{Phase: p, Site: site, Nested: true})
}

// Setup runs a constructor-time body under a PhaseSetup span, so solver
// construction is charged to the setup phase without hand-rolled spans.
func Setup(rec *metrics.Rec, fn func()) {
	sp := rec.Begin(metrics.PhaseSetup)
	fn()
	sp.End()
}

// Fire re-exports faults.Fire for in-worker body sites (per-box injection
// points inside parallel sweeps, which have no span of their own). Routing
// them through the pipeline package keeps the static check meaningful:
// every injection point in the tree is declared pipeline plumbing.
func Fire(site string) { faults.Fire(site) }

// Event is one runner action reported to the test observer: a phase
// executed by Run (Nested false) or a nested Step of a composite phase
// (Nested true). Composite events carry no Site; their steps do.
type Event struct {
	Pipeline  string
	Phase     metrics.Phase
	Site      string
	Nested    bool
	Composite bool
}

// observer is the test hook: a single atomically-swapped callback. The nil
// fast path costs one atomic load per phase, keeping production solves at
// zero overhead and zero allocations.
var observer atomic.Pointer[func(Event)]

// SetObserver installs fn as the event observer (nil removes it). Tests
// only; the observer runs synchronously on the solve goroutine.
func SetObserver(fn func(Event)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

func observe(ev Event) {
	if fn := observer.Load(); fn != nil {
		(*fn)(ev)
	}
}
