package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveGemm is the triple-loop reference implementation.
func naiveGemm(a, b, c Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, c.At(i, j)+s)
		}
	}
}

func matricesClose(a, b Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Data[5] != 5 {
		t.Errorf("Set/At broken: %v", m.Data)
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row is not a view")
	}
	if m.String() != "Matrix(2x3)" {
		t.Errorf("String = %q", m.String())
	}
}

func TestDdot(t *testing.T) {
	if got := Ddot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Ddot = %v", got)
	}
}

func TestDdotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Ddot([]float64{1}, []float64{1, 2})
}

func TestDaxpyAndDscal(t *testing.T) {
	y := []float64{1, 1, 1}
	Daxpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Daxpy = %v", y)
		}
	}
	Daxpy(0, []float64{100, 100, 100}, y) // alpha=0 fast path: no change
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Daxpy alpha=0 modified y: %v", y)
		}
	}
	Dscal(-1, y)
	if y[0] != -3 || y[2] != -7 {
		t.Errorf("Dscal = %v", y)
	}
}

func TestDgemvAccumulates(t *testing.T) {
	a := Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	x := []float64{1, 1, 1}
	y := []float64{10, 20}
	Dgemv(a, x, y)
	if y[0] != 16 || y[1] != 35 {
		t.Errorf("Dgemv = %v", y)
	}
}

func TestDgemvShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dgemv(NewMatrix(2, 3), make([]float64, 2), make([]float64, 2))
}

func TestDgemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {12, 12, 8}, {72, 72, 4}, {17, 130, 9}, {64, 64, 64},
	}
	for _, s := range shapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.k, s.n)
		c1 := randMatrix(rng, s.m, s.n)
		c2 := Matrix{Rows: s.m, Cols: s.n, Data: append([]float64(nil), c1.Data...)}
		Dgemm(a, b, c1)
		naiveGemm(a, b, c2)
		if !matricesClose(c1, c2, 1e-10*float64(s.k)) {
			t.Errorf("Dgemm mismatch for %dx%dx%d", s.m, s.k, s.n)
		}
	}
}

func TestDgemmShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dgemm(NewMatrix(2, 3), NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestDgemvEquivalentToDgemmColumn(t *testing.T) {
	// A*x as gemv equals A*B with B the single-column matrix of x: the
	// aggregation correctness property of Section 3.3.3 in miniature.
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 12, 12)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 12)
	Dgemv(a, x, y)

	b := NewMatrix(12, 1)
	for i := range x {
		b.Set(i, 0, x[i])
	}
	c := NewMatrix(12, 1)
	Dgemm(a, b, c)
	for i := range y {
		if math.Abs(y[i]-c.At(i, 0)) > 1e-12 {
			t.Fatalf("gemv/gemm disagree at %d: %g vs %g", i, y[i], c.At(i, 0))
		}
	}
}

func TestFlopCounts(t *testing.T) {
	if got := DgemvFlops(3, 4); got != 24 {
		t.Errorf("DgemvFlops = %d", got)
	}
	if got := DgemmFlops(2, 3, 4); got != 48 {
		t.Errorf("DgemmFlops = %d", got)
	}
}

func TestDgemmLinearityProperty(t *testing.T) {
	// Property: C(alpha*A, B) == alpha * C(A, B) for zero-initialized C.
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMatrix(r, 6, 7)
		b := randMatrix(r, 7, 5)
		c1 := NewMatrix(6, 5)
		Dgemm(a, b, c1)
		a2 := Matrix{Rows: 6, Cols: 7, Data: append([]float64(nil), a.Data...)}
		Dscal(2.5, a2.Data)
		c2 := NewMatrix(6, 5)
		Dgemm(a2, b, c2)
		for i := range c1.Data {
			if math.Abs(c2.Data[i]-2.5*c1.Data[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
