package blas

// Go-side bindings of the AVX2/FMA assembly kernels (gemm_avx2_amd64.s).
// The stubs take base pointers, not slices: every caller has already
// validated shapes and non-emptiness in the exported entry points, and
// //go:noescape keeps the operands off the heap.

//go:noescape
func dgemmAVX2(m, k, n int, a, b, c *float64)

//go:noescape
func dgemmAssignAVX2(m, k, n int, a, b, c *float64)

//go:noescape
func gemmK12AVX2(m, n int, a, b, c *float64)

//go:noescape
func gemmK72AVX2(m, n int, a, b, c *float64)

//go:noescape
func dgemvAVX2(rows, cols int, a, x, y *float64)

//go:noescape
func micro4x4AVX2(kc int, ap, bp, acc *float64)

// haveAVX2 reports that this build carries the AVX2 kernels; whether the
// host can run them is internal/simd's call (dispatch.go consults both).
const haveAVX2 = true

func bindAVX2() {
	gemmK12Impl = func(m, n int, a, b, c []float64) {
		gemmK12AVX2(m, n, &a[0], &b[0], &c[0])
	}
	gemmK72Impl = func(m, n int, a, b, c []float64) {
		gemmK72AVX2(m, n, &a[0], &b[0], &c[0])
	}
	gemmImpl = func(m, k, n int, a, b, c []float64) {
		dgemmAVX2(m, k, n, &a[0], &b[0], &c[0])
	}
	gemmAssignImpl = func(m, k, n int, a, b, c []float64) {
		dgemmAssignAVX2(m, k, n, &a[0], &b[0], &c[0])
	}
	gemvImpl = func(rows, cols int, a, x, y []float64) {
		dgemvAVX2(rows, cols, &a[0], &x[0], &y[0])
	}
	microImpl = func(kc int, ap, bp []float64, acc *[16]float64) {
		if kc == 0 {
			clear(acc[:])
			return
		}
		micro4x4AVX2(kc, &ap[0], &bp[0], &acc[0])
	}
}
