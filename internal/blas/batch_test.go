package blas

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestMultiGemmMatchesSequentialGemms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 12, 12)
	const inst = 9
	bs := make([]Matrix, inst)
	cs := make([]Matrix, inst)
	want := make([]Matrix, inst)
	for i := range bs {
		bs[i] = randMatrix(rng, 12, 8)
		cs[i] = NewMatrix(12, 8)
		want[i] = NewMatrix(12, 8)
		naiveGemm(a, bs[i], want[i])
	}
	MultiGemm(a, bs, cs)
	for i := range cs {
		if !matricesClose(cs[i], want[i], 1e-10) {
			t.Errorf("instance %d mismatch", i)
		}
	}
}

func TestParallelMultiGemmMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randMatrix(rng, 24, 24)
	const inst = 33
	bs := make([]Matrix, inst)
	cs := make([]Matrix, inst)
	want := make([]Matrix, inst)
	for i := range bs {
		bs[i] = randMatrix(rng, 24, 5)
		cs[i] = NewMatrix(24, 5)
		want[i] = NewMatrix(24, 5)
	}
	MultiGemm(a, bs, want)
	ParallelMultiGemm(a, bs, cs)
	for i := range cs {
		if !matricesClose(cs[i], want[i], 1e-12) {
			t.Errorf("instance %d mismatch", i)
		}
	}
}

func TestMultiGemmMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MultiGemm(NewMatrix(2, 2), make([]Matrix, 2), make([]Matrix, 3))
}

func TestParallelMultiGemmMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ParallelMultiGemm(NewMatrix(2, 2), make([]Matrix, 1), make([]Matrix, 2))
}

func TestGemvBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randMatrix(rng, 6, 6)
	xs := make([][]float64, 4)
	ys := make([][]float64, 4)
	want := make([][]float64, 4)
	for i := range xs {
		xs[i] = make([]float64, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
		ys[i] = make([]float64, 6)
		want[i] = make([]float64, 6)
		Dgemv(a, xs[i], want[i])
	}
	GemvBatch(a, xs, ys)
	for i := range ys {
		for j := range ys[i] {
			if ys[i][j] != want[i][j] {
				t.Fatalf("batch instance %d mismatch", i)
			}
		}
	}
}

func TestGemvBatchMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GemvBatch(NewMatrix(2, 2), make([][]float64, 1), make([][]float64, 2))
}

func TestParallelCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		hits := make([]int32, n)
		Parallel(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func BenchmarkDgemm12(b *testing.B) { benchGemm(b, 12, 12, 512) }
func BenchmarkDgemm72(b *testing.B) { benchGemm(b, 72, 72, 512) }

func benchGemm(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, m, k)
	bm := randMatrix(rng, k, n)
	c := NewMatrix(m, n)
	b.SetBytes(8 * int64(m*k+k*n+m*n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(a, bm, c)
	}
	flops := float64(DgemmFlops(m, k, n)) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "Mflops/s")
}
