package blas

// This file implements the BLIS-style packed GEMM path: operand packing
// into panels plus a 4x4 register-blocked micro-kernel, with specialized
// constant-bound loops for the paper's two translation-matrix sizes (K = 12
// for the icosahedral rule and K = 72 for the product rule). The micro-
// kernel holds a 4x4 block of C across the whole K loop and the packed
// panels make both operands unit-stride regardless of leading dimension —
// the canonical high-performance GEMM structure on architectures where the
// tile fits the register file.
//
// Measured head-to-head on the scalar Go backend, the k-unrolled streaming
// kernels of gemm_stream.go beat this path at every shape the solver uses
// (the 16 accumulators plus operand temporaries exceed the register budget
// and spill; numbers in EXPERIMENTS.md), so Dgemm dispatches to streaming
// and this path is kept as the exported, property-tested alternative for
// callers that can amortize packing across many products with a shared
// left operand (PackA4 once, GemmPanels per block).

// mr x nr is the micro-kernel footprint: 16 scalar accumulators.
const microDim = 4

// packAPanels packs rows [0, m4) of the m x k row-major matrix a into 4-row
// panels: panel ip holds a[ip..ip+3][kk] interleaved as pa[ip*k + kk*4 + r],
// so the micro-kernel reads 4 contiguous values per kk step.
func packAPanels(m4, k int, a, pa []float64) {
	for ip := 0; ip < m4; ip += microDim {
		dst := pa[ip*k : (ip+microDim)*k]
		r0 := a[ip*k : (ip+1)*k]
		r1 := a[(ip+1)*k : (ip+2)*k]
		r2 := a[(ip+2)*k : (ip+3)*k]
		r3 := a[(ip+3)*k : (ip+4)*k]
		for kk := 0; kk < k; kk++ {
			o := kk * microDim
			dst[o] = r0[kk]
			dst[o+1] = r1[kk]
			dst[o+2] = r2[kk]
			dst[o+3] = r3[kk]
		}
	}
}

// PackA4 packs the m x k matrix a, whose row count must be a multiple of 4,
// into the panel layout GemmPanels consumes. dst must hold m*k values.
// Callers that apply the same left operand to many right-hand sides pack it
// once and amortize the pass.
func PackA4(a Matrix, dst []float64) {
	if a.Rows%microDim != 0 {
		panic("blas: PackA4 needs rows divisible by 4")
	}
	packAPanels(a.Rows, a.Cols, a.Data, dst[:a.Rows*a.Cols])
}

// PackB4 packs the k x n matrix b, whose column count must be a multiple
// of 4, into the column-panel layout GemmPanels consumes: panel jp holds
// b[kk][jp..jp+3] at dst[jp*k + kk*4 + c]. dst must hold k*n values.
func PackB4(b Matrix, dst []float64) {
	if b.Cols%microDim != 0 {
		panic("blas: PackB4 needs columns divisible by 4")
	}
	k, n := b.Rows, b.Cols
	for jp := 0; jp < n; jp += microDim {
		d := dst[jp*k : (jp+microDim)*k]
		for kk := 0; kk < k; kk++ {
			src := b.Data[kk*n+jp : kk*n+jp+microDim]
			o := kk * microDim
			d[o] = src[0]
			d[o+1] = src[1]
			d[o+2] = src[2]
			d[o+3] = src[3]
		}
	}
}

// GemmPanels computes C = A*B (assignment, not accumulate) entirely from
// pre-packed operands: ap holds m/4 row panels (PackA4 layout), bp holds
// n/4 column panels (PackB4 layout), and c is row-major m x n. m and n
// must be multiples of 4; k is free. The micro-kernel is
// backend-dispatched: scalar register tiles here, the FMA tile of
// gemm_avx2_amd64.s on the AVX2 backend (where 16 YMM registers hold the
// 4x4 tile without the spills that sink this path in pure Go — see the
// packed-vs-streaming measurements in EXPERIMENTS.md).
func GemmPanels(ap, bp []float64, m, k, n int, c []float64) {
	if m%microDim != 0 || n%microDim != 0 {
		panic("blas: GemmPanels needs m and n divisible by 4")
	}
	var acc [microDim * microDim]float64
	for ip := 0; ip < m; ip += microDim {
		app := ap[ip*k : (ip+microDim)*k]
		for jp := 0; jp < n; jp += microDim {
			bpp := bp[jp*k : (jp+microDim)*k]
			microImpl(k, app, bpp, &acc)
			for r := 0; r < microDim; r++ {
				crow := c[(ip+r)*n+jp : (ip+r)*n+jp+microDim]
				crow[0] = acc[r*microDim]
				crow[1] = acc[r*microDim+1]
				crow[2] = acc[r*microDim+2]
				crow[3] = acc[r*microDim+3]
			}
		}
	}
}

// micro4x4 accumulates the 4x4 product of one packed A panel and one packed
// B panel over kc steps: acc[r*4+c] = sum_kk ap[kk*4+r] * bp[kk*4+c].
func micro4x4(kc int, ap, bp []float64, acc *[16]float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for kk := 0; kk < kc; kk++ {
		av := ap[kk*4 : kk*4+4 : kk*4+4]
		bv := bp[kk*4 : kk*4+4 : kk*4+4]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// micro4x4K12 is micro4x4 with the loop bound fixed at the icosahedral
// rule's K = 12, letting the compiler prove the panel bounds (ap and bp are
// exactly 48 long) and drop all bounds checks.
func micro4x4K12(ap, bp []float64, acc *[16]float64) {
	ap = ap[:48]
	bp = bp[:48]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for kk := 0; kk < 12; kk++ {
		o := kk * 4
		a0, a1, a2, a3 := ap[o], ap[o+1], ap[o+2], ap[o+3]
		b0, b1, b2, b3 := bp[o], bp[o+1], bp[o+2], bp[o+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// micro4x4K72 is micro4x4 with the loop bound fixed at the product rule's
// K = 72 (panels exactly 288 long).
func micro4x4K72(ap, bp []float64, acc *[16]float64) {
	ap = ap[:288]
	bp = bp[:288]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for kk := 0; kk < 72; kk++ {
		o := kk * 4
		a0, a1, a2, a3 := ap[o], ap[o+1], ap[o+2], ap[o+3]
		b0, b1, b2, b3 := bp[o], bp[o+1], bp[o+2], bp[o+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}
