// Package blas implements the dense linear-algebra kernels Anderson's
// translations reduce to. The paper's central arithmetic optimization
// (Section 3.3.3) is to express each translation operator as a K x K matrix,
// apply it to a potential vector as a level-2 BLAS matrix-vector product,
// and then aggregate the translations of many boxes into level-3 BLAS
// matrix-matrix products (optionally "multiple-instance", the CMSSL notion
// of a batched GEMM). This package provides those kernels in pure Go:
// row-major float64 matrices, a blocked serial GEMM, a goroutine-parallel
// driver, and a batched variant.
package blas

import "fmt"

// Matrix is a dense row-major matrix: element (i, j) is Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// String implements fmt.Stringer (shape only; matrices here can be large).
func (m Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// Ddot returns the inner product of x and y; the slices must have equal
// length.
func Ddot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: Ddot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Daxpy computes y += alpha*x.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: Daxpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Dscal computes x *= alpha.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dgemv computes y += A*x (level-2 BLAS, beta = 1 accumulate form: the form
// every translation application uses, since child/interactive contributions
// accumulate into the destination potential vector). The inner loop is
// backend-dispatched (dispatch.go).
func Dgemv(a Matrix, x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("blas: Dgemv shape mismatch")
	}
	if a.Rows == 0 || a.Cols == 0 {
		return
	}
	if countersOn.Load() {
		countGemv(a.Rows, a.Cols)
	}
	gemvImpl(a.Rows, a.Cols, a.Data, x, y)
}

// DgemvFlops returns the floating-point operation count of one Dgemv of the
// given shape (the 2mn convention used throughout the paper's efficiency
// numbers).
func DgemvFlops(rows, cols int) int64 { return 2 * int64(rows) * int64(cols) }

// Dgemm computes C += A*B. A is m x k, B is k x n, C is m x n, all
// row-major. All shapes go through backend-dispatched streaming kernels
// (dispatch.go) with constant trip-count fast paths for the paper's K = 12
// and K = 72 translation shapes: on the scalar backend the k-unrolled
// streams of gemm_stream.go, on AVX2 hosts the FMA kernels of
// gemm_avx2_amd64.s. The inner loop is branch-free (the seed's aik == 0
// skip cost a mispredicted branch per element on dense translation
// matrices). Each backend's reduction order is fixed, so results are
// bitwise deterministic call to call within a backend.
func Dgemm(a, b, c Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("blas: Dgemm shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return
	}
	if countersOn.Load() {
		countGemm(m, k, n)
	}
	switch k {
	case 12:
		gemmK12Impl(m, n, a.Data, b.Data, c.Data)
	case 72:
		gemmK72Impl(m, n, a.Data, b.Data, c.Data)
	default:
		gemmImpl(m, k, n, a.Data, b.Data, c.Data)
	}
}

// DgemmFlops returns the floating-point operation count of one Dgemm of the
// given shape (2mkn).
func DgemmFlops(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }
