package blas

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/simd"
)

// withBackend runs f with the named backend active, restoring the previous
// backend afterwards. Tests iterating simd.Supported() get the full
// cross-backend matrix on capable hosts and degrade to scalar-only
// elsewhere (and under NBODY_BACKEND=scalar the matrix still activates
// avx2 where supported — SetBackend overrides the env default).
func withBackend(t testing.TB, name string, f func()) {
	t.Helper()
	prev := simd.Active()
	if err := simd.SetBackend(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatal(err)
		}
	}()
	f()
}

// gemmShapes is the shape matrix every backend must pass: the paper's
// translation shapes, the generic kernel with k remainders, every column
// tail class (n mod 32/16/4 and 1..3 trailing columns), sub-unroll
// operands, and single-row/column edges.
var gemmShapes = [][3]int{
	{12, 12, 128}, // aggregatedApply chunk, K = 12 fast path
	{72, 72, 128}, // aggregatedApply chunk, K = 72 fast path
	{98, 98, 33},  // generic kernel with k % 4 remainder and masked tail
	{12, 12, 1},   // single masked column
	{12, 12, 2},
	{12, 12, 3},
	{12, 12, 4},
	{12, 12, 7},
	{12, 12, 19},  // 16-block + masked tail
	{12, 12, 31},  // 16 + 4x3 + tail
	{72, 72, 35},  // 32-block + tail
	{1, 12, 12},   // single row
	{4, 4, 4},
	{3, 5, 2},
	{5, 1, 7},     // k below the unroll width
	{2, 2, 2},
	{1, 1, 1},
}

// TestDgemmKernelsMatchNaive is the cross-backend property test guarding
// every Dgemm dispatch path: on every supported backend, for the shape
// matrix plus random shapes, Dgemm must agree with the naive triple loop
// (naiveGemm, blas_test.go) to rounding error.
func TestDgemmKernelsMatchNaive(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(7))
				shapes := append([][3]int{}, gemmShapes...)
				for trial := 0; trial < 20; trial++ {
					shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(100), 1 + rng.Intn(40)})
				}
				for _, sh := range shapes {
					m, k, n := sh[0], sh[1], sh[2]
					a := randMatrix(rng, m, k)
					b := randMatrix(rng, k, n)
					cInit := randMatrix(rng, m, n)

					got := NewMatrix(m, n)
					copy(got.Data, cInit.Data)
					Dgemm(a, b, got)

					want := NewMatrix(m, n)
					copy(want.Data, cInit.Data)
					naiveGemm(a, b, want)

					for i := range want.Data {
						diff := math.Abs(got.Data[i] - want.Data[i])
						scale := math.Abs(want.Data[i]) + 1
						if diff/scale > 1e-12 {
							t.Fatalf("shape (%d,%d,%d): element %d = %g, want %g", m, k, n, i, got.Data[i], want.Data[i])
						}
					}
				}
			})
		})
	}
}

// TestDgemmEmptyOperands pins the degenerate shapes on every backend: an
// empty m/k/n leaves C untouched (and never dereferences empty slices).
func TestDgemmEmptyOperands(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				for _, sh := range [][3]int{{0, 5, 5}, {5, 0, 5}, {5, 5, 0}, {0, 0, 0}} {
					m, k, n := sh[0], sh[1], sh[2]
					a := NewMatrix(m, k)
					b := NewMatrix(k, n)
					c := NewMatrix(m, n)
					for i := range c.Data {
						c.Data[i] = 3.5
					}
					want := append([]float64(nil), c.Data...)
					Dgemm(a, b, c)
					for i := range c.Data {
						if c.Data[i] != want[i] {
							t.Fatalf("shape %v: Dgemm touched C", sh)
						}
					}
					// DgemmAssign with k = 0 assigns zero; other empties are no-ops.
					DgemmAssign(a, b, c)
					for i := range c.Data {
						if k == 0 && c.Data[i] != 0 {
							t.Fatalf("shape %v: DgemmAssign k=0 must zero C", sh)
						}
					}
				}
			})
		})
	}
}

// groupedGemm is a direct transcription of the scalar backend's documented
// reduction order — k-terms grouped in fours, each group summed left to
// right, groups accumulated ascending, then a one-at-a-time remainder —
// with none of the kernel structure.
func groupedGemm(a, b, c Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c.At(i, j)
			kk := 0
			for ; kk+3 < k; kk += 4 {
				s += a.At(i, kk)*b.At(kk, j) + a.At(i, kk+1)*b.At(kk+1, j) +
					a.At(i, kk+2)*b.At(kk+2, j) + a.At(i, kk+3)*b.At(kk+3, j)
			}
			for ; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			c.Set(i, j, s)
		}
	}
}

// fmaGemm is a direct transcription of the avx2 backend's documented
// reduction order: one fused-multiply-add chain per element, ascending k.
func fmaGemm(a, b, c Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c.At(i, j)
			for kk := 0; kk < k; kk++ {
				s = math.FMA(a.At(i, kk), b.At(kk, j), s)
			}
			c.Set(i, j, s)
		}
	}
}

// orderShapes exercises every dispatch path of a backend pin: K = 12,
// K = 72, generic with and without k remainder, sub-unroll, and all column
// tail classes.
var orderShapes = [][3]int{
	{12, 12, 128}, {72, 72, 96}, {98, 98, 17}, {16, 24, 8}, {5, 3, 9},
	{12, 12, 33}, {72, 72, 7}, {9, 13, 3},
}

// checkOrderExact pins Dgemm's reduction order on the active backend
// against the reference transcription ref, and DgemmAssign against Dgemm
// on a zero C — bitwise. This is what makes repeated solves on reused
// solver state bitwise reproducible per backend.
func checkOrderExact(t *testing.T, ref func(a, b, c Matrix)) {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	for _, sh := range orderShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		cInit := randMatrix(rng, m, n)

		got := NewMatrix(m, n)
		copy(got.Data, cInit.Data)
		Dgemm(a, b, got)
		want := NewMatrix(m, n)
		copy(want.Data, cInit.Data)
		ref(a, b, want)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape (%d,%d,%d): element %d = %g, want bitwise %g", m, k, n, i, got.Data[i], want.Data[i])
			}
		}

		assign := NewMatrix(m, n)
		DgemmAssign(a, b, assign)
		zero := NewMatrix(m, n)
		Dgemm(a, b, zero)
		for i := range zero.Data {
			if assign.Data[i] != zero.Data[i] {
				t.Fatalf("shape (%d,%d,%d): DgemmAssign element %d = %g, want bitwise %g", m, k, n, i, assign.Data[i], zero.Data[i])
			}
		}
	}
}

// TestDgemmGroupedOrderExact pins the scalar backend to the grouped order.
func TestDgemmGroupedOrderExact(t *testing.T) {
	withBackend(t, simd.Scalar, func() { checkOrderExact(t, groupedGemm) })
}

// TestDgemmFMAOrderExact pins the avx2 backend to the FMA-chain order: the
// assembly must be bitwise equal to the math.FMA transcription in every
// lane, block width, and masked tail.
func TestDgemmFMAOrderExact(t *testing.T) {
	requireBackend(t, simd.AVX2)
	withBackend(t, simd.AVX2, func() { checkOrderExact(t, fmaGemm) })
}

// TestDgemvCrossBackend checks Dgemv on every backend against the serial
// dot-product reference, including remainder column counts.
func TestDgemvCrossBackend(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(11))
				for _, sh := range [][2]int{{12, 12}, {72, 72}, {98, 98}, {7, 5}, {1, 3}, {5, 1}, {3, 17}} {
					rows, cols := sh[0], sh[1]
					a := randMatrix(rng, rows, cols)
					x := make([]float64, cols)
					for i := range x {
						x[i] = rng.NormFloat64()
					}
					got := make([]float64, rows)
					want := make([]float64, rows)
					for i := range got {
						got[i] = rng.NormFloat64()
						want[i] = got[i]
					}
					Dgemv(a, x, got)
					for i := 0; i < rows; i++ {
						var s float64
						for j := 0; j < cols; j++ {
							s += a.At(i, j) * x[j]
						}
						want[i] += s
					}
					for i := range want {
						diff := math.Abs(got[i] - want[i])
						if diff/(math.Abs(want[i])+1) > 1e-12 {
							t.Fatalf("shape (%d,%d): row %d = %g, want %g", rows, cols, i, got[i], want[i])
						}
					}
				}
			})
		})
	}
}

// TestDgemmDeterministicPerBackend runs the same product twice per backend
// and requires bitwise-identical results — the within-backend half of the
// reproducibility contract, for the kernels whose order has no closed-form
// reference.
func TestDgemmDeterministicPerBackend(t *testing.T) {
	for _, be := range simd.Supported() {
		t.Run(be, func(t *testing.T) {
			withBackend(t, be, func() {
				rng := rand.New(rand.NewSource(12))
				for _, sh := range orderShapes {
					m, k, n := sh[0], sh[1], sh[2]
					a := randMatrix(rng, m, k)
					b := randMatrix(rng, k, n)
					c1 := NewMatrix(m, n)
					c2 := NewMatrix(m, n)
					Dgemm(a, b, c1)
					Dgemm(a, b, c2)
					for i := range c1.Data {
						if c1.Data[i] != c2.Data[i] {
							t.Fatalf("backend %s shape %v: nondeterministic element %d", be, sh, i)
						}
					}
					y1 := make([]float64, m)
					y2 := make([]float64, m)
					x := b.Data[:k]
					Dgemv(a, x, y1)
					Dgemv(a, x, y2)
					for i := range y1 {
						if y1[i] != y2[i] {
							t.Fatalf("backend %s shape %v: nondeterministic gemv row %d", be, sh, i)
						}
					}
				}
			})
		})
	}
}

// requireBackend skips the test when the backend is not supported on this
// host (scalar-only CI runners still run the rest of the suite).
func requireBackend(t *testing.T, name string) {
	t.Helper()
	for _, b := range simd.Supported() {
		if b == name {
			return
		}
	}
	t.Skipf("backend %s not supported on this host", name)
}

// TestGemmPanelsMatchesNaive guards the packed alternative path per
// backend: on scalar, PackA4 + PackB4 + GemmPanels must reproduce the
// naive triple loop bitwise (single accumulator ascending k); on avx2, the
// FMA micro-kernel must reproduce the math.FMA chain bitwise.
func TestGemmPanelsMatchesNaive(t *testing.T) {
	shapes := [][3]int{{12, 12, 128}, {72, 72, 96}, {12, 98, 16}, {4, 1, 4}, {16, 24, 8}}
	run := func(t *testing.T, ref func(a, b, c Matrix)) {
		rng := rand.New(rand.NewSource(9))
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := randMatrix(rng, m, k)
			b := randMatrix(rng, k, n)
			ap := make([]float64, m*k)
			bp := make([]float64, k*n)
			PackA4(a, ap)
			PackB4(b, bp)
			got := make([]float64, m*n)
			GemmPanels(ap, bp, m, k, n, got)
			want := NewMatrix(m, n)
			ref(a, b, want)
			for i := range want.Data {
				if got[i] != want.Data[i] {
					t.Fatalf("shape (%d,%d,%d): element %d = %g, want bitwise %g", m, k, n, i, got[i], want.Data[i])
				}
			}
		}
	}
	t.Run("scalar", func(t *testing.T) {
		withBackend(t, simd.Scalar, func() { run(t, naiveGemm) })
	})
	t.Run("avx2", func(t *testing.T) {
		requireBackend(t, simd.AVX2)
		withBackend(t, simd.AVX2, func() { run(t, fmaGemm) })
	})
}

func benchDgemm(b *testing.B, m, k, n int) {
	for _, be := range simd.Supported() {
		b.Run(be, func(b *testing.B) {
			withBackend(b, be, func() {
				rng := rand.New(rand.NewSource(9))
				a := randMatrix(rng, m, k)
				bb := randMatrix(rng, k, n)
				c := NewMatrix(m, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Dgemm(a, bb, c)
				}
				flops := float64(DgemmFlops(m, k, n)) * float64(b.N)
				b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "Mflops/s")
			})
		})
	}
}

func BenchmarkDgemmK12x128(b *testing.B) { benchDgemm(b, 12, 12, 128) }
func BenchmarkDgemmK72x128(b *testing.B) { benchDgemm(b, 72, 72, 128) }
func BenchmarkDgemm256(b *testing.B)     { benchDgemm(b, 256, 256, 256) }

func BenchmarkDgemv(b *testing.B) {
	for _, sh := range [][2]int{{12, 12}, {72, 72}} {
		rows, cols := sh[0], sh[1]
		for _, be := range simd.Supported() {
			b.Run(simdBenchName(rows, be), func(b *testing.B) {
				withBackend(b, be, func() {
					rng := rand.New(rand.NewSource(13))
					a := randMatrix(rng, rows, cols)
					x := make([]float64, cols)
					y := make([]float64, rows)
					for i := range x {
						x[i] = rng.NormFloat64()
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						Dgemv(a, x, y)
					}
					flops := float64(DgemvFlops(rows, cols)) * float64(b.N)
					b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "Mflops/s")
				})
			})
		}
	}
}

func simdBenchName(k int, backend string) string {
	if k == 12 {
		return "K12/" + backend
	}
	return "K72/" + backend
}

// BenchmarkGemmPanelsK12x128 measures the packed alternative at the
// aggregation chunk shape per backend, for comparison against the
// streaming dispatch (packing cost excluded — both operands pre-packed).
func BenchmarkGemmPanelsK12x128(b *testing.B) {
	for _, be := range simd.Supported() {
		b.Run(be, func(b *testing.B) {
			withBackend(b, be, func() {
				rng := rand.New(rand.NewSource(10))
				m, k, n := 12, 12, 128
				a := randMatrix(rng, m, k)
				bm := randMatrix(rng, k, n)
				ap := make([]float64, m*k)
				bp := make([]float64, k*n)
				PackA4(a, ap)
				PackB4(bm, bp)
				c := make([]float64, m*n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					GemmPanels(ap, bp, m, k, n, c)
				}
				flops := float64(DgemmFlops(m, k, n)) * float64(b.N)
				b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "Mflops/s")
			})
		})
	}
}
