package blas

import (
	"math"
	"math/rand"
	"testing"
)

// TestDgemmKernelsMatchNaive is the property test guarding every Dgemm
// dispatch path: for random shapes — including the paper's K = 12 and
// K = 72 translation shapes, a K = 98 shape exercising the generic kernel
// with a k remainder, and sub-unroll shapes — Dgemm must agree with the
// naive triple loop (naiveGemm, blas_test.go) to rounding error.
func TestDgemmKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{12, 12, 128}, // aggregatedApply chunk, K = 12 fast path
		{72, 72, 128}, // aggregatedApply chunk, K = 72 fast path
		{98, 98, 33},  // generic kernel with k % 4 remainder
		{12, 12, 1},
		{1, 12, 12},
		{4, 4, 4},
		{3, 5, 2},
		{5, 1, 7}, // k below the unroll width
	}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(100), 1 + rng.Intn(40)})
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		cInit := randMatrix(rng, m, n)

		got := NewMatrix(m, n)
		copy(got.Data, cInit.Data)
		Dgemm(a, b, got)

		want := NewMatrix(m, n)
		copy(want.Data, cInit.Data)
		naiveGemm(a, b, want)

		for i := range want.Data {
			diff := math.Abs(got.Data[i] - want.Data[i])
			scale := math.Abs(want.Data[i]) + 1
			if diff/scale > 1e-12 {
				t.Fatalf("shape (%d,%d,%d): element %d = %g, want %g", m, k, n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// groupedGemm is a direct transcription of Dgemm's documented reduction
// order — k-terms grouped in fours, each group summed left to right, groups
// accumulated ascending, then a one-at-a-time remainder — with none of the
// kernel structure.
func groupedGemm(a, b, c Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c.At(i, j)
			kk := 0
			for ; kk+3 < k; kk += 4 {
				s += a.At(i, kk)*b.At(kk, j) + a.At(i, kk+1)*b.At(kk+1, j) +
					a.At(i, kk+2)*b.At(kk+2, j) + a.At(i, kk+3)*b.At(kk+3, j)
			}
			for ; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			c.Set(i, j, s)
		}
	}
}

// TestDgemmGroupedOrderExact pins Dgemm's reduction order: every dispatch
// path (K = 12, K = 72, generic with and without remainder) must be bitwise
// equal to the documented grouped order, and DgemmAssign must be bitwise
// equal to Dgemm on a zero C. This is what makes repeated solves on reused
// solver state bitwise reproducible.
func TestDgemmGroupedOrderExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range [][3]int{{12, 12, 128}, {72, 72, 96}, {98, 98, 17}, {16, 24, 8}, {5, 3, 9}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		cInit := randMatrix(rng, m, n)

		got := NewMatrix(m, n)
		copy(got.Data, cInit.Data)
		Dgemm(a, b, got)
		want := NewMatrix(m, n)
		copy(want.Data, cInit.Data)
		groupedGemm(a, b, want)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape (%d,%d,%d): element %d = %g, want bitwise %g", m, k, n, i, got.Data[i], want.Data[i])
			}
		}

		assign := NewMatrix(m, n)
		DgemmAssign(a, b, assign)
		zero := NewMatrix(m, n)
		Dgemm(a, b, zero)
		for i := range zero.Data {
			if assign.Data[i] != zero.Data[i] {
				t.Fatalf("shape (%d,%d,%d): DgemmAssign element %d = %g, want bitwise %g", m, k, n, i, assign.Data[i], zero.Data[i])
			}
		}
	}
}

// TestGemmPanelsMatchesNaive guards the packed alternative path: PackA4 +
// PackB4 + GemmPanels must reproduce the naive triple loop bitwise (the
// micro-kernel sums ascending k into a single accumulator per element, the
// same order as the naive loop with C starting from zero).
func TestGemmPanelsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][3]int{{12, 12, 128}, {72, 72, 96}, {12, 98, 16}, {4, 1, 4}, {16, 24, 8}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		ap := make([]float64, m*k)
		bp := make([]float64, k*n)
		PackA4(a, ap)
		PackB4(b, bp)
		got := make([]float64, m*n)
		GemmPanels(ap, bp, m, k, n, got)
		want := NewMatrix(m, n)
		naiveGemm(a, b, want)
		for i := range want.Data {
			if got[i] != want.Data[i] {
				t.Fatalf("shape (%d,%d,%d): element %d = %g, want bitwise %g", m, k, n, i, got[i], want.Data[i])
			}
		}
	}
}

func benchDgemm(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, m, k)
	bb := randMatrix(rng, k, n)
	c := NewMatrix(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(a, bb, c)
	}
	flops := float64(DgemmFlops(m, k, n)) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "Mflops/s")
}

func BenchmarkDgemmK12x128(b *testing.B) { benchDgemm(b, 12, 12, 128) }
func BenchmarkDgemmK72x128(b *testing.B) { benchDgemm(b, 72, 72, 128) }
func BenchmarkDgemm256(b *testing.B)     { benchDgemm(b, 256, 256, 256) }

// BenchmarkGemmPanelsK12x128 measures the packed alternative at the
// aggregation chunk shape, for comparison against the streaming dispatch
// (packing cost excluded — both operands pre-packed).
func BenchmarkGemmPanelsK12x128(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m, k, n := 12, 12, 128
	a := randMatrix(rng, m, k)
	bm := randMatrix(rng, k, n)
	ap := make([]float64, m*k)
	bp := make([]float64, k*n)
	PackA4(a, ap)
	PackB4(bm, bp)
	c := make([]float64, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmPanels(ap, bp, m, k, n, c)
	}
	flops := float64(DgemmFlops(m, k, n)) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "Mflops/s")
}
