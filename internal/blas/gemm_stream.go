package blas

// This file holds the streaming GEMM kernels Dgemm dispatches to: i-k-j
// loops unrolled four deep in k, so the inner loop reads four B rows
// against one C row and retires eight flops per C-element store. On the
// scalar Go backend this shape beats the BLIS-style packed micro-kernel of
// gemm_packed.go at every translation size (see EXPERIMENTS.md): packing
// passes and 4x4 register tiles pay off only when the register allocator
// can hold the tile, and with sixteen accumulators plus operand temporaries
// the compiler spills, while the k-unrolled stream keeps live values under
// the register budget and every operand access unit-stride. The constant
// trip-count variants for the paper's K = 12 and K = 72 translation shapes
// let the compiler drop the remainder loop and prove away slice bounds
// checks.
//
// The reduction order is fixed and documented: k-terms are grouped in
// fours, each group summed left to right, groups accumulated in ascending
// k. Every kernel here follows it, which is what makes repeated solves on
// reused state bitwise reproducible (and is pinned by TestDgemmGroupedOrderExact).

// gemm4k is the generic k-unrolled streaming kernel: C += A*B.
func gemm4k(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		kk := 0
		for ; kk+3 < k; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := b[kk*n : (kk+1)*n]
			b1 := b[(kk+1)*n : (kk+2)*n]
			b2 := b[(kk+2)*n : (kk+3)*n]
			b3 := b[(kk+3)*n : (kk+4)*n]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; kk < k; kk++ {
			a0 := arow[kk]
			b0 := b[kk*n : (kk+1)*n]
			for j := range crow {
				crow[j] += a0 * b0[j]
			}
		}
	}
}

// gemmK12 is gemm4k with the trip count fixed at the icosahedral rule's
// K = 12: three four-row sweeps, no remainder.
func gemmK12(m, n int, a, b, c []float64) {
	b = b[:12*n]
	for i := 0; i < m; i++ {
		arow := a[i*12 : i*12+12 : i*12+12]
		crow := c[i*n : (i+1)*n]
		for kk := 0; kk < 12; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := b[kk*n : (kk+1)*n]
			b1 := b[(kk+1)*n : (kk+2)*n]
			b2 := b[(kk+2)*n : (kk+3)*n]
			b3 := b[(kk+3)*n : (kk+4)*n]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
	}
}

// gemmK72 is gemm4k with the trip count fixed at the product rule's K = 72.
func gemmK72(m, n int, a, b, c []float64) {
	b = b[:72*n]
	for i := 0; i < m; i++ {
		arow := a[i*72 : i*72+72 : i*72+72]
		crow := c[i*n : (i+1)*n]
		for kk := 0; kk < 72; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := b[kk*n : (kk+1)*n]
			b1 := b[(kk+1)*n : (kk+2)*n]
			b2 := b[(kk+2)*n : (kk+3)*n]
			b3 := b[(kk+3)*n : (kk+4)*n]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
	}
}

// DgemmAssign computes C = A*B (assignment, not accumulate): the first
// k-term(s) write C directly, so callers reusing scratch blocks skip the
// zeroing pass Dgemm's += contract would force. Backend-dispatched like
// Dgemm, with the same per-backend reduction order as Dgemm on a zero C.
// A k = 0 product assigns zero.
func DgemmAssign(a, b, c Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("blas: DgemmAssign shape mismatch")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		clear(c.Data[:m*n])
		return
	}
	if countersOn.Load() {
		countGemm(m, k, n)
	}
	gemmAssignImpl(m, k, n, a.Data, b.Data, c.Data)
}

// gemmAssignScalar is the scalar-backend DgemmAssign body: the k-unrolled
// stream of gemm4k with the first k-group assigning instead of
// accumulating (grouped reduction order preserved).
func gemmAssignScalar(m, k, n int, ad, bd, cd []float64) {
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		var kk int
		if k >= 4 {
			a0, a1, a2, a3 := arow[0], arow[1], arow[2], arow[3]
			b0 := bd[0:n]
			b1 := bd[n : 2*n]
			b2 := bd[2*n : 3*n]
			b3 := bd[3*n : 4*n]
			for j := range crow {
				crow[j] = a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
			kk = 4
		} else {
			a0 := arow[0]
			b0 := bd[0:n]
			for j := range crow {
				crow[j] = a0 * b0[j]
			}
			kk = 1
		}
		for ; kk+3 < k; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := bd[kk*n : (kk+1)*n]
			b1 := bd[(kk+1)*n : (kk+2)*n]
			b2 := bd[(kk+2)*n : (kk+3)*n]
			b3 := bd[(kk+3)*n : (kk+4)*n]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; kk < k; kk++ {
			a0 := arow[kk]
			b0 := bd[kk*n : (kk+1)*n]
			for j := range crow {
				crow[j] += a0 * b0[j]
			}
		}
	}
}
