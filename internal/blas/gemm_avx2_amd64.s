// AVX2/FMA streaming GEMM kernels (the avx2 backend of dispatch.go).
//
// Reduction order (the avx2 backend's reproducibility contract): every C
// element is one fused-multiply-add chain ascending k,
//
//	s = c[i,j]; for kk = 0..k-1: s = fma(a[i,kk], b[kk,j], s)
//
// identical in every lane, every column-block width, and the masked tail,
// so results are bitwise reproducible call to call and exactly modeled by
// the math.FMA transcription in gemm_kernels_test.go. The assign variant
// starts the chain from 0 instead of c[i,j], which is Dgemm on a zero C.
//
// Structure: one row of C at a time, column blocks of 32/16/4 doubles held
// in YMM accumulators across the whole k loop (eight independent FMA chains
// in the 32-wide block hide the 4-cycle FMA latency), B rows streamed as
// memory operands, and a VMASKMOVPD tail for n % 4 trailing columns. The
// shared body is gemmbody<>; the exported entries differ only in how they
// bind k (runtime, 12, or 72) and whether C is loaded or zeroed.
//
// gemmbody<> register contract:
//	R8  m    R9  k    R10 n    R11 n*8    R12 assign flag (1 = C = A*B)
//	SI  a row    DX  b base    DI  c row
// (clobbers AX BX CX R13 R14 R15 and Y0-Y10.)

#include "textflag.h"

// masktab<>[r] is the VMASKMOVPD lane mask covering r trailing doubles.
DATA masktab<>+0x00(SB)/8, $0x0000000000000000
DATA masktab<>+0x08(SB)/8, $0x0000000000000000
DATA masktab<>+0x10(SB)/8, $0x0000000000000000
DATA masktab<>+0x18(SB)/8, $0x0000000000000000
DATA masktab<>+0x20(SB)/8, $0xffffffffffffffff
DATA masktab<>+0x28(SB)/8, $0x0000000000000000
DATA masktab<>+0x30(SB)/8, $0x0000000000000000
DATA masktab<>+0x38(SB)/8, $0x0000000000000000
DATA masktab<>+0x40(SB)/8, $0xffffffffffffffff
DATA masktab<>+0x48(SB)/8, $0xffffffffffffffff
DATA masktab<>+0x50(SB)/8, $0x0000000000000000
DATA masktab<>+0x58(SB)/8, $0x0000000000000000
DATA masktab<>+0x60(SB)/8, $0xffffffffffffffff
DATA masktab<>+0x68(SB)/8, $0xffffffffffffffff
DATA masktab<>+0x70(SB)/8, $0xffffffffffffffff
DATA masktab<>+0x78(SB)/8, $0x0000000000000000
GLOBL masktab<>(SB), RODATA, $128

TEXT gemmbody<>(SB), NOSPLIT, $0-0
rowloop:
	TESTQ R8, R8
	JLE   bodydone
	XORQ  BX, BX             // j = 0

col32:
	LEAQ  32(BX), AX
	CMPQ  AX, R10
	JG    col16
	LEAQ  (DI)(BX*8), R13    // &c[i*n+j]
	LEAQ  (DX)(BX*8), R14    // &b[j]
	MOVQ  SI, R15            // &a[i*k]
	TESTQ R12, R12
	JNZ   z32
	VMOVUPD (R13), Y0
	VMOVUPD 32(R13), Y1
	VMOVUPD 64(R13), Y2
	VMOVUPD 96(R13), Y3
	VMOVUPD 128(R13), Y4
	VMOVUPD 160(R13), Y5
	VMOVUPD 192(R13), Y6
	VMOVUPD 224(R13), Y7
	JMP   k32start
z32:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
k32start:
	MOVQ  R9, CX
	SHRQ  $1, CX             // k/2 paired iterations
	JZ    k32odd
k32pair:
	VBROADCASTSD (R15), Y8
	VFMADD231PD (R14), Y8, Y0
	VFMADD231PD 32(R14), Y8, Y1
	VFMADD231PD 64(R14), Y8, Y2
	VFMADD231PD 96(R14), Y8, Y3
	VFMADD231PD 128(R14), Y8, Y4
	VFMADD231PD 160(R14), Y8, Y5
	VFMADD231PD 192(R14), Y8, Y6
	VFMADD231PD 224(R14), Y8, Y7
	ADDQ  R11, R14
	VBROADCASTSD 8(R15), Y9
	VFMADD231PD (R14), Y9, Y0
	VFMADD231PD 32(R14), Y9, Y1
	VFMADD231PD 64(R14), Y9, Y2
	VFMADD231PD 96(R14), Y9, Y3
	VFMADD231PD 128(R14), Y9, Y4
	VFMADD231PD 160(R14), Y9, Y5
	VFMADD231PD 192(R14), Y9, Y6
	VFMADD231PD 224(R14), Y9, Y7
	ADDQ  R11, R14
	ADDQ  $16, R15
	DECQ  CX
	JNZ   k32pair
k32odd:
	TESTQ $1, R9
	JZ    k32done
	VBROADCASTSD (R15), Y8
	VFMADD231PD (R14), Y8, Y0
	VFMADD231PD 32(R14), Y8, Y1
	VFMADD231PD 64(R14), Y8, Y2
	VFMADD231PD 96(R14), Y8, Y3
	VFMADD231PD 128(R14), Y8, Y4
	VFMADD231PD 160(R14), Y8, Y5
	VFMADD231PD 192(R14), Y8, Y6
	VFMADD231PD 224(R14), Y8, Y7
k32done:
	VMOVUPD Y0, (R13)
	VMOVUPD Y1, 32(R13)
	VMOVUPD Y2, 64(R13)
	VMOVUPD Y3, 96(R13)
	VMOVUPD Y4, 128(R13)
	VMOVUPD Y5, 160(R13)
	VMOVUPD Y6, 192(R13)
	VMOVUPD Y7, 224(R13)
	ADDQ  $32, BX
	JMP   col32

col16:
	LEAQ  16(BX), AX
	CMPQ  AX, R10
	JG    col4
	LEAQ  (DI)(BX*8), R13
	LEAQ  (DX)(BX*8), R14
	MOVQ  SI, R15
	MOVQ  R9, CX
	TESTQ R12, R12
	JNZ   z16
	VMOVUPD (R13), Y0
	VMOVUPD 32(R13), Y1
	VMOVUPD 64(R13), Y2
	VMOVUPD 96(R13), Y3
	JMP   k16
z16:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
k16:
	VBROADCASTSD (R15), Y8
	VFMADD231PD (R14), Y8, Y0
	VFMADD231PD 32(R14), Y8, Y1
	VFMADD231PD 64(R14), Y8, Y2
	VFMADD231PD 96(R14), Y8, Y3
	ADDQ  $8, R15
	ADDQ  R11, R14
	DECQ  CX
	JNZ   k16
	VMOVUPD Y0, (R13)
	VMOVUPD Y1, 32(R13)
	VMOVUPD Y2, 64(R13)
	VMOVUPD Y3, 96(R13)
	ADDQ  $16, BX
	JMP   col16

col4:
	LEAQ  4(BX), AX
	CMPQ  AX, R10
	JG    coltail
	LEAQ  (DI)(BX*8), R13
	LEAQ  (DX)(BX*8), R14
	MOVQ  SI, R15
	MOVQ  R9, CX
	TESTQ R12, R12
	JNZ   z4
	VMOVUPD (R13), Y0
	JMP   k4
z4:
	VXORPD Y0, Y0, Y0
k4:
	VBROADCASTSD (R15), Y8
	VFMADD231PD (R14), Y8, Y0
	ADDQ  $8, R15
	ADDQ  R11, R14
	DECQ  CX
	JNZ   k4
	VMOVUPD Y0, (R13)
	ADDQ  $4, BX
	JMP   col4

coltail:
	MOVQ  R10, AX
	SUBQ  BX, AX             // r = n - j, 0..3
	TESTQ AX, AX
	JZ    rowdone
	SHLQ  $5, AX
	LEAQ  masktab<>(SB), CX
	VMOVUPD (CX)(AX*1), Y9   // lane mask for r doubles
	LEAQ  (DI)(BX*8), R13
	LEAQ  (DX)(BX*8), R14
	MOVQ  SI, R15
	MOVQ  R9, CX
	TESTQ R12, R12
	JNZ   ztail
	VMASKMOVPD (R13), Y9, Y0
	JMP   ktail
ztail:
	VXORPD Y0, Y0, Y0
ktail:
	VBROADCASTSD (R15), Y8
	VMASKMOVPD (R14), Y9, Y10
	VFMADD231PD Y10, Y8, Y0
	ADDQ  $8, R15
	ADDQ  R11, R14
	DECQ  CX
	JNZ   ktail
	VMASKMOVPD Y0, Y9, (R13)

rowdone:
	LEAQ  (SI)(R9*8), SI     // next a row
	ADDQ  R11, DI            // next c row
	DECQ  R8
	JNZ   rowloop
bodydone:
	RET

// func dgemmAVX2(m, k, n int, a, b, c *float64)
TEXT ·dgemmAVX2(SB), NOSPLIT, $0-48
	MOVQ m+0(FP), R8
	MOVQ k+8(FP), R9
	MOVQ n+16(FP), R10
	MOVQ a+24(FP), SI
	MOVQ b+32(FP), DX
	MOVQ c+40(FP), DI
	MOVQ R10, R11
	SHLQ $3, R11
	XORQ R12, R12
	CALL gemmbody<>(SB)
	VZEROUPPER
	RET

// func dgemmAssignAVX2(m, k, n int, a, b, c *float64)
TEXT ·dgemmAssignAVX2(SB), NOSPLIT, $0-48
	MOVQ m+0(FP), R8
	MOVQ k+8(FP), R9
	MOVQ n+16(FP), R10
	MOVQ a+24(FP), SI
	MOVQ b+32(FP), DX
	MOVQ c+40(FP), DI
	MOVQ R10, R11
	SHLQ $3, R11
	MOVQ $1, R12
	CALL gemmbody<>(SB)
	VZEROUPPER
	RET

// func gemmK12AVX2(m, n int, a, b, c *float64)
//
// The K = 12 constant-trip entry (icosahedral rule): the paired k loop runs
// exactly six times with no odd remainder.
TEXT ·gemmK12AVX2(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), R8
	MOVQ $12, R9
	MOVQ n+8(FP), R10
	MOVQ a+16(FP), SI
	MOVQ b+24(FP), DX
	MOVQ c+32(FP), DI
	MOVQ R10, R11
	SHLQ $3, R11
	XORQ R12, R12
	CALL gemmbody<>(SB)
	VZEROUPPER
	RET

// func gemmK72AVX2(m, n int, a, b, c *float64)
//
// The K = 72 constant-trip entry (product rule): 36 paired k iterations.
TEXT ·gemmK72AVX2(SB), NOSPLIT, $0-40
	MOVQ m+0(FP), R8
	MOVQ $72, R9
	MOVQ n+8(FP), R10
	MOVQ a+16(FP), SI
	MOVQ b+24(FP), DX
	MOVQ c+32(FP), DI
	MOVQ R10, R11
	SHLQ $3, R11
	XORQ R12, R12
	CALL gemmbody<>(SB)
	VZEROUPPER
	RET

// func dgemvAVX2(rows, cols int, a, x, y *float64)
//
// y += A*x, one row at a time. Reduction order: two four-lane accumulators
// — acc0 takes column groups j ≡ 0 (mod 8) and the lone 4-wide group, acc1
// takes groups j ≡ 4 (mod 8) and the masked tail — then
// hsum(acc0 + acc1) = (l0+l2) + (l1+l3), added into y[i].
TEXT ·dgemvAVX2(SB), NOSPLIT, $0-40
	MOVQ rows+0(FP), R8
	MOVQ cols+8(FP), R9
	MOVQ a+16(FP), SI
	MOVQ x+24(FP), DX
	MOVQ y+32(FP), DI
	MOVQ R9, R12
	ANDQ $3, R12             // tail lane count
	JZ   gvrows
	MOVQ R12, AX
	SHLQ $5, AX
	LEAQ masktab<>(SB), CX
	VMOVUPD (CX)(AX*1), Y9
gvrows:
	TESTQ R8, R8
	JLE   gvdone
gvrow:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ  BX, BX
gv8:
	LEAQ  8(BX), AX
	CMPQ  AX, R9
	JG    gv4
	VMOVUPD (SI)(BX*8), Y2
	VMOVUPD 32(SI)(BX*8), Y3
	VFMADD231PD (DX)(BX*8), Y2, Y0
	VFMADD231PD 32(DX)(BX*8), Y3, Y1
	ADDQ  $8, BX
	JMP   gv8
gv4:
	LEAQ  4(BX), AX
	CMPQ  AX, R9
	JG    gvtail
	VMOVUPD (SI)(BX*8), Y2
	VFMADD231PD (DX)(BX*8), Y2, Y0
	ADDQ  $4, BX
gvtail:
	TESTQ R12, R12
	JZ    gvsum
	VMASKMOVPD (SI)(BX*8), Y9, Y2
	VMASKMOVPD (DX)(BX*8), Y9, Y3
	VFMADD231PD Y3, Y2, Y1
gvsum:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VADDSD (DI), X0, X0
	VMOVSD X0, (DI)
	ADDQ  $8, DI
	LEAQ  (SI)(R9*8), SI
	DECQ  R8
	JNZ   gvrow
gvdone:
	VZEROUPPER
	RET

// func micro4x4AVX2(kc int, ap, bp, acc *float64)
//
// The packed-path micro-kernel: a 4x4 C tile in four YMM registers (one
// per row) across the whole k loop — the register residency the scalar
// tile loses to spills. acc[r*4+c] = fma chain ascending k from 0, the
// same per-element order as the streaming kernels on a zero C.
TEXT ·micro4x4AVX2(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), R8
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DX
	MOVQ acc+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	TESTQ R8, R8
	JLE   mkstore
mkloop:
	VMOVUPD (DX), Y4
	VBROADCASTSD (SI), Y5
	VFMADD231PD Y4, Y5, Y0
	VBROADCASTSD 8(SI), Y5
	VFMADD231PD Y4, Y5, Y1
	VBROADCASTSD 16(SI), Y5
	VFMADD231PD Y4, Y5, Y2
	VBROADCASTSD 24(SI), Y5
	VFMADD231PD Y4, Y5, Y3
	ADDQ  $32, SI
	ADDQ  $32, DX
	DECQ  R8
	JNZ   mkloop
mkstore:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET
