package blas

import "nbody/internal/simd"

// This file is the backend seam of the BLAS layer: every public kernel
// (Dgemm, DgemmAssign, Dgemv, GemmPanels) routes its inner loops through
// one of the function pointers below, and applyBackend rebinds them when
// internal/simd switches backends. The scalar bindings are the portable
// fallback and the only ones on non-amd64 builds; the AVX2 bindings live in
// gemm_avx2_amd64.go.
//
// Reduction orders (the per-backend bitwise-reproducibility contract):
//
//   - scalar: k-terms grouped in fours, each group summed left to right,
//     groups accumulated ascending k (gemm_stream.go; pinned by
//     TestDgemmGroupedOrderExact).
//   - avx2: one fused-multiply-add chain per C element, ascending k —
//     s = fma(a[i,k], b[k,j], s) — identical in every lane and block size
//     (pinned by TestDgemmFMAOrderExact against a math.FMA transcription).
//
// Within one backend repeated calls are bitwise identical; across backends
// results differ by rounding only, bounded by the cross-backend matrix in
// gemm_kernels_test.go and the solver-level differential suite.
var (
	gemmK12Impl    func(m, n int, a, b, c []float64)            = gemmK12
	gemmK72Impl    func(m, n int, a, b, c []float64)            = gemmK72
	gemmImpl       func(m, k, n int, a, b, c []float64)         = gemm4k
	gemmAssignImpl func(m, k, n int, a, b, c []float64)         = gemmAssignScalar
	gemvImpl       func(rows, cols int, a, x, y []float64)      = gemvScalar
	microImpl      func(kc int, ap, bp []float64, acc *[16]float64) = microScalar
)

func init() { simd.Register(applyBackend) }

// applyBackend rebinds the kernel seams for the named backend. Unknown
// names bind scalar: simd validates names, so the only way here with one is
// a future backend this package predates, and the portable stream is the
// correct degradation.
func applyBackend(name string) {
	if name == simd.AVX2 && haveAVX2 {
		bindAVX2()
		return
	}
	bindScalar()
}

func bindScalar() {
	gemmK12Impl = gemmK12
	gemmK72Impl = gemmK72
	gemmImpl = gemm4k
	gemmAssignImpl = gemmAssignScalar
	gemvImpl = gemvScalar
	microImpl = microScalar
}

// gemvScalar is the portable Dgemv inner loop: each row's dot product is
// accumulated left to right into one scalar.
func gemvScalar(rows, cols int, a, x, y []float64) {
	for i := 0; i < rows; i++ {
		row := a[i*cols : (i+1)*cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] += s
	}
}

// microScalar routes one packed 4x4 micro-kernel invocation to the scalar
// register-tile implementations of gemm_packed.go.
func microScalar(kc int, ap, bp []float64, acc *[16]float64) {
	switch kc {
	case 12:
		micro4x4K12(ap, bp, acc)
	case 72:
		micro4x4K72(ap, bp, acc)
	default:
		micro4x4(kc, ap, bp, acc)
	}
}
