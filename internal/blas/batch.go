package blas

import (
	"runtime"
	"sync"
)

// MultiGemm computes Cs[i] += A * Bs[i] for every instance i: the CMSSL
// "multiple instance matrix-matrix multiplication" of Section 3.3.3, where
// the same translation matrix acts on many aggregated potential blocks.
// Instances run serially; use ParallelMultiGemm to spread them over cores.
func MultiGemm(a Matrix, bs, cs []Matrix) {
	if len(bs) != len(cs) {
		panic("blas: MultiGemm instance count mismatch")
	}
	for i := range bs {
		Dgemm(a, bs[i], cs[i])
	}
}

// ParallelMultiGemm is MultiGemm with instances distributed over min(GOMAXPROCS,
// len(bs)) goroutines. Instances must write disjoint C matrices, which the
// aggregation schemes in this repository guarantee by construction.
func ParallelMultiGemm(a Matrix, bs, cs []Matrix) {
	if len(bs) != len(cs) {
		panic("blas: ParallelMultiGemm instance count mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(bs) {
		workers = len(bs)
	}
	if workers <= 1 {
		MultiGemm(a, bs, cs)
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(bs) {
					return
				}
				Dgemm(a, bs[i], cs[i])
			}
		}()
	}
	wg.Wait()
}

// GemvBatch applies y[i] += A * x[i] over parallel slices-of-vectors. It is
// the unaggregated (level-2) reference against which the aggregation
// benchmarks compare.
func GemvBatch(a Matrix, xs, ys [][]float64) {
	if len(xs) != len(ys) {
		panic("blas: GemvBatch length mismatch")
	}
	for i := range xs {
		Dgemv(a, xs[i], ys[i])
	}
}

// Parallel runs fn(i) for i in [0, n) over the available cores. It is the
// generic work-sharing driver used by the shared-memory solvers. fn must be
// safe to call concurrently for distinct i.
func Parallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Contiguous chunking keeps each worker on a contiguous index range,
	// which matters for the cache behaviour of box-array sweeps.
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
