package blas

import (
	"context"

	"nbody/internal/sched"
)

// MultiGemm computes Cs[i] += A * Bs[i] for every instance i: the CMSSL
// "multiple instance matrix-matrix multiplication" of Section 3.3.3, where
// the same translation matrix acts on many aggregated potential blocks.
// Instances run serially; use ParallelMultiGemm to spread them over cores.
func MultiGemm(a Matrix, bs, cs []Matrix) {
	if len(bs) != len(cs) {
		panic("blas: MultiGemm instance count mismatch")
	}
	for i := range bs {
		Dgemm(a, bs[i], cs[i])
	}
}

// ParallelMultiGemm is MultiGemm with instances distributed over the
// persistent worker pool. Instances are claimed in contiguous chunks from
// an atomic counter (no mutex, no per-call goroutines), so many small
// instances do not serialize on a shared work index. Instances must write
// disjoint C matrices, which the aggregation schemes in this repository
// guarantee by construction.
func ParallelMultiGemm(a Matrix, bs, cs []Matrix) {
	if len(bs) != len(cs) {
		panic("blas: ParallelMultiGemm instance count mismatch")
	}
	sched.RunChunks(len(bs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Dgemm(a, bs[i], cs[i])
		}
	})
}

// GemvBatch applies y[i] += A * x[i] over parallel slices-of-vectors. It is
// the unaggregated (level-2) reference against which the aggregation
// benchmarks compare.
func GemvBatch(a Matrix, xs, ys [][]float64) {
	if len(xs) != len(ys) {
		panic("blas: GemvBatch length mismatch")
	}
	for i := range xs {
		Dgemv(a, xs[i], ys[i])
	}
}

// Parallel runs fn(i) for i in [0, n) over the persistent worker pool with
// dynamic chunk claiming (see internal/sched). It is the generic
// work-sharing driver used by the shared-memory solvers. fn must be safe
// to call concurrently for distinct i.
func Parallel(n int, fn func(i int)) { sched.Run(n, fn) }

// ParallelChunks runs body(lo, hi) over a chunk partition of [0, n) on the
// worker pool; per-chunk setup (scratch buffers, local accumulators) is
// amortized over the chunk.
func ParallelChunks(n int, body func(lo, hi int)) { sched.RunChunks(n, body) }

// ParallelCtx is Parallel with cooperative cancellation: participants check
// ctx between chunk claims, so a canceled context stops the sweep within one
// chunk's work and ParallelCtx returns ctx.Err(). A nil ctx is identical to
// Parallel (no overhead beyond a nil compare).
func ParallelCtx(ctx context.Context, n int, fn func(i int)) error {
	return sched.RunCtx(ctx, n, fn)
}

// ParallelChunksCtx is ParallelChunks with cooperative cancellation, under
// the same contract as ParallelCtx.
func ParallelChunksCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	return sched.RunChunksCtx(ctx, n, body)
}

// Serial reports whether the worker pool has a single executor, i.e.
// Parallel would run every body inline on the caller. Hot paths that issue
// thousands of tiny parallel regions per solve use this to take a plain
// loop instead — same work order, but no escaping closure per region.
func Serial() bool { return sched.Workers() == 1 }
