package blas

import "sync/atomic"

// Counters is the call-site accounting of the BLAS kernels: how many GEMM
// and GEMV invocations ran and the flops they performed (2mkn / 2mn
// convention). It is the observed-work cross-check for the solvers'
// analytic per-phase flop counts.
//
// This package sits below internal/metrics in the import graph (metrics
// depends on the dp machine, which depends on blas), so it keeps its own
// counters instead of recording into a metrics.Rec; the metrics layer reads
// them out with Counters().
type Counters struct {
	GemmCalls int64
	GemmFlops int64
	GemvCalls int64
	GemvFlops int64
}

var (
	countersOn atomic.Bool
	gemmCalls  atomic.Int64
	gemmFlops  atomic.Int64
	gemvCalls  atomic.Int64
	gemvFlops  atomic.Int64
)

// EnableCounters switches kernel call accounting on or off. Off (the
// default) costs one predictable branch per kernel call; the branch is on
// an atomic.Bool load, which compiles to a plain aligned load.
func EnableCounters(on bool) { countersOn.Store(on) }

// ResetCounters zeroes the kernel counters.
func ResetCounters() {
	gemmCalls.Store(0)
	gemmFlops.Store(0)
	gemvCalls.Store(0)
	gemvFlops.Store(0)
}

// ReadCounters returns the counters accumulated since the last reset.
func ReadCounters() Counters {
	return Counters{
		GemmCalls: gemmCalls.Load(),
		GemmFlops: gemmFlops.Load(),
		GemvCalls: gemvCalls.Load(),
		GemvFlops: gemvFlops.Load(),
	}
}

func countGemm(m, k, n int) {
	gemmCalls.Add(1)
	gemmFlops.Add(DgemmFlops(m, k, n))
}

func countGemv(rows, cols int) {
	gemvCalls.Add(1)
	gemvFlops.Add(DgemvFlops(rows, cols))
}
