package core

import (
	"fmt"
	"time"
)

// Phase identifies one of the five steps of the generic hierarchical method
// (Section 2.2) plus setup.
type Phase int

// The phases, in execution order.
const (
	PhaseSetup     Phase = iota // partition + translation matrices
	PhaseLeafOuter              // step 1: particle -> leaf outer (P2O)
	PhaseUpward                 // step 2: T1 sweep
	PhaseDownward               // step 3: T3 + T2 sweeps
	PhaseEvalLocal              // step 4: leaf inner -> particle (L2P)
	PhaseNear                   // step 5: near-field direct evaluation
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseLeafOuter:
		return "leaf-outer"
	case PhaseUpward:
		return "upward"
	case PhaseDownward:
		return "downward"
	case PhaseEvalLocal:
		return "eval-local"
	case PhaseNear:
		return "near-field"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Stats records the per-phase flop counts and wall times of one solve. The
// flop counts are analytic (BLAS shapes and pair counts), the times are
// measured; together they feed the efficiency and cycles-per-particle
// metrics of Table 1.
type Stats struct {
	Flops [numPhases]int64
	Time  [numPhases]time.Duration

	Particles int
	Depth     int
	K         int

	// T2Count is the number of interactive-field translations actually
	// applied (after boundary clipping and supernode reduction); the
	// headline count the supernode optimization reduces.
	T2Count int64
	// NearPairs is the number of particle-particle interactions evaluated.
	NearPairs int64
}

// TotalFlops sums the flops of the five algorithmic phases (setup excluded:
// translation-matrix construction is amortized across time steps, as in the
// paper's performance accounting).
func (s *Stats) TotalFlops() int64 {
	var t int64
	for p := PhaseLeafOuter; p < numPhases; p++ {
		t += s.Flops[p]
	}
	return t
}

// TotalTime sums the measured time of the five algorithmic phases.
func (s *Stats) TotalTime() time.Duration {
	var t time.Duration
	for p := PhaseLeafOuter; p < numPhases; p++ {
		t += s.Time[p]
	}
	return t
}

// TraversalFlops returns the flops of the hierarchy traversal only (upward
// + downward), the quantity the optimal-depth analysis balances against the
// near field.
func (s *Stats) TraversalFlops() int64 {
	return s.Flops[PhaseUpward] + s.Flops[PhaseDownward]
}

// String formats a compact per-phase report.
func (s *Stats) String() string {
	out := fmt.Sprintf("N=%d depth=%d K=%d\n", s.Particles, s.Depth, s.K)
	for p := PhaseSetup; p < numPhases; p++ {
		out += fmt.Sprintf("  %-11s %12d flops  %v\n", p.String(), s.Flops[p], s.Time[p].Round(time.Microsecond))
	}
	return out
}

// timePhase runs fn and accumulates its wall time into the phase.
func (s *Stats) timePhase(p Phase, fn func()) {
	start := time.Now()
	fn()
	s.Time[p] += time.Since(start)
}
