package core

import "nbody/internal/metrics"

// Phase and Stats are the shared per-phase instrumentation types of
// internal/metrics; core keeps aliases so its historical API (Phase
// constants indexing Stats arrays) survives the extraction. The generic
// method's step 3 ("downward") is recorded as its two constituent
// translations: the parent-to-child shift (PhaseT3) and the
// interactive-field conversion (PhaseT2).
type (
	Phase = metrics.Phase
	Stats = metrics.Snapshot
)

// The phases of the shared-memory solver, in execution order.
const (
	PhaseSetup     = metrics.PhaseSetup     // translation matrices + traversal plans
	PhaseSort      = metrics.PhaseSort      // per-solve partition + box-order mirrors
	PhaseLeafOuter = metrics.PhaseLeafOuter // step 1: particle -> leaf outer (P2O)
	PhaseUpward    = metrics.PhaseT1        // step 2: T1 sweep
	PhaseT2        = metrics.PhaseT2        // step 3a: interactive-field conversion
	PhaseT3        = metrics.PhaseT3        // step 3b: parent -> child shift
	PhaseEvalLocal = metrics.PhaseEvalLocal // step 4: leaf inner -> particle (L2P)
	PhaseNear      = metrics.PhaseNear      // step 5: near-field direct evaluation
)
