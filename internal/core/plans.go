package core

import (
	"nbody/internal/blas"
	"nbody/internal/geom"
	"nbody/internal/tree"
)

// This file builds the solver's steady-state traversal plans: every gather
// map the upward (T1), downward-shift (T3) and interactive-field (T2)
// sweeps need. The seed implementation rebuilt these index maps inside
// every solve — for time-stepping workloads that rebuild dominated the
// hierarchical phases — so they are now constructed once in NewSolver and
// reused by every solve (the zero-allocation reuse contract).

// gatherPlan pairs source and destination box indices for one
// parent-child octant sweep: dst[dstIdx[i]] += T * src[srcIdx[i]].
type gatherPlan struct {
	srcIdx, dstIdx []int32
}

// latticeT2 describes the (source, target) pairs of one interactive-field
// (octant, offset) sweep without materializing them: targets are the
// parity-aligned lattice {lox + 2i, loy + 2j, loz + 2k} clipped to the
// grid, and the source index is always target index + delta (the linear
// index of the fixed offset). Materialized index arrays for the T2 sweeps
// would cost O(875 * boxes) memory per level; the lattice form is O(1) per
// (octant, offset).
type latticeT2 struct {
	t             blas.Matrix
	delta         int32
	lox, loy, loz int32
	nx, ny, nz    int32
	grid          int32
	count         int32
}

// buildUpwardPlans returns, for each parent level l in [2, depth-1] and
// octant, the child-to-parent gather map of the T1 sweep.
func buildUpwardPlans(h tree.Hierarchy, depth int) [][8]gatherPlan {
	plans := make([][8]gatherPlan, depth+1)
	for l := 2; l <= depth-1; l++ {
		np := h.GridSize(l)
		nc := h.GridSize(l + 1)
		nb := np * np * np
		for oct := 0; oct < 8; oct++ {
			src := make([]int32, nb)
			dst := make([]int32, nb)
			for pb := 0; pb < nb; pb++ {
				pc := geom.CoordFromIndex(pb, np)
				src[pb] = int32(pc.Child(oct).Index(nc))
				dst[pb] = int32(pb)
			}
			plans[l][oct] = gatherPlan{srcIdx: src, dstIdx: dst}
		}
	}
	return plans
}

// buildT3Plans returns, for each child level l in [3, depth] and octant,
// the parent-to-child gather map of the T3 sweep.
func buildT3Plans(h tree.Hierarchy, depth int) [][8]gatherPlan {
	plans := make([][8]gatherPlan, depth+1)
	for l := 3; l <= depth; l++ {
		np := h.GridSize(l - 1)
		nc := h.GridSize(l)
		nb := np * np * np
		for oct := 0; oct < 8; oct++ {
			src := make([]int32, nb)
			dst := make([]int32, nb)
			for pb := 0; pb < nb; pb++ {
				pc := geom.CoordFromIndex(pb, np)
				src[pb] = int32(pb)
				dst[pb] = int32(pc.Child(oct).Index(nc))
			}
			plans[l][oct] = gatherPlan{srcIdx: src, dstIdx: dst}
		}
	}
	return plans
}

// buildT2Plan enumerates the non-empty (octant, offset) lattices of one
// level's interactive field.
func (s *Solver) buildT2Plan(l int) []latticeT2 {
	n := s.hier.GridSize(l)
	var plan []latticeT2
	for oct := 0; oct < 8; oct++ {
		for _, o := range s.interactive[oct] {
			lat, ok := offsetLattice(n, oct, o)
			if !ok {
				continue
			}
			lat.t = s.ts.T2For(o)
			plan = append(plan, lat)
		}
	}
	return plan
}

// offsetLattice computes the clipped, parity-aligned target lattice for
// targets of a given octant under a fixed interactive offset (source =
// target + o). ok is false when clipping empties the lattice.
func offsetLattice(n, oct int, o geom.Coord3) (latticeT2, bool) {
	lox, hix := clipRange(n, o.X)
	loy, hiy := clipRange(n, o.Y)
	loz, hiz := clipRange(n, o.Z)
	alignUp := func(lo, parity int) int {
		if lo%2 != parity {
			lo++
		}
		return lo
	}
	lox = alignUp(lox, oct&1)
	loy = alignUp(loy, oct>>1&1)
	loz = alignUp(loz, oct>>2&1)
	if lox > hix || loy > hiy || loz > hiz {
		return latticeT2{}, false
	}
	nx := (hix-lox)/2 + 1
	ny := (hiy-loy)/2 + 1
	nz := (hiz-loz)/2 + 1
	lat := latticeT2{
		delta: int32((o.Z*n+o.Y)*n + o.X),
		lox:   int32(lox), loy: int32(loy), loz: int32(loz),
		nx: int32(nx), ny: int32(ny), nz: int32(nz),
		grid:  int32(n),
		count: int32(nx * ny * nz),
	}
	return lat, true
}

// clipRange returns the target-coordinate range for which target+offset
// stays inside [0, n).
func clipRange(n, off int) (lo, hi int) {
	lo, hi = 0, n-1
	if off < 0 {
		lo = -off
	} else {
		hi = n - 1 - off
	}
	return lo, hi
}
