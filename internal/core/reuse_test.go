package core

import (
	"math/rand"
	"testing"
)

// TestRepeatedSolvesBitwiseIdentical guards the Solver reuse contract:
// with all traversal plans, expansion grids, and scratch hoisted into the
// Solver, consecutive solves on the same inputs must be bitwise
// reproducible — deterministic chunk boundaries, serial offset application,
// and the packed GEMM's fixed reduction order leave no source of run-to-run
// float variation.
func TestRepeatedSolvesBitwiseIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"aggregated", Config{Degree: 5, Depth: 3}},
		{"unaggregated", Config{Degree: 5, Depth: 3, DisableAggregation: true}},
		{"supernodes", Config{Degree: 7, Depth: 3, Supernodes: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			pos, q := uniformParticles(rng, 2048)
			s, err := NewSolver(unitBox(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			phi1, err := s.Potentials(pos, q)
			if err != nil {
				t.Fatal(err)
			}
			phi2, err := s.Potentials(pos, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := range phi1 {
				if phi1[i] != phi2[i] {
					t.Fatalf("potential %d differs across solves: %g vs %g", i, phi1[i], phi2[i])
				}
			}

			// The Into path must reproduce the allocating path bitwise.
			phi3 := make([]float64, len(pos))
			if err := s.PotentialsInto(phi3, pos, q); err != nil {
				t.Fatal(err)
			}
			for i := range phi1 {
				if phi1[i] != phi3[i] {
					t.Fatalf("PotentialsInto %d differs from Potentials: %g vs %g", i, phi3[i], phi1[i])
				}
			}

			p1, a1, err := s.Accelerations(pos, q)
			if err != nil {
				t.Fatal(err)
			}
			p2, a2, err := s.Accelerations(pos, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("acceleration-solve potential %d differs: %g vs %g", i, p1[i], p2[i])
				}
				if a1[i] != a2[i] {
					t.Fatalf("acceleration %d differs across solves: %v vs %v", i, a1[i], a2[i])
				}
			}
		})
	}
}
