package core

import (
	"context"
	"fmt"
	"sync"

	"nbody/internal/blas"
	"nbody/internal/direct"
	"nbody/internal/geom"
	"nbody/internal/metrics"
	"nbody/internal/pipeline"
	"nbody/internal/tree"
)

// Solver runs Anderson's method on a fixed hierarchy with precomputed
// translation matrices. It is the shared-memory reference implementation of
// the paper's algorithm (Section 2.2); the data-parallel machine expression
// lives in internal/dpfmm and is validated against this one.
//
// Steady-state reuse contract: everything a solve needs besides the output
// slices — the per-level far/local expansion grids, the partition scratch,
// the box-sorted particle mirrors, and every upward/downward gather map —
// is owned by the Solver and built once in NewSolver (see plans.go). A
// Solver therefore performs repeated solves (time-stepping, parameter
// sweeps) without per-solve allocation: use PotentialsInto /
// AccelerationsInto with caller-owned output buffers for the fully
// allocation-free path. Consecutive solves on identical inputs are bitwise
// reproducible. A Solver is not safe for concurrent solves.
type Solver struct {
	cfg  Config
	hier tree.Hierarchy
	ts   *TranslationSet

	interactive [8][]geom.Coord3
	supers      [8]tree.Supernodes
	nearOff     []geom.Coord3
	nearHalf    []geom.Coord3 // lexicographically positive half of nearOff

	// rec is the always-on per-phase recorder; snap is the materialized
	// view Stats() refreshes (kept on the Solver so Stats() allocates
	// nothing in steady state).
	rec  metrics.Rec
	snap Stats

	// Traversal plans, built once in NewSolver (plans.go).
	upPlan [][8]gatherPlan // parent level l: far[l+1] -> far[l]
	t3Plan [][8]gatherPlan // child level l: loc[l-1] -> loc[l]
	t2Plan [][]latticeT2   // level l interactive-field lattices

	// Per-level expansion grids, reused (and re-zeroed) every solve.
	far, loc [][]float64

	// Partition scratch: CSR particle-to-box map plus the counting-sort
	// working arrays, reused across solves.
	part  Partition
	boxOf []int32
	fill  []int

	// Box-sorted particle mirrors: posS/qS are the positions/charges in
	// box order, phiS/accS the per-particle results accumulated in that
	// order and scattered back on completion. Sorting once per solve makes
	// every leaf and near-field sweep a contiguous walk and removes the
	// seed implementation's per-box gather copies.
	posS []geom.Vec3
	qS   []float64
	phiS []float64
	accS []geom.Vec3

	// ctx is the cancellation signal of the solve in flight (nil outside
	// PotentialsCtx/AccelerationsCtx). Phase sweeps read it through par /
	// parChunks; a Solver runs one solve at a time, so a plain field is
	// enough.
	ctx context.Context

	// phases is the declared pipeline (see buildPhases), built once here so
	// steady-state solves run through pipeline.Run without allocating; in
	// binds the in-flight solve's inputs and outputs for the phase bodies,
	// and nHier marks the end of the hierarchy phases for PotentialsAt.
	phases []pipeline.Phase
	nHier  int
	in     struct {
		pos []geom.Vec3
		q   []float64
		phi []float64
		acc []geom.Vec3
	}
}

// NewSolver builds a solver for the domain root with the given
// configuration. Translation-matrix precomputation and traversal-plan
// construction happen here (the paper's setup phase) and are charged to
// PhaseSetup.
func NewSolver(root geom.Box3, cfg Config) (*Solver, error) {
	ncfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	h, err := tree.NewHierarchy(root, ncfg.Depth)
	if err != nil {
		return nil, err
	}
	s := &Solver{cfg: ncfg, hier: h}
	pipeline.Setup(&s.rec, func() { s.ts = NewTranslationSet(ncfg) })
	nmat := int64(2*8) + int64(len(tree.UnionInteractiveOffsets(ncfg.Separation)))
	s.rec.AddFlops(PhaseSetup, nmat*TranslationMatrixFlops(s.ts.K, ncfg.M))
	for oct := 0; oct < 8; oct++ {
		s.interactive[oct] = tree.InteractiveOffsets(ncfg.Separation, oct)
		if ncfg.Supernodes {
			s.supers[oct] = tree.SupernodeDecomposition(ncfg.Separation, oct)
		}
	}
	s.nearOff = tree.NearOffsets(ncfg.Separation)
	for _, o := range s.nearOff {
		if o.Z > 0 || (o.Z == 0 && (o.Y > 0 || (o.Y == 0 && o.X > 0))) {
			s.nearHalf = append(s.nearHalf, o)
		}
	}

	depth := ncfg.Depth
	k := s.ts.K
	s.far = make([][]float64, depth+1)
	s.loc = make([][]float64, depth+1)
	for l := 2; l <= depth; l++ {
		s.far[l] = make([]float64, s.hier.NumBoxes(l)*k)
		s.loc[l] = make([]float64, s.hier.NumBoxes(l)*k)
	}
	if !ncfg.DisableAggregation {
		s.upPlan = buildUpwardPlans(h, depth)
		s.t3Plan = buildT3Plans(h, depth)
		s.t2Plan = make([][]latticeT2, depth+1)
		for l := 2; l <= depth; l++ {
			if ncfg.Supernodes && l > 2 {
				continue // supernode path converts at parent granularity
			}
			s.t2Plan[l] = s.buildT2Plan(l)
		}
	}
	s.buildPhases()
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Solver) Config() Config { return s.cfg }

// Hierarchy returns the solver's spatial hierarchy.
func (s *Solver) Hierarchy() tree.Hierarchy { return s.hier }

// Translations exposes the precomputed matrices (used by the data-parallel
// layer and by benchmarks).
func (s *Solver) Translations() *TranslationSet { return s.ts }

// Stats returns the accumulated instrumentation of all solves so far. The
// returned snapshot is owned by the Solver and refreshed on every call;
// copy it to retain a point-in-time view.
func (s *Solver) Stats() *Stats {
	s.rec.ReadInto(&s.snap)
	return &s.snap
}

// Rec exposes the live recorder (for callers that aggregate several
// solvers into one report).
func (s *Solver) Rec() *metrics.Rec { return &s.rec }

// Potentials computes the potential phi_i = sum_{j != i} q_j / |x_i - x_j|
// at every particle. The returned slice is freshly allocated; use
// PotentialsInto for the allocation-free steady-state path.
func (s *Solver) Potentials(pos []geom.Vec3, q []float64) ([]float64, error) {
	phi := make([]float64, len(pos))
	if err := s.solve(pos, q, phi, nil); err != nil {
		return nil, err
	}
	return phi, nil
}

// PotentialsInto computes potentials into the caller-provided phi slice
// (len(phi) must equal len(pos)). With a reused Solver and a reused output
// buffer, repeated solves are allocation-free.
func (s *Solver) PotentialsInto(phi []float64, pos []geom.Vec3, q []float64) error {
	return s.solve(pos, q, phi, nil)
}

// Accelerations computes both potentials and the field a_i = +grad phi
// (the (y-x)/r^3 convention of package direct). The returned slices are
// freshly allocated; use AccelerationsInto for the steady-state path.
func (s *Solver) Accelerations(pos []geom.Vec3, q []float64) ([]float64, []geom.Vec3, error) {
	phi := make([]float64, len(pos))
	acc := make([]geom.Vec3, len(pos))
	if err := s.solve(pos, q, phi, acc); err != nil {
		return nil, nil, err
	}
	return phi, acc, nil
}

// AccelerationsInto computes potentials and fields into caller-provided
// slices (both len(pos)); the allocation-free variant of Accelerations.
func (s *Solver) AccelerationsInto(phi []float64, acc []geom.Vec3, pos []geom.Vec3, q []float64) error {
	if acc == nil {
		return fmt.Errorf("core: AccelerationsInto needs a non-nil acc")
	}
	return s.solve(pos, q, phi, acc)
}

// PotentialsCtx is Potentials with cooperative cancellation: ctx is checked
// between phases and inside every parallel sweep's chunk-claim loop, so a
// canceled context returns ctx.Err() within about one chunk's work. The
// output of a canceled solve is garbage; the Solver itself is left
// safe-to-retry (the next solve rebuilds all per-solve state).
func (s *Solver) PotentialsCtx(ctx context.Context, pos []geom.Vec3, q []float64) ([]float64, error) {
	phi := make([]float64, len(pos))
	if err := s.solveCtx(ctx, pos, q, phi, nil); err != nil {
		return nil, err
	}
	return phi, nil
}

// PotentialsIntoCtx is PotentialsInto with cooperative cancellation, under
// the PotentialsCtx contract.
func (s *Solver) PotentialsIntoCtx(ctx context.Context, phi []float64, pos []geom.Vec3, q []float64) error {
	return s.solveCtx(ctx, pos, q, phi, nil)
}

// AccelerationsCtx is Accelerations with cooperative cancellation, under
// the PotentialsCtx contract.
func (s *Solver) AccelerationsCtx(ctx context.Context, pos []geom.Vec3, q []float64) ([]float64, []geom.Vec3, error) {
	phi := make([]float64, len(pos))
	acc := make([]geom.Vec3, len(pos))
	if err := s.solveCtx(ctx, pos, q, phi, acc); err != nil {
		return nil, nil, err
	}
	return phi, acc, nil
}

// AccelerationsIntoCtx is AccelerationsInto with cooperative cancellation,
// under the PotentialsCtx contract.
func (s *Solver) AccelerationsIntoCtx(ctx context.Context, phi []float64, acc []geom.Vec3, pos []geom.Vec3, q []float64) error {
	if acc == nil {
		return fmt.Errorf("core: AccelerationsIntoCtx needs a non-nil acc")
	}
	return s.solveCtx(ctx, pos, q, phi, acc)
}

func (s *Solver) solve(pos []geom.Vec3, q []float64, phi []float64, acc []geom.Vec3) error {
	return s.solveCtx(nil, pos, q, phi, acc)
}

// par and parChunks are the solver's parallel sweeps: blas.Parallel* bound
// to the in-flight solve's cancellation signal. A canceled sweep returns
// early with partial output; solveCtx notices at the next phase boundary.
func (s *Solver) par(n int, fn func(i int)) { _ = blas.ParallelCtx(s.ctx, n, fn) }

func (s *Solver) parChunks(n int, body func(lo, hi int)) {
	_ = blas.ParallelChunksCtx(s.ctx, n, body)
}

func (s *Solver) solveCtx(ctx context.Context, pos []geom.Vec3, q []float64, phi []float64, acc []geom.Vec3) error {
	if len(pos) != len(q) {
		return fmt.Errorf("core: %d positions but %d charges", len(pos), len(q))
	}
	if len(phi) != len(pos) {
		return fmt.Errorf("core: %d potentials for %d positions", len(phi), len(pos))
	}
	if acc != nil && len(acc) != len(pos) {
		return fmt.Errorf("core: %d accelerations for %d positions", len(acc), len(pos))
	}
	for _, p := range pos {
		if !s.hier.Root.Contains(p) && !inClosedBox(s.hier.Root, p) {
			return fmt.Errorf("core: particle %v outside domain %v", p, s.hier.Root)
		}
	}
	s.rec.SetShape(len(pos), s.cfg.Depth, s.ts.K)
	s.ctx = ctx
	s.in.pos, s.in.q, s.in.phi, s.in.acc = pos, q, phi, acc
	defer s.clearSolveState()
	return pipeline.Run(ctx, &s.rec, "core", s.phases)
}

// clearSolveState drops the in-flight solve's bindings so the Solver does
// not retain caller slices (or a canceled context) between solves.
func (s *Solver) clearSolveState() {
	s.ctx = nil
	s.in.pos, s.in.q, s.in.phi, s.in.acc = nil, nil, nil, nil
}

// prepare runs the per-solve setup on reused buffers: the counting-sort
// partition, the box-sorted particle mirrors, and zeroing of the expansion
// grids.
func (s *Solver) prepare(pos []geom.Vec3, q []float64) {
	n := s.hier.GridSize(s.cfg.Depth)
	nb := n * n * n
	np := len(pos)

	if cap(s.boxOf) < np {
		s.boxOf = make([]int32, np)
		s.part.Perm = make([]int, np)
		s.posS = make([]geom.Vec3, np)
		s.qS = make([]float64, np)
		s.phiS = make([]float64, np)
		s.accS = make([]geom.Vec3, np)
	}
	s.boxOf = s.boxOf[:np]
	s.part.Perm = s.part.Perm[:np]
	s.posS, s.qS = s.posS[:np], s.qS[:np]
	s.phiS, s.accS = s.phiS[:np], s.accS[:np]
	if s.part.Start == nil {
		s.part.Start = make([]int, nb+1)
		s.fill = make([]int, nb)
	}
	s.part.Grid = n
	start := s.part.Start
	for b := range start {
		start[b] = 0
	}
	for i, p := range pos {
		b := s.hier.LeafOf(p).Index(n)
		s.boxOf[i] = int32(b)
		start[b+1]++
	}
	for b := 0; b < nb; b++ {
		start[b+1] += start[b]
	}
	for b := range s.fill {
		s.fill[b] = 0
	}
	for i := range pos {
		b := s.boxOf[i]
		at := start[b] + s.fill[b]
		s.part.Perm[at] = i
		s.fill[b]++
	}
	for i, j := range s.part.Perm {
		s.posS[i] = pos[j]
		s.qS[i] = q[j]
	}

	for l := 2; l <= s.cfg.Depth; l++ {
		clear(s.far[l])
		clear(s.loc[l])
	}
}

// inClosedBox reports whether p lies in the CLOSED root box. Points exactly
// on the upper faces are accepted (BoxOf3 clamps them into the boundary
// leaf).
func inClosedBox(b geom.Box3, p geom.Vec3) bool {
	h := b.Side / 2
	inRange := func(v, c float64) bool { return v >= c-h && v <= c+h }
	return inRange(p.X, b.Center.X) && inRange(p.Y, b.Center.Y) && inRange(p.Z, b.Center.Z)
}

// leafOuter is step 1: sample the potential of each leaf box's particles at
// its outer-sphere integration points. The box-sorted mirrors make the
// inner particle loop a contiguous sweep.
func (s *Solver) leafOuter() {
	n := s.part.Grid
	k := s.ts.K
	rule := s.cfg.Rule
	a := s.cfg.RadiusRatio * s.hier.BoxSide(s.cfg.Depth)
	g := s.far[s.cfg.Depth]
	var pairs int64
	s.par(n*n*n, func(b int) {
		pipeline.Fire(FaultSiteLeafOuterBody)
		lo, hi := s.part.Start[b], s.part.Start[b+1]
		if lo == hi {
			return
		}
		c := geom.CoordFromIndex(b, n)
		center := s.hier.Box(s.cfg.Depth, c).Center
		out := g[b*k : (b+1)*k]
		pb := s.posS[lo:hi]
		qb := s.qS[lo:hi]
		for i, si := range rule.Points {
			p := center.Add(si.Scale(a))
			var v float64
			for j := range pb {
				v += qb[j] / p.Dist(pb[j])
			}
			out[i] = v
		}
	})
	for b := 0; b+1 < len(s.part.Start); b++ {
		pairs += int64(s.part.Start[b+1]-s.part.Start[b]) * int64(k)
	}
	s.rec.AddFlops(PhaseLeafOuter, pairs*direct.FlopsPerPair)
}

// upward is step 2: combine child outer approximations into parents with T1,
// from level depth-1 down to level 2, through the precomputed gather plans.
func (s *Solver) upward() {
	k := s.ts.K
	far := s.far
	for l := s.cfg.Depth - 1; l >= 2; l-- {
		np := s.hier.GridSize(l)
		nc := s.hier.GridSize(l + 1)
		src, dst := far[l+1], far[l]
		for oct := 0; oct < 8; oct++ {
			t := s.ts.T1[oct]
			if s.cfg.DisableAggregation {
				s.par(np*np*np, func(pb int) {
					pc := geom.CoordFromIndex(pb, np)
					cb := pc.Child(oct).Index(nc)
					blas.Dgemv(t, src[cb*k:(cb+1)*k], dst[pb*k:(pb+1)*k])
				})
			} else {
				plan := s.upPlan[l][oct]
				aggregatedApply(s.ctx, t, src, dst, plan.srcIdx, plan.dstIdx, k)
			}
			s.rec.AddFlops(PhaseUpward, blas.DgemmFlops(k, k, np*np*np))
		}
	}
}

// applyT3 shifts parent inner approximations to children.
func (s *Solver) applyT3(parentLoc, childLoc []float64, l int) {
	k := s.ts.K
	np := s.hier.GridSize(l - 1)
	nc := s.hier.GridSize(l)
	for oct := 0; oct < 8; oct++ {
		t := s.ts.T3[oct]
		if s.cfg.DisableAggregation {
			s.par(np*np*np, func(pb int) {
				pc := geom.CoordFromIndex(pb, np)
				cb := pc.Child(oct).Index(nc)
				blas.Dgemv(t, parentLoc[pb*k:(pb+1)*k], childLoc[cb*k:(cb+1)*k])
			})
		} else {
			plan := s.t3Plan[l][oct]
			aggregatedApply(s.ctx, t, parentLoc, childLoc, plan.srcIdx, plan.dstIdx, k)
		}
		s.rec.AddFlops(PhaseT3, blas.DgemmFlops(k, k, np*np*np))
	}
}

// applyT2 converts interactive-field outer approximations to local fields
// at one level, without supernodes.
func (s *Solver) applyT2(far, loc []float64, l int) {
	k := s.ts.K
	n := s.hier.GridSize(l)
	if s.cfg.DisableAggregation {
		var count int64
		s.par(n*n*n, func(b int) {
			c := geom.CoordFromIndex(b, n)
			dst := loc[b*k : (b+1)*k]
			var local int64
			for _, o := range s.interactive[c.Octant()] {
				sc := c.Add(o)
				if !sc.In(n) {
					continue
				}
				sb := sc.Index(n)
				blas.Dgemv(s.ts.T2For(o), far[sb*k:(sb+1)*k], dst)
				local++
			}
			atomicAdd64(&count, local)
		})
		s.rec.AddT2(count)
		s.rec.AddFlops(PhaseT2, count*blas.DgemmFlops(k, k, 1))
		return
	}
	// Aggregated: one batched gemm sweep per (octant, offset) lattice.
	var count int64
	for _, lat := range s.t2Plan[l] {
		if s.ctx != nil && s.ctx.Err() != nil {
			break
		}
		aggregatedApplyLattice(s.ctx, lat.t, far, loc, lat, k)
		count += int64(lat.count)
	}
	s.rec.AddT2(count)
	s.rec.AddFlops(PhaseT2, count*blas.DgemmFlops(k, k, 1))
}

// applyT2Supernodes converts the interactive field using the supernode
// decomposition: parent-granularity conversions for fully-covered parents,
// child-granularity for the remainder.
func (s *Solver) applyT2Supernodes(parentFar, far, loc []float64, l int) {
	k := s.ts.K
	n := s.hier.GridSize(l)
	np := s.hier.GridSize(l - 1)
	var count int64
	s.par(n*n*n, func(b int) {
		c := geom.CoordFromIndex(b, n)
		oct := c.Octant()
		sn := s.supers[oct]
		dst := loc[b*k : (b+1)*k]
		pc := c.Parent()
		var local int64
		for _, t := range sn.ParentOffsets {
			sp := pc.Add(t)
			if !sp.In(np) {
				continue
			}
			sb := sp.Index(np)
			blas.Dgemv(s.ts.T2Super[oct][t], parentFar[sb*k:(sb+1)*k], dst)
			local++
		}
		for _, o := range sn.ChildOffsets {
			sc := c.Add(o)
			if !sc.In(n) {
				continue
			}
			sb := sc.Index(n)
			blas.Dgemv(s.ts.T2For(o), far[sb*k:(sb+1)*k], dst)
			local++
		}
		atomicAdd64(&count, local)
	})
	s.rec.AddT2(count)
	s.rec.AddFlops(PhaseT2, count*blas.DgemmFlops(k, k, 1))
}

// evalScratch holds the Legendre recurrence buffers of one evaluation
// chunk; pooled so steady-state force solves stay allocation-free.
type evalScratch struct {
	p, dp []float64
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

// evalLocal is step 4: evaluate each leaf's inner approximation at its
// particles, writing the box-ordered result mirrors.
func (s *Solver) evalLocal(wantForce bool) {
	n := s.part.Grid
	k := s.ts.K
	rule := s.cfg.Rule
	m := s.cfg.M
	a := s.cfg.RadiusRatio * s.hier.BoxSide(s.cfg.Depth)
	loc := s.loc[s.cfg.Depth]
	s.parChunks(n*n*n, func(bLo, bHi int) {
		es := evalPool.Get().(*evalScratch)
		if cap(es.p) < m+1 {
			es.p = make([]float64, m+1)
			es.dp = make([]float64, m+1)
		}
		p, dp := es.p[:m+1], es.dp[:m+1]
		for b := bLo; b < bHi; b++ {
			lo, hi := s.part.Start[b], s.part.Start[b+1]
			if lo == hi {
				continue
			}
			c := geom.CoordFromIndex(b, n)
			center := s.hier.Box(s.cfg.Depth, c).Center
			g := loc[b*k : (b+1)*k]
			if wantForce {
				for i := lo; i < hi; i++ {
					v, gr := EvalInnerGradWork(rule, m, center, a, g, s.posS[i], p, dp)
					s.phiS[i] = v
					s.accS[i] = gr
				}
			} else {
				for i := lo; i < hi; i++ {
					s.phiS[i] = EvalInner(rule, m, center, a, g, s.posS[i])
				}
			}
		}
		evalPool.Put(es)
	})
	s.rec.AddFlops(PhaseEvalLocal, int64(len(s.posS))*int64(k)*int64(m+1)*FlopsKernel)
}

// nearField is step 5: direct evaluation against the d-separation near
// field. The box-sorted mirrors make every box a contiguous slice, so no
// per-box gather copies are needed. With multiple workers the sweep is
// one-sided per target box so boxes parallelize without races; with a
// single executor it switches to the symmetric form (each unordered box
// pair evaluated once, both sides accumulated), halving the pair count.
func (s *Solver) nearField(wantForce bool) {
	if blas.Serial() {
		s.nearFieldSym(wantForce)
		return
	}
	n := s.part.Grid
	var pairs int64
	s.par(n*n*n, func(b int) {
		pipeline.Fire(FaultSiteNearBody)
		tLo, tHi := s.part.Start[b], s.part.Start[b+1]
		if tLo == tHi {
			return
		}
		c := geom.CoordFromIndex(b, n)
		tPos := s.posS[tLo:tHi]
		tQ := s.qS[tLo:tHi]
		tPhi := s.phiS[tLo:tHi]
		var tAcc []geom.Vec3
		if wantForce {
			tAcc = s.accS[tLo:tHi]
		}
		var local int64
		for _, o := range s.nearOff {
			sc := c.Add(o)
			if !sc.In(n) {
				continue
			}
			sb := sc.Index(n)
			sLo, sHi := s.part.Start[sb], s.part.Start[sb+1]
			if sLo == sHi {
				continue
			}
			sPos := s.posS[sLo:sHi]
			sQ := s.qS[sLo:sHi]
			direct.Accumulate(tPos, tPhi, sPos, sQ)
			if wantForce {
				direct.AccumulateForce(tPos, tAcc, sPos, sQ)
			}
			local += int64(tHi-tLo) * int64(sHi-sLo)
		}
		// Intra-box interactions (symmetric, race-free: own box only).
		direct.Within(tPos, tQ, tPhi)
		if wantForce {
			direct.WithinForce(tPos, tQ, tAcc)
		}
		local += int64(tHi-tLo) * int64(tHi-tLo-1) / 2
		atomicAdd64(&pairs, local)
	})
	s.rec.AddNearPairs(pairs)
	s.rec.AddFlops(PhaseNear, pairs*direct.FlopsPerPair)
}

// nearFieldSym is the single-executor near field: a plain loop over boxes
// visiting each unordered box pair once through the positive offset half,
// with Newton's-third-law pair kernels writing both sides.
func (s *Solver) nearFieldSym(wantForce bool) {
	n := s.part.Grid
	var pairs int64
	for b := 0; b < n*n*n; b++ {
		// Periodic cancellation check: the serial near field is the longest
		// uninterruptible stretch on a one-core machine, so poll every 64
		// boxes to keep the latency bound at chunk scale.
		if b&63 == 0 && s.ctx != nil && s.ctx.Err() != nil {
			break
		}
		pipeline.Fire(FaultSiteNearBody)
		tLo, tHi := s.part.Start[b], s.part.Start[b+1]
		if tLo == tHi {
			continue
		}
		c := geom.CoordFromIndex(b, n)
		tPos := s.posS[tLo:tHi]
		tQ := s.qS[tLo:tHi]
		tPhi := s.phiS[tLo:tHi]
		for _, o := range s.nearHalf {
			sc := c.Add(o)
			if !sc.In(n) {
				continue
			}
			sb := sc.Index(n)
			sLo, sHi := s.part.Start[sb], s.part.Start[sb+1]
			if sLo == sHi {
				continue
			}
			sPos := s.posS[sLo:sHi]
			sQ := s.qS[sLo:sHi]
			direct.Pairwise(tPos, tQ, tPhi, sPos, sQ, s.phiS[sLo:sHi])
			if wantForce {
				direct.PairwiseForce(tPos, tQ, s.accS[tLo:tHi], sPos, sQ, s.accS[sLo:sHi])
			}
			pairs += int64(tHi-tLo) * int64(sHi-sLo)
		}
		direct.Within(tPos, tQ, tPhi)
		if wantForce {
			direct.WithinForce(tPos, tQ, s.accS[tLo:tHi])
		}
		pairs += int64(tHi-tLo) * int64(tHi-tLo-1) / 2
	}
	s.rec.AddNearPairs(pairs)
	s.rec.AddFlops(PhaseNear, pairs*direct.FlopsPerPair)
}
