package core

import (
	"fmt"

	"nbody/internal/blas"
	"nbody/internal/direct"
	"nbody/internal/geom"
	"nbody/internal/tree"
)

// Solver runs Anderson's method on a fixed hierarchy with precomputed
// translation matrices. It is the shared-memory reference implementation of
// the paper's algorithm (Section 2.2); the data-parallel machine expression
// lives in internal/dpfmm and is validated against this one.
type Solver struct {
	cfg  Config
	hier tree.Hierarchy
	ts   *TranslationSet

	interactive [8][]geom.Coord3
	supers      [8]tree.Supernodes
	nearOff     []geom.Coord3

	stats Stats
}

// NewSolver builds a solver for the domain root with the given
// configuration. Translation-matrix precomputation happens here (the
// paper's setup phase) and is charged to PhaseSetup.
func NewSolver(root geom.Box3, cfg Config) (*Solver, error) {
	ncfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	h, err := tree.NewHierarchy(root, ncfg.Depth)
	if err != nil {
		return nil, err
	}
	s := &Solver{cfg: ncfg, hier: h}
	s.stats.timePhase(PhaseSetup, func() {
		s.ts = NewTranslationSet(ncfg)
	})
	nmat := int64(2*8) + int64(len(tree.UnionInteractiveOffsets(ncfg.Separation)))
	s.stats.Flops[PhaseSetup] = nmat * TranslationMatrixFlops(s.ts.K, ncfg.M)
	for oct := 0; oct < 8; oct++ {
		s.interactive[oct] = tree.InteractiveOffsets(ncfg.Separation, oct)
		if ncfg.Supernodes {
			s.supers[oct] = tree.SupernodeDecomposition(ncfg.Separation, oct)
		}
	}
	s.nearOff = tree.NearOffsets(ncfg.Separation)
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Solver) Config() Config { return s.cfg }

// Hierarchy returns the solver's spatial hierarchy.
func (s *Solver) Hierarchy() tree.Hierarchy { return s.hier }

// Translations exposes the precomputed matrices (used by the data-parallel
// layer and by benchmarks).
func (s *Solver) Translations() *TranslationSet { return s.ts }

// Stats returns the accumulated instrumentation of all solves so far.
func (s *Solver) Stats() *Stats { return &s.stats }

// Potentials computes the potential phi_i = sum_{j != i} q_j / |x_i - x_j|
// at every particle.
func (s *Solver) Potentials(pos []geom.Vec3, q []float64) ([]float64, error) {
	phi, _, err := s.run(pos, q, false)
	return phi, err
}

// Accelerations computes both potentials and the field a_i = +grad phi
// (the (y-x)/r^3 convention of package direct).
func (s *Solver) Accelerations(pos []geom.Vec3, q []float64) ([]float64, []geom.Vec3, error) {
	return s.run(pos, q, true)
}

func (s *Solver) run(pos []geom.Vec3, q []float64, wantForce bool) ([]float64, []geom.Vec3, error) {
	if len(pos) != len(q) {
		return nil, nil, fmt.Errorf("core: %d positions but %d charges", len(pos), len(q))
	}
	for _, p := range pos {
		if !s.hier.Root.Contains(p) && !inClosedBox(s.hier.Root, p) {
			return nil, nil, fmt.Errorf("core: particle %v outside domain %v", p, s.hier.Root)
		}
	}
	st := &s.stats
	st.Particles = len(pos)
	st.Depth = s.cfg.Depth
	st.K = s.ts.K

	var part *Partition
	st.timePhase(PhaseSetup, func() { part = NewPartition(s.hier, pos) })

	depth := s.cfg.Depth
	k := s.ts.K
	far := make([][]float64, depth+1)
	loc := make([][]float64, depth+1)
	for l := 2; l <= depth; l++ {
		far[l] = make([]float64, s.hier.NumBoxes(l)*k)
		loc[l] = make([]float64, s.hier.NumBoxes(l)*k)
	}

	st.timePhase(PhaseLeafOuter, func() { s.leafOuter(part, pos, q, far[depth]) })
	st.timePhase(PhaseUpward, func() { s.upward(far) })
	st.timePhase(PhaseDownward, func() { s.downward(far, loc) })

	phi := make([]float64, len(pos))
	var acc []geom.Vec3
	if wantForce {
		acc = make([]geom.Vec3, len(pos))
	}
	st.timePhase(PhaseEvalLocal, func() { s.evalLocal(part, pos, loc[depth], phi, acc) })
	st.timePhase(PhaseNear, func() { s.nearField(part, pos, q, phi, acc) })
	return phi, acc, nil
}

// inClosedBox reports whether p lies in the CLOSED root box. Points exactly
// on the upper faces are accepted (BoxOf3 clamps them into the boundary
// leaf).
func inClosedBox(b geom.Box3, p geom.Vec3) bool {
	h := b.Side / 2
	inRange := func(v, c float64) bool { return v >= c-h && v <= c+h }
	return inRange(p.X, b.Center.X) && inRange(p.Y, b.Center.Y) && inRange(p.Z, b.Center.Z)
}

// leafOuter is step 1: sample the potential of each leaf box's particles at
// its outer-sphere integration points.
func (s *Solver) leafOuter(part *Partition, pos []geom.Vec3, q []float64, g []float64) {
	n := part.Grid
	k := s.ts.K
	rule := s.cfg.Rule
	a := s.cfg.RadiusRatio * s.hier.BoxSide(s.cfg.Depth)
	var pairs int64
	blas.Parallel(n*n*n, func(b int) {
		c := geom.CoordFromIndex(b, n)
		idx := part.Box(c)
		if len(idx) == 0 {
			return
		}
		center := s.hier.Box(s.cfg.Depth, c).Center
		out := g[b*k : (b+1)*k]
		for i, si := range rule.Points {
			p := center.Add(si.Scale(a))
			var v float64
			for _, j := range idx {
				v += q[j] / p.Dist(pos[j])
			}
			out[i] = v
		}
	})
	for b := 0; b+1 < len(part.Start); b++ {
		pairs += int64(part.Start[b+1]-part.Start[b]) * int64(k)
	}
	s.stats.Flops[PhaseLeafOuter] += pairs * direct.FlopsPerPair
}

// upward is step 2: combine child outer approximations into parents with T1,
// from level depth-1 down to level 2.
func (s *Solver) upward(far [][]float64) {
	k := s.ts.K
	for l := s.cfg.Depth - 1; l >= 2; l-- {
		np := s.hier.GridSize(l)
		nc := s.hier.GridSize(l + 1)
		src, dst := far[l+1], far[l]
		for oct := 0; oct < 8; oct++ {
			t := s.ts.T1[oct]
			if s.cfg.DisableAggregation {
				blas.Parallel(np*np*np, func(pb int) {
					pc := geom.CoordFromIndex(pb, np)
					cb := pc.Child(oct).Index(nc)
					blas.Dgemv(t, src[cb*k:(cb+1)*k], dst[pb*k:(pb+1)*k])
				})
			} else {
				srcIdx := make([]int32, np*np*np)
				dstIdx := make([]int32, np*np*np)
				for pb := 0; pb < np*np*np; pb++ {
					pc := geom.CoordFromIndex(pb, np)
					srcIdx[pb] = int32(pc.Child(oct).Index(nc))
					dstIdx[pb] = int32(pb)
				}
				aggregatedApply(t, src, dst, srcIdx, dstIdx, k)
			}
			s.stats.Flops[PhaseUpward] += blas.DgemmFlops(k, k, np*np*np)
		}
	}
}

// downward is step 3: for each level l = 2..depth, shift the parent's local
// field in with T3 and convert the interactive field with T2 (optionally
// through supernodes).
func (s *Solver) downward(far, loc [][]float64) {
	for l := 2; l <= s.cfg.Depth; l++ {
		if l > 2 {
			s.applyT3(loc[l-1], loc[l], l)
		}
		if s.cfg.Supernodes && l > 2 {
			s.applyT2Supernodes(far[l-1], far[l], loc[l], l)
		} else {
			s.applyT2(far[l], loc[l], l)
		}
	}
}

// applyT3 shifts parent inner approximations to children.
func (s *Solver) applyT3(parentLoc, childLoc []float64, l int) {
	k := s.ts.K
	np := s.hier.GridSize(l - 1)
	nc := s.hier.GridSize(l)
	for oct := 0; oct < 8; oct++ {
		t := s.ts.T3[oct]
		if s.cfg.DisableAggregation {
			blas.Parallel(np*np*np, func(pb int) {
				pc := geom.CoordFromIndex(pb, np)
				cb := pc.Child(oct).Index(nc)
				blas.Dgemv(t, parentLoc[pb*k:(pb+1)*k], childLoc[cb*k:(cb+1)*k])
			})
		} else {
			srcIdx := make([]int32, np*np*np)
			dstIdx := make([]int32, np*np*np)
			for pb := 0; pb < np*np*np; pb++ {
				pc := geom.CoordFromIndex(pb, np)
				srcIdx[pb] = int32(pb)
				dstIdx[pb] = int32(pc.Child(oct).Index(nc))
			}
			aggregatedApply(t, parentLoc, childLoc, srcIdx, dstIdx, k)
		}
		s.stats.Flops[PhaseDownward] += blas.DgemmFlops(k, k, np*np*np)
	}
}

// applyT2 converts interactive-field outer approximations to local fields
// at one level, without supernodes.
func (s *Solver) applyT2(far, loc []float64, l int) {
	k := s.ts.K
	n := s.hier.GridSize(l)
	if s.cfg.DisableAggregation {
		var count int64
		blas.Parallel(n*n*n, func(b int) {
			c := geom.CoordFromIndex(b, n)
			dst := loc[b*k : (b+1)*k]
			var local int64
			for _, o := range s.interactive[c.Octant()] {
				sc := c.Add(o)
				if !sc.In(n) {
					continue
				}
				sb := sc.Index(n)
				blas.Dgemv(s.ts.T2For(o), far[sb*k:(sb+1)*k], dst)
				local++
			}
			atomicAdd64(&count, local)
		})
		s.stats.T2Count += count
		s.stats.Flops[PhaseDownward] += count * blas.DgemmFlops(k, k, 1)
		return
	}
	// Aggregated: one gemm per (octant, offset) over all in-range targets.
	for oct := 0; oct < 8; oct++ {
		for _, o := range s.interactive[oct] {
			srcIdx, dstIdx := offsetPairs(n, oct, o)
			if len(srcIdx) == 0 {
				continue
			}
			aggregatedApply(s.ts.T2For(o), far, loc, srcIdx, dstIdx, k)
			s.stats.T2Count += int64(len(srcIdx))
			s.stats.Flops[PhaseDownward] += blas.DgemmFlops(k, k, len(srcIdx))
		}
	}
}

// applyT2Supernodes converts the interactive field using the supernode
// decomposition: parent-granularity conversions for fully-covered parents,
// child-granularity for the remainder.
func (s *Solver) applyT2Supernodes(parentFar, far, loc []float64, l int) {
	k := s.ts.K
	n := s.hier.GridSize(l)
	np := s.hier.GridSize(l - 1)
	var count int64
	blas.Parallel(n*n*n, func(b int) {
		c := geom.CoordFromIndex(b, n)
		oct := c.Octant()
		sn := s.supers[oct]
		dst := loc[b*k : (b+1)*k]
		pc := c.Parent()
		var local int64
		for _, t := range sn.ParentOffsets {
			sp := pc.Add(t)
			if !sp.In(np) {
				continue
			}
			sb := sp.Index(np)
			blas.Dgemv(s.ts.T2Super[oct][t], parentFar[sb*k:(sb+1)*k], dst)
			local++
		}
		for _, o := range sn.ChildOffsets {
			sc := c.Add(o)
			if !sc.In(n) {
				continue
			}
			sb := sc.Index(n)
			blas.Dgemv(s.ts.T2For(o), far[sb*k:(sb+1)*k], dst)
			local++
		}
		atomicAdd64(&count, local)
	})
	s.stats.T2Count += count
	s.stats.Flops[PhaseDownward] += count * blas.DgemmFlops(k, k, 1)
}

// evalLocal is step 4: evaluate each leaf's inner approximation at its
// particles.
func (s *Solver) evalLocal(part *Partition, pos []geom.Vec3, loc []float64, phi []float64, acc []geom.Vec3) {
	n := part.Grid
	k := s.ts.K
	rule := s.cfg.Rule
	m := s.cfg.M
	a := s.cfg.RadiusRatio * s.hier.BoxSide(s.cfg.Depth)
	blas.Parallel(n*n*n, func(b int) {
		c := geom.CoordFromIndex(b, n)
		idx := part.Box(c)
		if len(idx) == 0 {
			return
		}
		center := s.hier.Box(s.cfg.Depth, c).Center
		g := loc[b*k : (b+1)*k]
		for _, j := range idx {
			if acc != nil {
				v, gr := EvalInnerGrad(rule, m, center, a, g, pos[j])
				phi[j] = v
				acc[j] = acc[j].Add(gr)
			} else {
				phi[j] = EvalInner(rule, m, center, a, g, pos[j])
			}
		}
	})
	s.stats.Flops[PhaseEvalLocal] += int64(len(pos)) * int64(k) * int64(m+1) * FlopsKernel
}

// nearField is step 5: direct evaluation against the d-separation near
// field, one-sided per target box so boxes parallelize without races.
func (s *Solver) nearField(part *Partition, pos []geom.Vec3, q []float64, phi []float64, acc []geom.Vec3) {
	n := part.Grid
	var pairs int64
	blas.Parallel(n*n*n, func(b int) {
		c := geom.CoordFromIndex(b, n)
		tIdx := part.Box(c)
		if len(tIdx) == 0 {
			return
		}
		tPos := make([]geom.Vec3, len(tIdx))
		tPhi := make([]float64, len(tIdx))
		tAcc := make([]geom.Vec3, len(tIdx))
		tQ := make([]float64, len(tIdx))
		for i, j := range tIdx {
			tPos[i] = pos[j]
			tQ[i] = q[j]
		}
		var local int64
		for _, o := range s.nearOff {
			sc := c.Add(o)
			if !sc.In(n) {
				continue
			}
			sIdx := part.Box(sc)
			if len(sIdx) == 0 {
				continue
			}
			sPos := make([]geom.Vec3, len(sIdx))
			sQ := make([]float64, len(sIdx))
			for i, j := range sIdx {
				sPos[i] = pos[j]
				sQ[i] = q[j]
			}
			direct.Accumulate(tPos, tPhi, sPos, sQ)
			if acc != nil {
				direct.AccumulateForce(tPos, tAcc, sPos, sQ)
			}
			local += int64(len(tIdx)) * int64(len(sIdx))
		}
		// Intra-box interactions (symmetric, race-free: own box only).
		withinPhi(tPos, tQ, tPhi)
		if acc != nil {
			direct.WithinForce(tPos, tQ, tAcc)
		}
		local += int64(len(tIdx)) * int64(len(tIdx)-1) / 2
		for i, j := range tIdx {
			phi[j] += tPhi[i]
			if acc != nil {
				acc[j] = acc[j].Add(tAcc[i])
			}
		}
		atomicAdd64(&pairs, local)
	})
	s.stats.NearPairs += pairs
	s.stats.Flops[PhaseNear] += pairs * direct.FlopsPerPair
}

func withinPhi(pos []geom.Vec3, q, phi []float64) {
	direct.Within(pos, q, phi)
}

// offsetPairs enumerates (source, target) box index pairs for targets of a
// given octant and a fixed interactive offset, clipped to the grid.
func offsetPairs(n, oct int, o geom.Coord3) (srcIdx, dstIdx []int32) {
	// Target coordinates have fixed parity: x ≡ oct&1 (mod 2), etc.
	lox, hix := clipRange(n, o.X)
	loy, hiy := clipRange(n, o.Y)
	loz, hiz := clipRange(n, o.Z)
	alignUp := func(lo, parity int) int {
		if lo%2 != parity {
			lo++
		}
		return lo
	}
	lox = alignUp(lox, oct&1)
	loy = alignUp(loy, oct>>1&1)
	loz = alignUp(loz, oct>>2&1)
	for z := loz; z <= hiz; z += 2 {
		for y := loy; y <= hiy; y += 2 {
			for x := lox; x <= hix; x += 2 {
				t := geom.Coord3{X: x, Y: y, Z: z}
				srcIdx = append(srcIdx, int32(t.Add(o).Index(n)))
				dstIdx = append(dstIdx, int32(t.Index(n)))
			}
		}
	}
	return srcIdx, dstIdx
}

// clipRange returns the target-coordinate range for which target+offset
// stays inside [0, n).
func clipRange(n, off int) (lo, hi int) {
	lo, hi = 0, n-1
	if off < 0 {
		lo = -off
	} else {
		hi = n - 1 - off
	}
	return lo, hi
}
