// Package core implements Anderson's hierarchical O(N) N-body method — the
// "fast multipole method without multipoles" (Anderson, SIAM J. Sci. Comput.
// 1992) — as described in Section 2 of Hu & Johnsson SC'96. The
// computational elements are outer and inner *sphere approximations*: a
// harmonic field is represented by its values g_i at the K integration
// points of a sphere rule, and evaluated elsewhere by a discretized Poisson
// integral whose kernel is a truncated Legendre series:
//
//	outer (field exterior to the sphere, eq. (2) of the paper):
//	    Psi(x) ~ sum_i w_i g_i sum_{n=0..M} (2n+1) (a/r)^(n+1) P_n(s_i . x^)
//	inner (field interior to the sphere, eq. (3), interior Poisson form):
//	    Psi(x) ~ sum_i w_i g_i sum_{n=0..M} (2n+1) (r/a)^n     P_n(s_i . x^)
//
// where r = |x - center| and x^ is the unit vector toward x. All three
// translation operators (T1: child outer -> parent outer; T2: outer ->
// inner; T3: parent inner -> child inner) are evaluations of these kernels
// at the destination sphere's integration points, which is what makes them
// representable as K x K matrices (Section 3.3.3).
package core

import (
	"nbody/internal/geom"
	"nbody/internal/sphere"
)

// outerKernel returns sum_{n=0..M} (2n+1) (a/r)^(n+1) P_n(u) with u the
// cosine between the integration direction and the evaluation direction.
// It requires r > 0; the caller guarantees evaluation strictly outside the
// sphere for the truncated series to be a convergent approximation.
func outerKernel(m int, a, r, u float64) float64 {
	rho := a / r
	pm1, p := 1.0, u
	// n = 0 term: 1 * rho * P_0.
	s := rho
	pow := rho
	for n := 1; n <= m; n++ {
		pow *= rho
		s += float64(2*n+1) * pow * p
		pm1, p = p, (float64(2*n+1)*u*p-float64(n)*pm1)/float64(n+1)
	}
	return s
}

// innerKernel returns sum_{n=0..M} (2n+1) (r/a)^n P_n(u).
func innerKernel(m int, a, r, u float64) float64 {
	rho := r / a
	pm1, p := 1.0, u
	s := 1.0
	pow := 1.0
	for n := 1; n <= m; n++ {
		pow *= rho
		s += float64(2*n+1) * pow * p
		pm1, p = p, (float64(2*n+1)*u*p-float64(n)*pm1)/float64(n+1)
	}
	return s
}

// EvalOuter evaluates an outer sphere approximation (center, radius a,
// values g at the points of rule, truncation m) at the point x, which must
// lie strictly outside the sphere.
func EvalOuter(rule *sphere.Rule, m int, center geom.Vec3, a float64, g []float64, x geom.Vec3) float64 {
	d := x.Sub(center)
	r := d.Norm()
	xh := d.Scale(1 / r)
	var s float64
	for i, si := range rule.Points {
		s += rule.W[i] * g[i] * outerKernel(m, a, r, si.Dot(xh))
	}
	return s
}

// EvalInner evaluates an inner sphere approximation at a point x inside the
// sphere. At the exact center only the n = 0 term survives (the mean of g).
func EvalInner(rule *sphere.Rule, m int, center geom.Vec3, a float64, g []float64, x geom.Vec3) float64 {
	d := x.Sub(center)
	r := d.Norm()
	if r == 0 {
		var s float64
		for i := range rule.Points {
			s += rule.W[i] * g[i]
		}
		return s
	}
	xh := d.Scale(1 / r)
	var s float64
	for i, si := range rule.Points {
		s += rule.W[i] * g[i] * innerKernel(m, a, r, si.Dot(xh))
	}
	return s
}

// EvalInnerGrad evaluates an inner approximation and its gradient at x.
// The gradient is what force (acceleration) evaluation uses:
//
//	grad Psi = sum_i w_i g_i sum_n (2n+1)/a^n *
//	           [ n r^(n-1) P_n(u) x^ + r^(n-1) P'_n(u) (s_i - u x^) ]
//
// with u = s_i . x^. Both bracketed terms carry r^(n-1), so the n >= 1
// series is finite as r -> 0; at r = 0 only n = 1 survives, giving
// grad Psi = (3/a) sum_i w_i g_i s_i.
func EvalInnerGrad(rule *sphere.Rule, m int, center geom.Vec3, a float64, g []float64, x geom.Vec3) (float64, geom.Vec3) {
	p := make([]float64, m+1)
	dp := make([]float64, m+1)
	return EvalInnerGradWork(rule, m, center, a, g, x, p, dp)
}

// EvalInnerGradWork is EvalInnerGrad with caller-provided Legendre
// recurrence scratch (p and dp, each of length m+1), so per-particle force
// evaluation loops can run allocation-free.
func EvalInnerGradWork(rule *sphere.Rule, m int, center geom.Vec3, a float64, g []float64, x geom.Vec3, p, dp []float64) (float64, geom.Vec3) {
	d := x.Sub(center)
	r := d.Norm()
	if r < 1e-300 {
		var val float64
		var grad geom.Vec3
		for i, si := range rule.Points {
			wg := rule.W[i] * g[i]
			val += wg
			if m >= 1 {
				grad = grad.Add(si.Scale(3 * wg / a))
			}
		}
		return val, grad
	}
	xh := d.Scale(1 / r)
	p, dp = p[:m+1], dp[:m+1]
	var val float64
	var grad geom.Vec3
	for i, si := range rule.Points {
		u := si.Dot(xh)
		if u > 1 {
			u = 1
		} else if u < -1 {
			u = -1
		}
		sphere.LegendreAllDeriv(u, p, dp)
		wg := rule.W[i] * g[i]
		// n = 0 term contributes only to the value.
		val += wg
		radial := 0.0   // sum_n (2n+1) n (r/a)^n P_n(u) / r
		angular := 0.0  // sum_n (2n+1) (r/a)^n P'_n(u) / r
		powOverA := 1.0 // (r/a)^n
		for n := 1; n <= m; n++ {
			powOverA *= r / a
			c := float64(2*n+1) * powOverA
			val += wg * c * p[n]
			radial += c * float64(n) * p[n] / r
			angular += c * dp[n] / r
		}
		grad = grad.Add(xh.Scale(wg * radial))
		grad = grad.Add(si.Sub(xh.Scale(u)).Scale(wg * angular))
	}
	return val, grad
}

// FlopsKernel is the nominal floating-point cost charged per kernel term,
// used by the analytic flop accounting (one multiply-add for the power, one
// for the recurrence step, one for the accumulate — the same 6-flop/term
// convention either way).
const FlopsKernel = 6

// Sqrt3Over2 is the circumscribed-sphere radius of a unit cube (side 1).
const Sqrt3Over2 = 0.8660254037844386
