package core

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/geom"
	"nbody/internal/sphere"
)

// makeOuter builds the outer approximation of a set of charges inside the
// sphere by directly sampling their potential at the sphere points — the
// leaf-level construction of the method (step 1).
func makeOuter(rule *sphere.Rule, center geom.Vec3, a float64, pos []geom.Vec3, q []float64) []float64 {
	g := make([]float64, rule.K())
	for i, s := range rule.Points {
		p := center.Add(s.Scale(a))
		var v float64
		for j := range pos {
			v += q[j] / p.Dist(pos[j])
		}
		g[i] = v
	}
	return g
}

func truePotential(x geom.Vec3, pos []geom.Vec3, q []float64) float64 {
	var v float64
	for j := range pos {
		v += q[j] / x.Dist(pos[j])
	}
	return v
}

func TestOuterKernelReproducesPointChargeFarField(t *testing.T) {
	// Charges in a unit box at the origin, outer sphere of radius ~ box
	// circumradius, evaluation at two-separation distance (3 box sides).
	rng := rand.New(rand.NewSource(41))
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 20; i++ {
		pos = append(pos, geom.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5})
		q = append(q, rng.Float64())
	}
	cases := []struct {
		rule *sphere.Rule
		m    int
		tol  float64
	}{
		{sphere.Icosahedron(), 2, 2e-2},
		{sphere.Product(4, 8), 3, 4e-3},
		{sphere.Product(6, 12), 5, 1e-3},
		{sphere.Product(8, 15), 7, 2e-4},
	}
	for _, c := range cases {
		a := 1.0 // sphere of radius 1 encloses the unit box (circumradius 0.866)
		g := makeOuter(c.rule, geom.Vec3{}, a, pos, q)
		worst := 0.0
		for trial := 0; trial < 50; trial++ {
			dir := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
			x := dir.Scale(2.2 + rng.Float64()) // between 2.2 and 3.2 away
			got := EvalOuter(c.rule, c.m, geom.Vec3{}, a, g, x)
			want := truePotential(x, pos, q)
			rel := math.Abs(got-want) / math.Abs(want)
			if rel > worst {
				worst = rel
			}
		}
		if worst > c.tol {
			t.Errorf("%v M=%d: worst relative error %.2e > %.2e", c.rule, c.m, worst, c.tol)
		}
	}
}

func TestOuterErrorDecreasesWithOrder(t *testing.T) {
	// The paper's Table 2 shape: higher integration order D gives faster
	// error decay. Measure the error of the outer approximation at a fixed
	// two-separation distance as D grows; it must be monotone decreasing
	// (up to a generous factor).
	rng := rand.New(rand.NewSource(42))
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 30; i++ {
		pos = append(pos, geom.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5})
		q = append(q, rng.Float64())
	}
	x := geom.Vec3{X: 2.1, Y: 1.3, Z: -1.7}
	want := truePotential(x, pos, q)
	var errs []float64
	for _, d := range []int{3, 5, 9, 13} {
		rule := sphere.ForDegree(d)
		m := rule.DefaultM()
		g := makeOuter(rule, geom.Vec3{}, 1.0, pos, q)
		got := EvalOuter(rule, m, geom.Vec3{}, 1.0, g, x)
		errs = append(errs, math.Abs(got-want)/math.Abs(want))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]*1.5 {
			t.Errorf("error not decreasing with order: %v", errs)
		}
	}
	if errs[len(errs)-1] > 5e-4 {
		t.Errorf("highest-order error %.2e too large", errs[len(errs)-1])
	}
}

func TestInnerKernelReproducesFarSourceField(t *testing.T) {
	// Build an inner approximation of the field due to far charges by
	// sampling their true potential at the sphere points, then evaluate
	// inside: this is what T2+T3 ultimately deliver at the leaves.
	rng := rand.New(rand.NewSource(43))
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 20; i++ {
		dir := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
		pos = append(pos, dir.Scale(3+2*rng.Float64()))
		q = append(q, rng.Float64()*2-1)
	}
	rule := sphere.Product(6, 12)
	m := 5
	a := 1.0
	g := make([]float64, rule.K())
	for i, s := range rule.Points {
		g[i] = truePotential(s.Scale(a), pos, q)
	}
	for trial := 0; trial < 50; trial++ {
		x := geom.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}.Scale(1.0)
		got := EvalInner(rule, m, geom.Vec3{}, a, g, x)
		want := truePotential(x, pos, q)
		if rel := math.Abs(got-want) / math.Abs(want); rel > 2e-3 {
			t.Errorf("inner eval at %v: rel error %.2e", x, rel)
		}
	}
}

func TestEvalInnerAtCenterIsMean(t *testing.T) {
	rule := sphere.Icosahedron()
	g := make([]float64, rule.K())
	for i := range g {
		g[i] = float64(i)
	}
	got := EvalInner(rule, 2, geom.Vec3{X: 1, Y: 2, Z: 3}, 0.5, g, geom.Vec3{X: 1, Y: 2, Z: 3})
	want := 0.0
	for i := range g {
		want += rule.W[i] * g[i]
	}
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("center value %g, want %g", got, want)
	}
}

func TestEvalInnerGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	rule := sphere.Product(5, 10)
	m := 4
	a := 1.3
	g := make([]float64, rule.K())
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	c := geom.Vec3{X: 0.2, Y: -0.1, Z: 0.05}
	h := 1e-6
	for trial := 0; trial < 20; trial++ {
		x := c.Add(geom.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}.Scale(1.2))
		val, grad := EvalInnerGrad(rule, m, c, a, g, x)
		if want := EvalInner(rule, m, c, a, g, x); math.Abs(val-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("value mismatch: %g vs %g", val, want)
		}
		fd := geom.Vec3{
			X: (EvalInner(rule, m, c, a, g, x.Add(geom.Vec3{X: h})) - EvalInner(rule, m, c, a, g, x.Sub(geom.Vec3{X: h}))) / (2 * h),
			Y: (EvalInner(rule, m, c, a, g, x.Add(geom.Vec3{Y: h})) - EvalInner(rule, m, c, a, g, x.Sub(geom.Vec3{Y: h}))) / (2 * h),
			Z: (EvalInner(rule, m, c, a, g, x.Add(geom.Vec3{Z: h})) - EvalInner(rule, m, c, a, g, x.Sub(geom.Vec3{Z: h}))) / (2 * h),
		}
		if grad.Sub(fd).Norm() > 1e-5*(1+fd.Norm()) {
			t.Errorf("grad %v vs FD %v at %v", grad, fd, x)
		}
	}
}

func TestEvalInnerGradAtCenter(t *testing.T) {
	rule := sphere.Icosahedron()
	rng := rand.New(rand.NewSource(45))
	g := make([]float64, rule.K())
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	a := 0.7
	c := geom.Vec3{}
	_, grad := EvalInnerGrad(rule, 2, c, a, g, c)
	// Compare with the limit from a tiny offset.
	_, gradEps := EvalInnerGrad(rule, 2, c, a, g, geom.Vec3{X: 1e-9})
	if grad.Sub(gradEps).Norm() > 1e-6*(1+grad.Norm()) {
		t.Errorf("center grad %v vs limit %v", grad, gradEps)
	}
}

func TestKernelHarmonicity(t *testing.T) {
	// An outer approximation must be (numerically) harmonic outside the
	// sphere: its Laplacian, by 6-point finite difference, should vanish to
	// discretization accuracy.
	rng := rand.New(rand.NewSource(46))
	rule := sphere.Product(4, 8)
	m := 3
	g := make([]float64, rule.K())
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	a := 1.0
	x := geom.Vec3{X: 2, Y: 0.5, Z: -1}
	h := 1e-3
	f := func(p geom.Vec3) float64 { return EvalOuter(rule, m, geom.Vec3{}, a, g, p) }
	lap := (f(x.Add(geom.Vec3{X: h})) + f(x.Sub(geom.Vec3{X: h})) +
		f(x.Add(geom.Vec3{Y: h})) + f(x.Sub(geom.Vec3{Y: h})) +
		f(x.Add(geom.Vec3{Z: h})) + f(x.Sub(geom.Vec3{Z: h})) - 6*f(x)) / (h * h)
	if math.Abs(lap) > 1e-4 {
		t.Errorf("Laplacian of outer approx = %g, want ~0", lap)
	}
}
