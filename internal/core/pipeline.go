package core

import (
	"context"

	"nbody/internal/pipeline"
)

// Fault-injection site names for the shared-memory solver (see
// internal/faults). Sites fire inside the phase's open metrics span, so a
// panic injected at any of them is attributed to that phase by the public
// API's recovery boundary. The /body sites sit inside a parallel region and
// therefore fire on a pool worker, exercising cross-goroutine containment.
const (
	FaultSiteSort          = "core/sort"
	FaultSiteLeafOuter     = "core/leaf-outer"
	FaultSiteLeafOuterBody = "core/leaf-outer/body"
	FaultSiteT1            = "core/T1"
	FaultSiteT2            = "core/T2"
	FaultSiteT3            = "core/T3"
	FaultSiteEval          = "core/eval"
	FaultSiteNear          = "core/near"
	FaultSiteNearBody      = "core/near/body"
	FaultSiteScatter       = "core/scatter"
)

// FaultSites lists one site per named solve phase, in pipeline order; the
// fault-injection matrix tests iterate it so a renamed phase breaks loudly.
var FaultSites = []string{
	FaultSiteSort, FaultSiteLeafOuter, FaultSiteT1, FaultSiteT3,
	FaultSiteT2, FaultSiteEval, FaultSiteNear,
}

// FaultSitesAll is every site the solver declares, including the in-worker
// body sites and the result scatter; the pipeline meta-test checks global
// site-name uniqueness against it.
var FaultSitesAll = append(append([]string{}, FaultSites...),
	FaultSiteLeafOuterBody, FaultSiteNearBody, FaultSiteScatter)

// buildPhases declares the solve pipeline once, at construction. The phase
// bodies close over the Solver, reading the in-flight solve's inputs and
// outputs from s.in, so steady-state solves run the prebuilt slice through
// pipeline.Run without allocating. nHier marks the end of the hierarchy
// phases (sort through the last T2), the prefix PotentialsAt reuses.
func (s *Solver) buildPhases() {
	depth := s.cfg.Depth
	ps := []pipeline.Phase{
		{Name: PhaseSort, Site: FaultSiteSort,
			Run: func(context.Context) error { s.prepare(s.in.pos, s.in.q); return nil }},
		{Name: PhaseLeafOuter, Site: FaultSiteLeafOuter,
			Slice: func() []float64 { return s.far[depth] },
			Run:   func(context.Context) error { s.leafOuter(); return nil }},
		{Name: PhaseUpward, Site: FaultSiteT1,
			Slice: func() []float64 { return s.far[2] },
			Run:   func(context.Context) error { s.upward(); return nil }},
	}
	// The downward pass: for each level l = 2..depth, shift the parent's
	// local field in with T3 and convert the interactive field with T2
	// (optionally through supernodes). The two translations are separate
	// phases (the paper's tables report the conversion, by far the dominant
	// term, on its own line).
	for l := 2; l <= depth; l++ {
		l := l
		if l > 2 {
			ps = append(ps, pipeline.Phase{Name: PhaseT3, Site: FaultSiteT3,
				Slice: func() []float64 { return s.loc[l] },
				Run: func(context.Context) error {
					s.applyT3(s.loc[l-1], s.loc[l], l)
					return nil
				}})
		}
		ps = append(ps, pipeline.Phase{Name: PhaseT2, Site: FaultSiteT2,
			Slice: func() []float64 { return s.loc[l] },
			Run: func(context.Context) error {
				if s.cfg.Supernodes && l > 2 {
					s.applyT2Supernodes(s.far[l-1], s.far[l], s.loc[l], l)
				} else {
					s.applyT2(s.far[l], s.loc[l], l)
				}
				return nil
			}})
	}
	s.nHier = len(ps)
	ps = append(ps,
		pipeline.Phase{Name: PhaseEvalLocal, Site: FaultSiteEval,
			Slice: func() []float64 { return s.phiS },
			Run:   func(context.Context) error { s.evalLocal(s.in.acc != nil); return nil }},
		pipeline.Phase{Name: PhaseNear, Site: FaultSiteNear,
			Slice: func() []float64 { return s.phiS },
			Run:   func(context.Context) error { s.nearField(s.in.acc != nil); return nil }},
		// Scatter the box-ordered results back to particle order (the
		// inverse reshape; charged to the sort phase like the forward one).
		pipeline.Phase{Name: PhaseSort, Site: FaultSiteScatter,
			Run: func(context.Context) error { s.scatter(); return nil }},
	)
	s.phases = ps
}

// scatter writes the box-ordered result mirrors back to the caller's
// particle-ordered output slices.
func (s *Solver) scatter() {
	for i, j := range s.part.Perm {
		s.in.phi[j] = s.phiS[i]
	}
	if s.in.acc != nil {
		for i, j := range s.part.Perm {
			s.in.acc[j] = s.accS[i]
		}
	}
}
