package core

import (
	"math/rand"
	"testing"

	"nbody/internal/geom"
	"nbody/internal/sphere"
	"nbody/internal/tree"
)

func BenchmarkEvalOuterK12(b *testing.B) { benchEvalOuter(b, sphere.Icosahedron(), 3) }
func BenchmarkEvalOuterK72(b *testing.B) { benchEvalOuter(b, sphere.Product(6, 12), 6) }

func benchEvalOuter(b *testing.B, rule *sphere.Rule, m int) {
	rng := rand.New(rand.NewSource(1))
	g := make([]float64, rule.K())
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	x := geom.Vec3{X: 3.1, Y: -2.2, Z: 1.7}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += EvalOuter(rule, m, geom.Vec3{}, 1.1, g, x)
	}
	_ = sink
}

func BenchmarkEvalInnerGradK12(b *testing.B) {
	rule := sphere.Icosahedron()
	rng := rand.New(rand.NewSource(2))
	g := make([]float64, rule.K())
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	x := geom.Vec3{X: 0.3, Y: -0.2, Z: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalInnerGrad(rule, 3, geom.Vec3{}, 1.1, g, x)
	}
}

func BenchmarkTranslationSetK12(b *testing.B) {
	cfg, _ := Config{Degree: 5, Depth: 3}.Normalized()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewTranslationSet(cfg)
	}
}

// BenchmarkSolveK12Depth4 measures the steady-state solve: a reused Solver,
// a reused output buffer, and one warm-up solve outside the timed region —
// the time-stepping regime of simulate.go, which the reuse contract makes
// allocation-free.
func BenchmarkSolveK12Depth4(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pos, q := uniformParticles(rng, 32768)
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 4})
	if err != nil {
		b.Fatal(err)
	}
	phi := make([]float64, len(pos))
	if err := s.PotentialsInto(phi, pos, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PotentialsInto(phi, pos, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(32768*b.N)/b.Elapsed().Seconds(), "particles/s")
}

func BenchmarkSolveSupernodesK32Depth4(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pos, q := uniformParticles(rng, 32768)
	s, err := NewSolver(unitBox(), Config{Degree: 7, Depth: 4, Supernodes: true})
	if err != nil {
		b.Fatal(err)
	}
	phi := make([]float64, len(pos))
	if err := s.PotentialsInto(phi, pos, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PotentialsInto(phi, pos, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(32768*b.N)/b.Elapsed().Seconds(), "particles/s")
}

func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pos, _ := uniformParticles(rng, 100000)
	h, err := tree.NewHierarchy(unitBox(), 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPartition(h, pos)
	}
}
