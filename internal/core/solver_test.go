package core

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/direct"
	"nbody/internal/geom"
)

func unitBox() geom.Box3 {
	return geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
}

func uniformParticles(rng *rand.Rand, n int) ([]geom.Vec3, []float64) {
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64() // all-positive charges: no cancellation hiding errors
	}
	return pos, q
}

// relErr returns RMS(|got-want|) / mean(|want|): the paper's
// error-relative-to-mean metric.
func relErr(got, want []float64) float64 {
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	rms = math.Sqrt(rms / float64(len(got)))
	mean /= float64(len(got))
	return rms / mean
}

func solveAndCompare(t *testing.T, cfg Config, n int, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pos, q := uniformParticles(rng, n)
	s, err := NewSolver(unitBox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(pos, q)
	return relErr(phi, want)
}

func TestSolverAccuracyLowOrder(t *testing.T) {
	// K=12 (icosahedron), the paper's D=5 configuration: expect ~3-4
	// digits relative to the mean.
	e := solveAndCompare(t, Config{Degree: 5, Depth: 3}, 2000, 51)
	if e > 2e-3 {
		t.Errorf("D=5 relative error %.2e, want < 2e-3", e)
	}
}

func TestSolverAccuracyHighOrder(t *testing.T) {
	// Degree 13 (K=98 product rule, standing in for the paper's D=14
	// K=72 McLaren rule): expect ~6 digits relative to the mean.
	e := solveAndCompare(t, Config{Degree: 13, Depth: 3}, 1500, 52)
	if e > 5e-6 {
		t.Errorf("D=13 relative error %.2e, want < 5e-6", e)
	}
}

func TestSolverDepthIndependence(t *testing.T) {
	// The answer must not depend (much) on the hierarchy depth: the same
	// system solved at depths 3 and 4 agrees to the method's accuracy.
	rng := rand.New(rand.NewSource(53))
	pos, q := uniformParticles(rng, 3000)
	var phis [][]float64
	for _, depth := range []int{3, 4} {
		s, err := NewSolver(unitBox(), Config{Degree: 9, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		phi, err := s.Potentials(pos, q)
		if err != nil {
			t.Fatal(err)
		}
		phis = append(phis, phi)
	}
	if e := relErr(phis[0], phis[1]); e > 2e-4 {
		t.Errorf("depth 3 vs 4 disagree: %.2e", e)
	}
}

func TestSolverSupernodesMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pos, q := uniformParticles(rng, 2500)
	base, err := NewSolver(unitBox(), Config{Degree: 9, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSolver(unitBox(), Config{Degree: 9, Depth: 4, Supernodes: true})
	if err != nil {
		t.Fatal(err)
	}
	phiB, err := base.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	phiS, err := sup.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	// Supernodes trade a little accuracy for 875 -> 189 translations; the
	// two results agree to the method's accuracy band.
	if e := relErr(phiS, phiB); e > 5e-4 {
		t.Errorf("supernode vs plain: %.2e", e)
	}
	// And the translation count drops accordingly.
	if base.Stats().T2Count <= 2*sup.Stats().T2Count {
		t.Errorf("supernodes did not reduce T2 count: %d vs %d",
			base.Stats().T2Count, sup.Stats().T2Count)
	}
	if e := solveAndCompareWith(t, sup, pos, q); e > 1e-3 {
		t.Errorf("supernode absolute accuracy: %.2e", e)
	}
}

func solveAndCompareWith(t *testing.T, s *Solver, pos []geom.Vec3, q []float64) float64 {
	t.Helper()
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	return relErr(phi, direct.PotentialsParallel(pos, q))
}

func TestSolverAggregationMatchesGemv(t *testing.T) {
	// BLAS-3 aggregation must be bitwise-equivalent in structure (same
	// arithmetic up to reassociation) to the per-box gemv path.
	rng := rand.New(rand.NewSource(55))
	pos, q := uniformParticles(rng, 2000)
	agg, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	gemv, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 3, DisableAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	phiA, err := agg.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	phiG, err := gemv.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phiA {
		if math.Abs(phiA[i]-phiG[i]) > 1e-9*(1+math.Abs(phiG[i])) {
			t.Fatalf("aggregated/gemv mismatch at %d: %g vs %g", i, phiA[i], phiG[i])
		}
	}
}

func TestSolverSeparationOne(t *testing.T) {
	// d=1 (the original Greengard-Rokhlin near field in 2-D terms) still
	// converges, just less accurately at the same order.
	e1 := solveAndCompare(t, Config{Degree: 11, Depth: 3, Separation: 1, RadiusRatio: 0.95}, 1500, 56)
	e2 := solveAndCompare(t, Config{Degree: 11, Depth: 3}, 1500, 56)
	if e1 > 1e-2 {
		t.Errorf("d=1 error %.2e too large", e1)
	}
	if e2 > e1 {
		t.Errorf("two-separation (%.2e) should beat one-separation (%.2e)", e2, e1)
	}
}

func TestSolverAccelerations(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pos, q := uniformParticles(rng, 1200)
	s, err := NewSolver(unitBox(), Config{Degree: 11, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, acc, err := s.Accelerations(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	wantPhi := direct.PotentialsParallel(pos, q)
	if e := relErr(phi, wantPhi); e > 1e-4 {
		t.Errorf("potential error %.2e", e)
	}
	wantAcc := direct.Accelerations(pos, q)
	var rms, mean float64
	for i := range acc {
		rms += acc[i].Sub(wantAcc[i]).Norm2()
		mean += wantAcc[i].Norm()
	}
	rms = math.Sqrt(rms / float64(len(acc)))
	mean /= float64(len(acc))
	if rms/mean > 1e-3 {
		t.Errorf("acceleration error %.2e relative to mean", rms/mean)
	}
}

func TestSolverEmptyAndTinyBoxes(t *testing.T) {
	// A clustered distribution leaves most leaf boxes empty; the solver
	// must handle empty boxes and still be accurate for the occupied ones.
	rng := rand.New(rand.NewSource(58))
	n := 600
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{
			X: 0.1 + 0.2*rng.Float64(),
			Y: 0.7 + 0.2*rng.Float64(),
			Z: 0.4 + 0.2*rng.Float64(),
		}
		q[i] = rng.Float64()
	}
	s, err := NewSolver(unitBox(), Config{Degree: 9, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(phi, direct.PotentialsParallel(pos, q)); e > 1e-4 {
		t.Errorf("clustered error %.2e", e)
	}
}

func TestSolverRejectsOutOfDomainParticle(t *testing.T) {
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Potentials([]geom.Vec3{{X: 2, Y: 0.5, Z: 0.5}}, []float64{1})
	if err == nil {
		t.Error("out-of-domain particle accepted")
	}
}

func TestSolverRejectsMismatchedInput(t *testing.T) {
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Potentials(make([]geom.Vec3, 3), make([]float64, 2))
	if err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestSolverBoundaryParticles(t *testing.T) {
	// Particles exactly on domain faces and corners must be accepted and
	// assigned.
	pos := []geom.Vec3{
		{X: 0, Y: 0, Z: 0},
		{X: 1, Y: 1, Z: 1}, // upper corner: clamped into last leaf
		{X: 0.5, Y: 1, Z: 0.5},
		{X: 0.25, Y: 0.25, Z: 0.25},
	}
	q := []float64{1, 1, 1, 1}
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Potentials(pos, q)
	for i := range phi {
		if math.Abs(phi[i]-want[i])/math.Abs(want[i]) > 5e-2 {
			t.Errorf("boundary particle %d: %g vs %g", i, phi[i], want[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                      // no degree, no rule
		{Degree: 5},                             // no depth
		{Degree: 5, Depth: 1},                   // depth too small
		{Degree: 5, Depth: 3, M: -1},            // negative M
		{Degree: 5, Depth: 3, RadiusRatio: 0.5}, // ratio below sqrt(3)/2
		{Degree: 5, Depth: 3, RadiusRatio: 2.0}, // ratio too large for d=2
		{Degree: 5, Depth: 3, Separation: -1},   // bad separation
		{Degree: 5, Depth: 3, Separation: 1, Supernodes: true}, // supernodes need d=2
	}
	for i, cfg := range bad {
		if _, err := cfg.normalize(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good, err := Config{Degree: 5, Depth: 3}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if good.M != 3 || good.RadiusRatio != DefaultRadiusRatio || good.Separation != 2 {
		t.Errorf("defaults wrong: %+v", good)
	}
}

func TestOptimalDepth(t *testing.T) {
	if d := OptimalDepth(0, 32); d != 2 {
		t.Errorf("OptimalDepth(0) = %d", d)
	}
	// Depth grows by one for every 8x in N.
	d1 := OptimalDepth(10000, 32)
	d2 := OptimalDepth(80000, 32)
	if d2 != d1+1 {
		t.Errorf("depth(8N) = %d, depth(N) = %d, want +1", d2, d1)
	}
	if d := OptimalDepth(100, 0); d < 2 {
		t.Errorf("default perBox broken: %d", d)
	}
}

func TestTranslationSetCounts(t *testing.T) {
	cfg, _ := Config{Degree: 5, Depth: 3, Supernodes: true}.normalize()
	ts := NewTranslationSet(cfg)
	if ts.NumT2Matrices() != 1331 {
		t.Errorf("T2 store = %d, want 1331", ts.NumT2Matrices())
	}
	// 1331 * 12^2 * 8 bytes = 1.53 MB, the paper's figure for K=12.
	if mb := float64(ts.MatrixBytes()) / 1e6; math.Abs(mb-1.533) > 0.01 {
		t.Errorf("matrix store = %.3f MB, want ~1.53", mb)
	}
	for oct := 0; oct < 8; oct++ {
		if len(ts.T2Super[oct]) != 98 {
			t.Errorf("oct %d: %d supernode matrices, want 98", oct, len(ts.T2Super[oct]))
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	pos, q := uniformParticles(rng, 1000)
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials(pos, q); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TotalFlops() <= 0 {
		t.Error("no flops recorded")
	}
	if st.NearPairs <= 0 || st.T2Count <= 0 {
		t.Errorf("counts not recorded: near=%d t2=%d", st.NearPairs, st.T2Count)
	}
	for _, p := range []Phase{PhaseLeafOuter, PhaseUpward, PhaseT2, PhaseT3, PhaseEvalLocal, PhaseNear} {
		if st.Flops[p] <= 0 {
			t.Errorf("phase %v has no flops", p)
		}
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestSolverRejectsNaNPosition(t *testing.T) {
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials([]geom.Vec3{{X: math.NaN(), Y: 0.5, Z: 0.5}}, []float64{1}); err == nil {
		t.Error("NaN position accepted")
	}
}
