package core

// Fault-injection site names for the shared-memory solver (see
// internal/faults). Sites fire inside the phase's open metrics span, so a
// panic injected at any of them is attributed to that phase by the public
// API's recovery boundary. The /body sites sit inside a parallel region and
// therefore fire on a pool worker, exercising cross-goroutine containment.
const (
	FaultSiteSort          = "core/sort"
	FaultSiteLeafOuter     = "core/leaf-outer"
	FaultSiteLeafOuterBody = "core/leaf-outer/body"
	FaultSiteT1            = "core/T1"
	FaultSiteT2            = "core/T2"
	FaultSiteT3            = "core/T3"
	FaultSiteEval          = "core/eval"
	FaultSiteNear          = "core/near"
	FaultSiteNearBody      = "core/near/body"
)

// FaultSites lists one site per named solve phase, in pipeline order; the
// fault-injection matrix tests iterate it so a renamed phase breaks loudly.
var FaultSites = []string{
	FaultSiteSort, FaultSiteLeafOuter, FaultSiteT1, FaultSiteT3,
	FaultSiteT2, FaultSiteEval, FaultSiteNear,
}
