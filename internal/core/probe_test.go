package core

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/direct"
	"nbody/internal/geom"
)

func TestPotentialsAtMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	pos, q := uniformParticles(rng, 1500)
	s, err := NewSolver(unitBox(), Config{Degree: 9, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]geom.Vec3, 200)
	for i := range targets {
		targets[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	phi, err := s.PotentialsAt(pos, q, targets)
	if err != nil {
		t.Fatal(err)
	}
	var rms, mean float64
	for i, x := range targets {
		want := direct.PotentialAt(x, pos, q)
		d := phi[i] - want
		rms += d * d
		mean += math.Abs(want)
	}
	rms = math.Sqrt(rms / float64(len(targets)))
	mean /= float64(len(targets))
	if rms/mean > 1e-4 {
		t.Errorf("probe error %.2e", rms/mean)
	}
}

func TestPotentialsAtValidation(t *testing.T) {
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PotentialsAt(make([]geom.Vec3, 2), make([]float64, 1), nil); err == nil {
		t.Error("mismatched sources accepted")
	}
	ok := []geom.Vec3{{X: 0.5, Y: 0.5, Z: 0.5}}
	if _, err := s.PotentialsAt([]geom.Vec3{{X: 7, Y: 0, Z: 0}}, []float64{1}, ok); err == nil {
		t.Error("out-of-domain source accepted")
	}
	if _, err := s.PotentialsAt(ok, []float64{1}, []geom.Vec3{{X: -3, Y: 0, Z: 0}}); err == nil {
		t.Error("out-of-domain target accepted")
	}
}

func TestPotentialsAtEmptyTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	pos, q := uniformParticles(rng, 100)
	s, err := NewSolver(unitBox(), Config{Degree: 5, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := s.PotentialsAt(pos, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(phi) != 0 {
		t.Errorf("expected empty result, got %d", len(phi))
	}
}
