package core

import (
	"nbody/internal/geom"
	"nbody/internal/tree"
)

// Partition buckets particles into leaf boxes in CSR form: the particles of
// leaf box b (row-major index) are Perm[Start[b]:Start[b+1]]. It is the
// shared-memory counterpart of the paper's coordinate sort (Section 3.2):
// particles of the same box become contiguous, in box order, so every
// particle-box interaction is a contiguous sweep.
type Partition struct {
	Grid  int   // boxes per axis at the leaf level
	Start []int // len Grid^3+1
	Perm  []int // particle indices in box order
}

// NewPartition assigns each particle to its leaf box via a counting sort —
// O(N), independent of the distribution, like the paper's radix-style
// coordinate sort.
func NewPartition(h tree.Hierarchy, pos []geom.Vec3) *Partition {
	n := h.GridSize(h.Depth)
	nb := n * n * n
	boxOf := make([]int32, len(pos))
	counts := make([]int, nb+1)
	for i, p := range pos {
		b := h.LeafOf(p).Index(n)
		boxOf[i] = int32(b)
		counts[b+1]++
	}
	for b := 0; b < nb; b++ {
		counts[b+1] += counts[b]
	}
	start := make([]int, nb+1)
	copy(start, counts)
	perm := make([]int, len(pos))
	fill := make([]int, nb)
	for i := range pos {
		b := boxOf[i]
		perm[start[b]+fill[b]] = i
		fill[b]++
	}
	return &Partition{Grid: n, Start: start, Perm: perm}
}

// Box returns the particle indices of leaf box c.
func (p *Partition) Box(c geom.Coord3) []int {
	b := c.Index(p.Grid)
	return p.Perm[p.Start[b]:p.Start[b+1]]
}

// Count returns the number of particles in leaf box c.
func (p *Partition) Count(c geom.Coord3) int {
	b := c.Index(p.Grid)
	return p.Start[b+1] - p.Start[b]
}

// MaxPerBox returns the largest box population (the paper's 4-D particle
// arrays are dimensioned by this).
func (p *Partition) MaxPerBox() int {
	m := 0
	for b := 0; b+1 < len(p.Start); b++ {
		if c := p.Start[b+1] - p.Start[b]; c > m {
			m = c
		}
	}
	return m
}

// Gather copies the positions and charges of one box into the provided
// scratch slices (resliced as needed) and returns them; the per-box
// contiguous copies play the role of the paper's 4-D particle arrays.
func (p *Partition) Gather(c geom.Coord3, pos []geom.Vec3, q []float64,
	posBuf []geom.Vec3, qBuf []float64) ([]geom.Vec3, []float64) {
	idx := p.Box(c)
	posBuf = posBuf[:0]
	qBuf = qBuf[:0]
	for _, i := range idx {
		posBuf = append(posBuf, pos[i])
		qBuf = append(qBuf, q[i])
	}
	return posBuf, qBuf
}
