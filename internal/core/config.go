package core

import (
	"fmt"
	"math"

	"nbody/internal/sphere"
)

// Config selects the parameters of Anderson's method (the paper's Table 2
// knobs plus the implementation toggles studied in Section 3).
type Config struct {
	// Degree is the integration order D. A sphere rule exact to this degree
	// is chosen automatically unless Rule is set.
	Degree int

	// Rule overrides the integration rule (optional).
	Rule *sphere.Rule

	// M is the Legendre-series truncation of the Poisson kernels. Zero
	// selects the calibrated default ceil(D/2): the probe experiments in
	// the package tests show the error floor of a degree-D rule is reached
	// near that truncation, matching Anderson's M ~ D/2 guidance.
	M int

	// RadiusRatio is the outer/inner sphere radius in units of the box
	// side. Zero selects the calibrated default 1.1. The ratio must exceed
	// sqrt(3)/2 (the circumscribed-sphere ratio 0.866) for the parent-child
	// translations and interior evaluations to be geometrically valid.
	RadiusRatio float64

	// Depth is the hierarchy depth h (leaf level). Required, >= 2.
	Depth int

	// Separation is the near-field separation d; zero selects the paper's
	// default of 2 ("two separation assumed unless otherwise stated").
	Separation int

	// Supernodes enables the supernode decomposition of the interactive
	// field (875 -> 189 effective translations for d = 2, Section 2.3).
	Supernodes bool

	// DisableAggregation turns off the BLAS-3 aggregation of translations
	// and applies them as per-box matrix-vector products instead; used by
	// the ablation benchmarks of Section 3.3.3.
	DisableAggregation bool
}

// DefaultRadiusRatio is the calibrated sphere-radius / box-side default.
const DefaultRadiusRatio = 1.1

// minRadiusRatio is the geometric validity bound sqrt(3)/2.
const minRadiusRatio = Sqrt3Over2

// Normalized fills defaults and validates, returning the effective
// parameters. Exported for the packages (dpfmm, benchmarks) that build on
// the same configuration.
func (c Config) Normalized() (Config, error) { return c.normalize() }

// normalize fills defaults and validates, returning the effective
// parameters.
func (c Config) normalize() (Config, error) {
	if c.Rule == nil {
		if c.Degree < 1 {
			return c, fmt.Errorf("core: config needs Degree >= 1 or an explicit Rule")
		}
		c.Rule = sphere.ForDegree(c.Degree)
	}
	if c.Degree == 0 {
		c.Degree = c.Rule.Degree
	}
	if c.M == 0 {
		c.M = (c.Degree + 1) / 2
	}
	if c.M < 1 {
		return c, fmt.Errorf("core: M = %d < 1", c.M)
	}
	if c.RadiusRatio == 0 {
		c.RadiusRatio = DefaultRadiusRatio
	}
	if c.RadiusRatio <= minRadiusRatio {
		return c, fmt.Errorf("core: RadiusRatio %g <= sqrt(3)/2; spheres would not enclose their boxes",
			c.RadiusRatio)
	}
	if c.Separation == 0 {
		c.Separation = 2
	}
	if c.Separation < 1 {
		return c, fmt.Errorf("core: Separation %d < 1", c.Separation)
	}
	if c.Supernodes && c.Separation != 2 {
		return c, fmt.Errorf("core: supernodes implemented for separation 2 only (got %d)", c.Separation)
	}
	if c.Depth < 2 {
		return c, fmt.Errorf("core: Depth %d < 2", c.Depth)
	}
	// The outer kernel must converge in the worst T1 geometry:
	// parent point distance >= 2*ratio - sqrt(3)/2 child radii.
	if 2*c.RadiusRatio-minRadiusRatio <= c.RadiusRatio {
		return c, fmt.Errorf("core: RadiusRatio %g too small for parent-child translations", c.RadiusRatio)
	}
	// And in the worst T2 geometry: nearest interactive box center at
	// (Separation+1) sides, target inner point at ratio sides inward.
	if float64(c.Separation+1)-c.RadiusRatio <= c.RadiusRatio {
		return c, fmt.Errorf("core: RadiusRatio %g too large for separation %d", c.RadiusRatio, c.Separation)
	}
	return c, nil
}

// OptimalDepth returns the hierarchy depth that balances tree traversal
// against near-field direct evaluation for n uniform particles (Section
// 2.3: the number of leaf boxes should be proportional to N). The constant
// targets roughly q particles per leaf box.
func OptimalDepth(n int, perBox float64) int {
	if n < 1 {
		return 2
	}
	if perBox <= 0 {
		perBox = 32
	}
	d := int(math.Round(math.Log(float64(n)/perBox) / math.Log(8)))
	if d < 2 {
		d = 2
	}
	return d
}
