package core

import (
	"fmt"

	"nbody/internal/blas"
	"nbody/internal/geom"
)

// PotentialsAt evaluates the potential field of the sources (pos, q) at an
// arbitrary set of target points (no self-exclusion): the far field comes
// from the local expansions of the targets' leaf boxes, the near field from
// direct summation over the targets' near-field source particles. Targets
// must lie inside the solver's domain.
func (s *Solver) PotentialsAt(pos []geom.Vec3, q []float64, targets []geom.Vec3) ([]float64, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("core: %d positions but %d charges", len(pos), len(q))
	}
	for _, p := range pos {
		if !inClosedBox(s.hier.Root, p) {
			return nil, fmt.Errorf("core: source %v outside domain %v", p, s.hier.Root)
		}
	}
	for _, p := range targets {
		if !inClosedBox(s.hier.Root, p) {
			return nil, fmt.Errorf("core: target %v outside domain %v", p, s.hier.Root)
		}
	}
	st := &s.stats
	var part *Partition
	st.timePhase(PhaseSetup, func() { part = NewPartition(s.hier, pos) })

	depth := s.cfg.Depth
	k := s.ts.K
	far := make([][]float64, depth+1)
	loc := make([][]float64, depth+1)
	for l := 2; l <= depth; l++ {
		far[l] = make([]float64, s.hier.NumBoxes(l)*k)
		loc[l] = make([]float64, s.hier.NumBoxes(l)*k)
	}
	st.timePhase(PhaseLeafOuter, func() { s.leafOuter(part, pos, q, far[depth]) })
	st.timePhase(PhaseUpward, func() { s.upward(far) })
	st.timePhase(PhaseDownward, func() { s.downward(far, loc) })

	phi := make([]float64, len(targets))
	rule := s.cfg.Rule
	m := s.cfg.M
	a := s.cfg.RadiusRatio * s.hier.BoxSide(depth)
	n := part.Grid
	st.timePhase(PhaseEvalLocal, func() {
		blas.Parallel(len(targets), func(i int) {
			x := targets[i]
			c := s.hier.LeafOf(x)
			b := c.Index(n)
			center := s.hier.Box(depth, c).Center
			v := EvalInner(rule, m, center, a, loc[depth][b*k:(b+1)*k], x)
			// Near field: the target's own box plus its near offsets.
			for _, j := range part.Box(c) {
				v += q[j] / x.Dist(pos[j])
			}
			for _, o := range s.nearOff {
				sc := c.Add(o)
				if !sc.In(n) {
					continue
				}
				for _, j := range part.Box(sc) {
					v += q[j] / x.Dist(pos[j])
				}
			}
			phi[i] = v
		})
	})
	return phi, nil
}
