package core

import (
	"context"
	"fmt"

	"nbody/internal/blas"
	"nbody/internal/geom"
	"nbody/internal/pipeline"
)

// PotentialsAt evaluates the potential field of the sources (pos, q) at an
// arbitrary set of target points (no self-exclusion): the far field comes
// from the local expansions of the targets' leaf boxes, the near field from
// direct summation over the targets' near-field source particles. Targets
// must lie inside the solver's domain. PotentialsAt shares the solver's
// reusable pipeline state (partition scratch, expansion grids, box-sorted
// mirrors), so like solve it must not run concurrently with other solves on
// the same Solver.
func (s *Solver) PotentialsAt(pos []geom.Vec3, q []float64, targets []geom.Vec3) ([]float64, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("core: %d positions but %d charges", len(pos), len(q))
	}
	for _, p := range pos {
		if !inClosedBox(s.hier.Root, p) {
			return nil, fmt.Errorf("core: source %v outside domain %v", p, s.hier.Root)
		}
	}
	for _, p := range targets {
		if !inClosedBox(s.hier.Root, p) {
			return nil, fmt.Errorf("core: target %v outside domain %v", p, s.hier.Root)
		}
	}
	// The hierarchy prefix of the declared pipeline (sort through the last
	// T2 conversion) is shared with solve; only the evaluation differs.
	s.in.pos, s.in.q = pos, q
	defer s.clearSolveState()
	if err := pipeline.Run(nil, &s.rec, "core", s.phases[:s.nHier]); err != nil {
		return nil, err
	}

	phi := make([]float64, len(targets))
	eval := []pipeline.Phase{{Name: PhaseEvalLocal, Site: FaultSiteEval,
		Slice: func() []float64 { return phi },
		Run: func(context.Context) error {
			s.evalAt(targets, phi)
			return nil
		}}}
	if err := pipeline.Run(nil, &s.rec, "core", eval); err != nil {
		return nil, err
	}
	return phi, nil
}

// evalAt evaluates the solved field at arbitrary target points: the local
// expansion of each target's leaf box plus direct summation over its
// near-field source particles.
func (s *Solver) evalAt(targets []geom.Vec3, phi []float64) {
	depth := s.cfg.Depth
	k := s.ts.K
	loc := s.loc[depth]
	rule := s.cfg.Rule
	m := s.cfg.M
	a := s.cfg.RadiusRatio * s.hier.BoxSide(depth)
	n := s.part.Grid
	blas.Parallel(len(targets), func(i int) {
		x := targets[i]
		c := s.hier.LeafOf(x)
		b := c.Index(n)
		center := s.hier.Box(depth, c).Center
		v := EvalInner(rule, m, center, a, loc[b*k:(b+1)*k], x)
		// Near field: the target's own box plus its near offsets, as
		// contiguous ranges of the box-sorted source mirrors.
		sum := func(bi int) {
			lo, hi := s.part.Start[bi], s.part.Start[bi+1]
			for j := lo; j < hi; j++ {
				v += s.qS[j] / x.Dist(s.posS[j])
			}
		}
		sum(b)
		for _, o := range s.nearOff {
			sc := c.Add(o)
			if !sc.In(n) {
				continue
			}
			sum(sc.Index(n))
		}
		phi[i] = v
	})
}
