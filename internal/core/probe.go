package core

import (
	"fmt"

	"nbody/internal/blas"
	"nbody/internal/geom"
)

// PotentialsAt evaluates the potential field of the sources (pos, q) at an
// arbitrary set of target points (no self-exclusion): the far field comes
// from the local expansions of the targets' leaf boxes, the near field from
// direct summation over the targets' near-field source particles. Targets
// must lie inside the solver's domain. PotentialsAt shares the solver's
// reusable pipeline state (partition scratch, expansion grids, box-sorted
// mirrors), so like solve it must not run concurrently with other solves on
// the same Solver.
func (s *Solver) PotentialsAt(pos []geom.Vec3, q []float64, targets []geom.Vec3) ([]float64, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("core: %d positions but %d charges", len(pos), len(q))
	}
	for _, p := range pos {
		if !inClosedBox(s.hier.Root, p) {
			return nil, fmt.Errorf("core: source %v outside domain %v", p, s.hier.Root)
		}
	}
	for _, p := range targets {
		if !inClosedBox(s.hier.Root, p) {
			return nil, fmt.Errorf("core: target %v outside domain %v", p, s.hier.Root)
		}
	}
	sp := s.rec.Begin(PhaseSort)
	s.prepare(pos, q)
	sp.End()
	sp = s.rec.Begin(PhaseLeafOuter)
	s.leafOuter()
	sp.End()
	sp = s.rec.Begin(PhaseUpward)
	s.upward()
	sp.End()
	s.downward() // records PhaseT3/PhaseT2 spans per level itself

	depth := s.cfg.Depth
	k := s.ts.K
	loc := s.loc[depth]
	phi := make([]float64, len(targets))
	rule := s.cfg.Rule
	m := s.cfg.M
	a := s.cfg.RadiusRatio * s.hier.BoxSide(depth)
	n := s.part.Grid
	sp = s.rec.Begin(PhaseEvalLocal)
	{
		blas.Parallel(len(targets), func(i int) {
			x := targets[i]
			c := s.hier.LeafOf(x)
			b := c.Index(n)
			center := s.hier.Box(depth, c).Center
			v := EvalInner(rule, m, center, a, loc[b*k:(b+1)*k], x)
			// Near field: the target's own box plus its near offsets, as
			// contiguous ranges of the box-sorted source mirrors.
			sum := func(bi int) {
				lo, hi := s.part.Start[bi], s.part.Start[bi+1]
				for j := lo; j < hi; j++ {
					v += s.qS[j] / x.Dist(s.posS[j])
				}
			}
			sum(b)
			for _, o := range s.nearOff {
				sc := c.Add(o)
				if !sc.In(n) {
					continue
				}
				sum(sc.Index(n))
			}
			phi[i] = v
		})
	}
	sp.End()
	return phi, nil
}
